#!/usr/bin/env python3
"""Repo-invariant lint: structural rules clang-tidy cannot express.

Rules (see docs/static-analysis.md):
  R1  raw `data_[...]` index arithmetic is confined to src/tensor/ — every
      other module must go through a named, contract-checked index helper.
  R2  `std::thread` (and <thread>) is confined to src/parallel/ — all
      concurrency flows through ThreadPool so the TSan matrix sees it.
  R3  C `rand()`/`srand()` and non-reproducible std RNGs are forbidden in
      src/ outside util/rng — all randomness must be seed-deterministic.
  R4  every src/<module>/<name>.cpp must have its companion header
      referenced by at least one file in tests/ — no untested modules.
  R5  blocking coordination primitives (std::condition_variable,
      std::future/std::promise and their headers) are confined to
      src/parallel/ and src/serve/ — everything else must either stay
      synchronous or go through ThreadPool / BatchingServer, so the
      TSan stress suite exercises every wait/notify path in the repo.
  R6  the plan interpreter (src/xnor/exec.cpp) is an allocation-free
      zone: no new/malloc, no owning-container construction or growth,
      no Tensor/BitMatrix temporaries. The allocating prologue belongs
      in plan.cpp / engine.cpp; tests/test_zero_alloc.cpp measures the
      same contract dynamically with an operator-new interposer.
  R7  observability primitives are defined only in src/obs/ (no other
      module may open `namespace bcop::obs`), and the recording header
      src/obs/metrics.hpp must stay lock-free and allocation-free: no
      mutexes/locks and none of the R6 allocation tokens, so recording
      can ride R6 zones and the zero-alloc serving path.

Exit status: 0 when clean, 1 with a per-violation report otherwise.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
TESTS = ROOT / "tests"

DATA_ARITH = re.compile(r"data_\s*\[[^\]]*[+\-*/%]")
THREAD_USE = re.compile(r"std::thread\b|#include\s*<thread>")
BAD_RNG = re.compile(
    r"\b(?:s?rand)\s*\(|std::random_device|std::mt19937|std::default_random_engine"
)
COORD_USE = re.compile(
    r"std::condition_variable\b|std::future\b|std::promise\b"
    r"|#include\s*<condition_variable>|#include\s*<future>"
)
# Allocation tokens forbidden in the interpreter. std::vector is allowed
# only as a reference type (`const std::vector<T>&` parameters); declaring
# a vector/string value, constructing a Tensor/BitMatrix, or growing any
# container is an R6 violation.
ALLOC_TOKENS = re.compile(
    r"\bnew\b|\bmalloc\b|\bcalloc\b|\brealloc\b"
    r"|make_unique|make_shared"
    r"|std::vector\s*<[^>]*>\s*(?!&)\w|std::string\s"
    r"|\bTensor\s*\(|\bBitMatrix\s*\("
    r"|push_back|emplace_back|\.resize\s*\(|\.reserve\s*\("
)
ALLOC_FREE_FILES = ("src/xnor/exec.cpp",)

# R7a: opening the obs namespace (defining obs primitives) outside
# src/obs/. Matches definitions (`namespace bcop::obs {` or a nested
# `namespace obs {`), not mere usage like `obs::Counter&`. Single-line
# forward declarations (`namespace bcop::obs { struct X; }`) stay legal:
# they introduce a name, not an implementation.
OBS_NAMESPACE = re.compile(r"namespace\s+(?:bcop::)?obs\s*\{")
OBS_FORWARD_DECL = re.compile(
    r"namespace\s+(?:bcop::)?obs\s*\{\s*(?:struct|class)\s+\w+\s*;\s*\}")
# R7b: locking tokens forbidden in the hot-path recording header.
LOCK_TOKENS = re.compile(
    r"std::mutex|std::shared_mutex|lock_guard|unique_lock|scoped_lock"
    r"|#include\s*<mutex>|#include\s*<shared_mutex>"
)
OBS_HOT_HEADER = "src/obs/metrics.hpp"


def src_files() -> list[Path]:
    return sorted(p for p in SRC.rglob("*") if p.suffix in (".cpp", ".hpp"))


def grep_rule(name: str, pattern: re.Pattern[str],
              allowed_prefixes: str | tuple[str, ...],
              violations: list[str]) -> None:
    if isinstance(allowed_prefixes, str):
        allowed_prefixes = (allowed_prefixes,)
    for path in src_files():
        rel = path.relative_to(ROOT).as_posix()
        if rel.startswith(allowed_prefixes):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line):
                violations.append(f"{name}: {rel}:{lineno}: {line.strip()}")


def check_alloc_free_zone(violations: list[str]) -> None:
    for rel in ALLOC_FREE_FILES:
        path = ROOT / rel
        if not path.exists():
            violations.append(f"R6: {rel}: allocation-free file is missing")
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//", 1)[0]  # prose may mention the tokens
            if ALLOC_TOKENS.search(code):
                violations.append(f"R6: {rel}:{lineno}: {line.strip()}")


def check_obs_confinement(violations: list[str]) -> None:
    for path in src_files():
        rel = path.relative_to(ROOT).as_posix()
        if rel.startswith("src/obs/"):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//", 1)[0]
            if OBS_NAMESPACE.search(code) and not OBS_FORWARD_DECL.search(code):
                violations.append(f"R7: {rel}:{lineno}: {line.strip()}")
    hot = ROOT / OBS_HOT_HEADER
    if not hot.exists():
        violations.append(f"R7: {OBS_HOT_HEADER}: recording header is missing")
        return
    for lineno, line in enumerate(hot.read_text().splitlines(), 1):
        code = line.split("//", 1)[0]  # prose may mention the tokens
        if LOCK_TOKENS.search(code) or ALLOC_TOKENS.search(code):
            violations.append(f"R7: {OBS_HOT_HEADER}:{lineno}: {line.strip()}")


def check_test_references(violations: list[str]) -> None:
    corpus = "\n".join(p.read_text() for p in sorted(TESTS.glob("*.[ch]pp")))
    for cpp in sorted(SRC.rglob("*.cpp")):
        rel = cpp.relative_to(SRC)
        header = rel.with_suffix(".hpp").as_posix()
        if header not in corpus:
            violations.append(
                f"R4: src/{rel.as_posix()}: no test includes \"{header}\"")


def main() -> int:
    violations: list[str] = []
    grep_rule("R1", DATA_ARITH, "src/tensor/", violations)
    grep_rule("R2", THREAD_USE, "src/parallel/", violations)
    grep_rule("R3", BAD_RNG, "src/util/rng", violations)
    grep_rule("R5", COORD_USE, ("src/parallel/", "src/serve/"), violations)
    check_alloc_free_zone(violations)
    check_obs_confinement(violations)
    check_test_references(violations)
    if violations:
        print(f"check_invariants: {len(violations)} violation(s)")
        for v in violations:
            print("  " + v)
        return 1
    print("check_invariants: OK "
          f"({len(src_files())} files, 7 rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
