#!/usr/bin/env python3
"""Repo-invariant lint: structural rules clang-tidy cannot express.

Thin CLI over scripts/invariants/ (rules-as-data; see that package and
docs/static-analysis.md for the full rule prose). The rules:

  R1  raw `data_[...]` index arithmetic confined to src/tensor/
  R2  std::thread / <thread> confined to src/parallel/
  R3  non-deterministic RNGs confined to src/util/rng
  R4  every src/<module>/<name>.cpp's header referenced from tests/
  R5  condition_variable/future/promise confined to src/parallel/ + src/serve/
  R6  the plan interpreter (src/xnor/exec.cpp) is an allocation-free zone
  R7  obs primitives defined only in src/obs/; src/obs/metrics.hpp stays
      lock-free and allocation-free
  R8  every mutex is an annotated util::Mutex and guards at least one
      BCOP_GUARDED_BY member (waivable per-line with a documented reason:
      `// bcop-lint: allow(R8): <why>`)
  R9  hot-TU include hygiene: src/xnor/exec.cpp and src/obs/metrics.hpp
      may not directly include <mutex>, <iostream> or <functional>

Every rule self-tests against pass/fail fixture trees in tests/lint/
(`--self-test`, also wired into ctest as `lint_selftest`).

Exit status: 0 when clean, 1 with a per-violation report otherwise.
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "scripts"))

from invariants import RULES, SourceTree, run_rules  # noqa: E402
from invariants.selftest import run_self_test  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(
        description="structural invariant lint (rules R1..R9)")
    parser.add_argument("--root", type=Path, default=ROOT,
                        help="tree to lint (default: the repo)")
    parser.add_argument("--rule", metavar="ID",
                        help="run a single rule (e.g. R8)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run every rule against its tests/lint/ "
                             "fixture pair")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    if args.self_test:
        return run_self_test(ROOT / "tests" / "lint")

    if args.rule and args.rule not in {r.id for r in RULES}:
        print(f"check_invariants: unknown rule '{args.rule}' "
              f"(known: {', '.join(r.id for r in RULES)})")
        return 2

    tree = SourceTree(args.root)
    violations, waived = run_rules(tree, RULES, only=args.rule)
    if violations:
        print(f"check_invariants: {len(violations)} violation(s)")
        for v in violations:
            print("  " + str(v))
        return 1
    ran = 1 if args.rule else len(RULES)
    waived_note = f", {waived} waived" if waived else ""
    print(f"check_invariants: OK "
          f"({len(tree.src_files())} files, {ran} rules{waived_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
