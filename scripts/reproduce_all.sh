#!/usr/bin/env bash
# Full reproduction pipeline: build, test, train the four models, run every
# table/figure bench. Run from the repository root. Training dominates the
# runtime; pass QUICK=1 to use reduced training schedules.
#
# Opt-in: STATIC_ANALYSIS=1 additionally runs scripts/static_analysis.sh
# (clang-tidy + repo-invariant lint) and reports its result in the summary.
# Opt-in: SERVING_BENCH=1 re-runs the serving-throughput bench with --full
# sample counts (the bench loop below always runs it once in quick mode).
# Opt-in: WORKSPACE_BENCH=1 verifies the engine's zero-allocation
# steady-state contract: the serving bench re-runs with --check-allocs and
# fails the stage if any measured steady state touched the heap.
set -euo pipefail

declare -a SUMMARY
note() { SUMMARY+=("$1"); }

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
note "build+ctest: PASS"

if [[ "${STATIC_ANALYSIS:-0}" == "1" ]]; then
  if scripts/static_analysis.sh build; then
    note "static_analysis: PASS"
  else
    note "static_analysis: FAIL"
  fi
else
  note "static_analysis: skipped (set STATIC_ANALYSIS=1 to enable)"
fi

TRAIN=build/examples/train_binarycop
if [[ "${QUICK:-0}" == "1" ]]; then
  $TRAIN --arch ncnv --per-class 400 --epochs 6 --eval-every 3 --out models/ncnv.bcop
  $TRAIN --arch ucnv --per-class 400 --epochs 6 --eval-every 3 --out models/ucnv.bcop
  $TRAIN --arch cnv  --per-class 300 --epochs 3 --eval-every 3 --out models/cnv.bcop
  $TRAIN --arch fp32 --per-class 300 --epochs 3 --eval-every 3 --out models/fp32_cnv.bcop
else
  $TRAIN --arch ncnv --per-class 1200 --epochs 18 --eval-every 6 --out models/ncnv.bcop
  $TRAIN --arch ucnv --per-class 1200 --epochs 18 --eval-every 6 --out models/ucnv.bcop
  $TRAIN --arch cnv  --per-class 800  --epochs 6  --eval-every 3 --out models/cnv.bcop
  $TRAIN --arch fp32 --per-class 600  --epochs 5  --eval-every 3 --out models/fp32_cnv.bcop
fi
note "training: PASS"

for b in build/bench/*; do
  echo "=== $b ==="
  "$b"
done
note "benches: PASS"

if [[ "${SERVING_BENCH:-0}" == "1" ]]; then
  if build/bench/bench_serving_throughput --full \
      --out bench_artifacts/serving_throughput.json; then
    note "serving_bench (--full): PASS"
  else
    note "serving_bench (--full): FAIL"
  fi
else
  note "serving_bench: quick pass only (set SERVING_BENCH=1 for --full)"
fi

if [[ "${WORKSPACE_BENCH:-0}" == "1" ]]; then
  if build/bench/bench_serving_throughput --check-allocs \
      --out bench_artifacts/serving_workspace.json; then
    note "workspace_bench (--check-allocs): PASS (0 allocs/inference)"
  else
    note "workspace_bench (--check-allocs): FAIL"
  fi
else
  note "workspace_bench: skipped (set WORKSPACE_BENCH=1 to verify the zero-allocation steady state)"
fi

echo
echo "reproduce_all summary:"
status=0
for line in "${SUMMARY[@]}"; do
  echo "  $line"
  [[ "$line" == *FAIL* ]] && status=1
done
exit $status
