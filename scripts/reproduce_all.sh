#!/usr/bin/env bash
# Full reproduction pipeline: build, test, train the four models, run every
# table/figure bench. Run from the repository root. Training dominates the
# runtime. Stages are toggled with environment variables (see --help).
set -euo pipefail

usage() {
  cat <<'EOF'
usage: scripts/reproduce_all.sh

Reproduces the paper artifacts end to end: configure + build, full ctest,
train the four models (CNV / n-CNV / u-CNV binarized + FP32 baseline),
then run every bench binary in build/bench/. Run from the repo root.

Stages are controlled by environment variables (all default off/full):
  QUICK=1            reduced training schedules (minutes instead of hours)
  STATIC_ANALYSIS=1  also run scripts/static_analysis.sh: clang-tidy, the
                     R1-R10 repo-invariant lint plus its fixture self-test,
                     and the binary-level hot-path audit (nm/objdump over
                     the interpreter and metric-recording objects); the
                     concurrency contracts themselves compile-check under
                     Clang with -DBCOP_THREAD_SAFETY=ON
  STATIC_ANALYSIS_STRICT=1  same, but tool-missing stages (e.g. no
                     clang-tidy) count as failures instead of skips
  SERVING_BENCH=1    re-run bench_serving_throughput with --full sample
                     counts (the bench loop always runs it once quickly)
  WORKSPACE_BENCH=1  verify the zero-allocation steady state: the serving
                     bench re-runs with --check-allocs and the stage fails
                     if any measured steady state touched the heap
  METRICS_BENCH=1    exercise the observability exporters: the serving
                     bench re-runs with --metrics and the stage fails if
                     the Prometheus snapshot comes out empty (see
                     docs/observability.md)
  NET_BENCH=1        drive the HTTP front-end with the open-loop load
                     generator (bench_loadgen): a baseline phase at the
                     default offered rate plus a 2x overload phase that
                     must shed gracefully (503s, zero losses); the JSON
                     artifact lands in bench_artifacts/loadgen.json and
                     the stage fails on any lost/timed-out request or a
                     broken conservation identity (see docs/networking.md)
  KERNEL_BENCH=1     run the per-tier kernel micro-benchmarks (the
                     BM_Kernel* rows of bench_micro_kernels: scalar vs
                     avx2 vs avx512 popcount GEMM / threshold / im2row on
                     whatever tiers this host can execute) and save the
                     JSON to bench_artifacts/kernel_tiers.json

Exit status is non-zero when any enabled stage fails; a per-stage summary
prints at the end either way.
EOF
}
if [[ "${1:-}" == "-h" || "${1:-}" == "--help" ]]; then
  usage
  exit 0
fi

declare -a SUMMARY
note() { SUMMARY+=("$1"); }

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
note "build+ctest: PASS"

if [[ "${STATIC_ANALYSIS:-0}" == "1" || "${STATIC_ANALYSIS_STRICT:-0}" == "1" ]]; then
  STRICT_FLAG=()
  [[ "${STATIC_ANALYSIS_STRICT:-0}" == "1" ]] && STRICT_FLAG=(--strict)
  if scripts/static_analysis.sh "${STRICT_FLAG[@]}" build; then
    note "static_analysis${STRICT_FLAG:+ (--strict)}: PASS"
  else
    note "static_analysis${STRICT_FLAG:+ (--strict)}: FAIL"
  fi
else
  note "static_analysis: skipped (set STATIC_ANALYSIS=1 to enable)"
fi

TRAIN=build/examples/train_binarycop
if [[ "${QUICK:-0}" == "1" ]]; then
  $TRAIN --arch ncnv --per-class 400 --epochs 6 --eval-every 3 --out models/ncnv.bcop
  $TRAIN --arch ucnv --per-class 400 --epochs 6 --eval-every 3 --out models/ucnv.bcop
  $TRAIN --arch cnv  --per-class 300 --epochs 3 --eval-every 3 --out models/cnv.bcop
  $TRAIN --arch fp32 --per-class 300 --epochs 3 --eval-every 3 --out models/fp32_cnv.bcop
else
  $TRAIN --arch ncnv --per-class 1200 --epochs 18 --eval-every 6 --out models/ncnv.bcop
  $TRAIN --arch ucnv --per-class 1200 --epochs 18 --eval-every 6 --out models/ucnv.bcop
  $TRAIN --arch cnv  --per-class 800  --epochs 6  --eval-every 3 --out models/cnv.bcop
  $TRAIN --arch fp32 --per-class 600  --epochs 5  --eval-every 3 --out models/fp32_cnv.bcop
fi
note "training: PASS"

for b in build/bench/*; do
  echo "=== $b ==="
  "$b"
done
note "benches: PASS"

if [[ "${SERVING_BENCH:-0}" == "1" ]]; then
  if build/bench/bench_serving_throughput --full \
      --out bench_artifacts/serving_throughput.json; then
    note "serving_bench (--full): PASS"
  else
    note "serving_bench (--full): FAIL"
  fi
else
  note "serving_bench: quick pass only (set SERVING_BENCH=1 for --full)"
fi

if [[ "${WORKSPACE_BENCH:-0}" == "1" ]]; then
  if build/bench/bench_serving_throughput --check-allocs \
      --out bench_artifacts/serving_workspace.json; then
    note "workspace_bench (--check-allocs): PASS (0 allocs/inference)"
  else
    note "workspace_bench (--check-allocs): FAIL"
  fi
else
  note "workspace_bench: skipped (set WORKSPACE_BENCH=1 to verify the zero-allocation steady state)"
fi

if [[ "${METRICS_BENCH:-0}" == "1" ]]; then
  if build/bench/bench_serving_throughput \
      --out bench_artifacts/serving_metrics.json \
      --metrics bench_artifacts/metrics.prom \
      && [[ -s bench_artifacts/metrics.prom ]]; then
    note "metrics_bench (--metrics): PASS ($(wc -l < bench_artifacts/metrics.prom) Prometheus lines)"
  else
    note "metrics_bench (--metrics): FAIL"
  fi
else
  note "metrics_bench: skipped (set METRICS_BENCH=1 to exercise the observability exporters)"
fi

if [[ "${NET_BENCH:-0}" == "1" ]]; then
  if build/bench/bench_loadgen --out bench_artifacts/loadgen.json; then
    note "net_bench (bench_loadgen): PASS"
  else
    note "net_bench (bench_loadgen): FAIL"
  fi
else
  note "net_bench: skipped (set NET_BENCH=1 to load-test the HTTP front-end)"
fi

if [[ "${KERNEL_BENCH:-0}" == "1" ]]; then
  if build/bench/bench_micro_kernels \
      --benchmark_filter='BM_Kernel' \
      --benchmark_out=bench_artifacts/kernel_tiers.json \
      --benchmark_out_format=json; then
    note "kernel_bench (BM_Kernel*): PASS"
  else
    note "kernel_bench (BM_Kernel*): FAIL"
  fi
else
  note "kernel_bench: skipped (set KERNEL_BENCH=1 to compare kernel dispatch tiers)"
fi

echo
echo "reproduce_all summary:"
status=0
for line in "${SUMMARY[@]}"; do
  echo "  $line"
  [[ "$line" == *FAIL* ]] && status=1
done
exit $status
