#!/usr/bin/env python3
"""Binary-level hot-path audit: prove the shipped objects keep the repo's
zero-allocation / lock-free / no-throw contracts.

The plan-replay path has three layered guarantees:

  source lint   scripts/check_invariants.py R6/R7/R9 greps the *source* for
                allocation, locking and include-hygiene tokens;
  runtime test  tests/test_zero_alloc.cpp counts operator-new calls with a
                global interposer while replaying plans;
  this script   inspects the *compiled objects* with nm/objdump and fails
                if any allocation, locking, thread-creation or throwing
                symbol is referenced -- a static proof over the artifact
                that actually ships, immune to macros, templates and
                inlining that source greps cannot see.

Audited translation units (the plan-replay path):

  src/xnor/exec.cpp   the interpreter: every steady-state serving cycle is
                      one replay through this TU.
  src/xnor/exec_residual.cpp  the ReBNet residual replay kernels the
                      interpreter branches into for M > 1 plans
                      (multi-level GEMM accumulation, pattern-bank firing,
                      lexicographic pooling).
  src/obs/metrics.cpp the metric recording primitives the interpreter and
                      the serving path record into.
  src/tensor/bit_span.cpp        span-kernel entry points the engine's
                                 non-plan callers go through.
  src/tensor/kernels/*.cpp       the kernel dispatch tiers (scalar, AVX2,
                                 AVX-512) plus the CPUID dispatcher whose
                                 function pointers plans freeze.

Forbidden symbol classes (referenced == undefined or defined-and-called;
we audit all undefined references):

  alloc   operator new/delete (any overload), malloc/calloc/realloc/free,
          aligned_alloc, posix_memalign
  lock    pthread_mutex_*/pthread_rwlock_*/pthread_cond_*, sem_wait/post,
          std::mutex/std::condition_variable methods, and __cxa_guard_*
          (function-local static initialization takes an implicit lock)
  throw   __cxa_throw/__cxa_allocate_exception/__cxa_rethrow and the
          libstdc++ std::__throw_* helpers (e.g. the one std::get<variant>
          drags in)

Allowlist (see docs/static-analysis.md): mem* string routines, the
contract-check trampoline (bcop::util::detail::check_fail -- [[noreturn]],
only reached on contract violation), steady_clock reads, and the repo's
own kernel/pool entry points.

Exit status: 0 clean, 1 violations (or --self-test failure), 77 when the
required tools/objects are missing (ctest SKIP) unless --strict.
"""
from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# (source file the object was compiled from, why it must stay clean)
AUDITED_TUS = [
    ("src/xnor/exec.cpp", "plan interpreter (steady-state replay path)"),
    ("src/xnor/exec_residual.cpp",
     "residual-binarization replay kernels (multi-level GEMM/fire/pool)"),
    ("src/obs/metrics.cpp", "metric recording primitives"),
    ("src/tensor/bit_span.cpp", "span-kernel entry points"),
    ("src/tensor/kernels/scalar.cpp", "scalar kernel tier (reference)"),
    ("src/tensor/kernels/avx2.cpp", "AVX2 kernel tier"),
    ("src/tensor/kernels/avx512.cpp", "AVX-512 kernel tier"),
    ("src/tensor/kernels/dispatch.cpp", "kernel-tier CPUID dispatcher"),
]

FORBIDDEN = {
    "alloc": re.compile(
        r"^operator new|^operator delete"
        r"|^(?:__libc_)?(?:malloc|calloc|realloc|free)$"
        r"|^aligned_alloc$|^posix_memalign$"
    ),
    "lock": re.compile(
        r"^pthread_(?:mutex|rwlock|cond|spin)_"
        r"|^sem_(?:wait|trywait|timedwait|post)$"
        r"|^__cxa_guard_"
        r"|std::(?:__1::)?(?:recursive_)?(?:timed_)?mutex::"
        r"|std::(?:__1::)?condition_variable"
        r"|bcop::util::Mutex::"
    ),
    "throw": re.compile(
        r"^__cxa_(?:throw|rethrow|allocate_exception|bad_cast|bad_typeid)"
        r"|^_Unwind_RaiseException$"
        r"|std::(?:__1::)?__throw_"
    ),
}

# Symbols a clean hot path legitimately references. Kept tight and
# documented -- an unexplained new entry here is a review flag.
ALLOWED = re.compile(
    r"^mem(?:cpy|set|move|cmp)(?:@.*)?$"          # bulk arena moves
    r"|^__memcpy_chk$|^__memset_chk$"
    r"|^abort$|^fputs$|^fputc$|^v?fprintf$|^stderr$"  # BCOP_CHECK failure path
    r"|^__stack_chk_fail$"
    r"|check_fail"                                 # bcop::util::detail::check_fail
    r"|steady_clock"                               # obs::now_ns / profiling
    r"|^bcop::"                                    # repo kernels + ThreadPool entry
    r"|^_GLOBAL_OFFSET_TABLE_$"
    r"|^(?:nearbyint|nearbyintf|llround|lround)$"  # libm, no side effects
    r"|^getenv$|^strcmp$"     # kernel dispatcher: BCOP_KERNEL_LEVEL, read once
    r"|^__popcountdi2$"       # libgcc popcount fallback (pure, no state)
    r"|^std::"                                     # inspected via FORBIDDEN first
    r"|^typeinfo |^vtable |^VTT "
    r"|^__cxa_(?:begin_catch|end_catch|call_unexpected)$"  # landing pads w/o throw
    r"|^_Unwind_Resume$"                           # cleanup-only unwinding
    r"|^__gxx_personality_v0$"
)


def find_tool() -> tuple[str, list[str]] | None:
    """Prefer nm; fall back to objdump symbol tables."""
    if shutil.which("nm"):
        return ("nm", ["nm", "--undefined-only", "-C"])
    if shutil.which("objdump"):
        return ("objdump", ["objdump", "-t", "-C"])
    return None


def undefined_symbols(obj: Path, tool: tuple[str, list[str]]) -> list[str]:
    out = subprocess.run(tool[1] + [str(obj)], check=True,
                         capture_output=True, text=True).stdout
    symbols = []
    for line in out.splitlines():
        if tool[0] == "nm":
            # "                 U symbol"
            parts = line.split(maxsplit=1)
            if len(parts) == 2 and parts[0] == "U":
                symbols.append(parts[1].strip())
        else:
            # objdump -t: "0000000000000000  *UND* 0000000000000000 symbol"
            if "*UND*" in line:
                symbols.append(line.split()[-1])
    return symbols


def classify(symbols: list[str]) -> list[tuple[str, str]]:
    """Return (class, symbol) for every forbidden reference."""
    hits = []
    for sym in symbols:
        for cls, pattern in FORBIDDEN.items():
            if pattern.search(sym):
                hits.append((cls, sym))
                break
        else:
            if not ALLOWED.search(sym):
                hits.append(("unvetted", sym))
    return hits


def find_object(build: Path, source: str) -> Path | None:
    stem = Path(source).name + ".o"
    matches = sorted(build.rglob(stem))
    # Disambiguate same-named TUs (e.g. several metrics.cpp) by requiring
    # the CMake object dir to mention the source's parent directory.
    wanted = Path(source).parent.name
    scoped = [m for m in matches if wanted in m.as_posix()]
    return (scoped or matches or [None])[0]


# Sanitizer instrumentation rewrites the codegen the audit is judging
# (shadow-memory calls, outlined checks, interceptor references), so the
# symbol profile of an ASan/TSan/UBSan object says nothing about the
# shipped artifact. Such builds are skipped, never failed -- the release
# configuration in CI is the one the audit gates.
SANITIZER_SYM = re.compile(r"^__(?:a|t|ub|hw|l)san_|^__sanitizer_|^__msan_")


def audit(build: Path, strict: bool) -> int:
    tool = find_tool()
    if tool is None:
        print("audit_hot_path: neither nm nor objdump found")
        return 1 if strict else 77
    failures = 0
    missing = 0
    skipped = 0
    for source, role in AUDITED_TUS:
        obj = find_object(build, source)
        if obj is None:
            print(f"audit_hot_path: MISSING  {source} (no compiled object "
                  f"under {build}; build first)")
            missing += 1
            continue
        symbols = undefined_symbols(obj, tool)
        if any(SANITIZER_SYM.search(s) for s in symbols):
            print(f"audit_hot_path: SKIP  {source} -- sanitizer-instrumented "
                  "object; audit only applies to uninstrumented builds")
            skipped += 1
            continue
        hits = classify(symbols)
        if hits:
            failures += 1
            print(f"audit_hot_path: FAIL  {source} -- {role}")
            for cls, sym in sorted(hits):
                print(f"    [{cls:8s}] {sym}")
        else:
            print(f"audit_hot_path: OK    {source} -- {role} "
                  f"({len(symbols)} undefined refs, all vetted)")
    if failures:
        return 1
    if missing:
        return 1 if strict else 77
    # Sanitizer-instrumented objects are a SKIP even under --strict: the
    # check is genuinely inapplicable there, not merely unavailable.
    return 77 if skipped else 0


PROBE = """
#include <mutex>
#include <stdexcept>
std::mutex probe_mutex;
int probe_hot(int x) {
  std::lock_guard<std::mutex> lock(probe_mutex);   // lock class
  static int lazy = x;                             // __cxa_guard_* class
  int* p = new int(x);                             // alloc class
  int v = *p + lazy;
  delete p;
  if (x < 0) throw std::runtime_error("probe");    // throw class
  return v;
}
"""


CLEAN_PROBE = """
// Everything a clean hot-path TU legitimately references: bulk memory
// moves, the dispatcher's one-shot env read, and atomics (lock-free,
// no pthread symbols). Must audit clean, or the allowlist has drifted.
#include <atomic>
#include <cstdlib>
#include <cstring>
std::atomic<int> probe_level{-1};
int probe_dispatch(char* dst, const char* src, unsigned long n) {
  std::memcpy(dst, src, n);
  const char* e = std::getenv("BCOP_KERNEL_LEVEL");
  if (e != nullptr && std::strcmp(e, "scalar") == 0)
    probe_level.store(0, std::memory_order_relaxed);
  return probe_level.load(std::memory_order_relaxed);
}
"""


def self_test() -> int:
    """Compile a deliberately-broken hot-path probe and require the audit
    to flag every forbidden class -- proof the detector detects -- then a
    clean probe using only allowlisted references and require silence --
    proof the allowlist still admits legitimate hot-path code."""
    tool = find_tool()
    cxx = shutil.which("c++") or shutil.which("g++") or shutil.which("clang++")
    if tool is None or cxx is None:
        print("audit_hot_path --self-test: compiler or nm/objdump missing")
        return 77
    with tempfile.TemporaryDirectory(prefix="bcop_audit_probe") as tmp:
        src = Path(tmp) / "probe.cpp"
        obj = Path(tmp) / "probe.o"
        src.write_text(PROBE)
        subprocess.run([cxx, "-std=c++20", "-O2", "-c", str(src),
                        "-o", str(obj)], check=True)
        hits = classify(undefined_symbols(obj, tool))
        found = {cls for cls, _ in hits}

        clean_src = Path(tmp) / "clean_probe.cpp"
        clean_obj = Path(tmp) / "clean_probe.o"
        clean_src.write_text(CLEAN_PROBE)
        subprocess.run([cxx, "-std=c++20", "-O2", "-c", str(clean_src),
                        "-o", str(clean_obj)], check=True)
        clean_hits = classify(undefined_symbols(clean_obj, tool))
    want = {"alloc", "lock", "throw"}
    missed = want - found
    if missed:
        print(f"audit_hot_path --self-test: FAIL -- probe classes not "
              f"detected: {sorted(missed)} (found {sorted(found)})")
        return 1
    if clean_hits:
        print("audit_hot_path --self-test: FAIL -- clean probe flagged:")
        for cls, sym in sorted(clean_hits):
            print(f"    [{cls:8s}] {sym}")
        return 1
    print(f"audit_hot_path --self-test: OK -- broken probe flagged for "
          f"{sorted(found)}, clean probe silent")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="binary-level audit of the plan-replay hot path")
    parser.add_argument("--build", type=Path, default=ROOT / "build",
                        help="CMake build tree holding the objects")
    parser.add_argument("--strict", action="store_true",
                        help="missing tools/objects fail instead of skip")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the detector on a broken probe TU")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return audit(args.build, args.strict)


if __name__ == "__main__":
    sys.exit(main())
