"""The repo's invariant rules, R1..R10, as data.

Each rule is a Rule value built either from a declarative constructor in
engine.py (token confinement, token-free zone, include hygiene) or from a
bespoke check for the structural rules (R4 test coverage, R7 namespace
confinement, R8 mutex annotation). Every rule has a pass/fail fixture
pair under tests/lint/<id>/ exercised by `check_invariants.py
--self-test`; prose lives in docs/static-analysis.md.
"""
from __future__ import annotations

import re

from . import engine
from .engine import Rule, SourceTree, Violation, strip_comment

# ---- R1..R3, R5: token confinement ---------------------------------------

DATA_ARITH = re.compile(r"data_\s*\[[^\]]*[+\-*/%]")
THREAD_USE = re.compile(r"std::thread\b|#include\s*<thread>")
BAD_RNG = re.compile(
    r"\b(?:s?rand)\s*\(|std::random_device|std::mt19937|std::default_random_engine"
)
COORD_USE = re.compile(
    r"std::condition_variable\b|std::future\b|std::promise\b"
    r"|#include\s*<condition_variable>|#include\s*<future>"
)

# R10: raw sockets and readiness syscalls. Confined to src/net/ so every
# byte of untrusted network input funnels through the bounded parser and
# admission control there -- a stray socket() elsewhere is an unaudited
# ingress path.
SOCKET_USE = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|sys/epoll\.h|poll\.h|sys/poll\.h"
    r"|netinet/[^>]+|arpa/inet\.h|sys/un\.h|netdb\.h)>"
    r"|::socket\s*\(|::accept4?\s*\(|::epoll_(?:create1?|ctl|wait)\s*\("
)

# ---- R6/R7 token sets ------------------------------------------------------

# Allocation tokens forbidden in the interpreter. std::vector is allowed
# only as a reference type (`const std::vector<T>&` parameters); declaring
# a vector/string value, constructing a Tensor/BitMatrix, or growing any
# container is an R6 violation.
ALLOC_TOKENS = re.compile(
    r"\bnew\b|\bmalloc\b|\bcalloc\b|\brealloc\b"
    r"|make_unique|make_shared"
    r"|std::vector\s*<[^>]*>\s*(?!&)\w|std::string\s"
    r"|\bTensor\s*\(|\bBitMatrix\s*\("
    r"|push_back|emplace_back|\.resize\s*\(|\.reserve\s*\("
)
# The interpreter, the residual-binarization replay kernels, the
# span-kernel entry points they replay, and every kernel dispatch tier --
# all audited at the object level too by scripts/audit_hot_path.py.
ALLOC_FREE_FILES = (
    "src/xnor/exec.cpp",
    "src/xnor/exec_residual.cpp",
    "src/tensor/bit_span.cpp",
    "src/tensor/kernels/scalar.cpp",
    "src/tensor/kernels/avx2.cpp",
    "src/tensor/kernels/avx512.cpp",
    "src/tensor/kernels/dispatch.cpp",
)

# R7a: opening the obs namespace (defining obs primitives) outside
# src/obs/. Matches definitions (`namespace bcop::obs {` or a nested
# `namespace obs {`), not mere usage like `obs::Counter&`. Single-line
# forward declarations (`namespace bcop::obs { struct X; }`) stay legal:
# they introduce a name, not an implementation.
OBS_NAMESPACE = re.compile(r"namespace\s+(?:bcop::)?obs\s*\{")
OBS_FORWARD_DECL = re.compile(
    r"namespace\s+(?:bcop::)?obs\s*\{\s*(?:struct|class)\s+\w+\s*;\s*\}")
# R7b: locking tokens forbidden in the hot-path recording header.
LOCK_TOKENS = re.compile(
    r"std::mutex|std::shared_mutex|lock_guard|unique_lock|scoped_lock"
    r"|#include\s*<mutex>|#include\s*<shared_mutex>"
)
OBS_HOT_HEADER = "src/obs/metrics.hpp"

# ---- R8 patterns -----------------------------------------------------------

# A raw standard-library mutex member/global. These are invisible to
# Clang's thread-safety analysis; everything must go through util::Mutex.
RAW_MUTEX_DECL = re.compile(
    r"\bstd::(?:shared_|recursive_|timed_)?mutex\s+\w+\s*[;{=]")
# An annotated-wrapper mutex declaration: `util::Mutex name;`, optionally
# carrying a lock-ordering annotation before the semicolon. `MutexLock
# lock(m)` does not match (no whitespace after "Mutex").
WRAPPED_MUTEX_DECL = re.compile(
    r"\b(?:util::)?Mutex\s+(\w+)\s*"
    r"(?:BCOP_ACQUIRED_(?:BEFORE|AFTER)\s*\([^)]*\)\s*)?[;{=]")
# The file that *defines* the wrappers is exempt from R8.
R8_EXEMPT = ("src/util/thread_annotations.hpp",)


def _check_r8(tree: SourceTree) -> list[Violation]:
    out: list[Violation] = []
    for rel, text in tree.src_files():
        if rel in R8_EXEMPT:
            continue
        # Match over the whole comment-stripped text so declarations that
        # wrap across lines (name on one, annotation + `;` on the next)
        # cannot slip past a line-by-line grep. Violations anchor at the
        # terminator's line -- the line waiver comments sit on.
        code = "\n".join(strip_comment(l) for l in text.splitlines())
        for m in RAW_MUTEX_DECL.finditer(code):
            out.append(Violation(
                "R8", rel, code.count("\n", 0, m.end()) + 1,
                "raw std::mutex -- declare util::Mutex so Clang's "
                "thread-safety analysis sees the capability"))
        for m in WRAPPED_MUTEX_DECL.finditer(code):
            name = m.group(1)
            guard = re.compile(
                r"BCOP_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)")
            if not guard.search(code):
                out.append(Violation(
                    "R8", rel, code.count("\n", 0, m.end()) + 1,
                    f"mutex '{name}' guards no member -- annotate at least "
                    f"one member BCOP_GUARDED_BY({name}), or waive with a "
                    "reason if it protects a region/external resource"))
    return out


# ---- R4 / R7 structural checks --------------------------------------------

def _check_r4(tree: SourceTree) -> list[Violation]:
    corpus = tree.test_corpus()
    out = []
    for rel, _ in tree.src_files():
        if not rel.endswith(".cpp"):
            continue
        header = rel[len("src/"):-len(".cpp")] + ".hpp"
        if header not in corpus:
            out.append(Violation("R4", rel, 0,
                                 f'no test includes "{header}"'))
    return out


def _check_r7(tree: SourceTree) -> list[Violation]:
    out = []
    for rel, text in tree.src_files():
        if rel.startswith("src/obs/"):
            continue
        for lineno, line in enumerate(text.splitlines(), 1):
            code = strip_comment(line)
            if OBS_NAMESPACE.search(code) and not OBS_FORWARD_DECL.search(code):
                out.append(Violation("R7", rel, lineno, line.strip()))
    hot = tree.read(OBS_HOT_HEADER)
    if hot is None:
        out.append(Violation("R7", OBS_HOT_HEADER, 0,
                             "recording header is missing"))
        return out
    for lineno, line in enumerate(hot.splitlines(), 1):
        code = strip_comment(line)  # prose may mention the tokens
        if LOCK_TOKENS.search(code) or ALLOC_TOKENS.search(code):
            out.append(Violation("R7", OBS_HOT_HEADER, lineno, line.strip()))
    return out


# ---- The rule table --------------------------------------------------------

RULES: list[Rule] = [
    engine.token_confinement(
        "R1", "raw data_[] arithmetic confined to src/tensor/",
        "every other module must go through a named, contract-checked "
        "index helper",
        DATA_ARITH, ("src/tensor/",)),
    engine.token_confinement(
        "R2", "std::thread confined to src/parallel/",
        "all concurrency flows through ThreadPool so the TSan matrix "
        "sees it",
        THREAD_USE, ("src/parallel/",)),
    engine.token_confinement(
        "R3", "non-deterministic RNG confined to src/util/rng",
        "all randomness must be seed-deterministic for reproducibility",
        BAD_RNG, ("src/util/rng",)),
    Rule("R4", "every src .cpp has its header referenced from tests/",
         "no untested modules", _check_r4),
    engine.token_confinement(
        "R5", "blocking coordination confined to src/parallel/ + src/serve/",
        "every wait/notify path must be exercised by the TSan stress "
        "suite via ThreadPool / BatchingServer",
        COORD_USE, ("src/parallel/", "src/serve/", "src/net/")),
    engine.forbidden_tokens_in_files(
        "R6", "plan interpreter is an allocation-free zone",
        "the allocating prologue belongs in plan.cpp / engine.cpp; "
        "tests/test_zero_alloc.cpp measures the same contract dynamically "
        "and scripts/audit_hot_path.py proves it on the compiled object",
        ALLOC_TOKENS, ALLOC_FREE_FILES),
    Rule("R7", "obs primitives defined only in src/obs/; metrics.hpp "
         "lock-free and allocation-free",
         "recording must be safe to call from R6 zones and the "
         "zero-alloc serving path", _check_r7),
    Rule("R8", "every mutex is util::Mutex and guards something",
         "raw std::mutex is invisible to Clang's -Wthread-safety; an "
         "unannotated mutex documents nothing and checks nothing",
         _check_r8),
    engine.include_hygiene(
        "R9", "hot-TU include hygiene",
        "the interpreter TU and the recording header must not pull in "
        "locking, stream or type-erasure machinery even transitively "
        "inlined -- the binary audit backs this up at the symbol level",
        {
            "src/xnor/exec.cpp":
                ("mutex", "iostream", "functional", "sys/socket.h", "poll.h"),
            "src/xnor/exec_residual.cpp":
                ("mutex", "iostream", "functional", "sys/socket.h", "poll.h"),
            "src/obs/metrics.hpp":
                ("mutex", "iostream", "functional", "sys/socket.h", "poll.h"),
            "src/tensor/bit_span.cpp":
                ("mutex", "iostream", "functional", "sys/socket.h", "poll.h"),
            "src/tensor/kernels/scalar.cpp":
                ("mutex", "iostream", "functional", "sys/socket.h", "poll.h"),
            "src/tensor/kernels/avx2.cpp":
                ("mutex", "iostream", "functional", "sys/socket.h", "poll.h"),
            "src/tensor/kernels/avx512.cpp":
                ("mutex", "iostream", "functional", "sys/socket.h", "poll.h"),
            "src/tensor/kernels/dispatch.cpp":
                ("mutex", "iostream", "functional", "sys/socket.h", "poll.h"),
        }),
    engine.token_confinement(
        "R10", "raw sockets and readiness syscalls confined to src/net/",
        "every byte of untrusted network input must enter through the "
        "bounded parser and admission control in src/net/; a socket "
        "opened elsewhere is an unaudited ingress path",
        SOCKET_USE, ("src/net/",), comment_stripped=True),
]
