"""Fixture-driven self-test: prove every rule both accepts and rejects.

For each rule R in rules.RULES there is a fixture pair

    tests/lint/<R>/pass/   a miniature src/+tests/ tree the rule accepts
    tests/lint/<R>/fail/   the same tree with a seeded violation

Running only that rule over the pair must yield zero violations on pass/
and at least one on fail/ -- a rule with no fixtures, a rule that flags
clean code, or a rule that misses its seeded bug all fail the self-test.
A tenth pair, tests/lint/WAIVER/, exercises the waiver machinery itself:
pass/ carries a reasoned `bcop-lint: allow(R8): ...` (must suppress),
fail/ a reasonless one (must be reported).
"""
from __future__ import annotations

from pathlib import Path

from .engine import SourceTree, run_rules
from .rules import RULES


def _run(root: Path, only: str) -> tuple[int, int]:
    kept, waived = run_rules(SourceTree(root), RULES, only=only)
    return len(kept), waived


def run_self_test(fixtures: Path) -> int:
    failures: list[str] = []
    checked = 0

    for rule in RULES:
        pair = fixtures / rule.id
        if not (pair / "pass").is_dir() or not (pair / "fail").is_dir():
            failures.append(f"{rule.id}: fixture pair missing under {pair}")
            continue
        ok_kept, _ = _run(pair / "pass", rule.id)
        bad_kept, _ = _run(pair / "fail", rule.id)
        if ok_kept:
            failures.append(f"{rule.id}: flagged the clean pass/ fixture "
                            f"({ok_kept} violation(s))")
        if not bad_kept:
            failures.append(f"{rule.id}: missed the seeded bug in fail/")
        if not ok_kept and bad_kept:
            checked += 1
            print(f"self-test {rule.id}: OK "
                  f"(fail/ flagged {bad_kept} violation(s))")

    # Waiver machinery: same R8 violation, with and without a reason.
    pair = fixtures / "WAIVER"
    if not (pair / "pass").is_dir() or not (pair / "fail").is_dir():
        failures.append(f"WAIVER: fixture pair missing under {pair}")
    else:
        ok_kept, ok_waived = _run(pair / "pass", "R8")
        bad_kept, _ = _run(pair / "fail", "R8")
        if ok_kept or ok_waived != 1:
            failures.append(f"WAIVER: reasoned waiver did not suppress "
                            f"(kept={ok_kept}, waived={ok_waived})")
        if not bad_kept:
            failures.append("WAIVER: reasonless waiver was not reported")
        if not ok_kept and ok_waived == 1 and bad_kept:
            checked += 1
            print("self-test WAIVER: OK (reasoned suppresses, "
                  "reasonless reports)")

    if failures:
        print(f"check_invariants --self-test: {len(failures)} failure(s)")
        for f in failures:
            print("  " + f)
        return 1
    print(f"check_invariants --self-test: OK ({checked} fixture pairs)")
    return 0
