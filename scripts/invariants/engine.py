"""Invariant-lint engine: rule plumbing shared by every rule in rules.py.

The linter is a list of Rule values (rules-as-data) applied to a
SourceTree. A SourceTree is any directory holding `src/` and `tests/` --
the real repository, or the miniature fixture trees under `tests/lint/`
that self-test each rule (one `pass/` and one `fail/` tree per rule, run
by `check_invariants.py --self-test` and wired into ctest).

Waivers: a violating line may carry an inline waiver comment

    // bcop-lint: allow(R8): <reason>

which suppresses exactly that rule on exactly that line. The reason is
mandatory -- a reasonless waiver is itself reported -- so every exemption
in the tree documents why it is sound.
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable


@dataclass(frozen=True)
class Violation:
    rule: str
    path: str  # tree-root-relative posix path
    line: int  # 1-based; 0 for file-level findings
    text: str

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{self.rule}: {where}: {self.text}"


class SourceTree:
    """Read-once view of a lint root (real repo or fixture tree)."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.src = self.root / "src"
        self.tests = self.root / "tests"

    def src_files(self) -> list[tuple[str, str]]:
        """(relative posix path, text) for every .cpp/.hpp under src/."""
        out = []
        if self.src.is_dir():
            for p in sorted(self.src.rglob("*")):
                if p.suffix in (".cpp", ".hpp"):
                    out.append((p.relative_to(self.root).as_posix(),
                                p.read_text()))
        return out

    def read(self, rel: str) -> str | None:
        p = self.root / rel
        return p.read_text() if p.is_file() else None

    def test_corpus(self) -> str:
        """Concatenated top-level tests/*.cpp|hpp (fixture subtrees under
        tests/lint/ are deliberately out of scope)."""
        if not self.tests.is_dir():
            return ""
        return "\n".join(p.read_text()
                         for p in sorted(self.tests.glob("*.[ch]pp")))


@dataclass(frozen=True)
class Rule:
    """One invariant: an id (R1..), the prose shown in reports and docs,
    and a check function over a SourceTree."""
    id: str
    title: str
    rationale: str
    check: Callable[[SourceTree], list[Violation]] = field(repr=False)


WAIVER = re.compile(r"bcop-lint:\s*allow\((?P<rule>[A-Z]\d+)\)(?P<reason>:.+)?")


def strip_comment(line: str) -> str:
    """Drop a trailing // comment so prose mentioning tokens stays legal."""
    return line.split("//", 1)[0]


def apply_waivers(tree: SourceTree,
                  violations: list[Violation]) -> tuple[list[Violation], int]:
    """Suppress violations whose raw line carries a reasoned waiver for
    that rule; flag reasonless waivers as violations of their own."""
    kept: list[Violation] = []
    waived = 0
    line_cache: dict[str, list[str]] = {}

    def raw_line(path: str, lineno: int) -> str:
        if path not in line_cache:
            text = tree.read(path)
            line_cache[path] = text.splitlines() if text is not None else []
        lines = line_cache[path]
        return lines[lineno - 1] if 0 < lineno <= len(lines) else ""

    for v in violations:
        m = WAIVER.search(raw_line(v.path, v.line)) if v.line else None
        if m and m.group("rule") == v.rule:
            if m.group("reason") and m.group("reason").strip(": "):
                waived += 1
                continue
            kept.append(Violation(v.rule, v.path, v.line,
                                  "waiver without a reason -- write "
                                  f"`bcop-lint: allow({v.rule}): <why>`"))
            continue
        kept.append(v)
    return kept, waived


def run_rules(tree: SourceTree, rules: list[Rule],
              only: str | None = None) -> tuple[list[Violation], int]:
    """Apply rules (optionally a single rule id) and resolve waivers."""
    violations: list[Violation] = []
    for rule in rules:
        if only is not None and rule.id != only:
            continue
        violations.extend(rule.check(tree))
    return apply_waivers(tree, violations)


# ---- Declarative rule constructors (the "data" in rules-as-data) ---------

def token_confinement(rule_id: str, title: str, rationale: str,
                      pattern: re.Pattern[str],
                      allowed_prefixes: tuple[str, ...],
                      comment_stripped: bool = False) -> Rule:
    """Forbid a token pattern everywhere under src/ except the named
    prefixes (R1/R2/R3/R5)."""

    def check(tree: SourceTree) -> list[Violation]:
        out = []
        for rel, text in tree.src_files():
            if rel.startswith(allowed_prefixes):
                continue
            for lineno, line in enumerate(text.splitlines(), 1):
                hay = strip_comment(line) if comment_stripped else line
                if pattern.search(hay):
                    out.append(Violation(rule_id, rel, lineno, line.strip()))
        return out

    return Rule(rule_id, title, rationale, check)


def forbidden_tokens_in_files(rule_id: str, title: str, rationale: str,
                              pattern: re.Pattern[str],
                              files: tuple[str, ...]) -> Rule:
    """Forbid a token pattern inside specific must-exist files (R6).
    Comment-stripped: the zone headers *document* the banned tokens."""

    def check(tree: SourceTree) -> list[Violation]:
        out = []
        for rel in files:
            text = tree.read(rel)
            if text is None:
                out.append(Violation(rule_id, rel, 0,
                                     "token-free zone file is missing"))
                continue
            for lineno, line in enumerate(text.splitlines(), 1):
                if pattern.search(strip_comment(line)):
                    out.append(Violation(rule_id, rel, lineno, line.strip()))
        return out

    return Rule(rule_id, title, rationale, check)


def include_hygiene(rule_id: str, title: str, rationale: str,
                    banned: dict[str, tuple[str, ...]]) -> Rule:
    """Forbid direct `#include <hdr>` of named headers per file (R9)."""

    def check(tree: SourceTree) -> list[Violation]:
        out = []
        for rel, headers in sorted(banned.items()):
            text = tree.read(rel)
            if text is None:
                out.append(Violation(rule_id, rel, 0,
                                     "include-hygiene file is missing"))
                continue
            pattern = re.compile(
                r"#\s*include\s*<(" + "|".join(map(re.escape, headers)) + r")>")
            for lineno, line in enumerate(text.splitlines(), 1):
                if pattern.search(strip_comment(line)):
                    out.append(Violation(rule_id, rel, lineno, line.strip()))
        return out

    return Rule(rule_id, title, rationale, check)
