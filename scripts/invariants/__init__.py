"""Rules-as-data invariant linter for the BinaryCoP repo.

Layout:
  engine.py    Rule/Violation/SourceTree plumbing, waiver handling, and
               the declarative rule constructors.
  rules.py     the rule table R1..R9.
  selftest.py  runs every rule against its pass/fail fixture trees under
               tests/lint/ -- the linter lints itself before it lints you.

Entry point: scripts/check_invariants.py (thin CLI over this package).
"""
from .engine import Rule, SourceTree, Violation, run_rules  # noqa: F401
from .rules import RULES  # noqa: F401
