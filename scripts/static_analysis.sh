#!/usr/bin/env bash
# Static-analysis driver: clang-tidy (when installed) + repo-invariant lint.
#
# Usage: scripts/static_analysis.sh [build-dir]
#   build-dir  CMake build tree providing compile_commands.json
#              (default: build; configured automatically if missing).
#
# Exit status is non-zero iff any stage FAILs. A missing clang-tidy binary
# is reported as SKIP, not failure, so the lint still gates environments
# without the LLVM toolchain.
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

declare -a STAGE_NAMES STAGE_RESULTS
record() { STAGE_NAMES+=("$1"); STAGE_RESULTS+=("$2"); }

# --- Stage 1: clang-tidy over src/ ----------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
  echo "== clang-tidy (${#SOURCES[@]} files, config .clang-tidy) =="
  if clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"; then
    record clang-tidy PASS
  else
    record clang-tidy FAIL
  fi
else
  echo "== clang-tidy: not installed, skipping =="
  record clang-tidy SKIP
fi

# --- Stage 2: repo-invariant lint -----------------------------------------
echo "== invariant lint (scripts/check_invariants.py) =="
if python3 scripts/check_invariants.py; then
  record invariant-lint PASS
else
  record invariant-lint FAIL
fi

# --- Summary ---------------------------------------------------------------
echo
echo "static_analysis summary:"
status=0
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %-16s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
  [[ "${STAGE_RESULTS[$i]}" == FAIL ]] && status=1
done
exit $status
