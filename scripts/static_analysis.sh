#!/usr/bin/env bash
# Static-analysis driver: clang-tidy (when installed), repo-invariant lint
# with fixture self-test, and the binary-level hot-path audit.
#
# Usage: scripts/static_analysis.sh [--strict] [build-dir]
#   --strict   tool-missing stages FAIL instead of SKIP. CI uses this on
#              runners that are supposed to have the full toolchain, so a
#              silently absent clang-tidy cannot masquerade as a pass.
#   build-dir  CMake build tree providing compile_commands.json and the
#              compiled objects for the audit
#              (default: build; configured automatically if missing).
#
# Exit status is non-zero iff any stage FAILs. Without --strict a missing
# tool is reported as SKIP, not failure, so the lint still gates
# environments without the LLVM toolchain.
set -uo pipefail

cd "$(dirname "$0")/.."

STRICT=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --strict) STRICT=1 ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

declare -a STAGE_NAMES STAGE_RESULTS
record() { STAGE_NAMES+=("$1"); STAGE_RESULTS+=("$2"); }
# SKIP becomes FAIL under --strict.
skip() { record "$1" "$([[ $STRICT == 1 ]] && echo FAIL || echo SKIP)"; }

# --- Stage 1: clang-tidy over src/ ----------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  # Reconfigure when compile_commands.json is missing or stale: an edited
  # CMakeLists.txt can add flags/definitions clang-tidy must see, and an
  # outdated database silently analyses the wrong build.
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]] ||
     [[ CMakeLists.txt -nt "$BUILD_DIR/compile_commands.json" ]] ||
     [[ src/CMakeLists.txt -nt "$BUILD_DIR/compile_commands.json" ]]; then
    echo "== compile_commands.json missing or stale; reconfiguring =="
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
  echo "== clang-tidy (${#SOURCES[@]} files, config .clang-tidy) =="
  if clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"; then
    record clang-tidy PASS
  else
    record clang-tidy FAIL
  fi
else
  echo "== clang-tidy: not installed, skipping =="
  skip clang-tidy
fi

# --- Stage 2: invariant-linter self-test ----------------------------------
# The linter proves it still detects every rule's seeded bug before its
# verdict on the real tree is trusted.
echo "== invariant lint self-test (tests/lint fixtures) =="
if python3 scripts/check_invariants.py --self-test; then
  record lint-selftest PASS
else
  record lint-selftest FAIL
fi

# --- Stage 3: repo-invariant lint -----------------------------------------
echo "== invariant lint (scripts/check_invariants.py, rules R1-R9) =="
if python3 scripts/check_invariants.py; then
  record invariant-lint PASS
else
  record invariant-lint FAIL
fi

# --- Stage 4: binary-level hot-path audit ---------------------------------
# Requires compiled objects; exit 77 means tools/objects unavailable.
echo "== hot-path audit (scripts/audit_hot_path.py, nm/objdump) =="
python3 scripts/audit_hot_path.py --self-test
selftest_rc=$?
if [[ $selftest_rc == 77 ]]; then
  skip audit-selftest
elif [[ $selftest_rc == 0 ]]; then
  record audit-selftest PASS
else
  record audit-selftest FAIL
fi
if [[ $STRICT == 1 ]]; then
  python3 scripts/audit_hot_path.py --build "$BUILD_DIR" --strict
  audit_rc=$?
else
  python3 scripts/audit_hot_path.py --build "$BUILD_DIR"
  audit_rc=$?
fi
if [[ $audit_rc == 77 ]]; then
  skip hot-path-audit
elif [[ $audit_rc == 0 ]]; then
  record hot-path-audit PASS
else
  record hot-path-audit FAIL
fi

# --- Summary ---------------------------------------------------------------
echo
echo "static_analysis summary$([[ $STRICT == 1 ]] && echo ' (--strict)'):"
status=0
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %-16s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
  [[ "${STAGE_RESULTS[$i]}" == FAIL ]] && status=1
done
exit $status
