#include "gradcam/attention.hpp"

#include <stdexcept>

namespace bcop::gradcam {

namespace {
double total_mass(const std::vector<float>& heat) {
  double s = 0;
  for (float v : heat) s += v;
  return s;
}

double mass_in(const std::vector<float>& heat, int h, int w,
               const facegen::Rect& rect, std::int64_t* pixels) {
  double s = 0;
  std::int64_t n = 0;
  for (int y = 0; y < h; ++y) {
    const float v_norm = (static_cast<float>(y) + 0.5f) / static_cast<float>(h);
    for (int x = 0; x < w; ++x) {
      const float u_norm = (static_cast<float>(x) + 0.5f) / static_cast<float>(w);
      if (rect.contains(u_norm, v_norm)) {
        s += heat[static_cast<std::size_t>(y) * w + x];
        ++n;
      }
    }
  }
  if (pixels) *pixels = n;
  return s;
}
}  // namespace

double region_mass(const std::vector<float>& heat, int h, int w,
                   const facegen::Rect& rect) {
  if (heat.size() != static_cast<std::size_t>(h) * w)
    throw std::invalid_argument("region_mass: size mismatch");
  const double total = total_mass(heat);
  if (total <= 0) return 0;
  return mass_in(heat, h, w, rect, nullptr) / total;
}

double region_saliency(const std::vector<float>& heat, int h, int w,
                       const facegen::Rect& rect) {
  if (heat.size() != static_cast<std::size_t>(h) * w)
    throw std::invalid_argument("region_saliency: size mismatch");
  const double total = total_mass(heat);
  if (total <= 0) return 0;
  std::int64_t pixels = 0;
  const double inside = mass_in(heat, h, w, rect, &pixels);
  if (pixels == 0) return 0;
  const double mean_inside = inside / static_cast<double>(pixels);
  const double mean_all = total / static_cast<double>(h * w);
  return mean_inside / mean_all;
}

AttentionReport score_attention(const std::vector<float>& heat, int h, int w,
                                const facegen::Regions& regions) {
  AttentionReport r;
  r.nose = region_saliency(heat, h, w, regions.nose);
  r.mouth = region_saliency(heat, h, w, regions.mouth);
  r.chin = region_saliency(heat, h, w, regions.chin);
  r.eyes = region_saliency(heat, h, w, regions.eyes);
  r.mask = region_saliency(heat, h, w, regions.mask);
  r.face = region_saliency(heat, h, w, regions.face);
  r.dominant = "nose";
  double best = r.nose;
  const std::pair<const char*, double> others[] = {
      {"mouth", r.mouth}, {"chin", r.chin}, {"eyes", r.eyes}, {"mask", r.mask}};
  for (const auto& [name, v] : others)
    if (v > best) {
      best = v;
      r.dominant = name;
    }
  return r;
}

}  // namespace bcop::gradcam
