// Gradient-weighted Class Activation Mapping (Grad-CAM) [25].
//
// The paper (Sec. III-C) explains its choice: the 32x32-input BNNs have no
// global-average-pooling head, so plain CAM does not apply; Grad-CAM needs
// no architectural change. Attention is taken at the output of the conv2_2
// group (5x5 spatial after pooling): channel weights alpha_k are the
// spatial average of the gradients, the map is the ReLU of the
// alpha-weighted channel sum (an Einstein summation over the channel
// axis), and the result is bilinearly upsampled onto the input image.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"

namespace bcop::gradcam {

struct GradCamResult {
  int fm_h = 0, fm_w = 0;          // feature-map resolution
  std::vector<float> heatmap;      // [fm_h * fm_w], normalized to [0, 1]
  std::vector<float> upsampled;    // [img * img], normalized to [0, 1]
  std::int64_t predicted_class = 0;
  std::int64_t target_class = 0;
};

class GradCam {
 public:
  /// `target_layer` is the index of the layer whose *output* is analyzed
  /// (use core::gradcam_layer_index for the paper's conv2_2 choice).
  GradCam(nn::Sequential& model, std::size_t target_layer);

  /// Compute the localization map for `input` [1, S, S, C].
  /// `target_class` < 0 means "use the predicted class".
  GradCamResult compute(const tensor::Tensor& input,
                        std::int64_t target_class = -1);

 private:
  nn::Sequential* model_;
  std::size_t target_layer_;
};

}  // namespace bcop::gradcam
