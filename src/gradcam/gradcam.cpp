#include "gradcam/gradcam.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "tensor/ops.hpp"

namespace bcop::gradcam {

using tensor::Shape;
using tensor::Tensor;

GradCam::GradCam(nn::Sequential& model, std::size_t target_layer)
    : model_(&model), target_layer_(target_layer) {
  if (target_layer >= model.size())
    throw std::invalid_argument("GradCam: target layer out of range");
}

GradCamResult GradCam::compute(const Tensor& input, std::int64_t target_class) {
  if (input.shape().rank() != 4 || input.shape()[0] != 1)
    throw std::invalid_argument("GradCam: single-sample rank-4 input required");

  // Grad-CAM must differentiate the *inference-time* function: the forward
  // runs in training mode (so every layer caches what backward() needs)
  // with every BatchNorm frozen, i.e. normalizing with its running
  // statistics and treating them as constants. Batch statistics of a
  // single image would both pollute the running averages and zero out
  // gradients through the rank-2 BNs (variance of a single row is 0).
  std::vector<nn::BatchNorm*> bns;
  for (std::size_t i = 0; i < model_->size(); ++i)
    if (auto* bn = dynamic_cast<nn::BatchNorm*>(&model_->layer(i))) {
      bns.push_back(bn);
      bn->set_frozen(true);
    }
  struct Unfreeze {
    std::vector<nn::BatchNorm*>* bns;
    ~Unfreeze() {
      for (auto* bn : *bns) bn->set_frozen(false);
    }
  } unfreeze{&bns};

  std::vector<Tensor> activations;
  const Tensor logits =
      model_->forward_collect(input, /*training=*/true, activations);

  const std::int64_t classes = logits.shape()[1];
  const std::int64_t predicted = tensor::argmax(logits.data(), classes);
  const std::int64_t cls = target_class < 0 ? predicted : target_class;
  if (cls >= classes)
    throw std::invalid_argument("GradCam: target class out of range");

  // One-hot seed on the chosen logit.
  Tensor seed(logits.shape(), 0.f);
  seed.at2(0, cls) = 1.f;

  std::vector<Tensor> output_grads;
  model_->backward_collect(seed, output_grads);

  const Tensor& act = activations.at(target_layer_);
  const Tensor& grad = output_grads.at(target_layer_);
  if (act.shape().rank() != 4)
    throw std::invalid_argument("GradCam: target layer output must be rank-4");
  const std::int64_t H = act.shape()[1], W = act.shape()[2], C = act.shape()[3];

  // alpha_k: global average pooling of the gradients (Eq. 1 of [25]).
  std::vector<float> alpha(static_cast<std::size_t>(C), 0.f);
  for (std::int64_t y = 0; y < H; ++y)
    for (std::int64_t x = 0; x < W; ++x)
      for (std::int64_t c = 0; c < C; ++c)
        alpha[static_cast<std::size_t>(c)] += grad.at4(0, y, x, c);
  const float inv_hw = 1.f / static_cast<float>(H * W);
  for (auto& a : alpha) a *= inv_hw;

  // Einstein sum over channels, then ReLU.
  GradCamResult result;
  result.fm_h = static_cast<int>(H);
  result.fm_w = static_cast<int>(W);
  result.heatmap.assign(static_cast<std::size_t>(H * W), 0.f);
  for (std::int64_t y = 0; y < H; ++y)
    for (std::int64_t x = 0; x < W; ++x) {
      float v = 0.f;
      for (std::int64_t c = 0; c < C; ++c)
        v += alpha[static_cast<std::size_t>(c)] * act.at4(0, y, x, c);
      result.heatmap[static_cast<std::size_t>(y * W + x)] = std::max(v, 0.f);
    }

  // Normalize to [0, 1]; an all-zero map stays all-zero.
  const float mx =
      *std::max_element(result.heatmap.begin(), result.heatmap.end());
  if (mx > 0.f)
    for (auto& v : result.heatmap) v /= mx;

  const int S = static_cast<int>(input.shape()[1]);
  result.upsampled = tensor::bilinear_resize(
      result.heatmap, result.fm_h, result.fm_w, S, S);
  result.predicted_class = predicted;
  result.target_class = cls;
  return result;
}

}  // namespace bcop::gradcam
