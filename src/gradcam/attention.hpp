// Quantitative attention analysis of Grad-CAM heatmaps.
//
// The paper reads its heatmaps qualitatively ("the RoI curves finely above
// the mask..."). Because our faces are synthetic, the generator knows where
// the nose, mouth, chin and mask actually are, so we can *score* the same
// claims: what fraction of attention mass falls inside each landmark
// region, and which region dominates for each class.
#pragma once

#include <string>
#include <vector>

#include "facegen/attributes.hpp"

namespace bcop::gradcam {

/// Fraction of the heatmap's total mass inside `rect` (normalized coords).
/// Returns 0 when the heatmap is empty.
double region_mass(const std::vector<float>& heat, int h, int w,
                   const facegen::Rect& rect);

/// Ratio of mean heat inside the rect to mean heat overall (>1 means the
/// region is hotter than average). Returns 0 for empty heatmaps.
double region_saliency(const std::vector<float>& heat, int h, int w,
                       const facegen::Rect& rect);

struct AttentionReport {
  double nose = 0, mouth = 0, chin = 0, eyes = 0, mask = 0, face = 0;
  /// Name of the landmark with the highest saliency ratio.
  std::string dominant;
};

/// Score a heatmap against a sample's ground-truth regions.
AttentionReport score_attention(const std::vector<float>& heat, int h, int w,
                                const facegen::Regions& regions);

}  // namespace bcop::gradcam
