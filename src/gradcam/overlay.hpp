// Heatmap colorization and overlay rendering for the Grad-CAM figures.
#pragma once

#include <vector>

#include "util/image.hpp"

namespace bcop::gradcam {

/// Jet-style colormap: 0 -> blue, 0.5 -> green/yellow, 1 -> red.
void heat_color(float v, float& r, float& g, float& b);

/// Colorize a [h, w] heatmap in [0,1] into an RGB image.
util::Image colorize(const std::vector<float>& heat, int h, int w);

/// Alpha-blend the colorized heatmap over `base` (paper overlays heatmaps
/// on the raw input "for better visualization"). `alpha` weights the heat.
util::Image overlay(const util::Image& base, const std::vector<float>& heat,
                    float alpha = 0.45f);

/// Compose a row of images side by side with a 1px separator (for the
/// Fig. 3-9 style panels: raw | CNV | n-CNV | FP32).
util::Image hstack(const std::vector<util::Image>& images);

}  // namespace bcop::gradcam
