#include "gradcam/overlay.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcop::gradcam {

using util::Image;

void heat_color(float v, float& r, float& g, float& b) {
  v = std::clamp(v, 0.f, 1.f);
  // Piecewise-linear blue -> green -> red ramp with saturated endpoints.
  r = std::clamp(2.f * v - 1.f, 0.f, 1.f);
  g = 1.f - std::abs(2.f * v - 1.f);
  b = std::clamp(1.f - 2.f * v, 0.f, 1.f);
}

Image colorize(const std::vector<float>& heat, int h, int w) {
  if (heat.size() != static_cast<std::size_t>(h) * w)
    throw std::invalid_argument("colorize: size mismatch");
  Image img(h, w);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      float r, g, b;
      heat_color(heat[static_cast<std::size_t>(y) * w + x], r, g, b);
      img.set_rgb(y, x, r, g, b);
    }
  return img;
}

Image overlay(const Image& base, const std::vector<float>& heat, float alpha) {
  const int h = base.height(), w = base.width();
  if (heat.size() != static_cast<std::size_t>(h) * w)
    throw std::invalid_argument("overlay: heatmap/image size mismatch");
  Image out = base;
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      const float v = heat[static_cast<std::size_t>(y) * w + x];
      float r, g, b;
      heat_color(v, r, g, b);
      // Weight the blend by the heat itself so cold regions stay legible.
      const float a = alpha * v;
      out.blend_rgb_clipped(y, x, r, g, b, a);
    }
  return out;
}

Image hstack(const std::vector<Image>& images) {
  if (images.empty()) throw std::invalid_argument("hstack: no images");
  const int h = images.front().height();
  int w_total = -1;
  for (const auto& im : images) {
    if (im.height() != h) throw std::invalid_argument("hstack: height mismatch");
    w_total += im.width() + 1;
  }
  Image out(h, w_total, 1.f);
  int x0 = 0;
  for (const auto& im : images) {
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < im.width(); ++x)
        out.set_rgb(y, x0 + x, im.at(y, x, 0), im.at(y, x, 1), im.at(y, x, 2));
    x0 += im.width() + 1;
  }
  return out;
}

}  // namespace bcop::gradcam
