// CSV output for benchmark results and experiment logs.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bcop::util {

/// Streams rows to a CSV file; quotes fields containing separators.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; must have the same arity as the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with operator<<.
  template <typename... Ts>
  void rowv(const Ts&... vals) {
    std::vector<std::string> fields;
    (fields.push_back(to_field(vals)), ...);
    row(fields);
  }

 private:
  template <typename T>
  static std::string to_field(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  static std::string escape(const std::string& s);

  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace bcop::util
