#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace bcop::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
// Serializes whole log lines onto stderr (the guarded "state" is the
// stream interleaving, not a member).
Mutex g_mutex;  // bcop-lint: allow(R8): guards stderr line atomicity, not data members

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  using clock = std::chrono::steady_clock;
  static const auto t0 = clock::now();
  const double secs =
      std::chrono::duration<double>(clock::now() - t0).count();
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%9.3f] %s %s\n", secs, level_name(level), msg.c_str());
}

}  // namespace bcop::util
