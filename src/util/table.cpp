#include "util/table.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bcop::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("AsciiTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

namespace {
bool is_numeric(const std::string& s) {
  if (s.empty()) return false;
  double v;
  const auto* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(s.data(), end, v);
  return ec == std::errc() && p == end;
}
}  // namespace

std::string AsciiTable::render() const {
  const std::size_t ncol = header_.size();
  std::vector<std::size_t> width(ncol);
  std::vector<bool> right(ncol, true);
  for (std::size_t c = 0; c < ncol; ++c) {
    width[c] = header_[c].size();
    bool any = false;
    for (const auto& r : rows_) {
      width[c] = std::max(width[c], r[c].size());
      if (!r[c].empty()) {
        any = true;
        if (!is_numeric(r[c])) right[c] = false;
      }
    }
    if (!any) right[c] = false;
  }
  auto sep = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < ncol; ++c) s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& r, bool align_right_ok) {
    std::string s = "|";
    for (std::size_t c = 0; c < ncol; ++c) {
      const std::string& cell = r[c];
      const std::size_t pad = width[c] - cell.size();
      if (align_right_ok && right[c])
        s += " " + std::string(pad, ' ') + cell + " |";
      else
        s += " " + cell + std::string(pad, ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = sep() + line(header_, false) + sep();
  for (const auto& r : rows_) out += line(r, true);
  out += sep();
  return out;
}

std::string fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace bcop::util
