// ASCII table rendering for reproducing the paper's tables on stdout.
#pragma once

#include <string>
#include <vector>

namespace bcop::util {

/// Collects rows of strings and renders an aligned, boxed ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment; columns whose every body cell parses as a
  /// number are right-aligned.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` decimals.
std::string fmt(double v, int prec = 2);

}  // namespace bcop::util
