#include "util/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace bcop::util {

namespace {
std::uint8_t to_u8(float v) {
  return static_cast<std::uint8_t>(std::clamp(std::lround(v * 255.f), 0l, 255l));
}

// Skip whitespace and PNM '#' comments.
void skip_ws(std::istream& in) {
  int c = in.peek();
  while (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#') {
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else {
      in.get();
    }
    c = in.peek();
  }
}
}  // namespace

void Image::blend_rgb_clipped(int y, int x, float r, float g, float b, float a) {
  if (y < 0 || y >= height_ || x < 0 || x >= width_) return;
  float* p = &data_[idx(y, x, 0)];
  p[0] = p[0] * (1.f - a) + r * a;
  p[1] = p[1] * (1.f - a) + g * a;
  p[2] = p[2] * (1.f - a) + b * a;
}

void Image::clamp01() {
  for (auto& v : data_) v = std::clamp(v, 0.f, 1.f);
}

void write_ppm(const std::string& path, const Image& img) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  out << "P6\n" << img.width() << " " << img.height() << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(img.width()) * 3);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x)
      for (int c = 0; c < 3; ++c)
        row[static_cast<std::size_t>(x) * 3 + c] = to_u8(img.at(y, x, c));
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw std::runtime_error("write_ppm: write failed for " + path);
}

Image read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_ppm: cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P6") throw std::runtime_error("read_ppm: not a P6 file: " + path);
  skip_ws(in);
  int w = 0, h = 0, maxval = 0;
  in >> w;
  skip_ws(in);
  in >> h;
  skip_ws(in);
  in >> maxval;
  if (w <= 0 || h <= 0 || maxval != 255)
    throw std::runtime_error("read_ppm: unsupported header in " + path);
  in.get();  // single whitespace after maxval
  Image img(h, w);
  std::vector<std::uint8_t> row(static_cast<std::size_t>(w) * 3);
  for (int y = 0; y < h; ++y) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    if (!in) throw std::runtime_error("read_ppm: truncated file " + path);
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < 3; ++c)
        img.at(y, x, c) = static_cast<float>(row[static_cast<std::size_t>(x) * 3 + c]) / 255.f;
  }
  return img;
}

void write_pgm(const std::string& path, const std::vector<float>& gray,
               int height, int width) {
  if (gray.size() != static_cast<std::size_t>(height) * width)
    throw std::invalid_argument("write_pgm: size mismatch");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << width << " " << height << "\n255\n";
  for (float v : gray) {
    const std::uint8_t b = to_u8(v);
    out.write(reinterpret_cast<const char*>(&b), 1);
  }
}

}  // namespace bcop::util
