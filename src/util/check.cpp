#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace bcop::util::detail {

void check_fail(const char* file, int line, const char* expr,
                const char* fmt, ...) {
  std::fprintf(stderr, "%s:%d: CHECK failed: %s", file, line, expr);
  if (fmt != nullptr) {
    std::fprintf(stderr, ": ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace bcop::util::detail
