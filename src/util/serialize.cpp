#include "util/serialize.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace bcop::util {

static_assert(std::endian::native == std::endian::little,
              "bcop serialization targets little-endian hosts");

// Arrays above this length are rejected by the reader: real model files are
// far smaller, so a larger length means a corrupt or truncated file and we
// fail before attempting a multi-gigabyte allocation.
constexpr std::uint64_t kMaxArrayLen = 1ull << 28;

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
}

void BinaryWriter::raw(const void* p, std::size_t n) {
  out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
}

void BinaryWriter::write_tag(const char tag[4]) { raw(tag, 4); }
void BinaryWriter::write_u32(std::uint32_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_i32(std::int32_t v) { raw(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  raw(s.data(), s.size());
}

void BinaryWriter::write_f32_array(const std::vector<float>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_u64_array(const std::vector<std::uint64_t>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(std::uint64_t));
}

void BinaryWriter::write_i32_array(const std::vector<std::int32_t>& v) {
  write_u64(v.size());
  raw(v.data(), v.size() * sizeof(std::int32_t));
}

void BinaryWriter::close() {
  out_.flush();
  if (!out_) throw std::runtime_error("BinaryWriter: write failed for " + path_);
  out_.close();
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
}

void BinaryReader::raw(void* p, std::size_t n) {
  in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (!in_) throw std::runtime_error("BinaryReader: truncated file " + path_);
}

void BinaryReader::expect_tag(const char tag[4]) {
  char got[4];
  raw(got, 4);
  if (std::memcmp(got, tag, 4) != 0) {
    throw std::runtime_error("BinaryReader: tag mismatch in " + path_ +
                             ": expected '" + std::string(tag, 4) + "', got '" +
                             std::string(got, 4) + "'");
  }
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  raw(&v, sizeof v);
  return v;
}
std::int32_t BinaryReader::read_i32() {
  std::int32_t v;
  raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v;
  raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  if (n > kMaxArrayLen) throw std::runtime_error("BinaryReader: bad string length");
  std::string s(n, '\0');
  raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_array() {
  const std::uint64_t n = read_u64();
  if (n > kMaxArrayLen) throw std::runtime_error("BinaryReader: bad array length");
  std::vector<float> v(n);
  raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<std::uint64_t> BinaryReader::read_u64_array() {
  const std::uint64_t n = read_u64();
  if (n > kMaxArrayLen) throw std::runtime_error("BinaryReader: bad array length");
  std::vector<std::uint64_t> v(n);
  raw(v.data(), n * sizeof(std::uint64_t));
  return v;
}

std::vector<std::int32_t> BinaryReader::read_i32_array() {
  const std::uint64_t n = read_u64();
  if (n > kMaxArrayLen) throw std::runtime_error("BinaryReader: bad array length");
  std::vector<std::int32_t> v(n);
  raw(v.data(), n * sizeof(std::int32_t));
  return v;
}

bool BinaryReader::eof() {
  return in_.peek() == std::char_traits<char>::eof();
}

}  // namespace bcop::util
