// Compile-time concurrency contracts: Clang thread-safety annotations and
// the annotated mutex vocabulary the whole repo locks with.
//
// FINN argues its resource guarantees from construction, not observation;
// this header does the same for locking. Every mutex-protected member in
// src/ declares which mutex guards it (BCOP_GUARDED_BY), every locking
// method declares what it acquires (BCOP_ACQUIRE / BCOP_RELEASE /
// BCOP_REQUIRES / BCOP_EXCLUDES), and a Clang build with
// `-DBCOP_THREAD_SAFETY=ON` turns the contracts into hard compile errors
// (`-Wthread-safety -Werror=thread-safety`). Under GCC every macro expands
// to nothing, so the annotations cost zero in the default toolchain.
//
// Clang's analysis only understands lock/unlock functions that carry the
// attributes, and libstdc++'s std::mutex does not. The repo therefore
// locks through the wrappers below -- util::Mutex (an annotated capability
// around std::mutex) plus the scoped MutexLock / UniqueLock -- instead of
// raw std::mutex + std::lock_guard. Lint rule R8 enforces both halves of
// the convention: no raw std::mutex members outside this header, and every
// Mutex member must have at least one BCOP_GUARDED_BY referring to it.
//
// Condition-variable convention: Clang cannot see through a predicate
// lambda handed to condition_variable::wait, so wait sites are written as
// explicit loops over guarded state --
//
//     util::UniqueLock lock(mutex_);
//     while (!ready_) cv_.wait(lock.native());
//
// The analysis treats the capability as held across the wait (the wait
// reacquires before returning, so every guarded access in the loop is in
// fact protected).
//
// Attribute reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BCOP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BCOP_THREAD_ANNOTATION
#define BCOP_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" names the capability
/// kind in diagnostics).
#define BCOP_CAPABILITY(x) BCOP_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define BCOP_SCOPED_CAPABILITY BCOP_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the named mutex.
#define BCOP_GUARDED_BY(x) BCOP_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named mutex.
#define BCOP_PT_GUARDED_BY(x) BCOP_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (held on return).
#define BCOP_ACQUIRE(...) \
  BCOP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (caller must hold it).
#define BCOP_RELEASE(...) \
  BCOP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define BCOP_TRY_ACQUIRE(...) \
  BCOP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must already hold the capability.
#define BCOP_REQUIRES(...) \
  BCOP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention for
/// self-locking public APIs).
#define BCOP_EXCLUDES(...) BCOP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define BCOP_ACQUIRED_BEFORE(...) \
  BCOP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BCOP_ACQUIRED_AFTER(...) \
  BCOP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define BCOP_RETURN_CAPABILITY(x) BCOP_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch; every use must carry a written justification.
#define BCOP_NO_THREAD_SAFETY_ANALYSIS \
  BCOP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bcop::util {

/// Annotated exclusive mutex: std::mutex wearing the capability attribute
/// so Clang tracks lock()/unlock() pairing and GUARDED_BY accesses.
/// Prefer the scoped MutexLock / UniqueLock over calling lock() directly.
class BCOP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BCOP_ACQUIRE() { m_.lock(); }
  void unlock() BCOP_RELEASE() { m_.unlock(); }
  bool try_lock() BCOP_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped std::mutex, for condition-variable waits (which
  /// need a std::unique_lock<std::mutex>). Waits follow the loop
  /// convention documented at the top of this header.
  std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard equivalent: acquires in the constructor, releases in
/// the destructor, no manual unlock.
class BCOP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) BCOP_ACQUIRE(m) : lock_(m.native()) {}
  ~MutexLock() BCOP_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

/// std::unique_lock equivalent: scoped like MutexLock but relockable
/// (lock()/unlock() mid-scope) and usable with condition variables via
/// native(). The destructor releases only if currently held.
class BCOP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) BCOP_ACQUIRE(m) : lock_(m.native()) {}
  ~UniqueLock() BCOP_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() BCOP_ACQUIRE() { lock_.lock(); }
  void unlock() BCOP_RELEASE() { lock_.unlock(); }
  bool owns_lock() const noexcept { return lock_.owns_lock(); }

  /// The underlying std::unique_lock for condition_variable::wait.
  std::unique_lock<std::mutex>& native() noexcept { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace bcop::util
