// Minimal command-line argument parser for examples and bench binaries.
//
// Supports `--key value` and `--flag` forms. Unknown arguments throw, so a
// typo in a bench invocation fails loudly instead of silently using defaults.
#pragma once

#include <map>
#include <set>
#include <string>

namespace bcop::util {

class Args {
 public:
  /// Parse argv. `flag_names` lists boolean options that take no value.
  Args(int argc, const char* const* argv,
       const std::set<std::string>& flag_names = {});

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  bool get_flag(const std::string& key) const;

 private:
  std::map<std::string, std::string> kv_;
  std::set<std::string> flags_;
};

}  // namespace bcop::util
