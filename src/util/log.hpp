// Leveled logging with timestamps, writing to stderr.
//
// Kept deliberately small: benches and examples print their primary output
// to stdout (tables, CSV); the logger is for progress and diagnostics only,
// so the two streams can be separated with shell redirection.
#pragma once

#include <sstream>
#include <string>

namespace bcop::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a single log line (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(parts...));
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  log_message(LogLevel::kError, detail::concat(parts...));
}

}  // namespace bcop::util
