// Minimal image container and portable pixmap (PPM/PGM) input/output.
//
// Images are stored as interleaved RGB float32 in [0, 1], row-major
// (height, width, 3). This matches the network input layout (NHWC) so no
// transposition is needed when feeding tensors. PPM/PGM are used for all
// artifacts (dataset dumps, Grad-CAM overlays) because they need no external
// dependencies and are viewable everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace bcop::util {

/// Interleaved RGB float image in [0,1].
class Image {
 public:
  Image() = default;
  Image(int height, int width, float fill = 0.f)
      : height_(height), width_(width),
        data_(static_cast<std::size_t>(height) * width * 3, fill) {}

  int height() const { return height_; }
  int width() const { return width_; }

  float& at(int y, int x, int c) { return data_[idx(y, x, c)]; }
  float at(int y, int x, int c) const { return data_[idx(y, x, c)]; }

  /// Set all three channels at (y, x). No bounds check (hot path) unless
  /// BCOP_BOUNDS_CHECK is on.
  void set_rgb(int y, int x, float r, float g, float b) {
    float* p = &data_[idx(y, x, 0)];
    p[0] = r;
    p[1] = g;
    p[2] = b;
  }

  /// Bounds-checked variant used by renderers drawing near edges.
  void set_rgb_clipped(int y, int x, float r, float g, float b) {
    if (y < 0 || y >= height_ || x < 0 || x >= width_) return;
    set_rgb(y, x, r, g, b);
  }

  /// Alpha-blend (r,g,b) over the current pixel with opacity a in [0,1].
  void blend_rgb_clipped(int y, int x, float r, float g, float b, float a);

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  /// Clamp every value into [0,1].
  void clamp01();

 private:
  std::size_t idx(int y, int x, int c) const {
    BCOP_DCHECK(y >= 0 && y < height_ && x >= 0 && x < width_ && c >= 0 && c < 3,
                "pixel (%d, %d, %d) out of %dx%dx3", y, x, c, height_, width_);
    return (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
            static_cast<std::size_t>(x)) * 3 + static_cast<std::size_t>(c);
  }

  int height_ = 0;
  int width_ = 0;
  std::vector<float> data_;
};

/// Write a binary PPM (P6), quantizing [0,1] floats to 8-bit.
void write_ppm(const std::string& path, const Image& img);

/// Read a binary PPM (P6) back into float [0,1]. Throws on malformed files.
Image read_ppm(const std::string& path);

/// Write a grayscale PGM (P5) from a single-channel float map in [0,1].
void write_pgm(const std::string& path, const std::vector<float>& gray,
               int height, int width);

}  // namespace bcop::util
