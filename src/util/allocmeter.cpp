// Counting replacements for the replaceable global allocation functions
// ([new.delete.single] / [new.delete.array]). Compiled as an OBJECT
// library so the replacement happens only in binaries that link it.
#include "util/allocmeter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded ? padded : align);
}

}  // namespace

namespace bcop::util {
std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}
}  // namespace bcop::util

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
