// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng so that a single seed fully
// determines dataset generation, weight initialization, augmentation and
// shuffling. The generator is xoshiro256** seeded via SplitMix64, which is
// fast, has a 2^256-1 period and passes BigCrush; std::mt19937 is avoided
// because its state is large and its distributions are not reproducible
// across standard library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace bcop::util {

/// Counter-based seeding helper; also usable standalone for hashing seeds.
/// Reference: Steele et al., "Fast Splittable Pseudorandom Number Generators".
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator with reproducible helper distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedull);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A new generator whose seed is derived from this one; use to give
  /// independent streams to parallel workers.
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bcop::util
