// Tagged little-endian binary serialization for model files.
//
// The format is deliberately explicit: every write carries a 4-byte tag that
// the reader checks, so version or layout drift is detected immediately
// instead of producing silently corrupt weights. All multi-byte values are
// little-endian; this library targets little-endian hosts (checked at open).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace bcop::util {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_tag(const char tag[4]);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_f32(float v);
  void write_string(const std::string& s);
  void write_f32_array(const std::vector<float>& v);
  void write_u64_array(const std::vector<std::uint64_t>& v);
  void write_i32_array(const std::vector<std::int32_t>& v);

  /// Flush and verify stream health; throws if any write failed.
  void close();

 private:
  void raw(const void* p, std::size_t n);
  std::ofstream out_;
  std::string path_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  /// Throws std::runtime_error naming both tags if the next tag mismatches.
  void expect_tag(const char tag[4]);
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  float read_f32();
  std::string read_string();
  std::vector<float> read_f32_array();
  std::vector<std::uint64_t> read_u64_array();
  std::vector<std::int32_t> read_i32_array();

  bool eof();

 private:
  void raw(void* p, std::size_t n);
  std::ifstream in_;
  std::string path_;
};

}  // namespace bcop::util
