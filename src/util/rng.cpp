#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bcop::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 bits of mantissa, in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace bcop::util
