#include "util/args.hpp"

#include <stdexcept>

namespace bcop::util {

Args::Args(int argc, const char* const* argv,
           const std::set<std::string>& flag_names) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0)
      throw std::invalid_argument("Args: expected --option, got '" + a + "'");
    a = a.substr(2);
    const auto eq = a.find('=');
    if (eq != std::string::npos) {
      kv_[a.substr(0, eq)] = a.substr(eq + 1);
    } else if (flag_names.count(a)) {
      flags_.insert(a);
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("Args: missing value for --" + a);
      kv_[a] = argv[++i];
    }
  }
}

bool Args::has(const std::string& key) const {
  return kv_.count(key) > 0 || flags_.count(key) > 0;
}

std::string Args::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int Args::get_int(const std::string& key, int def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoi(it->second);
}

double Args::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stod(it->second);
}

bool Args::get_flag(const std::string& key) const { return flags_.count(key) > 0; }

}  // namespace bcop::util
