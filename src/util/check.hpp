// Runtime contract macros for hot-path and API precondition checking.
//
// Two tiers, mirroring the Abseil/glog CHECK family:
//
//   BCOP_CHECK(cond, fmt, ...)   always compiled in, every build type. Use
//       for API boundaries and cold paths where a violated precondition
//       must never proceed (serialization headers, folding parameters,
//       thread-pool state machines).
//   BCOP_DCHECK(cond, fmt, ...)  compiled only when BCOP_BOUNDS_CHECK is
//       defined (cmake -DBCOP_BOUNDS_CHECK=ON). Use on hot paths — tensor
//       element accessors, bit-word indexing — where a branch per access is
//       unacceptable in production but invaluable under the sanitizer
//       matrix. Expands to a no-op (arguments unevaluated) when off, so it
//       is zero-overhead by construction, not by optimizer mercy.
//
// Failure behaviour: print "<file>:<line>: CHECK failed: <expr>: <message>"
// to stderr and abort(). Abort rather than throw so that a violated
// invariant cannot be swallowed by a catch(...) and so gtest death tests
// can assert on it.
//
// The message is printf-style: BCOP_CHECK(i < n, "index %lld out of [0,%lld)",
// i, n). The format arguments are only evaluated on failure.
#pragma once

#include <cstdarg>

namespace bcop::util::detail {

/// Prints the failure report and aborts. Never returns.
[[noreturn]] void check_fail(const char* file, int line, const char* expr,
                             const char* fmt = nullptr, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace bcop::util::detail

#define BCOP_CHECK(cond, ...)                                           \
  (static_cast<bool>(cond)                                              \
       ? static_cast<void>(0)                                           \
       : ::bcop::util::detail::check_fail(__FILE__, __LINE__,           \
                                          #cond __VA_OPT__(, ) __VA_ARGS__))

#if defined(BCOP_BOUNDS_CHECK) && BCOP_BOUNDS_CHECK
#define BCOP_DCHECK(cond, ...) BCOP_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define BCOP_DCHECK(cond, ...) static_cast<void>(0)
#endif
