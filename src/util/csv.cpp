#include "util/csv.hpp"

#include <stdexcept>

namespace bcop::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != arity_)
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += "\"\"";
    else q += c;
  }
  q += '"';
  return q;
}

}  // namespace bcop::util
