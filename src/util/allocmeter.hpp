// Heap-allocation meter: a replaceable-global-operator-new interposer.
//
// Linking the bcop_allocmeter OBJECT library into a binary replaces the
// global operator new/delete family with counting versions, so a test or
// benchmark can assert "this region performed N heap allocations" -- the
// measurement behind the engine's zero-allocation steady-state contract
// (tests/test_zero_alloc.cpp, bench/bench_serving_throughput.cpp).
//
// Deliberately NOT part of bcop_util: replacing global new is a
// whole-binary decision, so only binaries that opt in by linking the
// object library get the interposer. This header alone is inert.
#pragma once

#include <cstdint>

namespace bcop::util {

/// Total global operator-new invocations observed in this process (all
/// threads, relaxed ordering). Monotonic; meaningful only in binaries that
/// link bcop_allocmeter -- elsewhere the count stays 0.
std::uint64_t alloc_count();

/// Convenience for "allocations inside this region" measurements:
///   const auto before = alloc_mark();
///   work();
///   const auto n = alloc_count() - before;
inline std::uint64_t alloc_mark() { return alloc_count(); }

}  // namespace bcop::util
