// CPU-affinity helpers for replica worker pinning.
//
// The FINN scale-out work (Fraser et al.) replicates compute engines and
// gives each its own slice of the fabric; the CPU analogue is one serving
// replica per disjoint core set, so replicas never migrate onto each
// other's caches and the capacity sweep (bench/bench_capacity) measures
// cores -> req/s instead of scheduler noise. serve::Replica workers call
// pin_current_thread() with the set handed out by partition_cpus().
//
// Everything degrades gracefully: on hosts without sched_setaffinity (or
// when the requested CPUs are outside the process mask) pinning reports
// false and the caller keeps running unpinned -- pinning is a performance
// hint, never a correctness dependency. No raw std::thread here (repo
// rule R2): these helpers act on the *calling* thread only.
#pragma once

#include <vector>

namespace bcop::parallel {

/// CPUs the current process may run on (affinity-mask aware, not just
/// hardware_concurrency). Falls back to hardware_concurrency when the
/// mask cannot be read; never returns less than 1.
int available_cpus();

/// The CPU ids in the process's affinity mask, in ascending order.
/// Empty when the mask cannot be read.
std::vector<int> cpu_ids();

/// Pin the calling thread to `cpus` (ids as reported by cpu_ids()).
/// Returns false -- leaving the thread unpinned -- when `cpus` is empty,
/// contains no runnable CPU, or the platform has no affinity syscall.
bool pin_current_thread(const std::vector<int>& cpus);

/// Partition the process's CPUs into `groups` disjoint sets and return
/// set `group` (round-robin deal, so sets differ in size by at most one).
/// With more groups than CPUs the deal wraps: sets beyond the CPU count
/// alias earlier ones rather than coming back empty -- oversubscription
/// degrades, it never disables a replica. `groups` must be >= 1 and
/// `group` < `groups` (BCOP_CHECK).
std::vector<int> partition_cpus(unsigned group, unsigned groups);

}  // namespace bcop::parallel
