#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/check.hpp"

namespace bcop::parallel {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  BCOP_CHECK(static_cast<bool>(task), "submit of empty std::function");
  if (workers_.empty()) {
    task();  // inline execution keeps single-threaded builds overhead-free
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      BCOP_CHECK(in_flight_ > 0, "in_flight underflow in worker_loop");
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0u;
  }());
  return pool;
}

void parallel_for_chunked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t workers = static_cast<std::int64_t>(pool.size()) + 1;
  const std::int64_t chunks = std::min(n, workers);
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  // The last chunk runs on the calling thread so the caller participates.
  for (std::int64_t c = 0; c < chunks - 1; ++c) {
    const std::int64_t lo = begin + c * chunk;
    const std::int64_t hi = std::min(end, lo + chunk);
    pool.submit([&, lo, hi] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        body(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    });
  }
  const std::int64_t lo = begin + (chunks - 1) * chunk;
  if (lo < end) {
    try {
      body(lo, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!failed.exchange(true)) first_error = std::current_exception();
    }
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body) {
  parallel_for_chunked(pool, begin, end,
                       [&body](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) body(i);
                       });
}

}  // namespace bcop::parallel
