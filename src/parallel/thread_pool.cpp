#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bcop::parallel {

using util::MutexLock;
using util::UniqueLock;

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  BCOP_CHECK(static_cast<bool>(task), "submit of empty std::function");
  if (workers_.empty()) {
    task();  // inline execution keeps single-threaded builds overhead-free
    return;
  }
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  UniqueLock lock(mutex_);
  while (in_flight_ != 0) cv_idle_.wait(lock.native());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!has_work()) cv_work_.wait(lock.native());
      if (bulk_fn_ != nullptr && bulk_cursor_ < bulk_end_ && queue_.empty()) {
        lock.unlock();
        run_bulk_chunks();
        continue;
      }
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(mutex_);
      BCOP_CHECK(in_flight_ > 0, "in_flight underflow in worker_loop");
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::run_bulk_chunks() {
  UniqueLock lock(mutex_);
  while (bulk_fn_ != nullptr && bulk_cursor_ < bulk_end_) {
    const std::int64_t lo = bulk_cursor_;
    const std::int64_t hi = std::min(bulk_end_, lo + bulk_chunk_);
    bulk_cursor_ = hi;
    ++bulk_pending_;
    const ChunkFn fn = bulk_fn_;
    void* ctx = bulk_ctx_;
    const bool skip = bulk_failed_;
    lock.unlock();
    if (!skip) {
      try {
        fn(ctx, lo, hi);
      } catch (...) {
        lock.lock();
        if (!bulk_failed_) {
          bulk_failed_ = true;
          bulk_error_ = std::current_exception();
        }
        lock.unlock();
      }
    }
    lock.lock();
    BCOP_CHECK(bulk_pending_ > 0, "bulk_pending underflow in run_bulk_chunks");
    if (--bulk_pending_ == 0 && bulk_cursor_ >= bulk_end_)
      cv_bulk_done_.notify_all();
  }
}

void ThreadPool::for_chunks(std::int64_t begin, std::int64_t end, ChunkFn fn,
                            void* ctx) {
  BCOP_CHECK(fn != nullptr, "for_chunks with null chunk function");
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t parts =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(size()) + 1);
  if (parts <= 1) {
    fn(ctx, begin, end);
    return;
  }
  // One bulk region at a time per pool; concurrent callers queue here.
  MutexLock region(bulk_mutex_);
  {
    MutexLock lock(mutex_);
    bulk_fn_ = fn;
    bulk_ctx_ = ctx;
    bulk_cursor_ = begin;
    bulk_end_ = end;
    bulk_chunk_ = (n + parts - 1) / parts;
    bulk_pending_ = 0;
    bulk_failed_ = false;
    bulk_error_ = nullptr;
  }
  cv_work_.notify_all();
  run_bulk_chunks();  // the caller claims chunks alongside the workers
  std::exception_ptr error;
  {
    UniqueLock lock(mutex_);
    while (!(bulk_pending_ == 0 && bulk_cursor_ >= bulk_end_))
      cv_bulk_done_.wait(lock.native());
    bulk_fn_ = nullptr;
    bulk_ctx_ = nullptr;
    error = bulk_error_;
    bulk_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0u;
  }());
  return pool;
}

void parallel_for_chunked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  using Body = const std::function<void(std::int64_t, std::int64_t)>;
  pool.for_chunks(begin, end,
                  [](void* ctx, std::int64_t lo, std::int64_t hi) {
                    (*static_cast<Body*>(ctx))(lo, hi);
                  },
                  const_cast<void*>(static_cast<const void*>(&body)));
}

void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body) {
  parallel_for_chunked(pool, begin, end,
                       [&body](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) body(i);
                       });
}

}  // namespace bcop::parallel
