#include "parallel/affinity.hpp"

#include <algorithm>
#include <thread>

#include "util/check.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace bcop::parallel {

std::vector<int> cpu_ids() {
  std::vector<int> ids;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (::sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu)
      if (CPU_ISSET(cpu, &mask)) ids.push_back(cpu);
  }
#endif
  return ids;
}

int available_cpus() {
  const std::vector<int> ids = cpu_ids();
  if (!ids.empty()) return static_cast<int>(ids.size());
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool pin_current_thread(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  bool any = false;
  for (const int cpu : cpus) {
    if (cpu < 0 || cpu >= CPU_SETSIZE) continue;
    CPU_SET(cpu, &mask);
    any = true;
  }
  if (!any) return false;
  // 0 == the calling thread; an EINVAL (CPU outside the cgroup mask)
  // leaves the thread unpinned, which is the documented soft failure.
  return ::sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
  return false;
#endif
}

std::vector<int> partition_cpus(unsigned group, unsigned groups) {
  BCOP_CHECK(groups >= 1, "partition_cpus: groups must be >= 1");
  BCOP_CHECK(group < groups, "partition_cpus: group %u out of %u", group,
             groups);
  const std::vector<int> ids = cpu_ids();
  std::vector<int> mine;
  if (ids.empty()) return mine;
  if (groups > ids.size()) {
    // Oversubscribed: alias groups onto CPUs round-robin instead of
    // handing out empty sets.
    mine.push_back(ids[group % ids.size()]);
    return mine;
  }
  for (std::size_t i = group; i < ids.size(); i += groups)
    mine.push_back(ids[i]);
  return mine;
}

}  // namespace bcop::parallel
