// Shared-memory work pool used by training and batched inference.
//
// Design follows the C++ Core Guidelines concurrency rules: the pool owns
// its threads (RAII, joined in the destructor), work items are type-erased
// std::function values moved into a mutex-protected queue, and no raw
// owning pointers or detached threads exist anywhere. `parallel_for`
// implements the OpenMP "parallel for schedule(static)" pattern: the index
// range is split into contiguous chunks, one per worker, and the caller
// blocks until all chunks finish. On a single-core host the pool degrades
// gracefully (work runs inline when the pool has zero workers).
//
// Locking contract (util/thread_annotations.hpp): every member below
// declares its guarding mutex, so a Clang `-DBCOP_THREAD_SAFETY=ON` build
// proves statically that no queue/bulk state is touched without mutex_
// held and that the public entry points never self-deadlock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace bcop::parallel {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means "run submitted work inline", which
  /// keeps callers on single-core machines free of scheduling overhead.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; returns immediately. Pair with wait_idle() to join.
  void submit(std::function<void()> task) BCOP_EXCLUDES(mutex_);

  /// Block until every submitted task has completed.
  void wait_idle() BCOP_EXCLUDES(mutex_);

  /// Chunk body for for_chunks: fn(ctx, chunk_begin, chunk_end).
  using ChunkFn = void (*)(void* ctx, std::int64_t, std::int64_t);

  /// Allocation-free static-schedule chunked loop over [begin, end): the
  /// body arrives as a raw function pointer + context, and workers claim
  /// contiguous chunks off a shared cursor, so the hot serving path posts
  /// no std::function objects and no queue nodes (measured by the
  /// steady-state allocation tests). The calling thread participates.
  /// Regions serialize per pool (one loop in flight at a time); each
  /// region still fans out over every worker, so concurrent callers lose
  /// only interleaving, not parallelism. Exceptions from the body
  /// propagate to the caller (first one wins). Must not be called from
  /// inside a chunk body of the same pool (statically enforced by the
  /// BCOP_EXCLUDES below under Clang thread-safety builds).
  void for_chunks(std::int64_t begin, std::int64_t end, ChunkFn fn, void* ctx)
      BCOP_EXCLUDES(bulk_mutex_, mutex_);

  /// Process-wide pool sized to hardware_concurrency() - 1 workers.
  static ThreadPool& global();

 private:
  void worker_loop() BCOP_EXCLUDES(mutex_);
  void run_bulk_chunks() BCOP_EXCLUDES(mutex_);

  /// Wake condition for workers: shutdown, queued task, or an open bulk
  /// region with unclaimed chunks.
  bool has_work() const BCOP_REQUIRES(mutex_) {
    return stop_ || !queue_.empty() ||
           (bulk_fn_ != nullptr && bulk_cursor_ < bulk_end_);
  }

  std::vector<std::thread> workers_;  // written only in the constructor
  util::Mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> queue_ BCOP_GUARDED_BY(mutex_);
  std::size_t in_flight_ BCOP_GUARDED_BY(mutex_) = 0;
  bool stop_ BCOP_GUARDED_BY(mutex_) = false;

  // Bulk-region state for for_chunks. All fields are guarded by mutex_
  // (chunks are coarse -- at most workers+1 per region -- so claiming
  // under the lock is cheaper than the allocation-free bookkeeping an
  // atomic cursor would need to stay epoch-safe). bulk_mutex_ serializes
  // whole regions; it is taken before mutex_ and never the other way
  // (declared via BCOP_ACQUIRED_BEFORE, checked under
  // -Wthread-safety-beta). It guards no data of its own -- it is a pure
  // region lock -- hence the R8 waiver.
  util::Mutex bulk_mutex_
      BCOP_ACQUIRED_BEFORE(mutex_);  // bcop-lint: allow(R8): region lock, guards no members
  ChunkFn bulk_fn_ BCOP_GUARDED_BY(mutex_) = nullptr;
  void* bulk_ctx_ BCOP_GUARDED_BY(mutex_) = nullptr;
  std::int64_t bulk_cursor_ BCOP_GUARDED_BY(mutex_) = 0;
  std::int64_t bulk_end_ BCOP_GUARDED_BY(mutex_) = 0;
  std::int64_t bulk_chunk_ BCOP_GUARDED_BY(mutex_) = 1;
  std::int64_t bulk_pending_ BCOP_GUARDED_BY(mutex_) = 0;
  bool bulk_failed_ BCOP_GUARDED_BY(mutex_) = false;
  std::exception_ptr bulk_error_ BCOP_GUARDED_BY(mutex_);
  std::condition_variable cv_bulk_done_;
};

/// Static-schedule parallel loop over [begin, end). `body(i)` is invoked
/// exactly once for every index, from the calling thread and/or workers.
/// Exceptions from the body propagate to the caller (first one wins).
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body);

/// Chunked variant: body receives [chunk_begin, chunk_end) ranges. Useful
/// when per-index dispatch through std::function would dominate.
void parallel_for_chunked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace bcop::parallel
