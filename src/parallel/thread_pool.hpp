// Shared-memory work pool used by training and batched inference.
//
// Design follows the C++ Core Guidelines concurrency rules: the pool owns
// its threads (RAII, joined in the destructor), work items are type-erased
// std::function values moved into a mutex-protected queue, and no raw
// owning pointers or detached threads exist anywhere. `parallel_for`
// implements the OpenMP "parallel for schedule(static)" pattern: the index
// range is split into contiguous chunks, one per worker, and the caller
// blocks until all chunks finish. On a single-core host the pool degrades
// gracefully (work runs inline when the pool has zero workers).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bcop::parallel {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means "run submitted work inline", which
  /// keeps callers on single-core machines free of scheduling overhead.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; returns immediately. Pair with wait_idle() to join.
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed.
  void wait_idle();

  /// Process-wide pool sized to hardware_concurrency() - 1 workers.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Static-schedule parallel loop over [begin, end). `body(i)` is invoked
/// exactly once for every index, from the calling thread and/or workers.
/// Exceptions from the body propagate to the caller (first one wins).
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body);

/// Chunked variant: body receives [chunk_begin, chunk_end) ranges. Useful
/// when per-index dispatch through std::function would dominate.
void parallel_for_chunked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace bcop::parallel
