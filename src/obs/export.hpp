// Snapshot exporters: one JSON document and one Prometheus text page.
//
// Both are pure functions of a MetricsSnapshot (obs/registry.hpp), so a
// server can take one snapshot and serve both formats, and tests can pin
// exact golden output from hand-built snapshots. Formats are documented
// with real generated samples in docs/observability.md.
#pragma once

#include <string>

#include "obs/registry.hpp"

namespace bcop::obs {

/// One JSON object: {"counters": {..}, "gauges": {..}, "histograms":
/// {name: {count, sum, p50, p90, p99, buckets: [{le, count}, ...]}}}.
/// Buckets are cumulative (count = samples <= le), matching the
/// Prometheus layout, so the two exports describe identical data.
std::string export_json(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format (version 0.0.4): `# TYPE` headers,
/// `_bucket{le="..."}` cumulative buckets with a final `+Inf`, `_sum` and
/// `_count` series per histogram. Values keep the metric's base unit --
/// this repo records durations in integer nanoseconds (`*_ns` names)
/// rather than converting to seconds.
std::string export_prometheus(const MetricsSnapshot& snapshot);

}  // namespace bcop::obs
