#include "obs/export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace bcop::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// Quantiles print with one decimal: they are bucket midpoints (x.0 or
/// x.5), so one digit is exact and keeps golden tests stable.
void append_json_histogram(std::string& out,
                           const MetricsSnapshot::HistogramValue& h) {
  appendf(out,
          "    \"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
          ", \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f, \"buckets\": [",
          h.name.c_str(), h.count, h.sum, h.p50, h.p90, h.p99);
  for (std::size_t i = 0; i < h.cumulative.size(); ++i)
    appendf(out, "%s{\"le\": %" PRIu64 ", \"count\": %" PRIu64 "}",
            i ? ", " : "", h.cumulative[i].first, h.cumulative[i].second);
  out += "]}";
}

}  // namespace

std::string export_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i)
    appendf(out, "%s\n    \"%s\": %" PRIu64, i ? "," : "",
            snapshot.counters[i].name.c_str(), snapshot.counters[i].value);
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i)
    appendf(out, "%s\n    \"%s\": %" PRId64, i ? "," : "",
            snapshot.gauges[i].name.c_str(), snapshot.gauges[i].value);
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    out += i ? ",\n" : "\n";
    append_json_histogram(out, snapshot.histograms[i]);
  }
  out += snapshot.histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string export_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    appendf(out, "# TYPE %s counter\n", c.name.c_str());
    appendf(out, "%s %" PRIu64 "\n", c.name.c_str(), c.value);
  }
  for (const auto& g : snapshot.gauges) {
    appendf(out, "# TYPE %s gauge\n", g.name.c_str());
    appendf(out, "%s %" PRId64 "\n", g.name.c_str(), g.value);
  }
  for (const auto& h : snapshot.histograms) {
    appendf(out, "# TYPE %s histogram\n", h.name.c_str());
    for (const auto& [le, cum] : h.cumulative)
      appendf(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
              h.name.c_str(), le, cum);
    appendf(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", h.name.c_str(),
            h.count);
    appendf(out, "%s_sum %" PRIu64 "\n", h.name.c_str(), h.sum);
    appendf(out, "%s_count %" PRIu64 "\n", h.name.c_str(), h.count);
  }
  return out;
}

}  // namespace bcop::obs
