#include "obs/registry.hpp"

#include "util/check.hpp"

namespace bcop::obs {

namespace {

bool name_ok(const std::string& name) {
  if (name.empty()) return false;
  auto alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!alpha(name.front())) return false;
  for (const char c : name)
    if (!alpha(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

}  // namespace

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  BCOP_CHECK(name_ok(name), "metric name '%s' must match [a-zA-Z_][a-zA-Z0-9_]*",
             name.c_str());
  util::MutexLock lock(mutex_);
  BCOP_CHECK(!gauges_.count(name) && !histograms_.count(name),
             "metric '%s' already registered as a different kind",
             name.c_str());
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  BCOP_CHECK(name_ok(name), "metric name '%s' must match [a-zA-Z_][a-zA-Z0-9_]*",
             name.c_str());
  util::MutexLock lock(mutex_);
  BCOP_CHECK(!counters_.count(name) && !histograms_.count(name),
             "metric '%s' already registered as a different kind",
             name.c_str());
  return gauges_[name];
}

LatencyHistogram& Registry::histogram(const std::string& name) {
  BCOP_CHECK(name_ok(name), "metric name '%s' must match [a-zA-Z_][a-zA-Z0-9_]*",
             name.c_str());
  util::MutexLock lock(mutex_);
  BCOP_CHECK(!counters_.count(name) && !gauges_.count(name),
             "metric '%s' already registered as a different kind",
             name.c_str());
  return histograms_[name];
}

MetricsSnapshot Registry::snapshot() const {
  util::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c.value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g.value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.sum = h.sum();
    // One bucket pass feeds count and the cumulative list, so the two can
    // never disagree even while writers are running.
    std::uint64_t cum = 0;
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      const std::uint64_t n = h.bucket_count(i);
      if (n == 0) continue;
      cum += n;
      hv.cumulative.emplace_back(LatencyHistogram::bucket_upper(i), cum);
    }
    hv.count = cum;
    hv.p50 = h.quantile(0.50);
    hv.p90 = h.quantile(0.90);
    hv.p99 = h.quantile(0.99);
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

void Registry::reset_values() {
  util::MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace bcop::obs
