#include "obs/stage_profiler.hpp"

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace bcop::obs {

StageProfiler& StageProfiler::global() {
  static StageProfiler profiler;
  return profiler;
}

const StageSlots* StageProfiler::slots_for(const std::string& key,
                                           const char* const* slot_names,
                                           int slots) {
  BCOP_CHECK(slots > 0 && slots <= StageSlots::kMaxSlots,
             "slots_for('%s'): %d slots outside [1, %d]", key.c_str(), slots,
             StageSlots::kMaxSlots);
  util::MutexLock lock(mutex_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    BCOP_CHECK(it->second.slots == slots,
               "slots_for('%s'): slot count changed %d -> %d", key.c_str(),
               it->second.slots, slots);
    return &it->second;
  }
  StageSlots& block = slots_[key];
  Registry& reg = Registry::global();
  for (int i = 0; i < slots; ++i)
    block.slot_ns[i] =
        &reg.histogram("bcop_exec_" + key + "_" + slot_names[i] + "_ns");
  block.replays = &reg.counter("bcop_exec_" + key + "_replays_total");
  block.slots = slots;
  return &block;
}

}  // namespace bcop::obs
