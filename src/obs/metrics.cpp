#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace bcop::obs {

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) total += bucket_count(i);
  return total;
}

double LatencyHistogram::quantile(double q) const noexcept {
  q = std::clamp(q, 0.0, 1.0);
  // One coherent pass: ranks are computed from the same bucket reads that
  // are walked, so a concurrent writer can shift the answer by at most the
  // samples it added, never corrupt it.
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = bucket_count(i);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // Nearest rank: the ceil(q*total)-th sample, 1-based (min 1).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += counts[i];
    if (cum >= rank) {
      if (i < kSub) return static_cast<double>(i);  // exact unit bucket
      return 0.5 * (static_cast<double>(bucket_lower(i)) +
                    static_cast<double>(bucket_upper(i)));
    }
  }
  return static_cast<double>(bucket_lower(kBuckets - 1));  // unreachable
}

void LatencyHistogram::reset() noexcept {
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

}  // namespace bcop::obs
