// Per-stage timing for the plan interpreter, FINN-style.
//
// FINN sizes its streaming dataflow from per-layer throughput; the CPU
// analogue is a per-step latency histogram for every plan the interpreter
// replays. The split mirrors the engine's own compile/execute contract:
//
//   compile path  -- ExecutionPlan::compile asks slots_for() for a
//                    StageSlots block keyed by the plan's input shape.
//                    Registration allocates (names, registry nodes); that
//                    is fine, plan compilation already allocates.
//   execute path  -- the interpreter checks one relaxed atomic flag, and
//                    when it is set brackets each step with obs::now_ns()
//                    and records into the pre-resolved histogram pointer.
//                    No locks, no allocation (rules R6 + R7).
//
// The hooks are compiled in by default (CMake option BCOP_OBS, default
// ON; `-DBCOP_OBS=OFF` removes them entirely) and recording is toggled at
// runtime with set_enabled(). Metric names look like
// `bcop_exec_b8_in32x32x3_binary_conv_ns`: keyed by plan shape, so two
// networks executing the same shape share a series (reset the registry
// between phases to separate them, as bench_serving_throughput does).
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace bcop::obs {

/// Pre-resolved recording slots for one plan-shape key: one histogram per
/// stage slot plus a replay counter. Pointees live in the global Registry
/// for the process lifetime, so plans may hold the block by pointer.
struct StageSlots {
  static constexpr int kMaxSlots = 16;
  LatencyHistogram* slot_ns[kMaxSlots] = {};
  Counter* replays = nullptr;
  int slots = 0;
};

class StageProfiler {
 public:
  static StageProfiler& global();

  /// Hot-path gate: one relaxed load. Defaults to enabled. Deliberately
  /// not mutex-guarded -- the flag is a relaxed std::atomic because the
  /// interpreter reads it once per replay and tearing-free staleness is
  /// acceptable (a toggle may take one replay to be observed; no other
  /// state is published through it).
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create the slot block for `key` (e.g. "b8_in32x32x3") with
  /// one histogram per entry of `slot_names` (metric name
  /// `bcop_exec_<key>_<slot>_ns`) plus a `bcop_exec_<key>_replays_total`
  /// counter. Compile-path only: takes a lock and allocates on first use.
  /// The returned pointer is stable for the process lifetime. Re-requests
  /// with the same key must pass the same slot count.
  const StageSlots* slots_for(const std::string& key,
                              const char* const* slot_names, int slots)
      BCOP_EXCLUDES(mutex_);

 private:
  std::atomic<bool> enabled_{true};
  util::Mutex mutex_;
  // Guards the map structure only: returned StageSlots blocks are
  // node-stable, fully initialized before the pointer escapes the lock,
  // and immutable afterwards (their pointees are lock-free primitives).
  std::map<std::string, StageSlots> slots_ BCOP_GUARDED_BY(mutex_);
};

}  // namespace bcop::obs
