// Hot-path metric primitives: the only code that runs on recording paths.
//
// Everything in this header is wait-free and allocation-free by contract
// (lint rule R7): a Counter or Gauge is one relaxed atomic, a
// LatencyHistogram is a fixed array of relaxed atomic bucket counts, and
// record() never takes a lock, never branches on anything but its own
// arguments, and never touches the heap. That is what lets the plan
// interpreter (src/xnor/exec.cpp, an allocation-free zone under rule R6)
// and the zero-allocation serving path record telemetry without breaking
// their steady-state contracts (tests/test_zero_alloc.cpp measures this
// with the profiler enabled).
//
// Identity lives elsewhere: primitives have no name member (names are
// std::string keys owned by obs::Registry), so this header needs no
// string, no map and no mutex. Aggregation -- quantiles, snapshots,
// exporters -- is the cold path and lives in registry.hpp / export.hpp.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

namespace bcop::obs {

/// Monotonic nanosecond timestamp for latency measurements. One
/// steady_clock read; safe in allocation-free zones.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event count. Writers from any thread;
/// value() is a relaxed read (exact once writers quiesce).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, in-flight work). set() and
/// add() compose from any thread.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log-scale histogram for non-negative integer samples
/// (nanoseconds by convention; batch sizes and other counts work the same
/// way). Bucket layout: values 0..3 get exact unit buckets, then every
/// power-of-two octave is split into 4 sub-buckets, so bucket width is
/// always <= 1/4 of the value -- a p50/p90/p99 read from bucket midpoints
/// is within ~12% of the exact sample quantile (tested against a
/// sorted-sample oracle in tests/test_obs.cpp). 160 buckets cover
/// [0, 2^41) ns, i.e. sub-nanosecond to ~36 minutes; larger samples clamp
/// into the last bucket.
///
/// record() is two relaxed fetch_adds plus a bit_width; concurrent
/// snapshots see each bucket monotonically, so count() (the sum of one
/// pass over the buckets) is always a value the histogram actually passed
/// through.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;           // 4 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;   // values below are exact
  static constexpr int kBuckets = 160;

  static int bucket_index(std::uint64_t v) noexcept {
    if (v < static_cast<std::uint64_t>(kSub)) return static_cast<int>(v);
    const int octave = 63 - std::countl_zero(v);  // >= kSubBits
    const int sub =
        static_cast<int>((v >> (octave - kSubBits)) & (kSub - 1));
    const int index = ((octave - 1) << kSubBits) + sub;
    return index < kBuckets ? index : kBuckets - 1;
  }

  /// Inclusive lower bound of bucket `i`.
  static std::uint64_t bucket_lower(int i) noexcept {
    if (i < kSub) return static_cast<std::uint64_t>(i);
    const int octave = (i >> kSubBits) + 1;
    const int sub = i & (kSub - 1);
    return static_cast<std::uint64_t>(kSub + sub) << (octave - kSubBits);
  }

  /// Exclusive upper bound of bucket `i` (UINT64_MAX for the last).
  static std::uint64_t bucket_upper(int i) noexcept {
    return i + 1 < kBuckets ? bucket_lower(i + 1) : ~std::uint64_t{0};
  }

  void record(std::uint64_t v) noexcept {
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::uint64_t bucket_count(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Total samples: one pass over the buckets (not a separate atomic, so
  /// it can never disagree with the bucket counts it was read from).
  std::uint64_t count() const noexcept;

  /// Sum of all recorded values (clamping does not apply to the sum).
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Nearest-rank quantile estimate, q in [0, 1]: the midpoint of the
  /// bucket holding the q-th sample. 0 when empty.
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

}  // namespace bcop::obs
