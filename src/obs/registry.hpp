// Process-wide metric registry: name -> primitive, plus snapshots.
//
// Registration is the cold path: counter()/gauge()/histogram() take a
// mutex, validate the name and create the metric on first use; call sites
// cache the returned reference (metrics live for the process lifetime --
// std::map nodes are reference-stable), so recording afterwards is pure
// lock-free primitive work (obs/metrics.hpp). The allocating registration
// therefore belongs with other allocating prologues: plan compilation,
// server construction, static init -- never inside a steady-state loop.
//
// Naming scheme (docs/observability.md): `bcop_<module>_<what>[_<unit>]`,
// Prometheus charset `[a-zA-Z_][a-zA-Z0-9_]*`. Counters end in `_total`,
// duration histograms in `_ns`. snapshot() materializes every registered
// metric into plain data for the exporters in obs/export.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace bcop::obs {

/// Point-in-time copy of every registered metric, ordered by name (the
/// maps are ordered, so exporter output is deterministic given values).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  /// Histogram with Prometheus-style cumulative buckets: one entry per
  /// non-empty bucket, `(upper_bound, samples <= upper_bound)`.
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    double p50 = 0, p90 = 0, p99 = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cumulative;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

class Registry {
 public:
  /// The process-wide registry every module records into.
  static Registry& global();

  /// Find-or-create; the reference stays valid for the process lifetime.
  /// Aborts (BCOP_CHECK) on names outside `[a-zA-Z_][a-zA-Z0-9_]*` or on
  /// registering the same name as two different metric kinds.
  ///
  /// The returned references deliberately escape mutex_: std::map nodes
  /// are reference-stable, metrics are never erased, and the primitives
  /// themselves are atomics-only (obs/metrics.hpp), so post-registration
  /// recording needs no lock. The GUARDED_BY below therefore protects the
  /// map *structure* (find/insert/iterate), not the pointees.
  Counter& counter(const std::string& name) BCOP_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) BCOP_EXCLUDES(mutex_);
  LatencyHistogram& histogram(const std::string& name) BCOP_EXCLUDES(mutex_);

  MetricsSnapshot snapshot() const BCOP_EXCLUDES(mutex_);

  /// Zero every registered value (names stay registered, references stay
  /// valid). For per-phase measurements in benches and tests.
  void reset_values() BCOP_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, Counter> counters_ BCOP_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ BCOP_GUARDED_BY(mutex_);
  std::map<std::string, LatencyHistogram> histograms_ BCOP_GUARDED_BY(mutex_);
};

}  // namespace bcop::obs
