// Crowd scenes: many subjects on one camera canvas, plus the face
// localization needed to feed them to the classifier.
//
// The paper's high-performance mode "split[s] large crowd images and
// classif[ies] them at a high-rate to detect uncovered faces in a scene"
// (Sec. IV-B). This module provides that front end for the synthetic world:
// a crowd renderer that places non-overlapping subjects with known ground
// truth, a template-correlation face localizer (the kind of cheap detector
// an edge pre-processor would run), and tile extraction to the network's
// 32x32 input resolution.
#pragma once

#include <cstdint>
#include <vector>

#include "facegen/attributes.hpp"
#include "facegen/renderer.hpp"
#include "util/image.hpp"
#include "util/rng.hpp"

namespace bcop::facegen {

struct CrowdFace {
  Rect bbox;  // normalized [0,1] coordinates on the canvas
  MaskClass label = MaskClass::kCorrect;
};

struct CrowdScene {
  util::Image canvas;
  std::vector<CrowdFace> faces;  // ground truth, in placement order
};

struct CrowdConfig {
  int canvas_width = 256;
  int canvas_height = 192;
  int faces = 12;
  int min_face_px = 28;  // rendered subject tile edge, pixels
  int max_face_px = 48;
  /// Class mix: uniform over the four classes by default.
  bool uniform_classes = true;
};

/// Render a crowd scene. Subjects never overlap; placement that fails to
/// find room after bounded retries yields fewer faces than requested (the
/// actual count is faces.size()).
CrowdScene render_crowd(const CrowdConfig& config, util::Rng& rng);

/// Crop a normalized bbox from the canvas and resize to `out` x `out`
/// pixels with bilinear sampling (the classifier's input tile).
util::Image crop_resize(const util::Image& canvas, const Rect& bbox, int out);

/// Detection result of the template localizer.
struct Detection {
  Rect bbox;
  float score = 0;  // normalized cross-correlation, higher is better
};

/// Cheap face localizer: normalized cross-correlation against an averaged
/// grayscale face template over a scale pyramid, with greedy non-maximum
/// suppression. Returns at most `max_faces` detections sorted by score.
class FaceLocalizer {
 public:
  /// Builds the template by averaging `samples` rendered subjects.
  explicit FaceLocalizer(std::uint64_t seed = 0xface, int samples = 32);

  std::vector<Detection> detect(const util::Image& canvas, int max_faces,
                                float min_score = 0.3f) const;

  int template_size() const { return kTemplate; }

 private:
  static constexpr int kTemplate = 16;
  std::vector<float> template_;  // kTemplate^2 grayscale, zero-mean
};

/// Intersection-over-union of two normalized rects.
float iou(const Rect& a, const Rect& b);

}  // namespace bcop::facegen
