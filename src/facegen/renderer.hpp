// Procedural face + mask renderer.
//
// Renders one synthetic subject at 2x supersampling and box-downsamples to
// the network resolution (32x32 by default, like the paper's resized
// MaskedFace-Net images). Geometry is expressed in normalized [0,1] image
// coordinates; all facial landmarks scale with the sampled face ellipse so
// jittered faces keep consistent proportions. The renderer also returns
// ground-truth landmark regions for Grad-CAM attention scoring.
#pragma once

#include "facegen/attributes.hpp"
#include "util/image.hpp"

namespace bcop::facegen {

struct RenderResult {
  util::Image image;
  Regions regions;
};

/// Render `a` at `out_size` x `out_size` pixels (default 32).
RenderResult render_face(const FaceAttributes& a, int out_size = 32);

/// Landmark regions implied by the attributes (no rendering). The renderer
/// uses exactly these; exposed separately for tests.
Regions compute_regions(const FaceAttributes& a);

}  // namespace bcop::facegen
