// Image augmentation: the paper balances the dataset and then randomly
// augments with "a varying combination of contrast, brightness, gaussian
// noise, flip and rotate operations" (Sec. IV-A). Exactly those five are
// implemented here.
#pragma once

#include "util/image.hpp"
#include "util/rng.hpp"

namespace bcop::facegen {

/// Scale contrast around mid-gray: out = (in - 0.5) * factor + 0.5.
void adjust_contrast(util::Image& img, float factor);

/// Add a constant brightness offset.
void adjust_brightness(util::Image& img, float delta);

/// Add i.i.d. gaussian noise with the given standard deviation.
void add_gaussian_noise(util::Image& img, float stddev, util::Rng& rng);

/// Mirror horizontally (mask classes are symmetric, so labels survive).
void flip_horizontal(util::Image& img);

/// Rotate around the image centre by `radians` (bilinear, edge-clamped).
void rotate(util::Image& img, float radians);

/// Apply a random combination of the five ops, with ranges chosen so the
/// class-defining geometry (mask edge vs. nose/mouth/chin) is preserved.
void random_augment(util::Image& img, util::Rng& rng);

/// Aggressive variant used for the "hard" evaluation set: same five ops
/// with ranges several times wider (still label-preserving). The synthetic
/// task is easier than real MaskedFace-Net, so the hard set is what
/// separates the capacity of CNV from the smaller prototypes.
void random_augment_heavy(util::Image& img, util::Rng& rng);

}  // namespace bcop::facegen
