#include "facegen/renderer.hpp"

#include <algorithm>
#include <cmath>

namespace bcop::facegen {

namespace {

// Landmark bands in face-relative vertical coordinate t, where a point at
// v = cy + t * ry; t = -1 is the top of the face ellipse, +1 the bottom.
constexpr float kEyeT0 = -0.38f, kEyeT1 = -0.16f;
constexpr float kNoseT0 = -0.10f, kNoseT1 = 0.22f;
constexpr float kMouthT0 = 0.34f, kMouthT1 = 0.56f;
constexpr float kChinT0 = 0.64f, kChinT1 = 0.96f;

// Reference geometry used by canonical_mask_extent() to express extents in
// absolute v; conversions below rescale them onto the sampled face.
constexpr float kRefCy = 0.52f, kRefRy = 0.40f;

struct Ctx {
  const FaceAttributes& a;
  float mask_top_v;     // absolute v of the mask's top edge on this face
  float mask_bottom_v;
  float mask2_top_v;    // second mask (double-mask case)
  float mask2_bottom_v;
};

float to_face_v(const FaceAttributes& a, float ref_v) {
  // Convert a v expressed on the reference face onto the sampled face.
  const float t = (ref_v - kRefCy) / kRefRy;
  return a.center_y + t * a.radius_y;
}

Ctx make_ctx(const FaceAttributes& a) {
  const auto ext = canonical_mask_extent(a.mask_class);
  Ctx c{a,
        to_face_v(a, ext[0]) + a.mask_top_jitter,
        to_face_v(a, ext[1]) + a.mask_bottom_jitter,
        0.f,
        0.f};
  // The second mask of a double-mask wearer sits slightly higher and
  // narrower; it must not change the class, so it stays within the band of
  // the primary mask.
  c.mask2_top_v = c.mask_top_v + 0.02f;
  c.mask2_bottom_v = c.mask_bottom_v - 0.04f;
  return c;
}

struct Rgba {
  Rgb c;
  float a = 0.f;  // 0 = transparent
};

bool inside_ellipse(float u, float v, float cx, float cy, float rx, float ry) {
  const float du = (u - cx) / rx;
  const float dv = (v - cy) / ry;
  return du * du + dv * dv <= 1.f;
}

/// Full scene evaluation for one sample point. Layers are painted back to
/// front; later assignments overwrite earlier ones.
Rgb shade(const Ctx& ctx, float u_img, float v_img) {
  const FaceAttributes& a = ctx.a;

  // Background with a gentle vertical gradient.
  Rgb col = a.background;
  col.r = std::clamp(col.r + 0.08f * (v_img - 0.5f), 0.f, 1.f);
  col.g = std::clamp(col.g + 0.08f * (v_img - 0.5f), 0.f, 1.f);
  col.b = std::clamp(col.b + 0.08f * (v_img - 0.5f), 0.f, 1.f);

  // Head tilt: rotate the sample point into face-local coordinates.
  const float s = std::sin(-a.head_tilt), cs = std::cos(-a.head_tilt);
  const float du = u_img - a.center_x, dv = v_img - a.center_y;
  const float u = a.center_x + cs * du - s * dv;
  const float v = a.center_y + s * du + cs * dv;

  const float cx = a.center_x, cy = a.center_y;
  const float rx = a.radius_x, ry = a.radius_y;
  auto tv = [&](float t) { return cy + t * ry; };  // face band -> absolute v

  // --- hair (behind the face) ---
  if (a.hair_style != HairStyle::kBald) {
    const float hair_ry = a.hair_style == HairStyle::kLong ? ry * 1.22f : ry * 1.12f;
    const float hair_rx = rx * 1.18f;
    const bool in_hair = inside_ellipse(u, v, cx, cy - 0.02f, hair_rx, hair_ry);
    const bool below_ears = v > tv(0.15f);
    if (in_hair && (!below_ears || a.hair_style == HairStyle::kLong)) {
      col = a.hair;
    }
  }

  // --- face ---
  const bool in_face = inside_ellipse(u, v, cx, cy, rx, ry);
  if (in_face) {
    // Lambert-ish shading: darken toward the silhouette.
    const float du2 = (u - cx) / rx, dv2 = (v - cy) / ry;
    const float r2 = du2 * du2 + dv2 * dv2;
    const float shade_f = 1.f - 0.18f * r2;
    col = {a.skin.r * shade_f, a.skin.g * shade_f, a.skin.b * shade_f};

    // Elderly wrinkles: two faint forehead lines and cheek lines.
    if (a.age == AgeGroup::kElderly) {
      for (const float t : {-0.62f, -0.52f, 0.30f}) {
        if (std::abs(v - tv(t)) < 0.008f && std::abs(du2) < 0.55f) {
          col.r *= 0.8f;
          col.g *= 0.8f;
          col.b *= 0.8f;
        }
      }
    }

    // Hairline for short hair: top of the face keeps the hair colour.
    if (a.hair_style != HairStyle::kBald) {
      const float hairline = a.age == AgeGroup::kInfant ? -0.78f : -0.62f;
      if (v < tv(hairline)) col = a.hair;
    }

    // Face paint: a saturated patch on one cheek (Fig. 9 manipulation).
    if (a.face_paint &&
        inside_ellipse(u, v, cx - 0.55f * rx, tv(0.05f), 0.30f * rx, 0.16f * ry))
      col = a.paint_color;

    // --- eyes / eyebrows ---
    const float eye_scale = a.age == AgeGroup::kAdult ? 1.f : 0.78f;
    const float eye_y = tv(0.5f * (kEyeT0 + kEyeT1));
    for (const float side : {-1.f, 1.f}) {
      const float ex = cx + side * 0.42f * rx;
      if (inside_ellipse(u, v, ex, eye_y, 0.14f * rx * eye_scale,
                         0.07f * ry * eye_scale))
        col = {0.95f, 0.95f, 0.95f};
      if (inside_ellipse(u, v, ex, eye_y, 0.055f * rx * eye_scale,
                         0.045f * ry * eye_scale))
        col = {0.08f, 0.06f, 0.05f};
      // Eyebrow bar.
      if (std::abs(v - (eye_y - 0.11f * ry)) < 0.012f &&
          std::abs(u - ex) < 0.15f * rx)
        col = {a.hair.r * 0.6f, a.hair.g * 0.6f, a.hair.b * 0.6f};
    }
    if (a.sunglasses) {
      if (v > eye_y - 0.09f * ry && v < eye_y + 0.09f * ry &&
          std::abs(u - cx) < 0.62f * rx)
        col = {0.06f, 0.06f, 0.08f};
    }

    // --- nose ---
    const float nose_tip = tv(kNoseT1);
    if (v > tv(kNoseT0) && v < nose_tip) {
      const float w = 0.10f * rx * (v - tv(kNoseT0)) / (nose_tip - tv(kNoseT0));
      if (std::abs(u - cx) < w + 0.03f * rx) {
        col.r *= 0.88f;
        col.g *= 0.88f;
        col.b *= 0.88f;
      }
    }
    // Nostrils.
    for (const float side : {-1.f, 1.f})
      if (inside_ellipse(u, v, cx + side * 0.06f * rx, nose_tip - 0.01f,
                         0.03f * rx, 0.015f * ry))
        col = {0.25f * a.skin.r, 0.25f * a.skin.g, 0.25f * a.skin.b};

    // --- mouth ---
    if (inside_ellipse(u, v, cx, tv(0.5f * (kMouthT0 + kMouthT1)), 0.24f * rx,
                       0.07f * ry))
      col = {0.55f, 0.20f, 0.22f};

    // Chin crease.
    if (std::abs(v - tv(0.80f)) < 0.006f && std::abs(u - cx) < 0.18f * rx) {
      col.r *= 0.85f;
      col.g *= 0.85f;
      col.b *= 0.85f;
    }
  }

  // --- mask (over the face) ---
  auto in_mask = [&](float top, float bottom, float widen) {
    if (!inside_ellipse(u, v, cx, cy, rx * widen, ry * 1.06f)) return false;
    // Straight top edge with a slight sag toward the centre -- the "straight
    // upper edge" cue the paper's Grad-CAM picks out for the Nose class.
    const float uu = (u - cx) / rx;
    const float top_edge = top + 0.015f * uu * uu;
    return v >= top_edge && v <= bottom;
  };
  const bool mask1 = in_mask(ctx.mask_top_v, ctx.mask_bottom_v, 1.10f);
  if (mask1) {
    col = a.mask_color;
    // Pleats: two darker horizontal folds.
    const float span = ctx.mask_bottom_v - ctx.mask_top_v;
    for (const float f : {0.35f, 0.65f}) {
      if (std::abs(v - (ctx.mask_top_v + f * span)) < 0.007f) {
        col.r *= 0.82f;
        col.g *= 0.82f;
        col.b *= 0.82f;
      }
    }
  }
  if (a.double_mask &&
      in_mask(ctx.mask2_top_v, ctx.mask2_bottom_v, 1.04f)) {
    col = a.mask2_color;
  }

  // Ear straps: thin lines from the mask's top corners to the face edge.
  if (!mask1 && in_face) {
    const float strap_v = ctx.mask_top_v + 0.015f;
    if (std::abs(v - strap_v) < 0.008f && std::abs(u - cx) > 0.78f * rx)
      col = {a.mask_color.r * 0.9f, a.mask_color.g * 0.9f, a.mask_color.b * 0.9f};
  }

  return col;
}

}  // namespace

Regions compute_regions(const FaceAttributes& a) {
  const Ctx ctx = make_ctx(a);
  const float cx = a.center_x, cy = a.center_y;
  const float rx = a.radius_x, ry = a.radius_y;
  auto tv = [&](float t) { return cy + t * ry; };
  Regions r;
  r.face = {cx - rx, cy - ry, cx + rx, cy + ry};
  r.eyes = {cx - 0.60f * rx, tv(kEyeT0), cx + 0.60f * rx, tv(kEyeT1)};
  r.nose = {cx - 0.16f * rx, tv(kNoseT0), cx + 0.16f * rx, tv(kNoseT1)};
  r.mouth = {cx - 0.28f * rx, tv(kMouthT0), cx + 0.28f * rx, tv(kMouthT1)};
  r.chin = {cx - 0.30f * rx, tv(kChinT0), cx + 0.30f * rx, tv(kChinT1)};
  r.mask = {cx - 1.10f * rx, ctx.mask_top_v, cx + 1.10f * rx, ctx.mask_bottom_v};
  r.mask_top_v = ctx.mask_top_v;
  return r;
}

RenderResult render_face(const FaceAttributes& a, int out_size) {
  const Ctx ctx = make_ctx(a);
  const int ss = 2;  // supersampling factor
  const int hi = out_size * ss;

  util::Image img(out_size, out_size);
  for (int y = 0; y < out_size; ++y) {
    for (int x = 0; x < out_size; ++x) {
      float r = 0, g = 0, b = 0;
      for (int sy = 0; sy < ss; ++sy)
        for (int sx = 0; sx < ss; ++sx) {
          const float v = (static_cast<float>(y * ss + sy) + 0.5f) / static_cast<float>(hi);
          const float u = (static_cast<float>(x * ss + sx) + 0.5f) / static_cast<float>(hi);
          const Rgb c = shade(ctx, u, v);
          r += c.r;
          g += c.g;
          b += c.b;
        }
      const float inv = 1.f / static_cast<float>(ss * ss);
      img.set_rgb(y, x, r * inv, g * inv, b * inv);
    }
  }
  img.clamp01();
  return {std::move(img), compute_regions(a)};
}

}  // namespace bcop::facegen
