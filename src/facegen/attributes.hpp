// Face/mask attribute model for the synthetic MaskedFace-Net substitute.
//
// MaskedFace-Net [6] applies a deformable mask model onto natural face
// photographs; its four classes differ only in *where* the mask sits
// relative to the nose, mouth and chin. Our procedural generator keeps that
// structure: a face with parameterized appearance (the paper's "face
// structures, skin-tones, hair types" plus the Fig. 7-9 generalization
// attributes: age, hair/headgear colour, sunglasses, face paint, double
// masks) and a mask whose top/bottom edges are placed per class. Every
// sample also carries ground-truth landmark regions so Grad-CAM attention
// can be scored quantitatively.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace bcop::facegen {

/// The four MaskedFace-Net classes used by the paper (Sec. IV-A).
enum class MaskClass : std::int32_t {
  kCorrect = 0,           // CMFD: nose, mouth and chin covered
  kNoseExposed = 1,       // IMFD Nose
  kNoseMouthExposed = 2,  // IMFD Nose and Mouth
  kChinExposed = 3,       // IMFD Chin
};
constexpr int kNumClasses = 4;

const char* class_name(MaskClass c);
/// Short names matching the paper's Fig. 2 axis: Correct/Nose/N+M/Chin.
const char* class_short_name(MaskClass c);

enum class AgeGroup : std::int32_t { kInfant = 0, kAdult = 1, kElderly = 2 };
enum class HairStyle : std::int32_t { kBald = 0, kShort = 1, kLong = 2 };

struct Rgb {
  float r = 0, g = 0, b = 0;
};

/// Everything that determines one rendered face (besides the class).
struct FaceAttributes {
  MaskClass mask_class = MaskClass::kCorrect;
  AgeGroup age = AgeGroup::kAdult;

  Rgb skin;               // sampled from a wide tone ramp
  Rgb hair;               // may deliberately match the mask colour (Fig. 8)
  HairStyle hair_style = HairStyle::kShort;
  bool headgear = false;  // cap/band across the top of the head
  Rgb headgear_color;

  bool sunglasses = false;
  bool face_paint = false;
  Rgb paint_color;
  bool double_mask = false;  // second, offset mask (Fig. 9)
  Rgb mask_color;            // surgical blue / white / black / pink
  Rgb mask2_color;
  Rgb background;

  // Geometry jitter, in normalized [0,1] face coordinates.
  float center_x = 0.5f;
  float center_y = 0.52f;
  float radius_x = 0.30f;
  float radius_y = 0.40f;
  float mask_top_jitter = 0.f;     // +- around the class's canonical edge
  float mask_bottom_jitter = 0.f;
  float head_tilt = 0.f;           // radians, small
};

/// Axis-aligned normalized rectangle [u0,u1] x [v0,v1].
struct Rect {
  float u0 = 0, v0 = 0, u1 = 0, v1 = 0;
  bool contains(float u, float v) const {
    return u >= u0 && u <= u1 && v >= v0 && v <= v1;
  }
  float area() const { return (u1 - u0) * (v1 - v0); }
};

/// Ground-truth landmark regions emitted with every rendered face.
struct Regions {
  Rect face;
  Rect eyes;
  Rect nose;
  Rect mouth;
  Rect chin;
  Rect mask;          // actual mask placement
  float mask_top_v = 0.f;  // top edge of the mask (normalized v)
};

/// Draw random attributes for a sample of class `c`. All variation flows
/// from `rng`, so a seed fully determines a dataset.
FaceAttributes sample_attributes(MaskClass c, util::Rng& rng);

/// Canonical mask vertical extent (top_v, bottom_v) for a class before
/// jitter. Exposed for tests and for scenario builders.
std::array<float, 2> canonical_mask_extent(MaskClass c);

}  // namespace bcop::facegen
