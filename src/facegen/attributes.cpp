#include "facegen/attributes.hpp"

#include <stdexcept>

namespace bcop::facegen {

const char* class_name(MaskClass c) {
  switch (c) {
    case MaskClass::kCorrect: return "Correctly Masked";
    case MaskClass::kNoseExposed: return "Nose Exposed";
    case MaskClass::kNoseMouthExposed: return "Nose and Mouth Exposed";
    case MaskClass::kChinExposed: return "Chin Exposed";
  }
  throw std::invalid_argument("class_name: bad class");
}

const char* class_short_name(MaskClass c) {
  switch (c) {
    case MaskClass::kCorrect: return "Correct";
    case MaskClass::kNoseExposed: return "Nose";
    case MaskClass::kNoseMouthExposed: return "N+M";
    case MaskClass::kChinExposed: return "Chin";
  }
  throw std::invalid_argument("class_short_name: bad class");
}

std::array<float, 2> canonical_mask_extent(MaskClass c) {
  // Normalized v coordinates; nose sits around 0.48-0.60, mouth 0.66-0.74,
  // chin 0.78-0.90 (see renderer.cpp). The mask edge positions relative to
  // those bands are the entire class signal, as in MaskedFace-Net.
  switch (c) {
    case MaskClass::kCorrect: return {0.50f, 0.93f};
    case MaskClass::kNoseExposed: return {0.63f, 0.93f};
    case MaskClass::kNoseMouthExposed: return {0.77f, 0.95f};
    case MaskClass::kChinExposed: return {0.50f, 0.76f};
  }
  throw std::invalid_argument("canonical_mask_extent: bad class");
}

namespace {

Rgb sample_skin(util::Rng& rng) {
  // A ramp from deep brown to pale, with small hue jitter; covers the
  // "skin-tones" axis the paper stresses.
  const float t = static_cast<float>(rng.uniform(0.15, 1.0));
  Rgb s;
  s.r = 0.25f + 0.70f * t + static_cast<float>(rng.uniform(-0.03, 0.03));
  s.g = 0.15f + 0.62f * t + static_cast<float>(rng.uniform(-0.03, 0.03));
  s.b = 0.10f + 0.52f * t + static_cast<float>(rng.uniform(-0.03, 0.03));
  return s;
}

Rgb sample_mask_color(util::Rng& rng) {
  // Surgical light-blue dominates, as in MaskedFace-Net; white, black and
  // pink cloth masks appear too ("mask types").
  const double p = rng.uniform();
  if (p < 0.55) return {0.62f, 0.80f, 0.93f};  // light blue
  if (p < 0.75) return {0.92f, 0.93f, 0.94f};  // white
  if (p < 0.90) return {0.15f, 0.15f, 0.18f};  // black
  return {0.95f, 0.72f, 0.80f};                // pink
}

Rgb sample_hair(util::Rng& rng) {
  const double p = rng.uniform();
  if (p < 0.30) return {0.12f, 0.09f, 0.07f};  // dark brown / black
  if (p < 0.50) return {0.45f, 0.30f, 0.15f};  // brown
  if (p < 0.65) return {0.85f, 0.75f, 0.45f};  // blond
  if (p < 0.78) return {0.80f, 0.80f, 0.82f};  // gray
  if (p < 0.88) return {0.55f, 0.25f, 0.15f};  // red
  // Dyed light-blue -- deliberately close to the surgical mask colour
  // (paper Fig. 8 rows 2-3 test exactly this confusion case).
  return {0.60f, 0.78f, 0.92f};
}

}  // namespace

FaceAttributes sample_attributes(MaskClass c, util::Rng& rng) {
  FaceAttributes a;
  a.mask_class = c;

  const double age_p = rng.uniform();
  a.age = age_p < 0.15   ? AgeGroup::kInfant
          : age_p < 0.85 ? AgeGroup::kAdult
                         : AgeGroup::kElderly;

  a.skin = sample_skin(rng);
  a.hair = sample_hair(rng);
  if (a.age == AgeGroup::kElderly && rng.bernoulli(0.6))
    a.hair = {0.82f, 0.82f, 0.84f};  // gray
  const double hs = rng.uniform();
  a.hair_style = hs < 0.12 ? HairStyle::kBald
               : hs < 0.62 ? HairStyle::kShort
                           : HairStyle::kLong;
  if (a.age == AgeGroup::kInfant) a.hair_style = HairStyle::kShort;

  a.headgear = rng.bernoulli(0.18);
  a.headgear_color = {static_cast<float>(rng.uniform(0.1, 0.95)),
                      static_cast<float>(rng.uniform(0.1, 0.95)),
                      static_cast<float>(rng.uniform(0.1, 0.95))};
  a.sunglasses = rng.bernoulli(0.12);
  a.face_paint = rng.bernoulli(0.08);
  a.paint_color = {static_cast<float>(rng.uniform(0.2, 1.0)),
                   static_cast<float>(rng.uniform(0.2, 1.0)),
                   static_cast<float>(rng.uniform(0.2, 1.0))};
  a.double_mask = rng.bernoulli(0.07);
  a.mask_color = sample_mask_color(rng);
  a.mask2_color = sample_mask_color(rng);
  a.background = {static_cast<float>(rng.uniform(0.05, 0.9)),
                  static_cast<float>(rng.uniform(0.05, 0.9)),
                  static_cast<float>(rng.uniform(0.05, 0.9))};

  a.center_x = 0.5f + static_cast<float>(rng.uniform(-0.04, 0.04));
  a.center_y = 0.52f + static_cast<float>(rng.uniform(-0.03, 0.03));
  a.radius_x = 0.30f + static_cast<float>(rng.uniform(-0.03, 0.03));
  a.radius_y = 0.40f + static_cast<float>(rng.uniform(-0.03, 0.03));
  if (a.age == AgeGroup::kInfant) {
    a.radius_x *= 1.08f;
    a.radius_y *= 0.92f;  // rounder face
  }
  a.mask_top_jitter = static_cast<float>(rng.uniform(-0.02, 0.02));
  a.mask_bottom_jitter = static_cast<float>(rng.uniform(-0.015, 0.015));
  a.head_tilt = static_cast<float>(rng.uniform(-0.08, 0.08));
  return a;
}

}  // namespace bcop::facegen
