#include "facegen/dataset.hpp"

#include <cmath>
#include <stdexcept>

#include "facegen/augment.hpp"

namespace bcop::facegen {

using tensor::Shape;
using tensor::Tensor;

MaskedFaceDataset MaskedFaceDataset::generate(const DatasetConfig& config) {
  if (config.per_class_train <= 0 || config.per_class_test <= 0)
    throw std::invalid_argument("DatasetConfig: non-positive split size");
  if (config.natural_fraction <= 0.0 || config.natural_fraction > 1.0)
    throw std::invalid_argument("DatasetConfig: natural_fraction out of (0,1]");

  MaskedFaceDataset ds;
  ds.config_ = config;
  util::Rng rng(config.seed);

  // Virtual raw pool: minority classes (5% each) own `natural` samples, so
  // the pool holds natural / 0.05 samples in total.
  const auto natural =
      static_cast<std::int64_t>(std::ceil(config.per_class_train * config.natural_fraction));
  const double pool = static_cast<double>(natural) / kRawClassProportions[2];
  for (int c = 0; c < kNumClasses; ++c)
    ds.raw_counts_[static_cast<std::size_t>(c)] =
        static_cast<std::int64_t>(pool * kRawClassProportions[static_cast<std::size_t>(c)]);

  // Train: render `natural` base samples per class (the subsampled survivors
  // of the majority classes plus all minority samples), then augment random
  // duplicates until each class reaches per_class_train.
  util::Rng train_rng = rng.split();
  for (int c = 0; c < kNumClasses; ++c) {
    const auto cls = static_cast<MaskClass>(c);
    std::vector<std::size_t> base_indices;
    std::int64_t have = 0;
    for (std::int64_t i = 0; i < natural && have < config.per_class_train;
         ++i, ++have) {
      const FaceAttributes a = sample_attributes(cls, train_rng);
      RenderResult r = render_face(a, config.image_size);
      base_indices.push_back(ds.train_.size());
      ds.train_.push_back({std::move(r.image), cls, r.regions, false});
    }
    for (; have < config.per_class_train; ++have) {
      const std::size_t pick = base_indices[static_cast<std::size_t>(
          train_rng.uniform_int(0, static_cast<std::int64_t>(base_indices.size()) - 1))];
      Sample dup = ds.train_[pick];
      random_augment(dup.image, train_rng);
      dup.augmented = true;
      ds.train_.push_back(std::move(dup));
    }
  }

  // Test: fresh, evenly balanced renders from an independent stream; half
  // receive the same augmentation pipeline so the split matches the
  // training distribution (the paper's 28K test samples come from the same
  // balanced+augmented pool).
  util::Rng test_rng = rng.split();
  for (int c = 0; c < kNumClasses; ++c) {
    const auto cls = static_cast<MaskClass>(c);
    for (int i = 0; i < config.per_class_test; ++i) {
      const FaceAttributes a = sample_attributes(cls, test_rng);
      RenderResult r = render_face(a, config.image_size);
      Sample s{std::move(r.image), cls, r.regions, false};
      if (test_rng.bernoulli(0.5)) {
        random_augment(s.image, test_rng);
        s.augmented = true;
      }
      ds.test_.push_back(std::move(s));
    }
  }

  // Shuffle so mini-batches mix classes.
  util::Rng shuffle_rng = rng.split();
  shuffle_rng.shuffle(ds.train_);
  shuffle_rng.shuffle(ds.test_);
  return ds;
}

void MaskedFaceDataset::to_batch(const std::vector<Sample>& samples,
                                 const std::vector<std::int64_t>& indices,
                                 std::size_t first, std::size_t last,
                                 Tensor& x, std::vector<std::int64_t>& y) {
  if (first > last || last > indices.size())
    throw std::invalid_argument("to_batch: bad index range");
  const auto B = static_cast<std::int64_t>(last - first);
  if (B == 0) throw std::invalid_argument("to_batch: empty batch");
  const int S = samples.at(static_cast<std::size_t>(indices[first])).image.height();
  x = Tensor(Shape{B, S, S, 3});
  y.resize(static_cast<std::size_t>(B));
  for (std::int64_t b = 0; b < B; ++b) {
    const Sample& s =
        samples.at(static_cast<std::size_t>(indices[first + static_cast<std::size_t>(b)]));
    const auto& d = s.image.data();
    float* dst = x.data() + b * S * S * 3;
    for (std::size_t i = 0; i < d.size(); ++i) dst[i] = quantize_pixel(d[i]);
    y[static_cast<std::size_t>(b)] = static_cast<std::int64_t>(s.label);
  }
}

Tensor MaskedFaceDataset::image_to_tensor(const util::Image& img) {
  const int S = img.height();
  Tensor x(Shape{1, S, img.width(), 3});
  const auto& d = img.data();
  for (std::size_t i = 0; i < d.size(); ++i)
    x[static_cast<std::int64_t>(i)] = quantize_pixel(d[i]);
  return x;
}

}  // namespace bcop::facegen
