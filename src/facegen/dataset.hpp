// MaskedFace-Net substitute dataset with the paper's balancing pipeline.
//
// The real MaskedFace-Net has 133,783 samples distributed 51% CMFD, 39%
// IMFD-Nose, 5% IMFD-Chin, 5% IMFD-Nose+Mouth (Sec. IV-A). The paper
// counters this by subsampling the two majority classes down to the
// minority counts and then augmenting the balanced pool. We mirror that
// pipeline: a virtual raw pool with the same proportions is drawn, majority
// classes are subsampled to the minority count, and augmentation fills each
// class to the target size. (Subsampled majority images are never rendered
// -- every sample is i.i.d. from the generator, so dropping before
// rendering is distributionally identical and saves work; raw counts are
// still recorded for reporting.)
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "facegen/attributes.hpp"
#include "facegen/renderer.hpp"
#include "tensor/tensor.hpp"
#include "util/image.hpp"

namespace bcop::facegen {

struct Sample {
  util::Image image;
  MaskClass label = MaskClass::kCorrect;
  Regions regions;
  bool augmented = false;  // true if produced by duplicating + augmenting
};

struct DatasetConfig {
  int per_class_train = 1500;  // balanced training samples per class
  int per_class_test = 500;    // test samples per class
  int image_size = 32;
  std::uint64_t seed = 0xb1a5;
  /// Fraction of a class's target that exists "naturally" before
  /// augmentation (models the minority-class scarcity of the raw dataset).
  double natural_fraction = 0.7;
};

/// Raw MaskedFace-Net class proportions (CMFD, Nose, N+M, Chin).
constexpr std::array<double, 4> kRawClassProportions = {0.51, 0.39, 0.05, 0.05};

class MaskedFaceDataset {
 public:
  /// Deterministically generate train and test splits from config.seed.
  static MaskedFaceDataset generate(const DatasetConfig& config);

  const std::vector<Sample>& train() const { return train_; }
  const std::vector<Sample>& test() const { return test_; }
  const DatasetConfig& config() const { return config_; }

  /// Virtual raw pool counts per class before balancing (for reports).
  const std::array<std::int64_t, 4>& raw_counts() const { return raw_counts_; }

  /// Pack samples[indices[first..last)] into an NHWC tensor with pixel
  /// values mapped to [-1, 1], plus the label vector.
  static void to_batch(const std::vector<Sample>& samples,
                       const std::vector<std::int64_t>& indices,
                       std::size_t first, std::size_t last,
                       tensor::Tensor& x, std::vector<std::int64_t>& y);

  /// Convert one image to a [1, S, S, 3] tensor in [-1, 1].
  static tensor::Tensor image_to_tensor(const util::Image& img);

  /// Map a [0,1] pixel to the 8-bit fixed-point grid in [-1,1]:
  /// (2*round(255p) - 255)/255. Training consumes exactly the values the
  /// deployed accelerator's 8-bit first layer can represent (FINN-style),
  /// so quantization costs no train/deploy skew.
  static float quantize_pixel(float p) {
    const auto p8 = static_cast<int>(p * 255.f + 0.5f);
    return static_cast<float>(2 * p8 - 255) / 255.f;
  }

 private:
  DatasetConfig config_;
  std::vector<Sample> train_;
  std::vector<Sample> test_;
  std::array<std::int64_t, 4> raw_counts_{};
};

}  // namespace bcop::facegen
