#include "facegen/augment.hpp"

#include <algorithm>
#include <cmath>

namespace bcop::facegen {

using util::Image;

void adjust_contrast(Image& img, float factor) {
  for (auto& v : img.data()) v = std::clamp((v - 0.5f) * factor + 0.5f, 0.f, 1.f);
}

void adjust_brightness(Image& img, float delta) {
  for (auto& v : img.data()) v = std::clamp(v + delta, 0.f, 1.f);
}

void add_gaussian_noise(Image& img, float stddev, util::Rng& rng) {
  for (auto& v : img.data())
    v = std::clamp(v + static_cast<float>(rng.normal(0.0, stddev)), 0.f, 1.f);
}

void flip_horizontal(Image& img) {
  const int h = img.height(), w = img.width();
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w / 2; ++x)
      for (int c = 0; c < 3; ++c)
        std::swap(img.at(y, x, c), img.at(y, w - 1 - x, c));
}

void rotate(Image& img, float radians) {
  const int h = img.height(), w = img.width();
  Image out(h, w);
  const float cy = static_cast<float>(h - 1) / 2.f;
  const float cx = static_cast<float>(w - 1) / 2.f;
  const float s = std::sin(-radians), c = std::cos(-radians);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Inverse-map the output pixel into the source image.
      const float dy = static_cast<float>(y) - cy, dx = static_cast<float>(x) - cx;
      const float sy = cy + s * dx + c * dy;
      const float sx = cx + c * dx - s * dy;
      const float fy = std::clamp(sy, 0.f, static_cast<float>(h - 1));
      const float fx = std::clamp(sx, 0.f, static_cast<float>(w - 1));
      const int y0 = static_cast<int>(fy), x0 = static_cast<int>(fx);
      const int y1 = std::min(y0 + 1, h - 1), x1 = std::min(x0 + 1, w - 1);
      const float wy = fy - static_cast<float>(y0), wx = fx - static_cast<float>(x0);
      for (int ch = 0; ch < 3; ++ch) {
        const float v = img.at(y0, x0, ch) * (1 - wy) * (1 - wx) +
                        img.at(y0, x1, ch) * (1 - wy) * wx +
                        img.at(y1, x0, ch) * wy * (1 - wx) +
                        img.at(y1, x1, ch) * wy * wx;
        out.at(y, x, ch) = v;
      }
    }
  }
  img = std::move(out);
}

void random_augment_heavy(Image& img, util::Rng& rng) {
  adjust_contrast(img, static_cast<float>(rng.uniform(0.55, 1.6)));
  adjust_brightness(img, static_cast<float>(rng.uniform(-0.25, 0.25)));
  add_gaussian_noise(img, static_cast<float>(rng.uniform(0.06, 0.14)), rng);
  if (rng.bernoulli(0.5)) flip_horizontal(img);
  rotate(img, static_cast<float>(rng.uniform(-0.3, 0.3)));
}

void random_augment(Image& img, util::Rng& rng) {
  if (rng.bernoulli(0.5))
    adjust_contrast(img, static_cast<float>(rng.uniform(0.75, 1.3)));
  if (rng.bernoulli(0.5))
    adjust_brightness(img, static_cast<float>(rng.uniform(-0.12, 0.12)));
  if (rng.bernoulli(0.5))
    add_gaussian_noise(img, static_cast<float>(rng.uniform(0.005, 0.03)), rng);
  if (rng.bernoulli(0.5)) flip_horizontal(img);
  if (rng.bernoulli(0.5)) rotate(img, static_cast<float>(rng.uniform(-0.12, 0.12)));
}

}  // namespace bcop::facegen
