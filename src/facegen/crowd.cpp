#include "facegen/crowd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace bcop::facegen {

using util::Image;

float iou(const Rect& a, const Rect& b) {
  const float iu0 = std::max(a.u0, b.u0), iv0 = std::max(a.v0, b.v0);
  const float iu1 = std::min(a.u1, b.u1), iv1 = std::min(a.v1, b.v1);
  const float iw = std::max(0.f, iu1 - iu0), ih = std::max(0.f, iv1 - iv0);
  const float inter = iw * ih;
  const float uni = a.area() + b.area() - inter;
  return uni <= 0.f ? 0.f : inter / uni;
}

CrowdScene render_crowd(const CrowdConfig& config, util::Rng& rng) {
  if (config.canvas_width <= 0 || config.canvas_height <= 0 ||
      config.faces <= 0 || config.min_face_px < 8 ||
      config.max_face_px < config.min_face_px)
    throw std::invalid_argument("render_crowd: bad config");

  CrowdScene scene;
  scene.canvas = Image(config.canvas_height, config.canvas_width);
  // Street-scene backdrop: muted gradient with blocky structure.
  for (int y = 0; y < config.canvas_height; ++y)
    for (int x = 0; x < config.canvas_width; ++x) {
      const float g = 0.35f + 0.25f * static_cast<float>(y) /
                                  static_cast<float>(config.canvas_height) +
                      0.05f * static_cast<float>((x / 24 + y / 24) % 2);
      scene.canvas.set_rgb(y, x, g * 0.9f, g, g * 1.05f);
    }

  const float W = static_cast<float>(config.canvas_width);
  const float H = static_cast<float>(config.canvas_height);
  for (int f = 0; f < config.faces; ++f) {
    // Find a non-overlapping slot (bounded retries).
    bool placed = false;
    for (int attempt = 0; attempt < 50 && !placed; ++attempt) {
      const int size = static_cast<int>(
          rng.uniform_int(config.min_face_px, config.max_face_px));
      const int px = static_cast<int>(
          rng.uniform_int(0, config.canvas_width - size));
      const int py = static_cast<int>(
          rng.uniform_int(0, config.canvas_height - size));
      const Rect bbox{static_cast<float>(px) / W, static_cast<float>(py) / H,
                      static_cast<float>(px + size) / W,
                      static_cast<float>(py + size) / H};
      bool overlaps = false;
      for (const auto& other : scene.faces)
        if (iou(bbox, other.bbox) > 0.f) {
          overlaps = true;
          break;
        }
      if (overlaps) continue;

      const auto cls = config.uniform_classes
                           ? static_cast<MaskClass>(rng.uniform_int(0, 3))
                           : MaskClass::kCorrect;
      const FaceAttributes attrs = sample_attributes(cls, rng);
      const RenderResult rendered = render_face(attrs, size);
      for (int y = 0; y < size; ++y)
        for (int x = 0; x < size; ++x)
          scene.canvas.set_rgb(py + y, px + x, rendered.image.at(y, x, 0),
                               rendered.image.at(y, x, 1),
                               rendered.image.at(y, x, 2));
      scene.faces.push_back({bbox, cls});
      placed = true;
    }
  }
  return scene;
}

Image crop_resize(const Image& canvas, const Rect& bbox, int out) {
  if (out <= 0) throw std::invalid_argument("crop_resize: bad output size");
  const float H = static_cast<float>(canvas.height());
  const float W = static_cast<float>(canvas.width());
  Image tile(out, out);
  for (int y = 0; y < out; ++y) {
    const float v =
        bbox.v0 + (bbox.v1 - bbox.v0) * (static_cast<float>(y) + 0.5f) /
                      static_cast<float>(out);
    const float fy = std::clamp(v * H - 0.5f, 0.f, H - 1.f);
    const int y0 = static_cast<int>(fy);
    const int y1 = std::min(y0 + 1, canvas.height() - 1);
    const float wy = fy - static_cast<float>(y0);
    for (int x = 0; x < out; ++x) {
      const float u =
          bbox.u0 + (bbox.u1 - bbox.u0) * (static_cast<float>(x) + 0.5f) /
                        static_cast<float>(out);
      const float fx = std::clamp(u * W - 0.5f, 0.f, W - 1.f);
      const int x0 = static_cast<int>(fx);
      const int x1 = std::min(x0 + 1, canvas.width() - 1);
      const float wx = fx - static_cast<float>(x0);
      for (int c = 0; c < 3; ++c) {
        tile.at(y, x, c) = canvas.at(y0, x0, c) * (1 - wy) * (1 - wx) +
                           canvas.at(y0, x1, c) * (1 - wy) * wx +
                           canvas.at(y1, x0, c) * wy * (1 - wx) +
                           canvas.at(y1, x1, c) * wy * wx;
      }
    }
  }
  return tile;
}

namespace {

/// Replace a grayscale map with its gradient-magnitude map (forward
/// differences; last row/column zero). Edge structure is what separates
/// faces from the smooth/blocky backdrop -- raw-intensity correlation is
/// fooled by any smooth gradient.
void to_edges(std::vector<float>& g, int kT) {
  std::vector<float> e(g.size(), 0.f);
  for (int y = 0; y < kT - 1; ++y)
    for (int x = 0; x < kT - 1; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * kT + x;
      e[i] = std::abs(g[i + 1] - g[i]) +
             std::abs(g[static_cast<std::size_t>(y + 1) * kT + x] - g[i]);
    }
  g = std::move(e);
}

/// Returns false if the patch has (near-)zero edge energy.
bool normalize_zero_mean(std::vector<float>& v) {
  float mean = 0;
  for (const float x : v) mean += x;
  mean /= static_cast<float>(v.size());
  float norm = 0;
  for (auto& x : v) {
    x -= mean;
    norm += x * x;
  }
  if (norm < 1e-8f) return false;
  norm = std::sqrt(norm);
  for (auto& x : v) x /= norm;
  return true;
}

/// Edge-normalized descriptor of a square canvas region.
bool sample_patch(const Image& canvas, float u0, float v0, float size_u,
                  float size_v, int kT, std::vector<float>& out) {
  out.resize(static_cast<std::size_t>(kT) * kT);
  const float H = static_cast<float>(canvas.height());
  const float W = static_cast<float>(canvas.width());
  for (int y = 0; y < kT; ++y)
    for (int x = 0; x < kT; ++x) {
      const float v = v0 + size_v * (static_cast<float>(y) + 0.5f) / kT;
      const float u = u0 + size_u * (static_cast<float>(x) + 0.5f) / kT;
      const int py = std::clamp(static_cast<int>(v * H), 0, canvas.height() - 1);
      const int px = std::clamp(static_cast<int>(u * W), 0, canvas.width() - 1);
      out[static_cast<std::size_t>(y) * kT + x] =
          (canvas.at(py, px, 0) + canvas.at(py, px, 1) + canvas.at(py, px, 2)) / 3.f;
    }
  to_edges(out, kT);
  return normalize_zero_mean(out);
}

}  // namespace

FaceLocalizer::FaceLocalizer(std::uint64_t seed, int samples) {
  // Average the *edge maps* of many neutral subjects (flat background, no
  // geometry jitter) into one prior; edge structure generalizes across
  // skin tones and mask colours.
  util::Rng rng(seed);
  std::vector<float> avg(static_cast<std::size_t>(kTemplate) * kTemplate, 0.f);
  std::vector<float> gray(avg.size());
  for (int s = 0; s < samples; ++s) {
    FaceAttributes a;  // canonical geometry
    a.mask_class = static_cast<MaskClass>(s % kNumClasses);
    a.skin = {static_cast<float>(rng.uniform(0.4, 0.95)),
              static_cast<float>(rng.uniform(0.3, 0.8)),
              static_cast<float>(rng.uniform(0.2, 0.7))};
    a.mask_color = {0.62f, 0.80f, 0.93f};
    a.hair = {0.2f, 0.15f, 0.1f};
    a.background = {0.5f, 0.5f, 0.5f};
    const auto rendered = render_face(a, kTemplate);
    for (int y = 0; y < kTemplate; ++y)
      for (int x = 0; x < kTemplate; ++x)
        gray[static_cast<std::size_t>(y) * kTemplate + x] =
            (rendered.image.at(y, x, 0) + rendered.image.at(y, x, 1) +
             rendered.image.at(y, x, 2)) /
            3.f;
    to_edges(gray, kTemplate);
    for (std::size_t i = 0; i < avg.size(); ++i)
      avg[i] += gray[i] / static_cast<float>(samples);
  }
  if (!normalize_zero_mean(avg))
    throw std::logic_error("FaceLocalizer: degenerate template");
  template_ = std::move(avg);
}

std::vector<Detection> FaceLocalizer::detect(const Image& canvas,
                                             int max_faces,
                                             float min_score) const {
  std::vector<Detection> candidates;
  std::vector<float> patch;
  // Scale pyramid over plausible subject sizes, stride 1/6 window.
  for (const int size_px : {24, 28, 32, 36, 40, 44, 48, 56}) {
    if (size_px > std::min(canvas.width(), canvas.height())) continue;
    const float su = static_cast<float>(size_px) / static_cast<float>(canvas.width());
    const float sv = static_cast<float>(size_px) / static_cast<float>(canvas.height());
    const float step_u = su / 6.f, step_v = sv / 6.f;
    for (float v0 = 0.f; v0 + sv <= 1.f + 1e-6f; v0 += step_v) {
      for (float u0 = 0.f; u0 + su <= 1.f + 1e-6f; u0 += step_u) {
        if (!sample_patch(canvas, u0, v0, su, sv, kTemplate, patch)) continue;
        float score = 0;
        for (std::size_t i = 0; i < patch.size(); ++i)
          score += patch[i] * template_[i];
        if (score >= min_score)
          candidates.push_back({{u0, v0, u0 + su, v0 + sv}, score});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  // Greedy non-maximum suppression.
  std::vector<Detection> kept;
  for (const auto& c : candidates) {
    bool suppressed = false;
    for (const auto& k : kept)
      if (iou(c.bbox, k.bbox) > 0.25f) {
        suppressed = true;
        break;
      }
    if (!suppressed) {
      kept.push_back(c);
      if (static_cast<int>(kept.size()) >= max_faces) break;
    }
  }

  // Refinement: the classifier downstream is sensitive to framing, so
  // polish each surviving box with a local offset/scale search.
  for (auto& d : kept) {
    const float su0 = d.bbox.u1 - d.bbox.u0, sv0 = d.bbox.v1 - d.bbox.v0;
    Detection best = d;
    for (const float scale : {0.85f, 1.f, 1.18f}) {
      const float su = su0 * scale, sv = sv0 * scale;
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          const float u0 = d.bbox.u0 + static_cast<float>(dx) * su0 / 10.f +
                           (su0 - su) / 2.f;
          const float v0 = d.bbox.v0 + static_cast<float>(dy) * sv0 / 10.f +
                           (sv0 - sv) / 2.f;
          if (u0 < 0.f || v0 < 0.f || u0 + su > 1.f || v0 + sv > 1.f) continue;
          if (!sample_patch(canvas, u0, v0, su, sv, kTemplate, patch)) continue;
          float score = 0;
          for (std::size_t i = 0; i < patch.size(); ++i)
            score += patch[i] * template_[i];
          if (score > best.score) best = {{u0, v0, u0 + su, v0 + sv}, score};
        }
      }
    }
    d = best;
  }

  // Refinement can reorder scores and nudge boxes together: restore the
  // sorted-and-suppressed invariant on the final set.
  std::sort(kept.begin(), kept.end(),
            [](const Detection& a, const Detection& b) { return a.score > b.score; });
  std::vector<Detection> final_set;
  for (const auto& c : kept) {
    bool suppressed = false;
    for (const auto& k : final_set)
      if (iou(c.bbox, k.bbox) > 0.25f) {
        suppressed = true;
        break;
      }
    if (!suppressed) final_set.push_back(c);
  }
  return final_set;
}

}  // namespace bcop::facegen
