// Mini-batch BNN training loop (Adam + softmax cross-entropy).
//
// The paper trains up to 300 epochs on 110K samples; this CPU-scale harness
// keeps the identical algorithm (latent weights, STE, per-step latent
// clipping) while letting dataset size and epoch count shrink to the
// machine at hand. Learning rate decays exponentially from lr_start to
// lr_end over the epochs, as in the BinaryNet reference code.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "facegen/dataset.hpp"
#include "nn/sequential.hpp"

namespace bcop::core {

struct TrainConfig {
  int epochs = 20;
  std::int64_t batch_size = 50;
  float lr_start = 3e-3f;
  float lr_end = 1e-4f;
  std::uint64_t seed = 7;
  /// Run validation every `eval_every` epochs (and always on the last).
  int eval_every = 1;
  /// 0 = use every batch; otherwise cap the batches per epoch (smoke tests).
  std::int64_t max_batches_per_epoch = 0;
};

struct EpochStats {
  int epoch = 0;
  float mean_loss = 0.f;
  double train_accuracy = 0.0;  // on the training batches as seen
  double val_accuracy = -1.0;   // -1 when validation was skipped this epoch
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(nn::Sequential& model, TrainConfig config);

  /// Train on `train`; validate on `val` (may be empty to skip).
  /// Returns per-epoch statistics; also invokes `on_epoch` if set.
  std::vector<EpochStats> fit(const std::vector<facegen::Sample>& train,
                              const std::vector<facegen::Sample>& val);

  std::function<void(const EpochStats&)> on_epoch;

 private:
  nn::Sequential* model_;
  TrainConfig config_;
};

}  // namespace bcop::core
