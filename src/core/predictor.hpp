// Public facade: classify a face image with a trained Binary-CoP model.
//
// The Predictor owns both views of a trained network: the float training
// graph (needed for Grad-CAM) and the folded XNOR network (the deployment
// path used for classification). This is what the examples and the gate /
// crowd applications program against.
#pragma once

#include <array>
#include <string>

#include "facegen/attributes.hpp"
#include "nn/sequential.hpp"
#include "util/image.hpp"
#include "xnor/engine.hpp"

namespace bcop::core {

class Predictor {
 public:
  /// Take ownership of a trained BNN and fold it for deployment.
  explicit Predictor(nn::Sequential model);

  /// Load a model file written by nn::Sequential::save().
  static Predictor from_file(const std::string& path);

  /// A deployment-only clone for scale-out serving: copies the folded
  /// XNOR network (the copy starts with a fresh, empty plan cache, so each
  /// replica's workers build and own their plans with zero cross-replica
  /// sharing) but NOT the float training graph -- the clone's model() is
  /// an empty Sequential and it cannot produce Grad-CAM maps. classify()
  /// and classify_batch() behave identically to the original.
  Predictor replicate() const;

  struct Result {
    facegen::MaskClass label = facegen::MaskClass::kCorrect;
    std::array<float, facegen::kNumClasses> scores{};  // softmax of logits
    /// Confidence margin: softmax(top-1) - softmax(top-2), in [0, 1].
    /// Near 0 means the classifier is torn between two classes -- the
    /// signal serve::TieredRouter uses to escalate a request from the
    /// cheap M = 1 tier to the full residual depth
    /// (docs/residual-binarization.md).
    float margin = 0.f;
    /// True when the subject may pass a gate (mask correctly worn).
    bool admit() const { return label == facegen::MaskClass::kCorrect; }
  };

  /// Classify one image (any square size matching the model input).
  Result classify(const util::Image& image) const;

  /// Classify a prepared [N, S, S, 3] tensor; returns one Result per row.
  /// Runs the bit-domain batched engine path (one XNOR-popcount GEMM per
  /// layer for the whole batch). The batch shape is contract-checked
  /// against the folded topology (BCOP_CHECK aborts on mismatch).
  std::vector<Result> classify_batch(const tensor::Tensor& batch) const;

  /// Allocation-free serving form of classify_batch: the folded network
  /// executes its cached plan into `ws`, logits land in `logits` (only
  /// reallocated on a shape change), and softmax/argmax are computed
  /// in place into `results` (resized, but steady-state capacity is
  /// reused). After a warm call with a repeated batch shape this performs
  /// zero heap allocations -- the form the batching server workers use.
  void classify_batch(const tensor::Tensor& batch, xnor::Workspace& ws,
                      tensor::Tensor& logits,
                      std::vector<Result>& results) const;

  const nn::Sequential& model() const { return model_; }
  nn::Sequential& mutable_model() { return model_; }
  const xnor::XnorNetwork& network() const { return net_; }

  /// Cap the residual binarization depth this predictor serves at
  /// (XnorNetwork::plan_for semantics: 0 = every trained level, m in
  /// [1, max_levels()] truncates the deeper planes and their threshold
  /// banks). Classic M = 1 networks are unaffected by any value.
  /// replicate() copies the cap, which is how serve::TieredRouter builds
  /// an M = 1 fast tier and a full-depth escalation tier from one trained
  /// model. Not thread-safe against concurrent classify calls: set it
  /// before serving starts.
  void set_serve_levels(std::int64_t levels);
  std::int64_t serve_levels() const { return serve_levels_; }

 private:
  /// For replicate(): clones start empty and copy net_/want_ directly.
  Predictor() = default;

  nn::Sequential model_;
  xnor::XnorNetwork net_;
  /// net_.expected_input_shape(), computed once at construction so the
  /// per-batch contract check stays allocation-free.
  tensor::Shape want_;
  /// Residual level cap applied to every classify call (0 = full depth).
  std::int64_t serve_levels_ = 0;
};

}  // namespace bcop::core
