#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "facegen/dataset.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "xnor/plan.hpp"

namespace bcop::core {

Predictor::Predictor(nn::Sequential model) : model_(std::move(model)) {
  net_ = xnor::XnorNetwork::fold(model_);
  want_ = net_.expected_input_shape();
}

Predictor Predictor::from_file(const std::string& path) {
  return Predictor(nn::Sequential::load_file(path));
}

Predictor Predictor::replicate() const {
  // XnorNetwork's copy semantics are what make this cheap and safe: the
  // copy shares no mutable state with the original (its plan cache starts
  // empty), so replicas never contend on plans. The float graph is not
  // copied -- Sequential owns its layers via unique_ptr and the serving
  // path never touches it.
  Predictor clone;
  clone.net_ = net_;
  clone.want_ = want_;
  clone.serve_levels_ = serve_levels_;
  return clone;
}

void Predictor::set_serve_levels(std::int64_t levels) {
  BCOP_CHECK(levels >= 0 && levels <= net_.max_levels(),
             "set_serve_levels: cap %lld outside [0, %lld] for %s",
             static_cast<long long>(levels),
             static_cast<long long>(net_.max_levels()), net_.name().c_str());
  serve_levels_ = levels;
}

std::vector<Predictor::Result> Predictor::classify_batch(
    const tensor::Tensor& batch) const {
  static thread_local xnor::Workspace ws;
  tensor::Tensor logits;
  std::vector<Result> results;
  classify_batch(batch, ws, logits, results);
  return results;
}

void Predictor::classify_batch(const tensor::Tensor& batch,
                               xnor::Workspace& ws, tensor::Tensor& logits,
                               std::vector<Result>& results) const {
  // A mis-shaped batch would silently flow through conv/pool stages and
  // only explode (or worse, mis-classify) at the flatten boundary, so the
  // leading dimensions are contract-checked against the folded topology.
  const tensor::Shape& s = batch.shape();
  BCOP_CHECK(s.rank() == 4,
             "classify_batch: rank-4 [N, S, S, C] batch required, got %s",
             s.str().c_str());
  BCOP_CHECK(s[0] >= 1, "classify_batch: empty batch %s", s.str().c_str());
  const tensor::Shape& want = want_;
  if (want.rank() == 3) {
    BCOP_CHECK(s[1] == want[0] && s[2] == want[1] && s[3] == want[2],
               "classify_batch: batch %s does not match %s input "
               "[N, %lld, %lld, %lld]",
               s.str().c_str(), net_.name().c_str(),
               static_cast<long long>(want[0]),
               static_cast<long long>(want[1]),
               static_cast<long long>(want[2]));
  }
  net_.forward_batch(batch, ws, logits, serve_levels_);
  const std::int64_t n = logits.shape()[0], classes = logits.shape()[1];
  BCOP_CHECK(classes == facegen::kNumClasses,
             "classify_batch: model emits %lld classes, expected %d",
             static_cast<long long>(classes), facegen::kNumClasses);
  results.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * classes;
    Result& r = results[static_cast<std::size_t>(i)];
    r.label = static_cast<facegen::MaskClass>(tensor::argmax(row, classes));
    // Softmax into the fixed-size score array (same max-subtracted form as
    // tensor::softmax_rows, without the intermediate tensor).
    const float mx = *std::max_element(row, row + classes);
    float sum = 0.f;
    for (std::int64_t c = 0; c < classes; ++c) {
      r.scores[static_cast<std::size_t>(c)] = std::exp(row[c] - mx);
      sum += r.scores[static_cast<std::size_t>(c)];
    }
    float top1 = 0.f, top2 = 0.f;
    for (std::int64_t c = 0; c < classes; ++c) {
      const float p = r.scores[static_cast<std::size_t>(c)] / sum;
      r.scores[static_cast<std::size_t>(c)] = p;
      if (p > top1) {
        top2 = top1;
        top1 = p;
      } else if (p > top2) {
        top2 = p;
      }
    }
    r.margin = top1 - top2;
  }
}

Predictor::Result Predictor::classify(const util::Image& image) const {
  if (image.height() != image.width())
    throw std::invalid_argument("Predictor::classify: square image required");
  return classify_batch(facegen::MaskedFaceDataset::image_to_tensor(image))
      .front();
}

}  // namespace bcop::core
