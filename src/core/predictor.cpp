#include "core/predictor.hpp"

#include <cmath>
#include <stdexcept>

#include "facegen/dataset.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace bcop::core {

Predictor::Predictor(nn::Sequential model) : model_(std::move(model)) {
  net_ = xnor::XnorNetwork::fold(model_);
}

Predictor Predictor::from_file(const std::string& path) {
  return Predictor(nn::Sequential::load_file(path));
}

std::vector<Predictor::Result> Predictor::classify_batch(
    const tensor::Tensor& batch) const {
  // A mis-shaped batch would silently flow through conv/pool stages and
  // only explode (or worse, mis-classify) at the flatten boundary, so the
  // leading dimensions are contract-checked against the folded topology.
  const tensor::Shape& s = batch.shape();
  BCOP_CHECK(s.rank() == 4,
             "classify_batch: rank-4 [N, S, S, C] batch required, got %s",
             s.str().c_str());
  BCOP_CHECK(s[0] >= 1, "classify_batch: empty batch %s", s.str().c_str());
  const tensor::Shape want = net_.expected_input_shape();
  if (want.rank() == 3) {
    BCOP_CHECK(s[1] == want[0] && s[2] == want[1] && s[3] == want[2],
               "classify_batch: batch %s does not match %s input "
               "[N, %lld, %lld, %lld]",
               s.str().c_str(), net_.name().c_str(),
               static_cast<long long>(want[0]),
               static_cast<long long>(want[1]),
               static_cast<long long>(want[2]));
  }
  const tensor::Tensor logits = net_.forward_batch(batch);
  const tensor::Tensor probs = tensor::softmax_rows(logits);
  const auto pred = tensor::argmax_rows(logits);
  std::vector<Result> results(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    results[i].label = static_cast<facegen::MaskClass>(pred[i]);
    for (int c = 0; c < facegen::kNumClasses; ++c)
      results[i].scores[static_cast<std::size_t>(c)] =
          probs.at2(static_cast<std::int64_t>(i), c);
  }
  return results;
}

Predictor::Result Predictor::classify(const util::Image& image) const {
  if (image.height() != image.width())
    throw std::invalid_argument("Predictor::classify: square image required");
  return classify_batch(facegen::MaskedFaceDataset::image_to_tensor(image))
      .front();
}

}  // namespace bcop::core
