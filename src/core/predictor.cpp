#include "core/predictor.hpp"

#include <cmath>
#include <stdexcept>

#include "facegen/dataset.hpp"
#include "tensor/ops.hpp"

namespace bcop::core {

Predictor::Predictor(nn::Sequential model) : model_(std::move(model)) {
  net_ = xnor::XnorNetwork::fold(model_);
}

Predictor Predictor::from_file(const std::string& path) {
  return Predictor(nn::Sequential::load_file(path));
}

std::vector<Predictor::Result> Predictor::classify_batch(
    const tensor::Tensor& batch) const {
  const tensor::Tensor logits = net_.forward(batch);
  const tensor::Tensor probs = tensor::softmax_rows(logits);
  const auto pred = tensor::argmax_rows(logits);
  std::vector<Result> results(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    results[i].label = static_cast<facegen::MaskClass>(pred[i]);
    for (int c = 0; c < facegen::kNumClasses; ++c)
      results[i].scores[static_cast<std::size_t>(c)] =
          probs.at2(static_cast<std::int64_t>(i), c);
  }
  return results;
}

Predictor::Result Predictor::classify(const util::Image& image) const {
  if (image.height() != image.width())
    throw std::invalid_argument("Predictor::classify: square image required");
  return classify_batch(facegen::MaskedFaceDataset::image_to_tensor(image))
      .front();
}

}  // namespace bcop::core
