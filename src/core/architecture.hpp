// The three Binary-CoP prototypes of Table I: CNV, n-CNV and u-CNV.
//
// CNV is the FINN reference topology (VGG-like, BinaryNet-style) [7], [11],
// [28]; n-CNV shrinks every layer's width for a smaller memory footprint;
// u-CNV additionally drops Conv3.2 to shrink the synthesized design (at the
// cost of a larger pre-FC tensor, as the paper notes). All convolutions are
// 3x3 valid, stride 1; groups 1 and 2 end in a 2x2 max pool; every layer
// except the classifier is followed by BatchNorm + sign.
//
// The LayerSpec table also carries Table I's hardware dimensioning (PE
// count and SIMD lanes per matrix-vector-threshold unit), which the deploy
// module uses to compute cycle counts and resource usage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace bcop::core {

enum class ArchitectureId { kCnv = 0, kNCnv = 1, kMicroCnv = 2 };

const char* arch_name(ArchitectureId id);  // "CNV", "n-CNV", "u-CNV"

/// One compute layer of a prototype, with its FINN dimensioning.
struct LayerSpec {
  std::string name;       // e.g. "Conv1.1", "FC.2"
  bool is_conv = false;
  std::int64_t k = 0;     // kernel (convs only)
  std::int64_t ci = 0;    // input channels / features
  std::int64_t co = 0;    // output channels / features
  std::int64_t in_h = 0, in_w = 0;    // input spatial dims (1 for FC)
  std::int64_t out_h = 0, out_w = 0;  // output spatial dims (1 for FC)
  bool pool_after = false;
  std::int64_t pe = 0;    // processing elements in the layer's MVTU
  std::int64_t simd = 0;  // SIMD lanes per PE

  /// Rows x cols of the layer's weight matrix as the MVTU sees it.
  std::int64_t matrix_rows() const { return co; }
  std::int64_t matrix_cols() const { return is_conv ? k * k * ci : ci; }
  /// Output vectors the MVTU must produce per image.
  std::int64_t output_vectors() const { return out_h * out_w; }
  /// XNOR-popcount (or fixed-point MAC) operations per image.
  std::int64_t ops_per_image() const {
    return output_vectors() * matrix_rows() * matrix_cols();
  }
  std::int64_t weight_count() const { return matrix_rows() * matrix_cols(); }
};

/// Table I layer/hw data for a prototype (input 32x32x3, 4 classes).
std::vector<LayerSpec> layer_specs(ArchitectureId id);

/// Build the trainable BNN for a prototype (fresh Glorot weights).
/// `residual_levels` selects the activation binarization depth M:
/// 1 (default) emits plain SignActivation -- byte-identical to the
/// pre-residual builders -- while 2 or 3 emit nn::ResidualSign so every
/// hidden activation carries M residual binary levels (ReBNet; see
/// docs/residual-binarization.md).
nn::Sequential build_bnn(ArchitectureId id, std::uint64_t seed,
                         std::int64_t residual_levels = 1);

/// Build the FP32 CNV baseline (Conv2d + BatchNorm + ReLU, Dense head)
/// used by the paper for the Grad-CAM comparison column.
nn::Sequential build_fp32_cnv(std::uint64_t seed);

/// Index of the layer whose output the paper uses for Grad-CAM: the pool
/// after conv2_2 (spatial 5x5). Works for BNN and FP32 models built here.
/// Throws if the model has fewer than two MaxPool2 layers.
std::size_t gradcam_layer_index(const nn::Sequential& model);

}  // namespace bcop::core
