// Accuracy and confusion-matrix evaluation (paper Fig. 2).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "facegen/dataset.hpp"
#include "nn/sequential.hpp"
#include "xnor/engine.hpp"

namespace bcop::core {

/// 4x4 confusion matrix; rows = true class, columns = predicted class,
/// using the MaskClass order Correct / Nose / N+M / Chin (paper Fig. 2
/// orders rows Correct, Nose, N+M, Chin -- render() follows it).
struct ConfusionMatrix {
  std::array<std::array<std::int64_t, facegen::kNumClasses>,
             facegen::kNumClasses>
      counts{};

  void add(std::int64_t true_class, std::int64_t predicted);
  std::int64_t total() const;
  double accuracy() const;
  /// Recall of class c (diagonal / row sum); 0 for empty rows.
  double recall(std::int64_t c) const;
  /// ASCII rendering in the style of the paper's Fig. 2 (count + row %).
  std::string render() const;
};

class Evaluator {
 public:
  /// Evaluate the float training graph (inference mode, batched).
  static ConfusionMatrix evaluate_model(nn::Sequential& model,
                                        const std::vector<facegen::Sample>& samples,
                                        std::int64_t batch_size = 128);

  /// Evaluate a folded XNOR network (the deployment path; much faster).
  /// `levels` caps the residual binarization depth (XnorNetwork::plan_for
  /// semantics: 0 = every trained level) -- the knob the residual
  /// accuracy/FPS frontier bench sweeps (docs/residual-binarization.md).
  static ConfusionMatrix evaluate_xnor(const xnor::XnorNetwork& net,
                                       const std::vector<facegen::Sample>& samples,
                                       std::int64_t batch_size = 128,
                                       std::int64_t levels = 0);
};

}  // namespace bcop::core
