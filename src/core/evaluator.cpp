#include "core/evaluator.hpp"

#include <numeric>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/table.hpp"

namespace bcop::core {

using facegen::kNumClasses;

void ConfusionMatrix::add(std::int64_t true_class, std::int64_t predicted) {
  if (true_class < 0 || true_class >= kNumClasses || predicted < 0 ||
      predicted >= kNumClasses)
    throw std::invalid_argument("ConfusionMatrix::add: class out of range");
  ++counts[static_cast<std::size_t>(true_class)][static_cast<std::size_t>(predicted)];
}

std::int64_t ConfusionMatrix::total() const {
  std::int64_t n = 0;
  for (const auto& row : counts)
    for (const auto v : row) n += v;
  return n;
}

double ConfusionMatrix::accuracy() const {
  const std::int64_t n = total();
  if (n == 0) return 0.0;
  std::int64_t diag = 0;
  for (int c = 0; c < kNumClasses; ++c)
    diag += counts[static_cast<std::size_t>(c)][static_cast<std::size_t>(c)];
  return static_cast<double>(diag) / static_cast<double>(n);
}

double ConfusionMatrix::recall(std::int64_t c) const {
  const auto& row = counts.at(static_cast<std::size_t>(c));
  const std::int64_t n = std::accumulate(row.begin(), row.end(), std::int64_t{0});
  if (n == 0) return 0.0;
  return static_cast<double>(row[static_cast<std::size_t>(c)]) /
         static_cast<double>(n);
}

std::string ConfusionMatrix::render() const {
  util::AsciiTable t({"True \\ Pred", "Correct", "Nose", "N+M", "Chin"});
  for (int r = 0; r < kNumClasses; ++r) {
    const auto& row = counts[static_cast<std::size_t>(r)];
    const auto n = std::accumulate(row.begin(), row.end(), std::int64_t{0});
    std::vector<std::string> cells{
        facegen::class_short_name(static_cast<facegen::MaskClass>(r))};
    for (int c = 0; c < kNumClasses; ++c) {
      const double pct =
          n == 0 ? 0.0
                 : 100.0 * static_cast<double>(row[static_cast<std::size_t>(c)]) /
                       static_cast<double>(n);
      cells.push_back(std::to_string(row[static_cast<std::size_t>(c)]) + " (" +
                      util::fmt(pct, 0) + "%)");
    }
    t.add_row(std::move(cells));
  }
  return t.render();
}

namespace {

template <typename PredictFn>
ConfusionMatrix evaluate_batched(const std::vector<facegen::Sample>& samples,
                                 std::int64_t batch_size, PredictFn&& predict) {
  if (samples.empty())
    throw std::invalid_argument("Evaluator: empty sample set");
  if (batch_size <= 0)
    throw std::invalid_argument("Evaluator: non-positive batch size");
  ConfusionMatrix cm;
  std::vector<std::int64_t> indices(samples.size());
  std::iota(indices.begin(), indices.end(), 0);
  tensor::Tensor x;
  std::vector<std::int64_t> y;
  for (std::size_t first = 0; first < samples.size();
       first += static_cast<std::size_t>(batch_size)) {
    const std::size_t last =
        std::min(samples.size(), first + static_cast<std::size_t>(batch_size));
    facegen::MaskedFaceDataset::to_batch(samples, indices, first, last, x, y);
    const std::vector<std::int64_t> pred = predict(x);
    for (std::size_t i = 0; i < y.size(); ++i)
      cm.add(y[i], pred[i]);
  }
  return cm;
}

}  // namespace

ConfusionMatrix Evaluator::evaluate_model(
    nn::Sequential& model, const std::vector<facegen::Sample>& samples,
    std::int64_t batch_size) {
  return evaluate_batched(samples, batch_size, [&](const tensor::Tensor& x) {
    return tensor::argmax_rows(model.forward(x, /*training=*/false));
  });
}

ConfusionMatrix Evaluator::evaluate_xnor(
    const xnor::XnorNetwork& net, const std::vector<facegen::Sample>& samples,
    std::int64_t batch_size, std::int64_t levels) {
  return evaluate_batched(samples, batch_size, [&](const tensor::Tensor& x) {
    return tensor::argmax_rows(net.forward_batch(x, levels));
  });
}

}  // namespace bcop::core
