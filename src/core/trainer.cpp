#include "core/trainer.hpp"

#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/evaluator.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax_xent.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace bcop::core {

Trainer::Trainer(nn::Sequential& model, TrainConfig config)
    : model_(&model), config_(config) {
  if (config.epochs <= 0 || config.batch_size <= 0)
    throw std::invalid_argument("TrainConfig: non-positive epochs/batch");
  if (config.lr_start <= 0.f || config.lr_end <= 0.f)
    throw std::invalid_argument("TrainConfig: non-positive learning rate");
}

std::vector<EpochStats> Trainer::fit(
    const std::vector<facegen::Sample>& train,
    const std::vector<facegen::Sample>& val) {
  if (train.empty()) throw std::invalid_argument("Trainer::fit: empty train set");
  using clock = std::chrono::steady_clock;

  nn::Adam opt(*model_, config_.lr_start);
  nn::SoftmaxCrossEntropy loss_head;
  util::Rng rng(config_.seed);

  std::vector<std::int64_t> indices(train.size());
  std::iota(indices.begin(), indices.end(), 0);

  const float decay =
      config_.epochs > 1
          ? std::pow(config_.lr_end / config_.lr_start,
                     1.f / static_cast<float>(config_.epochs - 1))
          : 1.f;

  std::vector<EpochStats> history;
  tensor::Tensor x;
  std::vector<std::int64_t> y;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto t0 = clock::now();
    opt.set_learning_rate(config_.lr_start *
                          std::pow(decay, static_cast<float>(epoch)));
    rng.shuffle(indices);

    double loss_sum = 0.0;
    std::int64_t correct = 0, seen = 0, batches = 0;
    for (std::size_t first = 0; first < indices.size();
         first += static_cast<std::size_t>(config_.batch_size)) {
      if (config_.max_batches_per_epoch > 0 &&
          batches >= config_.max_batches_per_epoch)
        break;
      const std::size_t last = std::min(
          indices.size(), first + static_cast<std::size_t>(config_.batch_size));
      facegen::MaskedFaceDataset::to_batch(train, indices, first, last, x, y);
      const tensor::Tensor logits = model_->forward(x, /*training=*/true);
      const float loss = loss_head.forward(logits, y);
      model_->backward(loss_head.backward());
      opt.step();

      loss_sum += loss * static_cast<double>(y.size());
      const auto pred = tensor::argmax_rows(logits);
      for (std::size_t i = 0; i < y.size(); ++i)
        if (pred[i] == y[i]) ++correct;
      seen += static_cast<std::int64_t>(y.size());
      ++batches;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = static_cast<float>(loss_sum / static_cast<double>(seen));
    stats.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(seen);
    const bool do_eval =
        !val.empty() && (epoch == config_.epochs - 1 ||
                         (config_.eval_every > 0 &&
                          (epoch + 1) % config_.eval_every == 0));
    if (do_eval)
      stats.val_accuracy =
          Evaluator::evaluate_model(*model_, val, config_.batch_size).accuracy();
    stats.seconds = std::chrono::duration<double>(clock::now() - t0).count();
    util::log_info("epoch ", epoch, " loss=", stats.mean_loss,
                   " train_acc=", stats.train_accuracy,
                   " val_acc=", stats.val_accuracy, " (", stats.seconds, "s)");
    if (on_epoch) on_epoch(stats);
    history.push_back(stats);
  }
  return history;
}

}  // namespace bcop::core
