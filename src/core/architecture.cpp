#include "core/architecture.hpp"

#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "nn/residual_sign.hpp"
#include "nn/sign_activation.hpp"
#include "util/rng.hpp"

namespace bcop::core {

const char* arch_name(ArchitectureId id) {
  switch (id) {
    case ArchitectureId::kCnv: return "CNV";
    case ArchitectureId::kNCnv: return "n-CNV";
    case ArchitectureId::kMicroCnv: return "u-CNV";
  }
  throw std::invalid_argument("arch_name: bad id");
}

namespace {

struct ConvDef {
  std::string name;
  std::int64_t ci, co;
  bool pool_after;
};

std::vector<LayerSpec> make_specs(const std::vector<ConvDef>& convs,
                                  const std::vector<std::int64_t>& fc_sizes,
                                  const std::vector<std::int64_t>& pe,
                                  const std::vector<std::int64_t>& simd) {
  std::vector<LayerSpec> specs;
  std::int64_t h = 32, w = 32;
  for (const ConvDef& c : convs) {
    LayerSpec s;
    s.name = c.name;
    s.is_conv = true;
    s.k = 3;
    s.ci = c.ci;
    s.co = c.co;
    s.in_h = h;
    s.in_w = w;
    s.out_h = h - 2;
    s.out_w = w - 2;
    s.pool_after = c.pool_after;
    h = s.out_h;
    w = s.out_w;
    if (c.pool_after) {
      h /= 2;
      w /= 2;
    }
    specs.push_back(std::move(s));
  }
  std::int64_t features = h * w * convs.back().co;
  int fc_index = 1;
  for (const std::int64_t out : fc_sizes) {
    LayerSpec s;
    s.name = "FC." + std::to_string(fc_index++);
    s.is_conv = false;
    s.ci = features;
    s.co = out;
    s.in_h = s.in_w = s.out_h = s.out_w = 1;
    features = out;
    specs.push_back(std::move(s));
  }
  if (pe.size() != specs.size() || simd.size() != specs.size())
    throw std::logic_error("make_specs: PE/SIMD arity mismatch");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].pe = pe[i];
    specs[i].simd = simd[i];
  }
  return specs;
}

}  // namespace

std::vector<LayerSpec> layer_specs(ArchitectureId id) {
  // Table I of the paper: architectures and hardware dimensioning.
  switch (id) {
    case ArchitectureId::kCnv:
      return make_specs(
          {{"Conv1.1", 3, 64, false},
           {"Conv1.2", 64, 64, true},
           {"Conv2.1", 64, 128, false},
           {"Conv2.2", 128, 128, true},
           {"Conv3.1", 128, 256, false},
           {"Conv3.2", 256, 256, false}},
          {512, 512, 4},
          {16, 32, 16, 16, 4, 1, 1, 1, 4},
          {3, 32, 32, 32, 32, 32, 4, 8, 1});
    case ArchitectureId::kNCnv:
      return make_specs(
          {{"Conv1.1", 3, 16, false},
           {"Conv1.2", 16, 16, true},
           {"Conv2.1", 16, 32, false},
           {"Conv2.2", 32, 32, true},
           {"Conv3.1", 32, 64, false},
           {"Conv3.2", 64, 64, false}},
          {128, 128, 4},
          {16, 16, 16, 16, 4, 1, 1, 1, 1},
          {3, 16, 16, 32, 32, 32, 4, 8, 1});
    case ArchitectureId::kMicroCnv:
      return make_specs(
          {{"Conv1.1", 3, 16, false},
           {"Conv1.2", 16, 16, true},
           {"Conv2.1", 16, 32, false},
           {"Conv2.2", 32, 32, true},
           {"Conv3.1", 32, 64, false}},
          {128, 4},
          {4, 4, 4, 4, 1, 1, 1},
          {3, 16, 16, 32, 32, 16, 1});
  }
  throw std::invalid_argument("layer_specs: bad id");
}

nn::Sequential build_bnn(ArchitectureId id, std::uint64_t seed,
                         std::int64_t residual_levels) {
  if (residual_levels < 1 || residual_levels > nn::ResidualSign::kMaxLevels)
    throw std::invalid_argument("build_bnn: residual_levels must be in [1, 3]");
  util::Rng rng(seed);
  nn::Sequential model(arch_name(id));
  const std::vector<LayerSpec> specs = layer_specs(id);
  // M == 1 keeps emitting plain SignActivation so the single-level model
  // (and its folded xnor plan) stays bit-identical to every prior PR.
  const auto add_sign = [&] {
    if (residual_levels == 1)
      model.emplace<nn::SignActivation>();
    else
      model.emplace<nn::ResidualSign>(residual_levels);
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const LayerSpec& s = specs[i];
    if (s.is_conv) {
      model.emplace<nn::BinaryConv2d>(s.k, s.ci, s.co, rng);
      model.emplace<nn::BatchNorm>(s.co);
      add_sign();
      if (s.pool_after) model.emplace<nn::MaxPool2>();
    } else {
      if (s.name == "FC.1") model.emplace<nn::Flatten>();
      model.emplace<nn::BinaryDense>(s.ci, s.co, rng);
      if (i + 1 < specs.size()) {  // classifier layer has no BN/sign
        model.emplace<nn::BatchNorm>(s.co);
        add_sign();
      }
    }
  }
  return model;
}

nn::Sequential build_fp32_cnv(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential model("FP32-CNV");
  for (const LayerSpec& s : layer_specs(ArchitectureId::kCnv)) {
    if (s.is_conv) {
      model.emplace<nn::Conv2d>(s.k, s.ci, s.co, rng);
      model.emplace<nn::BatchNorm>(s.co);
      model.emplace<nn::ReLU>();
      if (s.pool_after) model.emplace<nn::MaxPool2>();
    } else {
      if (s.name == "FC.1") model.emplace<nn::Flatten>();
      model.emplace<nn::Dense>(s.ci, s.co, rng);
      if (s.name != "FC.3") {
        model.emplace<nn::BatchNorm>(s.co);
        model.emplace<nn::ReLU>();
      }
    }
  }
  return model;
}

std::size_t gradcam_layer_index(const nn::Sequential& model) {
  int pools = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (std::string(model.layer(i).type()) == "MaxPool2" && ++pools == 2)
      return i;
  }
  throw std::runtime_error(
      "gradcam_layer_index: model lacks a second MaxPool2 (conv2_2 group)");
}

}  // namespace bcop::core
