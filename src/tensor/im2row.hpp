// Patch extraction for valid (unpadded) NHWC convolutions.
//
// BinaryCoP's networks use the FINN CNV topology: every convolution is 3x3,
// stride 1, *valid* padding (32 -> 30 -> 28 -> pool -> 14 -> ...), which is
// what makes conv2_2's post-pool output 5x5 as the paper states. im2row
// lowers such a convolution to one GEMM:
//   patches[N*Ho*Wo, K*K*Ci] x weights[K*K*Ci, Co] = output[N*Ho*Wo, Co]
// and row2im scatters patch gradients back for the backward pass.
#pragma once

#include <cstdint>

#include "tensor/bit_tensor.hpp"
#include "tensor/tensor.hpp"

namespace bcop::tensor {

/// Output spatial size of a valid KxK stride-1 convolution.
inline std::int64_t conv_out_dim(std::int64_t in, std::int64_t k) {
  return in - k + 1;
}

/// Extract KxK patches of `input` [N,H,W,C] into `rows` [N*Ho*Wo, K*K*C].
/// Patch element order is (ky, kx, c), matching weight layout [K,K,Ci,Co].
void im2row(const Tensor& input, std::int64_t k, Tensor& rows);

/// Scatter-add patch-space gradients `rows_grad` [N*Ho*Wo, K*K*C] back to
/// `input_grad` [N,H,W,C] (which is zeroed first).
void row2im(const Tensor& rows_grad, std::int64_t k, Tensor& input_grad);

/// Bit-domain im2row over a pixel-major packed activation batch: `pixels`
/// holds one C-bit row per (n, y, x) position ([N*H*W, C]); `rows` receives
/// the packed patch matrix [N*Ho*Wo, K*K*C] with the same (ky, kx, c)
/// element order as the float im2row, ready for binary_gemm. When C is a
/// multiple of 64 each kernel row is a word-aligned memcpy; otherwise the
/// per-pixel bit-fields are concatenated with append_bits.
void bit_im2row(const BitMatrix& pixels, std::int64_t n, std::int64_t h,
                std::int64_t w, std::int64_t c, std::int64_t k,
                BitMatrix& rows);

}  // namespace bcop::tensor
