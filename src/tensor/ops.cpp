#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcop::tensor {

std::int64_t argmax(const float* v, std::int64_t n) {
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < n; ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& m) {
  if (m.shape().rank() != 2)
    throw std::invalid_argument("argmax_rows: rank-2 tensor required");
  const std::int64_t rows = m.shape()[0], cols = m.shape()[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r)
    out[static_cast<std::size_t>(r)] = argmax(m.data() + r * cols, cols);
  return out;
}

void relu_inplace(Tensor& t) {
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = std::max(t[i], 0.f);
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.shape().rank() != 2)
    throw std::invalid_argument("softmax_rows: rank-2 tensor required");
  const std::int64_t rows = logits.shape()[0], cols = logits.shape()[1];
  Tensor out(logits.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    const float mx = *std::max_element(in, in + cols);
    float sum = 0.f;
    for (std::int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    for (std::int64_t c = 0; c < cols; ++c) o[c] /= sum;
  }
  return out;
}

double mean(const Tensor& t) {
  if (t.numel() == 0) return 0.0;
  double s = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) s += t[i];
  return s / static_cast<double>(t.numel());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape())
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  float m = 0.f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

std::vector<float> bilinear_resize(const std::vector<float>& src, int h, int w,
                                   int oh, int ow) {
  if (src.size() != static_cast<std::size_t>(h) * w)
    throw std::invalid_argument("bilinear_resize: size mismatch");
  std::vector<float> dst(static_cast<std::size_t>(oh) * ow);
  for (int y = 0; y < oh; ++y) {
    // Align corners: endpoints of the output map to endpoints of the input.
    const float fy = oh > 1 ? static_cast<float>(y) * (h - 1) / (oh - 1) : 0.f;
    const int y0 = static_cast<int>(fy);
    const int y1 = std::min(y0 + 1, h - 1);
    const float wy = fy - static_cast<float>(y0);
    for (int x = 0; x < ow; ++x) {
      const float fx = ow > 1 ? static_cast<float>(x) * (w - 1) / (ow - 1) : 0.f;
      const int x0 = static_cast<int>(fx);
      const int x1 = std::min(x0 + 1, w - 1);
      const float wx = fx - static_cast<float>(x0);
      const float v00 = src[static_cast<std::size_t>(y0) * w + x0];
      const float v01 = src[static_cast<std::size_t>(y0) * w + x1];
      const float v10 = src[static_cast<std::size_t>(y1) * w + x0];
      const float v11 = src[static_cast<std::size_t>(y1) * w + x1];
      dst[static_cast<std::size_t>(y) * ow + x] =
          v00 * (1 - wy) * (1 - wx) + v01 * (1 - wy) * wx +
          v10 * wy * (1 - wx) + v11 * wy * wx;
    }
  }
  return dst;
}

}  // namespace bcop::tensor
