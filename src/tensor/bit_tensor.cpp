#include "tensor/bit_tensor.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace bcop::tensor {

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols) {
  if (rows < 0 || cols < 0)
    throw std::invalid_argument("BitMatrix: negative dimensions");
  rows_ = rows;
  cols_ = cols;
  wpr_ = (cols + 63) / 64;
  data_.assign(static_cast<std::size_t>(rows * wpr_), 0ull);
}

void BitMatrix::pack_row(std::int64_t r, const float* src) {
  std::uint64_t* w = row(r);
  for (std::int64_t word = 0; word < wpr_; ++word) {
    std::uint64_t bits = 0;
    const std::int64_t base = word * 64;
    const std::int64_t n = std::min<std::int64_t>(64, cols_ - base);
    for (std::int64_t i = 0; i < n; ++i)
      bits |= static_cast<std::uint64_t>(src[base + i] >= 0.f) << i;
    w[word] = bits;
  }
}

BitMatrix pack_matrix(const float* src, std::int64_t rows, std::int64_t cols) {
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) m.pack_row(r, src + r * cols);
  return m;
}

std::int64_t xnor_match_count(const std::uint64_t* a, const std::uint64_t* b,
                              std::int64_t words, std::int64_t pad) {
  std::int64_t pop = 0;
  for (std::int64_t i = 0; i < words; ++i)
    pop += std::popcount(~(a[i] ^ b[i]));
  return pop - pad;
}

void binary_gemm(const BitMatrix& a, const BitMatrix& b,
                 std::vector<std::int32_t>& c) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("binary_gemm: K mismatch");
  const std::int64_t M = a.rows(), N = b.rows(), K = a.cols();
  const std::int64_t words = a.words_per_row();
  c.assign(static_cast<std::size_t>(M * N), 0);
  parallel::parallel_for_chunked(
      parallel::ThreadPool::global(), 0, M,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const std::uint64_t* ai = a.row(i);
          std::int32_t* ci = c.data() + i * N;
          for (std::int64_t j = 0; j < N; ++j)
            ci[j] = static_cast<std::int32_t>(xnor_dot(ai, b.row(j), K, words));
        }
      });
}

}  // namespace bcop::tensor
