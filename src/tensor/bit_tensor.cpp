#include "tensor/bit_tensor.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace bcop::tensor {

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols) {
  if (rows < 0 || cols < 0)
    throw std::invalid_argument("BitMatrix: negative dimensions");
  rows_ = rows;
  cols_ = cols;
  wpr_ = (cols + 63) / 64;
  data_.assign(static_cast<std::size_t>(rows * wpr_), 0ull);
}

void BitMatrix::pack_row(std::int64_t r, const float* src) {
  std::uint64_t* w = row(r);
  for (std::int64_t word = 0; word < wpr_; ++word) {
    std::uint64_t bits = 0;
    const std::int64_t base = word * 64;
    const std::int64_t n = std::min<std::int64_t>(64, cols_ - base);
    for (std::int64_t i = 0; i < n; ++i)
      bits |= static_cast<std::uint64_t>(src[base + i] >= 0.f) << i;
    w[word] = bits;
  }
}

BitMatrix pack_matrix(const float* src, std::int64_t rows, std::int64_t cols) {
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) m.pack_row(r, src + r * cols);
  return m;
}

void append_bits(std::uint64_t* dst, std::int64_t dst_off,
                 const std::uint64_t* src, std::int64_t nbits) {
  if (nbits <= 0) return;
  const std::int64_t shift = dst_off & 63;
  std::uint64_t* d = dst + (dst_off >> 6);
  const std::int64_t words = (nbits + 63) / 64;
  if (shift == 0) {
    for (std::int64_t w = 0; w < words; ++w) d[w] |= src[w];
    return;
  }
  for (std::int64_t w = 0; w < words; ++w) {
    const std::uint64_t v = src[w];
    d[w] |= v << shift;
    // The spill word only exists in dst when real (sub-nbits) bits land in
    // it; src padding above nbits is zero, so `hi == 0` proves the write
    // would be both out of range and a no-op.
    const std::uint64_t hi = v >> (64 - shift);
    if (hi != 0) d[w + 1] |= hi;
  }
}

std::int64_t xnor_match_count(const std::uint64_t* a, const std::uint64_t* b,
                              std::int64_t words, std::int64_t pad) {
  std::int64_t pop = 0;
  for (std::int64_t i = 0; i < words; ++i)
    pop += std::popcount(~(a[i] ^ b[i]));
  return pop - pad;
}

void binary_gemm(const BitMatrix& a, const BitMatrix& b,
                 std::vector<std::int32_t>& c) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("binary_gemm: K mismatch");
  const std::int64_t M = a.rows(), N = b.rows(), K = a.cols();
  const std::int64_t words = a.words_per_row();
  const std::int64_t pad = words * 64 - K;
  c.assign(static_cast<std::size_t>(M * N), 0);
  // Word-major transpose of b: bt[w*N + j] = b.row(j)[w]. With the weight
  // rows adjacent per word, one activation word broadcasts against N
  // contiguous lanes and the popcount loop vectorizes (vpopcntq where the
  // ISA has it; the `omp simd` hint is what unlocks it -- see bcop_optim).
  std::vector<std::uint64_t> bt(static_cast<std::size_t>(words * N));
  for (std::int64_t j = 0; j < N; ++j) {
    const std::uint64_t* bj = b.row(j);
    for (std::int64_t w = 0; w < words; ++w)
      bt[static_cast<std::size_t>(w * N + j)] = bj[w];
  }
  parallel::parallel_for_chunked(
      parallel::ThreadPool::global(), 0, M,
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<std::int64_t> pop(static_cast<std::size_t>(N));
        for (std::int64_t i = lo; i < hi; ++i) {
          const std::uint64_t* ai = a.row(i);
          std::int32_t* ci = c.data() + i * N;
          std::int64_t* pp = pop.data();
#pragma omp simd
          for (std::int64_t j = 0; j < N; ++j) pp[j] = 0;
          for (std::int64_t w = 0; w < words; ++w) {
            const std::uint64_t av = ai[w];
            const std::uint64_t* btw = bt.data() + w * N;
#pragma omp simd
            for (std::int64_t j = 0; j < N; ++j)
              pp[j] += std::popcount(~(av ^ btw[j]));
          }
#pragma omp simd
          for (std::int64_t j = 0; j < N; ++j)
            ci[j] = static_cast<std::int32_t>(2 * (pp[j] - pad) - K);
        }
      });
}

}  // namespace bcop::tensor
