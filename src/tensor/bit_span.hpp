// Non-owning views over bit-packed matrices + allocation-free kernels.
//
// The serving hot path executes into arena-owned storage (xnor::Workspace),
// so the kernels here mirror the BitMatrix operations in bit_tensor.hpp /
// im2row.hpp but read and write through spans instead of constructing
// matrices. Every function in this header is allocation-free by contract:
// scratch lives in fixed-size stack tiles and parallel fan-out goes through
// ThreadPool::for_chunks (function pointer + context, no std::function).
// The steady-state zero-allocation test (tests/test_zero_alloc.cpp) holds
// this layer to that contract.
//
// Invariant shared with BitMatrix: unused trailing bits of every row are
// zero. Producers into reused arena rows must re-establish it themselves
// (full-word stores do so for free; OR-based writers zero the row first).
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace bcop::tensor {

class BitMatrix;

/// Read-only view of `rows` packed bit rows of `cols` valid bits, each
/// occupying `wpr` 64-bit words.
struct ConstBitSpan {
  const std::uint64_t* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t wpr = 0;

  const std::uint64_t* row(std::int64_t r) const {
    BCOP_DCHECK(r >= 0 && r < rows, "row %lld out of [0, %lld)",
                static_cast<long long>(r), static_cast<long long>(rows));
    return data + r * wpr;
  }
  std::int64_t pad() const { return wpr * 64 - cols; }
};

/// Mutable variant of ConstBitSpan.
struct BitSpan {
  std::uint64_t* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t wpr = 0;

  std::uint64_t* row(std::int64_t r) const {
    BCOP_DCHECK(r >= 0 && r < rows, "row %lld out of [0, %lld)",
                static_cast<long long>(r), static_cast<long long>(rows));
    return data + r * wpr;
  }
  std::int64_t pad() const { return wpr * 64 - cols; }

  operator ConstBitSpan() const { return {data, rows, cols, wpr}; }
};

/// Words per packed row of `cols` bits.
inline std::int64_t words_for_bits(std::int64_t cols) {
  return (cols + 63) / 64;
}

/// Views over an owning BitMatrix (rows/cols/wpr taken from the matrix).
BitSpan span_of(BitMatrix& m);
ConstBitSpan span_of(const BitMatrix& m);

/// Pack `rows` float rows of `cols` values by sign (v >= 0 -> bit 1) into
/// `dst`. Full-word stores: padding bits come out zero even on reused rows.
void pack_rows(const float* src, std::int64_t rows, std::int64_t cols,
               BitSpan dst);

/// Word-major transpose of packed weight rows for binary_gemm_pre:
/// bt[w * b.rows + j] = b.row(j)[w]. `bt` must hold b.wpr * b.rows words.
/// Runs once at plan-compile time; the GEMM then streams bt.
void transpose_word_major(ConstBitSpan b, std::uint64_t* bt);

/// Binary GEMM against a pre-transposed weight matrix:
///   C[M, n] (int32) = A[M, K] x B[n, K]^T  with {-1,+1} semantics,
/// where `bt` is transpose_word_major of the packed weight rows and
/// `k` = A.cols. Work is split over ThreadPool::global() along M; per-row
/// popcount accumulators live in a fixed stack tile, so the call performs
/// no heap allocation.
void binary_gemm_pre(ConstBitSpan a, const std::uint64_t* bt, std::int64_t n,
                     std::int32_t* c);

/// Bit-domain im2row into a span (see tensor::bit_im2row): `pixels` is the
/// pixel-major packed activation batch [N*H*W, C], `rows` receives packed
/// patch rows [N*Ho*Wo, K*K*C]. Unaligned (OR-based) paths zero each
/// destination row first, so reused arena rows stay correct.
void bit_im2row(ConstBitSpan pixels, std::int64_t n, std::int64_t h,
                std::int64_t w, std::int64_t c, std::int64_t k, BitSpan rows);

/// 2x2 stride-2 max pool in the bit domain (word-wise OR of four pixel
/// bit-fields) into a span. Full-word stores.
void pool2_bits(ConstBitSpan pixels, std::int64_t n, std::int64_t h,
                std::int64_t w, BitSpan out);

/// Concatenate the per-pixel bit-fields of each image into one flat row
/// [N, ppi*C] (bit-domain Flatten) into a span. Zeroes destination rows
/// before the OR-based path when C is not word-aligned.
void flatten_pixels(ConstBitSpan pixels, std::int64_t n, std::int64_t ppi,
                    std::int64_t c, BitSpan out);

}  // namespace bcop::tensor
