#include "tensor/im2row.hpp"

#include <cstring>
#include <stdexcept>

namespace bcop::tensor {

void im2row(const Tensor& input, std::int64_t k, Tensor& rows) {
  const Shape& s = input.shape();
  if (s.rank() != 4) throw std::invalid_argument("im2row: input must be rank-4");
  const std::int64_t N = s[0], H = s[1], W = s[2], C = s[3];
  const std::int64_t Ho = conv_out_dim(H, k), Wo = conv_out_dim(W, k);
  if (Ho <= 0 || Wo <= 0)
    throw std::invalid_argument("im2row: kernel larger than input");
  const Shape want{N * Ho * Wo, k * k * C};
  if (rows.shape() != want) rows = Tensor(want);

  const float* in = input.data();
  float* out = rows.data();
  const std::int64_t row_len = k * k * C;
  for (std::int64_t n = 0; n < N; ++n) {
    const float* img = in + n * H * W * C;
    for (std::int64_t y = 0; y < Ho; ++y) {
      for (std::int64_t x = 0; x < Wo; ++x) {
        float* dst = out + ((n * Ho + y) * Wo + x) * row_len;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          // One contiguous copy per kernel row: k*C floats.
          const float* src = img + ((y + ky) * W + x) * C;
          std::memcpy(dst + ky * k * C, src,
                      static_cast<std::size_t>(k * C) * sizeof(float));
        }
      }
    }
  }
}

void row2im(const Tensor& rows_grad, std::int64_t k, Tensor& input_grad) {
  const Shape& s = input_grad.shape();
  if (s.rank() != 4) throw std::invalid_argument("row2im: grad must be rank-4");
  const std::int64_t N = s[0], H = s[1], W = s[2], C = s[3];
  const std::int64_t Ho = conv_out_dim(H, k), Wo = conv_out_dim(W, k);
  const Shape want{N * Ho * Wo, k * k * C};
  if (rows_grad.shape() != want)
    throw std::invalid_argument("row2im: rows shape " + rows_grad.shape().str() +
                                " != expected " + want.str());
  input_grad.fill(0.f);

  const float* rows = rows_grad.data();
  float* out = input_grad.data();
  const std::int64_t row_len = k * k * C;
  for (std::int64_t n = 0; n < N; ++n) {
    float* img = out + n * H * W * C;
    for (std::int64_t y = 0; y < Ho; ++y) {
      for (std::int64_t x = 0; x < Wo; ++x) {
        const float* src = rows + ((n * Ho + y) * Wo + x) * row_len;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          float* dst = img + ((y + ky) * W + x) * C;
          const float* s_row = src + ky * k * C;
          for (std::int64_t i = 0; i < k * C; ++i) dst[i] += s_row[i];
        }
      }
    }
  }
}

}  // namespace bcop::tensor
