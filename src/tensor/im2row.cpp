#include "tensor/im2row.hpp"

#include <cstring>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace bcop::tensor {

void im2row(const Tensor& input, std::int64_t k, Tensor& rows) {
  const Shape& s = input.shape();
  if (s.rank() != 4) throw std::invalid_argument("im2row: input must be rank-4");
  const std::int64_t N = s[0], H = s[1], W = s[2], C = s[3];
  const std::int64_t Ho = conv_out_dim(H, k), Wo = conv_out_dim(W, k);
  if (Ho <= 0 || Wo <= 0)
    throw std::invalid_argument("im2row: kernel larger than input");
  const Shape want{N * Ho * Wo, k * k * C};
  if (rows.shape() != want) rows = Tensor(want);

  const float* in = input.data();
  float* out = rows.data();
  const std::int64_t row_len = k * k * C;
  for (std::int64_t n = 0; n < N; ++n) {
    const float* img = in + n * H * W * C;
    for (std::int64_t y = 0; y < Ho; ++y) {
      for (std::int64_t x = 0; x < Wo; ++x) {
        float* dst = out + ((n * Ho + y) * Wo + x) * row_len;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          // One contiguous copy per kernel row: k*C floats.
          const float* src = img + ((y + ky) * W + x) * C;
          std::memcpy(dst + ky * k * C, src,
                      static_cast<std::size_t>(k * C) * sizeof(float));
        }
      }
    }
  }
}

void bit_im2row(const BitMatrix& pixels, std::int64_t n, std::int64_t h,
                std::int64_t w, std::int64_t c, std::int64_t k,
                BitMatrix& rows) {
  if (pixels.rows() != n * h * w || pixels.cols() != c)
    throw std::invalid_argument("bit_im2row: pixels not [N*H*W, C]");
  const std::int64_t ho = conv_out_dim(h, k), wo = conv_out_dim(w, k);
  if (ho <= 0 || wo <= 0)
    throw std::invalid_argument("bit_im2row: kernel larger than input");
  rows = BitMatrix(n * ho * wo, k * k * c);
  const std::int64_t wpp = pixels.words_per_row();
  const bool aligned = (c % 64) == 0;
  parallel::parallel_for_chunked(
      parallel::ThreadPool::global(), 0, n * ho * wo,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t r = lo; r < hi; ++r) {
          const std::int64_t img = r / (ho * wo);
          const std::int64_t rem = r - img * ho * wo;
          const std::int64_t y = rem / wo, x = rem - y * wo;
          std::uint64_t* dst = rows.row(r);
          for (std::int64_t ky = 0; ky < k; ++ky) {
            // The k pixels of one kernel row are adjacent along x, so their
            // packed fields are consecutive rows of `pixels`.
            const std::int64_t p = ((img * h) + y + ky) * w + x;
            if (aligned) {
              std::memcpy(dst + (ky * k * c) / 64, pixels.row(p),
                          static_cast<std::size_t>(k * wpp) * sizeof(std::uint64_t));
            } else if (c < 64) {
              // Single-word fields: inline the append (the call + multi-word
              // generality of append_bits costs more than the OR itself).
              const std::uint64_t* src = pixels.row(p);
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::uint64_t v = src[kx * wpp];
                const std::int64_t off = (ky * k + kx) * c;
                const std::int64_t sh = off & 63;
                std::uint64_t* d = dst + (off >> 6);
                d[0] |= v << sh;
                if (sh + c > 64) d[1] |= v >> (64 - sh);
              }
            } else {
              for (std::int64_t kx = 0; kx < k; ++kx)
                append_bits(dst, (ky * k + kx) * c, pixels.row(p + kx), c);
            }
          }
        }
      });
}

void row2im(const Tensor& rows_grad, std::int64_t k, Tensor& input_grad) {
  const Shape& s = input_grad.shape();
  if (s.rank() != 4) throw std::invalid_argument("row2im: grad must be rank-4");
  const std::int64_t N = s[0], H = s[1], W = s[2], C = s[3];
  const std::int64_t Ho = conv_out_dim(H, k), Wo = conv_out_dim(W, k);
  const Shape want{N * Ho * Wo, k * k * C};
  if (rows_grad.shape() != want)
    throw std::invalid_argument("row2im: rows shape " + rows_grad.shape().str() +
                                " != expected " + want.str());
  input_grad.fill(0.f);

  const float* rows = rows_grad.data();
  float* out = input_grad.data();
  const std::int64_t row_len = k * k * C;
  for (std::int64_t n = 0; n < N; ++n) {
    float* img = out + n * H * W * C;
    for (std::int64_t y = 0; y < Ho; ++y) {
      for (std::int64_t x = 0; x < Wo; ++x) {
        const float* src = rows + ((n * Ho + y) * Wo + x) * row_len;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          float* dst = img + ((y + ky) * W + x) * C;
          const float* s_row = src + ky * k * C;
          for (std::int64_t i = 0; i < k * C; ++i) dst[i] += s_row[i];
        }
      }
    }
  }
}

}  // namespace bcop::tensor
