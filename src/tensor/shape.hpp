// Tensor shape: a small fixed-capacity dimension list with NHWC helpers.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace bcop::tensor {

/// Up to four dimensions; rank-0 means "empty". Dimensions are int64 so
/// element-count arithmetic cannot overflow for any realistic tensor.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) {
    if (dims.size() > kMaxRank) throw std::invalid_argument("Shape: rank > 4");
    rank_ = static_cast<int>(dims.size());
    int i = 0;
    for (auto d : dims) {
      if (d < 0) throw std::invalid_argument("Shape: negative dimension");
      dims_[i++] = d;
    }
  }

  int rank() const { return rank_; }

  std::int64_t operator[](int i) const {
    if (i < 0 || i >= rank_) throw std::out_of_range("Shape: index " + std::to_string(i));
    return dims_[static_cast<std::size_t>(i)];
  }

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) {
      const std::int64_t d = dims_[static_cast<std::size_t>(i)];
      BCOP_DCHECK(d == 0 || n <= INT64_MAX / d,
                  "numel overflow at dim %d of %s", i, str().c_str());
      n *= d;
    }
    return rank_ == 0 ? 0 : n;
  }

  bool operator==(const Shape& o) const {
    if (rank_ != o.rank_) return false;
    for (int i = 0; i < rank_; ++i)
      if (dims_[static_cast<std::size_t>(i)] != o.dims_[static_cast<std::size_t>(i)])
        return false;
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string str() const {
    std::string s = "[";
    for (int i = 0; i < rank_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[static_cast<std::size_t>(i)]);
    }
    return s + "]";
  }

 private:
  static constexpr std::size_t kMaxRank = 4;
  std::array<std::int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace bcop::tensor
