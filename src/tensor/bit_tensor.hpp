// Bit-packed binary matrices and the XNOR-popcount dot product.
//
// A value +1 is stored as bit 1 and -1 as bit 0 (the same convention the
// paper's hardware uses, Sec. III-A). For two {-1,+1} vectors a and b of
// length K packed this way,
//   dot(a, b) = 2 * popcount(XNOR(a, b)) - K
// Rows are padded to whole 64-bit words with zero bits in *both* operands;
// each padding position contributes XNOR(0,0) = 1 to the popcount, so the
// dot product subtracts the pad count once more:
//   dot = 2 * (popcount - pad) - K
// This keeps the inner loop free of masking.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace bcop::tensor {

/// Row-major matrix of packed bits. Each row occupies words_per_row()
/// uint64 words; unused trailing bits are zero.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::int64_t rows, std::int64_t cols);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t words_per_row() const { return wpr_; }

  const std::uint64_t* row(std::int64_t r) const {
    BCOP_DCHECK(r >= 0 && r < rows_, "row %lld out of [0, %lld)",
                static_cast<long long>(r), static_cast<long long>(rows_));
    return data_.data() + r * wpr_;
  }
  std::uint64_t* row(std::int64_t r) {
    BCOP_DCHECK(r >= 0 && r < rows_, "row %lld out of [0, %lld)",
                static_cast<long long>(r), static_cast<long long>(rows_));
    return data_.data() + r * wpr_;
  }

  /// Set bit (r, c) from a sign: v >= 0 encodes +1.
  void set_from_sign(std::int64_t r, std::int64_t c, float v) {
    BCOP_DCHECK(c >= 0 && c < cols_, "bit %lld out of [0, %lld)",
                static_cast<long long>(c), static_cast<long long>(cols_));
    if (v >= 0.f)
      row(r)[c >> 6] |= (1ull << (c & 63));
    else
      row(r)[c >> 6] &= ~(1ull << (c & 63));
  }

  bool get(std::int64_t r, std::int64_t c) const {
    BCOP_DCHECK(c >= 0 && c < cols_, "bit %lld out of [0, %lld)",
                static_cast<long long>(c), static_cast<long long>(cols_));
    return (row(r)[c >> 6] >> (c & 63)) & 1ull;
  }

  /// Pack a full float row (length cols) by sign.
  void pack_row(std::int64_t r, const float* src);

  const std::vector<std::uint64_t>& storage() const { return data_; }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t wpr_ = 0;
  std::vector<std::uint64_t> data_;
};

/// Pack every row of a row-major float matrix [rows, cols] by sign.
BitMatrix pack_matrix(const float* src, std::int64_t rows, std::int64_t cols);

/// OR `nbits` bits (taken from bit 0 of `src`) into `dst` starting at bit
/// `dst_off`. Requirements: the target bits of `dst` are zero (freshly
/// constructed BitMatrix rows qualify) and the bits of `src` above `nbits`
/// are zero (BitMatrix row padding qualifies). This is the building block
/// for concatenating per-pixel channel bit-fields into im2row patch rows
/// when the field width is not word-aligned.
void append_bits(std::uint64_t* dst, std::int64_t dst_off,
                 const std::uint64_t* src, std::int64_t nbits);

/// XNOR-popcount accumulation between two packed rows of length `cols`
/// spanning `words` words: returns popcount(XNOR) - pad, i.e. the number of
/// matching positions among the valid bits.
std::int64_t xnor_match_count(const std::uint64_t* a, const std::uint64_t* b,
                              std::int64_t words, std::int64_t pad);

/// dot(a, b) over {-1,+1} vectors of length `cols`.
inline std::int64_t xnor_dot(const std::uint64_t* a, const std::uint64_t* b,
                             std::int64_t cols, std::int64_t words) {
  const std::int64_t pad = words * 64 - cols;
  return 2 * xnor_match_count(a, b, words, pad) - cols;
}

/// Binary GEMM: C[M,N] (int32) = A[M,K] x B[N,K]^T with {-1,+1} semantics.
/// A holds M packed activation rows, B holds N packed weight rows.
void binary_gemm(const BitMatrix& a, const BitMatrix& b,
                 std::vector<std::int32_t>& c);

}  // namespace bcop::tensor
