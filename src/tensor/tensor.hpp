// Dense float32 tensor in row-major (NHWC for rank-4) layout.
//
// This is the single numeric container shared by the training framework,
// Grad-CAM and the reference paths of the deployment simulator. It is a
// value type with owning storage; views are expressed as (pointer, shape)
// pairs at call sites that need them, which keeps lifetime reasoning
// trivial (Core Guidelines P.8, R.1).
//
// Element accessors are contract-checked via BCOP_DCHECK: zero overhead in
// production builds, full bounds/rank validation under
// -DBCOP_BOUNDS_CHECK=ON (see docs/static-analysis.md).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.hpp"
#include "util/check.hpp"

namespace bcop::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(const Shape& shape, float fill = 0.f)
      : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), fill) {}

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) {
    BCOP_DCHECK(i >= 0 && i < static_cast<std::int64_t>(data_.size()),
                "flat index %lld out of [0, %zu)", static_cast<long long>(i),
                data_.size());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    BCOP_DCHECK(i >= 0 && i < static_cast<std::int64_t>(data_.size()),
                "flat index %lld out of [0, %zu)", static_cast<long long>(i),
                data_.size());
    return data_[static_cast<std::size_t>(i)];
  }

  /// NHWC accessor for rank-4 tensors (unchecked hot path unless
  /// BCOP_BOUNDS_CHECK is on).
  float& at4(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) {
    return data_[index4(n, h, w, c)];
  }
  float at4(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) const {
    return data_[index4(n, h, w, c)];
  }

  /// Row-major accessor for rank-2 tensors.
  float& at2(std::int64_t r, std::int64_t c) { return data_[index2(r, c)]; }
  float at2(std::int64_t r, std::int64_t c) const { return data_[index2(r, c)]; }

  void fill(float v);

  /// Reinterpret the same storage under a new shape with equal numel.
  /// Throws std::invalid_argument on element-count mismatch.
  Tensor reshaped(const Shape& new_shape) const;

  const std::vector<float>& storage() const { return data_; }
  std::vector<float>& storage() { return data_; }

 private:
  std::size_t index4(std::int64_t n, std::int64_t h, std::int64_t w,
                     std::int64_t c) const {
    BCOP_DCHECK(shape_.rank() == 4, "at4 on rank-%d tensor %s", shape_.rank(),
                shape_.str().c_str());
    BCOP_DCHECK(n >= 0 && n < shape_[0] && h >= 0 && h < shape_[1] &&
                    w >= 0 && w < shape_[2] && c >= 0 && c < shape_[3],
                "at4(%lld, %lld, %lld, %lld) out of bounds for %s",
                static_cast<long long>(n), static_cast<long long>(h),
                static_cast<long long>(w), static_cast<long long>(c),
                shape_.str().c_str());
    return static_cast<std::size_t>(
        ((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c);
  }
  std::size_t index2(std::int64_t r, std::int64_t c) const {
    BCOP_DCHECK(shape_.rank() == 2, "at2 on rank-%d tensor %s", shape_.rank(),
                shape_.str().c_str());
    BCOP_DCHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
                "at2(%lld, %lld) out of bounds for %s",
                static_cast<long long>(r), static_cast<long long>(c),
                shape_.str().c_str());
    return static_cast<std::size_t>(r * shape_[1] + c);
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace bcop::tensor
