// Dense float32 tensor in row-major (NHWC for rank-4) layout.
//
// This is the single numeric container shared by the training framework,
// Grad-CAM and the reference paths of the deployment simulator. It is a
// value type with owning storage; views are expressed as (pointer, shape)
// pairs at call sites that need them, which keeps lifetime reasoning
// trivial (Core Guidelines P.8, R.1).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.hpp"

namespace bcop::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(const Shape& shape, float fill = 0.f)
      : shape_(shape), data_(static_cast<std::size_t>(shape.numel()), fill) {}

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// NHWC accessor for rank-4 tensors (no bounds check, hot path).
  float& at4(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) {
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c)];
  }
  float at4(std::int64_t n, std::int64_t h, std::int64_t w, std::int64_t c) const {
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c)];
  }

  /// Row-major accessor for rank-2 tensors.
  float& at2(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at2(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  void fill(float v);

  /// Reinterpret the same storage under a new shape with equal numel.
  /// Throws std::invalid_argument on element-count mismatch.
  Tensor reshaped(const Shape& new_shape) const;

  const std::vector<float>& storage() const { return data_; }
  std::vector<float>& storage() { return data_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace bcop::tensor
