// Small elementwise / reduction helpers shared across modules.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace bcop::tensor {

/// Index of the maximum of `n` values (first maximum wins).
std::int64_t argmax(const float* v, std::int64_t n);

/// Row-wise argmax of a [rows, cols] matrix.
std::vector<std::int64_t> argmax_rows(const Tensor& m);

/// In-place x := max(x, 0).
void relu_inplace(Tensor& t);

/// Numerically stable row-wise softmax of a [rows, cols] matrix.
Tensor softmax_rows(const Tensor& logits);

/// Mean of all elements.
double mean(const Tensor& t);

/// Maximum absolute difference between two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Bilinear resize of a single-channel [h, w] map to [oh, ow].
std::vector<float> bilinear_resize(const std::vector<float>& src, int h, int w,
                                   int oh, int ow);

}  // namespace bcop::tensor
