#include "tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcop::tensor {

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(const Shape& new_shape) const {
  if (new_shape.numel() != numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_.str() + " -> " + new_shape.str());
  Tensor t;
  t.shape_ = new_shape;
  t.data_ = data_;
  return t;
}

}  // namespace bcop::tensor
