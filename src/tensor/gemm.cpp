#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

namespace bcop::tensor {

namespace {
// Block sizes sized for typical L1/L2: the innermost nn kernel touches
// kBlockK rows of B (each N floats) repeatedly while streaming A.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockK = 256;

using parallel::ThreadPool;
using parallel::parallel_for_chunked;
}  // namespace

void gemm_nn(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
             const float* B, float* C, bool accumulate) {
  if (!accumulate) std::memset(C, 0, static_cast<std::size_t>(M) * N * sizeof(float));
  parallel_for_chunked(
      ThreadPool::global(), 0, (M + kBlockM - 1) / kBlockM,
      [&](std::int64_t blo, std::int64_t bhi) {
        for (std::int64_t mb = blo; mb < bhi; ++mb) {
          const std::int64_t m0 = mb * kBlockM;
          const std::int64_t m1 = std::min(M, m0 + kBlockM);
          for (std::int64_t k0 = 0; k0 < K; k0 += kBlockK) {
            const std::int64_t k1 = std::min(K, k0 + kBlockK);
            for (std::int64_t i = m0; i < m1; ++i) {
              float* Ci = C + i * N;
              const float* Ai = A + i * K;
              for (std::int64_t k = k0; k < k1; ++k) {
                const float a = Ai[k];
                if (a == 0.f) continue;  // im2row matrices are often sparse-ish
                const float* Bk = B + k * N;
                for (std::int64_t j = 0; j < N; ++j) Ci[j] += a * Bk[j];
              }
            }
          }
        }
      });
}

void gemm_nt(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
             const float* B, float* C, bool accumulate) {
  parallel_for_chunked(
      ThreadPool::global(), 0, M, [&](std::int64_t mlo, std::int64_t mhi) {
        for (std::int64_t i = mlo; i < mhi; ++i) {
          const float* Ai = A + i * K;
          float* Ci = C + i * N;
          for (std::int64_t j = 0; j < N; ++j) {
            const float* Bj = B + j * K;
            float acc = 0.f;
            for (std::int64_t k = 0; k < K; ++k) acc += Ai[k] * Bj[k];
            Ci[j] = accumulate ? Ci[j] + acc : acc;
          }
        }
      });
}

void gemm_tn(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
             const float* B, float* C, bool accumulate) {
  if (!accumulate) std::memset(C, 0, static_cast<std::size_t>(M) * N * sizeof(float));
  // Parallelizing over M keeps each worker writing a disjoint stripe of C;
  // every worker streams the whole of A and B (read-only, safe to share).
  parallel_for_chunked(
      ThreadPool::global(), 0, M, [&](std::int64_t mlo, std::int64_t mhi) {
        for (std::int64_t k = 0; k < K; ++k) {
          const float* Ak = A + k * M;
          const float* Bk = B + k * N;
          for (std::int64_t i = mlo; i < mhi; ++i) {
            const float a = Ak[i];
            if (a == 0.f) continue;
            float* Ci = C + i * N;
            for (std::int64_t j = 0; j < N; ++j) Ci[j] += a * Bk[j];
          }
        }
      });
}

void gemm_nn_naive(std::int64_t M, std::int64_t N, std::int64_t K,
                   const float* A, const float* B, float* C, bool accumulate) {
  for (std::int64_t i = 0; i < M; ++i)
    for (std::int64_t j = 0; j < N; ++j) {
      float acc = accumulate ? C[i * N + j] : 0.f;
      for (std::int64_t k = 0; k < K; ++k) acc += A[i * K + k] * B[k * N + j];
      C[i * N + j] = acc;
    }
}

void gemm_nt_naive(std::int64_t M, std::int64_t N, std::int64_t K,
                   const float* A, const float* B, float* C, bool accumulate) {
  for (std::int64_t i = 0; i < M; ++i)
    for (std::int64_t j = 0; j < N; ++j) {
      float acc = accumulate ? C[i * N + j] : 0.f;
      for (std::int64_t k = 0; k < K; ++k) acc += A[i * K + k] * B[j * K + k];
      C[i * N + j] = acc;
    }
}

void gemm_tn_naive(std::int64_t M, std::int64_t N, std::int64_t K,
                   const float* A, const float* B, float* C, bool accumulate) {
  for (std::int64_t i = 0; i < M; ++i)
    for (std::int64_t j = 0; j < N; ++j) {
      float acc = accumulate ? C[i * N + j] : 0.f;
      for (std::int64_t k = 0; k < K; ++k) acc += A[k * M + i] * B[k * N + j];
      C[i * N + j] = acc;
    }
}

}  // namespace bcop::tensor
