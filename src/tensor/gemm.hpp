// Single-precision general matrix multiply kernels.
//
// Three layout variants cover every product the training framework needs
// (forward, input-gradient and weight-gradient of im2row convolutions and
// dense layers):
//   gemm_nn: C[M,N] += A[M,K] * B[K,N]
//   gemm_nt: C[M,N] += A[M,K] * B[N,K]^T
//   gemm_tn: C[M,N] += A[K,M]^T * B[K,N]
// All matrices are dense row-major. The kernels use cache blocking plus
// inner loops arranged so the compiler auto-vectorizes the contiguous
// dimension; `*_naive` reference implementations back the property tests.
// Work is split over the thread pool along the M dimension.
#pragma once

#include <cstdint>

#include "parallel/thread_pool.hpp"

namespace bcop::tensor {

/// C += A * B. If `accumulate` is false, C is overwritten.
void gemm_nn(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
             const float* B, float* C, bool accumulate = false);

/// C += A * B^T (B stored [N, K]).
void gemm_nt(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
             const float* B, float* C, bool accumulate = false);

/// C += A^T * B (A stored [K, M]).
void gemm_tn(std::int64_t M, std::int64_t N, std::int64_t K, const float* A,
             const float* B, float* C, bool accumulate = false);

/// Reference implementations (triple loop, no blocking) for testing.
void gemm_nn_naive(std::int64_t M, std::int64_t N, std::int64_t K,
                   const float* A, const float* B, float* C,
                   bool accumulate = false);
void gemm_nt_naive(std::int64_t M, std::int64_t N, std::int64_t K,
                   const float* A, const float* B, float* C,
                   bool accumulate = false);
void gemm_tn_naive(std::int64_t M, std::int64_t N, std::int64_t K,
                   const float* A, const float* B, float* C,
                   bool accumulate = false);

}  // namespace bcop::tensor
