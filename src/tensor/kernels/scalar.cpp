// Scalar reference kernels. ALLOCATION-FREE ZONE: like every kernel tier,
// this TU must not allocate, lock or throw -- scratch lives in fixed-size
// stack tiles and contract failures abort through BCOP_CHECK. Enforced by
// lint rules R6/R9 and the binary-level audit (scripts/audit_hot_path.py).
#include "tensor/kernels/scalar.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "tensor/bit_tensor.hpp"

namespace bcop::tensor::kernels {

namespace {

void gemm_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const GemmCtx& g = *static_cast<const GemmCtx*>(raw);
  const std::int64_t N = g.n, K = g.a.cols;
  const std::int64_t words = g.a.wpr, pad = g.a.pad();
  // Popcount accumulators live in a fixed stack tile: the weight-row
  // dimension is walked kTile lanes at a time, each sweep streaming every
  // activation word once. 256 lanes keep the tile inside L1 while leaving
  // the inner loop wide enough to vectorize (see binary_gemm for the
  // word-major layout rationale).
  constexpr std::int64_t kTile = 256;
  std::int64_t pop[kTile];
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::uint64_t* ai = g.a.row(i);
    std::int32_t* ci = g.c + i * N;
    for (std::int64_t j0 = 0; j0 < N; j0 += kTile) {
      const std::int64_t jn = std::min(kTile, N - j0);
#pragma omp simd
      for (std::int64_t j = 0; j < jn; ++j) pop[j] = 0;
      for (std::int64_t w = 0; w < words; ++w) {
        const std::uint64_t av = ai[w];
        const std::uint64_t* btw = g.bt + w * N + j0;
#pragma omp simd
        for (std::int64_t j = 0; j < jn; ++j)
          pop[j] += std::popcount(~(av ^ btw[j]));
      }
#pragma omp simd
      for (std::int64_t j = 0; j < jn; ++j)
        ci[j0 + j] = static_cast<std::int32_t>(2 * (pop[j] - pad) - K);
    }
  }
}

void thresh_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const ThreshCtx& t = *static_cast<const ThreshCtx*>(raw);
  const std::int64_t C = t.out.cols, wpr = t.out.wpr;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int32_t* a = t.acc + r * C;
    std::uint64_t* w = t.out.row(r);
    // Branch-free compare mask per 64-channel word (see
    // PreparedThresholds); per-channel fire() branches cost more than the
    // XNOR GEMM itself.
    for (std::int64_t word = 0; word < wpr; ++word) {
      const std::int64_t base = word * 64;
      const std::int64_t nb = std::min<std::int64_t>(64, C - base);
      const std::int32_t* ab = a + base;
      const std::int32_t* tp = t.thr + base;
      const std::int32_t* ip = t.inv + base;
      std::uint64_t bits = 0;
#pragma omp simd reduction(| : bits)
      for (std::int64_t i = 0; i < nb; ++i)
        bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    (ab[i] >= tp[i]) ^ ip[i]))
                << i;
      w[word] = bits;
    }
  }
}

void im2row_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const Im2RowCtx& t = *static_cast<const Im2RowCtx*>(raw);
  const std::int64_t h = t.h, w = t.w, c = t.c, k = t.k;
  const std::int64_t ho = t.ho, wo = t.wo;
  const std::int64_t wpp = t.pixels.wpr;
  const bool aligned = (c % 64) == 0;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    std::uint64_t* dst = t.rows.row(r);
    // The OR-based paths rely on zero destination bits; arena rows carry
    // stale state, so clear the whole row first (aligned rows are fully
    // overwritten by the memcpy below and skip this).
    if (!aligned)
      std::memset(dst, 0, static_cast<std::size_t>(t.rows.wpr) *
                              sizeof(std::uint64_t));
    for (std::int64_t ky = 0; ky < k; ++ky) {
      // The k pixels of one kernel row are adjacent along x, so their
      // packed fields are consecutive rows of `pixels`.
      const std::int64_t p = ((img * h) + y + ky) * w + x;
      if (aligned) {
        std::memcpy(dst + (ky * k * c) / 64, t.pixels.row(p),
                    static_cast<std::size_t>(k * wpp) * sizeof(std::uint64_t));
      } else if (c < 64) {
        // Single-word fields: inline the append (the call + multi-word
        // generality of append_bits costs more than the OR itself).
        const std::uint64_t* src = t.pixels.row(p);
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::uint64_t v = src[kx * wpp];
          const std::int64_t off = (ky * k + kx) * c;
          const std::int64_t sh = off & 63;
          std::uint64_t* d = dst + (off >> 6);
          d[0] |= v << sh;
          if (sh + c > 64) d[1] |= v >> (64 - sh);
        }
      } else {
        for (std::int64_t kx = 0; kx < k; ++kx)
          append_bits(dst, (ky * k + kx) * c, t.pixels.row(p + kx), c);
      }
    }
  }
}

constexpr KernelTable kScalarTable{KernelLevel::kScalar, &gemm_chunk,
                                   &thresh_chunk, &im2row_chunk};

}  // namespace

const KernelTable& scalar_table() { return kScalarTable; }

}  // namespace bcop::tensor::kernels
