// AVX2 kernels. ALLOCATION-FREE ZONE: no allocation, locking or throwing
// (lint R6/R9 + scripts/audit_hot_path.py audit this object).
//
// The whole implementation is guarded on __AVX2__ so the TU always
// compiles: without the flag it exports a nullptr table and dispatch
// falls back to scalar. With it, only runtime CPUID (dispatch.cpp) may
// route execution here.
//
// GEMM popcount strategy (Mula/Kurz/Lemire, "Faster Population Counts
// Using AVX2 Instructions"): XNOR words are reduced 4 output lanes at a
// time; blocks of 16 words go through a Harley-Seal carry-save adder so
// only one in sixteen vectors pays the vpshufb nibble-LUT popcount, which
// roughly doubles popcount throughput on long rows (binary dense layers
// stream 64-128 words per row).
#include "tensor/kernels/avx2.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

#include "tensor/bit_tensor.hpp"

namespace bcop::tensor::kernels {

namespace {

/// Per-64-bit-lane popcount of a 256-bit vector: vpshufb nibble lookup,
/// summed into the four quadwords with vpsadbw.
inline __m256i popcount256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/// Carry-save adder step: (h, l) = a + b + c in bitwise carry-save form.
inline void csa(__m256i& h, __m256i& l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

void gemm_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const GemmCtx& g = *static_cast<const GemmCtx*>(raw);
  const std::int64_t N = g.n, K = g.a.cols;
  const std::int64_t words = g.a.wpr, pad = g.a.pad();
  const __m256i all_ones = _mm256_set1_epi64x(-1);
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::uint64_t* ai = g.a.row(i);
    std::int32_t* ci = g.c + i * N;
    std::int64_t j0 = 0;
    // Four output lanes share every activation word: one broadcast, four
    // XNOR+popcount columns of the word-major weight matrix.
    for (; j0 + 4 <= N; j0 += 4) {
      // xnor(w) = ~(A[i,w] ^ Bt[w, j0..j0+3]), the matching-bit mask.
      const auto xnor_words = [&](std::int64_t w) {
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(g.bt + w * N + j0));
        return _mm256_xor_si256(
            _mm256_xor_si256(_mm256_set1_epi64x(
                                 static_cast<long long>(ai[w])),
                             bv),
            all_ones);
      };
      __m256i total = _mm256_setzero_si256();
      __m256i ones = _mm256_setzero_si256(), twos = _mm256_setzero_si256();
      __m256i fours = _mm256_setzero_si256(), eights = _mm256_setzero_si256();
      std::int64_t w = 0;
      for (; w + 16 <= words; w += 16) {
        __m256i twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens;
        csa(twosA, ones, ones, xnor_words(w + 0), xnor_words(w + 1));
        csa(twosB, ones, ones, xnor_words(w + 2), xnor_words(w + 3));
        csa(foursA, twos, twos, twosA, twosB);
        csa(twosA, ones, ones, xnor_words(w + 4), xnor_words(w + 5));
        csa(twosB, ones, ones, xnor_words(w + 6), xnor_words(w + 7));
        csa(foursB, twos, twos, twosA, twosB);
        csa(eightsA, fours, fours, foursA, foursB);
        csa(twosA, ones, ones, xnor_words(w + 8), xnor_words(w + 9));
        csa(twosB, ones, ones, xnor_words(w + 10), xnor_words(w + 11));
        csa(foursA, twos, twos, twosA, twosB);
        csa(twosA, ones, ones, xnor_words(w + 12), xnor_words(w + 13));
        csa(twosB, ones, ones, xnor_words(w + 14), xnor_words(w + 15));
        csa(foursB, twos, twos, twosA, twosB);
        csa(eightsB, fours, fours, foursA, foursB);
        csa(sixteens, eights, eights, eightsA, eightsB);
        total = _mm256_add_epi64(total, popcount256(sixteens));
      }
      // total = 16*sixteens-count + carry-save residues + plain tail.
      total = _mm256_slli_epi64(total, 4);
      total = _mm256_add_epi64(
          total, _mm256_slli_epi64(popcount256(eights), 3));
      total = _mm256_add_epi64(
          total, _mm256_slli_epi64(popcount256(fours), 2));
      total = _mm256_add_epi64(
          total, _mm256_slli_epi64(popcount256(twos), 1));
      total = _mm256_add_epi64(total, popcount256(ones));
      for (; w < words; ++w)
        total = _mm256_add_epi64(total, popcount256(xnor_words(w)));
      alignas(32) std::int64_t pop[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(pop), total);
      for (int j = 0; j < 4; ++j)
        ci[j0 + j] = static_cast<std::int32_t>(2 * (pop[j] - pad) - K);
    }
    // Lane tail (N % 4): plain scalar popcount.
    for (; j0 < N; ++j0) {
      std::int64_t pop = 0;
      for (std::int64_t w = 0; w < words; ++w)
        pop += std::popcount(~(ai[w] ^ g.bt[w * N + j0]));
      ci[j0] = static_cast<std::int32_t>(2 * (pop - pad) - K);
    }
  }
}

void thresh_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const ThreshCtx& t = *static_cast<const ThreshCtx*>(raw);
  const std::int64_t C = t.out.cols, wpr = t.out.wpr;
  const __m256i zero = _mm256_setzero_si256();
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int32_t* a = t.acc + r * C;
    std::uint64_t* w = t.out.row(r);
    for (std::int64_t word = 0; word < wpr; ++word) {
      const std::int64_t base = word * 64;
      const std::int64_t nb = std::min<std::int64_t>(64, C - base);
      const std::int32_t* ab = a + base;
      const std::int32_t* tp = t.thr + base;
      const std::int32_t* ip = t.inv + base;
      std::uint64_t bits = 0;
      std::int64_t i = 0;
      // Eight channels per compare: fired = (acc >= thr) ^ inv written as
      // cmpgt(thr, acc) XOR cmpeq(inv, 0), movemask'd to one bit per lane.
      for (; i + 8 <= nb; i += 8) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ab + i));
        const __m256i tv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tp + i));
        const __m256i iv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ip + i));
        const __m256i fired = _mm256_xor_si256(
            _mm256_cmpgt_epi32(tv, av), _mm256_cmpeq_epi32(iv, zero));
        bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    _mm256_movemask_ps(_mm256_castsi256_ps(fired))))
                << i;
      }
      for (; i < nb; ++i)
        bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    (ab[i] >= tp[i]) ^ ip[i]))
                << i;
      w[word] = bits;
    }
  }
}

/// 256-bit-wide word copy (the patch gather is bandwidth-bound; wider
/// moves are all a SIMD tier can add to a copy kernel).
inline void copy_words(std::uint64_t* dst, const std::uint64_t* src,
                       std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
  for (; i < n; ++i) dst[i] = src[i];
}

void im2row_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const Im2RowCtx& t = *static_cast<const Im2RowCtx*>(raw);
  const std::int64_t h = t.h, w = t.w, c = t.c, k = t.k;
  const std::int64_t ho = t.ho, wo = t.wo;
  const std::int64_t wpp = t.pixels.wpr;
  const bool aligned = (c % 64) == 0;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    std::uint64_t* dst = t.rows.row(r);
    if (!aligned)
      std::memset(dst, 0, static_cast<std::size_t>(t.rows.wpr) *
                              sizeof(std::uint64_t));
    for (std::int64_t ky = 0; ky < k; ++ky) {
      const std::int64_t p = ((img * h) + y + ky) * w + x;
      if (aligned) {
        copy_words(dst + (ky * k * c) / 64, t.pixels.row(p), k * wpp);
      } else if (c < 64) {
        const std::uint64_t* src = t.pixels.row(p);
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::uint64_t v = src[kx * wpp];
          const std::int64_t off = (ky * k + kx) * c;
          const std::int64_t sh = off & 63;
          std::uint64_t* d = dst + (off >> 6);
          d[0] |= v << sh;
          if (sh + c > 64) d[1] |= v >> (64 - sh);
        }
      } else {
        for (std::int64_t kx = 0; kx < k; ++kx)
          append_bits(dst, (ky * k + kx) * c, t.pixels.row(p + kx), c);
      }
    }
  }
}

constexpr KernelTable kAvx2Table{KernelLevel::kAvx2, &gemm_chunk,
                                 &thresh_chunk, &im2row_chunk};

}  // namespace

const KernelTable* avx2_table() { return &kAvx2Table; }

}  // namespace bcop::tensor::kernels

#else  // !defined(__AVX2__)

namespace bcop::tensor::kernels {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace bcop::tensor::kernels

#endif
