// Runtime kernel-tier dispatch: CPUID feature detection, the
// BCOP_KERNEL_LEVEL override, and table selection.
//
// Selection happens once per process (cached in atomics, re-resolvable
// when the override changes) and is consumed at *plan-compile* time:
// ExecutionPlan::compile records the chosen table's function pointers into
// every plan step, so the interpreter replay never consults this module.
//
// Tier resolution order:
//   1. the programmatic override (set_level_override -- tests and tools),
//   2. the BCOP_KERNEL_LEVEL environment variable
//      ("scalar" | "avx2" | "avx512" | "auto"; read once, cached),
//   3. CPUID detection (including the OS XCR0 YMM/ZMM state checks).
// A requested tier that is not compiled in or not supported by the CPU is
// clamped DOWN to the best available tier, never up and never to a tier
// the hardware cannot execute -- forcing "avx512" on an AVX2-only host
// runs AVX2, and forcing anything on a non-x86 build runs scalar.
#pragma once

#include "tensor/kernels/kernel_api.hpp"

namespace bcop::tensor::kernels {

/// Lower-case tier name ("scalar", "avx2", "avx512") for artifacts, bench
/// tables and logs.
const char* kernel_level_name(KernelLevel level);

/// Parse a tier name as accepted by BCOP_KERNEL_LEVEL. Returns false for
/// anything unrecognized ("auto" and "" are recognized but leave *out
/// untouched and return false -- they mean "no forced tier").
bool parse_kernel_level(const char* s, KernelLevel* out);

/// True when `level` is both compiled into this binary and executable on
/// this CPU (kScalar is always available).
bool level_available(KernelLevel level);

/// Best tier this binary can execute on this CPU, ignoring overrides.
KernelLevel detected_level();

/// The table for `level`, clamped down to the best available tier at or
/// below it. table_for(detected_level()) is the no-override fast path.
const KernelTable& table_for(KernelLevel level);

/// The tier the next plan compile will freeze: override, then env, then
/// detection -- always clamped to an available tier.
KernelLevel active_level();

/// Table for active_level().
const KernelTable& active_table();

/// Force a tier programmatically (clamped like every other request).
/// Overrides the environment variable until clear_level_override().
/// Existing compiled plans keep the pointers they froze; XnorNetwork's
/// plan cache keys on the active level, so the next plan_for() under a
/// different override compiles (and caches) a fresh plan.
void set_level_override(KernelLevel level);
void clear_level_override();

}  // namespace bcop::tensor::kernels
