// Kernel dispatch vocabulary for the bit-domain hot path.
//
// The three kernels the plan interpreter spends its cycles in -- popcount
// GEMM, packed threshold firing and bit-im2row -- exist in per-ISA tiers
// (scalar reference, AVX2, AVX-512 VPOPCNTDQ). Each tier exports one
// KernelTable of chunk functions; runtime CPUID detection picks the best
// table once (src/tensor/kernels/dispatch.cpp) and ExecutionPlan::compile
// freezes the chosen function pointers into every plan step, so the
// interpreter replay stays branch-free: it calls whatever pointer the plan
// recorded, never re-detects, never switches.
//
// Every chunk function in every tier is allocation-free, lock-free and
// throw-free by contract -- the tiers are audited at the object level by
// scripts/audit_hot_path.py exactly like the interpreter TU, and rules
// R6/R9 lint the sources. Chunk functions share the ThreadPool::ChunkFn
// shape (void* context + [lo, hi) range) so ThreadPool::for_chunks can fan
// them out with no adapter.
//
// All tiers compute bit-identical results: the arithmetic is integral
// (popcounts, compares, shifts), so the differential suite
// (tests/test_kernel_dispatch.cpp) asserts exact equality against the
// scalar reference on dirty buffers.
#pragma once

#include <cstdint>

#include "tensor/bit_span.hpp"

namespace bcop::tensor::kernels {

/// Dispatch tiers, ordered worst to best. The numeric order matters:
/// dispatch clamps a requested tier down to the best available one.
enum class KernelLevel : std::uint8_t {
  kScalar = 0,  // portable reference (autovectorized via `#pragma omp simd`)
  kAvx2 = 1,    // AVX2, Harley-Seal + vpshufb-nibble popcount
  kAvx512 = 2,  // AVX-512F/BW + VPOPCNTDQ hardware popcount
};
inline constexpr int kKernelLevelCount = 3;

/// Chunk function: body of a ThreadPool::for_chunks fan-out. Matches
/// parallel::ThreadPool::ChunkFn (static_asserted where the two meet) so
/// tables plug into the pool without any trampoline.
using KernelFn = void (*)(void* ctx, std::int64_t lo, std::int64_t hi);

/// Context for the popcount GEMM chunk: C[M, n] (int32, plus-minus-one
/// semantics) = A[M, K] x B[n, K]^T where `bt` is the word-major
/// pre-transposed packed weight matrix (tensor::transpose_word_major).
/// Chunks range over rows of A.
struct GemmCtx {
  ConstBitSpan a;
  const std::uint64_t* bt;
  std::int64_t n;
  std::int32_t* c;
};

/// Context for packed threshold firing: int32 accumulators -> packed sign
/// bits via the branch-free (acc >= thr) ^ inv compare per channel
/// (xnor::PreparedThresholds layout). Chunks range over output rows.
struct ThreshCtx {
  const std::int32_t* acc;
  const std::int32_t* thr;  // out.cols entries
  const std::int32_t* inv;  // out.cols entries, 0 or 1
  BitSpan out;
};

/// Context for bit-domain im2row: pixel-major packed activations
/// [N*H*W, C] -> packed patch rows [N*Ho*Wo, K*K*C]. Chunks range over
/// patch rows. OR-based (unaligned) paths must zero each destination row
/// first -- patch rows live in a reused arena.
struct Im2RowCtx {
  ConstBitSpan pixels;
  BitSpan rows;
  std::int64_t h, w, c, k, ho, wo;
};

/// One tier's kernel set. Tables are static-storage constants inside each
/// tier TU; a KernelTable pointer stays valid for the process lifetime, so
/// plans may cache the individual function pointers.
struct KernelTable {
  KernelLevel level;
  KernelFn gemm;    // GemmCtx
  KernelFn thresh;  // ThreshCtx
  KernelFn im2row;  // Im2RowCtx
};

}  // namespace bcop::tensor::kernels
