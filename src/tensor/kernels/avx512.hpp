// AVX-512 kernel tier: hardware VPOPCNTQ popcount (8 x 64-bit lanes per
// instruction), 16-lane mask-register threshold firing, and 512-bit-wide
// patch copies.
#pragma once

#include "tensor/kernels/kernel_api.hpp"

namespace bcop::tensor::kernels {

/// The AVX-512 table, or nullptr when this build could not compile the
/// tier (non-x86 target, or a compiler without -mavx512vpopcntdq). A
/// non-null pointer only promises the code exists -- callers must still
/// gate on runtime CPUID via dispatch.hpp before executing it.
const KernelTable* avx512_table();

}  // namespace bcop::tensor::kernels
