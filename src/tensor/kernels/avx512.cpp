// AVX-512 kernels. ALLOCATION-FREE ZONE: no allocation, locking or
// throwing (lint R6/R9 + scripts/audit_hot_path.py audit this object).
//
// Guarded on the full feature set the code needs -- F (512-bit vectors),
// BW (byte/word ops), VPOPCNTDQ (vpopcntq) -- so the TU always compiles;
// without the flags it exports a nullptr table. Runtime CPUID (including
// the OS XCR0 ZMM-state check) gates execution in dispatch.cpp.
//
// Unlike the AVX2 tier there is no Harley-Seal accumulator here: vpopcntq
// counts a full 512-bit vector per instruction, so the carry-save
// machinery would only add latency in front of a one-uop popcount.
#include "tensor/kernels/avx512.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstring>

#include "tensor/bit_tensor.hpp"

namespace bcop::tensor::kernels {

namespace {

void gemm_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const GemmCtx& g = *static_cast<const GemmCtx*>(raw);
  const std::int64_t N = g.n, K = g.a.cols;
  const std::int64_t words = g.a.wpr, pad = g.a.pad();
  const __m512i all_ones = _mm512_set1_epi64(-1);
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::uint64_t* ai = g.a.row(i);
    std::int32_t* ci = g.c + i * N;
    std::int64_t j0 = 0;
    // Eight output lanes per sweep: broadcast the activation word, XNOR
    // against eight word-major weight columns, vpopcntq, accumulate.
    for (; j0 + 8 <= N; j0 += 8) {
      __m512i total = _mm512_setzero_si512();
      for (std::int64_t w = 0; w < words; ++w) {
        const __m512i bv = _mm512_loadu_si512(g.bt + w * N + j0);
        const __m512i matches = _mm512_xor_si512(
            _mm512_xor_si512(
                _mm512_set1_epi64(static_cast<long long>(ai[w])), bv),
            all_ones);
        total = _mm512_add_epi64(total, _mm512_popcnt_epi64(matches));
      }
      alignas(64) std::int64_t pop[8];
      _mm512_store_si512(pop, total);
      for (int j = 0; j < 8; ++j)
        ci[j0 + j] = static_cast<std::int32_t>(2 * (pop[j] - pad) - K);
    }
    // Lane tail (N % 8): plain scalar popcount.
    for (; j0 < N; ++j0) {
      std::int64_t pop = 0;
      for (std::int64_t w = 0; w < words; ++w)
        pop += std::popcount(~(ai[w] ^ g.bt[w * N + j0]));
      ci[j0] = static_cast<std::int32_t>(2 * (pop - pad) - K);
    }
  }
}

void thresh_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const ThreshCtx& t = *static_cast<const ThreshCtx*>(raw);
  const std::int64_t C = t.out.cols, wpr = t.out.wpr;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int32_t* a = t.acc + r * C;
    std::uint64_t* w = t.out.row(r);
    for (std::int64_t word = 0; word < wpr; ++word) {
      const std::int64_t base = word * 64;
      const std::int64_t nb = std::min<std::int64_t>(64, C - base);
      const std::int32_t* ab = a + base;
      const std::int32_t* tp = t.thr + base;
      const std::int32_t* ip = t.inv + base;
      std::uint64_t bits = 0;
      std::int64_t i = 0;
      // Sixteen channels per compare, straight into mask registers:
      // fired = (acc >= thr) XOR (inv != 0).
      for (; i + 16 <= nb; i += 16) {
        const __m512i av = _mm512_loadu_si512(ab + i);
        const __m512i tv = _mm512_loadu_si512(tp + i);
        const __m512i iv = _mm512_loadu_si512(ip + i);
        const __mmask16 ge = _mm512_cmp_epi32_mask(av, tv, _MM_CMPINT_NLT);
        const __mmask16 invm = _mm512_test_epi32_mask(iv, iv);
        bits |= static_cast<std::uint64_t>(
                    static_cast<std::uint16_t>(ge ^ invm))
                << i;
      }
      for (; i < nb; ++i)
        bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    (ab[i] >= tp[i]) ^ ip[i]))
                << i;
      w[word] = bits;
    }
  }
}

/// 512-bit-wide word copy (the patch gather is bandwidth-bound; wider
/// moves are all a SIMD tier can add to a copy kernel).
inline void copy_words(std::uint64_t* dst, const std::uint64_t* src,
                       std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm512_storeu_si512(dst + i, _mm512_loadu_si512(src + i));
  for (; i < n; ++i) dst[i] = src[i];
}

void im2row_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const Im2RowCtx& t = *static_cast<const Im2RowCtx*>(raw);
  const std::int64_t h = t.h, w = t.w, c = t.c, k = t.k;
  const std::int64_t ho = t.ho, wo = t.wo;
  const std::int64_t wpp = t.pixels.wpr;
  const bool aligned = (c % 64) == 0;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    std::uint64_t* dst = t.rows.row(r);
    if (!aligned)
      std::memset(dst, 0, static_cast<std::size_t>(t.rows.wpr) *
                              sizeof(std::uint64_t));
    for (std::int64_t ky = 0; ky < k; ++ky) {
      const std::int64_t p = ((img * h) + y + ky) * w + x;
      if (aligned) {
        copy_words(dst + (ky * k * c) / 64, t.pixels.row(p), k * wpp);
      } else if (c < 64) {
        const std::uint64_t* src = t.pixels.row(p);
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::uint64_t v = src[kx * wpp];
          const std::int64_t off = (ky * k + kx) * c;
          const std::int64_t sh = off & 63;
          std::uint64_t* d = dst + (off >> 6);
          d[0] |= v << sh;
          if (sh + c > 64) d[1] |= v >> (64 - sh);
        }
      } else {
        for (std::int64_t kx = 0; kx < k; ++kx)
          append_bits(dst, (ky * k + kx) * c, t.pixels.row(p + kx), c);
      }
    }
  }
}

constexpr KernelTable kAvx512Table{KernelLevel::kAvx512, &gemm_chunk,
                                   &thresh_chunk, &im2row_chunk};

}  // namespace

const KernelTable* avx512_table() { return &kAvx512Table; }

}  // namespace bcop::tensor::kernels

#else  // tier not compiled

namespace bcop::tensor::kernels {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace bcop::tensor::kernels

#endif
