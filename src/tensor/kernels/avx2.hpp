// AVX2 kernel tier: vpshufb nibble-LUT popcount with a Harley-Seal
// carry-save accumulator for long rows (GEMM), 8-lane compare+movemask
// threshold firing, and 256-bit-wide patch copies (im2row).
#pragma once

#include "tensor/kernels/kernel_api.hpp"

namespace bcop::tensor::kernels {

/// The AVX2 table, or nullptr when this build could not compile the tier
/// (non-x86 target, or a compiler without -mavx2). A non-null pointer only
/// promises the code exists -- callers must still gate on runtime CPUID
/// via dispatch.hpp before executing it.
const KernelTable* avx2_table();

}  // namespace bcop::tensor::kernels
