// Kernel-tier dispatch. ALLOCATION-FREE ZONE: although selection runs at
// plan-compile time (cold), this TU is audited with the kernel tiers --
// state lives in constant-initialized atomics (a function-local static
// would drag __cxa_guard locking into the object), the env override is
// read with getenv/strcmp (no std::string), and nothing here can throw.
#include "tensor/kernels/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "tensor/kernels/avx2.hpp"
#include "tensor/kernels/avx512.hpp"
#include "tensor/kernels/scalar.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace bcop::tensor::kernels {

namespace {

// Cached resolution state. Encoding: level ordinal, or kUnresolved.
// Detection and the env read are idempotent, so a startup race at worst
// recomputes the same value -- plain relaxed atomics suffice.
constexpr int kUnresolved = -1;
constexpr int kEnvUnread = -2;
std::atomic<int> g_detected{kUnresolved};
std::atomic<int> g_env{kEnvUnread};     // kUnresolved = none/auto
std::atomic<int> g_override{kUnresolved};

#if defined(__x86_64__) || defined(__i386__)

std::uint64_t xgetbv0() {
  std::uint32_t eax, edx;
  // xgetbv with xcr index 0: which register states the OS saves/restores.
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

KernelLevel detect_cpu() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return KernelLevel::kScalar;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return KernelLevel::kScalar;
  const std::uint64_t xcr0 = xgetbv0();
  const bool ymm_os = (xcr0 & 0x06) == 0x06;          // XMM + YMM state
  const bool zmm_os = (xcr0 & 0xe6) == 0xe6;          // + opmask, ZMM state
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0)
    return KernelLevel::kScalar;
  const bool avx2 = (ebx & (1u << 5)) != 0;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool avx512bw = (ebx & (1u << 30)) != 0;
  const bool vpopcntdq = (ecx & (1u << 14)) != 0;
  if (zmm_os && avx512f && avx512bw && vpopcntdq && avx512_table() != nullptr)
    return KernelLevel::kAvx512;
  if (ymm_os && avx2 && avx2_table() != nullptr) return KernelLevel::kAvx2;
  return KernelLevel::kScalar;
}

#else

KernelLevel detect_cpu() { return KernelLevel::kScalar; }

#endif

/// BCOP_KERNEL_LEVEL, parsed once: a forced tier ordinal or kUnresolved.
int env_request() {
  int v = g_env.load(std::memory_order_relaxed);
  if (v != kEnvUnread) return v;
  KernelLevel lvl{};
  v = parse_kernel_level(std::getenv("BCOP_KERNEL_LEVEL"), &lvl)
          ? static_cast<int>(lvl)
          : kUnresolved;
  g_env.store(v, std::memory_order_relaxed);
  return v;
}

}  // namespace

const char* kernel_level_name(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar: return "scalar";
    case KernelLevel::kAvx2: return "avx2";
    case KernelLevel::kAvx512: return "avx512";
  }
  return "scalar";
}

bool parse_kernel_level(const char* s, KernelLevel* out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) { *out = KernelLevel::kScalar; return true; }
  if (std::strcmp(s, "avx2") == 0) { *out = KernelLevel::kAvx2; return true; }
  if (std::strcmp(s, "avx512") == 0) { *out = KernelLevel::kAvx512; return true; }
  return false;
}

KernelLevel detected_level() {
  int v = g_detected.load(std::memory_order_relaxed);
  if (v == kUnresolved) {
    v = static_cast<int>(detect_cpu());
    g_detected.store(v, std::memory_order_relaxed);
  }
  return static_cast<KernelLevel>(v);
}

bool level_available(KernelLevel level) {
  return static_cast<int>(level) <= static_cast<int>(detected_level());
}

const KernelTable& table_for(KernelLevel level) {
  const KernelLevel best = detected_level();
  const KernelLevel lvl = static_cast<int>(level) <= static_cast<int>(best)
                              ? level
                              : best;
  switch (lvl) {
    case KernelLevel::kAvx512: return *avx512_table();
    case KernelLevel::kAvx2: return *avx2_table();
    case KernelLevel::kScalar: break;
  }
  return scalar_table();
}

KernelLevel active_level() {
  int v = g_override.load(std::memory_order_relaxed);
  if (v == kUnresolved) v = env_request();
  if (v == kUnresolved) return detected_level();
  return table_for(static_cast<KernelLevel>(v)).level;  // clamped
}

const KernelTable& active_table() { return table_for(active_level()); }

void set_level_override(KernelLevel level) {
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_level_override() {
  g_override.store(kUnresolved, std::memory_order_relaxed);
}

}  // namespace bcop::tensor::kernels
