// Scalar reference tier: portable C++ kernels (autovectorized through
// `#pragma omp simd`). Every other tier is differentially tested against
// this table -- it defines the semantics.
#pragma once

#include "tensor/kernels/kernel_api.hpp"

namespace bcop::tensor::kernels {

/// Always available, on every architecture.
const KernelTable& scalar_table();

}  // namespace bcop::tensor::kernels
