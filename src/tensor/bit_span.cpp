#include "tensor/bit_span.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/im2row.hpp"

namespace bcop::tensor {

BitSpan span_of(BitMatrix& m) {
  return {m.rows() > 0 ? m.row(0) : nullptr, m.rows(), m.cols(),
          m.words_per_row()};
}

ConstBitSpan span_of(const BitMatrix& m) {
  return {m.rows() > 0 ? m.row(0) : nullptr, m.rows(), m.cols(),
          m.words_per_row()};
}

void pack_rows(const float* src, std::int64_t rows, std::int64_t cols,
               BitSpan dst) {
  BCOP_CHECK(dst.rows == rows && dst.cols == cols,
             "pack_rows: dst [%lld, %lld] != src [%lld, %lld]",
             static_cast<long long>(dst.rows), static_cast<long long>(dst.cols),
             static_cast<long long>(rows), static_cast<long long>(cols));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* s = src + r * cols;
    std::uint64_t* w = dst.row(r);
    for (std::int64_t word = 0; word < dst.wpr; ++word) {
      std::uint64_t bits = 0;
      const std::int64_t base = word * 64;
      const std::int64_t n = std::min<std::int64_t>(64, cols - base);
      for (std::int64_t i = 0; i < n; ++i)
        bits |= static_cast<std::uint64_t>(s[base + i] >= 0.f) << i;
      w[word] = bits;
    }
  }
}

void transpose_word_major(ConstBitSpan b, std::uint64_t* bt) {
  for (std::int64_t j = 0; j < b.rows; ++j) {
    const std::uint64_t* bj = b.row(j);
    for (std::int64_t w = 0; w < b.wpr; ++w) bt[w * b.rows + j] = bj[w];
  }
}

namespace {

struct GemmCtx {
  ConstBitSpan a;
  const std::uint64_t* bt;
  std::int64_t n;
  std::int32_t* c;
};

void gemm_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const GemmCtx& g = *static_cast<const GemmCtx*>(raw);
  const std::int64_t N = g.n, K = g.a.cols;
  const std::int64_t words = g.a.wpr, pad = g.a.pad();
  // Popcount accumulators live in a fixed stack tile: the weight-row
  // dimension is walked kTile lanes at a time, each sweep streaming every
  // activation word once. 256 lanes keep the tile inside L1 while leaving
  // the inner loop wide enough to vectorize (see binary_gemm for the
  // word-major layout rationale).
  constexpr std::int64_t kTile = 256;
  std::int64_t pop[kTile];
  for (std::int64_t i = lo; i < hi; ++i) {
    const std::uint64_t* ai = g.a.row(i);
    std::int32_t* ci = g.c + i * N;
    for (std::int64_t j0 = 0; j0 < N; j0 += kTile) {
      const std::int64_t jn = std::min(kTile, N - j0);
#pragma omp simd
      for (std::int64_t j = 0; j < jn; ++j) pop[j] = 0;
      for (std::int64_t w = 0; w < words; ++w) {
        const std::uint64_t av = ai[w];
        const std::uint64_t* btw = g.bt + w * N + j0;
#pragma omp simd
        for (std::int64_t j = 0; j < jn; ++j)
          pop[j] += std::popcount(~(av ^ btw[j]));
      }
#pragma omp simd
      for (std::int64_t j = 0; j < jn; ++j)
        ci[j0 + j] = static_cast<std::int32_t>(2 * (pop[j] - pad) - K);
    }
  }
}

}  // namespace

void binary_gemm_pre(ConstBitSpan a, const std::uint64_t* bt, std::int64_t n,
                     std::int32_t* c) {
  GemmCtx ctx{a, bt, n, c};
  parallel::ThreadPool::global().for_chunks(0, a.rows, &gemm_chunk, &ctx);
}

namespace {

struct Im2RowCtx {
  ConstBitSpan pixels;
  BitSpan rows;
  std::int64_t h, w, c, k, ho, wo;
};

void im2row_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const Im2RowCtx& t = *static_cast<const Im2RowCtx*>(raw);
  const std::int64_t h = t.h, w = t.w, c = t.c, k = t.k;
  const std::int64_t ho = t.ho, wo = t.wo;
  const std::int64_t wpp = t.pixels.wpr;
  const bool aligned = (c % 64) == 0;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    std::uint64_t* dst = t.rows.row(r);
    // The OR-based paths rely on zero destination bits; arena rows carry
    // stale state, so clear the whole row first (aligned rows are fully
    // overwritten by the memcpy below and skip this).
    if (!aligned)
      std::memset(dst, 0, static_cast<std::size_t>(t.rows.wpr) *
                              sizeof(std::uint64_t));
    for (std::int64_t ky = 0; ky < k; ++ky) {
      // The k pixels of one kernel row are adjacent along x, so their
      // packed fields are consecutive rows of `pixels`.
      const std::int64_t p = ((img * h) + y + ky) * w + x;
      if (aligned) {
        std::memcpy(dst + (ky * k * c) / 64, t.pixels.row(p),
                    static_cast<std::size_t>(k * wpp) * sizeof(std::uint64_t));
      } else if (c < 64) {
        // Single-word fields: inline the append (the call + multi-word
        // generality of append_bits costs more than the OR itself).
        const std::uint64_t* src = t.pixels.row(p);
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::uint64_t v = src[kx * wpp];
          const std::int64_t off = (ky * k + kx) * c;
          const std::int64_t sh = off & 63;
          std::uint64_t* d = dst + (off >> 6);
          d[0] |= v << sh;
          if (sh + c > 64) d[1] |= v >> (64 - sh);
        }
      } else {
        for (std::int64_t kx = 0; kx < k; ++kx)
          append_bits(dst, (ky * k + kx) * c, t.pixels.row(p + kx), c);
      }
    }
  }
}

}  // namespace

void bit_im2row(ConstBitSpan pixels, std::int64_t n, std::int64_t h,
                std::int64_t w, std::int64_t c, std::int64_t k, BitSpan rows) {
  if (pixels.rows != n * h * w || pixels.cols != c)
    throw std::invalid_argument("bit_im2row: pixels not [N*H*W, C]");
  const std::int64_t ho = conv_out_dim(h, k), wo = conv_out_dim(w, k);
  if (ho <= 0 || wo <= 0)
    throw std::invalid_argument("bit_im2row: kernel larger than input");
  BCOP_CHECK(rows.rows == n * ho * wo && rows.cols == k * k * c,
             "bit_im2row: rows span [%lld, %lld] != [%lld, %lld]",
             static_cast<long long>(rows.rows),
             static_cast<long long>(rows.cols),
             static_cast<long long>(n * ho * wo),
             static_cast<long long>(k * k * c));
  Im2RowCtx ctx{pixels, rows, h, w, c, k, ho, wo};
  parallel::ThreadPool::global().for_chunks(0, n * ho * wo, &im2row_chunk,
                                            &ctx);
}

void pool2_bits(ConstBitSpan pixels, std::int64_t n, std::int64_t h,
                std::int64_t w, BitSpan out) {
  const std::int64_t ho = h / 2, wo = w / 2;
  BCOP_CHECK(out.rows == n * ho * wo && out.cols == pixels.cols,
             "pool2_bits: out span [%lld, %lld] != [%lld, %lld]",
             static_cast<long long>(out.rows), static_cast<long long>(out.cols),
             static_cast<long long>(n * ho * wo),
             static_cast<long long>(pixels.cols));
  const std::int64_t wpp = pixels.wpr;
  for (std::int64_t nn_ = 0; nn_ < n; ++nn_)
    for (std::int64_t yy = 0; yy < ho; ++yy)
      for (std::int64_t xx = 0; xx < wo; ++xx) {
        const std::int64_t base = (nn_ * h + 2 * yy) * w + 2 * xx;
        const std::uint64_t* r0 = pixels.row(base);
        const std::uint64_t* r1 = pixels.row(base + 1);
        const std::uint64_t* r2 = pixels.row(base + w);
        const std::uint64_t* r3 = pixels.row(base + w + 1);
        std::uint64_t* dst = out.row((nn_ * ho + yy) * wo + xx);
        for (std::int64_t i = 0; i < wpp; ++i)
          dst[i] = (r0[i] | r1[i]) | (r2[i] | r3[i]);
      }
}

void flatten_pixels(ConstBitSpan pixels, std::int64_t n, std::int64_t ppi,
                    std::int64_t c, BitSpan out) {
  BCOP_CHECK(out.rows == n && out.cols == ppi * c,
             "flatten_pixels: out span [%lld, %lld] != [%lld, %lld]",
             static_cast<long long>(out.rows), static_cast<long long>(out.cols),
             static_cast<long long>(n), static_cast<long long>(ppi * c));
  const std::int64_t wpp = pixels.wpr;
  if (c % 64 == 0) {
    for (std::int64_t i = 0; i < n; ++i)
      std::memcpy(out.row(i), pixels.row(i * ppi),
                  static_cast<std::size_t>(ppi * wpp) * sizeof(std::uint64_t));
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      std::uint64_t* dst = out.row(i);
      std::memset(dst, 0,
                  static_cast<std::size_t>(out.wpr) * sizeof(std::uint64_t));
      for (std::int64_t p = 0; p < ppi; ++p)
        append_bits(dst, p * c, pixels.row(i * ppi + p), c);
    }
  }
}

}  // namespace bcop::tensor
