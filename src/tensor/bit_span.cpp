// Span-kernel entry points. ALLOCATION-FREE ZONE: these are the kernels
// the plan interpreter replays, so this TU must not allocate, lock or
// throw -- contract violations abort through BCOP_CHECK (a throw here
// would drag __cxa_throw/operator delete references into the hot object;
// scripts/audit_hot_path.py audits the compiled artifact for exactly
// that, and rules R6/R9 lint the source).
//
// The GEMM / threshold / im2row kernel *bodies* live in
// src/tensor/kernels/ (scalar reference + SIMD tiers); the wrappers here
// resolve the active dispatch table per call, which keeps every legacy
// caller (engine fold paths, tests, benches) on the best tier. The plan
// interpreter bypasses these wrappers entirely -- it replays the function
// pointers its plan froze at compile time.
#include "tensor/bit_span.hpp"

#include <algorithm>
#include <cstring>

#include "parallel/thread_pool.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/im2row.hpp"
#include "tensor/kernels/dispatch.hpp"

namespace bcop::tensor {

namespace {

using parallel::ThreadPool;

// Kernel chunk functions fan out through the pool without adapters.
static_assert(std::is_same_v<kernels::KernelFn, ThreadPool::ChunkFn>,
              "kernel tables must match the thread pool's chunk shape");

}  // namespace

BitSpan span_of(BitMatrix& m) {
  return {m.rows() > 0 ? m.row(0) : nullptr, m.rows(), m.cols(),
          m.words_per_row()};
}

ConstBitSpan span_of(const BitMatrix& m) {
  return {m.rows() > 0 ? m.row(0) : nullptr, m.rows(), m.cols(),
          m.words_per_row()};
}

void pack_rows(const float* src, std::int64_t rows, std::int64_t cols,
               BitSpan dst) {
  BCOP_CHECK(dst.rows == rows && dst.cols == cols,
             "pack_rows: dst [%lld, %lld] != src [%lld, %lld]",
             static_cast<long long>(dst.rows), static_cast<long long>(dst.cols),
             static_cast<long long>(rows), static_cast<long long>(cols));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* s = src + r * cols;
    std::uint64_t* w = dst.row(r);
    for (std::int64_t word = 0; word < dst.wpr; ++word) {
      std::uint64_t bits = 0;
      const std::int64_t base = word * 64;
      const std::int64_t n = std::min<std::int64_t>(64, cols - base);
      for (std::int64_t i = 0; i < n; ++i)
        bits |= static_cast<std::uint64_t>(s[base + i] >= 0.f) << i;
      w[word] = bits;
    }
  }
}

void transpose_word_major(ConstBitSpan b, std::uint64_t* bt) {
  for (std::int64_t j = 0; j < b.rows; ++j) {
    const std::uint64_t* bj = b.row(j);
    for (std::int64_t w = 0; w < b.wpr; ++w) bt[w * b.rows + j] = bj[w];
  }
}

void binary_gemm_pre(ConstBitSpan a, const std::uint64_t* bt, std::int64_t n,
                     std::int32_t* c) {
  kernels::GemmCtx ctx{a, bt, n, c};
  ThreadPool::global().for_chunks(0, a.rows, kernels::active_table().gemm,
                                  &ctx);
}

void bit_im2row(ConstBitSpan pixels, std::int64_t n, std::int64_t h,
                std::int64_t w, std::int64_t c, std::int64_t k, BitSpan rows) {
  BCOP_CHECK(pixels.rows == n * h * w && pixels.cols == c,
             "bit_im2row: pixels span [%lld, %lld] != [%lld, %lld]",
             static_cast<long long>(pixels.rows),
             static_cast<long long>(pixels.cols),
             static_cast<long long>(n * h * w), static_cast<long long>(c));
  const std::int64_t ho = conv_out_dim(h, k), wo = conv_out_dim(w, k);
  BCOP_CHECK(ho > 0 && wo > 0,
             "bit_im2row: kernel %lld larger than input %lldx%lld",
             static_cast<long long>(k), static_cast<long long>(h),
             static_cast<long long>(w));
  BCOP_CHECK(rows.rows == n * ho * wo && rows.cols == k * k * c,
             "bit_im2row: rows span [%lld, %lld] != [%lld, %lld]",
             static_cast<long long>(rows.rows),
             static_cast<long long>(rows.cols),
             static_cast<long long>(n * ho * wo),
             static_cast<long long>(k * k * c));
  kernels::Im2RowCtx ctx{pixels, rows, h, w, c, k, ho, wo};
  ThreadPool::global().for_chunks(0, n * ho * wo,
                                  kernels::active_table().im2row, &ctx);
}

namespace {

struct Pool2Ctx {
  ConstBitSpan pixels;
  BitSpan out;
  std::int64_t h, w, ho, wo;
};

void pool2_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const Pool2Ctx& t = *static_cast<const Pool2Ctx*>(raw);
  const std::int64_t w = t.w, ho = t.ho, wo = t.wo;
  const std::int64_t wpp = t.pixels.wpr;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t yy = rem / wo, xx = rem - yy * wo;
    const std::int64_t base = (img * t.h + 2 * yy) * w + 2 * xx;
    const std::uint64_t* r0 = t.pixels.row(base);
    const std::uint64_t* r1 = t.pixels.row(base + 1);
    const std::uint64_t* r2 = t.pixels.row(base + w);
    const std::uint64_t* r3 = t.pixels.row(base + w + 1);
    std::uint64_t* dst = t.out.row(r);
    for (std::int64_t i = 0; i < wpp; ++i)
      dst[i] = (r0[i] | r1[i]) | (r2[i] | r3[i]);
  }
}

struct FlattenCtx {
  ConstBitSpan pixels;
  BitSpan out;
  std::int64_t ppi, c;
};

void flatten_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const FlattenCtx& t = *static_cast<const FlattenCtx*>(raw);
  const std::int64_t ppi = t.ppi, c = t.c;
  const std::int64_t wpp = t.pixels.wpr;
  if (c % 64 == 0) {
    for (std::int64_t i = lo; i < hi; ++i)
      std::memcpy(t.out.row(i), t.pixels.row(i * ppi),
                  static_cast<std::size_t>(ppi * wpp) * sizeof(std::uint64_t));
  } else {
    for (std::int64_t i = lo; i < hi; ++i) {
      std::uint64_t* dst = t.out.row(i);
      std::memset(dst, 0,
                  static_cast<std::size_t>(t.out.wpr) * sizeof(std::uint64_t));
      for (std::int64_t p = 0; p < ppi; ++p)
        append_bits(dst, p * c, t.pixels.row(i * ppi + p), c);
    }
  }
}

}  // namespace

void pool2_bits(ConstBitSpan pixels, std::int64_t n, std::int64_t h,
                std::int64_t w, BitSpan out) {
  const std::int64_t ho = h / 2, wo = w / 2;
  BCOP_CHECK(out.rows == n * ho * wo && out.cols == pixels.cols,
             "pool2_bits: out span [%lld, %lld] != [%lld, %lld]",
             static_cast<long long>(out.rows), static_cast<long long>(out.cols),
             static_cast<long long>(n * ho * wo),
             static_cast<long long>(pixels.cols));
  // Fans out like every other pixel-row stage: at large batch the pooled
  // rows are numerous enough (n*ho*wo) that a serial loop showed up in
  // the per-stage histograms between two parallel stages.
  Pool2Ctx ctx{pixels, out, h, w, ho, wo};
  parallel::ThreadPool::global().for_chunks(0, n * ho * wo, &pool2_chunk,
                                            &ctx);
}

void flatten_pixels(ConstBitSpan pixels, std::int64_t n, std::int64_t ppi,
                    std::int64_t c, BitSpan out) {
  BCOP_CHECK(out.rows == n && out.cols == ppi * c,
             "flatten_pixels: out span [%lld, %lld] != [%lld, %lld]",
             static_cast<long long>(out.rows), static_cast<long long>(out.cols),
             static_cast<long long>(n), static_cast<long long>(ppi * c));
  // Chunked over images: one flat destination row per image, so chunks
  // never share a cache line of the destination.
  FlattenCtx ctx{pixels, out, ppi, c};
  parallel::ThreadPool::global().for_chunks(0, n, &flatten_chunk, &ctx);
}

}  // namespace bcop::tensor
