// Queue-aware dispatcher over a fleet of serving replicas.
//
// The FINN line of work scales throughput by replicating compute engines
// and load-balancing streams across them; this is the CPU serving
// analogue. A Router owns N serve::Replica instances -- each a clone of
// one prototype model with its own plan cache, bounded queue and worker
// pool, optionally pinned to a disjoint core set (parallel::
// partition_cpus) -- and places each request on the *least-loaded
// serving* replica:
//
//   try_submit --> scan serving replicas (queue_depth) --> best.try_submit
//                      ^                                        |
//                      +---- kUnavailable: retry next best -----+
//
// Placement rules, in order:
//   1. Never place onto a replica that is not kServing (drain/hot-swap
//      safety: a mid-swap replica is simply routed around).
//   2. Among serving replicas, lowest queue_depth wins; ties break
//      round-robin (the scan origin rotates per request) so an idle
//      fleet spreads instead of hammering replica 0.
//   3. kShed is terminal: the chosen replica was over the watermark and
//      its server already counted bcop_serve_rejected_total -- the fleet
//      sheds, it does not hunt for a luckier queue (that would break the
//      503 <-> rejected ledger and hide overload).
//   4. kUnavailable costs nothing (nothing counted, the image is
//      untouched) and moves to the next-best replica; only when every
//      serving replica is unavailable does the Router itself count one
//      rejection (keeping the ledger intact) and report nullopt.
//
// The Router itself is lock-free: the replica vector is immutable after
// construction, placement state is one atomic round-robin counter, and
// all lifecycle mutation lives inside the replicas. drain()/swap_model()
// on one replica proceed while the others keep serving -- that is the
// zero-downtime hot-swap path net::HttpServer exposes.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "core/predictor.hpp"
#include "serve/batcher.hpp"
#include "serve/replica.hpp"
#include "tensor/tensor.hpp"

namespace bcop::serve {

struct RouterConfig {
  /// Replica count, 1..64 (the placement scan tracks visited replicas in
  /// a 64-bit mask). Each replica gets its own BatchingServer built from
  /// `batcher` with replica_id forced to its index.
  int replicas = 2;
  /// Per-replica server template. queue_capacity/max_batch/max_latency/
  /// workers apply to EACH replica (fleet capacity is replicas x
  /// queue_capacity); replica_id and pin_cpus are overwritten per replica.
  BatcherConfig batcher;
  /// Deal each replica a disjoint CPU set via parallel::partition_cpus
  /// and pin its workers there. Soft like all pinning: hosts without an
  /// affinity syscall run unpinned.
  bool pin_workers = false;
};

class Router {
 public:
  /// Builds `config.replicas` replicas, each serving its own
  /// Predictor::replicate() clone of `prototype`. The prototype must
  /// outlive the Router (front-ends read its input shape; swaps may
  /// re-clone it).
  Router(const core::Predictor& prototype, RouterConfig config);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Non-blocking fleet admission: place on the least-loaded serving
  /// replica, retrying past mid-swap replicas. nullopt = shed (503 path);
  /// exactly one bcop_serve_rejected_total increment has happened, either
  /// inside the shedding replica or -- when no replica is serving -- in
  /// the Router itself. `max_depth` is the per-replica watermark handed
  /// to BatchingServer::try_submit.
  std::optional<std::future<core::Predictor::Result>> try_submit(
      tensor::Tensor image, std::int64_t max_depth = -1);

  int size() const { return static_cast<int>(replicas_.size()); }
  Replica& replica(int i) { return *replicas_[static_cast<std::size_t>(i)]; }
  const Replica& replica(int i) const {
    return *replicas_[static_cast<std::size_t>(i)];
  }

  /// Drain replica `i` (blocks until its queue empties); traffic keeps
  /// flowing through the rest of the fleet.
  void drain(int i) { replica(i).drain(); }
  /// Hot-swap replica `i` onto (a fresh clone of) `prototype` with zero
  /// fleet downtime: drain, re-clone, resume serving.
  void swap_model(int i, const core::Predictor& prototype) {
    replica(i).swap_model(prototype);
  }

  /// Sum of live replica queue depths (the /healthz fleet view).
  std::int64_t queue_depth() const;
  /// replicas x per-replica queue_capacity.
  std::int64_t queue_capacity() const;
  /// Fleet-aggregated stats() across replicas and their generations.
  ServerStats stats() const;

  const core::Predictor& prototype() const { return prototype_; }
  const RouterConfig& config() const { return config_; }

 private:
  struct Metrics;

  const core::Predictor& prototype_;
  const RouterConfig config_;
  /// Immutable after construction -- placement reads it lock-free.
  std::vector<std::unique_ptr<Replica>> replicas_;
  /// Rotating scan origin: breaks queue-depth ties round-robin.
  std::atomic<std::uint64_t> scan_origin_{0};
};

}  // namespace bcop::serve
