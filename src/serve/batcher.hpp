// Request-coalescing inference server: the software analogue of the
// paper's streaming accelerator pipeline.
//
// The FINN-style FPGA design reaches its ~6400 FPS (n-CNV, Table II) by
// keeping every stage of the pipeline busy on a stream of frames; the CPU
// equivalent is batching -- one bit-packed XNOR-popcount GEMM per layer
// over many images amortizes packing, dispatch and weight traffic. This
// module turns independent single-image requests into such batches:
//
//   submit() --> bounded request queue --> worker pool --> classify_batch
//
// Workers take up to `max_batch` queued requests at once; when fewer are
// waiting, they hold the batch open until the oldest request has waited
// `max_latency`, trading a bounded latency increase for throughput (the
// knob documented in docs/serving.md). The queue is bounded: submit()
// blocks when `queue_capacity` requests are pending, providing
// back-pressure instead of unbounded memory growth under overload.
//
// Concurrency is built strictly from parallel::ThreadPool (repo rule R2:
// no raw threads outside src/parallel/): each worker is one
// long-running task on a dedicated pool, and the batched network forward
// itself fans out over ThreadPool::global().
//
// The server exports telemetry into the process-wide obs::Registry
// (docs/observability.md): bcop_serve_{submitted,rejected,batches}_total
// counters, a bcop_serve_queue_depth gauge, and batch_size /
// coalesce_wait_ns / e2e_latency_ns histograms. Recording is lock-free
// and rides the existing request path; stats() remains the in-process
// aggregate view.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_annotations.hpp"
#include "xnor/plan.hpp"

namespace bcop::serve {

struct BatcherConfig {
  /// Largest coalesced batch handed to classify_batch.
  std::int64_t max_batch = 16;
  /// Bounded queue depth; submit() blocks while this many requests wait.
  std::int64_t queue_capacity = 64;
  /// How long a worker may hold an underfull batch open waiting for more
  /// requests, measured from the oldest member's enqueue time. 0 disables
  /// coalescing waits (every batch ships as soon as a worker is free).
  std::chrono::microseconds max_latency{2000};
  /// Worker tasks. 0 = synchronous mode: submit() classifies inline and
  /// returns a ready future (single-core hosts, tests).
  unsigned workers = 2;
  /// CPUs the worker tasks pin themselves to (parallel::pin_current_thread
  /// at loop entry; empty = unpinned). serve::Router hands each replica a
  /// disjoint set from parallel::partition_cpus so replicas do not migrate
  /// onto each other's caches. Pinning is a hint: an unpinnable host just
  /// runs unpinned.
  std::vector<int> pin_cpus;
  /// >= 0: this server is replica N of a serve::Router, and every metric
  /// it records lands in a bcop_serve_replica<N>_* family *in addition to*
  /// the process-wide bcop_serve_* family (so fleet-level dashboards and
  /// the 503<->rejected ledger keep working unchanged). -1: standalone
  /// server, global family only.
  int replica_id = -1;
};

struct ServerStats {
  std::int64_t requests = 0;      // total accepted
  std::int64_t batches = 0;       // classify_batch invocations
  std::int64_t coalesced = 0;     // requests that shared a batch (size > 1)
  std::int64_t max_batch_seen = 0;
};

class BatchingServer {
 public:
  /// The predictor must outlive the server; classification is const and
  /// safe to share across workers.
  BatchingServer(const core::Predictor& predictor, BatcherConfig config);
  /// Drains the queue (pending requests are still answered), then joins.
  ~BatchingServer();

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  /// Begin shutdown and wait for the workers: every already-accepted
  /// request is still answered (the queue drains), then the worker tasks
  /// exit. Idempotent; the destructor calls it. After shutdown, submit()
  /// returns rejected futures and try_submit() returns std::nullopt --
  /// serve::Replica uses this as the graceful-drain primitive.
  void shutdown() BCOP_EXCLUDES(mutex_);

  /// Enqueue one [S, S, 3] image (or [1, S, S, 3]); blocks while the queue
  /// is full. The future resolves once a worker ships the batch containing
  /// this request. After shutdown began the call never throws: it counts a
  /// rejection and returns a *rejected future* (std::runtime_error surfaces
  /// at get()), matching the no-throw admission discipline of try_submit.
  std::future<core::Predictor::Result> submit(tensor::Tensor image)
      BCOP_EXCLUDES(mutex_);

  /// Non-blocking admission-controlled submit for network front-ends: a
  /// caller that must never park (an HTTP worker holding hundreds of
  /// connections) gets either a future or an immediate rejection, never a
  /// wait. Returns std::nullopt -- and counts bcop_serve_rejected_total --
  /// when the queue already holds min(queue_capacity, max_depth) requests
  /// (max_depth < 0 means "queue_capacity alone"; max_depth == 0 sheds
  /// everything) or when shutdown began. Shape validation still throws
  /// std::invalid_argument, exactly like submit(): a malformed image is a
  /// caller bug, not load.
  std::optional<std::future<core::Predictor::Result>> try_submit(
      tensor::Tensor image, std::int64_t max_depth = -1) BCOP_EXCLUDES(mutex_);

  /// Requests currently waiting in the queue (excludes in-flight batches).
  /// The shedding watermark in net::HttpServer and /healthz read this.
  std::int64_t queue_depth() const BCOP_EXCLUDES(mutex_);

  ServerStats stats() const BCOP_EXCLUDES(mutex_);
  const BatcherConfig& config() const { return config_; }
  /// The served model (outlives the server per the constructor contract);
  /// front-ends read its expected input shape to size request payloads.
  const core::Predictor& predictor() const { return predictor_; }

 private:
  struct Request {
    tensor::Tensor image;  // [S, S, 3]
    std::promise<core::Predictor::Result> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Per-worker serving state, owned by the worker for its lifetime: the
  /// grow-only plan arena plus the coalesced input, logits and result
  /// buffers. Once the worker has seen a batch size, shipping that size
  /// again touches no allocator -- the whole inference is arena + reuse.
  struct WorkerState {
    xnor::Workspace ws;
    tensor::Tensor input;
    tensor::Tensor logits;
    std::vector<core::Predictor::Result> results;
  };

  /// The obs series this server records (global bcop_serve_* family plus,
  /// for Router replicas, the per-replica bcop_serve_replica<N>_* family).
  /// Defined in batcher.cpp; recording is lock-free either way.
  struct Metrics;

  void worker_loop() BCOP_EXCLUDES(mutex_);
  void run_batch(std::deque<Request>&& batch, WorkerState& state)
      BCOP_EXCLUDES(mutex_);

  /// Apply `fn` to the global metrics family and, when this server is a
  /// replica, to its per-replica family too (defined in batcher.cpp).
  template <typename Fn>
  void each_metrics(Fn&& fn) const;

  /// Flatten [1, S, S, C] to [S, S, C]; throws std::invalid_argument
  /// (counting the rejection) on any other rank.
  tensor::Tensor normalize_rank(tensor::Tensor image) const;
  /// Queue one admitted request and update stats/gauge; caller unlocks,
  /// bumps the submitted counter and notifies a worker.
  std::future<core::Predictor::Result> enqueue_locked(tensor::Tensor image)
      BCOP_REQUIRES(mutex_);
  /// Synchronous (workers == 0) path: classify on the calling thread.
  std::future<core::Predictor::Result> classify_inline(tensor::Tensor image)
      BCOP_EXCLUDES(mutex_);

  const core::Predictor& predictor_;
  const BatcherConfig config_;
  /// Per-replica metric family (bcop_serve_replica<N>_*); null unless
  /// config_.replica_id >= 0. The pointees are registry-owned and
  /// reference-stable; recording is relaxed atomics only.
  std::unique_ptr<Metrics> replica_metrics_;

  mutable util::Mutex mutex_;
  std::condition_variable cv_work_;   // queue became non-empty / stopping
  std::condition_variable cv_space_;  // queue has room again
  std::deque<Request> queue_ BCOP_GUARDED_BY(mutex_);
  bool stopping_ BCOP_GUARDED_BY(mutex_) = false;
  ServerStats stats_ BCOP_GUARDED_BY(mutex_);
  /// Locked-in [S, S, C] request shape: the folded network's expected
  /// input when inferable, otherwise the first submitted image's shape.
  tensor::Shape image_shape_ BCOP_GUARDED_BY(mutex_);

  // Declared last: destroyed first would deadlock, so ~BatchingServer sets
  // stopping_ and waits for the workers before members go away.
  parallel::ThreadPool pool_;
};

}  // namespace bcop::serve
