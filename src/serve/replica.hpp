// One serving replica: a BatchingServer generation with a lifecycle.
//
// Scale-out serving (docs/serving.md) splits the old monolithic server
// into dispatcher and replica roles. A Replica owns everything one copy
// of the engine needs -- its own folded network clone (fresh plan cache,
// via core::Predictor::replicate), its own BatchingServer (bounded queue,
// workspace-pooled workers, optionally pinned to a disjoint core set from
// parallel::partition_cpus) -- plus the lifecycle that makes hot-swapping
// a model version a zero-downtime operation:
//
//   kStarting --> kServing --> kDraining --> kStopped
//                    ^                           |
//                    +------- swap_model --------+
//
// drain() stops admitting (the Router observes the state change and
// routes around this replica), lets the in-flight queue empty -- every
// already-accepted future still resolves -- and joins the workers.
// swap_model() is drain() plus a restart on a freshly replicated model:
// requests keep flowing through the other replicas the whole time.
//
// Admission (try_submit) is tri-state so the Router can tell "this
// replica is full" (kShed: terminal, the 503 ledger already counted it)
// from "this replica is mid-swap" (kUnavailable: nothing counted, the
// image is untouched, try the next replica). The admission fast path
// never parks: a state check plus a mutex try_lock, both of which fail
// fast while a swap holds the replica.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>

#include "core/predictor.hpp"
#include "serve/batcher.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_annotations.hpp"

namespace bcop::serve {

enum class ReplicaState : int {
  kStarting = 0,  // constructed, server not yet accepting
  kServing = 1,   // admitting requests
  kDraining = 2,  // no new admissions; in-flight queue emptying
  kStopped = 3,   // drained and joined; swap_model() restarts
};

/// Lower-case state name for /healthz and logs ("serving", "draining", ...).
const char* to_string(ReplicaState state);

class Replica {
 public:
  /// How the Router classifies one admission attempt.
  enum class Admission {
    kAccepted,     // future returned; bcop_serve*_submitted_total counted
    kShed,         // over watermark/capacity; rejection counted -- terminal,
                   // the fleet is uniformly loaded so retrying elsewhere
                   // would just double-count the 503 ledger
    kUnavailable,  // not serving (draining/swap) or admission lock briefly
                   // contended; nothing counted, image untouched: retry on
                   // another replica
  };

  struct Admitted {
    Admission admission = Admission::kUnavailable;
    std::optional<std::future<core::Predictor::Result>> future;
  };

  /// Clone `prototype` (fresh plan cache; see Predictor::replicate) and
  /// start serving. `config.replica_id` is forced to `id` so this
  /// replica's traffic lands in the bcop_serve_replica<id>_* family.
  /// The prototype is only read during the call; it need not outlive the
  /// replica.
  Replica(const core::Predictor& prototype, BatcherConfig config, int id);
  /// Drains (every accepted future resolves) and joins.
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Non-blocking tri-state admission. Takes the image by reference and
  /// moves from it ONLY when the attempt reaches the inner server
  /// (kAccepted or kShed); on kUnavailable the image is intact so the
  /// Router can offer it to another replica. Shape validation still
  /// throws std::invalid_argument exactly like BatchingServer.
  Admitted try_submit(tensor::Tensor& image, std::int64_t max_depth)
      BCOP_EXCLUDES(mutex_, admin_mutex_);

  /// Stop admitting, let the queue empty (every already-accepted future
  /// resolves), join the workers: kServing -> kDraining -> kStopped.
  /// Blocks until drained. Idempotent; concurrent drain/swap calls
  /// serialize on an admin mutex.
  void drain() BCOP_EXCLUDES(mutex_, admin_mutex_);

  /// Zero-downtime model replacement: drain(), replicate `prototype`
  /// into a fresh plan-cache clone, start a new BatchingServer generation
  /// and resume serving. The Router keeps routing around this replica
  /// until the new generation reports kServing.
  void swap_model(const core::Predictor& prototype)
      BCOP_EXCLUDES(mutex_, admin_mutex_);

  ReplicaState state() const {
    return state_.load(std::memory_order_acquire);
  }
  int id() const { return id_; }
  /// BatchingServer generations started (1 after construction; +1 per
  /// swap_model). Lets tests assert a hot swap actually replaced the
  /// engine.
  std::int64_t generation() const BCOP_EXCLUDES(mutex_);
  /// Live queue depth; 0 while draining/stopped (nothing is admitted).
  std::int64_t queue_depth() const BCOP_EXCLUDES(mutex_);
  /// Stats accumulated across ALL generations: drained generations'
  /// totals plus the live server's. Survives swap_model.
  ServerStats stats() const BCOP_EXCLUDES(mutex_);
  const BatcherConfig& config() const { return config_; }

 private:
  /// Drain with the admin mutex already held (shared by drain/swap/dtor).
  void drain_admin() BCOP_REQUIRES(admin_mutex_) BCOP_EXCLUDES(mutex_);

  const int id_;
  const BatcherConfig config_;  // replica_id == id_; template for restarts
  std::atomic<ReplicaState> state_{ReplicaState::kStarting};

  /// Serializes lifecycle operations (drain/swap_model/destruction) so
  /// two administrators cannot interleave a teardown with a restart.
  /// Ordering: admin_mutex_ is taken before mutex_, never the reverse.
  util::Mutex admin_mutex_ BCOP_ACQUIRED_BEFORE(mutex_);  // bcop-lint: allow(R8): serializes the drain/swap lifecycle region, guards no data member
  /// Guards the live generation. Held only for pointer moves and stat
  /// reads -- the slow parts of a swap (queue drain, worker join, plan
  /// rebuild) happen outside it so admission and depth probes fail fast
  /// instead of parking.
  mutable util::Mutex mutex_;
  /// This replica's replicated clone; heap-held so a swap can reseat it
  /// while the BatchingServer reference contract ("the predictor must
  /// outlive the server") stays per-generation.
  std::unique_ptr<core::Predictor> model_ BCOP_GUARDED_BY(mutex_);
  std::unique_ptr<BatchingServer> server_ BCOP_GUARDED_BY(mutex_);
  /// Totals from generations already drained (see stats()).
  ServerStats drained_stats_ BCOP_GUARDED_BY(mutex_);
  std::int64_t generation_ BCOP_GUARDED_BY(mutex_) = 0;
};

}  // namespace bcop::serve
