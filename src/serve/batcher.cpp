#include "serve/batcher.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "parallel/affinity.hpp"
#include "util/check.hpp"

namespace bcop::serve {

using core::Predictor;
using tensor::Shape;
using tensor::Tensor;
using util::MutexLock;
using util::UniqueLock;

namespace {

std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// A future already carrying the rejection: the no-throw shutdown path of
/// submit(). The caller's get() observes std::runtime_error, but submit
/// itself never throws for load/lifecycle reasons (only for caller bugs
/// like a mis-shaped image).
std::future<Predictor::Result> rejected_future(const char* why) {
  std::promise<Predictor::Result> promise;
  auto future = promise.get_future();
  promise.set_exception(std::make_exception_ptr(std::runtime_error(why)));
  return future;
}

}  // namespace

/// Server telemetry (naming scheme in docs/observability.md). The global
/// bcop_serve_* family is registered once on first server construction; a
/// Router replica additionally owns a bcop_serve_replica<N>_* family.
/// Recording is lock-free either way -- a handful of relaxed atomics.
struct BatchingServer::Metrics {
  obs::Counter& submitted;
  obs::Counter& rejected;
  obs::Counter& batches;
  obs::Gauge& queue_depth;
  obs::LatencyHistogram& batch_size;
  obs::LatencyHistogram& coalesce_wait_ns;
  obs::LatencyHistogram& e2e_latency_ns;

  static Metrics make(const std::string& prefix) {
    auto& reg = obs::Registry::global();
    return Metrics{reg.counter(prefix + "_submitted_total"),
                   reg.counter(prefix + "_rejected_total"),
                   reg.counter(prefix + "_batches_total"),
                   reg.gauge(prefix + "_queue_depth"),
                   reg.histogram(prefix + "_batch_size"),
                   reg.histogram(prefix + "_coalesce_wait_ns"),
                   reg.histogram(prefix + "_e2e_latency_ns")};
  }

  static Metrics& global() {
    static Metrics m = make("bcop_serve");
    return m;
  }
};

template <typename Fn>
void BatchingServer::each_metrics(Fn&& fn) const {
  fn(Metrics::global());
  if (replica_metrics_) fn(*replica_metrics_);
}

BatchingServer::BatchingServer(const Predictor& predictor,
                               BatcherConfig config)
    : predictor_(predictor), config_(config), pool_(config.workers) {
  BCOP_CHECK(config_.max_batch >= 1, "max_batch %lld must be >= 1",
             static_cast<long long>(config_.max_batch));
  BCOP_CHECK(config_.queue_capacity >= 1, "queue_capacity %lld must be >= 1",
             static_cast<long long>(config_.queue_capacity));
  const Shape want = predictor_.network().expected_input_shape();
  if (want.rank() == 3) image_shape_ = want;
  Metrics::global();  // register before traffic so exports always list them
  if (config_.replica_id >= 0)
    replica_metrics_ = std::make_unique<Metrics>(Metrics::make(
        "bcop_serve_replica" + std::to_string(config_.replica_id)));
  for (unsigned i = 0; i < config_.workers; ++i)
    pool_.submit([this] { worker_loop(); });
}

BatchingServer::~BatchingServer() { shutdown(); }

void BatchingServer::shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  // Workers drain the queue before exiting, so every accepted request is
  // answered even when the server is shut down mid-burst. Idempotent: a
  // second call finds the pool already idle and returns immediately.
  pool_.wait_idle();
}

Tensor BatchingServer::normalize_rank(Tensor image) const {
  const Shape s = image.shape();
  if (s.rank() == 4 && s[0] == 1)
    return image.reshaped(Shape{s[1], s[2], s[3]});
  if (s.rank() != 3) {
    each_metrics([](Metrics& m) { m.rejected.add(1); });
    throw std::invalid_argument("BatchingServer::submit: image must be "
                                "[S, S, C] or [1, S, S, C], got " + s.str());
  }
  return image;
}

std::future<Predictor::Result> BatchingServer::enqueue_locked(Tensor image) {
  Request request;
  request.image = std::move(image);
  request.enqueued = std::chrono::steady_clock::now();
  auto future = request.promise.get_future();
  queue_.push_back(std::move(request));
  ++stats_.requests;
  // Gauge moves with the queue mutation it mirrors, inside the critical
  // section (recording is lock-free, so this costs one relaxed fetch_add
  // under the lock): a snapshot can no longer observe a pushed request
  // with an un-bumped depth, or the transiently negative depth the old
  // unlock-then-add ordering allowed when a worker drained first.
  each_metrics([](Metrics& m) { m.queue_depth.add(1); });
  return future;
}

std::future<Predictor::Result> BatchingServer::classify_inline(Tensor image) {
  {
    MutexLock lock(mutex_);
    ++stats_.requests;
    ++stats_.batches;
    stats_.max_batch_seen = std::max<std::int64_t>(stats_.max_batch_seen, 1);
  }
  each_metrics([](Metrics& m) {
    m.submitted.add(1);
    m.batches.add(1);
    m.batch_size.record(1);
    m.coalesce_wait_ns.record(0);
  });
  const auto t0 = std::chrono::steady_clock::now();
  std::promise<Predictor::Result> promise;
  auto future = promise.get_future();
  try {
    const Shape& s = image.shape();
    const Tensor batch = image.reshaped(Shape{1, s[0], s[1], s[2]});
    promise.set_value(predictor_.classify_batch(batch).front());
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
  const std::uint64_t ns = ns_since(t0);
  each_metrics([ns](Metrics& m) { m.e2e_latency_ns.record(ns); });
  return future;
}

std::future<Predictor::Result> BatchingServer::submit(Tensor image) {
  image = normalize_rank(std::move(image));
  const Shape s = image.shape();
  {
    UniqueLock lock(mutex_);
    if (image_shape_.rank() == 0) image_shape_ = s;
    if (s != image_shape_) {
      each_metrics([](Metrics& m) { m.rejected.add(1); });
      throw std::invalid_argument("BatchingServer::submit: image " + s.str() +
                                  " does not match the served model input " +
                                  image_shape_.str());
    }
    // Shutdown is a lifecycle event, not a caller bug: report it through
    // the future (no-throw admission, same discipline as try_submit's
    // nullopt) so a drain racing a client cannot unwind the client.
    if (stopping_) {
      each_metrics([](Metrics& m) { m.rejected.add(1); });
      return rejected_future("BatchingServer::submit: server is shutting down");
    }

    if (config_.workers != 0) {
      // Back-pressure wait, written as an explicit loop over guarded state
      // so the thread-safety analysis sees every access (predicate lambdas
      // are opaque to it; see util/thread_annotations.hpp).
      while (!stopping_ &&
             static_cast<std::int64_t>(queue_.size()) >= config_.queue_capacity)
        cv_space_.wait(lock.native());
      if (stopping_) {
        each_metrics([](Metrics& m) { m.rejected.add(1); });
        return rejected_future(
            "BatchingServer::submit: server is shutting down");
      }
      auto future = enqueue_locked(std::move(image));
      lock.unlock();
      each_metrics([](Metrics& m) { m.submitted.add(1); });
      cv_work_.notify_one();
      return future;
    }
  }
  // Synchronous degenerate mode: no queue, classify on the caller.
  return classify_inline(std::move(image));
}

std::optional<std::future<Predictor::Result>> BatchingServer::try_submit(
    Tensor image, std::int64_t max_depth) {
  image = normalize_rank(std::move(image));
  const Shape s = image.shape();
  {
    UniqueLock lock(mutex_);
    if (image_shape_.rank() == 0) image_shape_ = s;
    if (s != image_shape_) {
      each_metrics([](Metrics& m) { m.rejected.add(1); });
      throw std::invalid_argument(
          "BatchingServer::try_submit: image " + s.str() +
          " does not match the served model input " + image_shape_.str());
    }
    // Shutdown is load the caller cannot fix by retrying elsewhere, but a
    // network front-end must still answer 503 rather than crash: report it
    // as a rejection instead of throwing.
    if (stopping_) {
      each_metrics([](Metrics& m) { m.rejected.add(1); });
      return std::nullopt;
    }
    if (config_.workers != 0) {
      std::int64_t limit = config_.queue_capacity;
      if (max_depth >= 0) limit = std::min(limit, max_depth);
      if (static_cast<std::int64_t>(queue_.size()) >= limit) {
        each_metrics([](Metrics& m) { m.rejected.add(1); });
        return std::nullopt;
      }
      auto future = enqueue_locked(std::move(image));
      lock.unlock();
      each_metrics([](Metrics& m) { m.submitted.add(1); });
      cv_work_.notify_one();
      return future;
    }
  }
  return classify_inline(std::move(image));
}

std::int64_t BatchingServer::queue_depth() const {
  MutexLock lock(mutex_);
  return static_cast<std::int64_t>(queue_.size());
}

ServerStats BatchingServer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void BatchingServer::worker_loop() {
  // Replica workers pin to the core set the Router dealt this replica
  // (parallel::partition_cpus); a failed pin just leaves the worker
  // floating -- affinity is a performance hint, never a requirement.
  if (!config_.pin_cpus.empty()) parallel::pin_current_thread(config_.pin_cpus);
  WorkerState state;  // lives as long as the worker: arena grows, then holds
  for (;;) {
    std::deque<Request> batch;
    {
      UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_work_.wait(lock.native());
      if (queue_.empty()) {
        if (stopping_) return;
        continue;  // spurious wake or another worker took the work
      }
      if (!stopping_ && config_.max_latency.count() > 0 &&
          static_cast<std::int64_t>(queue_.size()) < config_.max_batch) {
        // Coalescing window: hold the batch open until it fills or the
        // oldest request has spent max_latency in the queue.
        const auto deadline = queue_.front().enqueued + config_.max_latency;
        while (!stopping_ &&
               static_cast<std::int64_t>(queue_.size()) < config_.max_batch) {
          if (cv_work_.wait_until(lock.native(), deadline) ==
              std::cv_status::timeout)
            break;
        }
      }
      if (queue_.empty()) continue;
      const auto take = std::min<std::int64_t>(
          static_cast<std::int64_t>(queue_.size()), config_.max_batch);
      for (std::int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      each_metrics([take](Metrics& m) { m.queue_depth.add(-take); });
    }
    cv_space_.notify_all();
    run_batch(std::move(batch), state);
  }
}

void BatchingServer::run_batch(std::deque<Request>&& batch,
                               WorkerState& state) {
  const auto b = static_cast<std::int64_t>(batch.size());
  // How long the oldest member waited for the batch to ship: the cost of
  // the coalescing window, bounded by config_.max_latency plus scheduling.
  const std::uint64_t wait_ns = ns_since(batch.front().enqueued);
  each_metrics([b, wait_ns](Metrics& m) {
    m.batches.add(1);
    m.batch_size.record(static_cast<std::uint64_t>(b));
    m.coalesce_wait_ns.record(wait_ns);
  });
  const Shape& s = batch.front().image.shape();
  const Shape batch_shape{b, s[0], s[1], s[2]};
  // Reuse the worker's coalescing buffer; it only reallocates when the
  // batch size changes (steady traffic at a fixed size is allocation-free).
  if (state.input.shape() != batch_shape) state.input = Tensor(batch_shape);
  const std::int64_t stride = s.numel();
  for (std::int64_t i = 0; i < b; ++i)
    std::memcpy(state.input.data() + i * stride,
                batch[static_cast<std::size_t>(i)].image.data(),
                static_cast<std::size_t>(stride) * sizeof(float));
  {
    // Record the batch before fulfilling any promise: a client whose
    // future.get() returned must observe its own batch in stats().
    MutexLock lock(mutex_);
    ++stats_.batches;
    stats_.max_batch_seen = std::max(stats_.max_batch_seen, b);
    if (b > 1) stats_.coalesced += b;
  }
  try {
    predictor_.classify_batch(state.input, state.ws, state.logits,
                              state.results);
    for (std::int64_t i = 0; i < b; ++i) {
      Request& request = batch[static_cast<std::size_t>(i)];
      request.promise.set_value(state.results[static_cast<std::size_t>(i)]);
      const std::uint64_t e2e_ns = ns_since(request.enqueued);
      each_metrics([e2e_ns](Metrics& m) { m.e2e_latency_ns.record(e2e_ns); });
    }
  } catch (...) {
    for (auto& request : batch)
      request.promise.set_exception(std::current_exception());
  }
}

}  // namespace bcop::serve
