#include "serve/router.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "parallel/affinity.hpp"
#include "util/check.hpp"

namespace bcop::serve {

using core::Predictor;

/// Dispatcher telemetry (naming scheme in docs/observability.md).
/// `rejected` is the SAME bcop_serve_rejected_total series the servers
/// record (the registry find-or-creates by name), bumped here only for
/// the no-serving-replica case so the 503 ledger counts every shed
/// exactly once, wherever it happened.
struct Router::Metrics {
  obs::Counter& routed;      // placements that returned a future
  obs::Counter& retries;     // kUnavailable hops during placement scans
  obs::Counter& unrouted;    // requests no serving replica could take
  obs::Counter& rejected;    // shared bcop_serve_rejected_total series

  static Metrics& get() {
    auto& reg = obs::Registry::global();
    static Metrics m{reg.counter("bcop_serve_router_routed_total"),
                     reg.counter("bcop_serve_router_retries_total"),
                     reg.counter("bcop_serve_router_unrouted_total"),
                     reg.counter("bcop_serve_rejected_total")};
    return m;
  }
};

Router::Router(const Predictor& prototype, RouterConfig config)
    : prototype_(prototype), config_(config) {
  BCOP_CHECK(config_.replicas >= 1 && config_.replicas <= 64,
             "Router: replicas %d must be in 1..64", config_.replicas);
  Metrics::get();  // register before traffic so exports always list them
  const auto n = static_cast<unsigned>(config_.replicas);
  replicas_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    BatcherConfig bc = config_.batcher;
    bc.pin_cpus = config_.pin_workers
                      ? parallel::partition_cpus(i, n)
                      : std::vector<int>{};
    replicas_.push_back(
        std::make_unique<Replica>(prototype_, bc, static_cast<int>(i)));
  }
}

std::optional<std::future<Predictor::Result>> Router::try_submit(
    tensor::Tensor image, std::int64_t max_depth) {
  Metrics& metrics = Metrics::get();
  const std::size_t n = replicas_.size();
  // Rotating origin: the depth scan below keeps the FIRST replica it sees
  // at the minimum depth, so rotating where the scan starts turns every
  // tie into round-robin -- an idle fleet spreads instead of pile-driving
  // replica 0.
  const std::uint64_t origin =
      scan_origin_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t tried = 0;  // replicas answered kUnavailable this request
  for (;;) {
    std::size_t best = n;
    std::int64_t best_depth = std::numeric_limits<std::int64_t>::max();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (origin + k) % n;
      if (tried & (std::uint64_t{1} << i)) continue;
      if (replicas_[i]->state() != ReplicaState::kServing) continue;
      const std::int64_t depth = replicas_[i]->queue_depth();
      if (depth < best_depth) {
        best = i;
        best_depth = depth;
      }
    }
    if (best == n) break;  // every replica is mid-swap, draining or tried
    Replica::Admitted result = replicas_[best]->try_submit(image, max_depth);
    switch (result.admission) {
      case Replica::Admission::kAccepted:
        metrics.routed.add(1);
        return std::move(result.future);
      case Replica::Admission::kShed:
        // Terminal by design (rule 3 in the header comment): the replica's
        // server already counted the rejection.
        return std::nullopt;
      case Replica::Admission::kUnavailable:
        tried |= std::uint64_t{1} << best;
        metrics.retries.add(1);
        continue;
    }
  }
  // No serving replica could even be offered the request (fleet-wide
  // swap/drain). Nothing downstream counted it, so the Router keeps the
  // 503 <-> rejected ledger intact here.
  metrics.unrouted.add(1);
  metrics.rejected.add(1);
  return std::nullopt;
}

std::int64_t Router::queue_depth() const {
  std::int64_t total = 0;
  for (const auto& r : replicas_) total += r->queue_depth();
  return total;
}

std::int64_t Router::queue_capacity() const {
  return static_cast<std::int64_t>(replicas_.size()) *
         config_.batcher.queue_capacity;
}

ServerStats Router::stats() const {
  ServerStats total;
  for (const auto& r : replicas_) {
    const ServerStats s = r->stats();
    total.requests += s.requests;
    total.batches += s.batches;
    total.coalesced += s.coalesced;
    total.max_batch_seen = std::max(total.max_batch_seen, s.max_batch_seen);
  }
  return total;
}

}  // namespace bcop::serve
