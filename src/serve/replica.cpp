#include "serve/replica.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace bcop::serve {

using core::Predictor;
using util::MutexLock;

const char* to_string(ReplicaState state) {
  switch (state) {
    case ReplicaState::kStarting: return "starting";
    case ReplicaState::kServing: return "serving";
    case ReplicaState::kDraining: return "draining";
    case ReplicaState::kStopped: return "stopped";
  }
  return "unknown";
}

Replica::Replica(const Predictor& prototype, BatcherConfig config, int id)
    : id_(id), config_([&] {
        config.replica_id = id;
        return config;
      }()) {
  BCOP_CHECK(id >= 0, "Replica id %d must be >= 0", id);
  {
    MutexLock lock(mutex_);
    model_ = std::make_unique<Predictor>(prototype.replicate());
    server_ = std::make_unique<BatchingServer>(*model_, config_);
    generation_ = 1;
  }
  // Publish only after the generation is fully wired: a Router scanning
  // states never observes kServing with a null server.
  state_.store(ReplicaState::kServing, std::memory_order_release);
}

Replica::~Replica() {
  MutexLock admin(admin_mutex_);
  drain_admin();
}

// Manual try_lock with an exception-safe unlock on the shape-validation
// throw path; Clang's thread-safety analysis cannot model the catch-edge
// release, so this one function opts out. Discipline: server_ and the
// relaxed state re-check are touched only between a successful try_lock()
// and the matching unlock().
Replica::Admitted Replica::try_submit(tensor::Tensor& image,
                                      std::int64_t max_depth)
    BCOP_NO_THREAD_SAFETY_ANALYSIS {
  Admitted out;
  // Fast reject without touching the lock: a draining replica answers
  // kUnavailable from one atomic load, so the Router's retry scan costs
  // nothing on the replicas that are mid-swap.
  if (state_.load(std::memory_order_acquire) != ReplicaState::kServing)
    return out;
  // A held lock means a swap is moving the generation out (or another
  // admission is in its microseconds-long critical section); either way
  // the caller must not park -- report unavailable and let the Router
  // place the request elsewhere.
  if (!mutex_.try_lock()) return out;
  if (!server_ ||
      state_.load(std::memory_order_relaxed) != ReplicaState::kServing) {
    mutex_.unlock();
    return out;
  }
  std::optional<std::future<Predictor::Result>> future;
  try {
    future = server_->try_submit(std::move(image), max_depth);
  } catch (...) {
    mutex_.unlock();
    throw;  // caller bug (mis-shaped image); propagate like BatchingServer
  }
  mutex_.unlock();
  if (!future) {
    out.admission = Admission::kShed;  // rejection counted by the server
    return out;
  }
  out.admission = Admission::kAccepted;
  out.future = std::move(future);
  return out;
}

void Replica::drain() {
  MutexLock admin(admin_mutex_);
  drain_admin();
}

void Replica::drain_admin() {
  // Stop admissions before waiting on the queue: try_submit's state check
  // turns away new work while the workers finish what was accepted.
  ReplicaState expected = ReplicaState::kServing;
  if (!state_.compare_exchange_strong(expected, ReplicaState::kDraining,
                                      std::memory_order_acq_rel)) {
    if (expected == ReplicaState::kStopped) return;  // idempotent
  }
  std::unique_ptr<BatchingServer> dying;
  {
    MutexLock lock(mutex_);
    dying = std::move(server_);
  }
  if (dying) {
    // The slow part -- queue drain and worker join -- runs outside
    // mutex_, so queue_depth()/stats() probes keep answering while the
    // replica empties. Every future accepted before the state flip
    // resolves here.
    dying->shutdown();
    const ServerStats finished = dying->stats();
    MutexLock lock(mutex_);
    drained_stats_.requests += finished.requests;
    drained_stats_.batches += finished.batches;
    drained_stats_.coalesced += finished.coalesced;
    drained_stats_.max_batch_seen =
        std::max(drained_stats_.max_batch_seen, finished.max_batch_seen);
  }
  state_.store(ReplicaState::kStopped, std::memory_order_release);
}

void Replica::swap_model(const Predictor& prototype) {
  MutexLock admin(admin_mutex_);
  drain_admin();
  {
    MutexLock lock(mutex_);
    // The old generation is fully gone (drain_admin joined it), so
    // reseating the model the servers reference is safe.
    model_ = std::make_unique<Predictor>(prototype.replicate());
    server_ = std::make_unique<BatchingServer>(*model_, config_);
    ++generation_;
  }
  state_.store(ReplicaState::kServing, std::memory_order_release);
}

std::int64_t Replica::generation() const {
  MutexLock lock(mutex_);
  return generation_;
}

std::int64_t Replica::queue_depth() const {
  MutexLock lock(mutex_);
  return server_ ? server_->queue_depth() : 0;
}

ServerStats Replica::stats() const {
  MutexLock lock(mutex_);
  ServerStats total = drained_stats_;
  if (server_) {
    const ServerStats live = server_->stats();
    total.requests += live.requests;
    total.batches += live.batches;
    total.coalesced += live.coalesced;
    total.max_batch_seen = std::max(total.max_batch_seen, live.max_batch_seen);
  }
  return total;
}

}  // namespace bcop::serve
