// Confidence-tiered serving over residual-binarized models.
//
// A ReBNet-style network trained at M = 3 (docs/residual-binarization.md)
// can serve at any truncated depth: M = 1 costs one third of the GEMM
// passes but is less accurate on hard inputs. The TieredRouter exploits
// the fact that most gate traffic is EASY -- the M = 1 classifier answers
// with a wide softmax margin -- and only pays for depth where it matters:
//
//   try_submit --> low tier (M = 1 Router fleet) --> margin >= threshold?
//                        |                               |yes: answer
//                        |no (torn between two classes)  |
//                        +--> high tier (full-M fleet) --+--> answer
//
// Both tiers are ordinary serve::Router fleets built from replicate()d
// clones of ONE prototype -- the low tier's clones carry
// Predictor::set_serve_levels(low_levels), the high tier's the full
// trained depth -- so a hot-swap of the prototype upgrades both tiers
// with the existing per-replica drain/swap machinery.
//
// Degradation, not failure: when the high tier sheds an escalation (its
// queues are at the watermark), the request is answered with the already
// computed low-tier result instead of a 503. Only a low-tier admission
// shed is client-visible.
//
// Telemetry (docs/observability.md naming):
//   bcop_serve_tiered_submitted_total       accepted into the low tier
//   bcop_serve_tiered_resolved_low_total    answered by M = 1 alone
//   bcop_serve_tiered_escalated_total       re-served at the high depth
//   bcop_serve_tiered_escalation_shed_total escalations the high tier
//                                           shed (answered low instead)
// Ledger note: a shed escalation still bumps bcop_serve_rejected_total
// inside the high-tier replica even though the client receives a 200
// (the low answer). Fleet reconciliation for a tiered deployment is
// therefore: rejected_total == client 503s + escalation_shed_total.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>

#include "core/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/router.hpp"
#include "tensor/tensor.hpp"

namespace bcop::serve {

struct TieredConfig {
  /// Fleet shape of the M = 1 fast tier (replica count, batcher, pinning).
  RouterConfig low;
  /// Fleet shape of the escalation tier. Typically fewer replicas: only
  /// the low-margin fraction of traffic lands here.
  RouterConfig high;
  /// Escalate when the low-tier softmax margin (top1 - top2, in [0, 1])
  /// is BELOW this. 0 never escalates; anything > 1 always escalates.
  float margin_threshold = 0.25f;
  /// Residual level cap for the fast tier (Predictor::set_serve_levels).
  std::int64_t low_levels = 1;
  /// Level cap for the escalation tier; 0 = every trained level.
  std::int64_t high_levels = 0;
  /// Watermark handed to the high tier's try_submit during escalation
  /// (-1 = queue capacity alone; 0 sheds every escalation, which makes
  /// the degrade-to-low path deterministic in tests).
  std::int64_t high_max_depth = -1;
  /// Worker tasks that chain low-tier completions into escalations. 0 =
  /// resolve inline on the submitting thread (deterministic with
  /// synchronous tiers; blocks the caller otherwise).
  unsigned escalation_workers = 1;
};

class TieredRouter {
 public:
  /// Clones `prototype` once per tier (the clones, and each tier's
  /// per-replica clones of them, carry the tier's level cap). The
  /// prototype is only read during construction and hot swaps.
  TieredRouter(const core::Predictor& prototype, TieredConfig config);
  /// Waits for in-flight escalation chains, then tears the tiers down
  /// (each Router drains its replicas; accepted futures resolve).
  ~TieredRouter();

  TieredRouter(const TieredRouter&) = delete;
  TieredRouter& operator=(const TieredRouter&) = delete;

  /// Non-blocking admission into the low tier. nullopt = low-tier shed
  /// (client 503; the rejection ledger was kept by the low fleet). An
  /// accepted future resolves with either the low result (wide margin, or
  /// high tier shed the escalation) or the high-depth result. `max_depth`
  /// is the low tier's per-replica watermark.
  std::optional<std::future<core::Predictor::Result>> try_submit(
      tensor::Tensor image, std::int64_t max_depth = -1);

  Router& low() { return *low_; }
  Router& high() { return *high_; }
  const Router& low() const { return *low_; }
  const Router& high() const { return *high_; }
  const TieredConfig& config() const { return config_; }

 private:
  struct Metrics;
  /// One in-flight request's state, shared between the submit call and
  /// the escalation task (std::function requires copyable callables, so
  /// the move-only promise/future live behind a shared_ptr).
  struct Escalation;

  const TieredConfig config_;
  /// Tier prototypes: replicate()d from the caller's model with the
  /// tier's serve-level cap applied; each Router replicates them again
  /// per replica. Declared before the Routers, which hold references.
  core::Predictor low_proto_;
  core::Predictor high_proto_;
  std::unique_ptr<Router> low_;
  std::unique_ptr<Router> high_;
  /// Chains low-tier futures into margin checks and escalations (repo
  /// rule R2: all concurrency via parallel::ThreadPool). Declared last:
  /// destroyed first, after ~TieredRouter has waited it idle.
  parallel::ThreadPool escalators_;
};

}  // namespace bcop::serve
