#include "serve/tiered.hpp"

#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace bcop::serve {

using core::Predictor;

/// Tier telemetry (naming scheme in docs/observability.md; the ledger
/// interaction with bcop_serve_rejected_total is documented in
/// tiered.hpp).
struct TieredRouter::Metrics {
  obs::Counter& submitted;        // accepted into the low tier
  obs::Counter& resolved_low;     // answered by the fast tier alone
  obs::Counter& escalated;        // re-served at the high depth
  obs::Counter& escalation_shed;  // high tier full; answered low instead

  static Metrics& get() {
    auto& reg = obs::Registry::global();
    static Metrics m{
        reg.counter("bcop_serve_tiered_submitted_total"),
        reg.counter("bcop_serve_tiered_resolved_low_total"),
        reg.counter("bcop_serve_tiered_escalated_total"),
        reg.counter("bcop_serve_tiered_escalation_shed_total")};
    return m;
  }
};

struct TieredRouter::Escalation {
  std::future<Predictor::Result> low;
  tensor::Tensor image;  // retained copy, re-submitted on escalation
  std::promise<Predictor::Result> promise;
};

TieredRouter::TieredRouter(const Predictor& prototype, TieredConfig config)
    : config_(config),
      low_proto_(prototype.replicate()),
      high_proto_(prototype.replicate()),
      escalators_(config.escalation_workers) {
  Metrics::get();  // register before traffic so exports always list them
  low_proto_.set_serve_levels(config_.low_levels);
  high_proto_.set_serve_levels(config_.high_levels);
  low_ = std::make_unique<Router>(low_proto_, config_.low);
  high_ = std::make_unique<Router>(high_proto_, config_.high);
}

TieredRouter::~TieredRouter() {
  // Every escalation task holds a future into the tiers, so the tiers
  // must stay alive until the chains resolve. The pool itself is a
  // member (destroyed first), but waiting here makes the ordering
  // explicit instead of relying on ~ThreadPool draining its queue.
  escalators_.wait_idle();
}

std::optional<std::future<Predictor::Result>> TieredRouter::try_submit(
    tensor::Tensor image, std::int64_t max_depth) {
  Metrics& metrics = Metrics::get();
  auto job = std::make_shared<Escalation>();
  job->image = image;  // deep copy: the low tier consumes the original
  std::optional<std::future<Predictor::Result>> low_future =
      low_->try_submit(std::move(image), max_depth);
  if (!low_future.has_value()) {
    // Low-tier admission shed: the client-visible 503 path. The shedding
    // replica (or the low Router) already counted the rejection.
    return std::nullopt;
  }
  metrics.submitted.add(1);
  job->low = std::move(*low_future);
  std::future<Predictor::Result> result = job->promise.get_future();
  // With escalation_workers == 0 the pool runs this inline (ThreadPool's
  // zero-worker contract), which is the deterministic test mode.
  escalators_.submit([this, job] {
    Metrics& m = Metrics::get();
    try {
      const Predictor::Result low_result = job->low.get();
      if (low_result.margin >= config_.margin_threshold) {
        m.resolved_low.add(1);
        job->promise.set_value(low_result);
        return;
      }
      m.escalated.add(1);
      auto high_future =
          high_->try_submit(std::move(job->image), config_.high_max_depth);
      if (!high_future.has_value()) {
        // Degrade, don't fail: the low answer is already in hand, so a
        // saturated high tier costs accuracy, not availability.
        m.escalation_shed.add(1);
        job->promise.set_value(low_result);
        return;
      }
      job->promise.set_value(high_future->get());
    } catch (...) {
      job->promise.set_exception(std::current_exception());
    }
  });
  return result;
}

}  // namespace bcop::serve
