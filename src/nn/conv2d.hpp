// Full-precision 2D convolution (valid padding, stride 1).
//
// Used for the FP32 CNV baseline that the paper compares Grad-CAM attention
// against (Figs. 3-9, column "FP32") and as a numeric reference in tests.
#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace bcop::nn {

class Conv2d final : public Layer {
 public:
  Conv2d() = default;
  Conv2d(std::int64_t k, std::int64_t in_ch, std::int64_t out_ch,
         util::Rng& rng);

  const char* type() const override { return "Conv2d"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

  std::int64_t kernel() const { return k_; }
  std::int64_t in_channels() const { return in_ch_; }
  std::int64_t out_channels() const { return out_ch_; }

 private:
  std::int64_t k_ = 0, in_ch_ = 0, out_ch_ = 0;
  Param weight_;  // [K*K*Ci, Co]
  Param bias_;    // [Co]

  tensor::Tensor patches_;
  tensor::Shape in_shape_;
};

}  // namespace bcop::nn
