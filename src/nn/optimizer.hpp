// Optimizers: Adam (used by all experiments, as in the BNN papers) and SGD
// with momentum (baseline / ablations).
//
// An optimizer binds to a model's parameter list at construction; step()
// consumes the gradients accumulated by backward() and zeroes them. The
// model's post_update() hook runs after every step so binary layers can
// clip their latent weights.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.hpp"

namespace bcop::nn {

class Optimizer {
 public:
  explicit Optimizer(Sequential& model) : model_(&model), params_(model.params()) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then zero them.
  void step();

  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

 protected:
  virtual void apply() = 0;

  Sequential* model_;
  std::vector<Param*> params_;
  float lr_ = 1e-3f;
};

class Sgd final : public Optimizer {
 public:
  Sgd(Sequential& model, float lr, float momentum = 0.9f);

 private:
  void apply() override;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(Sequential& model, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);

 private:
  void apply() override;
  float beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace bcop::nn
