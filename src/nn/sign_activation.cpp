#include "nn/sign_activation.hpp"

#include <cmath>
#include <stdexcept>

namespace bcop::nn {

using tensor::Tensor;

Tensor SignActivation::forward(const Tensor& input, bool training) {
  if (training) input_ = input;
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i)
    out[i] = input[i] >= 0.f ? 1.f : -1.f;
  return out;
}

Tensor SignActivation::backward(const Tensor& grad_output) {
  if (input_.empty())
    throw std::logic_error("SignActivation::backward without training forward");
  if (grad_output.shape() != input_.shape())
    throw std::invalid_argument("SignActivation::backward: shape mismatch");
  Tensor dx(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i)
    dx[i] = std::abs(input_[i]) <= 1.f ? grad_output[i] : 0.f;
  return dx;
}

}  // namespace bcop::nn
