// Sequential model container: an ordered pipeline of layers.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace bcop::nn {

class Sequential {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add(LayerPtr layer);

  template <typename T, typename... As>
  T& emplace(As&&... args) {
    auto l = std::make_unique<T>(std::forward<As>(args)...);
    T& ref = *l;
    add(std::move(l));
    return ref;
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Run the full pipeline.
  tensor::Tensor forward(const tensor::Tensor& input, bool training);

  /// Run the pipeline and also record the output of every layer
  /// (activations[i] is the output of layer i). Used by Grad-CAM.
  tensor::Tensor forward_collect(const tensor::Tensor& input, bool training,
                                 std::vector<tensor::Tensor>& activations);

  /// Backpropagate dLoss/dLogits through every layer; returns dLoss/dInput.
  tensor::Tensor backward(const tensor::Tensor& grad_logits);

  /// Like backward() but records the gradient with respect to the *output*
  /// of each layer (output_grads[i] = dLoss/d(out of layer i)). Entry
  /// `size()-1` equals grad_logits. Used by Grad-CAM.
  tensor::Tensor backward_collect(const tensor::Tensor& grad_logits,
                                  std::vector<tensor::Tensor>& output_grads);

  /// All trainable parameters in layer order.
  std::vector<Param*> params();

  /// Invoke every layer's post-update hook (optimizer calls this).
  void post_update();

  /// Total parameter count and the model size in bits when every weight is
  /// binarized (BN parameters counted at 32-bit). Used for footprint tables.
  std::int64_t parameter_count() const;

  void save(const std::string& path) const;
  static Sequential load_file(const std::string& path);

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

}  // namespace bcop::nn
