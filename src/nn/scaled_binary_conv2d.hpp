// XNOR-Net-style binary convolution with per-output-channel scaling.
//
// Rastegari et al. [12] approximate W ~= alpha * sign(W) with
// alpha = mean(|W|) per output channel, recovering some of the information
// capacity binarization destroys -- at the cost of extra multipliers at
// deployment time. The paper (Sec. II-B) argues that for the low scene
// complexity of mask classification the plain BNN form [11] suffices; this
// layer exists so that claim can be tested head-to-head
// (bench_ablation_scaling).
//
// Gradient treatment follows the usual XNOR-Net reimplementations: the
// scaled binarized weight receives the loss gradient, which flows to the
// latents through d(alpha*sign(w))/dw ~= 1/n + alpha * 1{|w|<=1}.
#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace bcop::nn {

class ScaledBinaryConv2d final : public Layer {
 public:
  ScaledBinaryConv2d() = default;
  ScaledBinaryConv2d(std::int64_t k, std::int64_t in_ch, std::int64_t out_ch,
                     util::Rng& rng);

  const char* type() const override { return "ScaledBinaryConv2d"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_}; }
  void post_update() override;
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

  std::int64_t kernel() const { return k_; }
  std::int64_t in_channels() const { return in_ch_; }
  std::int64_t out_channels() const { return out_ch_; }

  /// Current per-output-channel scaling factors alpha = mean(|latent|).
  std::vector<float> scaling_factors() const;

 private:
  std::int64_t k_ = 0, in_ch_ = 0, out_ch_ = 0;
  Param weight_;  // latent, [K*K*Ci, Co]

  tensor::Tensor patches_;
  tensor::Tensor wb_;            // sign(latent)
  std::vector<float> alpha_;     // cached scaling of the last forward
  tensor::Shape in_shape_;
};

}  // namespace bcop::nn
