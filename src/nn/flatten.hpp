// Flatten [N, H, W, C] to [N, H*W*C] between the conv stack and the FCs.
#pragma once

#include "nn/layer.hpp"

namespace bcop::nn {

class Flatten final : public Layer {
 public:
  Flatten() = default;

  const char* type() const override { return "Flatten"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void save(util::BinaryWriter& w) const override { w.write_tag("FLAT"); }
  void load(util::BinaryReader& r) override { r.expect_tag("FLAT"); }

 private:
  tensor::Shape in_shape_;
};

}  // namespace bcop::nn
