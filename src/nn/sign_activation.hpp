// Deterministic binarization activation with straight-through estimator.
//
// Forward implements Eq. (1) of the paper: sign(x) with sign(0) = +1 so the
// hardware mapping (-1 -> bit 0, +1 -> bit 1, threshold compare uses >=) is
// consistent everywhere. Backward uses the clipped straight-through
// estimator of Hubara et al. [11]: dL/dx = dL/dy * 1{|x| <= 1}, which stops
// gradients once the pre-activation saturates.
#pragma once

#include "nn/layer.hpp"

namespace bcop::nn {

class SignActivation final : public Layer {
 public:
  SignActivation() = default;

  const char* type() const override { return "SignActivation"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void save(util::BinaryWriter& w) const override { w.write_tag("SIGN"); }
  void load(util::BinaryReader& r) override { r.expect_tag("SIGN"); }

 private:
  tensor::Tensor input_;  // cached for the STE window
};

}  // namespace bcop::nn
