#include "nn/flatten.hpp"

#include <stdexcept>

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Flatten::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() < 2) throw std::invalid_argument("Flatten: rank >= 2 required");
  if (training) in_shape_ = s;
  return input.reshaped(Shape{s[0], input.numel() / s[0]});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (in_shape_.rank() == 0)
    throw std::logic_error("Flatten::backward without training forward");
  return grad_output.reshaped(in_shape_);
}

}  // namespace bcop::nn
