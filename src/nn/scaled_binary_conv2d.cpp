#include "nn/scaled_binary_conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2row.hpp"

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

ScaledBinaryConv2d::ScaledBinaryConv2d(std::int64_t k, std::int64_t in_ch,
                                       std::int64_t out_ch, util::Rng& rng)
    : k_(k), in_ch_(in_ch), out_ch_(out_ch) {
  if (k <= 0 || in_ch <= 0 || out_ch <= 0)
    throw std::invalid_argument("ScaledBinaryConv2d: non-positive dimension");
  weight_.value = Tensor(Shape{k * k * in_ch, out_ch});
  glorot_uniform(weight_.value, k * k * in_ch, out_ch, rng);
}

std::vector<float> ScaledBinaryConv2d::scaling_factors() const {
  const std::int64_t fan = k_ * k_ * in_ch_;
  std::vector<float> alpha(static_cast<std::size_t>(out_ch_), 0.f);
  for (std::int64_t i = 0; i < fan; ++i)
    for (std::int64_t o = 0; o < out_ch_; ++o)
      alpha[static_cast<std::size_t>(o)] += std::abs(weight_.value.at2(i, o));
  for (auto& a : alpha) a /= static_cast<float>(fan);
  return alpha;
}

Tensor ScaledBinaryConv2d::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 4 || s[3] != in_ch_)
    throw std::invalid_argument("ScaledBinaryConv2d: bad input shape " + s.str());
  const std::int64_t N = s[0];
  const std::int64_t Ho = tensor::conv_out_dim(s[1], k_);
  const std::int64_t Wo = tensor::conv_out_dim(s[2], k_);

  Tensor patches;
  tensor::im2row(input, k_, patches);
  wb_ = Tensor(weight_.value.shape());
  for (std::int64_t i = 0; i < wb_.numel(); ++i)
    wb_[i] = weight_.value[i] >= 0.f ? 1.f : -1.f;
  alpha_ = scaling_factors();

  Tensor out_flat(Shape{patches.shape()[0], out_ch_});
  tensor::gemm_nn(patches.shape()[0], out_ch_, patches.shape()[1],
                  patches.data(), wb_.data(), out_flat.data());
  for (std::int64_t r = 0; r < patches.shape()[0]; ++r)
    for (std::int64_t o = 0; o < out_ch_; ++o)
      out_flat.at2(r, o) *= alpha_[static_cast<std::size_t>(o)];

  if (training) {
    patches_ = std::move(patches);
    in_shape_ = s;
  }
  return out_flat.reshaped(Shape{N, Ho, Wo, out_ch_});
}

Tensor ScaledBinaryConv2d::backward(const Tensor& grad_output) {
  if (patches_.empty())
    throw std::logic_error("ScaledBinaryConv2d::backward without training forward");
  const std::int64_t M = patches_.shape()[0];
  const std::int64_t P = patches_.shape()[1];
  if (grad_output.numel() != M * out_ch_)
    throw std::invalid_argument("ScaledBinaryConv2d::backward: shape mismatch");

  // Gradient wrt the scaled binarized weight W~ = alpha * sign(W):
  // dW~ = patches^T x dY.
  weight_.ensure_grad();
  Tensor dwt(Shape{P, out_ch_});
  tensor::gemm_tn(P, out_ch_, M, patches_.data(), grad_output.data(),
                  dwt.data());
  const float inv_fan = 1.f / static_cast<float>(P);
  for (std::int64_t i = 0; i < P; ++i)
    for (std::int64_t o = 0; o < out_ch_; ++o) {
      const float w = weight_.value.at2(i, o);
      const float ste = std::abs(w) <= 1.f
                            ? alpha_[static_cast<std::size_t>(o)]
                            : 0.f;
      weight_.grad.at2(i, o) += dwt.at2(i, o) * (inv_fan + ste);
    }

  // dPatches = (dY * alpha) x Wb^T.
  Tensor dy_scaled(grad_output.shape());
  for (std::int64_t r = 0; r < M; ++r)
    for (std::int64_t o = 0; o < out_ch_; ++o)
      dy_scaled[r * out_ch_ + o] = grad_output[r * out_ch_ + o] *
                                   alpha_[static_cast<std::size_t>(o)];
  Tensor dpatches(Shape{M, P});
  tensor::gemm_nt(M, P, out_ch_, dy_scaled.data(), wb_.data(),
                  dpatches.data());
  Tensor dx(in_shape_);
  tensor::row2im(dpatches, k_, dx);
  return dx;
}

void ScaledBinaryConv2d::post_update() {
  float* w = weight_.value.data();
  for (std::int64_t i = 0; i < weight_.value.numel(); ++i)
    w[i] = std::clamp(w[i], -1.f, 1.f);
}

void ScaledBinaryConv2d::save(util::BinaryWriter& w) const {
  w.write_tag("SBCV");
  w.write_u64(static_cast<std::uint64_t>(k_));
  w.write_u64(static_cast<std::uint64_t>(in_ch_));
  w.write_u64(static_cast<std::uint64_t>(out_ch_));
  w.write_f32_array(weight_.value.storage());
}

void ScaledBinaryConv2d::load(util::BinaryReader& r) {
  r.expect_tag("SBCV");
  k_ = static_cast<std::int64_t>(r.read_u64());
  in_ch_ = static_cast<std::int64_t>(r.read_u64());
  out_ch_ = static_cast<std::int64_t>(r.read_u64());
  weight_.value = Tensor(Shape{k_ * k_ * in_ch_, out_ch_});
  weight_.value.storage() = r.read_f32_array();
  if (weight_.value.storage().size() !=
      static_cast<std::size_t>(k_ * k_ * in_ch_ * out_ch_))
    throw std::runtime_error("ScaledBinaryConv2d::load: weight size mismatch");
}

}  // namespace bcop::nn
