#include "nn/init.hpp"

#include <cmath>

namespace bcop::nn {

void glorot_uniform(tensor::Tensor& w, std::int64_t fan_in,
                    std::int64_t fan_out, util::Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::int64_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-a, a));
}

}  // namespace bcop::nn
