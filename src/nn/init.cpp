#include "nn/init.hpp"

#include <cmath>

#include "util/check.hpp"

namespace bcop::nn {

void glorot_uniform(tensor::Tensor& w, std::int64_t fan_in,
                    std::int64_t fan_out, util::Rng& rng) {
  BCOP_CHECK(fan_in > 0 && fan_out > 0, "non-positive fan (%lld, %lld)",
             static_cast<long long>(fan_in), static_cast<long long>(fan_out));
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::int64_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-a, a));
}

}  // namespace bcop::nn
