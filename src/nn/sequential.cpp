#include "nn/sequential.hpp"

#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "nn/residual_sign.hpp"
#include "nn/scaled_binary_conv2d.hpp"
#include "nn/sign_activation.hpp"

namespace bcop::nn {

using tensor::Tensor;

LayerPtr make_layer(const std::string& type) {
  if (type == "BatchNorm") return std::make_unique<BatchNorm>();
  if (type == "BinaryConv2d") return std::make_unique<BinaryConv2d>();
  if (type == "BinaryDense") return std::make_unique<BinaryDense>();
  if (type == "Conv2d") return std::make_unique<Conv2d>();
  if (type == "Dense") return std::make_unique<Dense>();
  if (type == "Flatten") return std::make_unique<Flatten>();
  if (type == "MaxPool2") return std::make_unique<MaxPool2>();
  if (type == "ReLU") return std::make_unique<ReLU>();
  if (type == "ResidualSign") return std::make_unique<ResidualSign>();
  if (type == "ScaledBinaryConv2d")
    return std::make_unique<ScaledBinaryConv2d>();
  if (type == "SignActivation") return std::make_unique<SignActivation>();
  throw std::runtime_error("make_layer: unknown layer type '" + type + "'");
}

void Sequential::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, training);
  return x;
}

Tensor Sequential::forward_collect(const Tensor& input, bool training,
                                   std::vector<Tensor>& activations) {
  activations.clear();
  activations.reserve(layers_.size());
  Tensor x = input;
  for (auto& l : layers_) {
    x = l->forward(x, training);
    activations.push_back(x);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

Tensor Sequential::backward_collect(const Tensor& grad_logits,
                                    std::vector<Tensor>& output_grads) {
  output_grads.assign(layers_.size(), Tensor());
  Tensor g = grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    output_grads[i] = g;
    g = layers_[i]->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> ps;
  for (auto& l : layers_)
    for (Param* p : l->params()) ps.push_back(p);
  return ps;
}

void Sequential::post_update() {
  for (auto& l : layers_) l->post_update();
}

std::int64_t Sequential::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& l : layers_)
    for (Param* p : const_cast<Layer&>(*l).params()) n += p->value.numel();
  return n;
}

void Sequential::save(const std::string& path) const {
  util::BinaryWriter w(path);
  w.write_tag("BCOP");
  w.write_u32(1);  // format version
  w.write_string(name_);
  w.write_u64(layers_.size());
  for (const auto& l : layers_) {
    w.write_string(l->type());
    l->save(w);
  }
  w.close();
}

Sequential Sequential::load_file(const std::string& path) {
  util::BinaryReader r(path);
  r.expect_tag("BCOP");
  const std::uint32_t version = r.read_u32();
  if (version != 1)
    throw std::runtime_error("Sequential::load_file: unsupported version " +
                             std::to_string(version));
  Sequential model(r.read_string());
  const std::uint64_t n = r.read_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    LayerPtr l = make_layer(r.read_string());
    l->load(r);
    model.add(std::move(l));
  }
  return model;
}

}  // namespace bcop::nn
