#include "nn/optimizer.hpp"

#include <cmath>

namespace bcop::nn {

void Optimizer::step() {
  for (Param* p : params_) p->ensure_grad();
  apply();
  for (Param* p : params_) p->grad.fill(0.f);
  model_->post_update();
}

Sgd::Sgd(Sequential& model, float lr, float momentum)
    : Optimizer(model), momentum_(momentum) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (Param* p : params_)
    velocity_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.f);
}

void Sgd::apply() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto& vel = velocity_[i];
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      vel[static_cast<std::size_t>(j)] =
          momentum_ * vel[static_cast<std::size_t>(j)] - lr_ * p.grad[j];
      p.value[j] += vel[static_cast<std::size_t>(j)];
    }
  }
}

Adam::Adam(Sequential& model, float lr, float beta1, float beta2, float eps)
    : Optimizer(model), beta1_(beta1), beta2_(beta2), eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.f);
    v_.emplace_back(static_cast<std::size_t>(p->value.numel()), 0.f);
  }
}

void Adam::apply() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j];
      auto ju = static_cast<std::size_t>(j);
      m[ju] = beta1_ * m[ju] + (1.f - beta1_) * g;
      v[ju] = beta2_ * v[ju] + (1.f - beta2_) * g * g;
      const float mhat = m[ju] / bc1;
      const float vhat = v[ju] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace bcop::nn
