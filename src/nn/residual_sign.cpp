#include "nn/residual_sign.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

ResidualSign::ResidualSign(std::int64_t levels) : levels_(levels) {
  if (levels < 1 || levels > kMaxLevels)
    throw std::invalid_argument("ResidualSign: levels must be in [1, 3]");
  // Halving init (gamma_m = 2^-m) sits mid-grid and already satisfies the
  // dominance chain, so quantization is the identity at step 0.
  scales_.value = Tensor(Shape{levels});
  for (std::int64_t m = 0; m < levels; ++m)
    scales_.value[m] = std::ldexp(1.f, static_cast<int>(-m));
}

std::vector<std::int32_t> ResidualSign::quantized_scale_bits() const {
  std::vector<std::int32_t> g(static_cast<std::size_t>(levels_), 0);
  std::int32_t prev = 0;
  for (std::int64_t m = 0; m < levels_; ++m) {
    const std::int32_t rounded = static_cast<std::int32_t>(
        std::lround(scales_.value[m] * static_cast<float>(kScaleGrid)));
    std::int32_t lo, hi;
    if (m == 0) {
      lo = kMinFirstBits;
      hi = kMaxFirstBits;
    } else {
      // Floor lo_m = 2^(L-1-m) keeps the tail feasible: lo_{m-1} = 2*lo_m
      // guarantees prev/2 >= lo_m, so the clamp below never inverts.
      lo = std::int32_t{1} << (levels_ - 1 - m);
      hi = std::max(prev / 2, lo);
    }
    g[static_cast<std::size_t>(m)] = std::clamp(rounded, lo, hi);
    prev = g[static_cast<std::size_t>(m)];
  }
  return g;
}

std::vector<float> ResidualSign::quantized_scales() const {
  const std::vector<std::int32_t> g = quantized_scale_bits();
  std::vector<float> q(g.size());
  for (std::size_t m = 0; m < g.size(); ++m)
    q[m] = static_cast<float>(g[m]) / static_cast<float>(kScaleGrid);
  return q;
}

Tensor ResidualSign::forward(const Tensor& input, bool training) {
  const std::vector<float> q = quantized_scales();
  if (training) input_ = input;

  Tensor residual = input;  // e_m, refined in place
  Tensor out(input.shape());
  for (std::int64_t m = 0; m < levels_; ++m) {
    Tensor b(input.shape());
    for (std::int64_t i = 0; i < residual.numel(); ++i)
      b[i] = residual[i] >= 0.f ? 1.f : -1.f;
    // out accumulates multiples of 1/256 (|out|*256 < 2^24): exact.
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      out[i] += q[static_cast<std::size_t>(m)] * b[i];
      residual[i] -= q[static_cast<std::size_t>(m)] * b[i];
    }
    if (training) signs_[static_cast<std::size_t>(m)] = std::move(b);
  }
  return out;
}

Tensor ResidualSign::backward(const Tensor& grad_output) {
  if (input_.empty())
    throw std::logic_error("ResidualSign::backward without training forward");
  if (grad_output.shape() != input_.shape())
    throw std::invalid_argument("ResidualSign::backward: shape mismatch");

  // dL/dgamma_m = sum_i g_i * b_m[i] (signs treated as constants; the
  // quantizer is straight-through).
  scales_.ensure_grad();
  for (std::int64_t m = 0; m < levels_; ++m) {
    const Tensor& b = signs_[static_cast<std::size_t>(m)];
    float acc = 0.f;
    for (std::int64_t i = 0; i < grad_output.numel(); ++i)
      acc += grad_output[i] * b[i];
    scales_.grad[m] += acc;
  }

  // dL/du: clipped STE through the first level only. Later levels see a
  // residual already inside [-q_1, q_1], so the level-1 window dominates;
  // stacking per-level windows just rescales the gradient (ReBNet drops
  // them too).
  Tensor dx(grad_output.shape());
  for (std::int64_t i = 0; i < grad_output.numel(); ++i)
    dx[i] = std::abs(input_[i]) <= 1.f ? grad_output[i] : 0.f;
  return dx;
}

void ResidualSign::post_update() {
  // Project the master scales into the feasible box the quantizer clamps
  // to, so the latent and quantized values cannot drift apart without
  // bound (mirrors latent-weight clipping in the binary layers).
  float* s = scales_.value.data();
  s[0] = std::clamp(
      s[0], static_cast<float>(kMinFirstBits) / kScaleGrid,
      static_cast<float>(kMaxFirstBits) / kScaleGrid);
  for (std::int64_t m = 1; m < levels_; ++m) {
    const float lo = static_cast<float>(std::int32_t{1} << (levels_ - 1 - m)) /
                     kScaleGrid;
    s[m] = std::clamp(s[m], lo, s[m - 1] / 2.f);
  }
}

void ResidualSign::save(util::BinaryWriter& w) const {
  w.write_tag("RSGN");
  w.write_u64(static_cast<std::uint64_t>(levels_));
  w.write_f32_array(scales_.value.storage());
}

void ResidualSign::load(util::BinaryReader& r) {
  r.expect_tag("RSGN");
  levels_ = static_cast<std::int64_t>(r.read_u64());
  if (levels_ < 1 || levels_ > kMaxLevels)
    throw std::runtime_error("ResidualSign::load: bad level count");
  scales_.value = Tensor(Shape{levels_});
  scales_.value.storage() = r.read_f32_array();
  if (scales_.value.storage().size() != static_cast<std::size_t>(levels_))
    throw std::runtime_error("ResidualSign::load: scale size mismatch");
}

}  // namespace bcop::nn
