// ReBNet-style residual binarization activation (Ghasemzadeh et al.).
//
// Where SignActivation emits one binary plane, ResidualSign emits the sum
// of M sequential binary refinements of its input u:
//
//   e_1 = u,   b_m = sign(e_m),   e_{m+1} = e_m - q_m * b_m,
//   out = sum_m q_m * b_m                              (M = levels, 1..3)
//
// so each extra level binarizes the residual the earlier levels left
// behind. Every level reuses the SAME packed XNOR-popcount GEMM at
// inference -- M levels cost M accumulator passes over one set of packed
// weights (see docs/residual-binarization.md).
//
// The per-level scales gamma_m are trainable, but the values actually
// *used* by forward() are quantized to the dyadic grid q_m = g_m / 256
// with integer g_m ("scale bits"). That grid is what makes the folded
// integer inference path bit-exact against this float graph: every
// partial sum downstream of a residual activation is an integer multiple
// of 2^-8 whose magnitude stays far below 2^24, so float addition is
// exact in ANY association order and the xnor engine's integer
// accumulator A = sum_m g_m * acc_m reproduces the float logits bit for
// bit. Quantization also enforces the dominance chain
//
//   g_1 >= 16,  g_m <= g_{m-1} / 2   (=> g_1 > g_2 + g_3)
//
// which makes the value order of residual activations lexicographic in
// their sign bits -- the property the bit-domain max-pool relies on.
//
// Gradients (straight-through, per ReBNet): dL/dgamma_m = sum_i g_i *
// b_m[i] treating signs as constants, and dL/du uses the clipped STE
// window of the FIRST level (|u| <= 1), matching SignActivation when
// levels == 1.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace bcop::nn {

class ResidualSign final : public Layer {
 public:
  static constexpr std::int64_t kMaxLevels = 3;
  /// Scales are quantized to integer multiples of 1/kScaleGrid so the
  /// folded xnor path can accumulate in int32 and stay bit-exact.
  static constexpr std::int32_t kScaleGrid = 256;
  /// g_1 bounds: gamma_1 in [1/16, 2].
  static constexpr std::int32_t kMinFirstBits = 16;
  static constexpr std::int32_t kMaxFirstBits = 512;

  explicit ResidualSign(std::int64_t levels = 1);

  const char* type() const override { return "ResidualSign"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&scales_}; }
  void post_update() override;
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

  std::int64_t levels() const { return levels_; }

  /// Integer scale bits g_m (the master gamma_m rounded onto the 1/256
  /// grid and clamped into the dominance chain). This is the exact
  /// vector the folding path bakes into ResidualSpec::scale_bits.
  std::vector<std::int32_t> quantized_scale_bits() const;
  /// g_m / 256 as floats (all exactly representable). These are the
  /// values forward() multiplies by and the threshold-folding predicate
  /// must subtract in the same order.
  std::vector<float> quantized_scales() const;

 private:
  std::int64_t levels_ = 1;
  Param scales_;  // master (latent) gamma_m, shape {levels_}

  tensor::Tensor input_;  // cached for the level-1 STE window
  std::array<tensor::Tensor, kMaxLevels> signs_;  // b_m, for scale grads
};

}  // namespace bcop::nn
