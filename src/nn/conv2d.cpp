#include "nn/conv2d.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2row.hpp"

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

Conv2d::Conv2d(std::int64_t k, std::int64_t in_ch, std::int64_t out_ch,
               util::Rng& rng)
    : k_(k), in_ch_(in_ch), out_ch_(out_ch) {
  if (k <= 0 || in_ch <= 0 || out_ch <= 0)
    throw std::invalid_argument("Conv2d: non-positive dimension");
  weight_.value = Tensor(Shape{k * k * in_ch, out_ch});
  glorot_uniform(weight_.value, k * k * in_ch, out_ch, rng);
  bias_.value = Tensor(Shape{out_ch}, 0.f);
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 4 || s[3] != in_ch_)
    throw std::invalid_argument("Conv2d: bad input shape " + s.str());
  const std::int64_t N = s[0];
  const std::int64_t Ho = tensor::conv_out_dim(s[1], k_);
  const std::int64_t Wo = tensor::conv_out_dim(s[2], k_);

  Tensor patches;
  tensor::im2row(input, k_, patches);
  Tensor out_flat(Shape{patches.shape()[0], out_ch_});
  tensor::gemm_nn(patches.shape()[0], out_ch_, patches.shape()[1],
                  patches.data(), weight_.value.data(), out_flat.data());
  const float* b = bias_.value.data();
  for (std::int64_t r = 0; r < patches.shape()[0]; ++r)
    for (std::int64_t c = 0; c < out_ch_; ++c) out_flat.at2(r, c) += b[c];
  if (training) {
    patches_ = std::move(patches);
    in_shape_ = s;
  }
  return out_flat.reshaped(Shape{N, Ho, Wo, out_ch_});
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (patches_.empty())
    throw std::logic_error("Conv2d::backward without training forward");
  const std::int64_t M = patches_.shape()[0];
  const std::int64_t P = patches_.shape()[1];
  if (grad_output.numel() != M * out_ch_)
    throw std::invalid_argument("Conv2d::backward: shape mismatch");

  weight_.ensure_grad();
  bias_.ensure_grad();
  tensor::gemm_tn(P, out_ch_, M, patches_.data(), grad_output.data(),
                  weight_.grad.data(), /*accumulate=*/true);
  const float* dy = grad_output.data();
  for (std::int64_t r = 0; r < M; ++r)
    for (std::int64_t c = 0; c < out_ch_; ++c) bias_.grad[c] += dy[r * out_ch_ + c];

  Tensor dpatches(Shape{M, P});
  tensor::gemm_nt(M, P, out_ch_, grad_output.data(), weight_.value.data(),
                  dpatches.data());
  Tensor dx(in_shape_);
  tensor::row2im(dpatches, k_, dx);
  return dx;
}

void Conv2d::save(util::BinaryWriter& w) const {
  w.write_tag("CONV");
  w.write_u64(static_cast<std::uint64_t>(k_));
  w.write_u64(static_cast<std::uint64_t>(in_ch_));
  w.write_u64(static_cast<std::uint64_t>(out_ch_));
  w.write_f32_array(weight_.value.storage());
  w.write_f32_array(bias_.value.storage());
}

void Conv2d::load(util::BinaryReader& r) {
  r.expect_tag("CONV");
  k_ = static_cast<std::int64_t>(r.read_u64());
  in_ch_ = static_cast<std::int64_t>(r.read_u64());
  out_ch_ = static_cast<std::int64_t>(r.read_u64());
  weight_.value = Tensor(Shape{k_ * k_ * in_ch_, out_ch_});
  weight_.value.storage() = r.read_f32_array();
  bias_.value = Tensor(Shape{out_ch_});
  bias_.value.storage() = r.read_f32_array();
  if (weight_.value.storage().size() !=
          static_cast<std::size_t>(k_ * k_ * in_ch_ * out_ch_) ||
      bias_.value.storage().size() != static_cast<std::size_t>(out_ch_))
    throw std::runtime_error("Conv2d::load: weight size mismatch");
}

}  // namespace bcop::nn
