// 2x2 stride-2 max pooling over NHWC tensors.
//
// In BinaryCoP pooling always follows sign(), so inputs are {-1,+1} and the
// pool is equivalent to a boolean OR on the bit encoding -- which is exactly
// how the accelerator implements it (paper Sec. III-B). Training still uses
// a true max with argmax routing so gradients flow to one winner per window.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace bcop::nn {

class MaxPool2 final : public Layer {
 public:
  MaxPool2() = default;

  const char* type() const override { return "MaxPool2"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  void save(util::BinaryWriter& w) const override { w.write_tag("POOL"); }
  void load(util::BinaryReader& r) override { r.expect_tag("POOL"); }

 private:
  tensor::Shape in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index of each winner
};

}  // namespace bcop::nn
