#include "nn/hinge_loss.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcop::nn {

using tensor::Tensor;

SquaredHingeLoss::SquaredHingeLoss(float margin, float scale)
    : margin_(margin), scale_(scale) {
  if (margin <= 0.f || scale <= 0.f)
    throw std::invalid_argument("SquaredHingeLoss: non-positive margin/scale");
}

float SquaredHingeLoss::forward(const Tensor& logits,
                                const std::vector<std::int64_t>& labels) {
  if (logits.shape().rank() != 2)
    throw std::invalid_argument("SquaredHingeLoss: rank-2 logits required");
  const std::int64_t N = logits.shape()[0], C = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != N)
    throw std::invalid_argument("SquaredHingeLoss: label count mismatch");
  logits_ = logits;
  labels_ = labels;
  double loss = 0;
  for (std::int64_t r = 0; r < N; ++r) {
    const std::int64_t y = labels[static_cast<std::size_t>(r)];
    if (y < 0 || y >= C)
      throw std::invalid_argument("SquaredHingeLoss: label out of range");
    for (std::int64_t c = 0; c < C; ++c) {
      const float t = c == y ? 1.f : -1.f;
      const float m =
          std::max(0.f, margin_ - t * logits.at2(r, c) / scale_);
      loss += static_cast<double>(m) * m;
    }
  }
  return static_cast<float>(loss / static_cast<double>(N));
}

Tensor SquaredHingeLoss::backward() const {
  if (logits_.empty())
    throw std::logic_error("SquaredHingeLoss::backward before forward");
  const std::int64_t N = logits_.shape()[0], C = logits_.shape()[1];
  Tensor grad(logits_.shape());
  const float inv_n = 1.f / static_cast<float>(N);
  for (std::int64_t r = 0; r < N; ++r) {
    const std::int64_t y = labels_[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < C; ++c) {
      const float t = c == y ? 1.f : -1.f;
      const float m = std::max(0.f, margin_ - t * logits_.at2(r, c) / scale_);
      grad.at2(r, c) = -2.f * m * t / scale_ * inv_n;
    }
  }
  return grad;
}

}  // namespace bcop::nn
