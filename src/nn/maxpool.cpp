#include "nn/maxpool.hpp"

#include <stdexcept>

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor MaxPool2::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 4) throw std::invalid_argument("MaxPool2: rank-4 input required");
  const std::int64_t N = s[0], H = s[1], W = s[2], C = s[3];
  if (H % 2 != 0 || W % 2 != 0)
    throw std::invalid_argument("MaxPool2: spatial dims must be even, got " + s.str());
  const std::int64_t Ho = H / 2, Wo = W / 2;
  Tensor out(Shape{N, Ho, Wo, C});
  if (training) {
    in_shape_ = s;
    argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  }
  const float* in = input.data();
  float* o = out.data();
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t y = 0; y < Ho; ++y)
      for (std::int64_t x = 0; x < Wo; ++x)
        for (std::int64_t c = 0; c < C; ++c) {
          const std::int64_t base = ((n * H + 2 * y) * W + 2 * x) * C + c;
          std::int64_t best = base;
          float bv = in[base];
          const std::int64_t candidates[3] = {base + C, base + W * C,
                                              base + W * C + C};
          for (const std::int64_t idx : candidates)
            if (in[idx] > bv) {
              bv = in[idx];
              best = idx;
            }
          const std::int64_t oi = ((n * Ho + y) * Wo + x) * C + c;
          o[oi] = bv;
          if (training) argmax_[static_cast<std::size_t>(oi)] = best;
        }
  return out;
}

Tensor MaxPool2::backward(const Tensor& grad_output) {
  if (argmax_.empty())
    throw std::logic_error("MaxPool2::backward without training forward");
  if (grad_output.numel() != static_cast<std::int64_t>(argmax_.size()))
    throw std::invalid_argument("MaxPool2::backward: shape mismatch");
  Tensor dx(in_shape_);
  for (std::int64_t i = 0; i < grad_output.numel(); ++i)
    dx[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  return dx;
}

}  // namespace bcop::nn
