// Weight initialization.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace bcop::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// This is the initializer the BinaryNet reference implementation uses for
/// latent weights; its small magnitudes matter because latents are clipped
/// to [-1, 1] throughout training.
void glorot_uniform(tensor::Tensor& w, std::int64_t fan_in,
                    std::int64_t fan_out, util::Rng& rng);

}  // namespace bcop::nn
