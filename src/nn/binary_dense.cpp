#include "nn/binary_dense.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

BinaryDense::BinaryDense(std::int64_t in_features, std::int64_t out_features,
                         util::Rng& rng)
    : in_(in_features), out_(out_features) {
  if (in_features <= 0 || out_features <= 0)
    throw std::invalid_argument("BinaryDense: non-positive dimension");
  weight_.value = Tensor(Shape{in_, out_});
  glorot_uniform(weight_.value, in_, out_, rng);
}

Tensor BinaryDense::binarized_weights() const {
  Tensor wb(weight_.value.shape());
  for (std::int64_t i = 0; i < wb.numel(); ++i)
    wb[i] = weight_.value[i] >= 0.f ? 1.f : -1.f;
  return wb;
}

Tensor BinaryDense::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 2 || s[1] != in_)
    throw std::invalid_argument("BinaryDense: bad input shape " + s.str());
  wb_ = binarized_weights();
  Tensor out(Shape{s[0], out_});
  tensor::gemm_nn(s[0], out_, in_, input.data(), wb_.data(), out.data());
  if (training) input_ = input;
  return out;
}

Tensor BinaryDense::backward(const Tensor& grad_output) {
  if (input_.empty())
    throw std::logic_error("BinaryDense::backward without training forward");
  const std::int64_t N = input_.shape()[0];
  if (grad_output.shape() != Shape{N, out_})
    throw std::invalid_argument("BinaryDense::backward: shape mismatch");

  weight_.ensure_grad();
  tensor::gemm_tn(in_, out_, N, input_.data(), grad_output.data(),
                  weight_.grad.data(), /*accumulate=*/true);
  Tensor dx(Shape{N, in_});
  tensor::gemm_nt(N, in_, out_, grad_output.data(), wb_.data(), dx.data());
  return dx;
}

void BinaryDense::post_update() {
  float* w = weight_.value.data();
  for (std::int64_t i = 0; i < weight_.value.numel(); ++i)
    w[i] = std::clamp(w[i], -1.f, 1.f);
}

void BinaryDense::save(util::BinaryWriter& w) const {
  w.write_tag("BDNS");
  w.write_u64(static_cast<std::uint64_t>(in_));
  w.write_u64(static_cast<std::uint64_t>(out_));
  w.write_f32_array(weight_.value.storage());
}

void BinaryDense::load(util::BinaryReader& r) {
  r.expect_tag("BDNS");
  in_ = static_cast<std::int64_t>(r.read_u64());
  out_ = static_cast<std::int64_t>(r.read_u64());
  weight_.value = Tensor(Shape{in_, out_});
  weight_.value.storage() = r.read_f32_array();
  if (weight_.value.storage().size() != static_cast<std::size_t>(in_ * out_))
    throw std::runtime_error("BinaryDense::load: weight size mismatch");
}

}  // namespace bcop::nn
