// Binary-weight fully-connected layer (no bias).
//
// Same latent-weight / straight-through recipe as BinaryConv2d. The final
// classifier layer (FC.3 in Table I) is also a BinaryDense: its integer
// accumulator outputs are the logits, matching the accelerator where the
// last MVTU has no threshold stage and streams out raw popcount sums.
#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace bcop::nn {

class BinaryDense final : public Layer {
 public:
  BinaryDense() = default;
  BinaryDense(std::int64_t in_features, std::int64_t out_features,
              util::Rng& rng);

  const char* type() const override { return "BinaryDense"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_}; }
  void post_update() override;
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  const tensor::Tensor& latent_weights() const { return weight_.value; }
  tensor::Tensor& mutable_latent_weights() { return weight_.value; }
  /// sign(latent) as {-1,+1} float matrix [In, Out].
  tensor::Tensor binarized_weights() const;

 private:
  std::int64_t in_ = 0, out_ = 0;
  Param weight_;  // [In, Out]
  tensor::Tensor input_;
  tensor::Tensor wb_;
};

}  // namespace bcop::nn
