#include "nn/softmax_xent.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace bcop::nn {

using tensor::Tensor;

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::int64_t>& labels) {
  if (logits.shape().rank() != 2)
    throw std::invalid_argument("SoftmaxCrossEntropy: rank-2 logits required");
  const std::int64_t N = logits.shape()[0], C = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != N)
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");
  probs_ = tensor::softmax_rows(logits);
  labels_ = labels;
  double loss = 0.0;
  for (std::int64_t r = 0; r < N; ++r) {
    const std::int64_t y = labels[static_cast<std::size_t>(r)];
    if (y < 0 || y >= C)
      throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    loss -= std::log(std::max(probs_.at2(r, y), 1e-12f));
  }
  return static_cast<float>(loss / static_cast<double>(N));
}

Tensor SoftmaxCrossEntropy::backward() const {
  if (probs_.empty())
    throw std::logic_error("SoftmaxCrossEntropy::backward before forward");
  const std::int64_t N = probs_.shape()[0], C = probs_.shape()[1];
  Tensor grad = probs_;
  const float inv_n = 1.f / static_cast<float>(N);
  for (std::int64_t r = 0; r < N; ++r) {
    grad.at2(r, labels_[static_cast<std::size_t>(r)]) -= 1.f;
    for (std::int64_t c = 0; c < C; ++c) grad.at2(r, c) *= inv_n;
  }
  return grad;
}

}  // namespace bcop::nn
