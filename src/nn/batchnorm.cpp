#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

BatchNorm::BatchNorm(std::int64_t channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
  gamma_.value = Tensor(Shape{channels}, 1.f);
  beta_.value = Tensor(Shape{channels}, 0.f);
  running_mean_ = Tensor(Shape{channels}, 0.f);
  running_var_ = Tensor(Shape{channels}, 1.f);
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  const std::int64_t C = s[s.rank() - 1];
  if (C != channels_)
    throw std::invalid_argument("BatchNorm: channel mismatch, input " + s.str());
  const std::int64_t rows = input.numel() / C;

  Tensor out(s);
  if (training && frozen_) {
    // Frozen: normalize with running statistics (constants), cache xhat and
    // inv_std so backward differentiates the inference-time affine.
    inv_std_ = Tensor(Shape{C});
    for (std::int64_t c = 0; c < C; ++c)
      inv_std_[c] = 1.f / std::sqrt(running_var_[c] + eps_);
    xhat_ = Tensor(s);
    const float* x = input.data();
    float* xh = xhat_.data();
    float* o = out.data();
    const float* g = gamma_.value.data();
    const float* b = beta_.value.data();
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < C; ++c) {
        const float v = (x[r * C + c] - running_mean_[c]) * inv_std_[c];
        xh[r * C + c] = v;
        o[r * C + c] = g[c] * v + b[c];
      }
    rows_ = rows;
    frozen_forward_ = true;
    return out;
  }
  if (training) {
    frozen_forward_ = false;
    // Batch statistics.
    std::vector<double> mu(static_cast<std::size_t>(C), 0.0),
        var(static_cast<std::size_t>(C), 0.0);
    const float* x = input.data();
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < C; ++c)
        mu[static_cast<std::size_t>(c)] += x[r * C + c];
    for (auto& m : mu) m /= static_cast<double>(rows);
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < C; ++c) {
        const double d = x[r * C + c] - mu[static_cast<std::size_t>(c)];
        var[static_cast<std::size_t>(c)] += d * d;
      }
    for (auto& v : var) v /= static_cast<double>(rows);

    inv_std_ = Tensor(Shape{C});
    for (std::int64_t c = 0; c < C; ++c)
      inv_std_[c] = static_cast<float>(
          1.0 / std::sqrt(var[static_cast<std::size_t>(c)] + eps_));

    xhat_ = Tensor(s);
    float* xh = xhat_.data();
    float* o = out.data();
    const float* g = gamma_.value.data();
    const float* b = beta_.value.data();
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < C; ++c) {
        const float v = (x[r * C + c] -
                         static_cast<float>(mu[static_cast<std::size_t>(c)])) *
                        inv_std_[c];
        xh[r * C + c] = v;
        o[r * C + c] = g[c] * v + b[c];
      }
    rows_ = rows;

    // Exponential moving averages for inference / threshold folding.
    for (std::int64_t c = 0; c < C; ++c) {
      running_mean_[c] = momentum_ * running_mean_[c] +
                         (1.f - momentum_) *
                             static_cast<float>(mu[static_cast<std::size_t>(c)]);
      running_var_[c] = momentum_ * running_var_[c] +
                        (1.f - momentum_) *
                            static_cast<float>(var[static_cast<std::size_t>(c)]);
    }
  } else {
    const float* x = input.data();
    float* o = out.data();
    const float* g = gamma_.value.data();
    const float* b = beta_.value.data();
    for (std::int64_t c = 0; c < C; ++c) {
      const float inv = 1.f / std::sqrt(running_var_[c] + eps_);
      const float scale = g[c] * inv;
      const float shift = b[c] - scale * running_mean_[c];
      for (std::int64_t r = 0; r < rows; ++r)
        o[r * C + c] = scale * x[r * C + c] + shift;
    }
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  if (xhat_.empty())
    throw std::logic_error("BatchNorm::backward without training forward");
  const Shape& s = grad_output.shape();
  const std::int64_t C = channels_;
  const std::int64_t rows = grad_output.numel() / C;
  if (rows != rows_ || grad_output.shape() != xhat_.shape())
    throw std::invalid_argument("BatchNorm::backward: shape mismatch");

  gamma_.ensure_grad();
  beta_.ensure_grad();

  const float* dy = grad_output.data();
  const float* xh = xhat_.data();
  std::vector<double> sum_dy(static_cast<std::size_t>(C), 0.0),
      sum_dy_xh(static_cast<std::size_t>(C), 0.0);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < C; ++c) {
      sum_dy[static_cast<std::size_t>(c)] += dy[r * C + c];
      sum_dy_xh[static_cast<std::size_t>(c)] += dy[r * C + c] * xh[r * C + c];
    }
  for (std::int64_t c = 0; c < C; ++c) {
    gamma_.grad[c] += static_cast<float>(sum_dy_xh[static_cast<std::size_t>(c)]);
    beta_.grad[c] += static_cast<float>(sum_dy[static_cast<std::size_t>(c)]);
  }

  Tensor dx(s);
  float* out = dx.data();
  const float* g = gamma_.value.data();
  if (frozen_forward_) {
    // Statistics are constants: dL/dx = gamma * inv_std * dL/dy.
    for (std::int64_t c = 0; c < C; ++c) {
      const float k = g[c] * inv_std_[c];
      for (std::int64_t r = 0; r < rows; ++r)
        out[r * C + c] = k * dy[r * C + c];
    }
    return dx;
  }
  const double inv_rows = 1.0 / static_cast<double>(rows);
  for (std::int64_t c = 0; c < C; ++c) {
    const float k = g[c] * inv_std_[c];
    const float mean_dy = static_cast<float>(sum_dy[static_cast<std::size_t>(c)] * inv_rows);
    const float mean_dy_xh =
        static_cast<float>(sum_dy_xh[static_cast<std::size_t>(c)] * inv_rows);
    for (std::int64_t r = 0; r < rows; ++r)
      out[r * C + c] =
          k * (dy[r * C + c] - mean_dy - xh[r * C + c] * mean_dy_xh);
  }
  return dx;
}

void BatchNorm::save(util::BinaryWriter& w) const {
  w.write_tag("BNRM");
  w.write_u64(static_cast<std::uint64_t>(channels_));
  w.write_f32(eps_);
  w.write_f32(momentum_);
  w.write_f32_array(gamma_.value.storage());
  w.write_f32_array(beta_.value.storage());
  w.write_f32_array(running_mean_.storage());
  w.write_f32_array(running_var_.storage());
}

void BatchNorm::load(util::BinaryReader& r) {
  r.expect_tag("BNRM");
  channels_ = static_cast<std::int64_t>(r.read_u64());
  eps_ = r.read_f32();
  momentum_ = r.read_f32();
  *this = BatchNorm(channels_, eps_, momentum_);
  gamma_.value.storage() = r.read_f32_array();
  beta_.value.storage() = r.read_f32_array();
  running_mean_.storage() = r.read_f32_array();
  running_var_.storage() = r.read_f32_array();
  const auto n = static_cast<std::size_t>(channels_);
  if (gamma_.value.storage().size() != n || beta_.value.storage().size() != n ||
      running_mean_.storage().size() != n || running_var_.storage().size() != n)
    throw std::runtime_error("BatchNorm::load: array size mismatch");
}

}  // namespace bcop::nn
