// Softmax cross-entropy loss head.
//
// Not a Layer: it terminates the graph, consuming logits [N, classes] and
// integer labels, and produces both the scalar loss and dLoss/dLogits.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace bcop::nn {

class SoftmaxCrossEntropy {
 public:
  /// Mean cross-entropy over the batch. Caches probabilities for backward.
  float forward(const tensor::Tensor& logits,
                const std::vector<std::int64_t>& labels);

  /// dLoss/dLogits = (softmax - onehot) / N.
  tensor::Tensor backward() const;

  const tensor::Tensor& probabilities() const { return probs_; }

 private:
  tensor::Tensor probs_;
  std::vector<std::int64_t> labels_;
};

}  // namespace bcop::nn
