// Squared hinge loss -- the criterion the original BinaryNet code uses
// (Courbariaux/Hubara [11] train with a multi-class square hinge rather
// than cross-entropy). Provided as an alternative head for the loss
// ablation; the margin formulation interacts differently with the BNN's
// integer-valued logits than softmax does.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace bcop::nn {

class SquaredHingeLoss {
 public:
  /// Mean over the batch of sum_c max(0, margin - t_c * logit_c)^2 with
  /// t_c = +1 for the true class and -1 otherwise. `scale` divides the
  /// logits first; BNN logits grow with fan-in, so without scaling the
  /// hinge saturates immediately.
  explicit SquaredHingeLoss(float margin = 1.f, float scale = 1.f);

  float forward(const tensor::Tensor& logits,
                const std::vector<std::int64_t>& labels);
  tensor::Tensor backward() const;

 private:
  float margin_;
  float scale_;
  tensor::Tensor logits_;
  std::vector<std::int64_t> labels_;
};

}  // namespace bcop::nn
