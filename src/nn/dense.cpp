#include "nn/dense.hpp"

#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

Dense::Dense(std::int64_t in_features, std::int64_t out_features,
             util::Rng& rng)
    : in_(in_features), out_(out_features) {
  if (in_features <= 0 || out_features <= 0)
    throw std::invalid_argument("Dense: non-positive dimension");
  weight_.value = Tensor(Shape{in_, out_});
  glorot_uniform(weight_.value, in_, out_, rng);
  bias_.value = Tensor(Shape{out_}, 0.f);
}

Tensor Dense::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 2 || s[1] != in_)
    throw std::invalid_argument("Dense: bad input shape " + s.str());
  Tensor out(Shape{s[0], out_});
  tensor::gemm_nn(s[0], out_, in_, input.data(), weight_.value.data(),
                  out.data());
  const float* b = bias_.value.data();
  for (std::int64_t r = 0; r < s[0]; ++r)
    for (std::int64_t c = 0; c < out_; ++c) out.at2(r, c) += b[c];
  if (training) input_ = input;
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (input_.empty())
    throw std::logic_error("Dense::backward without training forward");
  const std::int64_t N = input_.shape()[0];
  if (grad_output.shape() != Shape{N, out_})
    throw std::invalid_argument("Dense::backward: shape mismatch");

  weight_.ensure_grad();
  bias_.ensure_grad();
  tensor::gemm_tn(in_, out_, N, input_.data(), grad_output.data(),
                  weight_.grad.data(), /*accumulate=*/true);
  const float* dy = grad_output.data();
  for (std::int64_t r = 0; r < N; ++r)
    for (std::int64_t c = 0; c < out_; ++c) bias_.grad[c] += dy[r * out_ + c];

  Tensor dx(Shape{N, in_});
  tensor::gemm_nt(N, in_, out_, grad_output.data(), weight_.value.data(),
                  dx.data());
  return dx;
}

void Dense::save(util::BinaryWriter& w) const {
  w.write_tag("DNSE");
  w.write_u64(static_cast<std::uint64_t>(in_));
  w.write_u64(static_cast<std::uint64_t>(out_));
  w.write_f32_array(weight_.value.storage());
  w.write_f32_array(bias_.value.storage());
}

void Dense::load(util::BinaryReader& r) {
  r.expect_tag("DNSE");
  in_ = static_cast<std::int64_t>(r.read_u64());
  out_ = static_cast<std::int64_t>(r.read_u64());
  weight_.value = Tensor(Shape{in_, out_});
  weight_.value.storage() = r.read_f32_array();
  bias_.value = Tensor(Shape{out_});
  bias_.value.storage() = r.read_f32_array();
  if (weight_.value.storage().size() != static_cast<std::size_t>(in_ * out_) ||
      bias_.value.storage().size() != static_cast<std::size_t>(out_))
    throw std::runtime_error("Dense::load: weight size mismatch");
}

}  // namespace bcop::nn
