// Binary-weight 2D convolution (valid padding, stride 1).
//
// Latent full-precision weights are kept for the optimizer (BinaryConnect
// [13]); the forward pass binarizes them with sign() and computes the
// convolution as im2row + GEMM. The weight gradient is taken with respect
// to the *binarized* weights and passed straight through to the latents,
// which are clipped to [-1, 1] after every optimizer step -- the training
// recipe of Courbariaux/Hubara that the paper adopts (Sec. III-A).
//
// The layer consumes whatever its input is: {-1,+1} activations from a
// preceding SignActivation in the hidden layers, or real-valued pixels in
// the first layer (deployment quantizes those to fixed-point, see
// src/xnor/first_layer.hpp).
#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace bcop::nn {

class BinaryConv2d final : public Layer {
 public:
  BinaryConv2d() = default;
  /// K x K kernel, `in_ch` -> `out_ch`, Glorot-initialized latents.
  BinaryConv2d(std::int64_t k, std::int64_t in_ch, std::int64_t out_ch,
               util::Rng& rng);

  const char* type() const override { return "BinaryConv2d"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_}; }
  void post_update() override;
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

  std::int64_t kernel() const { return k_; }
  std::int64_t in_channels() const { return in_ch_; }
  std::int64_t out_channels() const { return out_ch_; }

  /// Latent weights as the GEMM matrix [K*K*Ci, Co]; row index is
  /// (ky*K + kx)*Ci + c, matching im2row patch order.
  const tensor::Tensor& latent_weights() const { return weight_.value; }
  tensor::Tensor& mutable_latent_weights() { return weight_.value; }

  /// sign(latent) as a {-1,+1} float matrix [K*K*Ci, Co].
  tensor::Tensor binarized_weights() const;

 private:
  std::int64_t k_ = 0, in_ch_ = 0, out_ch_ = 0;
  Param weight_;  // [K*K*Ci, Co]

  tensor::Tensor patches_;     // cached im2row of the last training input
  tensor::Tensor wb_;          // cached binarized weights of the last forward
  tensor::Shape in_shape_;
};

}  // namespace bcop::nn
