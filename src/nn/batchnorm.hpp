// Batch normalization over the channel (last) dimension.
//
// For rank-4 NHWC input it normalizes each channel over N*H*W; for rank-2
// [N, F] input it normalizes each feature over N. In BinaryCoP every BN is
// immediately followed by sign(), which is why deployment can replace the
// whole BN with a per-channel threshold (Sec. III-A of the paper); the
// threshold folding lives in src/xnor and src/deploy and consumes the
// gamma/beta/running statistics stored here.
#pragma once

#include <cstdint>

#include "nn/layer.hpp"

namespace bcop::nn {

class BatchNorm final : public Layer {
 public:
  BatchNorm() = default;
  explicit BatchNorm(std::int64_t channels, float eps = 1e-5f,
                     float momentum = 0.9f);

  const char* type() const override { return "BatchNorm"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

  /// Frozen mode: training-mode forward/backward use the *running*
  /// statistics as constants (no batch statistics, no EMA update, and
  /// backward reduces to dx = gamma/sigma * dy). Grad-CAM uses this to
  /// differentiate the exact inference-time function; see gradcam.cpp.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  bool frozen() const { return frozen_; }

  std::int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  const tensor::Tensor& gamma() const { return gamma_.value; }
  const tensor::Tensor& beta() const { return beta_.value; }
  const tensor::Tensor& running_mean() const { return running_mean_; }
  const tensor::Tensor& running_var() const { return running_var_; }

 private:
  std::int64_t channels_ = 0;
  float eps_ = 1e-5f;
  float momentum_ = 0.9f;
  Param gamma_, beta_;
  tensor::Tensor running_mean_, running_var_;

  // Caches from the last training-mode forward.
  tensor::Tensor xhat_;
  tensor::Tensor inv_std_;  // [C]
  std::int64_t rows_ = 0;   // N*H*W of the cached batch
  bool frozen_ = false;
  bool frozen_forward_ = false;  // the cached forward ran in frozen mode
};

}  // namespace bcop::nn
