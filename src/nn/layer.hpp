// Layer interface of the from-scratch training framework.
//
// The framework is a classic define-by-layer stack (in the spirit of the
// Theano/Lasagne code the original BNN papers used): every layer implements
// an explicit forward and backward, caches whatever it needs in between,
// and exposes its parameters to the optimizer. No autograd tape exists --
// the graph is a straight pipeline, which is exactly what the paper's
// networks are (Table I) and what the FINN-style accelerator expects.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/serialize.hpp"

namespace bcop::nn {

/// A trainable parameter: value plus the gradient accumulated by backward().
struct Param {
  tensor::Tensor value;
  tensor::Tensor grad;

  void ensure_grad() {
    if (grad.shape() != value.shape()) grad = tensor::Tensor(value.shape());
  }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable type identifier used by serialization and diagnostics.
  virtual const char* type() const = 0;

  /// Compute the layer output. `training` selects batch statistics in
  /// BatchNorm and may enable caching needed only by backward().
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool training) = 0;

  /// Given dLoss/dOutput, accumulate parameter gradients and return
  /// dLoss/dInput. Must be called after a forward() with training=true.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Hook invoked by the optimizer after each step (e.g. latent-weight
  /// clipping in binary layers).
  virtual void post_update() {}

  /// Serialize configuration and weights.
  virtual void save(util::BinaryWriter& w) const = 0;
  /// Restore configuration and weights written by save().
  virtual void load(util::BinaryReader& r) = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Construct an empty layer of the given type (for deserialization).
/// Throws std::runtime_error for unknown type names.
LayerPtr make_layer(const std::string& type);

}  // namespace bcop::nn
