// Rectified linear activation (used by the FP32 baseline network only).
#pragma once

#include "nn/layer.hpp"

namespace bcop::nn {

class ReLU final : public Layer {
 public:
  ReLU() = default;

  const char* type() const override { return "ReLU"; }

  tensor::Tensor forward(const tensor::Tensor& input, bool training) override {
    if (training) input_ = input;
    tensor::Tensor out(input.shape());
    for (std::int64_t i = 0; i < input.numel(); ++i)
      out[i] = input[i] > 0.f ? input[i] : 0.f;
    return out;
  }

  tensor::Tensor backward(const tensor::Tensor& grad_output) override {
    if (input_.empty())
      throw std::logic_error("ReLU::backward without training forward");
    tensor::Tensor dx(grad_output.shape());
    for (std::int64_t i = 0; i < grad_output.numel(); ++i)
      dx[i] = input_[i] > 0.f ? grad_output[i] : 0.f;
    return dx;
  }

  void save(util::BinaryWriter& w) const override { w.write_tag("RELU"); }
  void load(util::BinaryReader& r) override { r.expect_tag("RELU"); }

 private:
  tensor::Tensor input_;
};

}  // namespace bcop::nn
