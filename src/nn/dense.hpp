// Full-precision fully-connected layer with bias (FP32 baseline).
#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace bcop::nn {

class Dense final : public Layer {
 public:
  Dense() = default;
  Dense(std::int64_t in_features, std::int64_t out_features, util::Rng& rng);

  const char* type() const override { return "Dense"; }
  tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void save(util::BinaryWriter& w) const override;
  void load(util::BinaryReader& r) override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_ = 0, out_ = 0;
  Param weight_;  // [In, Out]
  Param bias_;    // [Out]
  tensor::Tensor input_;
};

}  // namespace bcop::nn
