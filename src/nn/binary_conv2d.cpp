#include "nn/binary_conv2d.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2row.hpp"

namespace bcop::nn {

using tensor::Shape;
using tensor::Tensor;

BinaryConv2d::BinaryConv2d(std::int64_t k, std::int64_t in_ch,
                           std::int64_t out_ch, util::Rng& rng)
    : k_(k), in_ch_(in_ch), out_ch_(out_ch) {
  if (k <= 0 || in_ch <= 0 || out_ch <= 0)
    throw std::invalid_argument("BinaryConv2d: non-positive dimension");
  weight_.value = Tensor(Shape{k * k * in_ch, out_ch});
  glorot_uniform(weight_.value, k * k * in_ch, out_ch, rng);
}

Tensor BinaryConv2d::binarized_weights() const {
  Tensor wb(weight_.value.shape());
  for (std::int64_t i = 0; i < wb.numel(); ++i)
    wb[i] = weight_.value[i] >= 0.f ? 1.f : -1.f;
  return wb;
}

Tensor BinaryConv2d::forward(const Tensor& input, bool training) {
  const Shape& s = input.shape();
  if (s.rank() != 4 || s[3] != in_ch_)
    throw std::invalid_argument("BinaryConv2d: bad input shape " + s.str());
  const std::int64_t N = s[0];
  const std::int64_t Ho = tensor::conv_out_dim(s[1], k_);
  const std::int64_t Wo = tensor::conv_out_dim(s[2], k_);

  Tensor patches;
  tensor::im2row(input, k_, patches);
  wb_ = binarized_weights();

  Tensor out_flat(Shape{patches.shape()[0], out_ch_});
  tensor::gemm_nn(patches.shape()[0], out_ch_, patches.shape()[1],
                  patches.data(), wb_.data(), out_flat.data());
  if (training) {
    patches_ = std::move(patches);
    in_shape_ = s;
  }
  return out_flat.reshaped(Shape{N, Ho, Wo, out_ch_});
}

Tensor BinaryConv2d::backward(const Tensor& grad_output) {
  if (patches_.empty())
    throw std::logic_error("BinaryConv2d::backward without training forward");
  const std::int64_t M = patches_.shape()[0];
  const std::int64_t P = patches_.shape()[1];  // K*K*Ci
  if (grad_output.numel() != M * out_ch_)
    throw std::invalid_argument("BinaryConv2d::backward: shape mismatch");

  weight_.ensure_grad();
  // dWb = patches^T x dY; straight-through to the latent weights.
  tensor::gemm_tn(P, out_ch_, M, patches_.data(), grad_output.data(),
                  weight_.grad.data(), /*accumulate=*/true);

  // dPatches = dY x Wb^T, then scatter back to the input image.
  Tensor dpatches(Shape{M, P});
  tensor::gemm_nt(M, P, out_ch_, grad_output.data(), wb_.data(),
                  dpatches.data());
  Tensor dx(in_shape_);
  tensor::row2im(dpatches, k_, dx);
  return dx;
}

void BinaryConv2d::post_update() {
  // BinaryConnect: keep latents inside the binarization's active region so
  // the straight-through gradient never dies permanently.
  float* w = weight_.value.data();
  for (std::int64_t i = 0; i < weight_.value.numel(); ++i)
    w[i] = std::clamp(w[i], -1.f, 1.f);
}

void BinaryConv2d::save(util::BinaryWriter& w) const {
  w.write_tag("BCNV");
  w.write_u64(static_cast<std::uint64_t>(k_));
  w.write_u64(static_cast<std::uint64_t>(in_ch_));
  w.write_u64(static_cast<std::uint64_t>(out_ch_));
  w.write_f32_array(weight_.value.storage());
}

void BinaryConv2d::load(util::BinaryReader& r) {
  r.expect_tag("BCNV");
  k_ = static_cast<std::int64_t>(r.read_u64());
  in_ch_ = static_cast<std::int64_t>(r.read_u64());
  out_ch_ = static_cast<std::int64_t>(r.read_u64());
  weight_.value = Tensor(Shape{k_ * k_ * in_ch_, out_ch_});
  weight_.value.storage() = r.read_f32_array();
  if (weight_.value.storage().size() !=
      static_cast<std::size_t>(k_ * k_ * in_ch_ * out_ch_))
    throw std::runtime_error("BinaryConv2d::load: weight size mismatch");
}

}  // namespace bcop::nn
