// Fast CPU inference engine for folded BinaryCoP networks.
//
// fold() compiles a trained nn::Sequential (the BinaryConv/BatchNorm/Sign
// pipeline of Table I) into a stage list that evaluates with integer
// arithmetic only:
//   - FirstConv: 8-bit fixed-point pixels x binary weights, integer
//     accumulators, folded thresholds (FINN treats the input layer the same
//     way [7], [27]).
//   - BinConv / BinDense: XNOR + popcount GEMM on bit-packed operands,
//     folded thresholds; the final BinDense has no threshold and its raw
//     accumulators are the logits.
//   - Pool: 2x2 max pool, which on {-1,+1} is the boolean OR of the paper.
// Execution goes through one path only: the stage list is compiled into an
// xnor::ExecutionPlan per input shape (cached on the network) and run by
// the allocation-free interpreter in exec.cpp against a Workspace arena --
// forward() is forward_batch() with N = 1, so single-image and batched
// results can never drift. The deploy::StreamingPipeline consumes the same
// stage list and must match this engine bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/tensor.hpp"
#include "xnor/folding.hpp"

namespace bcop::xnor {

/// ReBNet residual-binarization descriptor for a binary stage's OUTPUT
/// activation (docs/residual-binarization.md). Classic sign stages keep
/// the default: one unscaled {-1,+1} plane fired from the stage's single
/// `thresholds` bank. A residual stage (folded from nn::ResidualSign)
/// emits `levels` packed planes; plane m carries value scale_bits[m]/256
/// and fires from the bank selected by the signs levels 0..m-1 actually
/// produced. Bank 0 (level 0) stays in the stage's `thresholds` field;
/// extra_banks holds the remaining 2^levels - 2 banks in (level, pattern)
/// order: the bank for level m >= 1 under sign pattern p (bit j set =>
/// level j fired +1) lives at index (1 << m) - 2 + p. Truncated serving
/// (ExecutionPlan::compile with a levels cap) uses a strict prefix of
/// this layout -- level m's banks only ever depend on levels < m.
struct ResidualSpec {
  std::int64_t levels = 1;
  std::vector<std::int32_t> scale_bits;    // g_m (value = g_m / 256)
  std::vector<ThresholdSpec> extra_banks;  // levels >= 1, pattern-indexed

  /// Residual stages carry scales even at levels == 1 (plane 0 is worth
  /// g_0/256, not 1); classic sign stages never do.
  bool scaled() const { return !scale_bits.empty(); }
};

/// First layer: quantized-input convolution with binary weights.
struct FirstConvStage {
  std::int64_t k = 0, ci = 0, co = 0;
  tensor::Tensor weights;  // {-1,+1} floats, [K*K*Ci, Co]
  ThresholdSpec thresholds;
  ResidualSpec residual;
};

/// Hidden binary convolution evaluated as XNOR-popcount GEMM.
struct BinConvStage {
  std::int64_t k = 0, ci = 0, co = 0;
  tensor::BitMatrix weights;  // [Co, K*K*Ci] packed rows
  ThresholdSpec thresholds;
  ResidualSpec residual;
};

/// 2x2 stride-2 max pool == boolean OR on the bit encoding.
struct PoolStage {};

/// Marks the NHWC -> flat transition before the fully-connected stages.
struct FlattenStage {};

/// Binary fully-connected. `has_threshold` is false for the classifier
/// layer, whose integer accumulators are the logits.
struct BinDenseStage {
  std::int64_t in = 0, out = 0;
  tensor::BitMatrix weights;  // [Out, In]
  ThresholdSpec thresholds;
  ResidualSpec residual;
  bool has_threshold = true;
};

using Stage =
    std::variant<FirstConvStage, BinConvStage, PoolStage, FlattenStage,
                 BinDenseStage>;

/// Human-readable stage kind for diagnostics and pipeline dumps.
std::string stage_kind(const Stage& s);

/// The residual descriptor of a binary stage's output activation, or
/// nullptr for Pool/Flatten stages (which pass planes through untouched).
/// The classifier BinDense (has_threshold == false) returns its default
/// descriptor; its output is logits, not an activation.
const ResidualSpec* stage_residual(const Stage& s);

class ExecutionPlan;
class Workspace;

class XnorNetwork {
 public:
  XnorNetwork();
  ~XnorNetwork();
  /// Assemble directly from stages (used by the bitstream loader).
  XnorNetwork(std::string name, std::vector<Stage> stages);

  // Copies get a fresh (empty) plan cache; moves keep it -- cached plans
  // reference stages by index, so they stay valid across moves. A
  // moved-from network must be reassigned before serving again: plan_for
  // aborts (BCOP_CHECK) on a null cache instead of lazily reviving it,
  // which was an unlocked check-then-act race.
  XnorNetwork(const XnorNetwork& other);
  XnorNetwork& operator=(const XnorNetwork& other);
  XnorNetwork(XnorNetwork&&) noexcept;
  XnorNetwork& operator=(XnorNetwork&&) noexcept;

  /// Compile a trained BNN. Throws std::runtime_error with a descriptive
  /// message if the layer sequence is not a supported BNN topology.
  static XnorNetwork fold(nn::Sequential& model);

  /// Logits [N, classes] (values are exact integers). Equivalent to
  /// forward_batch() -- one interpreter, one plan, N may be 1.
  tensor::Tensor forward(const tensor::Tensor& input) const;

  /// Batched serving path: activations stay bit-packed (pixel-major
  /// [N*H*W, C] rows) from the first stage to the classifier logits, so
  /// pooling is a word-wise OR and im2row is bit-field concatenation.
  /// Layer work is split over parallel::ThreadPool::global() along the
  /// combined N*Ho*Wo row dimension. This convenience overload runs
  /// against a thread-local Workspace; steady-state calls with a repeated
  /// input shape allocate only the returned tensor.
  tensor::Tensor forward_batch(const tensor::Tensor& input,
                               std::int64_t levels = 0) const;

  /// Allocation-free serving form: executes the cached plan for
  /// input.shape() into `ws` (grown on first use, reused after) and writes
  /// the logits into `out`, which is only reallocated when its shape does
  /// not match the plan output. After a warm call, steady state performs
  /// zero heap allocations (measured by tests/test_zero_alloc.cpp).
  /// `levels` caps the residual binarization depth the plan evaluates
  /// (0 = every level the network was trained with; see plan_for).
  void forward_batch(const tensor::Tensor& input, Workspace& ws,
                     tensor::Tensor& out, std::int64_t levels = 0) const;

  /// The frozen execution plan for inputs of this exact shape (batch
  /// included). Compiled on first use, cached for the network's lifetime;
  /// safe to call from multiple threads. The reference stays valid as long
  /// as the network (plans are cached in node-stable storage).
  ///
  /// `levels` caps the residual depth M the plan evaluates: a network
  /// trained at M = 3 serves at M = 1 or 2 by simply dropping the higher
  /// planes and their threshold banks (level m never depends on levels
  /// above it). 0 -- and any cap at or above max_levels() -- means "all
  /// trained levels" and normalizes to the same cache entry.
  const ExecutionPlan& plan_for(const tensor::Shape& input,
                                std::int64_t levels = 0) const;

  /// Deepest residual binarization among the stages (1 for classic BNNs).
  std::int64_t max_levels() const;

  /// Argmax class per sample.
  std::vector<std::int64_t> predict(const tensor::Tensor& input) const;

  /// The [H, W, C] input shape this topology accepts, inferred by walking
  /// the stage list (spatial size is solved backwards from the flatten /
  /// first-dense boundary). Empty shape when the stage list is not an
  /// image-in, dense-out topology.
  tensor::Shape expected_input_shape() const;

  const std::vector<Stage>& stages() const { return stages_; }
  const std::string& name() const { return name_; }

  /// Total weight storage in bits when deployed (binary weights plus
  /// 24-bit threshold words per output channel, FINN-style accounting).
  std::int64_t weight_bits() const;

 private:
  struct PlanCache;

  std::string name_;
  std::vector<Stage> stages_;
  // Not `mutable` anymore: const methods mutate the *pointee* (which has
  // its own mutex discipline), never the pointer. The only writes to the
  // pointer itself are construction and assignment.
  std::unique_ptr<PlanCache> cache_;
};

}  // namespace bcop::xnor
