// Fast CPU inference engine for folded BinaryCoP networks.
//
// fold() compiles a trained nn::Sequential (the BinaryConv/BatchNorm/Sign
// pipeline of Table I) into a stage list that evaluates with integer
// arithmetic only:
//   - FirstConv: 8-bit fixed-point pixels x binary weights, integer
//     accumulators, folded thresholds (FINN treats the input layer the same
//     way [7], [27]).
//   - BinConv / BinDense: XNOR + popcount GEMM on bit-packed operands,
//     folded thresholds; the final BinDense has no threshold and its raw
//     accumulators are the logits.
//   - Pool: 2x2 max pool, which on {-1,+1} is the boolean OR of the paper.
// Activations flow between stages as {-1,+1} float tensors for layout
// convenience; every value is exactly representable so all arithmetic is
// still integer-exact. The deploy::StreamingPipeline consumes the same
// stage list and must match this engine bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "nn/sequential.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/tensor.hpp"
#include "xnor/folding.hpp"

namespace bcop::xnor {

/// First layer: quantized-input convolution with binary weights.
struct FirstConvStage {
  std::int64_t k = 0, ci = 0, co = 0;
  tensor::Tensor weights;  // {-1,+1} floats, [K*K*Ci, Co]
  ThresholdSpec thresholds;
};

/// Hidden binary convolution evaluated as XNOR-popcount GEMM.
struct BinConvStage {
  std::int64_t k = 0, ci = 0, co = 0;
  tensor::BitMatrix weights;  // [Co, K*K*Ci] packed rows
  ThresholdSpec thresholds;
};

/// 2x2 stride-2 max pool == boolean OR on the bit encoding.
struct PoolStage {};

/// Marks the NHWC -> flat transition before the fully-connected stages.
struct FlattenStage {};

/// Binary fully-connected. `has_threshold` is false for the classifier
/// layer, whose integer accumulators are the logits.
struct BinDenseStage {
  std::int64_t in = 0, out = 0;
  tensor::BitMatrix weights;  // [Out, In]
  ThresholdSpec thresholds;
  bool has_threshold = true;
};

using Stage =
    std::variant<FirstConvStage, BinConvStage, PoolStage, FlattenStage,
                 BinDenseStage>;

/// Human-readable stage kind for diagnostics and pipeline dumps.
std::string stage_kind(const Stage& s);

class XnorNetwork {
 public:
  XnorNetwork() = default;
  /// Assemble directly from stages (used by the bitstream loader).
  XnorNetwork(std::string name, std::vector<Stage> stages);

  /// Compile a trained BNN. Throws std::runtime_error with a descriptive
  /// message if the layer sequence is not a supported BNN topology.
  static XnorNetwork fold(nn::Sequential& model);

  /// Logits [N, classes] (values are exact integers). Reference path:
  /// activations are materialized as {-1,+1} float tensors between stages.
  tensor::Tensor forward(const tensor::Tensor& input) const;

  /// Batched serving path, bit-identical to forward(): after the first
  /// stage the activations stay bit-packed (pixel-major [N*H*W, C] rows),
  /// so pooling is a word-wise OR, im2row is bit-field concatenation, and
  /// no float tensor is materialized until the classifier logits. Layer
  /// work is split over parallel::ThreadPool::global() along the combined
  /// N*Ho*Wo row dimension, so throughput scales with both batch size and
  /// worker count.
  tensor::Tensor forward_batch(const tensor::Tensor& input) const;

  /// Argmax class per sample.
  std::vector<std::int64_t> predict(const tensor::Tensor& input) const;

  /// The [H, W, C] input shape this topology accepts, inferred by walking
  /// the stage list (spatial size is solved backwards from the flatten /
  /// first-dense boundary). Empty shape when the stage list is not an
  /// image-in, dense-out topology.
  tensor::Shape expected_input_shape() const;

  const std::vector<Stage>& stages() const { return stages_; }
  const std::string& name() const { return name_; }

  /// Total weight storage in bits when deployed (binary weights plus
  /// 24-bit threshold words per output channel, FINN-style accounting).
  std::int64_t weight_bits() const;

 private:
  std::string name_;
  std::vector<Stage> stages_;
};

/// Apply a folded threshold bank to integer accumulators laid out
/// [rows, channels]; writes {-1,+1} into `out`.
void apply_thresholds(const std::vector<std::int32_t>& acc,
                      std::int64_t rows, const ThresholdSpec& spec,
                      float* out);

/// Same threshold bank, but packing the fired bits straight into a fresh
/// [rows, channels] BitMatrix (bit 1 == +1) -- the batched path's way of
/// staying in the bit domain between stages.
void apply_thresholds_packed(const std::vector<std::int32_t>& acc,
                             std::int64_t rows, const ThresholdSpec& spec,
                             tensor::BitMatrix& out);

}  // namespace bcop::xnor
