// Residual-binarization interpreter steps. ALLOCATION-FREE ZONE: same
// contract as exec.cpp -- no Tensor/BitMatrix/std::vector construction, no
// new/malloc; buffers are Workspace arena slices at plan-frozen offsets,
// scratch is fixed-size stack tiles, fan-out is ThreadPool::for_chunks.
// Enforced by lint rule R6 and scripts/audit_hot_path.py, measured by
// tests/test_zero_alloc.cpp (M > 1 plans included).
#include "xnor/exec_residual.hpp"

#include <algorithm>
#include <cstdint>

#include "parallel/thread_pool.hpp"
#include "tensor/bit_span.hpp"
#include "tensor/kernels/kernel_api.hpp"
#include "util/check.hpp"

namespace bcop::xnor::detail {

using parallel::ThreadPool;
using tensor::BitSpan;
using tensor::ConstBitSpan;

namespace {

// ---- Scaled accumulate: acc (+)= g * acc2, chunked over the int32
// accumulator length. `first` overwrites so the arena needs no zeroing. ----

struct ScaleAccCtx {
  std::int32_t* acc;
  const std::int32_t* acc2;
  std::int32_t g;
  std::int32_t first;
};

void scale_acc_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const ScaleAccCtx& t = *static_cast<const ScaleAccCtx*>(raw);
  std::int32_t* acc = t.acc;
  const std::int32_t* acc2 = t.acc2;
  const std::int32_t g = t.g;
  if (t.first) {
#pragma omp simd
    for (std::int64_t i = lo; i < hi; ++i) acc[i] = g * acc2[i];
  } else {
#pragma omp simd
    for (std::int64_t i = lo; i < hi; ++i) acc[i] += g * acc2[i];
  }
}

// ---- Pattern-bank threshold firing: int32 accumulators -> levels_out
// packed planes. Chunks range over output rows. ----

struct ResidualFireCtx {
  const std::int32_t* acc;
  const std::int32_t* thr[7];  // bank b = (1 << m) - 1 + pattern
  const std::int32_t* inv[7];
  std::uint64_t* dst;  // plane-0 base
  std::int64_t cols, wpr, plane_words, levels;
};

void residual_fire_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const ResidualFireCtx& t = *static_cast<const ResidualFireCtx*>(raw);
  const std::int64_t cols = t.cols, wpr = t.wpr, levels = t.levels;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int32_t* arow = t.acc + r * cols;
    for (std::int64_t wd = 0; wd < wpr; ++wd) {
      const std::int64_t nb = std::min<std::int64_t>(64, cols - wd * 64);
      std::uint64_t bits[3] = {0, 0, 0};
      for (std::int64_t i = 0; i < nb; ++i) {
        const std::int64_t ch = wd * 64 + i;
        const std::int32_t a = arow[ch];
        std::uint32_t pat = 0;
        for (std::int64_t m = 0; m < levels; ++m) {
          const std::int64_t bank = (std::int64_t{1} << m) - 1 + pat;
          const std::uint32_t b =
              static_cast<std::uint32_t>(a >= t.thr[bank][ch]) ^
              static_cast<std::uint32_t>(t.inv[bank][ch]);
          bits[m] |= static_cast<std::uint64_t>(b) << i;
          pat |= b << m;
        }
      }
      // Full-word stores: slack bits beyond `cols` come out zero, keeping
      // the trailing-bits invariant on reused arena rows.
      for (std::int64_t m = 0; m < levels; ++m)
        t.dst[m * t.plane_words + r * wpr + wd] = bits[m];
    }
  }
}

// ---- First-conv integer accumulation (generic channel width). Mirrors
// exec.cpp's first_conv_rows_any 256-lane tiling, but stores the int32
// accumulators instead of firing -- residual firing needs them all. ----

struct FirstConvAccCtx {
  const float* q;    // quantized pixel codes, NHWC
  const float* wts;  // {-1,+1} weights, [K*K*Ci, Co]
  std::int64_t h, w, c, k, co, ho, wo;
  std::int32_t* acc;
};

void first_conv_acc_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const FirstConvAccCtx& t = *static_cast<const FirstConvAccCtx*>(raw);
  const float* q = t.q;
  const float* wts = t.wts;
  const std::int64_t h = t.h, w = t.w, c = t.c, ho = t.ho, wo = t.wo;
  const std::int64_t k = t.k, co = t.co, kc = k * c;
  constexpr std::int64_t kTile = 256;
  float acc[kTile];
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    std::int32_t* out = t.acc + r * co;
    for (std::int64_t c0 = 0; c0 < co; c0 += kTile) {
      const std::int64_t cn = std::min(kTile, co - c0);
#pragma omp simd
      for (std::int64_t j = 0; j < cn; ++j) acc[j] = 0.f;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const float* p = q + (((img * h) + y + ky) * w + x) * c;
        const float* wrow = wts + ky * kc * co + c0;
        for (std::int64_t i = 0; i < kc; ++i) {
          const float a = p[i];
          const float* wr = wrow + i * co;
#pragma omp simd
          for (std::int64_t j = 0; j < cn; ++j) acc[j] += a * wr[j];
        }
      }
#pragma omp simd
      for (std::int64_t j = 0; j < cn; ++j)
        out[c0 + j] = static_cast<std::int32_t>(acc[j]);
    }
  }
}

// ---- Lexicographic masked-OR pool. Chunks range over output pixel rows
// (same geometry as tensor::pool2_bits). ----

struct ResidualPoolCtx {
  const std::uint64_t* src;  // plane-0 base
  std::uint64_t* dst;        // plane-0 base
  std::int64_t h, w, ho, wo, wpr, in_plane, out_plane, levels;
};

void residual_pool_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const ResidualPoolCtx& t = *static_cast<const ResidualPoolCtx*>(raw);
  const std::int64_t w = t.w, ho = t.ho, wo = t.wo, wpr = t.wpr;
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t yy = rem / wo, xx = rem - yy * wo;
    const std::int64_t base = (((img * t.h) + 2 * yy) * w + 2 * xx) * wpr;
    const std::uint64_t* pa = t.src + base;
    const std::uint64_t* pb = pa + wpr;
    const std::uint64_t* pc = pa + w * wpr;
    const std::uint64_t* pd = pc + wpr;
    std::uint64_t* out = t.dst + r * wpr;
    for (std::int64_t wd = 0; wd < wpr; ++wd) {
      // Plane 0: the max of {-1,+1} values is the boolean OR, exactly the
      // classic pool. Deeper planes only matter where candidates tie.
      const std::uint64_t a0 = pa[wd], b0 = pb[wd], c0 = pc[wd], d0 = pd[wd];
      std::uint64_t o = a0 | b0 | c0 | d0;
      out[wd] = o;
      // A candidate stays "maximal so far" while its bit matches the
      // output bit on every level seen; dominance of the dyadic scale
      // grid (g_m > sum of deeper scales) makes lexicographic order the
      // value order. Slack bits are zero in every candidate, so the
      // output slack stays zero through every level.
      std::uint64_t ma = ~(a0 ^ o), mb = ~(b0 ^ o);
      std::uint64_t mc = ~(c0 ^ o), md = ~(d0 ^ o);
      for (std::int64_t m = 1; m < t.levels; ++m) {
        const std::int64_t off = m * t.in_plane + wd;
        const std::uint64_t am = pa[off], bm = pb[off];
        const std::uint64_t cm = pc[off], dm = pd[off];
        o = (am & ma) | (bm & mb) | (cm & mc) | (dm & md);
        t.dst[m * t.out_plane + r * wpr + wd] = o;
        ma &= ~(am ^ o);
        mb &= ~(bm ^ o);
        mc &= ~(cm ^ o);
        md &= ~(dm ^ o);
      }
    }
  }
}

}  // namespace

void residual_gemm(const ExecutionPlan& plan, const PlanStep& st,
                   const std::uint64_t* src, std::uint64_t* patch,
                   std::int32_t* acc, std::int32_t* acc2) {
  const bool conv = st.kind == StepKind::kBinConv;
  const std::uint64_t* bt = plan.wmat(st.wmat);
  const std::int64_t plane_words = st.in_rows * st.in_wpr;
  const std::int64_t passes = st.in_scaled ? st.levels_in : 1;
  std::int32_t* target = st.in_scaled ? acc2 : acc;
  for (std::int64_t m = 0; m < passes; ++m) {
    ConstBitSpan a{src + m * plane_words, st.in_rows, st.in_cols, st.in_wpr};
    if (conv) {
      BitSpan rows{patch, st.patch_rows, st.patch_cols, st.patch_wpr};
      tensor::kernels::Im2RowCtx ictx{a,    rows, st.h,  st.w,
                                      st.c, st.k, st.ho, st.wo};
      ThreadPool::global().for_chunks(0, rows.rows, st.im2row_fn, &ictx);
      a = ConstBitSpan{patch, st.patch_rows, st.patch_cols, st.patch_wpr};
    }
    tensor::kernels::GemmCtx gctx{a, bt, st.co, target};
    ThreadPool::global().for_chunks(0, a.rows, st.gemm_fn, &gctx);
    if (st.in_scaled) {
      ScaleAccCtx sctx{acc, acc2, st.in_scale_bits[m], m == 0 ? 1 : 0};
      ThreadPool::global().for_chunks(0, st.acc_len, &scale_acc_chunk, &sctx);
    }
  }
}

void residual_fire(const ExecutionPlan& plan, const PlanStep& st,
                   const std::int32_t* acc, std::uint64_t* dst) {
  BCOP_CHECK(st.levels_out >= 1 && st.levels_out <= 3,
             "residual_fire: levels_out %lld out of [1, 3]",
             static_cast<long long>(st.levels_out));
  ResidualFireCtx ctx;
  ctx.acc = acc;
  const std::int64_t banks = (std::int64_t{1} << st.levels_out) - 1;
  for (std::int64_t b = 0; b < banks; ++b) {
    const PreparedThresholds& p = plan.prep(st.prep + b);
    ctx.thr[b] = p.thr.data();
    ctx.inv[b] = p.inv.data();
  }
  for (std::int64_t b = banks; b < 7; ++b) ctx.thr[b] = ctx.inv[b] = nullptr;
  ctx.dst = dst;
  ctx.cols = st.out_cols;
  ctx.wpr = st.out_wpr;
  ctx.plane_words = st.out_rows * st.out_wpr;
  ctx.levels = st.levels_out;
  ThreadPool::global().for_chunks(0, st.out_rows, &residual_fire_chunk, &ctx);
}

void residual_first_conv(const PlanStep& st, const FirstConvStage& fc,
                         const float* q, std::int32_t* acc) {
  FirstConvAccCtx ctx{q,    fc.weights.data(), st.h,  st.w, st.c,
                      st.k, fc.co,             st.ho, st.wo, acc};
  ThreadPool::global().for_chunks(0, st.out_rows, &first_conv_acc_chunk,
                                  &ctx);
}

void residual_pool(const PlanStep& st, const std::uint64_t* src,
                   std::uint64_t* dst) {
  ResidualPoolCtx ctx{src,
                      dst,
                      st.h,
                      st.w,
                      st.ho,
                      st.wo,
                      st.in_wpr,
                      st.in_rows * st.in_wpr,
                      st.out_rows * st.out_wpr,
                      st.levels_in};
  ThreadPool::global().for_chunks(0, st.out_rows, &residual_pool_chunk, &ctx);
}

}  // namespace bcop::xnor::detail
