#include "xnor/plan.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "tensor/bit_span.hpp"
#include "tensor/im2row.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "xnor/engine.hpp"
#include "xnor/exec.hpp"

#if BCOP_OBS
#include "obs/stage_profiler.hpp"
#endif

namespace bcop::xnor {

using tensor::Shape;
using tensor::words_for_bits;

namespace {

std::size_t align64(std::size_t x) { return (x + 63) & ~std::size_t{63}; }

std::size_t bits_bytes(std::int64_t rows, std::int64_t cols) {
  return static_cast<std::size_t>(rows * words_for_bits(cols)) *
         sizeof(std::uint64_t);
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("ExecutionPlan::compile: " + msg);
}

}  // namespace

ExecutionPlan ExecutionPlan::compile(const XnorNetwork& net,
                                     const Shape& input,
                                     std::int64_t levels) {
  ExecutionPlan plan;
  plan.input_ = input;
  plan.levels_ = levels;
  const std::vector<Stage>& stages = net.stages();
  if (stages.empty()) fail("empty stage list");
  if (input.rank() < 2 || input[0] < 1)
    fail("input must be batched ([N, ...] with N >= 1), got " + input.str());
  if (levels < 0 || levels > 3)
    fail("residual level cap must be in [0, 3], got " +
         std::to_string(levels));

  std::size_t half_bytes[2] = {0, 0};
  std::size_t patch_bytes = 0, acc_bytes = 0, acc2_bytes = 0, float_bytes = 0;
  const std::int64_t n = input[0];
  std::int64_t h = 0, w = 0, c = 0;
  bool flat = false;      // post-flatten rank-2 semantics
  bool terminal = false;  // a Logits step has been emitted
  int cur = 0;            // ping-pong half holding the live activations
  // The live activation stream's residual shape: plane count, and the
  // per-plane scale bits when the producer was a ResidualSign (classic
  // sign streams stay unscaled). Updated by every plane-producing step.
  std::int64_t cur_levels = 1;
  bool cur_scaled = false;
  std::int32_t cur_bits[3] = {0, 0, 0};

  auto add_prep = [&](const ThresholdSpec& spec) {
    plan.preps_.emplace_back(spec);
    return static_cast<std::int64_t>(plan.preps_.size()) - 1;
  };
  // Push the bank range of a residual stage's output: bank 0 from the
  // stage's `thresholds`, then the first 2^Lo - 2 extra banks -- a strict
  // prefix of the (level, pattern) layout, so a truncated plan reuses the
  // trained banks untouched. Returns the base index (the PlanStep's
  // `prep`); the effective output depth Lo is min(trained, cap).
  auto add_prep_banks = [&](const ThresholdSpec& bank0,
                            const ResidualSpec& spec, std::size_t stage_idx,
                            std::int64_t& levels_out) {
    levels_out = spec.levels;
    if (levels > 0) levels_out = std::min(levels_out, levels);
    if (spec.levels > 1 &&
        static_cast<std::int64_t>(spec.extra_banks.size()) !=
            (std::int64_t{1} << spec.levels) - 2)
      fail("stage " + std::to_string(stage_idx) + " has " +
           std::to_string(spec.extra_banks.size()) +
           " extra threshold banks, expected " +
           std::to_string((std::int64_t{1} << spec.levels) - 2));
    if (spec.scaled() &&
        static_cast<std::int64_t>(spec.scale_bits.size()) != spec.levels)
      fail("stage " + std::to_string(stage_idx) +
           " scale-bit arity does not match its level count");
    const std::int64_t base = add_prep(bank0);
    for (std::int64_t b = 0; b < (std::int64_t{1} << levels_out) - 2; ++b)
      add_prep(spec.extra_banks[static_cast<std::size_t>(b)]);
    return base;
  };
  // Record `spec` as the producer of the live stream (post-truncation).
  auto set_stream = [&](const ResidualSpec& spec, std::int64_t levels_out) {
    cur_levels = levels_out;
    cur_scaled = spec.scaled();
    for (std::int64_t m = 0; m < 3; ++m)
      cur_bits[m] = m < levels_out && cur_scaled
                        ? spec.scale_bits[static_cast<std::size_t>(m)]
                        : 0;
  };
  // Stamp the live stream onto a step's input-side residual fields.
  auto stamp_input = [&](PlanStep& st) {
    st.levels_in = cur_levels;
    st.in_scaled = cur_scaled;
    for (std::int64_t m = 0; m < 3; ++m) st.in_scale_bits[m] = cur_bits[m];
  };
  auto add_wmat = [&](const tensor::BitMatrix& wm) {
    std::vector<std::uint64_t> bt(
        static_cast<std::size_t>(wm.rows() * wm.words_per_row()));
    tensor::transpose_word_major(tensor::span_of(wm), bt.data());
    plan.wmats_.push_back(std::move(bt));
    return static_cast<std::int64_t>(plan.wmats_.size()) - 1;
  };
  // Resolve the dispatch tier ONCE per compile and freeze its kernel
  // pointers into every step -- the interpreter replays them with no tier
  // branch, and a plan never mixes tiers even if the override flips
  // between compiles.
  const tensor::kernels::KernelTable& kt = tensor::kernels::active_table();
  plan.kernel_level_ = kt.level;

  auto emit = [&](PlanStep st) {
    st.gemm_fn = kt.gemm;
    st.thresh_fn = kt.thresh;
    st.im2row_fn = kt.im2row;
    if (st.dst_half >= 0)
      half_bytes[st.dst_half] = std::max(
          half_bytes[st.dst_half],
          bits_bytes(st.out_rows, st.out_cols) *
              static_cast<std::size_t>(st.levels_out));
    if (st.acc_len > 0) {
      acc_bytes = std::max(
          acc_bytes, static_cast<std::size_t>(st.acc_len) * sizeof(std::int32_t));
      // Scaled inputs run one GEMM pass per plane into acc2 before the
      // scaled accumulate into acc.
      if (st.in_scaled)
        acc2_bytes = std::max(acc2_bytes, static_cast<std::size_t>(st.acc_len) *
                                              sizeof(std::int32_t));
    }
    plan.steps_.push_back(st);
  };
  // Bit-domain Flatten: one flat row per image (per plane). Emitted for
  // the explicit FlattenStage and implicitly before a dense layer fed by
  // pixel rows (the float path's pack_matrix reshape).
  auto emit_flatten = [&]() {
    PlanStep st;
    st.kind = StepKind::kFlatten;
    st.n = n;
    st.h = h;
    st.w = w;
    st.c = c;
    st.in_rows = n * h * w;
    st.in_cols = c;
    st.in_wpr = words_for_bits(c);
    st.out_rows = n;
    st.out_cols = h * w * c;
    st.out_wpr = words_for_bits(st.out_cols);
    st.src_half = cur;
    st.dst_half = 1 - cur;
    stamp_input(st);
    st.levels_out = cur_levels;  // planes pass through, flattened
    emit(st);
    cur = 1 - cur;
    c = h * w * c;
    h = w = 1;
    flat = true;
  };

  // --- Entry: bring the caller's float tensor into the bit domain. ---
  std::size_t i0 = 0;
  if (const auto* fc = std::get_if<FirstConvStage>(&stages[0])) {
    if (input.rank() != 4)
      fail("FirstConv entry needs [N, H, W, C] input, got " + input.str());
    if (input[3] != fc->ci)
      fail("input has " + std::to_string(input[3]) + " channels, FirstConv expects " +
           std::to_string(fc->ci));
    h = input[1];
    w = input[2];
    c = input[3];
    const std::int64_t ho = tensor::conv_out_dim(h, fc->k);
    const std::int64_t wo = tensor::conv_out_dim(w, fc->k);
    if (ho <= 0 || wo <= 0) fail("FirstConv kernel larger than input");
    PlanStep st;
    st.kind = StepKind::kFirstConv;
    st.stage = 0;
    st.prep = add_prep_banks(fc->thresholds, fc->residual, 0, st.levels_out);
    st.k = fc->k;
    st.n = n;
    st.h = h;
    st.w = w;
    st.c = c;
    st.ho = ho;
    st.wo = wo;
    st.co = fc->co;
    st.out_rows = n * ho * wo;
    st.out_cols = fc->co;
    st.out_wpr = words_for_bits(fc->co);
    st.dst_half = 0;
    // The classic first conv fires thresholds inside its fused kernel; a
    // residual one materializes integer accumulators first so the shared
    // pattern-bank firing can run over them.
    if (st.levels_out > 1) st.acc_len = st.out_rows * fc->co;
    float_bytes = static_cast<std::size_t>(input.numel()) * sizeof(float);
    emit(st);
    set_stream(fc->residual, st.levels_out);
    plan.stage_shapes_.push_back({h, w, c, ho, wo, fc->co});
    h = ho;
    w = wo;
    c = fc->co;
    i0 = 1;
  } else {
    PlanStep st;
    st.kind = StepKind::kPackInput;
    if (std::get_if<BinConvStage>(&stages[0])) {
      if (input.rank() != 4)
        fail("conv entry needs [N, H, W, C] input, got " + input.str());
      h = input[1];
      w = input[2];
      c = input[3];
      st.out_rows = n * h * w;
      st.out_cols = c;
    } else if (std::get_if<BinDenseStage>(&stages[0])) {
      h = w = 1;
      c = input.numel() / n;
      flat = true;
      st.out_rows = n;
      st.out_cols = c;
    } else {
      fail("leading " + stage_kind(stages[0]) +
           " stage is unsupported -- stage lists must start with a conv or "
           "dense layer");
    }
    st.n = n;
    st.h = h;
    st.w = w;
    st.c = c;
    st.out_wpr = words_for_bits(st.out_cols);
    st.dst_half = 0;
    emit(st);
  }

  // --- Bit-domain body. ---
  for (std::size_t i = i0; i < stages.size(); ++i) {
    const Stage& stage = stages[i];
    if (terminal)
      fail("stage " + std::to_string(i) + " (" + stage_kind(stage) +
           ") after the classifier layer");
    StageShape ss{h, w, c, h, w, c};
    if (std::get_if<FirstConvStage>(&stage)) {
      fail("FirstConv after a binary stage is unsupported");
    } else if (const auto* cv = std::get_if<BinConvStage>(&stage)) {
      if (flat) fail("conv after flatten is unsupported");
      if (c != cv->ci)
        fail("conv stage " + std::to_string(i) + " expects " +
             std::to_string(cv->ci) + " input channels, got " +
             std::to_string(c));
      const std::int64_t ho = tensor::conv_out_dim(h, cv->k);
      const std::int64_t wo = tensor::conv_out_dim(w, cv->k);
      if (ho <= 0 || wo <= 0) fail("conv kernel larger than input");
      PlanStep st;
      st.kind = StepKind::kBinConv;
      st.stage = static_cast<std::int64_t>(i);
      st.prep = add_prep_banks(cv->thresholds, cv->residual, i, st.levels_out);
      st.wmat = add_wmat(cv->weights);
      stamp_input(st);
      st.k = cv->k;
      st.n = n;
      st.h = h;
      st.w = w;
      st.c = c;
      st.ho = ho;
      st.wo = wo;
      st.co = cv->co;
      st.in_rows = n * h * w;
      st.in_cols = c;
      st.in_wpr = words_for_bits(c);
      st.patch_rows = n * ho * wo;
      st.patch_cols = cv->k * cv->k * c;
      st.patch_wpr = words_for_bits(st.patch_cols);
      st.out_rows = n * ho * wo;
      st.out_cols = cv->co;
      st.out_wpr = words_for_bits(cv->co);
      st.acc_len = st.out_rows * cv->co;
      st.src_half = cur;
      st.dst_half = 1 - cur;
      patch_bytes = std::max(patch_bytes,
                             bits_bytes(st.patch_rows, st.patch_cols));
      emit(st);
      set_stream(cv->residual, st.levels_out);
      cur = 1 - cur;
      h = ho;
      w = wo;
      c = cv->co;
    } else if (std::get_if<PoolStage>(&stage)) {
      if (flat) fail("pool after flatten is unsupported");
      PlanStep st;
      st.kind = StepKind::kPool;
      st.n = n;
      st.h = h;
      st.w = w;
      st.c = c;
      st.ho = h / 2;
      st.wo = w / 2;
      st.co = c;
      st.in_rows = n * h * w;
      st.in_cols = c;
      st.in_wpr = words_for_bits(c);
      st.out_rows = n * st.ho * st.wo;
      st.out_cols = c;
      st.out_wpr = words_for_bits(c);
      st.src_half = cur;
      st.dst_half = 1 - cur;
      stamp_input(st);
      st.levels_out = cur_levels;  // planes pass through the pool
      emit(st);
      cur = 1 - cur;
      h /= 2;
      w /= 2;
    } else if (std::get_if<FlattenStage>(&stage)) {
      if (h * w != 1) {
        emit_flatten();
      } else {
        // Pixel rows [N*1*1, C] are already flat rows [N, C]: metadata only.
        c = h * w * c;
        h = w = 1;
        flat = true;
      }
    } else if (const auto* d = std::get_if<BinDenseStage>(&stage)) {
      if (h * w != 1) emit_flatten();
      if (c != d->in)
        fail("dense stage " + std::to_string(i) + " expects " +
             std::to_string(d->in) + " input features, got " +
             std::to_string(c));
      PlanStep st;
      st.kind = d->has_threshold ? StepKind::kBinDense : StepKind::kLogits;
      st.stage = static_cast<std::int64_t>(i);
      st.wmat = add_wmat(d->weights);
      st.n = n;
      st.h = st.w = 1;
      st.c = c;
      st.co = d->out;
      st.in_rows = n;
      st.in_cols = d->in;
      st.in_wpr = words_for_bits(d->in);
      st.acc_len = n * d->out;
      st.src_half = cur;
      stamp_input(st);
      if (d->has_threshold) {
        st.prep = add_prep_banks(d->thresholds, d->residual, i, st.levels_out);
        st.out_rows = n;
        st.out_cols = d->out;
        st.out_wpr = words_for_bits(d->out);
        st.dst_half = 1 - cur;
        emit(st);
        set_stream(d->residual, st.levels_out);
        cur = 1 - cur;
      } else {
        // Residual classifier inputs make the integer logits A = 256 * y;
        // the interpreter rescales (exactly: A is far below 2^24).
        if (st.in_scaled) st.out_scale = 1.f / 256.f;
        emit(st);  // dst_half = -1: logits land in the caller's output
        plan.output_ = Shape{n, d->out};
        terminal = true;
      }
      h = w = 1;
      c = d->out;
      flat = true;
    }
    ss.h_out = h;
    ss.w_out = w;
    ss.c_out = c;
    plan.stage_shapes_.push_back(ss);
  }

  if (!terminal) {
    // Partial network (no classifier): surface the {-1,+1} state as floats
    // in the shape the stage list implies.
    PlanStep st;
    st.kind = StepKind::kUnpack;
    st.n = n;
    st.h = h;
    st.w = w;
    st.c = c;
    st.in_rows = flat ? n : n * h * w;
    st.in_cols = flat ? c : c;
    st.in_wpr = words_for_bits(c);
    st.src_half = cur;
    stamp_input(st);
    emit(st);
    plan.output_ = flat ? Shape{n, c} : Shape{n, h, w, c};
  }

  // --- Freeze the arena layout: [half A | half B | patch | acc | acc2 |
  // floats], each region 64-byte aligned so rows start on cache lines.
  // Classic plans have acc2_bytes == 0, leaving their layout (and
  // arena_bytes) byte-identical to the pre-residual engine. ---
  std::size_t off = 0;
  plan.off_half_[0] = off;
  off += align64(half_bytes[0]);
  plan.off_half_[1] = off;
  off += align64(half_bytes[1]);
  plan.off_patch_ = off;
  off += align64(patch_bytes);
  plan.off_acc_ = off;
  off += align64(acc_bytes);
  plan.off_acc2_ = off;
  off += align64(acc2_bytes);
  plan.off_floats_ = off;
  off += align64(float_bytes);
  plan.arena_bytes_ = off;

#if BCOP_OBS
  // Resolve the telemetry slots for this plan shape once, here on the
  // allocating compile path, so the interpreter only dereferences.
  {
    std::string key = "b" + std::to_string(n) + "_in";
    for (int d = 1; d < input.rank(); ++d) {
      if (d > 1) key += "x";
      key += std::to_string(input[d]);
    }
    // Truncated residual plans profile separately from the full-depth plan
    // of the same shape -- their per-stage costs differ by design.
    if (levels > 0) key += "_l" + std::to_string(levels);
    plan.obs_slots_ = obs::StageProfiler::global().slots_for(
        key, detail::kObsSlotNames, detail::kObsSlotCount);
  }
#endif
  return plan;
}

void Workspace::prepare(const ExecutionPlan& plan) {
  const std::size_t need = plan.arena_bytes();
  if (need <= capacity_) return;
  constexpr std::size_t kAlign = 64;
  raw_ = std::make_unique<std::byte[]>(need + kAlign - 1);
  void* p = raw_.get();
  std::size_t space = need + kAlign - 1;
  base_ = static_cast<std::byte*>(std::align(kAlign, need, p, space));
  capacity_ = need;
}

}  // namespace bcop::xnor
