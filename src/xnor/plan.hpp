// Compile/execute split for the XNOR inference engine (FINN-style).
//
// FINN gets its throughput by compiling the topology into a fixed dataflow
// with statically sized inter-stage buffers; ExecutionPlan is the CPU
// analogue. compile() walks the folded stage list once per (input shape)
// and freezes everything the hot loop would otherwise recompute or
// reallocate: per-step output geometry, packed-row layouts, accumulator
// lengths, branch-free threshold banks (PreparedThresholds), word-major
// pre-transposed weight matrices, and byte offsets into a single ping-pong
// arena. Workspace owns that arena -- aligned, grow-only, reusable across
// calls and across plans -- so steady-state inference performs zero heap
// allocations (tests/test_zero_alloc.cpp measures this; lint rule R6 keeps
// allocation out of the interpreter in src/xnor/exec.cpp).
//
// Lifetime: a plan borrows the network it was compiled from (weight
// matrices of FirstConv stages are read through stage indices), so the
// XnorNetwork must outlive the plan. XnorNetwork::plan_for() ties the two
// together by caching plans inside the network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/kernels/kernel_api.hpp"
#include "tensor/shape.hpp"
#include "xnor/folding.hpp"

// Per-plan telemetry block, resolved at compile() (obs/stage_profiler.hpp).
namespace bcop::obs { struct StageSlots; }

namespace bcop::xnor {

class XnorNetwork;

/// What one interpreter step does. Steps are not 1:1 with stages: the
/// float/bit entry is explicit (FirstConv or PackInput), implicit flattens
/// before dense layers become real Flatten steps, and partial networks end
/// with an Unpack step.
enum class StepKind : std::uint8_t {
  kFirstConv,  // quantize + conv + threshold -> packed bits (entry only)
  kPackInput,  // pack float activations by sign (entry only)
  kBinConv,    // bit im2row -> XNOR GEMM -> thresholds
  kPool,       // 2x2 boolean-OR pool
  kFlatten,    // pixel bit-fields -> one flat row per image
  kBinDense,   // XNOR GEMM -> thresholds
  kLogits,     // XNOR GEMM -> float logits (terminal)
  kUnpack,     // packed bits -> {-1,+1} floats (terminal, partial nets)
};

/// One interpreter step with its frozen geometry. `src_half`/`dst_half`
/// name the ping-pong arena halves (-1 = the caller's float input/output);
/// the byte offsets of the halves and scratch regions live on the plan.
struct PlanStep {
  StepKind kind;
  std::int64_t stage = -1;  // index into XnorNetwork::stages(), -1 if none
  std::int64_t prep = -1;   // index into plan-owned PreparedThresholds
  std::int64_t wmat = -1;   // index into plan-owned pre-transposed weights
  std::int64_t k = 0;       // conv kernel size
  std::int64_t n = 0, h = 0, w = 0, c = 0;  // input pixel geometry
  std::int64_t ho = 0, wo = 0, co = 0;      // output pixel geometry
  // Packed-row spans (rows x cols bits, wpr words per row):
  std::int64_t in_rows = 0, in_cols = 0, in_wpr = 0;
  std::int64_t out_rows = 0, out_cols = 0, out_wpr = 0;
  std::int64_t patch_rows = 0, patch_cols = 0, patch_wpr = 0;
  std::int64_t acc_len = 0;  // int32 accumulator length (GEMM steps)
  int src_half = -1, dst_half = -1;
  // Residual binarization (docs/residual-binarization.md). Plane m of a
  // multi-level activation lives at word offset m * rows * wpr inside its
  // arena half. A scaled input stream (in_scaled) makes the GEMM steps
  // accumulate A = sum_m in_scale_bits[m] * acc_m via the acc2 scratch
  // region; levels_out > 1 fires the (1 << levels_out) - 1 consecutive
  // threshold banks starting at `prep` (bank 0 = level 0; level m bank
  // under sign pattern p at prep + (1 << m) - 1 + p). All defaults
  // reproduce the classic single-level path byte for byte.
  std::int64_t levels_in = 1, levels_out = 1;
  std::int32_t in_scale_bits[3] = {0, 0, 0};
  bool in_scaled = false;
  float out_scale = 1.f;  // kLogits value scale (1/256 for scaled inputs)
  // Kernel chunk functions frozen at compile time from the dispatch tier
  // that was active then (tensor/kernels/dispatch.hpp). The interpreter
  // replays these pointers directly -- no per-call tier branch, and an
  // override flipped after compile cannot skew a plan mid-flight.
  tensor::kernels::KernelFn gemm_fn = nullptr;
  tensor::kernels::KernelFn thresh_fn = nullptr;
  tensor::kernels::KernelFn im2row_fn = nullptr;
};

/// Per-*stage* shape metadata (aligned with XnorNetwork::stages()), for
/// consumers that walk the stage list -- deploy::StreamingPipeline reads
/// these instead of re-deriving activation geometry while executing.
struct StageShape {
  std::int64_t h_in = 0, w_in = 0, c_in = 0;
  std::int64_t h_out = 0, w_out = 0, c_out = 0;
};

class Workspace;

class ExecutionPlan {
 public:
  ExecutionPlan() = default;

  /// Freeze the dataflow of `net` for inputs of shape `input` (batch is
  /// input[0]). Throws std::runtime_error with a descriptive message for
  /// stage lists the interpreter does not support (e.g. float-domain
  /// Pool/Flatten before the first binary stage, or stages after the
  /// classifier). `net` must outlive the returned plan.
  ///
  /// `levels` caps the residual binarization depth M laid out by the
  /// plan: 0 keeps every trained level, 1..3 truncate deeper stages to M
  /// planes and the first 2^M - 1 threshold banks (valid because level
  /// m's banks never depend on levels above m). Classic networks ignore
  /// the cap.
  static ExecutionPlan compile(const XnorNetwork& net,
                               const tensor::Shape& input,
                               std::int64_t levels = 0);

  const tensor::Shape& input_shape() const { return input_; }
  const tensor::Shape& output_shape() const { return output_; }
  std::int64_t batch() const { return input_.rank() ? input_[0] : 0; }

  const std::vector<PlanStep>& steps() const { return steps_; }
  const std::vector<StageShape>& stage_shapes() const { return stage_shapes_; }
  const PreparedThresholds& prep(std::int64_t i) const {
    return preps_[static_cast<std::size_t>(i)];
  }
  const std::uint64_t* wmat(std::int64_t i) const {
    return wmats_[static_cast<std::size_t>(i)].data();
  }

  /// Total arena bytes a Workspace must provide, and the byte offsets of
  /// the two ping-pong halves, the im2row patch region, the int32
  /// accumulator regions and the float scratch region within it. acc2 is
  /// the per-level GEMM scratch of residual plans (zero-sized and aliased
  /// to the float offset for classic plans, which never touch it).
  std::size_t arena_bytes() const { return arena_bytes_; }
  std::size_t half_offset(int half) const {
    return off_half_[static_cast<std::size_t>(half)];
  }
  std::size_t patch_offset() const { return off_patch_; }
  std::size_t acc_offset() const { return off_acc_; }
  std::size_t acc2_offset() const { return off_acc2_; }
  std::size_t float_offset() const { return off_floats_; }

  /// The residual level cap this plan was compiled with (0 = all trained
  /// levels); part of the plan-cache key.
  std::int64_t levels() const { return levels_; }

  /// Telemetry slots resolved at compile time, keyed by this plan's input
  /// shape (see obs::StageProfiler). Null when the build disables the
  /// hooks (-DBCOP_OBS=OFF); the interpreter records nothing then.
  const obs::StageSlots* obs_slots() const { return obs_slots_; }

  /// The dispatch tier whose kernel pointers this plan froze at compile
  /// time (serving artifacts and benches report it per plan).
  tensor::kernels::KernelLevel kernel_level() const { return kernel_level_; }

 private:
  tensor::Shape input_, output_;
  std::vector<PlanStep> steps_;
  std::vector<PreparedThresholds> preps_;
  std::vector<std::vector<std::uint64_t>> wmats_;
  std::vector<StageShape> stage_shapes_;
  std::size_t arena_bytes_ = 0;
  std::size_t off_half_[2] = {0, 0};
  std::size_t off_patch_ = 0, off_acc_ = 0, off_acc2_ = 0, off_floats_ = 0;
  std::int64_t levels_ = 0;
  const obs::StageSlots* obs_slots_ = nullptr;
  tensor::kernels::KernelLevel kernel_level_ =
      tensor::kernels::KernelLevel::kScalar;
};

/// Grow-only arena backing plan execution. One workspace serves any number
/// of plans sequentially (prepare() grows capacity to the high-water mark
/// and never shrinks); give each concurrently-executing thread its own.
/// The base pointer is 64-byte aligned so arena rows sit on cache lines.
class Workspace {
 public:
  /// Ensure capacity for `plan`. Allocates only when the plan needs more
  /// than any previous one did -- the steady-state path is a no-op.
  void prepare(const ExecutionPlan& plan);

  std::byte* base() { return base_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::unique_ptr<std::byte[]> raw_;
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace bcop::xnor
