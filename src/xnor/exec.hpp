// The plan interpreter: the single stage-execution loop of the engine.
//
// detail::execute is the only code path that runs folded stages -- both
// XnorNetwork::forward and forward_batch land here (N=1 is just a plan
// with batch 1), so the single-image and batched results can never drift.
// The interpreter is allocation-free by contract: every buffer it touches
// is a slice of the caller's Workspace arena at offsets the plan froze at
// compile time. Lint rule R6 (scripts/check_invariants.py) rejects any
// allocation token in exec.cpp, and tests/test_zero_alloc.cpp measures the
// contract end to end with a global operator-new interposer.
#pragma once

#include "xnor/engine.hpp"
#include "xnor/plan.hpp"

namespace bcop::xnor::detail {

/// Run `plan` over `input` (the float tensor data the plan was compiled
/// for), writing plan.output_shape().numel() floats to `out`. `stages`
/// must be the stage list of the network the plan was compiled from, and
/// `ws` must already be prepared for the plan (ws.prepare(plan) -- the
/// allocating prologue stays with the caller by design).
void execute(const ExecutionPlan& plan, const std::vector<Stage>& stages,
             const float* input, Workspace& ws, float* out);

// Telemetry slot order shared by the registration site (plan.cpp) and the
// recording site (exec.cpp): slots 0..7 are the StepKind values in enum
// order, then the kBinConv sub-phases, then the whole-replay latency.
// Metric names become `bcop_exec_<plan-key>_<slot>_ns`.
inline constexpr const char* const kObsSlotNames[] = {
    "first_conv", "pack_input", "binary_conv", "pool",
    "flatten",    "binary_dense", "logits",    "unpack",
    "im2row",     "binary_gemm",  "thresholds", "execute"};
inline constexpr int kObsSlotCount = 12;
inline constexpr int kObsSlotIm2row = 8;
inline constexpr int kObsSlotGemm = 9;
inline constexpr int kObsSlotThresholds = 10;
inline constexpr int kObsSlotExecute = 11;

}  // namespace bcop::xnor::detail
