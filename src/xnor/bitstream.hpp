// Deployment artifact ("bitstream") serialization of a folded network.
//
// A real Binary-CoP deployment flashes the FPGA with a bitstream whose
// weight/threshold memories are initialized from the folded network; the
// edge device never sees the float training graph. This module provides
// the equivalent artifact for the simulator: a compact binary file holding
// only the bit-packed weights and integer thresholds, loadable without any
// training-side state. A CNV-sized artifact is ~200 KiB -- the on-chip
// memory budget argument of the paper in file form.
#pragma once

#include <string>

#include "xnor/engine.hpp"

namespace bcop::xnor {

/// Write the folded network to `path`. Throws on I/O failure.
void save_bitstream(const XnorNetwork& net, const std::string& path);

/// Load a folded network written by save_bitstream. Throws on malformed
/// or truncated files (tag-checked section by section).
XnorNetwork load_bitstream(const std::string& path);

}  // namespace bcop::xnor
