// Residual-binarization steps of the plan interpreter (ReBNet M > 1).
//
// exec.cpp dispatches here whenever a step's input or output activation
// carries more than one packed plane (docs/residual-binarization.md); the
// classic single-plane steps never enter this TU, so the M = 1 path stays
// byte-identical to the pre-residual interpreter. Same contract as
// exec.cpp: ALLOCATION-FREE ZONE -- every buffer is a Workspace arena
// slice at a plan-frozen offset, scratch lives in fixed-size stack tiles,
// and parallel fan-out uses ThreadPool::for_chunks. Enforced by lint rule
// R6, audited at the object level by scripts/audit_hot_path.py, and
// measured end to end by tests/test_zero_alloc.cpp.
#pragma once

#include <cstdint>

#include "xnor/engine.hpp"
#include "xnor/plan.hpp"

namespace bcop::xnor::detail {

/// Multi-pass XNOR GEMM for a kBinConv / kBinDense / kLogits step fed by a
/// residual activation: one (im2row +) GEMM pass per input plane m into
/// the acc2 scratch, scale-accumulated into `acc` as
///   acc = sum_m in_scale_bits[m] * acc2_m,
/// so acc is 256x the real-valued dot product -- exact, since every
/// partial sum is an integer far below 2^25 (PreparedThresholds::
/// kAccBound). An unscaled single-plane input (classic stream feeding a
/// residual stage) degenerates to one direct pass into `acc`; acc2 is
/// untouched then. `src` is the plane-0 base of the step's source arena
/// half; `patch` is the shared im2row scratch (conv steps only).
void residual_gemm(const ExecutionPlan& plan, const PlanStep& st,
                   const std::uint64_t* src, std::uint64_t* patch,
                   std::int32_t* acc, std::int32_t* acc2);

/// Fire the (1 << levels_out) - 1 pattern threshold banks of a residual
/// step over integer accumulators, emitting levels_out packed planes at
/// `dst` (plane m at word offset m * out_rows * out_wpr). Per channel the
/// level-m bank is selected by the sign pattern levels 0..m-1 produced:
/// bank (1 << m) - 1 + pattern, consecutive from st.prep. Full-word
/// stores keep the trailing-bits-zero invariant on reused arena rows.
void residual_fire(const ExecutionPlan& plan, const PlanStep& st,
                   const std::int32_t* acc, std::uint64_t* dst);

/// First-conv accumulation for a residual entry stage: quantized pixel
/// codes x binary weights into int32 accumulators (acc[r * co + j]),
/// WITHOUT firing -- residual_fire then runs the pattern banks over them.
/// The classic entry keeps its fused conv+threshold kernel; this split
/// exists only because M > 1 firing needs all co accumulators of a pixel
/// at once. Arithmetic is exact: codes <= 255, |acc| <= K*255 << 2^24.
void residual_first_conv(const PlanStep& st, const FirstConvStage& fc,
                         const float* q, std::int32_t* acc);

/// 2x2 stride-2 max pool over a residual activation. On a residual
/// encoding the max of four candidates is the lexicographic max of their
/// per-level sign bits (valid because the dyadic scale grid enforces
/// g_m > g_{m+1} + ... strictly, see docs/residual-binarization.md), so
/// plane 0 is the plain word-wise OR and each deeper plane ORs only the
/// candidates still tied on all earlier planes -- a carried AND-mask per
/// candidate, no per-bit branches. `src`/`dst` are plane-0 bases; plane
/// strides are in_rows * in_wpr and out_rows * out_wpr words.
void residual_pool(const PlanStep& st, const std::uint64_t* src,
                   std::uint64_t* dst);

}  // namespace bcop::xnor::detail
