// Plan interpreter. ALLOCATION-FREE ZONE: this file must not construct
// Tensor/BitMatrix/std::vector or call new/malloc -- every buffer is a
// Workspace arena slice at a plan-frozen offset, scratch lives in
// fixed-size stack tiles, and parallel fan-out uses ThreadPool::for_chunks
// (function pointer + context). Enforced by lint rule R6 and measured by
// tests/test_zero_alloc.cpp.
#include "xnor/exec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "parallel/thread_pool.hpp"
#include "tensor/bit_span.hpp"
#include "tensor/kernels/kernel_api.hpp"
#include "util/check.hpp"
#include "xnor/exec_residual.hpp"

#if BCOP_OBS
// Telemetry is allowed in this file because recording is atomics-only:
// obs::LatencyHistogram::record and obs::now_ns never lock or allocate
// (rule R7 lints the record-path header for exactly that).
#include "obs/metrics.hpp"
#include "obs/stage_profiler.hpp"
#endif

namespace bcop::xnor::detail {

using parallel::ThreadPool;
using tensor::BitSpan;
using tensor::ConstBitSpan;

namespace {

// ---- Plan-frozen kernel replay (GEMM / thresholds / im2row). ----
//
// The kernel bodies live in src/tensor/kernels/ (scalar + SIMD tiers);
// compile() froze one tier's chunk pointers into every step. Replay is a
// ctx fill plus a pool fan-out -- no tier branch, no dispatch lookup.

void run_gemm(const PlanStep& st, ConstBitSpan a, const std::uint64_t* bt,
              std::int32_t* acc) {
  tensor::kernels::GemmCtx ctx{a, bt, st.co, acc};
  ThreadPool::global().for_chunks(0, a.rows, st.gemm_fn, &ctx);
}

void fire_thresholds(const PlanStep& st, const std::int32_t* acc,
                     const PreparedThresholds& prep, BitSpan out) {
  tensor::kernels::ThreshCtx ctx{acc, prep.thr.data(), prep.inv.data(), out};
  ThreadPool::global().for_chunks(0, out.rows, st.thresh_fn, &ctx);
}

void run_im2row(const PlanStep& st, ConstBitSpan pixels, BitSpan rows) {
  // Geometry was validated when the plan was compiled, so the frozen chunk
  // function is driven directly (the tensor::bit_im2row wrapper would
  // re-check and re-resolve the dispatch tier on every replay).
  tensor::kernels::Im2RowCtx ctx{pixels, rows, st.h,  st.w,
                                 st.c,   st.k, st.ho, st.wo};
  ThreadPool::global().for_chunks(0, rows.rows, st.im2row_fn, &ctx);
}

// ---- Fused first conv: quantized pixels -> conv -> threshold -> bits. ----

struct FirstConvCtx {
  const float* q;  // quantized pixel codes, NHWC
  const FirstConvStage* st;
  const std::int32_t* thr;
  const std::int32_t* inv;
  std::int64_t h, w, c, ho, wo;
  BitSpan out;
};

/// Row kernel for the fused first-conv: accumulate output pixels' `CO`
/// channels with the accumulators held in fixed-size local arrays the
/// compiler keeps in vector registers, then fire the folded thresholds and
/// emit packed bits directly. All arithmetic is exact: pixel codes and
/// +-1 weights are integers and |acc| <= K*255 << 2^24.
///
/// Four horizontally adjacent output pixels are computed together: they
/// share every weight load, and their input patches are the same span
/// shifted by `c`, so one broadcast-FMA sweep feeds four accumulator
/// vectors. The `omp simd` hints are required -- without them GCC leaves
/// the channel loop scalar ("complicated access pattern") and the first
/// conv dominates the whole batched forward. Thresholds arrive in
/// PreparedThresholds form (thr/inv) so firing is a branch-free compare
/// the vectorizer folds into a mask; a branchy per-channel `if` here costs
/// more than the convolution itself.
template <int CO>
void first_conv_rows_fixed(const FirstConvCtx& t, std::int64_t lo,
                           std::int64_t hi) {
  static_assert(CO <= 64, "fixed kernel emits one 64-bit word per pixel");
  const float* q = t.q;
  const std::int32_t* thr = t.thr;
  const std::int32_t* inv = t.inv;
  const float* wts = t.st->weights.data();
  const std::int64_t h = t.h, w = t.w, c = t.c, ho = t.ho, wo = t.wo;
  const std::int64_t k = t.st->k, kc = k * c;
  std::int64_t r = lo;
  while (r < hi) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    const float* base = q + (((img * h) + y) * w + x) * c;
    if (x + 4 <= wo && r + 4 <= hi) {
      float acc[4][CO] = {};
      for (std::int64_t ky = 0; ky < k; ++ky) {
        // For a fixed ky the (kx, c) patch span is contiguous in both the
        // quantized input and the [K*K*Ci, Co] weight matrix.
        const float* p = base + ky * w * c;
        const float* wrow = wts + ky * kc * CO;
        for (std::int64_t i = 0; i < kc; ++i) {
          const float* wr = wrow + i * CO;
          const float a0 = p[i], a1 = p[i + c];
          const float a2 = p[i + 2 * c], a3 = p[i + 3 * c];
#pragma omp simd
          for (int j = 0; j < CO; ++j) {
            acc[0][j] += a0 * wr[j];
            acc[1][j] += a1 * wr[j];
            acc[2][j] += a2 * wr[j];
            acc[3][j] += a3 * wr[j];
          }
        }
      }
      for (int m = 0; m < 4; ++m) {
        std::uint64_t bits = 0;
#pragma omp simd reduction(| : bits)
        for (int j = 0; j < CO; ++j)
          bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                      (static_cast<std::int32_t>(acc[m][j]) >= thr[j]) ^
                      inv[j]))
                  << j;
        t.out.row(r + m)[0] = bits;
      }
      r += 4;
    } else {
      float acc[CO] = {};
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const float* p = base + ky * w * c;
        const float* wrow = wts + ky * kc * CO;
        for (std::int64_t i = 0; i < kc; ++i) {
          const float a = p[i];
          const float* wr = wrow + i * CO;
#pragma omp simd
          for (int j = 0; j < CO; ++j) acc[j] += a * wr[j];
        }
      }
      std::uint64_t bits = 0;
#pragma omp simd reduction(| : bits)
      for (int j = 0; j < CO; ++j)
        bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    (static_cast<std::int32_t>(acc[j]) >= thr[j]) ^ inv[j]))
                << j;
      t.out.row(r)[0] = bits;
      ++r;
    }
  }
}

/// Generic-width variant: channels are walked in 256-lane stack tiles
/// (word-aligned, so each tile fires whole output words), re-reading the
/// input patch once per tile. Weight traffic is unchanged and the
/// accumulators stay on the stack, keeping the kernel allocation-free for
/// any channel count.
void first_conv_rows_any(const FirstConvCtx& t, std::int64_t lo,
                         std::int64_t hi) {
  const float* q = t.q;
  const float* wts = t.st->weights.data();
  const std::int64_t h = t.h, w = t.w, c = t.c, ho = t.ho, wo = t.wo;
  const std::int64_t k = t.st->k, co = t.st->co, kc = k * c;
  constexpr std::int64_t kTile = 256;
  float acc[kTile];
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    std::uint64_t* dst = t.out.row(r);
    for (std::int64_t c0 = 0; c0 < co; c0 += kTile) {
      const std::int64_t cn = std::min(kTile, co - c0);
#pragma omp simd
      for (std::int64_t j = 0; j < cn; ++j) acc[j] = 0.f;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const float* p = q + (((img * h) + y + ky) * w + x) * c;
        const float* wrow = wts + ky * kc * co + c0;
        for (std::int64_t i = 0; i < kc; ++i) {
          const float a = p[i];
          const float* wr = wrow + i * co;
#pragma omp simd
          for (std::int64_t j = 0; j < cn; ++j) acc[j] += a * wr[j];
        }
      }
      for (std::int64_t word = 0; word * 64 < cn; ++word) {
        const std::int64_t base = word * 64;
        const std::int64_t nb = std::min<std::int64_t>(64, cn - base);
        const float* ab = acc + base;
        const std::int32_t* tp = t.thr + c0 + base;
        const std::int32_t* ip = t.inv + c0 + base;
        std::uint64_t bits = 0;
#pragma omp simd reduction(| : bits)
        for (std::int64_t i = 0; i < nb; ++i)
          bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                      (static_cast<std::int32_t>(ab[i]) >= tp[i]) ^ ip[i]))
                  << i;
        dst[(c0 >> 6) + word] = bits;
      }
    }
  }
}

void first_conv_chunk(void* raw, std::int64_t lo, std::int64_t hi) {
  const FirstConvCtx& t = *static_cast<const FirstConvCtx*>(raw);
  switch (t.st->co) {
    case 16:
      first_conv_rows_fixed<16>(t, lo, hi);
      break;
    case 64:
      first_conv_rows_fixed<64>(t, lo, hi);
      break;
    default:
      first_conv_rows_any(t, lo, hi);
  }
}

}  // namespace

void execute(const ExecutionPlan& plan, const std::vector<Stage>& stages,
             const float* input, Workspace& ws, float* out) {
  BCOP_CHECK(ws.capacity() >= plan.arena_bytes(),
             "workspace holds %zu bytes but the plan needs %zu -- call "
             "Workspace::prepare(plan) first",
             ws.capacity(), plan.arena_bytes());
  std::byte* base = ws.base();
  std::uint64_t* half[2] = {
      reinterpret_cast<std::uint64_t*>(base + plan.half_offset(0)),
      reinterpret_cast<std::uint64_t*>(base + plan.half_offset(1))};
  std::uint64_t* patch =
      reinterpret_cast<std::uint64_t*>(base + plan.patch_offset());
  std::int32_t* acc = reinterpret_cast<std::int32_t*>(base + plan.acc_offset());
  std::int32_t* acc2 =
      reinterpret_cast<std::int32_t*>(base + plan.acc2_offset());
  float* fscratch = reinterpret_cast<float*>(base + plan.float_offset());

#if BCOP_OBS
  // One flag read per replay; when recording, each step adds two clock
  // reads and one relaxed fetch_add -- measured at < 1% of the replay
  // (docs/observability.md), far below the coarse step kernels it brackets.
  const obs::StageSlots* slots = plan.obs_slots();
  const bool profile = slots != nullptr && obs::StageProfiler::global().enabled();
  const std::uint64_t t_exec = profile ? obs::now_ns() : 0;
  if (profile) slots->replays->add(1);
#endif

  for (const PlanStep& st : plan.steps()) {
    const ConstBitSpan src =
        st.src_half >= 0
            ? ConstBitSpan{half[st.src_half], st.in_rows, st.in_cols, st.in_wpr}
            : ConstBitSpan{};
    const BitSpan dst =
        st.dst_half >= 0
            ? BitSpan{half[st.dst_half], st.out_rows, st.out_cols, st.out_wpr}
            : BitSpan{};
#if BCOP_OBS
    const std::uint64_t t_step = profile ? obs::now_ns() : 0;
#endif
    switch (st.kind) {
      case StepKind::kFirstConv: {
        // get_if, not get: the throwing std::get drags
        // __cxa_throw/__cxa_allocate_exception/operator delete references
        // into this TU (visible to scripts/audit_hot_path.py), and a kind
        // mismatch here is a plan-compiler bug, not a recoverable error.
        const auto* fcp =
            std::get_if<FirstConvStage>(&stages[static_cast<std::size_t>(st.stage)]);
        BCOP_CHECK(fcp != nullptr,
                   "plan step %lld: stage is not a FirstConvStage",
                   static_cast<long long>(st.stage));
        const auto& fc = *fcp;
        // Recover the integer pixel codes (pixels are odd k'/255, see
        // facegen::MaskedFaceDataset::quantize_pixel).
        const std::int64_t numel = st.n * st.h * st.w * st.c;
        for (std::int64_t j = 0; j < numel; ++j)
          fscratch[j] = std::nearbyint(input[j] * 255.f);
        if (st.levels_out == 1) {
          const PreparedThresholds& prep = plan.prep(st.prep);
          FirstConvCtx ctx{fscratch, &fc,   prep.thr.data(), prep.inv.data(),
                           st.h,     st.w,  st.c,            st.ho,
                           st.wo,    dst};
          ThreadPool::global().for_chunks(0, st.out_rows, &first_conv_chunk,
                                          &ctx);
        } else {
          // Residual entry: materialize the integer accumulators, then
          // fire the pattern banks (exec_residual.cpp).
          residual_first_conv(st, fc, fscratch, acc);
          residual_fire(plan, st, acc, half[st.dst_half]);
        }
        break;
      }
      case StepKind::kPackInput:
        tensor::pack_rows(input, st.out_rows, st.out_cols, dst);
        break;
      case StepKind::kBinConv: {
        if (st.levels_in > 1 || st.in_scaled || st.levels_out > 1) {
          // Residual stream on either side: multi-pass scaled GEMM and/or
          // pattern-bank firing (exec_residual.cpp). The classic path
          // below stays untouched for single-plane unscaled streams.
          residual_gemm(plan, st, half[st.src_half], patch, acc, acc2);
          if (st.levels_out == 1)
            fire_thresholds(st, acc, plan.prep(st.prep), dst);
          else
            residual_fire(plan, st, acc, half[st.dst_half]);
          break;
        }
        const BitSpan rows{patch, st.patch_rows, st.patch_cols, st.patch_wpr};
#if BCOP_OBS
        // Sub-phase split of the conv step: where does a binary conv
        // spend its time -- patch gather, XNOR GEMM, or threshold firing.
        const std::uint64_t ta = profile ? obs::now_ns() : 0;
        run_im2row(st, src, rows);
        const std::uint64_t tb = profile ? obs::now_ns() : 0;
        run_gemm(st, rows, plan.wmat(st.wmat), acc);
        const std::uint64_t tc = profile ? obs::now_ns() : 0;
        fire_thresholds(st, acc, plan.prep(st.prep), dst);
        if (profile) {
          const std::uint64_t td = obs::now_ns();
          slots->slot_ns[kObsSlotIm2row]->record(tb - ta);
          slots->slot_ns[kObsSlotGemm]->record(tc - tb);
          slots->slot_ns[kObsSlotThresholds]->record(td - tc);
        }
#else
        run_im2row(st, src, rows);
        run_gemm(st, rows, plan.wmat(st.wmat), acc);
        fire_thresholds(st, acc, plan.prep(st.prep), dst);
#endif
        break;
      }
      case StepKind::kPool:
        if (st.levels_in == 1)
          tensor::pool2_bits(src, st.n, st.h, st.w, dst);
        else
          residual_pool(st, half[st.src_half], half[st.dst_half]);
        break;
      case StepKind::kFlatten:
        // Flatten is a per-plane bit permutation, so the residual case is
        // the classic kernel replayed once per plane at shifted bases.
        for (std::int64_t m = 0; m < st.levels_in; ++m) {
          const ConstBitSpan s{half[st.src_half] + m * st.in_rows * st.in_wpr,
                               st.in_rows, st.in_cols, st.in_wpr};
          const BitSpan d{half[st.dst_half] + m * st.out_rows * st.out_wpr,
                          st.out_rows, st.out_cols, st.out_wpr};
          tensor::flatten_pixels(s, st.n, st.h * st.w, st.c, d);
        }
        break;
      case StepKind::kBinDense:
        if (st.levels_in > 1 || st.in_scaled || st.levels_out > 1) {
          residual_gemm(plan, st, half[st.src_half], nullptr, acc, acc2);
          if (st.levels_out == 1)
            fire_thresholds(st, acc, plan.prep(st.prep), dst);
          else
            residual_fire(plan, st, acc, half[st.dst_half]);
          break;
        }
        run_gemm(st, src, plan.wmat(st.wmat), acc);
        fire_thresholds(st, acc, plan.prep(st.prep), dst);
        break;
      case StepKind::kLogits:
        if (st.levels_in > 1 || st.in_scaled) {
          // A = 256 * y for scaled inputs; out_scale (1/256) undoes it
          // exactly -- every logit is a multiple of 2^-8 far below 2^24.
          residual_gemm(plan, st, half[st.src_half], nullptr, acc, acc2);
          for (std::int64_t j = 0; j < st.acc_len; ++j)
            out[j] = static_cast<float>(acc[j]) * st.out_scale;
          break;
        }
        run_gemm(st, src, plan.wmat(st.wmat), acc);
        for (std::int64_t j = 0; j < st.acc_len; ++j)
          out[j] = static_cast<float>(acc[j]);
        break;
      case StepKind::kUnpack:
        if (st.levels_in == 1 && !st.in_scaled) {
          for (std::int64_t r = 0; r < st.in_rows; ++r) {
            const std::uint64_t* row = src.row(r);
            float* o = out + r * st.in_cols;
            for (std::int64_t j = 0; j < st.in_cols; ++j)
              o[j] = ((row[j >> 6] >> (j & 63)) & 1ull) ? 1.f : -1.f;
          }
        } else {
          // Residual reconstruction: sum of signed per-plane values
          // g_m/256 (exact dyadic floats, any summation order).
          for (std::int64_t r = 0; r < st.in_rows; ++r) {
            float* o = out + r * st.in_cols;
            for (std::int64_t j = 0; j < st.in_cols; ++j) o[j] = 0.f;
            for (std::int64_t m = 0; m < st.levels_in; ++m) {
              const std::uint64_t* row = half[st.src_half] +
                                         m * st.in_rows * st.in_wpr +
                                         r * st.in_wpr;
              const float q =
                  static_cast<float>(st.in_scale_bits[m]) * (1.f / 256.f);
              for (std::int64_t j = 0; j < st.in_cols; ++j)
                o[j] += ((row[j >> 6] >> (j & 63)) & 1ull) ? q : -q;
            }
          }
        }
        break;
    }
#if BCOP_OBS
    if (profile)
      slots->slot_ns[static_cast<int>(st.kind)]->record(obs::now_ns() -
                                                        t_step);
#endif
  }
#if BCOP_OBS
  if (profile)
    slots->slot_ns[kObsSlotExecute]->record(obs::now_ns() - t_exec);
#endif
}

}  // namespace bcop::xnor::detail
