// BatchNorm -> threshold folding (paper Sec. III-A).
//
// Every BatchNorm in a BNN is immediately followed by sign(), so at
// inference the pair collapses to a per-channel magnitude comparison on the
// integer accumulator: out = +1 iff acc >= T (or acc <= T when the BN scale
// gamma/sigma is negative). The threshold is found by *binary search over
// the integer accumulator domain using the exact float predicate the
// training graph evaluates*, which makes the folded network bit-identical
// to BatchNorm+sign for every representable accumulator value -- including
// the gamma == 0 degenerate case (constant output, encoded as a saturated
// threshold).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/batchnorm.hpp"
#include "util/check.hpp"

namespace bcop::xnor {

/// Per-channel folded comparison: out_c = +1 iff
///   flip[c] ? acc <= t[c] : acc >= t[c].
/// Constant channels are encoded with saturated thresholds (INT64_MIN+1 =>
/// always +1, INT64_MAX => always -1 with flip = false).
struct ThresholdSpec {
  std::vector<std::int64_t> t;
  std::vector<std::uint8_t> flip;

  std::int64_t channels() const { return static_cast<std::int64_t>(t.size()); }

  bool fire(std::int64_t acc, std::int64_t c) const {
    BCOP_DCHECK(c >= 0 && c < channels(), "channel %lld out of [0, %lld)",
                static_cast<long long>(c), static_cast<long long>(channels()));
    const auto ci = static_cast<std::size_t>(c);
    return flip[ci] ? acc <= t[ci] : acc >= t[ci];
  }
};

/// Branch-free form of ThresholdSpec for hot loops:
///   fire(acc, c) == (acc >= thr[c]) ^ inv[c]   for all |acc| <= kAccBound.
/// The flip case folds into a strict negated compare (acc <= t is
/// !(acc >= t+1)), and saturated "always"/"never" sentinels are clamped to
/// just outside the accumulator range so the identity keeps holding. Every
/// accumulator in this codebase is far below the bound: a binary dot is at
/// most K and the 8-bit first conv at most K*255, with K = k*k*ci < 2^15.
struct PreparedThresholds {
  static constexpr std::int32_t kAccBound = 1 << 25;
  std::vector<std::int32_t> thr;
  std::vector<std::int32_t> inv;
  explicit PreparedThresholds(const ThresholdSpec& spec);
};

/// Fold `bn` (running statistics) against an accumulator in
/// [acc_min, acc_max] that maps to the BN input as x = acc * acc_scale.
/// For binary hidden layers acc is the {-1,+1} dot product (acc_scale = 1);
/// for the 8-bit first layer acc is the integer sum of quantized pixels and
/// acc_scale = 1/255.
ThresholdSpec fold_batchnorm(const nn::BatchNorm& bn, std::int64_t acc_min,
                             std::int64_t acc_max, double acc_scale);

/// The exact predicate the training graph evaluates at inference:
/// sign(BatchNorm_inference(x)) >= 0 for channel c with x = acc*acc_scale.
/// Exposed so tests can compare fold results against brute force.
bool bn_sign_predicate(const nn::BatchNorm& bn, std::int64_t c,
                       std::int64_t acc, double acc_scale);

/// Residual (ReBNet) variant of the predicate: the sign of residual level
/// `level` given that levels 0..level-1 fired with the signs in `pattern`
/// (bit j set => level j emitted +1). Mirrors nn::ResidualSign::forward
/// exactly -- e = BN(x), then one float subtraction q_j * (+-1) per
/// earlier level IN ORDER -- so folding against it is bit-faithful to the
/// float graph. `q` are the quantized per-level scales (g_m / 256).
/// level == 0 reduces to bn_sign_predicate.
bool bn_residual_sign_predicate(const nn::BatchNorm& bn, std::int64_t c,
                                std::int64_t acc, double acc_scale,
                                const std::vector<float>& q,
                                std::int64_t level, std::uint32_t pattern);

/// Fold BatchNorm + residual level `level` under `pattern` into one
/// threshold bank, by the same monotone binary search as fold_batchnorm
/// (subtracting per-level constants preserves weak monotonicity in acc).
/// A full residual activation needs one bank per (level, pattern) pair:
/// 2^levels - 1 banks, selected at execution time by the signs the
/// earlier levels actually fired.
ThresholdSpec fold_batchnorm_residual(const nn::BatchNorm& bn,
                                      std::int64_t acc_min,
                                      std::int64_t acc_max, double acc_scale,
                                      const std::vector<float>& q,
                                      std::int64_t level,
                                      std::uint32_t pattern);

}  // namespace bcop::xnor
