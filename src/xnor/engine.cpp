#include "xnor/engine.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/sign_activation.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2row.hpp"
#include "tensor/ops.hpp"

namespace bcop::xnor {

using tensor::BitMatrix;
using tensor::Shape;
using tensor::Tensor;

namespace {

// Pixel values are odd integers k' in [-255, 255] divided by 255
// (facegen::MaskedFaceDataset::quantize_pixel); the first-layer accumulator
// works directly on k'.
constexpr double kPixelScale = 1.0 / 255.0;
constexpr std::int64_t kPixelMax = 255;

/// Transpose an nn weight matrix [In, Out] into packed rows [Out, In].
BitMatrix pack_transposed(const Tensor& w) {
  const std::int64_t in = w.shape()[0], out = w.shape()[1];
  BitMatrix m(out, in);
  for (std::int64_t o = 0; o < out; ++o)
    for (std::int64_t i = 0; i < in; ++i)
      m.set_from_sign(o, i, w.at2(i, o));
  return m;
}

}  // namespace

XnorNetwork::XnorNetwork(std::string name, std::vector<Stage> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  if (stages_.empty())
    throw std::invalid_argument("XnorNetwork: empty stage list");
}

std::string stage_kind(const Stage& s) {
  return std::visit(
      [](const auto& st) -> std::string {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, FirstConvStage>) return "FirstConv";
        else if constexpr (std::is_same_v<T, BinConvStage>) return "BinConv";
        else if constexpr (std::is_same_v<T, PoolStage>) return "Pool";
        else if constexpr (std::is_same_v<T, FlattenStage>) return "Flatten";
        else return "BinDense";
      },
      s);
}

void apply_thresholds(const std::vector<std::int32_t>& acc, std::int64_t rows,
                      const ThresholdSpec& spec, float* out) {
  const std::int64_t C = spec.channels();
  if (static_cast<std::int64_t>(acc.size()) != rows * C)
    throw std::invalid_argument("apply_thresholds: size mismatch");
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < C; ++c)
      out[r * C + c] = spec.fire(acc[static_cast<std::size_t>(r * C + c)], c)
                           ? 1.f
                           : -1.f;
}

XnorNetwork XnorNetwork::fold(nn::Sequential& model) {
  XnorNetwork net;
  net.name_ = model.name();
  const std::size_t n = model.size();
  std::size_t i = 0;
  bool first_conv = true;

  auto take_bn_sign = [&](const std::string& where) -> nn::BatchNorm* {
    if (i + 1 >= n)
      throw std::runtime_error("XnorNetwork::fold: " + where +
                               " not followed by BatchNorm+Sign");
    auto* bn = dynamic_cast<nn::BatchNorm*>(&model.layer(i));
    auto* sign = dynamic_cast<nn::SignActivation*>(&model.layer(i + 1));
    if (!bn || !sign)
      throw std::runtime_error("XnorNetwork::fold: " + where +
                               " must be followed by BatchNorm then Sign, got " +
                               model.layer(i).type() + ", " +
                               model.layer(i + 1).type());
    i += 2;
    return bn;
  };

  while (i < n) {
    nn::Layer& l = model.layer(i);
    if (auto* conv = dynamic_cast<nn::BinaryConv2d*>(&l)) {
      ++i;
      nn::BatchNorm* bn = take_bn_sign(std::string("conv ") + std::to_string(i));
      const std::int64_t fan = conv->kernel() * conv->kernel() * conv->in_channels();
      if (first_conv) {
        FirstConvStage st;
        st.k = conv->kernel();
        st.ci = conv->in_channels();
        st.co = conv->out_channels();
        st.weights = conv->binarized_weights();
        st.thresholds =
            fold_batchnorm(*bn, -fan * kPixelMax, fan * kPixelMax, kPixelScale);
        net.stages_.emplace_back(std::move(st));
        first_conv = false;
      } else {
        BinConvStage st;
        st.k = conv->kernel();
        st.ci = conv->in_channels();
        st.co = conv->out_channels();
        st.weights = pack_transposed(conv->binarized_weights());
        st.thresholds = fold_batchnorm(*bn, -fan, fan, 1.0);
        net.stages_.emplace_back(std::move(st));
      }
    } else if (dynamic_cast<nn::MaxPool2*>(&l)) {
      net.stages_.emplace_back(PoolStage{});
      ++i;
    } else if (dynamic_cast<nn::Flatten*>(&l)) {
      net.stages_.emplace_back(FlattenStage{});
      ++i;
    } else if (auto* dense = dynamic_cast<nn::BinaryDense*>(&l)) {
      ++i;
      BinDenseStage st;
      st.in = dense->in_features();
      st.out = dense->out_features();
      st.weights = pack_transposed(dense->binarized_weights());
      if (i == n) {
        st.has_threshold = false;  // classifier layer: raw logits
      } else {
        nn::BatchNorm* bn = take_bn_sign("dense " + std::to_string(i));
        st.thresholds = fold_batchnorm(*bn, -st.in, st.in, 1.0);
      }
      net.stages_.emplace_back(std::move(st));
    } else {
      throw std::runtime_error(
          std::string("XnorNetwork::fold: unsupported layer '") + l.type() +
          "' -- only BinaryConv2d/BinaryDense BNNs can be folded");
    }
  }
  if (net.stages_.empty())
    throw std::runtime_error("XnorNetwork::fold: empty model");
  return net;
}

Tensor XnorNetwork::forward(const Tensor& input) const {
  Tensor x = input;
  for (const Stage& stage : stages_) {
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      // Recover integer pixel codes and run an exact integer GEMM in float.
      Tensor q(x.shape());
      for (std::int64_t j = 0; j < x.numel(); ++j)
        q[j] = std::nearbyint(x[j] * 255.f);
      Tensor patches;
      tensor::im2row(q, st->k, patches);
      const std::int64_t M = patches.shape()[0];
      Tensor acc_f(Shape{M, st->co});
      tensor::gemm_nn(M, st->co, patches.shape()[1], patches.data(),
                      st->weights.data(), acc_f.data());
      std::vector<std::int32_t> acc(static_cast<std::size_t>(M * st->co));
      for (std::int64_t j = 0; j < acc_f.numel(); ++j)
        acc[static_cast<std::size_t>(j)] =
            static_cast<std::int32_t>(std::lround(acc_f[j]));
      const std::int64_t N = x.shape()[0];
      const std::int64_t Ho = tensor::conv_out_dim(x.shape()[1], st->k);
      const std::int64_t Wo = tensor::conv_out_dim(x.shape()[2], st->k);
      Tensor out(Shape{N, Ho, Wo, st->co});
      apply_thresholds(acc, M, st->thresholds, out.data());
      x = std::move(out);
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      Tensor patches;
      tensor::im2row(x, st2->k, patches);
      const std::int64_t M = patches.shape()[0];
      const BitMatrix packed =
          tensor::pack_matrix(patches.data(), M, patches.shape()[1]);
      std::vector<std::int32_t> acc;
      tensor::binary_gemm(packed, st2->weights, acc);
      const std::int64_t N = x.shape()[0];
      const std::int64_t Ho = tensor::conv_out_dim(x.shape()[1], st2->k);
      const std::int64_t Wo = tensor::conv_out_dim(x.shape()[2], st2->k);
      Tensor out(Shape{N, Ho, Wo, st2->co});
      apply_thresholds(acc, M, st2->thresholds, out.data());
      x = std::move(out);
    } else if (std::get_if<PoolStage>(&stage)) {
      const Shape& s = x.shape();
      const std::int64_t N = s[0], H = s[1], W = s[2], C = s[3];
      Tensor out(Shape{N, H / 2, W / 2, C});
      for (std::int64_t nn_ = 0; nn_ < N; ++nn_)
        for (std::int64_t yy = 0; yy < H / 2; ++yy)
          for (std::int64_t xx = 0; xx < W / 2; ++xx)
            for (std::int64_t c = 0; c < C; ++c) {
              // OR over the window: any +1 wins.
              const float m =
                  std::max(std::max(x.at4(nn_, 2 * yy, 2 * xx, c),
                                    x.at4(nn_, 2 * yy, 2 * xx + 1, c)),
                           std::max(x.at4(nn_, 2 * yy + 1, 2 * xx, c),
                                    x.at4(nn_, 2 * yy + 1, 2 * xx + 1, c)));
              out.at4(nn_, yy, xx, c) = m;
            }
      x = std::move(out);
    } else if (std::get_if<FlattenStage>(&stage)) {
      x = x.reshaped(Shape{x.shape()[0], x.numel() / x.shape()[0]});
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      const std::int64_t N = x.shape()[0];
      const BitMatrix packed = tensor::pack_matrix(x.data(), N, st3->in);
      std::vector<std::int32_t> acc;
      tensor::binary_gemm(packed, st3->weights, acc);
      Tensor out(Shape{N, st3->out});
      if (st3->has_threshold) {
        apply_thresholds(acc, N, st3->thresholds, out.data());
      } else {
        for (std::int64_t j = 0; j < out.numel(); ++j)
          out[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]);
      }
      x = std::move(out);
    }
  }
  return x;
}

std::vector<std::int64_t> XnorNetwork::predict(const Tensor& input) const {
  const Tensor logits = forward(input);
  return tensor::argmax_rows(logits);
}

std::int64_t XnorNetwork::weight_bits() const {
  std::int64_t bits = 0;
  constexpr std::int64_t kThresholdBits = 24;  // FINN threshold word width
  for (const Stage& stage : stages_) {
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      bits += st->weights.numel() + st->co * kThresholdBits;
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      bits += st2->weights.rows() * st2->weights.cols() +
              st2->co * kThresholdBits;
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      bits += st3->weights.rows() * st3->weights.cols();
      if (st3->has_threshold) bits += st3->out * kThresholdBits;
    }
  }
  return bits;
}

}  // namespace bcop::xnor
