#include "xnor/engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/residual_sign.hpp"
#include "nn/sign_activation.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"
#include "xnor/exec.hpp"
#include "xnor/plan.hpp"

namespace bcop::xnor {

using tensor::BitMatrix;
using tensor::Shape;
using tensor::Tensor;

namespace {

// Pixel values are odd integers k' in [-255, 255] divided by 255
// (facegen::MaskedFaceDataset::quantize_pixel); the first-layer accumulator
// works directly on k'.
constexpr double kPixelScale = 1.0 / 255.0;
constexpr std::int64_t kPixelMax = 255;

/// Transpose an nn weight matrix [In, Out] into packed rows [Out, In].
BitMatrix pack_transposed(const Tensor& w) {
  const std::int64_t in = w.shape()[0], out = w.shape()[1];
  BitMatrix m(out, in);
  for (std::int64_t o = 0; o < out; ++o)
    for (std::int64_t i = 0; i < in; ++i)
      m.set_from_sign(o, i, w.at2(i, o));
  return m;
}

}  // namespace

/// Plans keyed by the exact input shape (rank + dims, batch included)
/// plus the active kernel dispatch tier -- a plan freezes one tier's
/// function pointers, so flipping the override must compile (and cache) a
/// fresh plan instead of replaying stale pointers -- plus the residual
/// level cap M (0 = all trained levels; a truncated plan lays out fewer
/// planes and threshold banks, so it is a distinct compilation). std::map
/// keeps node-stable references, so plan_for can hand out long-lived
/// const references while the cache keeps growing.
struct XnorNetwork::PlanCache {
  using Key = std::array<std::int64_t, 7>;
  util::Mutex mutex;
  std::map<Key, ExecutionPlan> plans BCOP_GUARDED_BY(mutex);
};

XnorNetwork::XnorNetwork() : cache_(std::make_unique<PlanCache>()) {}
XnorNetwork::~XnorNetwork() = default;

XnorNetwork::XnorNetwork(std::string name, std::vector<Stage> stages)
    : name_(std::move(name)),
      stages_(std::move(stages)),
      cache_(std::make_unique<PlanCache>()) {
  if (stages_.empty())
    throw std::invalid_argument("XnorNetwork: empty stage list");
}

XnorNetwork::XnorNetwork(const XnorNetwork& other)
    : name_(other.name_),
      stages_(other.stages_),
      cache_(std::make_unique<PlanCache>()) {}

XnorNetwork& XnorNetwork::operator=(const XnorNetwork& other) {
  if (this != &other) {
    name_ = other.name_;
    stages_ = other.stages_;
    cache_ = std::make_unique<PlanCache>();
  }
  return *this;
}

XnorNetwork::XnorNetwork(XnorNetwork&&) noexcept = default;
XnorNetwork& XnorNetwork::operator=(XnorNetwork&&) noexcept = default;

std::string stage_kind(const Stage& s) {
  return std::visit(
      [](const auto& st) -> std::string {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, FirstConvStage>) return "FirstConv";
        else if constexpr (std::is_same_v<T, BinConvStage>) return "BinConv";
        else if constexpr (std::is_same_v<T, PoolStage>) return "Pool";
        else if constexpr (std::is_same_v<T, FlattenStage>) return "Flatten";
        else return "BinDense";
      },
      s);
}

const ResidualSpec* stage_residual(const Stage& s) {
  return std::visit(
      [](const auto& st) -> const ResidualSpec* {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, PoolStage> ||
                      std::is_same_v<T, FlattenStage>)
          return nullptr;
        else
          return &st.residual;
      },
      s);
}

XnorNetwork XnorNetwork::fold(nn::Sequential& model) {
  XnorNetwork net;
  net.name_ = model.name();
  const std::size_t n = model.size();
  std::size_t i = 0;
  bool first_conv = true;
  // Residual scale bits of the CURRENT activation stream: empty while it
  // is classic {-1,+1} planes (acc = the raw popcount dot); otherwise the
  // g_m of the producing ResidualSign, so the consumer's accumulator
  // domain is A = sum_m g_m * acc_m in [-fan * sum(g), fan * sum(g)] with
  // BN input value A / 256.
  std::vector<std::int32_t> act_bits;

  struct ActPair {
    nn::BatchNorm* bn;
    nn::ResidualSign* rs;  // null for classic SignActivation
  };
  auto take_bn_act = [&](const std::string& where) -> ActPair {
    if (i + 1 >= n)
      throw std::runtime_error("XnorNetwork::fold: " + where +
                               " not followed by BatchNorm+Sign");
    auto* bn = dynamic_cast<nn::BatchNorm*>(&model.layer(i));
    auto* sign = dynamic_cast<nn::SignActivation*>(&model.layer(i + 1));
    auto* rs = dynamic_cast<nn::ResidualSign*>(&model.layer(i + 1));
    if (!bn || (!sign && !rs))
      throw std::runtime_error("XnorNetwork::fold: " + where +
                               " must be followed by BatchNorm then Sign, got " +
                               model.layer(i).type() + ", " +
                               model.layer(i + 1).type());
    i += 2;
    return {bn, rs};
  };

  // Fold BN + activation over accumulator domain [acc_min, acc_max] into
  // bank 0 (returned) plus, for residual activations, the pattern banks in
  // `spec`; leaves act_bits describing this stage's OUTPUT stream.
  auto fold_activation = [&](const ActPair& act, std::int64_t acc_min,
                             std::int64_t acc_max, double acc_scale,
                             ResidualSpec& spec) -> ThresholdSpec {
    if (!act.rs) {
      act_bits.clear();
      spec = ResidualSpec{};
      return fold_batchnorm(*act.bn, acc_min, acc_max, acc_scale);
    }
    const std::vector<float> q = act.rs->quantized_scales();
    spec.levels = act.rs->levels();
    spec.scale_bits = act.rs->quantized_scale_bits();
    spec.extra_banks.clear();
    for (std::int64_t m = 1; m < spec.levels; ++m)
      for (std::uint32_t p = 0; p < (1u << m); ++p)
        spec.extra_banks.push_back(fold_batchnorm_residual(
            *act.bn, acc_min, acc_max, acc_scale, q, m, p));
    act_bits = spec.scale_bits;
    return fold_batchnorm_residual(*act.bn, acc_min, acc_max, acc_scale, q,
                                   0, 0);
  };
  // The consumer accumulator bound and BN value scale implied by the
  // current input stream (binary fan-in `fan`).
  auto acc_bound = [&](std::int64_t fan) -> std::int64_t {
    if (act_bits.empty()) return fan;
    std::int64_t sum = 0;
    for (const std::int32_t g : act_bits) sum += g;
    return fan * sum;
  };
  auto acc_scale = [&]() { return act_bits.empty() ? 1.0 : 1.0 / 256.0; };

  while (i < n) {
    nn::Layer& l = model.layer(i);
    if (auto* conv = dynamic_cast<nn::BinaryConv2d*>(&l)) {
      ++i;
      const ActPair act = take_bn_act(std::string("conv ") + std::to_string(i));
      const std::int64_t fan = conv->kernel() * conv->kernel() * conv->in_channels();
      if (first_conv) {
        FirstConvStage st;
        st.k = conv->kernel();
        st.ci = conv->in_channels();
        st.co = conv->out_channels();
        st.weights = conv->binarized_weights();
        st.thresholds = fold_activation(act, -fan * kPixelMax, fan * kPixelMax,
                                        kPixelScale, st.residual);
        net.stages_.emplace_back(std::move(st));
        first_conv = false;
      } else {
        BinConvStage st;
        st.k = conv->kernel();
        st.ci = conv->in_channels();
        st.co = conv->out_channels();
        st.weights = pack_transposed(conv->binarized_weights());
        const std::int64_t bound = acc_bound(fan);
        const double scale = acc_scale();
        st.thresholds = fold_activation(act, -bound, bound, scale, st.residual);
        net.stages_.emplace_back(std::move(st));
      }
    } else if (dynamic_cast<nn::MaxPool2*>(&l)) {
      net.stages_.emplace_back(PoolStage{});
      ++i;
    } else if (dynamic_cast<nn::Flatten*>(&l)) {
      net.stages_.emplace_back(FlattenStage{});
      ++i;
    } else if (auto* dense = dynamic_cast<nn::BinaryDense*>(&l)) {
      ++i;
      BinDenseStage st;
      st.in = dense->in_features();
      st.out = dense->out_features();
      st.weights = pack_transposed(dense->binarized_weights());
      if (i == n) {
        st.has_threshold = false;  // classifier layer: raw logits
      } else {
        const ActPair act = take_bn_act("dense " + std::to_string(i));
        const std::int64_t bound = acc_bound(st.in);
        const double scale = acc_scale();
        st.thresholds = fold_activation(act, -bound, bound, scale, st.residual);
      }
      net.stages_.emplace_back(std::move(st));
    } else {
      throw std::runtime_error(
          std::string("XnorNetwork::fold: unsupported layer '") + l.type() +
          "' -- only BinaryConv2d/BinaryDense BNNs can be folded");
    }
  }
  if (net.stages_.empty())
    throw std::runtime_error("XnorNetwork::fold: empty model");
  return net;
}

std::int64_t XnorNetwork::max_levels() const {
  std::int64_t levels = 1;
  for (const Stage& stage : stages_)
    if (const ResidualSpec* spec = stage_residual(stage))
      levels = std::max(levels, spec->levels);
  return levels;
}

const ExecutionPlan& XnorNetwork::plan_for(const Shape& input,
                                           std::int64_t levels) const {
  // A moved-from network has no cache -- and no stages either, so it
  // could never serve. The old lazy `if (!cache_) cache_ = ...` revival
  // was an unlocked check-then-act on a shared mutable member (two
  // threads racing plan_for on a moved-from net double-constructed the
  // cache); surfaced by the thread-safety annotation sweep, replaced by a
  // hard contract: reassign a moved-from network before serving from it.
  BCOP_CHECK(cache_ != nullptr,
             "plan_for on a moved-from XnorNetwork -- reassign it first");
  // Normalize the level cap so "no cap", "cap at the trained depth" and
  // any deeper request all share one cache entry (they compile to the
  // same plan).
  if (levels < 0 || levels >= max_levels()) levels = 0;
  PlanCache::Key key{};
  key[0] = input.rank();
  for (int i = 0; i < input.rank(); ++i) key[static_cast<std::size_t>(i) + 1] = input[i];
  key[5] = static_cast<std::int64_t>(tensor::kernels::active_level());
  key[6] = levels;
  util::MutexLock lock(cache_->mutex);
  auto it = cache_->plans.find(key);
  if (it == cache_->plans.end())
    it = cache_->plans.emplace(key, ExecutionPlan::compile(*this, input, levels))
             .first;
  return it->second;
}

void XnorNetwork::forward_batch(const Tensor& input, Workspace& ws,
                                Tensor& out, std::int64_t levels) const {
  const ExecutionPlan& plan = plan_for(input.shape(), levels);
  ws.prepare(plan);
  if (out.shape() != plan.output_shape()) out = Tensor(plan.output_shape());
  detail::execute(plan, stages_, input.data(), ws, out.data());
}

Tensor XnorNetwork::forward_batch(const Tensor& input,
                                  std::int64_t levels) const {
  // One grow-only workspace per thread serves every network and shape the
  // thread touches; explicit Workspace threading (the overload above) is
  // for callers that manage worker lifetimes themselves, e.g. the server.
  static thread_local Workspace ws;
  Tensor out;
  forward_batch(input, ws, out, levels);
  return out;
}

Tensor XnorNetwork::forward(const Tensor& input) const {
  return forward_batch(input);
}

Shape XnorNetwork::expected_input_shape() const {
  // Forward pass collects channels and the pre-flatten conv/pool sequence;
  // the spatial input size is then solved backwards from the feature count
  // of the first dense layer.
  std::int64_t c_in = -1, c = -1;
  std::vector<std::int64_t> pre;  // conv kernel size, or 0 for a pool
  std::size_t i = 0;
  bool found_flatten = false;
  for (; i < stages_.size(); ++i) {
    const Stage& stage = stages_[i];
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      if (c_in < 0) c_in = st->ci;
      pre.push_back(st->k);
      c = st->co;
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      if (c_in < 0) c_in = st2->ci;
      pre.push_back(st2->k);
      c = st2->co;
    } else if (std::get_if<PoolStage>(&stage)) {
      pre.push_back(0);
    } else if (std::get_if<FlattenStage>(&stage)) {
      found_flatten = true;
      break;
    } else {
      return Shape{};  // dense before flatten: not an image topology
    }
  }
  if (!found_flatten || c <= 0 || i + 1 >= stages_.size()) return Shape{};
  const auto* dense = std::get_if<BinDenseStage>(&stages_[i + 1]);
  if (!dense || dense->in % c != 0) return Shape{};
  const std::int64_t hw = dense->in / c;
  std::int64_t h = static_cast<std::int64_t>(std::llround(std::sqrt(
      static_cast<double>(hw))));
  if (h * h != hw) return Shape{};
  for (auto it = pre.rbegin(); it != pre.rend(); ++it)
    h = (*it == 0) ? h * 2 : h + (*it - 1);
  return Shape{h, h, c_in};
}

std::vector<std::int64_t> XnorNetwork::predict(const Tensor& input) const {
  const Tensor logits = forward(input);
  return tensor::argmax_rows(logits);
}

std::int64_t XnorNetwork::weight_bits() const {
  std::int64_t bits = 0;
  constexpr std::int64_t kThresholdBits = 24;  // FINN threshold word width
  for (const Stage& stage : stages_) {
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      bits += st->weights.numel() + st->co * kThresholdBits;
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      bits += st2->weights.rows() * st2->weights.cols() +
              st2->co * kThresholdBits;
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      bits += st3->weights.rows() * st3->weights.cols();
      if (st3->has_threshold) bits += st3->out * kThresholdBits;
    }
    // Residual stages reuse the packed weights across levels -- that is
    // the whole point -- but each extra (level, pattern) bank is another
    // set of per-channel threshold words, plus one 16-bit scale per level.
    if (const ResidualSpec* spec = stage_residual(stage)) {
      for (const ThresholdSpec& bank : spec->extra_banks)
        bits += bank.channels() * kThresholdBits;
      bits += static_cast<std::int64_t>(spec->scale_bits.size()) * 16;
    }
  }
  return bits;
}

}  // namespace bcop::xnor
