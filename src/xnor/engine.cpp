#include "xnor/engine.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/sign_activation.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2row.hpp"
#include "tensor/ops.hpp"

namespace bcop::xnor {

using tensor::BitMatrix;
using tensor::Shape;
using tensor::Tensor;

namespace {

// Pixel values are odd integers k' in [-255, 255] divided by 255
// (facegen::MaskedFaceDataset::quantize_pixel); the first-layer accumulator
// works directly on k'.
constexpr double kPixelScale = 1.0 / 255.0;
constexpr std::int64_t kPixelMax = 255;

/// Transpose an nn weight matrix [In, Out] into packed rows [Out, In].
BitMatrix pack_transposed(const Tensor& w) {
  const std::int64_t in = w.shape()[0], out = w.shape()[1];
  BitMatrix m(out, in);
  for (std::int64_t o = 0; o < out; ++o)
    for (std::int64_t i = 0; i < in; ++i)
      m.set_from_sign(o, i, w.at2(i, o));
  return m;
}

/// First-layer integer accumulators [M, co] for quantized-pixel input;
/// shared by the float-domain and bit-domain forward paths.
std::vector<std::int32_t> first_conv_acc(const Tensor& x,
                                         const FirstConvStage& st,
                                         std::int64_t& m_out) {
  // Recover integer pixel codes and run an exact integer GEMM in float.
  Tensor q(x.shape());
  for (std::int64_t j = 0; j < x.numel(); ++j)
    q[j] = std::nearbyint(x[j] * 255.f);
  Tensor patches;
  tensor::im2row(q, st.k, patches);
  const std::int64_t M = patches.shape()[0];
  Tensor acc_f(Shape{M, st.co});
  tensor::gemm_nn(M, st.co, patches.shape()[1], patches.data(),
                  st.weights.data(), acc_f.data());
  std::vector<std::int32_t> acc(static_cast<std::size_t>(M * st.co));
  for (std::int64_t j = 0; j < acc_f.numel(); ++j)
    acc[static_cast<std::size_t>(j)] =
        static_cast<std::int32_t>(std::lround(acc_f[j]));
  m_out = M;
  return acc;
}

/// Row kernel for the fused first-conv: accumulate output pixels'
/// `CO` channels with the accumulators held in fixed-size local arrays
/// the compiler keeps in vector registers, then fire the folded
/// thresholds and emit packed bits directly. All arithmetic is exact:
/// pixel codes and +-1 weights are integers and |acc| <= K*255 << 2^24.
///
/// Four horizontally adjacent output pixels are computed together: they
/// share every weight load, and their input patches are the same span
/// shifted by `c`, so one broadcast-FMA sweep feeds four accumulator
/// vectors. The `omp simd` hints are required -- without them GCC leaves
/// the channel loop scalar ("complicated access pattern") and the first
/// conv dominates the whole batched forward. Thresholds arrive in
/// PreparedThresholds form (thr/inv) so firing is a branch-free compare
/// the vectorizer folds into a mask; a branchy per-channel `if` here costs
/// more than the convolution itself.
template <int CO>
void first_conv_rows_fixed(const float* q, const FirstConvStage& st,
                           const std::int32_t* thr, const std::int32_t* inv,
                           std::int64_t h, std::int64_t w, std::int64_t c,
                           std::int64_t ho, std::int64_t wo, std::int64_t lo,
                           std::int64_t hi, BitMatrix& out) {
  static_assert(CO <= 64, "fixed kernel emits one 64-bit word per pixel");
  const float* wts = st.weights.data();
  const std::int64_t k = st.k, kc = st.k * c;
  std::int64_t r = lo;
  while (r < hi) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    const float* base = q + (((img * h) + y) * w + x) * c;
    if (x + 4 <= wo && r + 4 <= hi) {
      float acc[4][CO] = {};
      for (std::int64_t ky = 0; ky < k; ++ky) {
        // For a fixed ky the (kx, c) patch span is contiguous in both the
        // quantized input and the [K*K*Ci, Co] weight matrix.
        const float* p = base + ky * w * c;
        const float* wrow = wts + ky * kc * CO;
        for (std::int64_t i = 0; i < kc; ++i) {
          const float* wr = wrow + i * CO;
          const float a0 = p[i], a1 = p[i + c];
          const float a2 = p[i + 2 * c], a3 = p[i + 3 * c];
#pragma omp simd
          for (int j = 0; j < CO; ++j) {
            acc[0][j] += a0 * wr[j];
            acc[1][j] += a1 * wr[j];
            acc[2][j] += a2 * wr[j];
            acc[3][j] += a3 * wr[j];
          }
        }
      }
      for (int m = 0; m < 4; ++m) {
        std::uint64_t bits = 0;
#pragma omp simd reduction(| : bits)
        for (int j = 0; j < CO; ++j)
          bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                      (static_cast<std::int32_t>(acc[m][j]) >= thr[j]) ^
                      inv[j]))
                  << j;
        out.row(r + m)[0] = bits;
      }
      r += 4;
    } else {
      float acc[CO] = {};
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const float* p = base + ky * w * c;
        const float* wrow = wts + ky * kc * CO;
        for (std::int64_t i = 0; i < kc; ++i) {
          const float a = p[i];
          const float* wr = wrow + i * CO;
#pragma omp simd
          for (int j = 0; j < CO; ++j) acc[j] += a * wr[j];
        }
      }
      std::uint64_t bits = 0;
#pragma omp simd reduction(| : bits)
      for (int j = 0; j < CO; ++j)
        bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    (static_cast<std::int32_t>(acc[j]) >= thr[j]) ^ inv[j]))
                << j;
      out.row(r)[0] = bits;
      ++r;
    }
  }
}

/// Generic-width variant of first_conv_rows_fixed (scratch accumulators).
void first_conv_rows_any(const float* q, const FirstConvStage& st,
                         const std::int32_t* thr, const std::int32_t* inv,
                         std::int64_t h, std::int64_t w, std::int64_t c,
                         std::int64_t ho, std::int64_t wo, std::int64_t lo,
                         std::int64_t hi, BitMatrix& out) {
  const float* wts = st.weights.data();
  const std::int64_t k = st.k, co = st.co;
  std::vector<float> acc(static_cast<std::size_t>(co));
  for (std::int64_t r = lo; r < hi; ++r) {
    const std::int64_t img = r / (ho * wo);
    const std::int64_t rem = r - img * ho * wo;
    const std::int64_t y = rem / wo, x = rem - y * wo;
    std::fill(acc.begin(), acc.end(), 0.f);
    for (std::int64_t ky = 0; ky < k; ++ky) {
      const float* p = q + (((img * h) + y + ky) * w + x) * c;
      const float* wrow = wts + ky * k * c * co;
      float* av = acc.data();
      for (std::int64_t i = 0; i < k * c; ++i) {
        const float a = p[i];
        const float* wr = wrow + i * co;
#pragma omp simd
        for (std::int64_t j = 0; j < co; ++j) av[j] += a * wr[j];
      }
    }
    std::uint64_t* dst = out.row(r);
    for (std::int64_t word = 0; word * 64 < co; ++word) {
      const std::int64_t base = word * 64;
      const std::int64_t n = std::min<std::int64_t>(64, co - base);
      const float* ab = acc.data() + base;
      const std::int32_t* tp = thr + base;
      const std::int32_t* ip = inv + base;
      std::uint64_t bits = 0;
#pragma omp simd reduction(| : bits)
      for (std::int64_t i = 0; i < n; ++i)
        bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    (static_cast<std::int32_t>(ab[i]) >= tp[i]) ^ ip[i]))
                << i;
      dst[word] = bits;
    }
  }
}

/// Fused first-conv for the batched path: quantize -> conv -> threshold ->
/// packed bits in one sweep, with no im2row patch matrix or accumulator
/// tensor materialized (those dominate the batched runtime otherwise).
/// Bit-identical to first_conv_acc + apply_thresholds_packed.
void first_conv_to_bits(const Tensor& x, const FirstConvStage& st,
                        BitMatrix& out) {
  const Shape& s = x.shape();
  const std::int64_t N = s[0], H = s[1], W = s[2], C = s[3];
  const std::int64_t Ho = tensor::conv_out_dim(H, st.k);
  const std::int64_t Wo = tensor::conv_out_dim(W, st.k);
  std::vector<float> q(static_cast<std::size_t>(x.numel()));
  for (std::int64_t j = 0; j < x.numel(); ++j)
    q[static_cast<std::size_t>(j)] = std::nearbyint(x[j] * 255.f);
  out = BitMatrix(N * Ho * Wo, st.co);
  const PreparedThresholds prep(st.thresholds);
  const std::int32_t* thr = prep.thr.data();
  const std::int32_t* inv = prep.inv.data();
  parallel::parallel_for_chunked(
      parallel::ThreadPool::global(), 0, N * Ho * Wo,
      [&](std::int64_t lo, std::int64_t hi) {
        switch (st.co) {
          case 16:
            first_conv_rows_fixed<16>(q.data(), st, thr, inv, H, W, C, Ho, Wo,
                                      lo, hi, out);
            break;
          case 64:
            first_conv_rows_fixed<64>(q.data(), st, thr, inv, H, W, C, Ho, Wo,
                                      lo, hi, out);
            break;
          default:
            first_conv_rows_any(q.data(), st, thr, inv, H, W, C, Ho, Wo, lo,
                                hi, out);
        }
      });
}

/// 2x2 stride-2 max pool on {-1,+1} float activations.
Tensor pool2_float(const Tensor& x) {
  const Shape& s = x.shape();
  const std::int64_t N = s[0], H = s[1], W = s[2], C = s[3];
  Tensor out(Shape{N, H / 2, W / 2, C});
  for (std::int64_t nn_ = 0; nn_ < N; ++nn_)
    for (std::int64_t yy = 0; yy < H / 2; ++yy)
      for (std::int64_t xx = 0; xx < W / 2; ++xx)
        for (std::int64_t c = 0; c < C; ++c) {
          // OR over the window: any +1 wins.
          const float m =
              std::max(std::max(x.at4(nn_, 2 * yy, 2 * xx, c),
                                x.at4(nn_, 2 * yy, 2 * xx + 1, c)),
                       std::max(x.at4(nn_, 2 * yy + 1, 2 * xx, c),
                                x.at4(nn_, 2 * yy + 1, 2 * xx + 1, c)));
          out.at4(nn_, yy, xx, c) = m;
        }
  return out;
}

/// 2x2 stride-2 max pool in the bit domain: word-wise OR of the four
/// pixel bit-fields (padding bits stay zero because OR of zeros is zero).
BitMatrix pool2_bits(const BitMatrix& pixels, std::int64_t n, std::int64_t h,
                     std::int64_t w) {
  const std::int64_t ho = h / 2, wo = w / 2;
  BitMatrix out(n * ho * wo, pixels.cols());
  const std::int64_t wpp = pixels.words_per_row();
  for (std::int64_t nn_ = 0; nn_ < n; ++nn_)
    for (std::int64_t yy = 0; yy < ho; ++yy)
      for (std::int64_t xx = 0; xx < wo; ++xx) {
        const std::int64_t base = (nn_ * h + 2 * yy) * w + 2 * xx;
        const std::uint64_t* r0 = pixels.row(base);
        const std::uint64_t* r1 = pixels.row(base + 1);
        const std::uint64_t* r2 = pixels.row(base + w);
        const std::uint64_t* r3 = pixels.row(base + w + 1);
        std::uint64_t* dst = out.row((nn_ * ho + yy) * wo + xx);
        for (std::int64_t i = 0; i < wpp; ++i)
          dst[i] = (r0[i] | r1[i]) | (r2[i] | r3[i]);
      }
  return out;
}

/// Concatenate the per-pixel bit-fields of each image into one flat row
/// [N, ppi*C] -- the bit-domain Flatten (same (h, w, c) element order as
/// the float reshape).
BitMatrix flatten_pixels(const BitMatrix& pixels, std::int64_t n,
                         std::int64_t ppi, std::int64_t c) {
  BitMatrix out(n, ppi * c);
  const std::int64_t wpp = pixels.words_per_row();
  if (c % 64 == 0) {
    for (std::int64_t i = 0; i < n; ++i)
      std::memcpy(out.row(i), pixels.row(i * ppi),
                  static_cast<std::size_t>(ppi * wpp) * sizeof(std::uint64_t));
  } else {
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t p = 0; p < ppi; ++p)
        tensor::append_bits(out.row(i), p * c, pixels.row(i * ppi + p), c);
  }
  return out;
}

/// Expand packed bits back to a {-1,+1} float tensor (only needed when a
/// stage list ends without a classifier, e.g. partial networks in tests).
Tensor unpack_bits(const BitMatrix& m, const Shape& shape) {
  Tensor out(shape);
  const std::int64_t cols = m.cols();
  for (std::int64_t r = 0; r < m.rows(); ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      out[r * cols + c] = m.get(r, c) ? 1.f : -1.f;
  return out;
}

}  // namespace

XnorNetwork::XnorNetwork(std::string name, std::vector<Stage> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  if (stages_.empty())
    throw std::invalid_argument("XnorNetwork: empty stage list");
}

std::string stage_kind(const Stage& s) {
  return std::visit(
      [](const auto& st) -> std::string {
        using T = std::decay_t<decltype(st)>;
        if constexpr (std::is_same_v<T, FirstConvStage>) return "FirstConv";
        else if constexpr (std::is_same_v<T, BinConvStage>) return "BinConv";
        else if constexpr (std::is_same_v<T, PoolStage>) return "Pool";
        else if constexpr (std::is_same_v<T, FlattenStage>) return "Flatten";
        else return "BinDense";
      },
      s);
}

void apply_thresholds(const std::vector<std::int32_t>& acc, std::int64_t rows,
                      const ThresholdSpec& spec, float* out) {
  const std::int64_t C = spec.channels();
  if (static_cast<std::int64_t>(acc.size()) != rows * C)
    throw std::invalid_argument("apply_thresholds: size mismatch");
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < C; ++c)
      out[r * C + c] = spec.fire(acc[static_cast<std::size_t>(r * C + c)], c)
                           ? 1.f
                           : -1.f;
}

XnorNetwork XnorNetwork::fold(nn::Sequential& model) {
  XnorNetwork net;
  net.name_ = model.name();
  const std::size_t n = model.size();
  std::size_t i = 0;
  bool first_conv = true;

  auto take_bn_sign = [&](const std::string& where) -> nn::BatchNorm* {
    if (i + 1 >= n)
      throw std::runtime_error("XnorNetwork::fold: " + where +
                               " not followed by BatchNorm+Sign");
    auto* bn = dynamic_cast<nn::BatchNorm*>(&model.layer(i));
    auto* sign = dynamic_cast<nn::SignActivation*>(&model.layer(i + 1));
    if (!bn || !sign)
      throw std::runtime_error("XnorNetwork::fold: " + where +
                               " must be followed by BatchNorm then Sign, got " +
                               model.layer(i).type() + ", " +
                               model.layer(i + 1).type());
    i += 2;
    return bn;
  };

  while (i < n) {
    nn::Layer& l = model.layer(i);
    if (auto* conv = dynamic_cast<nn::BinaryConv2d*>(&l)) {
      ++i;
      nn::BatchNorm* bn = take_bn_sign(std::string("conv ") + std::to_string(i));
      const std::int64_t fan = conv->kernel() * conv->kernel() * conv->in_channels();
      if (first_conv) {
        FirstConvStage st;
        st.k = conv->kernel();
        st.ci = conv->in_channels();
        st.co = conv->out_channels();
        st.weights = conv->binarized_weights();
        st.thresholds =
            fold_batchnorm(*bn, -fan * kPixelMax, fan * kPixelMax, kPixelScale);
        net.stages_.emplace_back(std::move(st));
        first_conv = false;
      } else {
        BinConvStage st;
        st.k = conv->kernel();
        st.ci = conv->in_channels();
        st.co = conv->out_channels();
        st.weights = pack_transposed(conv->binarized_weights());
        st.thresholds = fold_batchnorm(*bn, -fan, fan, 1.0);
        net.stages_.emplace_back(std::move(st));
      }
    } else if (dynamic_cast<nn::MaxPool2*>(&l)) {
      net.stages_.emplace_back(PoolStage{});
      ++i;
    } else if (dynamic_cast<nn::Flatten*>(&l)) {
      net.stages_.emplace_back(FlattenStage{});
      ++i;
    } else if (auto* dense = dynamic_cast<nn::BinaryDense*>(&l)) {
      ++i;
      BinDenseStage st;
      st.in = dense->in_features();
      st.out = dense->out_features();
      st.weights = pack_transposed(dense->binarized_weights());
      if (i == n) {
        st.has_threshold = false;  // classifier layer: raw logits
      } else {
        nn::BatchNorm* bn = take_bn_sign("dense " + std::to_string(i));
        st.thresholds = fold_batchnorm(*bn, -st.in, st.in, 1.0);
      }
      net.stages_.emplace_back(std::move(st));
    } else {
      throw std::runtime_error(
          std::string("XnorNetwork::fold: unsupported layer '") + l.type() +
          "' -- only BinaryConv2d/BinaryDense BNNs can be folded");
    }
  }
  if (net.stages_.empty())
    throw std::runtime_error("XnorNetwork::fold: empty model");
  return net;
}

Tensor XnorNetwork::forward(const Tensor& input) const {
  Tensor x = input;
  for (const Stage& stage : stages_) {
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      std::int64_t M = 0;
      const std::vector<std::int32_t> acc = first_conv_acc(x, *st, M);
      const std::int64_t N = x.shape()[0];
      const std::int64_t Ho = tensor::conv_out_dim(x.shape()[1], st->k);
      const std::int64_t Wo = tensor::conv_out_dim(x.shape()[2], st->k);
      Tensor out(Shape{N, Ho, Wo, st->co});
      apply_thresholds(acc, M, st->thresholds, out.data());
      x = std::move(out);
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      Tensor patches;
      tensor::im2row(x, st2->k, patches);
      const std::int64_t M = patches.shape()[0];
      const BitMatrix packed =
          tensor::pack_matrix(patches.data(), M, patches.shape()[1]);
      std::vector<std::int32_t> acc;
      tensor::binary_gemm(packed, st2->weights, acc);
      const std::int64_t N = x.shape()[0];
      const std::int64_t Ho = tensor::conv_out_dim(x.shape()[1], st2->k);
      const std::int64_t Wo = tensor::conv_out_dim(x.shape()[2], st2->k);
      Tensor out(Shape{N, Ho, Wo, st2->co});
      apply_thresholds(acc, M, st2->thresholds, out.data());
      x = std::move(out);
    } else if (std::get_if<PoolStage>(&stage)) {
      x = pool2_float(x);
    } else if (std::get_if<FlattenStage>(&stage)) {
      x = x.reshaped(Shape{x.shape()[0], x.numel() / x.shape()[0]});
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      const std::int64_t N = x.shape()[0];
      const BitMatrix packed = tensor::pack_matrix(x.data(), N, st3->in);
      std::vector<std::int32_t> acc;
      tensor::binary_gemm(packed, st3->weights, acc);
      Tensor out(Shape{N, st3->out});
      if (st3->has_threshold) {
        apply_thresholds(acc, N, st3->thresholds, out.data());
      } else {
        for (std::int64_t j = 0; j < out.numel(); ++j)
          out[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]);
      }
      x = std::move(out);
    }
  }
  return x;
}

void apply_thresholds_packed(const std::vector<std::int32_t>& acc,
                             std::int64_t rows, const ThresholdSpec& spec,
                             tensor::BitMatrix& out) {
  const std::int64_t C = spec.channels();
  if (static_cast<std::int64_t>(acc.size()) != rows * C)
    throw std::invalid_argument("apply_thresholds_packed: size mismatch");
  out = BitMatrix(rows, C);
  const std::int64_t wpr = out.words_per_row();
  // Branch-free compare mask per 64-channel word (see PreparedThresholds);
  // per-channel spec.fire() branches cost more than the XNOR GEMM itself.
  const PreparedThresholds prep(spec);
  parallel::parallel_for_chunked(
      parallel::ThreadPool::global(), 0, rows,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t r = lo; r < hi; ++r) {
          const std::int32_t* a = acc.data() + r * C;
          std::uint64_t* w = out.row(r);
          for (std::int64_t word = 0; word < wpr; ++word) {
            const std::int64_t base = word * 64;
            const std::int64_t n = std::min<std::int64_t>(64, C - base);
            const std::int32_t* ab = a + base;
            const std::int32_t* tp = prep.thr.data() + base;
            const std::int32_t* ip = prep.inv.data() + base;
            std::uint64_t bits = 0;
#pragma omp simd reduction(| : bits)
            for (std::int64_t i = 0; i < n; ++i)
              bits |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                          (ab[i] >= tp[i]) ^ ip[i]))
                      << i;
            w[word] = bits;
          }
        }
      });
}

Tensor XnorNetwork::forward_batch(const Tensor& input) const {
  Tensor x = input;
  // Bit-domain state: pixel-major packed activations plus their logical
  // NHWC dims. `flat` marks post-flatten rank-2 semantics for the H==W==1
  // case where the two are otherwise indistinguishable.
  BitMatrix pixels;
  std::int64_t bn = 0, bh = 0, bw = 0, bc = 0;
  bool in_bits = false, flat = false;

  auto pack_float_activations = [&]() {
    const Shape& s = x.shape();
    if (s.rank() != 4)
      throw std::runtime_error(
          "forward_batch: binary conv stage needs rank-4 activations, got " +
          s.str());
    pixels = tensor::pack_matrix(x.data(), s[0] * s[1] * s[2], s[3]);
    bn = s[0];
    bh = s[1];
    bw = s[2];
    bc = s[3];
    in_bits = true;
    flat = false;
  };

  for (const Stage& stage : stages_) {
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      if (in_bits)
        throw std::runtime_error(
            "forward_batch: FirstConv after a binary stage is unsupported");
      const std::int64_t N = x.shape()[0];
      const std::int64_t Ho = tensor::conv_out_dim(x.shape()[1], st->k);
      const std::int64_t Wo = tensor::conv_out_dim(x.shape()[2], st->k);
      first_conv_to_bits(x, *st, pixels);
      bn = N;
      bh = Ho;
      bw = Wo;
      bc = st->co;
      in_bits = true;
      flat = false;
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      if (!in_bits) pack_float_activations();
      BitMatrix patch_rows;
      tensor::bit_im2row(pixels, bn, bh, bw, bc, st2->k, patch_rows);
      std::vector<std::int32_t> acc;
      tensor::binary_gemm(patch_rows, st2->weights, acc);
      const std::int64_t ho = tensor::conv_out_dim(bh, st2->k);
      const std::int64_t wo = tensor::conv_out_dim(bw, st2->k);
      apply_thresholds_packed(acc, bn * ho * wo, st2->thresholds, pixels);
      bh = ho;
      bw = wo;
      bc = st2->co;
      flat = false;
    } else if (std::get_if<PoolStage>(&stage)) {
      if (in_bits) {
        pixels = pool2_bits(pixels, bn, bh, bw);
        bh /= 2;
        bw /= 2;
      } else {
        x = pool2_float(x);
      }
    } else if (std::get_if<FlattenStage>(&stage)) {
      if (in_bits) {
        if (bh * bw != 1)
          pixels = flatten_pixels(pixels, bn, bh * bw, bc);
        bc = bh * bw * bc;
        bh = bw = 1;
        flat = true;
      } else {
        x = x.reshaped(Shape{x.shape()[0], x.numel() / x.shape()[0]});
      }
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      BitMatrix packed_local;
      const BitMatrix* a = nullptr;
      std::int64_t N = 0;
      if (in_bits) {
        if (bh * bw != 1) {
          // Implicit flatten, as the float path's pack_matrix would do.
          packed_local = flatten_pixels(pixels, bn, bh * bw, bc);
          a = &packed_local;
        } else {
          a = &pixels;
        }
        N = bn;
      } else {
        N = x.shape()[0];
        packed_local = tensor::pack_matrix(x.data(), N, st3->in);
        a = &packed_local;
      }
      std::vector<std::int32_t> acc;
      tensor::binary_gemm(*a, st3->weights, acc);
      if (st3->has_threshold) {
        apply_thresholds_packed(acc, N, st3->thresholds, pixels);
        bn = N;
        bh = bw = 1;
        bc = st3->out;
        in_bits = true;
        flat = true;
      } else {
        Tensor out(Shape{N, st3->out});
        for (std::int64_t j = 0; j < out.numel(); ++j)
          out[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]);
        x = std::move(out);
        in_bits = false;
      }
    }
  }
  if (in_bits) {
    // Stage list ended without a classifier: surface the {-1,+1} state in
    // the same shape the float-domain path would return.
    const Shape s = flat ? Shape{bn, bc} : Shape{bn, bh, bw, bc};
    return unpack_bits(pixels, s);
  }
  return x;
}

Shape XnorNetwork::expected_input_shape() const {
  // Forward pass collects channels and the pre-flatten conv/pool sequence;
  // the spatial input size is then solved backwards from the feature count
  // of the first dense layer.
  std::int64_t c_in = -1, c = -1;
  std::vector<std::int64_t> pre;  // conv kernel size, or 0 for a pool
  std::size_t i = 0;
  bool found_flatten = false;
  for (; i < stages_.size(); ++i) {
    const Stage& stage = stages_[i];
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      if (c_in < 0) c_in = st->ci;
      pre.push_back(st->k);
      c = st->co;
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      if (c_in < 0) c_in = st2->ci;
      pre.push_back(st2->k);
      c = st2->co;
    } else if (std::get_if<PoolStage>(&stage)) {
      pre.push_back(0);
    } else if (std::get_if<FlattenStage>(&stage)) {
      found_flatten = true;
      break;
    } else {
      return Shape{};  // dense before flatten: not an image topology
    }
  }
  if (!found_flatten || c <= 0 || i + 1 >= stages_.size()) return Shape{};
  const auto* dense = std::get_if<BinDenseStage>(&stages_[i + 1]);
  if (!dense || dense->in % c != 0) return Shape{};
  const std::int64_t hw = dense->in / c;
  std::int64_t h = static_cast<std::int64_t>(std::llround(std::sqrt(
      static_cast<double>(hw))));
  if (h * h != hw) return Shape{};
  for (auto it = pre.rbegin(); it != pre.rend(); ++it)
    h = (*it == 0) ? h * 2 : h + (*it - 1);
  return Shape{h, h, c_in};
}

std::vector<std::int64_t> XnorNetwork::predict(const Tensor& input) const {
  const Tensor logits = forward(input);
  return tensor::argmax_rows(logits);
}

std::int64_t XnorNetwork::weight_bits() const {
  std::int64_t bits = 0;
  constexpr std::int64_t kThresholdBits = 24;  // FINN threshold word width
  for (const Stage& stage : stages_) {
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      bits += st->weights.numel() + st->co * kThresholdBits;
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      bits += st2->weights.rows() * st2->weights.cols() +
              st2->co * kThresholdBits;
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      bits += st3->weights.rows() * st3->weights.cols();
      if (st3->has_threshold) bits += st3->out * kThresholdBits;
    }
  }
  return bits;
}

}  // namespace bcop::xnor
