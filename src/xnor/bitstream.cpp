#include "xnor/bitstream.hpp"

#include <bit>
#include <stdexcept>

#include "util/serialize.hpp"

namespace bcop::xnor {

using tensor::BitMatrix;
using tensor::Shape;
using tensor::Tensor;
using util::BinaryReader;
using util::BinaryWriter;

namespace {

// v1: classic single-level stages. v2 appends a RSDL residual section
// (level count, dyadic scale bits, pattern threshold banks) after each
// binary stage's thresholds; v1 files load as levels = 1 defaults.
constexpr std::uint32_t kVersion = 2;

void write_thresholds(BinaryWriter& w, const ThresholdSpec& spec) {
  w.write_tag("THRS");
  std::vector<std::uint64_t> t(spec.t.size());
  for (std::size_t i = 0; i < spec.t.size(); ++i)
    t[i] = std::bit_cast<std::uint64_t>(spec.t[i]);
  w.write_u64_array(t);
  std::vector<std::int32_t> flips(spec.flip.begin(), spec.flip.end());
  w.write_i32_array(flips);
}

ThresholdSpec read_thresholds(BinaryReader& r) {
  r.expect_tag("THRS");
  ThresholdSpec spec;
  const auto t = r.read_u64_array();
  spec.t.resize(t.size());
  for (std::size_t i = 0; i < t.size(); ++i)
    spec.t[i] = std::bit_cast<std::int64_t>(t[i]);
  const auto flips = r.read_i32_array();
  if (flips.size() != t.size())
    throw std::runtime_error("bitstream: threshold arity mismatch");
  spec.flip.resize(flips.size());
  for (std::size_t i = 0; i < flips.size(); ++i)
    spec.flip[i] = static_cast<std::uint8_t>(flips[i] != 0);
  return spec;
}

void write_bits(BinaryWriter& w, const BitMatrix& m) {
  w.write_tag("BITS");
  w.write_u64(static_cast<std::uint64_t>(m.rows()));
  w.write_u64(static_cast<std::uint64_t>(m.cols()));
  w.write_u64_array(m.storage());
}

BitMatrix read_bits(BinaryReader& r) {
  r.expect_tag("BITS");
  const auto rows = static_cast<std::int64_t>(r.read_u64());
  const auto cols = static_cast<std::int64_t>(r.read_u64());
  BitMatrix m(rows, cols);
  const auto words = r.read_u64_array();
  if (words.size() != static_cast<std::size_t>(rows * m.words_per_row()))
    throw std::runtime_error("bitstream: packed weight size mismatch");
  for (std::int64_t row = 0; row < rows; ++row)
    for (std::int64_t word = 0; word < m.words_per_row(); ++word)
      m.row(row)[word] =
          words[static_cast<std::size_t>(row * m.words_per_row() + word)];
  return m;
}

void write_residual(BinaryWriter& w, const ResidualSpec& spec) {
  w.write_tag("RSDL");
  w.write_u64(static_cast<std::uint64_t>(spec.levels));
  w.write_i32_array(spec.scale_bits);
  w.write_u64(spec.extra_banks.size());
  for (const ThresholdSpec& bank : spec.extra_banks) write_thresholds(w, bank);
}

ResidualSpec read_residual(BinaryReader& r) {
  r.expect_tag("RSDL");
  ResidualSpec spec;
  spec.levels = static_cast<std::int64_t>(r.read_u64());
  if (spec.levels < 1 || spec.levels > 3)
    throw std::runtime_error("bitstream: residual level count out of [1, 3]");
  spec.scale_bits = r.read_i32_array();
  if (!spec.scale_bits.empty() &&
      static_cast<std::int64_t>(spec.scale_bits.size()) != spec.levels)
    throw std::runtime_error("bitstream: residual scale arity mismatch");
  const std::uint64_t banks = r.read_u64();
  if (banks != (std::uint64_t{1} << spec.levels) - 2)
    throw std::runtime_error("bitstream: residual bank count mismatch");
  spec.extra_banks.reserve(banks);
  for (std::uint64_t b = 0; b < banks; ++b)
    spec.extra_banks.push_back(read_thresholds(r));
  return spec;
}

}  // namespace

void save_bitstream(const XnorNetwork& net, const std::string& path) {
  BinaryWriter w(path);
  w.write_tag("BCBS");
  w.write_u32(kVersion);
  w.write_string(net.name());
  w.write_u64(net.stages().size());
  for (const Stage& stage : net.stages()) {
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      w.write_tag("FCNV");
      w.write_u64(static_cast<std::uint64_t>(st->k));
      w.write_u64(static_cast<std::uint64_t>(st->ci));
      w.write_u64(static_cast<std::uint64_t>(st->co));
      // First-layer weights are {-1,+1}; store them sign-packed by output
      // channel like every other stage.
      BitMatrix packed(st->co, st->k * st->k * st->ci);
      for (std::int64_t o = 0; o < st->co; ++o)
        for (std::int64_t i = 0; i < st->k * st->k * st->ci; ++i)
          packed.set_from_sign(o, i, st->weights.at2(i, o));
      write_bits(w, packed);
      write_thresholds(w, st->thresholds);
      write_residual(w, st->residual);
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      w.write_tag("BCNV");
      w.write_u64(static_cast<std::uint64_t>(st2->k));
      w.write_u64(static_cast<std::uint64_t>(st2->ci));
      w.write_u64(static_cast<std::uint64_t>(st2->co));
      write_bits(w, st2->weights);
      write_thresholds(w, st2->thresholds);
      write_residual(w, st2->residual);
    } else if (std::get_if<PoolStage>(&stage)) {
      w.write_tag("POOL");
    } else if (std::get_if<FlattenStage>(&stage)) {
      w.write_tag("FLAT");
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      w.write_tag("BDNS");
      w.write_u64(static_cast<std::uint64_t>(st3->in));
      w.write_u64(static_cast<std::uint64_t>(st3->out));
      w.write_u32(st3->has_threshold ? 1 : 0);
      write_bits(w, st3->weights);
      if (st3->has_threshold) {
        write_thresholds(w, st3->thresholds);
        write_residual(w, st3->residual);
      }
    }
  }
  w.close();
}

XnorNetwork load_bitstream(const std::string& path) {
  BinaryReader r(path);
  r.expect_tag("BCBS");
  const std::uint32_t version = r.read_u32();
  if (version < 1 || version > kVersion)
    throw std::runtime_error("bitstream: unsupported version " +
                             std::to_string(version));
  // v1 files predate residual binarization: every stage loads with the
  // default (levels = 1, unscaled) descriptor.
  const bool has_residual = version >= 2;
  const std::string name = r.read_string();
  const std::uint64_t count = r.read_u64();
  std::vector<Stage> stages;
  stages.reserve(count);
  for (std::uint64_t s = 0; s < count; ++s) {
    char tag[4];
    // Peek the section tag by reading it as a 4-byte string.
    const std::string kind = [&] {
      std::string k(4, '\0');
      // BinaryReader has no raw peek; read via expect-less path: reuse
      // read_u32 and decode bytes.
      const std::uint32_t v = r.read_u32();
      k[0] = static_cast<char>(v & 0xff);
      k[1] = static_cast<char>((v >> 8) & 0xff);
      k[2] = static_cast<char>((v >> 16) & 0xff);
      k[3] = static_cast<char>((v >> 24) & 0xff);
      return k;
    }();
    (void)tag;
    if (kind == "FCNV") {
      FirstConvStage st;
      st.k = static_cast<std::int64_t>(r.read_u64());
      st.ci = static_cast<std::int64_t>(r.read_u64());
      st.co = static_cast<std::int64_t>(r.read_u64());
      const BitMatrix packed = read_bits(r);
      if (packed.rows() != st.co || packed.cols() != st.k * st.k * st.ci)
        throw std::runtime_error("bitstream: FirstConv geometry mismatch");
      st.weights = Tensor(Shape{st.k * st.k * st.ci, st.co});
      for (std::int64_t o = 0; o < st.co; ++o)
        for (std::int64_t i = 0; i < packed.cols(); ++i)
          st.weights.at2(i, o) = packed.get(o, i) ? 1.f : -1.f;
      st.thresholds = read_thresholds(r);
      if (has_residual) st.residual = read_residual(r);
      stages.emplace_back(std::move(st));
    } else if (kind == "BCNV") {
      BinConvStage st;
      st.k = static_cast<std::int64_t>(r.read_u64());
      st.ci = static_cast<std::int64_t>(r.read_u64());
      st.co = static_cast<std::int64_t>(r.read_u64());
      st.weights = read_bits(r);
      if (st.weights.rows() != st.co ||
          st.weights.cols() != st.k * st.k * st.ci)
        throw std::runtime_error("bitstream: BinConv geometry mismatch");
      st.thresholds = read_thresholds(r);
      if (has_residual) st.residual = read_residual(r);
      stages.emplace_back(std::move(st));
    } else if (kind == "POOL") {
      stages.emplace_back(PoolStage{});
    } else if (kind == "FLAT") {
      stages.emplace_back(FlattenStage{});
    } else if (kind == "BDNS") {
      BinDenseStage st;
      st.in = static_cast<std::int64_t>(r.read_u64());
      st.out = static_cast<std::int64_t>(r.read_u64());
      st.has_threshold = r.read_u32() != 0;
      st.weights = read_bits(r);
      if (st.weights.rows() != st.out || st.weights.cols() != st.in)
        throw std::runtime_error("bitstream: BinDense geometry mismatch");
      if (st.has_threshold) {
        st.thresholds = read_thresholds(r);
        if (has_residual) st.residual = read_residual(r);
      }
      stages.emplace_back(std::move(st));
    } else {
      throw std::runtime_error("bitstream: unknown stage tag '" + kind + "'");
    }
  }
  return XnorNetwork(name, std::move(stages));
}

}  // namespace bcop::xnor
