#include "xnor/folding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bcop::xnor {

bool bn_sign_predicate(const nn::BatchNorm& bn, std::int64_t c,
                       std::int64_t acc, double acc_scale) {
  BCOP_DCHECK(c >= 0 && c < bn.channels(), "channel %lld out of [0, %lld)",
              static_cast<long long>(c), static_cast<long long>(bn.channels()));
  // Mirrors BatchNorm::forward(training=false) followed by sign(y) >= 0,
  // computed in the same float precision so folding is bit-faithful.
  const float inv = 1.f / std::sqrt(bn.running_var()[c] + bn.eps());
  const float scale = bn.gamma()[c] * inv;
  const float shift = bn.beta()[c] - scale * bn.running_mean()[c];
  const float x = static_cast<float>(static_cast<double>(acc) * acc_scale);
  return scale * x + shift >= 0.f;
}

ThresholdSpec fold_batchnorm(const nn::BatchNorm& bn, std::int64_t acc_min,
                             std::int64_t acc_max, double acc_scale) {
  if (acc_min > acc_max)
    throw std::invalid_argument("fold_batchnorm: empty accumulator range");
  const std::int64_t C = bn.channels();
  ThresholdSpec spec;
  spec.t.resize(static_cast<std::size_t>(C));
  spec.flip.resize(static_cast<std::size_t>(C));

  for (std::int64_t c = 0; c < C; ++c) {
    const bool at_min = bn_sign_predicate(bn, c, acc_min, acc_scale);
    const bool at_max = bn_sign_predicate(bn, c, acc_max, acc_scale);
    const auto ci = static_cast<std::size_t>(c);
    if (at_min && at_max) {
      // Fires everywhere in range: always +1.
      spec.t[ci] = std::numeric_limits<std::int64_t>::min() + 1;
      spec.flip[ci] = 0;
    } else if (!at_min && !at_max) {
      // Never fires: always -1.
      spec.t[ci] = std::numeric_limits<std::int64_t>::max();
      spec.flip[ci] = 0;
    } else if (!at_min && at_max) {
      // Monotone rising (gamma > 0): find the smallest acc that fires.
      std::int64_t lo = acc_min, hi = acc_max;  // lo: false, hi: true
      while (hi - lo > 1) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        (bn_sign_predicate(bn, c, mid, acc_scale) ? hi : lo) = mid;
      }
      spec.t[ci] = hi;
      spec.flip[ci] = 0;
    } else {
      // Monotone falling (gamma < 0): find the largest acc that fires.
      std::int64_t lo = acc_min, hi = acc_max;  // lo: true, hi: false
      while (hi - lo > 1) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        (bn_sign_predicate(bn, c, mid, acc_scale) ? lo : hi) = mid;
      }
      spec.t[ci] = lo;
      spec.flip[ci] = 1;
    }
  }
  return spec;
}

PreparedThresholds::PreparedThresholds(const ThresholdSpec& spec) {
  const std::size_t n = spec.t.size();
  thr.resize(n);
  inv.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    // !flip: fire = acc >= t.  flip: fire = acc <= t = !(acc >= t + 1).
    std::int64_t t = spec.t[c];
    if (spec.flip[c]) t = t >= kAccBound ? kAccBound + 1 : t + 1;
    t = std::max<std::int64_t>(-kAccBound,
                               std::min<std::int64_t>(t, kAccBound + 1));
    thr[c] = static_cast<std::int32_t>(t);
    inv[c] = spec.flip[c] ? 1 : 0;
  }
}

}  // namespace bcop::xnor
