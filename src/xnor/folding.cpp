#include "xnor/folding.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bcop::xnor {

bool bn_sign_predicate(const nn::BatchNorm& bn, std::int64_t c,
                       std::int64_t acc, double acc_scale) {
  BCOP_DCHECK(c >= 0 && c < bn.channels(), "channel %lld out of [0, %lld)",
              static_cast<long long>(c), static_cast<long long>(bn.channels()));
  // Mirrors BatchNorm::forward(training=false) followed by sign(y) >= 0,
  // computed in the same float precision so folding is bit-faithful.
  const float inv = 1.f / std::sqrt(bn.running_var()[c] + bn.eps());
  const float scale = bn.gamma()[c] * inv;
  const float shift = bn.beta()[c] - scale * bn.running_mean()[c];
  const float x = static_cast<float>(static_cast<double>(acc) * acc_scale);
  return scale * x + shift >= 0.f;
}

bool bn_residual_sign_predicate(const nn::BatchNorm& bn, std::int64_t c,
                                std::int64_t acc, double acc_scale,
                                const std::vector<float>& q,
                                std::int64_t level, std::uint32_t pattern) {
  BCOP_DCHECK(level >= 0 && level < static_cast<std::int64_t>(q.size()) + 1,
              "level %lld out of range", static_cast<long long>(level));
  const float inv = 1.f / std::sqrt(bn.running_var()[c] + bn.eps());
  const float scale = bn.gamma()[c] * inv;
  const float shift = bn.beta()[c] - scale * bn.running_mean()[c];
  const float x = static_cast<float>(static_cast<double>(acc) * acc_scale);
  float e = scale * x + shift;
  // One subtraction per earlier level, in forward order -- the same float
  // operation sequence as ResidualSign::forward's `residual -= q * b`.
  for (std::int64_t j = 0; j < level; ++j)
    e -= (pattern >> j) & 1u ? q[static_cast<std::size_t>(j)]
                             : -q[static_cast<std::size_t>(j)];
  return e >= 0.f;
}

namespace {

/// Shared monotone binary search: fold any predicate that is weakly
/// monotone in acc over [acc_min, acc_max] into a ThresholdSpec channel.
/// The four cases cover always/never (constant channels, e.g. gamma == 0)
/// and the rising/falling monotone directions.
template <typename Pred>
ThresholdSpec fold_monotone(std::int64_t channels, std::int64_t acc_min,
                            std::int64_t acc_max, const Pred& pred) {
  ThresholdSpec spec;
  spec.t.resize(static_cast<std::size_t>(channels));
  spec.flip.resize(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    const bool at_min = pred(c, acc_min);
    const bool at_max = pred(c, acc_max);
    const auto ci = static_cast<std::size_t>(c);
    if (at_min && at_max) {
      // Fires everywhere in range: always +1.
      spec.t[ci] = std::numeric_limits<std::int64_t>::min() + 1;
      spec.flip[ci] = 0;
    } else if (!at_min && !at_max) {
      // Never fires: always -1.
      spec.t[ci] = std::numeric_limits<std::int64_t>::max();
      spec.flip[ci] = 0;
    } else if (!at_min && at_max) {
      // Monotone rising (gamma > 0): find the smallest acc that fires.
      std::int64_t lo = acc_min, hi = acc_max;  // lo: false, hi: true
      while (hi - lo > 1) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        (pred(c, mid) ? hi : lo) = mid;
      }
      spec.t[ci] = hi;
      spec.flip[ci] = 0;
    } else {
      // Monotone falling (gamma < 0): find the largest acc that fires.
      std::int64_t lo = acc_min, hi = acc_max;  // lo: true, hi: false
      while (hi - lo > 1) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        (pred(c, mid) ? lo : hi) = mid;
      }
      spec.t[ci] = lo;
      spec.flip[ci] = 1;
    }
  }
  return spec;
}

}  // namespace

ThresholdSpec fold_batchnorm(const nn::BatchNorm& bn, std::int64_t acc_min,
                             std::int64_t acc_max, double acc_scale) {
  if (acc_min > acc_max)
    throw std::invalid_argument("fold_batchnorm: empty accumulator range");
  return fold_monotone(bn.channels(), acc_min, acc_max,
                       [&](std::int64_t c, std::int64_t acc) {
                         return bn_sign_predicate(bn, c, acc, acc_scale);
                       });
}

ThresholdSpec fold_batchnorm_residual(const nn::BatchNorm& bn,
                                      std::int64_t acc_min,
                                      std::int64_t acc_max, double acc_scale,
                                      const std::vector<float>& q,
                                      std::int64_t level,
                                      std::uint32_t pattern) {
  if (acc_min > acc_max)
    throw std::invalid_argument(
        "fold_batchnorm_residual: empty accumulator range");
  // Subtracting per-level constants from a weakly monotone float function
  // keeps it weakly monotone (correctly rounded subtraction preserves <=),
  // so the same binary search stays valid for every (level, pattern) bank.
  return fold_monotone(bn.channels(), acc_min, acc_max,
                       [&](std::int64_t c, std::int64_t acc) {
                         return bn_residual_sign_predicate(
                             bn, c, acc, acc_scale, q, level, pattern);
                       });
}

PreparedThresholds::PreparedThresholds(const ThresholdSpec& spec) {
  const std::size_t n = spec.t.size();
  thr.resize(n);
  inv.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    // !flip: fire = acc >= t.  flip: fire = acc <= t = !(acc >= t + 1).
    std::int64_t t = spec.t[c];
    if (spec.flip[c]) t = t >= kAccBound ? kAccBound + 1 : t + 1;
    t = std::max<std::int64_t>(-kAccBound,
                               std::min<std::int64_t>(t, kAccBound + 1));
    thr[c] = static_cast<std::int32_t>(t);
    inv[c] = spec.flip[c] ? 1 : 0;
  }
}

}  // namespace bcop::xnor
