#include "net/http_parser.hpp"

namespace bcop::net {

namespace {

bool is_tchar(char c) {
  // RFC 7230 token characters (header names, methods).
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_ctl(char c) {
  const auto u = static_cast<unsigned char>(c);
  return u < 0x20 || u == 0x7f;
}

char ascii_lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Find "\r\n" in [from, len) of data; npos-like len when absent.
std::size_t find_crlf(const char* data, std::size_t len, std::size_t from) {
  for (std::size_t i = from; i + 1 < len; ++i)
    if (data[i] == '\r' && data[i + 1] == '\n') return i;
  return len;
}

std::string_view trim_ows(std::string_view v) {
  while (!v.empty() && (v.front() == ' ' || v.front() == '\t'))
    v.remove_prefix(1);
  while (!v.empty() && (v.back() == ' ' || v.back() == '\t'))
    v.remove_suffix(1);
  return v;
}

}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  return true;
}

ParseStatus parse_request(const char* data, std::size_t len,
                          const ParserLimits& limits, ParsedRequest& out) {
  out = ParsedRequest{};

  // --- Request line --------------------------------------------------------
  const std::size_t scan_cap = len < limits.max_header_bytes
                                   ? len
                                   : limits.max_header_bytes;
  std::size_t line_end = find_crlf(data, scan_cap, 0);
  if (line_end == scan_cap) {
    // No CRLF within the scan window. If the window is already at the
    // header cap the line can never terminate legally; a lone '\n' start
    // or embedded control bytes are malformed regardless of more input.
    for (std::size_t i = 0; i < scan_cap; ++i)
      if (data[i] != '\r' && is_ctl(data[i])) return ParseStatus::kBadRequest;
    return len >= limits.max_header_bytes ? ParseStatus::kHeadersTooLarge
                                          : ParseStatus::kNeedMore;
  }
  const std::string_view line(data, line_end);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0)
    return ParseStatus::kBadRequest;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1)
    return ParseStatus::kBadRequest;
  if (line.find(' ', sp2 + 1) != std::string_view::npos)
    return ParseStatus::kBadRequest;

  out.method = line.substr(0, sp1);
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);

  for (const char c : out.method)
    if (!is_tchar(c)) return ParseStatus::kBadRequest;
  if (out.target.empty() || out.target.front() != '/')
    return ParseStatus::kBadRequest;
  for (const char c : out.target)
    if (is_ctl(c)) return ParseStatus::kBadRequest;
  if (version.size() != 8 || version.substr(0, 7) != "HTTP/1." ||
      (version[7] != '0' && version[7] != '1'))
    return ParseStatus::kBadRequest;
  out.version_minor = version[7] - '0';
  out.keep_alive = out.version_minor >= 1;

  // --- Header fields -------------------------------------------------------
  bool have_content_length = false;
  std::size_t headers = 0;
  std::size_t pos = line_end + 2;
  for (;;) {
    if (pos >= limits.max_header_bytes) return ParseStatus::kHeadersTooLarge;
    const std::size_t eol = find_crlf(data, scan_cap, pos);
    if (eol == scan_cap) {
      for (std::size_t i = pos; i < scan_cap; ++i)
        if (data[i] != '\r' && is_ctl(data[i]) && data[i] != '\t')
          return ParseStatus::kBadRequest;
      return len >= limits.max_header_bytes ? ParseStatus::kHeadersTooLarge
                                            : ParseStatus::kNeedMore;
    }
    if (eol == pos) {  // blank line: headers done
      pos += 2;
      break;
    }
    if (++headers > limits.max_headers) return ParseStatus::kHeadersTooLarge;

    const std::string_view field(data + pos, eol - pos);
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return ParseStatus::kBadRequest;
    const std::string_view name = field.substr(0, colon);
    for (const char c : name)
      if (!is_tchar(c)) return ParseStatus::kBadRequest;  // incl. no SP
    const std::string_view value = trim_ows(field.substr(colon + 1));
    for (const char c : value)
      if (is_ctl(c) && c != '\t') return ParseStatus::kBadRequest;

    if (iequals(name, "content-length")) {
      if (value.empty()) return ParseStatus::kBadRequest;
      std::size_t parsed = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') return ParseStatus::kBadRequest;
        parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
        if (parsed > limits.max_body) return ParseStatus::kBodyTooLarge;
      }
      if (have_content_length && parsed != out.content_length)
        return ParseStatus::kBadRequest;  // conflicting duplicates
      have_content_length = true;
      out.content_length = parsed;
    } else if (iequals(name, "transfer-encoding")) {
      return ParseStatus::kUnsupported;
    } else if (iequals(name, "connection")) {
      if (iequals(value, "close")) out.keep_alive = false;
      else if (iequals(value, "keep-alive")) out.keep_alive = true;
    } else if (iequals(name, "expect")) {
      if (iequals(value, "100-continue")) out.expect_continue = true;
      else return ParseStatus::kBadRequest;  // 417-class; reject simply
    }
    pos = eol + 2;
  }

  // --- Body ----------------------------------------------------------------
  out.header_end = pos;
  if (len < pos + out.content_length) return ParseStatus::kNeedMore;
  out.body = std::string_view(data + pos, out.content_length);
  out.consumed = pos + out.content_length;
  return ParseStatus::kOk;
}

}  // namespace bcop::net
