// Open-loop HTTP load generator for the serving front-end.
//
// Closed-loop clients (send, wait, send) hide overload: when the server
// slows down, the client offers less load, and the measured latency looks
// fine right up to collapse. This generator is open-loop: request arrival
// times are *precomputed* from a seeded Poisson process (optionally
// non-homogeneous: bursty square wave or diurnal sinusoid, sampled by
// thinning), and senders inject each request at its scheduled instant over
// pipelined keep-alive connections whether or not earlier responses have
// arrived. Latency is measured from the scheduled arrival, so queueing
// delay the server causes is charged to the server (the coordinated-
// omission fix).
//
// Determinism: the arrival schedule is a pure function of (seed, shape,
// rate, duration) via util::Rng -- two runs offer byte-identical load.
// Accounting is conservative by construction and checked by the caller:
//   sent == 2xx + 4xx + 5xx + lost + timed_out
// (`lost` = in flight when the server closed the connection, `timed_out` =
// unanswered after the post-run drain window).
//
// bench/bench_loadgen.cpp wraps this in a CLI that emits the JSON artifact
// CI uploads; tests/test_net_stress.cpp drives it in-process.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace bcop::net {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Arrival process: "poisson" (constant rate), "burst" (square wave:
  /// peak = burst_factor x base for burst_duty of each period), "diurnal"
  /// (sinusoid with peak/trough ratio burst_factor). Mean is `rate` in all
  /// three shapes.
  std::string shape = "poisson";
  double rate = 1000.0;  // mean offered requests/second
  double burst_factor = 4.0;
  double burst_duty = 0.2;
  double period_s = 1.0;
  std::chrono::milliseconds duration{2000};
  /// Keep-alive connections; arrivals are dealt round-robin across them
  /// and each is driven by one pool task.
  unsigned connections = 4;
  std::uint64_t seed = 42;
  /// Classify payload size in bytes (u8 image = S*S*3). Sent as
  /// POST /v1/classify with a deterministic byte pattern.
  std::size_t payload_bytes = 3072;
  /// Post-run drain: how long to wait for straggler responses before
  /// counting them timed_out.
  std::chrono::milliseconds drain_timeout{2000};
};

struct LoadGenReport {
  double offered_rate = 0;   // sent / duration
  double achieved_rate = 0;  // 2xx / duration
  std::uint64_t sent = 0;
  std::uint64_t ok_2xx = 0;
  std::uint64_t err_4xx = 0;
  std::uint64_t shed_503 = 0;
  std::uint64_t err_5xx = 0;  // non-503 5xx
  std::uint64_t lost = 0;
  std::uint64_t timed_out = 0;
  double shed_fraction = 0;  // 503s / sent
  double p50_ms = 0, p90_ms = 0, p99_ms = 0, max_ms = 0;
  double duration_s = 0;

  /// Response-count conservation (every sent request accounted for).
  bool conserved() const {
    return sent == ok_2xx + err_4xx + shed_503 + err_5xx + lost + timed_out;
  }
  /// The artifact line bench_loadgen writes (one flat JSON object).
  std::string to_json() const;
};

/// Run one open-loop experiment against a live server. Blocks until every
/// scheduled request is sent and answered, lost or timed out.
LoadGenReport run_loadgen(const LoadGenConfig& config);

}  // namespace bcop::net
