// Blocking loopback HTTP client for tests plus the shared response parser.
//
// The protocol battery (tests/test_net_http.cpp) needs byte-level control:
// send half a request and stall, dribble one byte at a time, pipeline three
// requests in a single write. So the client exposes the raw socket verbs
// (send_raw / read_response) and builds convenience request() on top of
// them, instead of hiding the wire behind a request API.
//
// parse_response is the single minimal HTTP/1.1 response scanner in the
// repo; the non-blocking load generator (net/loadgen.cpp) reuses it over
// its own buffers so both consumers agree on framing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/http_parser.hpp"
#include "net/socket.hpp"

namespace bcop::net {

/// One parsed response. `body` is copied out (responses are small JSON or
/// metrics text), so it stays valid as the connection buffer mutates.
struct HttpResponse {
  int status = 0;
  bool keep_alive = true;
  std::size_t content_length = 0;
  std::string body;
};

/// Scan [data, data + len) for one complete response. kOk sets `out` and
/// `consumed` (status line + headers + body bytes); kNeedMore asks for more
/// input; kBadRequest means the peer is not speaking HTTP. Only
/// Content-Length framing is understood -- matching what HttpServer emits.
ParseStatus parse_response(const char* data, std::size_t len,
                           HttpResponse& out, std::size_t& consumed);

/// Blocking client over one TCP connection (SO_RCVTIMEO-bounded reads).
class BlockingClient {
 public:
  BlockingClient() = default;

  /// Connect to host:port; false on failure. Reconnects after close().
  bool connect(const std::string& host, std::uint16_t port,
               int timeout_ms = 5000);
  bool connected() const { return fd_.valid(); }
  void close();

  /// Write exactly these bytes (looping over short writes). False = the
  /// peer closed or errored; the connection is closed.
  bool send_raw(std::string_view bytes);

  /// Read until one complete response is buffered (or timeout / close /
  /// garbage). Consumes the response; pipelined follow-ups stay buffered
  /// for the next call. "100 Continue" interim responses are skipped.
  bool read_response(HttpResponse& out);

  /// Build and send one request. Adds Content-Length (when body is
  /// non-empty or the method takes a body) and Host; callers append any
  /// extra headers as full "Name: value\r\n" lines.
  bool send_request(std::string_view method, std::string_view target,
                    std::string_view body,
                    std::string_view extra_headers = {});

  /// send_request + read_response in one step.
  bool request(std::string_view method, std::string_view target,
               std::string_view body, HttpResponse& out,
               std::string_view extra_headers = {});

 private:
  Fd fd_;
  std::string buf_;  // bytes read but not yet consumed as responses
};

/// The request text send_request() would write, for tests that dribble or
/// pipeline raw bytes themselves.
std::string format_request(std::string_view method, std::string_view target,
                           std::string_view body,
                           std::string_view extra_headers = {});

}  // namespace bcop::net
