// Bounded HTTP/1.1 request parser: fixed limits, no allocation, no state.
//
// The parser is a pure function over a caller-owned byte range: it scans
// [data, data + len) for one complete request and either produces a
// ParsedRequest whose string_views point back into that range, or reports
// exactly why it cannot (need more bytes / protocol error / limit hit).
// This is the fixed-allocation idiom from the Boost.Beast exemplar the
// ROADMAP names, without the dependency: the connection owns one bounded
// buffer, the parser never copies out of it and never reads past `len`
// (tests/test_net_parser.cpp proves the bound on a torn-input corpus with
// exact-sized ASan allocations).
//
// Re-parsing from scratch on every arrival of bytes keeps the parser
// stateless -- byte-dribbled and pipelined input cannot desynchronize a
// state machine that has no state. Header sections are capped at
// max_header_bytes, so the worst-case rescan is bounded and tiny compared
// to one inference.
//
// Deliberately unsupported (answered at the server layer, never routed to
// the engine): Transfer-Encoding (kUnsupported -> 501), header sections
// over the limit (kHeadersTooLarge -> 431), bodies over the limit
// (kBodyTooLarge -> 413), anything malformed (kBadRequest -> 400).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bcop::net {

struct ParserLimits {
  /// Cap on request line + headers + blank line, in bytes.
  std::size_t max_header_bytes = 8192;
  /// Cap on the number of header fields.
  std::size_t max_headers = 64;
  /// Cap on Content-Length (the server sets this just above its largest
  /// accepted payload, so oversized uploads are refused before any read).
  std::size_t max_body = 1 << 20;
};

enum class ParseStatus {
  kNeedMore,         // prefix of a valid request; feed more bytes
  kOk,               // one complete request parsed
  kBadRequest,       // malformed request line / header syntax -> 400
  kHeadersTooLarge,  // header section exceeds max_header_bytes -> 431
  kBodyTooLarge,     // Content-Length exceeds max_body -> 413
  kUnsupported,      // Transfer-Encoding etc. -> 501
};

/// One parsed request. Views alias the input buffer passed to
/// parse_request and are invalidated by any mutation of it.
struct ParsedRequest {
  std::string_view method;   // e.g. "GET"
  std::string_view target;   // e.g. "/v1/classify"
  int version_minor = 1;     // HTTP/1.<n>
  bool keep_alive = true;    // Connection / version default
  bool expect_continue = false;
  std::size_t content_length = 0;
  std::string_view body;     // content_length bytes
  /// Offset just past the header-terminating CRLFCRLF. Valid whenever the
  /// header section parsed, including kNeedMore-for-body -- the server
  /// uses it to emit "100 Continue" before the body arrives.
  std::size_t header_end = 0;
  /// Total bytes consumed by this request (header_end + content_length);
  /// the connection drops this prefix and re-parses for pipelining.
  std::size_t consumed = 0;
};

/// Scan for one complete request. On kNeedMore with a complete header
/// section, the header-derived fields (method/target/keep_alive/
/// expect_continue/content_length/header_end) are already filled in.
ParseStatus parse_request(const char* data, std::size_t len,
                          const ParserLimits& limits, ParsedRequest& out);

/// Case-insensitive ASCII equality (header names, token values).
bool iequals(std::string_view a, std::string_view b);

}  // namespace bcop::net
