#include "net/client.hpp"

#include <errno.h>
#include <sys/socket.h>

#include <cstdio>

namespace bcop::net {

namespace {

std::size_t find_crlf(const char* data, std::size_t len, std::size_t from) {
  for (std::size_t i = from; i + 1 < len; ++i)
    if (data[i] == '\r' && data[i + 1] == '\n') return i;
  return len;
}

}  // namespace

ParseStatus parse_response(const char* data, std::size_t len,
                           HttpResponse& out, std::size_t& consumed) {
  out = HttpResponse{};
  consumed = 0;

  const std::size_t line_end = find_crlf(data, len, 0);
  if (line_end == len)
    return len > 8192 ? ParseStatus::kBadRequest : ParseStatus::kNeedMore;
  const std::string_view line(data, line_end);
  // "HTTP/1.x NNN reason"
  if (line.size() < 12 || line.substr(0, 7) != "HTTP/1." ||
      line[8] != ' ')
    return ParseStatus::kBadRequest;
  int status = 0;
  for (std::size_t i = 9; i < 12; ++i) {
    if (line[i] < '0' || line[i] > '9') return ParseStatus::kBadRequest;
    status = status * 10 + (line[i] - '0');
  }
  out.status = status;
  out.keep_alive = line[7] != '0';

  std::size_t pos = line_end + 2;
  for (;;) {
    const std::size_t eol = find_crlf(data, len, pos);
    if (eol == len) return ParseStatus::kNeedMore;
    if (eol == pos) {  // blank line
      pos += 2;
      break;
    }
    const std::string_view field(data + pos, eol - pos);
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos) return ParseStatus::kBadRequest;
    std::string_view name = field.substr(0, colon);
    std::string_view value = field.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
      value.remove_prefix(1);
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
      value.remove_suffix(1);
    if (iequals(name, "content-length")) {
      std::size_t parsed = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') return ParseStatus::kBadRequest;
        parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
      }
      out.content_length = parsed;
    } else if (iequals(name, "connection")) {
      if (iequals(value, "close")) out.keep_alive = false;
      else if (iequals(value, "keep-alive")) out.keep_alive = true;
    }
    pos = eol + 2;
  }

  if (out.status == 100) {  // interim: no body regardless of headers
    consumed = pos;
    return ParseStatus::kOk;
  }
  if (len < pos + out.content_length) return ParseStatus::kNeedMore;
  out.body.assign(data + pos, out.content_length);
  consumed = pos + out.content_length;
  return ParseStatus::kOk;
}

bool BlockingClient::connect(const std::string& host, std::uint16_t port,
                             int timeout_ms) {
  close();
  fd_ = connect_tcp(host, port);
  if (!fd_.valid()) return false;
  set_nodelay(fd_.get());
  set_io_timeout(fd_.get(), timeout_ms);
  return true;
}

void BlockingClient::close() {
  fd_.reset();
  buf_.clear();
}

bool BlockingClient::send_raw(std::string_view bytes) {
  if (!fd_.valid()) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + off,
                             bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    close();
    return false;
  }
  return true;
}

bool BlockingClient::read_response(HttpResponse& out) {
  if (!fd_.valid()) return false;
  char chunk[8192];
  for (;;) {
    std::size_t consumed = 0;
    const ParseStatus st =
        parse_response(buf_.data(), buf_.size(), out, consumed);
    if (st == ParseStatus::kOk) {
      buf_.erase(0, consumed);
      if (out.status == 100) continue;  // interim; keep reading
      if (!out.keep_alive) fd_.reset();  // server will close; mirror it
      return true;
    }
    if (st != ParseStatus::kNeedMore) {
      close();
      return false;
    }
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close();  // peer closed mid-response or the read timed out
    return false;
  }
}

std::string format_request(std::string_view method, std::string_view target,
                           std::string_view body,
                           std::string_view extra_headers) {
  std::string req;
  req.reserve(128 + body.size() + extra_headers.size());
  req.append(method);
  req.append(" ");
  req.append(target);
  req.append(" HTTP/1.1\r\nHost: 127.0.0.1\r\n");
  if (!body.empty() || iequals(method, "POST") || iequals(method, "PUT")) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "Content-Length: %zu\r\n", body.size());
    req.append(buf);
  }
  req.append(extra_headers);
  req.append("\r\n");
  req.append(body);
  return req;
}

bool BlockingClient::send_request(std::string_view method,
                                  std::string_view target,
                                  std::string_view body,
                                  std::string_view extra_headers) {
  return send_raw(format_request(method, target, body, extra_headers));
}

bool BlockingClient::request(std::string_view method, std::string_view target,
                             std::string_view body, HttpResponse& out,
                             std::string_view extra_headers) {
  return send_request(method, target, body, extra_headers) &&
         read_response(out);
}

}  // namespace bcop::net
