#include "net/loadgen.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <vector>

#include "net/client.hpp"
#include "net/socket.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bcop::net {

namespace {

using Clock = std::chrono::steady_clock;
using FpSeconds = std::chrono::duration<double>;

/// Instantaneous rate lambda(t) for the configured shape; mean == rate.
double lambda_at(const LoadGenConfig& c, double t) {
  if (c.shape == "burst") {
    const double base = c.rate / (1.0 + (c.burst_factor - 1.0) * c.burst_duty);
    const double phase = std::fmod(t, c.period_s) / c.period_s;
    return phase < c.burst_duty ? base * c.burst_factor : base;
  }
  if (c.shape == "diurnal") {
    // Peak/trough ratio = burst_factor with the mean preserved.
    const double a = (c.burst_factor - 1.0) / (c.burst_factor + 1.0);
    return c.rate * (1.0 + a * std::sin(2.0 * M_PI * t / c.period_s));
  }
  return c.rate;  // poisson
}

double lambda_max(const LoadGenConfig& c) {
  if (c.shape == "burst")
    return c.burst_factor * c.rate /
           (1.0 + (c.burst_factor - 1.0) * c.burst_duty);
  if (c.shape == "diurnal")
    return c.rate * (1.0 + (c.burst_factor - 1.0) / (c.burst_factor + 1.0));
  return c.rate;
}

/// Precompute the full arrival schedule (seconds from start) by Lewis-
/// Shedler thinning: candidates from a homogeneous process at lambda_max,
/// kept with probability lambda(t)/lambda_max. Deterministic in the seed.
std::vector<double> sample_arrivals(const LoadGenConfig& c) {
  std::vector<double> arrivals;
  const double horizon = FpSeconds(c.duration).count();
  const double lmax = lambda_max(c);
  if (lmax <= 0 || horizon <= 0) return arrivals;
  arrivals.reserve(static_cast<std::size_t>(c.rate * horizon * 1.1) + 16);
  util::Rng rng(c.seed);
  double t = 0;
  for (;;) {
    t += -std::log(1.0 - rng.uniform()) / lmax;
    if (t >= horizon) break;
    if (rng.uniform() * lmax <= lambda_at(c, t)) arrivals.push_back(t);
  }
  return arrivals;
}

/// Everything one sender task owns; slots are preallocated so tasks never
/// share mutable state (no locks anywhere in the generator).
struct ConnResult {
  std::uint64_t sent = 0, ok_2xx = 0, err_4xx = 0, shed_503 = 0,
                err_5xx = 0, lost = 0, timed_out = 0;
  std::vector<double> latencies_ms;
};

struct Sender {
  const LoadGenConfig* config = nullptr;
  std::vector<double> arrivals;  // this connection's schedule, sorted
  Clock::time_point start;
  std::string request;  // the one (constant) request we replay
  ConnResult result;

  void run();
};

void Sender::run() {
  result.latencies_ms.reserve(arrivals.size());
  Fd fd = connect_tcp(config->host, config->port);
  if (fd.valid()) {
    set_nodelay(fd.get());
    set_nonblocking(fd.get(), true);
  }

  std::string out, in;
  std::size_t out_off = 0;
  std::size_t next = 0;                 // next arrival to inject
  std::deque<double> pending;           // scheduled times awaiting response
  const double horizon = FpSeconds(config->duration).count();
  const double drain = FpSeconds(config->drain_timeout).count();

  auto reconnect = [&] {
    // The server closed on us (shutdown or error response mid-run): what
    // was in flight is lost, but the schedule keeps going.
    result.lost += pending.size();
    pending.clear();
    out.clear();
    out_off = 0;
    in.clear();
    fd = connect_tcp(config->host, config->port);
    if (fd.valid()) {
      set_nodelay(fd.get());
      set_nonblocking(fd.get(), true);
    }
  };

  for (;;) {
    const double now = FpSeconds(Clock::now() - start).count();

    // Open loop: inject every request whose scheduled time has passed,
    // regardless of how many responses are outstanding.
    while (next < arrivals.size() && arrivals[next] <= now) {
      if (!fd.valid()) reconnect();
      out.append(request);
      pending.push_back(arrivals[next]);
      ++result.sent;
      ++next;
    }

    const bool done_sending = next >= arrivals.size();
    if (done_sending && pending.empty()) break;
    if (done_sending && now > horizon + drain) {
      result.timed_out += pending.size();
      pending.clear();
      break;
    }
    if (!fd.valid()) {
      // Could not (re)connect; the schedule still drains as lost.
      result.lost += pending.size();
      pending.clear();
      if (done_sending) break;
      continue;
    }

    // Flush pipelined writes.
    bool closed = false;
    while (out_off < out.size()) {
      const ssize_t n = ::send(fd.get(), out.data() + out_off,
                               out.size() - out_off, MSG_NOSIGNAL);
      if (n > 0) {
        out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      closed = true;
      break;
    }
    if (out_off == out.size()) {
      out.clear();
      out_off = 0;
    }

    // Drain responses.
    char chunk[16384];
    while (!closed) {
      const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
      if (n > 0) {
        in.append(chunk, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
        continue;
      }
      if (n == 0) closed = true;
      else if (!(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
        closed = true;
      break;
    }
    for (;;) {
      HttpResponse resp;
      std::size_t consumed = 0;
      const ParseStatus st =
          parse_response(in.data(), in.size(), resp, consumed);
      if (st != ParseStatus::kOk) {
        if (st == ParseStatus::kBadRequest) closed = true;
        break;
      }
      in.erase(0, consumed);
      if (resp.status == 100) continue;
      if (pending.empty()) {  // response with no matching request
        closed = true;
        break;
      }
      const double scheduled = pending.front();
      pending.pop_front();
      const double completed = FpSeconds(Clock::now() - start).count();
      result.latencies_ms.push_back((completed - scheduled) * 1e3);
      if (resp.status < 400) ++result.ok_2xx;
      else if (resp.status < 500) ++result.err_4xx;
      else if (resp.status == 503) ++result.shed_503;
      else ++result.err_5xx;
      if (!resp.keep_alive) closed = true;
    }
    if (closed) {
      fd.reset();
      if (done_sending && pending.empty()) break;
      if (!done_sending) reconnect();
      else {
        result.lost += pending.size();
        pending.clear();
        break;
      }
      continue;
    }

    // Sleep on the socket until it is actionable or the next arrival is
    // due (poll is the only waiting primitive src/net may use).
    pollfd p{};
    p.fd = fd.get();
    p.events = POLLIN;
    if (out_off < out.size()) p.events |= POLLOUT;
    int timeout_ms = 1;
    if (!done_sending) {
      const double until = (arrivals[next] - FpSeconds(Clock::now() - start)
                                                .count()) * 1e3;
      timeout_ms = until <= 0 ? 0 : std::min(50, static_cast<int>(until) + 1);
    }
    ::poll(&p, 1, timeout_ms);
  }
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

std::string LoadGenReport::to_json() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"offered_rate\":%.1f,\"achieved_rate\":%.1f,\"sent\":%llu,"
      "\"ok_2xx\":%llu,\"err_4xx\":%llu,\"shed_503\":%llu,\"err_5xx\":%llu,"
      "\"lost\":%llu,\"timed_out\":%llu,\"shed_fraction\":%.4f,"
      "\"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f,"
      "\"duration_s\":%.3f,\"conserved\":%s}",
      offered_rate, achieved_rate,
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(ok_2xx),
      static_cast<unsigned long long>(err_4xx),
      static_cast<unsigned long long>(shed_503),
      static_cast<unsigned long long>(err_5xx),
      static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(timed_out), shed_fraction, p50_ms,
      p90_ms, p99_ms, max_ms, duration_s, conserved() ? "true" : "false");
  return buf;
}

LoadGenReport run_loadgen(const LoadGenConfig& config) {
  BCOP_CHECK(config.connections >= 1, "loadgen needs >= 1 connection");
  BCOP_CHECK(config.shape == "poisson" || config.shape == "burst" ||
                 config.shape == "diurnal",
             "unknown arrival shape '%s'", config.shape.c_str());

  // Deterministic schedule, dealt round-robin across connections (so each
  // connection's sub-schedule is deterministic too).
  const std::vector<double> arrivals = sample_arrivals(config);
  std::vector<Sender> senders(config.connections);
  // Constant payload: a deterministic byte ramp (content does not matter
  // for load; the server still runs the full engine path on it).
  std::string payload(config.payload_bytes, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>(i * 31 % 251);
  const std::string request =
      format_request("POST", "/v1/classify", payload,
                     "Content-Type: application/octet-stream\r\n");
  for (std::size_t i = 0; i < arrivals.size(); ++i)
    senders[i % senders.size()].arrivals.push_back(arrivals[i]);

  parallel::ThreadPool pool(config.connections);
  const Clock::time_point start = Clock::now();
  for (Sender& s : senders) {
    s.config = &config;
    s.start = start;
    s.request = request;
    pool.submit([&s] { s.run(); });
  }
  pool.wait_idle();
  const double elapsed = FpSeconds(Clock::now() - start).count();

  LoadGenReport report;
  std::vector<double> latencies;
  for (const Sender& s : senders) {
    report.sent += s.result.sent;
    report.ok_2xx += s.result.ok_2xx;
    report.err_4xx += s.result.err_4xx;
    report.shed_503 += s.result.shed_503;
    report.err_5xx += s.result.err_5xx;
    report.lost += s.result.lost;
    report.timed_out += s.result.timed_out;
    latencies.insert(latencies.end(), s.result.latencies_ms.begin(),
                     s.result.latencies_ms.end());
  }
  const double horizon = FpSeconds(config.duration).count();
  report.duration_s = elapsed;
  if (horizon > 0) {
    report.offered_rate = static_cast<double>(report.sent) / horizon;
    report.achieved_rate = static_cast<double>(report.ok_2xx) / horizon;
  }
  if (report.sent > 0)
    report.shed_fraction =
        static_cast<double>(report.shed_503) / static_cast<double>(report.sent);
  std::sort(latencies.begin(), latencies.end());
  report.p50_ms = percentile(latencies, 0.50);
  report.p90_ms = percentile(latencies, 0.90);
  report.p99_ms = percentile(latencies, 0.99);
  if (!latencies.empty()) report.max_ms = latencies.back();
  return report;
}

}  // namespace bcop::net
