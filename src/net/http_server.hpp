// HTTP/1.1 serving front-end over serve::Router.
//
// The paper deploys BinaryCoP as an edge service at building entrances;
// this is the wire between a camera fleet and the 11.9k-FPS engine. The
// design goal is that *nothing a client does can park a server thread or
// touch the engine without admission*:
//
//   - A pool of poll()-based event workers (tasks on a parallel::ThreadPool,
//     repo rule R2) each own the connections they accept. There is no
//     shared connection state, so the workers need no locks at all.
//   - Per-connection read/write buffers are bounded; the stateless parser
//     (net/http_parser.hpp) enforces header/body limits before a single
//     byte reaches the engine.
//   - Classification is admitted through serve::Router::try_submit with a
//     configurable per-replica queue-depth watermark: the Router places
//     the request on the least-loaded serving replica, routes around
//     replicas that are draining or hot-swapping a model version, and
//     reports nullopt -- mapped to an immediate 503 (load shedding,
//     driving the existing bcop_serve_rejected_total counter) -- when the
//     fleet is over the watermark. The worker then *polls* the returned
//     future between socket events -- it never blocks on it -- so one
//     worker can keep hundreds of keep-alive connections in flight at
//     batch-friendly depths.
//   - Each connection carries an ordered pipeline of response slots
//     (immediate text or a pending engine future), so pipelined HTTP/1.1
//     clients keep the batching queue fed to useful depths while responses
//     still go out strictly in request order.
//   - Malformed input gets 400/413/431/501 without touching the engine;
//     idle and stuck-mid-request connections are reaped by per-connection
//     timeouts (slowloris defense).
//
// Endpoints (docs/networking.md has curl examples):
//   POST /v1/classify  raw image payload -> class + confidence JSON
//   GET  /metrics      obs::export_prometheus of the process registry
//   GET  /healthz      fleet queue depth / watermark / shedding state plus
//                      a per-replica [{id, state, queue_depth}] array
//
// The classify payload is the raw [S, S, 3] image, either S*S*3 bytes of
// interleaved RGB u8 (mapped onto the same 8-bit grid as
// facegen::MaskedFaceDataset::quantize_pixel) or S*S*3 float32
// little-endian values already in [-1, 1]. Anything else is 400; larger
// than the float payload is 413.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/http_parser.hpp"
#include "net/socket.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/router.hpp"
#include "tensor/shape.hpp"

namespace bcop::net {

struct HttpServerConfig {
  /// Port to bind on 127.0.0.1 (0 = ephemeral; read back via port()).
  std::uint16_t port = 0;
  /// Event workers. Each owns its accepted connections outright.
  unsigned workers = 2;
  int backlog = 128;
  std::size_t max_connections_per_worker = 256;
  /// Per-replica admission watermark: POST /v1/classify answers 503 when
  /// the replica the Router picked already holds shed_watermark requests
  /// (0 sheds everything; < 0 disables the watermark and sheds only on a
  /// full queue). Fleet shedding capacity is replicas x this value.
  std::int64_t shed_watermark = 48;
  /// Close connections with no traffic for this long.
  std::chrono::milliseconds idle_timeout{5000};
  /// 408 + close connections stuck mid-request for this long (slowloris).
  std::chrono::milliseconds read_timeout{2000};
  /// Header-section cap handed to the parser.
  std::size_t max_header_bytes = 8192;
  std::size_t max_headers = 64;
  /// Responses in flight per connection (HTTP/1.1 pipelining depth).
  /// Beyond it the worker stops parsing and lets TCP push back. Depth
  /// matters for load shedding: in-flight requests are what fills the
  /// batching queue past the watermark, so a deep pipeline is how an
  /// overloaded server sees 503-able backlog instead of socket buffers
  /// silently queueing it.
  std::size_t max_pipeline = 64;
};

class HttpServer {
 public:
  /// Binds and starts serving immediately. The Router (and the prototype
  /// predictor behind it) must outlive this object. Throws
  /// std::runtime_error when the port cannot be bound.
  HttpServer(serve::Router& router, HttpServerConfig config);
  /// Stops accepting, closes every connection, joins the workers.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the ephemeral one when config.port was 0).
  std::uint16_t port() const { return port_; }
  const HttpServerConfig& config() const { return config_; }

 private:
  struct Connection;
  struct Metrics;

  void worker_loop();
  /// Accept as many pending connections as the worker has room for.
  void accept_ready(std::vector<Connection>& conns);
  /// Drain readable bytes into the bounded input buffer. False = close.
  bool read_some(Connection& conn);
  /// Parse / admit / respond until blocked on input or an engine future.
  void step(Connection& conn);
  /// Route one parsed request (may leave a pending engine future).
  void handle_request(Connection& conn, const ParsedRequest& req);
  void handle_classify(Connection& conn, const ParsedRequest& req);
  /// Queue an already-rendered response slot and do the bookkeeping
  /// (status-class counters, keep-alive vs close).
  void respond(Connection& conn, int status, std::string_view content_type,
               std::string_view body, bool keep_alive,
               std::string_view extra_headers = {});
  /// Move completed response slots to the output buffer, in request order.
  void drain_ready(Connection& conn);
  /// Bump the responses_{2,4,5}xx counter for this status class.
  static void count_status(int status);
  /// Flush pending output. False = close.
  bool flush(Connection& conn);

  serve::Router& router_;
  const HttpServerConfig config_;
  ParserLimits limits_;
  tensor::Shape want_;           // [S, S, C] model input
  std::size_t u8_bytes_ = 0;     // accepted payload sizes
  std::size_t f32_bytes_ = 0;
  Fd listen_fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  // Declared last so the destructor's stop/join happens before members go
  // away (same pattern as serve::BatchingServer).
  parallel::ThreadPool pool_;
};

}  // namespace bcop::net
