// Thin POSIX socket vocabulary for the network layer.
//
// Everything that touches <sys/socket.h> in this repository lives under
// src/net/ (lint rule R10), and this header is the shared floor: an RAII
// file-descriptor wrapper plus the handful of TCP helpers the server
// (http_server.cpp), the test client (client.cpp) and the load generator
// (loadgen.cpp) need. No framework, no global state -- each helper is a
// direct syscall wrapper that reports failure by return value, because the
// serving loops treat every socket error as "close this connection", never
// as an exception.
#pragma once

#include <cstdint>
#include <string>

namespace bcop::net {

/// Move-only owning file descriptor; closes on destruction. -1 == empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Close now (idempotent).
  void reset();

  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Create a listening TCP socket on 127.0.0.1:`port` (0 = ephemeral;
/// `bound_port` receives the actual port either way). SO_REUSEADDR is set
/// and the socket is non-blocking. Returns an empty Fd on failure.
Fd listen_tcp(std::uint16_t port, int backlog, std::uint16_t& bound_port);

/// Blocking TCP connect to `host`:`port` (numeric IPv4 only -- the test
/// client and load generator speak to loopback). Returns an empty Fd on
/// failure.
Fd connect_tcp(const std::string& host, std::uint16_t port);

/// O_NONBLOCK on/off. Returns false on fcntl failure.
bool set_nonblocking(int fd, bool enable);

/// TCP_NODELAY: the request/response pattern here is latency-bound and
/// every message is written in one buffer, so Nagle only adds delay.
bool set_nodelay(int fd);

/// SO_RCVTIMEO/SO_SNDTIMEO in milliseconds (blocking client sockets).
bool set_io_timeout(int fd, int timeout_ms);

}  // namespace bcop::net
