#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace bcop::net {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_tcp(std::uint16_t port, int backlog, std::uint16_t& bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return {};

  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return {};
  if (::listen(fd.get(), backlog) != 0) return {};
  if (!set_nonblocking(fd.get(), true)) return {};

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return {};
  bound_port = ntohs(bound.sin_port);
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return {};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return {};
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return {};
  return fd;
}

bool set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool set_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

bool set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
         ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace bcop::net
