#include "net/http_server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <stdexcept>
#include <utility>
#include <vector>

#include "facegen/attributes.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace bcop::net {

using Clock = std::chrono::steady_clock;

/// Front-end telemetry (naming scheme in docs/observability.md).
/// Registered once; recording afterwards is lock-free.
struct HttpServer::Metrics {
  obs::Counter& requests;        // parsed requests routed
  obs::Counter& responses_2xx;
  obs::Counter& responses_4xx;
  obs::Counter& responses_5xx;
  obs::Counter& shed;            // 503s from the admission watermark
  obs::Counter& timeouts;        // idle/read reaps
  obs::Counter& accepted;        // connections accepted
  obs::Gauge& connections;       // currently open
  obs::LatencyHistogram& request_ns;  // request first byte -> response built

  static Metrics& get() {
    auto& reg = obs::Registry::global();
    static Metrics m{reg.counter("bcop_net_requests_total"),
                     reg.counter("bcop_net_responses_2xx_total"),
                     reg.counter("bcop_net_responses_4xx_total"),
                     reg.counter("bcop_net_responses_5xx_total"),
                     reg.counter("bcop_net_shed_total"),
                     reg.counter("bcop_net_timeouts_total"),
                     reg.counter("bcop_net_accepted_total"),
                     reg.gauge("bcop_net_open_connections"),
                     reg.histogram("bcop_net_request_ns")};
    return m;
  }
};

/// One client connection, owned by exactly one event worker (no sharing,
/// no locks anywhere in this file).
///
/// HTTP/1.1 pipelining with an asynchronous engine means responses can
/// become available out of order; the wire demands request order. So every
/// handled request pushes one Slot onto `responses`: either already-
/// rendered text (health, metrics, rejects, sheds) or an engine future.
/// drain_ready() moves slots to the output buffer strictly front-first,
/// stalling at the first unresolved future -- ordering is preserved by
/// construction. The slot queue is capped (max_pipeline): beyond it the
/// worker simply stops parsing, the bounded input buffer fills, and TCP
/// backpressure does the rest.
struct HttpServer::Connection {
  Fd fd;
  std::string in;
  std::string out;
  std::size_t out_off = 0;
  bool close_after_write = false;  // stop parsing; close once drained
  bool sent_continue = false;

  struct Slot {
    bool ready = false;
    std::string text;  // rendered response when ready
    std::future<core::Predictor::Result> future;
    Clock::time_point start{};  // request first byte, for the latency metric
    bool keep_alive = true;
  };
  std::deque<Slot> responses;

  Clock::time_point request_start{};  // first byte of the request being read
  bool mid_request = false;
  Clock::time_point last_activity{};

  bool writable_backlog() const { return out_off < out.size(); }
  bool has_pending_future() const {
    return !responses.empty() && !responses.front().ready;
  }
};

namespace {

std::string_view status_reason(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void append_response(std::string& out, int status,
                     std::string_view content_type, std::string_view body,
                     bool keep_alive, std::string_view extra_headers) {
  const std::string_view reason = status_reason(status);
  char head[256];
  const int n = std::snprintf(
      head, sizeof(head),
      "HTTP/1.1 %d %.*s\r\n"
      "Content-Type: %.*s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: %s\r\n",
      status, static_cast<int>(reason.size()), reason.data(),
      static_cast<int>(content_type.size()), content_type.data(), body.size(),
      keep_alive ? "keep-alive" : "close");
  out.append(head, static_cast<std::size_t>(n));
  out.append(extra_headers);
  out.append("\r\n");
  out.append(body);
}

std::string error_body(std::string_view message) {
  std::string body = "{\"error\":\"";
  body.append(message);
  body.append("\"}");
  return body;
}

std::string classify_body(const core::Predictor::Result& result) {
  char buf[256];
  std::string body = "{\"class\":";
  body += std::to_string(static_cast<int>(result.label));
  body += ",\"label\":\"";
  body += facegen::class_short_name(result.label);
  float confidence = 0.f;
  for (const float s : result.scores) confidence = std::max(confidence, s);
  std::snprintf(buf, sizeof(buf), "\",\"confidence\":%.4f,\"admit\":%s",
                static_cast<double>(confidence),
                result.admit() ? "true" : "false");
  body += buf;
  body += ",\"scores\":[";
  for (std::size_t i = 0; i < result.scores.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i ? "," : "",
                  static_cast<double>(result.scores[i]));
    body += buf;
  }
  body += "]}";
  return body;
}

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

HttpServer::HttpServer(serve::Router& router, HttpServerConfig config)
    : router_(router),
      config_(config),
      want_(router.prototype().network().expected_input_shape()),
      pool_(config.workers) {
  BCOP_CHECK(config_.workers >= 1, "HttpServer needs >= 1 worker, got %u",
             config_.workers);
  BCOP_CHECK(want_.rank() == 3,
             "served model must take a rank-3 [S, S, C] input, got rank %d",
             static_cast<int>(want_.rank()));
  BCOP_CHECK(config_.max_pipeline >= 1, "max_pipeline must be >= 1");
  u8_bytes_ = static_cast<std::size_t>(want_.numel());
  f32_bytes_ = u8_bytes_ * sizeof(float);
  limits_.max_header_bytes = config_.max_header_bytes;
  limits_.max_headers = config_.max_headers;
  limits_.max_body = f32_bytes_;  // largest payload /v1/classify accepts

  listen_fd_ = listen_tcp(config_.port, config_.backlog, port_);
  if (!listen_fd_.valid())
    throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" +
                             std::to_string(config_.port));
  Metrics::get();  // register before traffic so /metrics always lists them
  for (unsigned i = 0; i < config_.workers; ++i)
    pool_.submit([this] { worker_loop(); });
}

HttpServer::~HttpServer() {
  stopping_.store(true, std::memory_order_relaxed);
  pool_.wait_idle();
}

void HttpServer::accept_ready(std::vector<Connection>& conns) {
  while (conns.size() < config_.max_connections_per_worker) {
    Fd fd(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!fd.valid()) return;  // EAGAIN or raced by another worker
    set_nonblocking(fd.get(), true);
    set_nodelay(fd.get());
    Connection conn;
    conn.fd = std::move(fd);
    conn.last_activity = Clock::now();
    conns.push_back(std::move(conn));
    Metrics::get().accepted.add(1);
    Metrics::get().connections.add(1);
  }
}

bool HttpServer::read_some(Connection& conn) {
  // Bounded input: one header section + one body + a slack page for
  // pipelined follow-ups. When full, the socket simply stops being read
  // (TCP backpressure) until step() consumes a request.
  const std::size_t cap = limits_.max_header_bytes + limits_.max_body + 4096;
  char buf[16384];
  while (conn.in.size() < cap) {
    const std::size_t room = std::min(sizeof(buf), cap - conn.in.size());
    const ssize_t n = ::recv(conn.fd.get(), buf, room, 0);
    if (n > 0) {
      if (conn.in.empty() && !conn.mid_request) {
        conn.mid_request = true;
        conn.request_start = Clock::now();
      }
      conn.in.append(buf, static_cast<std::size_t>(n));
      conn.last_activity = Clock::now();
      if (static_cast<std::size_t>(n) < room) return true;  // drained
      continue;
    }
    if (n == 0) return false;  // peer closed
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  return true;
}

void HttpServer::respond(Connection& conn, int status,
                         std::string_view content_type, std::string_view body,
                         bool keep_alive, std::string_view extra_headers) {
  Connection::Slot slot;
  slot.ready = true;
  slot.keep_alive = keep_alive;
  append_response(slot.text, status, content_type, body, keep_alive,
                  extra_headers);
  conn.responses.push_back(std::move(slot));
  if (!keep_alive) conn.close_after_write = true;
  count_status(status);
  Metrics::get().request_ns.record(
      ns_between(conn.request_start, Clock::now()));
}

void HttpServer::count_status(int status) {
  Metrics& metrics = Metrics::get();
  if (status < 400) metrics.responses_2xx.add(1);
  else if (status < 500) metrics.responses_4xx.add(1);
  else metrics.responses_5xx.add(1);
}

/// Move completed responses to the output buffer, strictly in request
/// order: stop at the first slot whose engine future is still pending.
void HttpServer::drain_ready(Connection& conn) {
  while (!conn.responses.empty()) {
    Connection::Slot& slot = conn.responses.front();
    if (!slot.ready) {
      if (slot.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready)
        return;
      int status = 200;
      std::string body;
      try {
        body = classify_body(slot.future.get());
      } catch (const std::exception&) {
        status = 500;
        body = error_body("inference failed");
        slot.keep_alive = false;
        conn.close_after_write = true;
      }
      append_response(slot.text, status, "application/json", body,
                      slot.keep_alive, {});
      count_status(status);
      Metrics::get().request_ns.record(ns_between(slot.start, Clock::now()));
      slot.ready = true;
    }
    conn.out.append(conn.responses.front().text);
    conn.responses.pop_front();
  }
}

void HttpServer::handle_classify(Connection& conn, const ParsedRequest& req) {
  const std::string_view body = req.body;
  tensor::Tensor image(want_);
  if (body.size() == u8_bytes_) {
    // Raw interleaved RGB bytes onto the deployed 8-bit grid:
    // (2*b - 255)/255, the same mapping MaskedFaceDataset::quantize_pixel
    // applies to [0,1] pixels, so a camera byte stream and the training
    // pipeline land on identical input codes.
    for (std::size_t i = 0; i < u8_bytes_; ++i) {
      const int b = static_cast<unsigned char>(body[i]);
      image[static_cast<std::int64_t>(i)] =
          static_cast<float>(2 * b - 255) / 255.f;
    }
  } else if (body.size() == f32_bytes_) {
    std::memcpy(image.data(), body.data(), f32_bytes_);
  } else {
    respond(conn, 400, "application/json",
            error_body("classify payload must be " +
                       std::to_string(u8_bytes_) + " u8 or " +
                       std::to_string(f32_bytes_) + " f32 bytes"),
            req.keep_alive);
    return;
  }

  // Router::try_submit is the single admission point: it places on the
  // least-loaded serving replica (routing around draining/swapping ones)
  // and returns nullopt -- having counted bcop_serve_rejected_total
  // exactly once -- at or above the per-replica watermark, which we map
  // to an immediate 503 (never a queued request).
  auto future = router_.try_submit(std::move(image), config_.shed_watermark);
  if (!future) {
    Metrics::get().shed.add(1);
    respond(conn, 503, "application/json", error_body("over capacity, retry"),
            req.keep_alive, "Retry-After: 1\r\n");
    return;
  }
  Connection::Slot slot;
  slot.future = std::move(*future);
  slot.start = conn.request_start;
  slot.keep_alive = req.keep_alive;
  if (!req.keep_alive) conn.close_after_write = true;
  conn.responses.push_back(std::move(slot));
}

void HttpServer::handle_request(Connection& conn, const ParsedRequest& req) {
  Metrics::get().requests.add(1);
  if (req.target == "/v1/classify") {
    if (!iequals(req.method, "POST")) {
      respond(conn, 405, "application/json", error_body("method not allowed"),
              req.keep_alive, "Allow: POST\r\n");
      return;
    }
    handle_classify(conn, req);
    return;
  }
  if (req.target == "/metrics") {
    if (!iequals(req.method, "GET")) {
      respond(conn, 405, "application/json", error_body("method not allowed"),
              req.keep_alive, "Allow: GET\r\n");
      return;
    }
    respond(conn, 200, "text/plain; version=0.0.4",
            obs::export_prometheus(obs::Registry::global().snapshot()),
            req.keep_alive);
    return;
  }
  if (req.target == "/healthz") {
    if (!iequals(req.method, "GET")) {
      respond(conn, 405, "application/json", error_body("method not allowed"),
              req.keep_alive, "Allow: GET\r\n");
      return;
    }
    const std::int64_t depth = router_.queue_depth();
    // The fleet sheds when every serving replica is at the watermark --
    // the Router picks the least loaded, so "shedding" means min depth
    // over serving replicas >= watermark. No serving replica at all is
    // shedding too (fleet-wide drain/swap).
    bool shedding = config_.shed_watermark >= 0;
    bool any_serving = false;
    std::string replicas = "[";
    for (int i = 0; i < router_.size(); ++i) {
      const serve::Replica& r = router_.replica(i);
      const serve::ReplicaState state = r.state();
      const std::int64_t rdepth = r.queue_depth();
      if (state == serve::ReplicaState::kServing) {
        any_serving = true;
        if (config_.shed_watermark >= 0 && rdepth < config_.shed_watermark)
          shedding = false;
      }
      if (i) replicas += ",";
      replicas += "{\"id\":" + std::to_string(r.id());
      replicas += ",\"state\":\"";
      replicas += serve::to_string(state);
      replicas += "\",\"queue_depth\":" + std::to_string(rdepth) + "}";
    }
    replicas += "]";
    if (!any_serving) shedding = true;
    std::string body = "{\"status\":\"";
    body += shedding ? "shedding" : "ok";
    body += "\",\"queue_depth\":" + std::to_string(depth);
    body += ",\"queue_capacity\":" + std::to_string(router_.queue_capacity());
    body += ",\"shed_watermark\":" + std::to_string(config_.shed_watermark);
    body += ",\"replicas\":" + replicas;
    body += "}";
    respond(conn, 200, "application/json", body, req.keep_alive);
    return;
  }
  respond(conn, 404, "application/json", error_body("no such endpoint"),
          req.keep_alive);
}

void HttpServer::step(Connection& conn) {
  for (;;) {
    drain_ready(conn);
    if (conn.close_after_write || conn.in.empty()) return;
    if (conn.responses.size() >= config_.max_pipeline)
      return;  // pipeline full: stop parsing, let TCP push back

    ParsedRequest req;
    const ParseStatus status =
        parse_request(conn.in.data(), conn.in.size(), limits_, req);
    switch (status) {
      case ParseStatus::kNeedMore:
        conn.mid_request = true;
        // Interim 100 so clients that wait for it (curl with a large
        // payload) start sending the body. Only safe to write directly
        // when no earlier response is still queued (order on the wire).
        if (req.header_end != 0 && req.expect_continue &&
            !conn.sent_continue && conn.responses.empty()) {
          conn.sent_continue = true;
          conn.out.append("HTTP/1.1 100 Continue\r\n\r\n");
        }
        return;
      case ParseStatus::kOk:
        conn.mid_request = false;
        conn.sent_continue = false;
        handle_request(conn, req);
        conn.in.erase(0, req.consumed);
        if (!req.keep_alive) conn.close_after_write = true;
        if (!conn.in.empty()) conn.request_start = Clock::now();
        continue;  // pipelining: handle everything already buffered
      case ParseStatus::kBadRequest:
        respond(conn, 400, "application/json",
                error_body("malformed request"), false);
        return;
      case ParseStatus::kHeadersTooLarge:
        respond(conn, 431, "application/json",
                error_body("header section too large"), false);
        return;
      case ParseStatus::kBodyTooLarge:
        respond(conn, 413, "application/json",
                error_body("payload too large"), false);
        return;
      case ParseStatus::kUnsupported:
        respond(conn, 501, "application/json",
                error_body("transfer-encoding not supported"), false);
        return;
    }
  }
}

bool HttpServer::flush(Connection& conn) {
  while (conn.writable_backlog()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return true;
    return false;  // peer went away mid-write
  }
  conn.out.clear();
  conn.out_off = 0;
  return true;
}

void HttpServer::worker_loop() {
  std::vector<Connection> conns;
  std::vector<pollfd> pfds;
  const std::size_t in_cap =
      limits_.max_header_bytes + limits_.max_body + 4096;

  while (!stopping_.load(std::memory_order_relaxed)) {
    pfds.clear();
    pollfd lp{};
    lp.fd = listen_fd_.get();
    lp.events = conns.size() < config_.max_connections_per_worker
                    ? POLLIN
                    : static_cast<short>(0);
    pfds.push_back(lp);
    bool any_pending = false;
    for (const Connection& conn : conns) {
      pollfd p{};
      p.fd = conn.fd.get();
      p.events = 0;
      if (conn.in.size() < in_cap &&
          conn.responses.size() < config_.max_pipeline)
        p.events |= POLLIN;
      if (conn.writable_backlog()) p.events |= POLLOUT;
      pfds.push_back(p);
      any_pending = any_pending || conn.has_pending_future();
    }
    // Engine futures are polled, not waited on: tighten the poll tick
    // while any are outstanding so responses go out within ~1ms of the
    // batch landing, and relax it when the worker is purely event-driven.
    const int timeout_ms = any_pending ? 1 : 20;
    ::poll(pfds.data(), pfds.size(), timeout_ms);

    // Only the connections that were present when pfds was built have a
    // matching revents slot; anything accept_ready adds below is first
    // polled on the next tick.
    const std::size_t polled = conns.size();
    if (pfds[0].revents & POLLIN) accept_ready(conns);

    const auto now = Clock::now();
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = conns[i];
      const short revents = pfds[i + 1].revents;
      bool alive = (revents & (POLLERR | POLLNVAL)) == 0;
      if (alive && (revents & (POLLIN | POLLHUP)))
        alive = read_some(conn);
      if (alive) {
        step(conn);
        alive = flush(conn);
      }
      if (alive && conn.close_after_write && !conn.writable_backlog() &&
          conn.responses.empty())
        alive = false;  // all responses delivered; close our half
      if (alive && conn.responses.empty() && !conn.writable_backlog()) {
        if (conn.mid_request &&
            now - conn.request_start > config_.read_timeout) {
          // Stalled mid-request with nothing else owed: slowloris reap.
          Metrics::get().timeouts.add(1);
          respond(conn, 408, "application/json",
                  error_body("request timeout"), false);
          drain_ready(conn);
          flush(conn);
          alive = false;
        } else if (!conn.mid_request &&
                   now - conn.last_activity > config_.idle_timeout) {
          Metrics::get().timeouts.add(1);
          alive = false;
        }
      }
      if (!alive) {
        conn.fd.reset();
        Metrics::get().connections.add(-1);
      }
    }
    std::erase_if(conns, [](const Connection& c) { return !c.fd.valid(); });
  }

  for (Connection& conn : conns) {
    conn.fd.reset();
    Metrics::get().connections.add(-1);
  }
}

}  // namespace bcop::net
