#include "deploy/swu.hpp"

#include <cstring>
#include <stdexcept>

namespace bcop::deploy {

SlidingWindowUnit::SlidingWindowUnit(std::int64_t h, std::int64_t w,
                                     std::int64_t c, std::int64_t k)
    : h_(h), w_(w), c_(c), k_(k) {
  if (h < k || w < k || c <= 0 || k <= 0)
    throw std::invalid_argument("SlidingWindowUnit: bad geometry");
}

void SlidingWindowUnit::window_bits(const std::vector<std::uint8_t>& fmap,
                                    std::int64_t oy, std::int64_t ox,
                                    std::uint64_t* out_words) const {
  if (static_cast<std::int64_t>(fmap.size()) != h_ * w_ * c_)
    throw std::invalid_argument("SlidingWindowUnit: fmap size mismatch");
  std::memset(out_words, 0,
              static_cast<std::size_t>(patch_words()) * sizeof(std::uint64_t));
  std::int64_t bit = 0;
  for (std::int64_t ky = 0; ky < k_; ++ky)
    for (std::int64_t kx = 0; kx < k_; ++kx) {
      const std::uint8_t* src = fmap.data() + ((oy + ky) * w_ + (ox + kx)) * c_;
      for (std::int64_t ch = 0; ch < c_; ++ch, ++bit)
        if (src[ch]) out_words[bit >> 6] |= 1ull << (bit & 63);
    }
}

void SlidingWindowUnit::window_values(const std::vector<std::int32_t>& fmap,
                                      std::int64_t oy, std::int64_t ox,
                                      std::int32_t* out_values) const {
  if (static_cast<std::int64_t>(fmap.size()) != h_ * w_ * c_)
    throw std::invalid_argument("SlidingWindowUnit: fmap size mismatch");
  std::int64_t i = 0;
  for (std::int64_t ky = 0; ky < k_; ++ky)
    for (std::int64_t kx = 0; kx < k_; ++kx) {
      const std::int32_t* src = fmap.data() + ((oy + ky) * w_ + (ox + kx)) * c_;
      for (std::int64_t ch = 0; ch < c_; ++ch, ++i) out_values[i] = src[ch];
    }
}

}  // namespace bcop::deploy
