// Frame-level streaming simulation of the accelerator pipeline.
//
// The analytical model (performance.hpp) gives the steady-state initiation
// interval; this simulator derives the *dynamic* behaviour: how the
// pipeline fills, what per-frame latency looks like under a given camera
// arrival process, how FIFO back-pressure propagates when inter-stage
// buffers are shallow, and how busy each MVTU actually is. Service times
// are deterministic (each stage needs its effective cycle count per
// frame), so the exact tandem-queue-with-blocking recurrence applies:
//
//   start(f, s)  = max(depart(f, s-1),        // data available
//                      depart(f-1, s),        // stage free
//                      start(f - cap(s), s+1)) // output FIFO has a slot
//   depart(f, s) = start(f, s) + T(s)
//
// where cap(s) is the FIFO capacity (in frames) between stage s and s+1
// (blocking-before-service). Iterating frames outer / stages inner makes
// every dependency refer to already-computed values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deploy/performance.hpp"

namespace bcop::deploy {

struct StreamConfig {
  std::int64_t frames = 100;
  /// Cycles between camera frames; 0 = back-to-back (pipeline-full mode).
  std::int64_t arrival_interval = 0;
  /// Inter-stage FIFO capacity in frames (>= 1). FINN uses shallow FIFOs;
  /// depth 1 is the worst legal case.
  std::int64_t fifo_depth = 1;
};

struct StageStats {
  std::string name;
  std::int64_t service_cycles = 0;  // per frame
  std::int64_t busy_cycles = 0;     // total over the run
  double utilization = 0;           // busy / makespan
  std::int64_t blocked_cycles = 0;  // waiting on downstream FIFO space
};

struct StreamReport {
  std::vector<StageStats> stages;
  std::int64_t makespan_cycles = 0;       // arrival of f0 -> departure of last
  std::int64_t first_frame_latency = 0;   // fill latency
  double mean_latency_cycles = 0;
  std::int64_t max_latency_cycles = 0;
  /// Mean spacing between consecutive frame completions in steady state
  /// (second half of the run) -- the measured initiation interval.
  double measured_ii = 0;
  double throughput_fps(double clock_hz = kClockHz,
                        double efficiency = kImplementationEfficiency) const {
    return measured_ii <= 0 ? 0 : clock_hz * efficiency / measured_ii;
  }
};

/// Simulate `config.frames` frames through the pipeline described by
/// `perf` (one stage per layer, effective cycles as service time).
StreamReport simulate_stream(const PerfReport& perf,
                             const StreamConfig& config);

}  // namespace bcop::deploy
