// Board-level power model (paper Sec. IV-B).
//
// The paper measures ~1.6 W at the board supply when idle -- "required
// mostly by the soft-core on the SoC" (the Zynq PS plus board overhead) --
// for *all* prototypes, and argues two operating modes: single-gate
// (classification triggered per subject, power near idle) and crowd
// statistics (pipeline always full, maximum throughput). This model
// reproduces both: a fixed idle floor plus a dynamic term proportional to
// the switching resources of the design.
#pragma once

#include "deploy/resource.hpp"

namespace bcop::deploy {

/// Measured idle floor: Zynq PS + board (paper: ~1.6 W for every design).
constexpr double kIdlePowerW = 1.6;

struct PowerReport {
  double idle_w = kIdlePowerW;
  double active_w = 0;  // pipeline full at the target clock

  /// Average power when classifications are triggered at `duty` in [0,1]
  /// (fraction of time the accelerator pipeline is busy) -- the paper's
  /// single-entrance/gate mode corresponds to a small duty cycle.
  double average_w(double duty) const {
    return idle_w + (active_w - idle_w) * duty;
  }

  /// Energy per classification at full throughput, in millijoules.
  double energy_per_frame_mj(double fps) const {
    return fps <= 0 ? 0 : 1e3 * active_w / fps;
  }
};

/// Dynamic-power coefficients (W per resource at 100 MHz, typical Zynq-7000
/// activity factors).
constexpr double kWattsPerLut = 2.0e-5;
constexpr double kWattsPerBram18 = 1.5e-3;
constexpr double kWattsPerDsp = 1.0e-3;

PowerReport estimate_power(const ResourceEstimate& resources);

}  // namespace bcop::deploy
