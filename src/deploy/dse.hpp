// Automated design-space exploration for MVTU dimensioning.
//
// The paper (Sec. III-B): "Based on the compute complexity of each layer,
// the available hardware resources need to be distributed over the
// corresponding MVTUs, such that all parts of the pipeline have a
// matched-throughput. A single under-dimensioned MVTU could throttle the
// entire pipeline." This module automates that designer's loop: starting
// from the minimal dimensioning (PE = SIMD = 1), it repeatedly doubles the
// folding of the current bottleneck MVTU -- preferring the cheaper SIMD
// axis -- until either the target throughput is met or the part's
// resources are exhausted.
//
// Hardware legality constraints honoured by every move:
//   * PE divides into rows by folding, SIMD into columns -- both are
//     capped at the matrix dimension;
//   * the first conv layer's SIMD is capped at its 3 input channels
//     (pixels arrive channel-interleaved), which is exactly why Conv1.1
//     bottlenecks n-CNV at ~6400 FPS and why Table I pins its SIMD to 3.
#pragma once

#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "deploy/performance.hpp"
#include "deploy/resource.hpp"

namespace bcop::deploy {

struct DseGoal {
  double target_fps = 0;          // stop once reached (0 = maximize)
  FpgaPart part = z7020();        // resource budget
  bool dsp_offload = false;       // u-CNV-style XNOR-in-DSP mapping
  double clock_hz = kClockHz;
  double efficiency = kImplementationEfficiency;
  int max_steps = 256;            // search-length backstop
};

struct DseStep {
  std::string layer;     // which MVTU was widened
  std::string axis;      // "PE" or "SIMD"
  double fps_after = 0;
  std::int64_t lut_after = 0;
};

struct DseResult {
  std::vector<core::LayerSpec> specs;  // final dimensioning
  PerfReport performance;
  ResourceEstimate resources;
  std::vector<DseStep> trajectory;
  bool met_target = false;
  /// True when the search stopped because no legal move fits the part.
  bool resource_bound = false;
};

/// Explore dimensionings for the given layer topology (the PE/SIMD values
/// in `specs` are ignored; shapes and pool placement are what matters).
DseResult explore(std::vector<core::LayerSpec> specs, const DseGoal& goal);

}  // namespace bcop::deploy
