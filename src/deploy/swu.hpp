// Sliding Window Unit (SWU).
//
// For convolutional layers, FINN's SWU reshapes the streamed-in feature map
// into the sequence of KxK patches the MVTU consumes ("creates a single,
// wide input feature map memory", paper Sec. III-B). Patch element order is
// (ky, kx, c), matching the weight matrix column order used everywhere in
// this library. The unit also accounts for its stream-in cost: one cycle
// per input pixel, which can dominate layers whose MVTU is strongly folded.
#pragma once

#include <cstdint>
#include <vector>

namespace bcop::deploy {

class SlidingWindowUnit {
 public:
  /// Feature map geometry: height x width x channels, kernel k (valid,
  /// stride 1).
  SlidingWindowUnit(std::int64_t h, std::int64_t w, std::int64_t c,
                    std::int64_t k);

  std::int64_t out_h() const { return h_ - k_ + 1; }
  std::int64_t out_w() const { return w_ - k_ + 1; }
  std::int64_t patch_bits() const { return k_ * k_ * c_; }
  std::int64_t patch_words() const { return (patch_bits() + 63) / 64; }

  /// Cycles to stream the input feature map into the line buffers.
  std::int64_t stream_cycles() const { return h_ * w_; }

  /// Extract the packed patch for output pixel (oy, ox) from a binary map
  /// stored as one byte per element (0/1), NHWC for a single image.
  void window_bits(const std::vector<std::uint8_t>& fmap, std::int64_t oy,
                   std::int64_t ox, std::uint64_t* out_words) const;

  /// Same, for integer-valued maps (first layer): writes k*k*c values.
  void window_values(const std::vector<std::int32_t>& fmap, std::int64_t oy,
                     std::int64_t ox, std::int32_t* out_values) const;

 private:
  std::int64_t h_, w_, c_, k_;
};

}  // namespace bcop::deploy
