// Matrix-Vector-Threshold Unit (MVTU) -- the FINN compute engine.
//
// One MVTU is instantiated per convolutional/fully-connected layer (paper
// Sec. III-B, Fig. 1). It is dimensioned by PE count (output neurons
// processed in parallel) and SIMD lanes (synapses consumed per PE per
// cycle). A matrix of R rows (output channels) and C columns (fan-in) is
// processed in ceil(R/PE) neuron folds x ceil(C/SIMD) synapse folds; that
// product is the unit's cycle cost per output vector and determines the
// pipeline's throughput.
//
// Two variants exist, matching the hardware:
//  - BinaryMvtu: XNOR + popcount accumulation over packed {-1,+1} bits,
//    followed by the folded threshold comparison.
//  - FixedMvtu: the first layer's fixed-point x binary-weight MACs (8-bit
//    pixels, FINN-style [7]; on DSP-constrained parts the XNORs can also be
//    offloaded to DSP blocks [27]).
// The simulation executes the exact fold loops so the cycle accounting and
// the arithmetic agree with what the RTL would do; outputs are bit-exact
// against xnor::XnorNetwork by construction (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/bit_tensor.hpp"
#include "xnor/folding.hpp"

namespace bcop::deploy {

struct MvtuConfig {
  std::int64_t pe = 1;
  std::int64_t simd = 1;
};

/// Cycle cost of one output vector: neuron folds x synapse folds.
std::int64_t folds_per_vector(std::int64_t rows, std::int64_t cols,
                              const MvtuConfig& cfg);

class BinaryMvtu {
 public:
  /// `weights` is [rows, cols] packed; `thresholds` may be null for the
  /// classifier MVTU (raw accumulators are streamed out).
  BinaryMvtu(const tensor::BitMatrix* weights,
             const xnor::ThresholdSpec* thresholds, MvtuConfig cfg);

  /// Process one packed input vector of `cols` bits. Appends `rows` output
  /// bits to `out_bits` (ignored if thresholds are absent) and, when
  /// `raw_acc` is non-null, the raw accumulators. Returns cycles consumed.
  std::int64_t process(const std::uint64_t* in_words,
                       std::vector<std::uint8_t>* out_bits,
                       std::vector<std::int32_t>* raw_acc) const;

  std::int64_t rows() const { return weights_->rows(); }
  std::int64_t cols() const { return weights_->cols(); }
  const MvtuConfig& config() const { return cfg_; }
  std::int64_t cycles_per_vector() const {
    return folds_per_vector(rows(), cols(), cfg_);
  }

 private:
  const tensor::BitMatrix* weights_;
  const xnor::ThresholdSpec* thresholds_;
  MvtuConfig cfg_;
};

class FixedMvtu {
 public:
  /// `weights` is the {-1,+1} float matrix [cols, rows] (nn layout);
  /// inputs are integer pixel codes.
  FixedMvtu(const tensor::Tensor* weights,
            const xnor::ThresholdSpec* thresholds, MvtuConfig cfg);

  std::int64_t process(const std::int32_t* in_values,
                       std::vector<std::uint8_t>* out_bits,
                       std::vector<std::int32_t>* raw_acc) const;

  std::int64_t rows() const { return weights_->shape()[1]; }
  std::int64_t cols() const { return weights_->shape()[0]; }
  const MvtuConfig& config() const { return cfg_; }
  std::int64_t cycles_per_vector() const {
    return folds_per_vector(rows(), cols(), cfg_);
  }

 private:
  const tensor::Tensor* weights_;
  const xnor::ThresholdSpec* thresholds_;
  MvtuConfig cfg_;
};

}  // namespace bcop::deploy
