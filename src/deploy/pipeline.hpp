// Streaming dataflow pipeline simulator (paper Fig. 1).
//
// The FINN architecture instantiates one hardware stage per layer -- SWU +
// MVTU for convolutions, MVTU for fully-connected layers, OR-reduction for
// max pools -- all connected by FIFOs, with every stage processing a
// different image simultaneously once the pipeline is full. This simulator
// executes the exact per-stage arithmetic (fold loops, threshold compares,
// boolean-OR pooling) for one image at a time and accounts cycles per
// stage; the slowest stage's cycle count is the pipeline's initiation
// interval (II), which determines steady-state throughput.
//
// Functional output is bit-exact against xnor::XnorNetwork (tested), and
// through it against the binarized training graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "tensor/tensor.hpp"
#include "xnor/engine.hpp"

namespace bcop::deploy {

struct StageCycles {
  std::string name;             // layer name from the spec table
  std::int64_t compute_cycles = 0;  // MVTU fold cycles for the whole image
  std::int64_t stream_cycles = 0;   // SWU stream-in cycles (convs)
  std::int64_t effective() const {
    return std::max(compute_cycles, stream_cycles);
  }
};

struct RunResult {
  tensor::Tensor logits;            // [1, classes], integer-valued
  std::vector<StageCycles> stages;  // one entry per compute layer
  /// Initiation interval: cycles between successive image completions once
  /// the pipeline is full (max over stages).
  std::int64_t initiation_interval() const;
  /// Single-image latency through the empty pipeline (sum over stages).
  std::int64_t latency_cycles() const;
};

class StreamingPipeline {
 public:
  /// Both `net` and `specs` must describe the same architecture; the
  /// constructor cross-checks layer shapes and throws on mismatch.
  /// `net` must outlive the pipeline.
  StreamingPipeline(const xnor::XnorNetwork& net,
                    std::vector<core::LayerSpec> specs);

  /// Execute one [1, S, S, 3] image through every stage.
  RunResult run(const tensor::Tensor& image) const;

  const std::vector<core::LayerSpec>& specs() const { return specs_; }

  /// Human-readable pipeline description (Fig. 1-style stage listing).
  std::string describe() const;

 private:
  const xnor::XnorNetwork* net_;
  std::vector<core::LayerSpec> specs_;
};

}  // namespace bcop::deploy
