#include "deploy/pipeline.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "deploy/mvtu.hpp"
#include "deploy/swu.hpp"
#include "xnor/plan.hpp"

namespace bcop::deploy {

using core::LayerSpec;
using tensor::Shape;
using tensor::Tensor;
using xnor::BinConvStage;
using xnor::BinDenseStage;
using xnor::FirstConvStage;
using xnor::FlattenStage;
using xnor::PoolStage;

std::int64_t RunResult::initiation_interval() const {
  std::int64_t ii = 0;
  for (const auto& s : stages) ii = std::max(ii, s.effective());
  return ii;
}

std::int64_t RunResult::latency_cycles() const {
  std::int64_t total = 0;
  for (const auto& s : stages) total += s.effective();
  return total;
}

StreamingPipeline::StreamingPipeline(const xnor::XnorNetwork& net,
                                     std::vector<LayerSpec> specs)
    : net_(&net), specs_(std::move(specs)) {
  // Cross-check: the spec table's compute layers must match the folded
  // network's stages one-to-one.
  std::size_t si = 0;
  for (const auto& stage : net.stages()) {
    // The streaming MVTU model evaluates one {-1,+1} plane per stage; it
    // has no residual-plane dataflow, so reject ReBNet-folded networks up
    // front instead of silently dropping their deeper planes (serve them
    // through the ExecutionPlan interpreter instead).
    if (const auto* rs = xnor::stage_residual(stage);
        rs != nullptr && (rs->levels > 1 || rs->scaled()))
      throw std::invalid_argument(
          "StreamingPipeline: residual-binarized stages (M > 1) are not "
          "supported by the streaming dataflow model");
    const std::string kind = xnor::stage_kind(stage);
    if (kind == "Pool" || kind == "Flatten") continue;
    if (si >= specs_.size())
      throw std::invalid_argument("StreamingPipeline: more stages than specs");
    const LayerSpec& sp = specs_[si++];
    std::int64_t rows = 0, cols = 0;
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      rows = st->co;
      cols = st->k * st->k * st->ci;
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      rows = st2->co;
      cols = st2->k * st2->k * st2->ci;
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      rows = st3->out;
      cols = st3->in;
    }
    if (rows != sp.matrix_rows() || cols != sp.matrix_cols())
      throw std::invalid_argument(
          "StreamingPipeline: spec '" + sp.name + "' matrix " +
          std::to_string(sp.matrix_rows()) + "x" +
          std::to_string(sp.matrix_cols()) + " does not match folded stage " +
          std::to_string(rows) + "x" + std::to_string(cols));
  }
  if (si != specs_.size())
    throw std::invalid_argument("StreamingPipeline: fewer stages than specs");
}

RunResult StreamingPipeline::run(const Tensor& image) const {
  if (image.shape().rank() != 4 || image.shape()[0] != 1)
    throw std::invalid_argument("StreamingPipeline::run: [1,S,S,C] required");

  // The engine's compiled plan carries the per-stage activation geometry;
  // consuming it here (instead of re-deriving h/w/c while executing) keeps
  // the simulator and the interpreter reading the same frozen dataflow.
  const xnor::ExecutionPlan& plan = net_->plan_for(image.shape());
  const std::vector<xnor::StageShape>& shapes = plan.stage_shapes();

  RunResult result;
  std::size_t si = 0;  // spec cursor
  std::size_t idx = 0; // stage cursor into the plan's shape table

  // Activation state between stages: binary map (one byte per element,
  // NHWC) with geometry, or logits at the very end.
  std::vector<std::uint8_t> bits;

  for (const auto& stage : net_->stages()) {
    const xnor::StageShape& ss = shapes[idx++];
    if (const auto* st = std::get_if<FirstConvStage>(&stage)) {
      const LayerSpec& sp = specs_[si++];
      // Stream in 8-bit pixel codes.
      const std::int64_t in_elems = ss.h_in * ss.w_in * ss.c_in;
      std::vector<std::int32_t> pixels(static_cast<std::size_t>(in_elems));
      for (std::int64_t i = 0; i < in_elems; ++i)
        pixels[static_cast<std::size_t>(i)] =
            static_cast<std::int32_t>(std::lround(image[i] * 255.f));
      SlidingWindowUnit swu(ss.h_in, ss.w_in, ss.c_in, st->k);
      FixedMvtu mvtu(&st->weights, &st->thresholds, {sp.pe, sp.simd});
      std::vector<std::uint8_t> out;
      out.reserve(static_cast<std::size_t>(ss.h_out * ss.w_out * ss.c_out));
      std::vector<std::int32_t> patch(static_cast<std::size_t>(swu.patch_bits()));
      std::int64_t cycles = 0;
      for (std::int64_t oy = 0; oy < ss.h_out; ++oy)
        for (std::int64_t ox = 0; ox < ss.w_out; ++ox) {
          swu.window_values(pixels, oy, ox, patch.data());
          cycles += mvtu.process(patch.data(), &out, nullptr);
        }
      result.stages.push_back({sp.name, cycles, swu.stream_cycles()});
      bits = std::move(out);
    } else if (const auto* st2 = std::get_if<BinConvStage>(&stage)) {
      const LayerSpec& sp = specs_[si++];
      SlidingWindowUnit swu(ss.h_in, ss.w_in, ss.c_in, st2->k);
      BinaryMvtu mvtu(&st2->weights, &st2->thresholds, {sp.pe, sp.simd});
      std::vector<std::uint8_t> out;
      out.reserve(static_cast<std::size_t>(ss.h_out * ss.w_out * ss.c_out));
      std::vector<std::uint64_t> patch(static_cast<std::size_t>(swu.patch_words()));
      std::int64_t cycles = 0;
      for (std::int64_t oy = 0; oy < ss.h_out; ++oy)
        for (std::int64_t ox = 0; ox < ss.w_out; ++ox) {
          swu.window_bits(bits, oy, ox, patch.data());
          cycles += mvtu.process(patch.data(), &out, nullptr);
        }
      result.stages.push_back({sp.name, cycles, swu.stream_cycles()});
      bits = std::move(out);
    } else if (std::get_if<PoolStage>(&stage)) {
      // Boolean OR over each 2x2 window (paper Sec. III-B).
      const std::int64_t w = ss.w_in, c = ss.c_in;
      std::vector<std::uint8_t> out(
          static_cast<std::size_t>(ss.h_out * ss.w_out * ss.c_out));
      for (std::int64_t y = 0; y < ss.h_out; ++y)
        for (std::int64_t x = 0; x < ss.w_out; ++x)
          for (std::int64_t ch = 0; ch < c; ++ch) {
            const auto at = [&](std::int64_t yy, std::int64_t xx) {
              return bits[static_cast<std::size_t>((yy * w + xx) * c + ch)];
            };
            out[static_cast<std::size_t>((y * ss.w_out + x) * c + ch)] =
                static_cast<std::uint8_t>(at(2 * y, 2 * x) | at(2 * y, 2 * x + 1) |
                                          at(2 * y + 1, 2 * x) |
                                          at(2 * y + 1, 2 * x + 1));
          }
      bits = std::move(out);
    } else if (std::get_if<FlattenStage>(&stage)) {
      // NHWC order is already the flattened order; nothing moves.
    } else if (const auto* st3 = std::get_if<BinDenseStage>(&stage)) {
      const LayerSpec& sp = specs_[si++];
      // Pack the flat activation bits into words.
      std::vector<std::uint64_t> packed(
          static_cast<std::size_t>((st3->in + 63) / 64), 0ull);
      for (std::int64_t i = 0; i < st3->in; ++i)
        if (bits[static_cast<std::size_t>(i)])
          packed[static_cast<std::size_t>(i >> 6)] |= 1ull << (i & 63);
      BinaryMvtu mvtu(&st3->weights,
                      st3->has_threshold ? &st3->thresholds : nullptr,
                      {sp.pe, sp.simd});
      std::vector<std::uint8_t> out;
      std::vector<std::int32_t> acc;
      const std::int64_t cycles =
          mvtu.process(packed.data(), &out, st3->has_threshold ? nullptr : &acc);
      result.stages.push_back({sp.name, cycles, 0});
      if (st3->has_threshold) {
        bits = std::move(out);
      } else {
        result.logits = Tensor(Shape{1, st3->out});
        for (std::int64_t i = 0; i < st3->out; ++i)
          result.logits[i] = static_cast<float>(acc[static_cast<std::size_t>(i)]);
      }
    }
  }
  if (result.logits.empty())
    throw std::logic_error("StreamingPipeline::run: no classifier stage");
  return result;
}

std::string StreamingPipeline::describe() const {
  std::ostringstream os;
  os << "StreamingPipeline[" << net_->name() << "]\n";
  std::size_t si = 0;
  for (const auto& stage : net_->stages()) {
    const std::string kind = xnor::stage_kind(stage);
    if (kind == "Pool") {
      os << "  Pool        2x2 boolean-OR\n";
      continue;
    }
    if (kind == "Flatten") {
      os << "  Flatten     NHWC -> flat\n";
      continue;
    }
    const LayerSpec& sp = specs_[si++];
    os << "  " << (sp.is_conv ? "SWU+MVTU " : "MVTU     ") << sp.name << "  "
       << sp.matrix_rows() << "x" << sp.matrix_cols() << "  PE=" << sp.pe
       << " SIMD=" << sp.simd << "  "
       << folds_per_vector(sp.matrix_rows(), sp.matrix_cols(), {sp.pe, sp.simd})
       << " cycles/vector x " << sp.output_vectors() << " vectors\n";
  }
  return os.str();
}

}  // namespace bcop::deploy
