#include "deploy/dse.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcop::deploy {

namespace {

/// SIMD ceiling for a layer: matrix columns, but the first conv consumes
/// channel-interleaved pixels so its SIMD cannot exceed its input channels.
std::int64_t simd_cap(const core::LayerSpec& s, bool is_first_conv) {
  return is_first_conv ? s.ci : s.matrix_cols();
}

std::size_t bottleneck_index(const PerfReport& perf) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < perf.layers.size(); ++i)
    if (perf.layers[i].effective_cycles >
        perf.layers[best].effective_cycles)
      best = i;
  return best;
}

}  // namespace

DseResult explore(std::vector<core::LayerSpec> specs, const DseGoal& goal) {
  if (specs.empty()) throw std::invalid_argument("dse::explore: empty specs");
  DseResult result;

  // Start from the minimal legal dimensioning.
  for (auto& s : specs) {
    s.pe = 1;
    s.simd = 1;
  }

  auto evaluate = [&](const std::vector<core::LayerSpec>& cand) {
    return std::pair{analyze_performance(cand),
                     estimate_resources(cand, goal.dsp_offload)};
  };

  auto [perf, res] = evaluate(specs);
  for (int step = 0; step < goal.max_steps; ++step) {
    if (goal.target_fps > 0 &&
        perf.fps(goal.clock_hz, goal.efficiency) >= goal.target_fps) {
      result.met_target = true;
      break;
    }
    const std::size_t b = bottleneck_index(perf);
    core::LayerSpec& layer = specs[b];
    const bool first_conv = b == 0 && layer.is_conv;

    // If the bottleneck is SWU-stream-bound, no MVTU widening can help.
    if (perf.layers[b].stream_cycles >= perf.layers[b].compute_cycles) break;

    // Candidate moves on the bottleneck: double SIMD (cheaper), double PE.
    struct Move {
      const char* axis;
      std::int64_t* field;
      std::int64_t cap;
    };
    const Move moves[] = {
        {"SIMD", &layer.simd, simd_cap(layer, first_conv)},
        {"PE", &layer.pe, layer.matrix_rows()},
    };
    bool applied = false;
    for (const Move& m : moves) {
      const std::int64_t old = *m.field;
      const std::int64_t next = std::min(old * 2, m.cap);
      if (next == old) continue;
      *m.field = next;
      auto [perf2, res2] = evaluate(specs);
      if (!res2.fits(goal.part.lut, goal.part.bram18, goal.part.dsp)) {
        *m.field = old;  // revert: the move blows the budget
        continue;
      }
      if (perf2.initiation_interval >= perf.initiation_interval &&
          m.axis == std::string("SIMD")) {
        // SIMD move did not help (ceil effects); try PE instead.
        *m.field = old;
        continue;
      }
      perf = std::move(perf2);
      res = res2;
      result.trajectory.push_back(
          {layer.name, m.axis, perf.fps(goal.clock_hz, goal.efficiency),
           res.lut});
      applied = true;
      break;
    }
    if (!applied) {
      result.resource_bound = true;
      break;
    }
  }

  result.performance = std::move(perf);
  result.resources = res;
  result.specs = std::move(specs);
  if (goal.target_fps > 0 &&
      result.performance.fps(goal.clock_hz, goal.efficiency) >= goal.target_fps)
    result.met_target = true;
  return result;
}

}  // namespace bcop::deploy
