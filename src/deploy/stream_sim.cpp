#include "deploy/stream_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace bcop::deploy {

StreamReport simulate_stream(const PerfReport& perf,
                             const StreamConfig& config) {
  const std::int64_t S = static_cast<std::int64_t>(perf.layers.size());
  const std::int64_t F = config.frames;
  if (S == 0) throw std::invalid_argument("simulate_stream: empty pipeline");
  if (F <= 0) throw std::invalid_argument("simulate_stream: no frames");
  if (config.fifo_depth < 1)
    throw std::invalid_argument("simulate_stream: fifo_depth must be >= 1");
  if (config.arrival_interval < 0)
    throw std::invalid_argument("simulate_stream: negative arrival interval");

  std::vector<std::int64_t> service(static_cast<std::size_t>(S));
  for (std::int64_t s = 0; s < S; ++s)
    service[static_cast<std::size_t>(s)] =
        perf.layers[static_cast<std::size_t>(s)].effective_cycles;

  // start/depart[f][s]; frames outer so all dependencies are computed.
  std::vector<std::vector<std::int64_t>> start(
      static_cast<std::size_t>(F),
      std::vector<std::int64_t>(static_cast<std::size_t>(S), 0));
  auto depart = [&](std::int64_t f, std::int64_t s) {
    return start[static_cast<std::size_t>(f)][static_cast<std::size_t>(s)] +
           service[static_cast<std::size_t>(s)];
  };

  std::vector<std::int64_t> arrivals(static_cast<std::size_t>(F));
  for (std::int64_t f = 0; f < F; ++f)
    arrivals[static_cast<std::size_t>(f)] = f * config.arrival_interval;

  std::vector<std::int64_t> blocked(static_cast<std::size_t>(S), 0);
  for (std::int64_t f = 0; f < F; ++f) {
    for (std::int64_t s = 0; s < S; ++s) {
      std::int64_t t = s == 0 ? arrivals[static_cast<std::size_t>(f)]
                              : depart(f, s - 1);
      if (f > 0) t = std::max(t, depart(f - 1, s));  // stage busy
      // Back-pressure: frame f may only enter stage s once frame
      // f - fifo_depth has entered stage s+1, freeing a FIFO slot.
      std::int64_t unblocked = t;
      if (s + 1 < S && f >= config.fifo_depth) {
        const std::int64_t frees =
            start[static_cast<std::size_t>(f - config.fifo_depth)]
                 [static_cast<std::size_t>(s + 1)];
        unblocked = std::max(t, frees);
      }
      blocked[static_cast<std::size_t>(s)] += unblocked - t;
      start[static_cast<std::size_t>(f)][static_cast<std::size_t>(s)] =
          unblocked;
    }
  }

  StreamReport report;
  report.makespan_cycles = depart(F - 1, S - 1);
  report.first_frame_latency = depart(0, S - 1) - arrivals[0];
  double latency_sum = 0;
  for (std::int64_t f = 0; f < F; ++f) {
    const std::int64_t lat = depart(f, S - 1) - arrivals[static_cast<std::size_t>(f)];
    latency_sum += static_cast<double>(lat);
    report.max_latency_cycles = std::max(report.max_latency_cycles, lat);
  }
  report.mean_latency_cycles = latency_sum / static_cast<double>(F);

  // Measured II: completion spacing over the second half of the run.
  const std::int64_t half = F / 2;
  if (F - half >= 2) {
    const std::int64_t span = depart(F - 1, S - 1) - depart(half, S - 1);
    report.measured_ii =
        static_cast<double>(span) / static_cast<double>(F - 1 - half);
  } else {
    report.measured_ii = static_cast<double>(report.makespan_cycles);
  }

  for (std::int64_t s = 0; s < S; ++s) {
    StageStats st;
    st.name = perf.layers[static_cast<std::size_t>(s)].name;
    st.service_cycles = service[static_cast<std::size_t>(s)];
    st.busy_cycles = service[static_cast<std::size_t>(s)] * F;
    st.utilization = report.makespan_cycles == 0
                         ? 0
                         : static_cast<double>(st.busy_cycles) /
                               static_cast<double>(report.makespan_cycles);
    st.blocked_cycles = blocked[static_cast<std::size_t>(s)];
    report.stages.push_back(std::move(st));
  }
  return report;
}

}  // namespace bcop::deploy
