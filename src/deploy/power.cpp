#include "deploy/power.hpp"

namespace bcop::deploy {

PowerReport estimate_power(const ResourceEstimate& resources) {
  PowerReport p;
  p.active_w = kIdlePowerW + kWattsPerLut * static_cast<double>(resources.lut) +
               kWattsPerBram18 * resources.bram18 +
               kWattsPerDsp * static_cast<double>(resources.dsp);
  return p;
}

}  // namespace bcop::deploy
