#include "deploy/performance.hpp"

#include <algorithm>
#include <stdexcept>

#include "deploy/mvtu.hpp"

namespace bcop::deploy {

PerfReport analyze_performance(const std::vector<core::LayerSpec>& specs) {
  if (specs.empty())
    throw std::invalid_argument("analyze_performance: empty spec table");
  PerfReport report;
  for (const auto& sp : specs) {
    LayerPerf lp;
    lp.name = sp.name;
    lp.compute_cycles =
        sp.output_vectors() *
        folds_per_vector(sp.matrix_rows(), sp.matrix_cols(), {sp.pe, sp.simd});
    lp.stream_cycles = sp.is_conv ? sp.in_h * sp.in_w : 0;
    lp.effective_cycles = std::max(lp.compute_cycles, lp.stream_cycles);
    report.layers.push_back(std::move(lp));
  }
  for (const auto& lp : report.layers) {
    if (lp.effective_cycles > report.initiation_interval) {
      report.initiation_interval = lp.effective_cycles;
      report.bottleneck = lp.name;
    }
    report.pipeline_latency_cycles += lp.effective_cycles;
  }
  for (auto& lp : report.layers)
    lp.utilization = static_cast<double>(lp.effective_cycles) /
                     static_cast<double>(report.initiation_interval);
  return report;
}

}  // namespace bcop::deploy
