// FPGA resource model: LUT / BRAM18 / DSP estimates per design (Table II).
//
// The model is structural -- every term corresponds to a hardware
// component of the FINN architecture -- with constants calibrated once
// against Table II (documented in EXPERIMENTS.md):
//   LUT  = kLutPerLane * sum(PE*SIMD)          (XNOR array + popcount tree)
//        + kLutPerPe   * sum(PE)               (accumulator + threshold)
//        + kLutPerUnit * layers                (MVTU control + SWU)
//        + kLutBase                            (AXI/DMA/platform shell)
//        + LUTRAM bits / 64 for small weight memories
//   In DSP-offload mode (u-CNV on the Z7010, per OrthrusPE [27]) the XNOR
//   array moves into DSP48 blocks, leaving kOffloadLutFactor of its LUTs.
//   BRAM18 = per-PE weight partitions: pe * ceil(bits_per_pe / 18Kb) for
//   memories above the LUTRAM threshold (small ones synthesize to LUTRAM).
//   DSP  = sum(PE)/4 (4 PEs share a DSP48 accumulator) + 1 (control)
//        + offload ? sum_conv(PE*SIMD)/16 (16 XNOR lanes per DSP48) : 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/architecture.hpp"

namespace bcop::deploy {

struct ResourceEstimate {
  std::int64_t lut = 0;
  double bram18 = 0;  // paper reports fractional BRAM (10.5)
  std::int64_t dsp = 0;
  std::int64_t weight_bits = 0;
  bool dsp_offload = false;

  /// Does the design fit the given part? (LUT/BRAM18/DSP capacities)
  bool fits(std::int64_t luts, double bram, std::int64_t dsps) const {
    return lut <= luts && bram18 <= bram && dsp <= dsps;
  }
};

/// Capacities of the two target SoCs (Zynq-7000 series).
struct FpgaPart {
  std::string name;
  std::int64_t lut;
  double bram18;
  std::int64_t dsp;
};
FpgaPart z7020();  // XC7Z020: 53,200 LUT, 280 BRAM18, 220 DSP
FpgaPart z7010();  // XC7Z010: 17,600 LUT, 120 BRAM18,  80 DSP

/// Estimate resources for a prototype. `dsp_offload` selects the
/// OrthrusPE-style XNOR-in-DSP mapping the paper uses for u-CNV [27].
ResourceEstimate estimate_resources(const std::vector<core::LayerSpec>& specs,
                                    bool dsp_offload);

}  // namespace bcop::deploy
