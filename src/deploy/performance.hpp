// Analytical throughput / latency model (paper Sec. IV-B).
//
// Per layer, the MVTU needs
//   compute = out_vectors * ceil(rows/PE) * ceil(cols/SIMD)   cycles/image
// and convolutional stages additionally stream in in_h*in_w pixels through
// the SWU. The pipeline's initiation interval is the slowest stage, and
//   FPS = f_clk * efficiency / II.
// `kImplementationEfficiency` is the single calibrated constant in the
// model (FIFO back-pressure, SWU ramp-in/out, AXI overhead); it is chosen
// once so n-CNV lands at the paper's ~6400 FPS, and every other number
// (ordering, ratios, latency) follows from the folding arithmetic alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/architecture.hpp"

namespace bcop::deploy {

/// Target clock of all Binary-CoP designs (paper Sec. IV-B).
constexpr double kClockHz = 100e6;

/// Measured-vs-peak efficiency; see header comment.
constexpr double kImplementationEfficiency = 0.52;

struct LayerPerf {
  std::string name;
  std::int64_t compute_cycles = 0;
  std::int64_t stream_cycles = 0;
  std::int64_t effective_cycles = 0;
  double utilization = 0.0;  // compute / II: 1.0 for the bottleneck layer
};

struct PerfReport {
  std::vector<LayerPerf> layers;
  std::int64_t initiation_interval = 0;
  std::int64_t pipeline_latency_cycles = 0;
  std::string bottleneck;

  double fps(double clock_hz = kClockHz,
             double efficiency = kImplementationEfficiency) const {
    return initiation_interval == 0
               ? 0.0
               : clock_hz * efficiency /
                     static_cast<double>(initiation_interval);
  }
  double latency_ms(double clock_hz = kClockHz) const {
    return 1e3 * static_cast<double>(pipeline_latency_cycles) / clock_hz;
  }

  /// Cycles to classify a back-to-back batch of n frames: the first frame
  /// pays the full pipeline latency, every further frame one initiation
  /// interval. This is the "classification rate when the accelerator's
  /// pipeline is full" accounting of Sec. IV-A.
  std::int64_t batch_cycles(std::int64_t n) const {
    if (n <= 0) return 0;
    return pipeline_latency_cycles + (n - 1) * initiation_interval;
  }

  /// Effective frames/second for a batch of n (approaches fps() as n grows).
  double batch_fps(std::int64_t n, double clock_hz = kClockHz,
                   double efficiency = kImplementationEfficiency) const {
    const std::int64_t cycles = batch_cycles(n);
    return cycles <= 0 ? 0.0
                       : static_cast<double>(n) * clock_hz * efficiency /
                             static_cast<double>(cycles);
  }
};

/// Evaluate the model for a prototype's spec table.
PerfReport analyze_performance(const std::vector<core::LayerSpec>& specs);

}  // namespace bcop::deploy
