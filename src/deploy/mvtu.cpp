#include "deploy/mvtu.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace bcop::deploy {

std::int64_t folds_per_vector(std::int64_t rows, std::int64_t cols,
                              const MvtuConfig& cfg) {
  if (cfg.pe <= 0 || cfg.simd <= 0)
    throw std::invalid_argument("MvtuConfig: non-positive PE/SIMD");
  const std::int64_t nf = (rows + cfg.pe - 1) / cfg.pe;
  const std::int64_t sf = (cols + cfg.simd - 1) / cfg.simd;
  return nf * sf;
}

namespace {
/// Extract bit `i` from a packed row.
inline int bit_at(const std::uint64_t* words, std::int64_t i) {
  return static_cast<int>((words[i >> 6] >> (i & 63)) & 1ull);
}
}  // namespace

BinaryMvtu::BinaryMvtu(const tensor::BitMatrix* weights,
                       const xnor::ThresholdSpec* thresholds, MvtuConfig cfg)
    : weights_(weights), thresholds_(thresholds), cfg_(cfg) {
  if (!weights) throw std::invalid_argument("BinaryMvtu: null weights");
  if (thresholds && thresholds->channels() != weights->rows())
    throw std::invalid_argument("BinaryMvtu: threshold/row mismatch");
}

std::int64_t BinaryMvtu::process(const std::uint64_t* in_words,
                                 std::vector<std::uint8_t>* out_bits,
                                 std::vector<std::int32_t>* raw_acc) const {
  BCOP_CHECK(in_words != nullptr, "BinaryMvtu::process: null input vector");
  const std::int64_t R = rows(), C = cols();
  const std::int64_t nf = (R + cfg_.pe - 1) / cfg_.pe;
  const std::int64_t sf = (C + cfg_.simd - 1) / cfg_.simd;
  std::int64_t cycles = 0;

  // Neuron folds: each fold maps cfg_.pe consecutive rows onto the PEs.
  for (std::int64_t f = 0; f < nf; ++f) {
    std::vector<std::int64_t> match(static_cast<std::size_t>(cfg_.pe), 0);
    // Synapse folds: every cycle each PE consumes cfg_.simd input bits and
    // XNORs them against its weight slice, accumulating the popcount.
    for (std::int64_t sfi = 0; sfi < sf; ++sfi) {
      ++cycles;
      const std::int64_t c0 = sfi * cfg_.simd;
      const std::int64_t c1 = std::min(C, c0 + cfg_.simd);
      for (std::int64_t p = 0; p < cfg_.pe; ++p) {
        const std::int64_t r = f * cfg_.pe + p;
        if (r >= R) continue;
        const std::uint64_t* wrow = weights_->row(r);
        std::int64_t m = 0;
        for (std::int64_t c = c0; c < c1; ++c)
          m += 1 - (bit_at(in_words, c) ^ bit_at(wrow, c));  // XNOR
        match[static_cast<std::size_t>(p)] += m;
      }
    }
    // Threshold stage: acc = 2*matches - C, compare against folded T.
    for (std::int64_t p = 0; p < cfg_.pe; ++p) {
      const std::int64_t r = f * cfg_.pe + p;
      if (r >= R) continue;
      const std::int64_t acc = 2 * match[static_cast<std::size_t>(p)] - C;
      if (raw_acc) raw_acc->push_back(static_cast<std::int32_t>(acc));
      if (thresholds_ && out_bits)
        out_bits->push_back(thresholds_->fire(acc, r) ? 1 : 0);
    }
  }
  return cycles;
}

FixedMvtu::FixedMvtu(const tensor::Tensor* weights,
                     const xnor::ThresholdSpec* thresholds, MvtuConfig cfg)
    : weights_(weights), thresholds_(thresholds), cfg_(cfg) {
  if (!weights || weights->shape().rank() != 2)
    throw std::invalid_argument("FixedMvtu: rank-2 weights required");
  if (thresholds && thresholds->channels() != weights->shape()[1])
    throw std::invalid_argument("FixedMvtu: threshold/row mismatch");
}

std::int64_t FixedMvtu::process(const std::int32_t* in_values,
                                std::vector<std::uint8_t>* out_bits,
                                std::vector<std::int32_t>* raw_acc) const {
  const std::int64_t R = rows(), C = cols();
  const std::int64_t nf = (R + cfg_.pe - 1) / cfg_.pe;
  const std::int64_t sf = (C + cfg_.simd - 1) / cfg_.simd;
  std::int64_t cycles = 0;

  for (std::int64_t f = 0; f < nf; ++f) {
    std::vector<std::int64_t> acc(static_cast<std::size_t>(cfg_.pe), 0);
    for (std::int64_t sfi = 0; sfi < sf; ++sfi) {
      ++cycles;
      const std::int64_t c0 = sfi * cfg_.simd;
      const std::int64_t c1 = std::min(C, c0 + cfg_.simd);
      for (std::int64_t p = 0; p < cfg_.pe; ++p) {
        const std::int64_t r = f * cfg_.pe + p;
        if (r >= R) continue;
        std::int64_t a = 0;
        for (std::int64_t c = c0; c < c1; ++c) {
          // Binary weight: +x or -x, i.e. a conditional negate on hardware.
          const float w = weights_->at2(c, r);
          a += w >= 0.f ? in_values[c] : -in_values[c];
        }
        acc[static_cast<std::size_t>(p)] += a;
      }
    }
    for (std::int64_t p = 0; p < cfg_.pe; ++p) {
      const std::int64_t r = f * cfg_.pe + p;
      if (r >= R) continue;
      const std::int64_t a = acc[static_cast<std::size_t>(p)];
      if (raw_acc) raw_acc->push_back(static_cast<std::int32_t>(a));
      if (thresholds_ && out_bits)
        out_bits->push_back(thresholds_->fire(a, r) ? 1 : 0);
    }
  }
  return cycles;
}

}  // namespace bcop::deploy
