#include "deploy/resource.hpp"

#include <cmath>
#include <stdexcept>

namespace bcop::deploy {

namespace {
// Calibrated against Table II; see header and EXPERIMENTS.md.
constexpr double kLutPerLane = 4.9;    // XNOR + popcount tree, per bit-lane
constexpr double kLutPerPe = 40.0;     // accumulator + threshold compare
constexpr double kLutPerUnit = 800.0;  // MVTU control + SWU + FIFOs
constexpr double kLutBase = 4000.0;    // AXI-lite/stream shell, DMA
constexpr double kOffloadLutFactor = 0.15;
constexpr std::int64_t kLutramThresholdBits = 1024;  // per-PE memory
constexpr std::int64_t kBram18Bits = 18 * 1024;
constexpr std::int64_t kXnorLanesPerDsp = 16;  // OrthrusPE packing [27]
constexpr std::int64_t kPePerDsp = 4;          // shared accumulator DSP
}  // namespace

FpgaPart z7020() { return {"XC7Z020", 53200, 280, 220}; }
FpgaPart z7010() { return {"XC7Z010", 17600, 120, 80}; }

ResourceEstimate estimate_resources(const std::vector<core::LayerSpec>& specs,
                                    bool dsp_offload) {
  if (specs.empty())
    throw std::invalid_argument("estimate_resources: empty spec table");
  ResourceEstimate est;
  est.dsp_offload = dsp_offload;

  double lut = kLutBase;
  std::int64_t total_pe = 0, conv_lanes = 0;
  for (const auto& sp : specs) {
    const std::int64_t lanes = sp.pe * sp.simd;
    total_pe += sp.pe;
    if (sp.is_conv) conv_lanes += lanes;
    const double lane_factor =
        dsp_offload && sp.is_conv ? kOffloadLutFactor : 1.0;
    lut += kLutPerLane * static_cast<double>(lanes) * lane_factor;
    lut += kLutPerPe * static_cast<double>(sp.pe);
    lut += kLutPerUnit;

    // Weight memory: per-PE partitions; small ones go to LUTRAM.
    const std::int64_t bits = sp.weight_count();
    est.weight_bits += bits;
    const std::int64_t bits_per_pe = (bits + sp.pe - 1) / sp.pe;
    if (bits_per_pe <= kLutramThresholdBits) {
      lut += static_cast<double>(bits) / 64.0;  // 64-bit LUTRAM primitives
    } else {
      est.bram18 += static_cast<double>(
          sp.pe * ((bits_per_pe + kBram18Bits - 1) / kBram18Bits));
    }
  }
  est.lut = static_cast<std::int64_t>(std::llround(lut));
  est.dsp = (total_pe + kPePerDsp - 1) / kPePerDsp + 1;
  if (dsp_offload)
    est.dsp += (conv_lanes + kXnorLanesPerDsp - 1) / kXnorLanesPerDsp;
  return est;
}

}  // namespace bcop::deploy
