// ExecutionPlan / Workspace unit tests: the compile() geometry, the plan
// cache, arena sizing/alignment, the detail::execute entry point, and the
// partial-network (Unpack) path.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/architecture.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "xnor/engine.hpp"
#include "xnor/exec.hpp"
#include "xnor/exec_residual.hpp"
#include "xnor/plan.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;
using xnor::ExecutionPlan;
using xnor::StepKind;
using xnor::Workspace;
using xnor::XnorNetwork;

Tensor random_images(std::int64_t n, std::uint64_t seed) {
  Tensor x(Shape{n, 32, 32, 3});
  util::Rng rng(seed);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform());
  return x;
}

TEST(ExecutionPlanTest, CompilesPrototypeGeometry) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 7);
  const XnorNetwork net = XnorNetwork::fold(model);
  const Shape input{3, 32, 32, 3};
  const ExecutionPlan plan = ExecutionPlan::compile(net, input);

  EXPECT_EQ(plan.input_shape(), input);
  EXPECT_EQ(plan.output_shape(), (Shape{3, 4}));
  EXPECT_EQ(plan.batch(), 3);
  EXPECT_EQ(plan.stage_shapes().size(), net.stages().size());
  ASSERT_FALSE(plan.steps().empty());
  EXPECT_EQ(plan.steps().front().kind, StepKind::kFirstConv);
  EXPECT_EQ(plan.steps().back().kind, StepKind::kLogits);
  EXPECT_EQ(plan.steps().back().dst_half, -1);  // logits go to the caller
  EXPECT_GT(plan.arena_bytes(), 0u);

  // Per-stage shapes must chain: each stage's input is the previous
  // stage's output.
  const auto& shapes = plan.stage_shapes();
  for (std::size_t i = 1; i < shapes.size(); ++i) {
    EXPECT_EQ(shapes[i].h_in, shapes[i - 1].h_out) << "stage " << i;
    EXPECT_EQ(shapes[i].w_in, shapes[i - 1].w_out) << "stage " << i;
    EXPECT_EQ(shapes[i].c_in, shapes[i - 1].c_out) << "stage " << i;
  }
}

TEST(ExecutionPlanTest, RejectsMismatchedInput) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 7);
  const XnorNetwork net = XnorNetwork::fold(model);
  // Wrong rank and wrong channel count both carry descriptive messages.
  EXPECT_THROW(ExecutionPlan::compile(net, Shape{4, 9}), std::runtime_error);
  EXPECT_THROW(ExecutionPlan::compile(net, Shape{1, 32, 32, 5}),
               std::runtime_error);
  EXPECT_THROW(ExecutionPlan::compile(net, Shape{0, 32, 32, 3}),
               std::runtime_error);
}

TEST(ExecutionPlanTest, PlanCacheReturnsStableReferences) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 11);
  const XnorNetwork net = XnorNetwork::fold(model);
  const ExecutionPlan& a = net.plan_for(Shape{2, 32, 32, 3});
  const ExecutionPlan& b = net.plan_for(Shape{4, 32, 32, 3});
  const ExecutionPlan& a2 = net.plan_for(Shape{2, 32, 32, 3});
  EXPECT_EQ(&a, &a2);  // same shape -> same cached plan
  EXPECT_NE(&a, &b);   // batch is part of the key
  EXPECT_EQ(a.batch(), 2);
  EXPECT_EQ(b.batch(), 4);
  // The first reference must survive later cache growth (node stability).
  EXPECT_EQ(a.output_shape(), (Shape{2, 4}));
}

TEST(ExecutionPlanTest, WorkspaceGrowsMonotonically) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 3);
  const XnorNetwork net = XnorNetwork::fold(model);
  const ExecutionPlan& small = net.plan_for(Shape{1, 32, 32, 3});
  const ExecutionPlan& big = net.plan_for(Shape{8, 32, 32, 3});
  ASSERT_GT(big.arena_bytes(), small.arena_bytes());

  Workspace ws;
  EXPECT_EQ(ws.capacity(), 0u);
  ws.prepare(small);
  const std::size_t after_small = ws.capacity();
  EXPECT_GE(after_small, small.arena_bytes());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ws.base()) % 64, 0u);

  ws.prepare(big);
  EXPECT_GE(ws.capacity(), big.arena_bytes());
  const std::byte* base_big = ws.base();
  ws.prepare(small);  // shrinking request: no-op, capacity holds
  EXPECT_GE(ws.capacity(), big.arena_bytes());
  EXPECT_EQ(ws.base(), base_big);
}

TEST(ExecutionPlanTest, DetailExecuteMatchesForwardBatch) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kCnv, 19);
  const XnorNetwork net = XnorNetwork::fold(model);
  const Tensor x = random_images(2, 42);

  const Tensor expected = net.forward_batch(x);

  const ExecutionPlan& plan = net.plan_for(x.shape());
  Workspace ws;
  ws.prepare(plan);
  Tensor out(plan.output_shape());
  xnor::detail::execute(plan, net.stages(), x.data(), ws, out.data());

  ASSERT_EQ(out.shape(), expected.shape());
  for (std::int64_t i = 0; i < out.numel(); ++i)
    ASSERT_EQ(out[i], expected[i]) << "logit " << i;
}

TEST(ExecutionPlanTest, PartialNetworkUnpacksBits) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 5);
  const XnorNetwork full = XnorNetwork::fold(model);
  // First conv stage only: the plan must end in an Unpack step and surface
  // the bit state as {-1,+1} floats in NHWC geometry.
  std::vector<xnor::Stage> head(full.stages().begin(),
                                full.stages().begin() + 1);
  const XnorNetwork partial("head", std::move(head));

  const Tensor x = random_images(2, 99);
  const ExecutionPlan& plan = partial.plan_for(x.shape());
  EXPECT_EQ(plan.steps().back().kind, StepKind::kUnpack);
  EXPECT_EQ(plan.output_shape(), (Shape{2, 30, 30, 16}));

  const Tensor y = partial.forward_batch(x);
  ASSERT_EQ(y.shape(), plan.output_shape());
  for (std::int64_t i = 0; i < y.numel(); ++i)
    ASSERT_TRUE(y[i] == 1.f || y[i] == -1.f) << "element " << i;
}

// --- Residual binarization (docs/residual-binarization.md) -------------

TEST(ExecutionPlanResidual, MultiLevelPlanLaysOutBanksPlanesAndScratch) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 7,
                                         /*residual_levels=*/3);
  const XnorNetwork net = XnorNetwork::fold(model);
  ASSERT_EQ(net.max_levels(), 3);
  const Shape input{2, 32, 32, 3};
  const ExecutionPlan plan = ExecutionPlan::compile(net, input);

  // Every activation-producing step emits 3 planes fired from 2^3 - 1
  // consecutive pattern banks; the classifier consumes 3 scaled planes.
  std::int64_t residual_steps = 0;
  for (const auto& st : plan.steps()) {
    if (st.kind == StepKind::kFirstConv || st.kind == StepKind::kBinConv ||
        st.kind == StepKind::kBinDense) {
      EXPECT_EQ(st.levels_out, 3);
      ASSERT_GE(st.prep, 0);
      for (std::int64_t b = 0; b < 7; ++b)
        EXPECT_EQ(plan.prep(st.prep + b).thr.size(),
                  static_cast<std::size_t>(st.out_cols))
            << "bank " << b;
      ++residual_steps;
    }
    if (st.kind == StepKind::kBinConv || st.kind == StepKind::kBinDense ||
        st.kind == StepKind::kLogits) {
      EXPECT_EQ(st.levels_in, 3);
      EXPECT_TRUE(st.in_scaled);
      // Dyadic scale chain: g_0 >= g_1 >= g_2 >= 1, strictly dominant.
      EXPECT_GT(st.in_scale_bits[0], st.in_scale_bits[1] + st.in_scale_bits[2]);
      EXPECT_GE(st.in_scale_bits[2], 1);
    }
    if (st.kind == StepKind::kLogits)
      EXPECT_FLOAT_EQ(st.out_scale, 1.f / 256.f);
  }
  EXPECT_GT(residual_steps, 0);

  // The acc2 per-plane GEMM scratch is a real region (classic plans keep
  // it zero-sized, aliased to the float offset).
  EXPECT_GT(plan.float_offset(), plan.acc2_offset());
  nn::Sequential classic = core::build_bnn(core::ArchitectureId::kMicroCnv, 7);
  const XnorNetwork cnet = XnorNetwork::fold(classic);
  const ExecutionPlan cplan = ExecutionPlan::compile(cnet, input);
  EXPECT_EQ(cplan.float_offset(), cplan.acc2_offset());
}

TEST(ExecutionPlanResidual, LevelCapTruncatesBanksAndKeysTheCache) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 13,
                                         /*residual_levels=*/3);
  const XnorNetwork net = XnorNetwork::fold(model);
  const Shape input{1, 32, 32, 3};

  const ExecutionPlan capped = ExecutionPlan::compile(net, input, 2);
  EXPECT_EQ(capped.levels(), 2);
  for (const auto& st : capped.steps())
    if (st.kind == StepKind::kFirstConv || st.kind == StepKind::kBinConv ||
        st.kind == StepKind::kBinDense) {
      EXPECT_EQ(st.levels_out, 2);  // 2^2 - 1 = 3 banks laid out
      EXPECT_LE(st.levels_in, 2);
    }

  // The cap widens the plan-cache key: same shape, different M -> distinct
  // plans; a cap at/above the trained depth normalizes to the full entry.
  const ExecutionPlan& full = net.plan_for(input);
  const ExecutionPlan& m1 = net.plan_for(input, 1);
  const ExecutionPlan& m2 = net.plan_for(input, 2);
  EXPECT_NE(&full, &m1);
  EXPECT_NE(&full, &m2);
  EXPECT_NE(&m1, &m2);
  EXPECT_EQ(&net.plan_for(input, 3), &full);
  EXPECT_EQ(&net.plan_for(input, 0), &full);

  // Truncated plans shrink monotonically: fewer banks and planes mean a
  // smaller (or equal) arena.
  EXPECT_LE(m1.arena_bytes(), m2.arena_bytes());
  EXPECT_LE(m2.arena_bytes(), full.arena_bytes());

  EXPECT_THROW(ExecutionPlan::compile(net, input, 4), std::runtime_error);
  EXPECT_THROW(ExecutionPlan::compile(net, input, -1), std::runtime_error);
}

TEST(ExecutionPlanResidual, DetailExecuteMatchesForwardBatchAtEveryCap) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 19,
                                         /*residual_levels=*/2);
  const XnorNetwork net = XnorNetwork::fold(model);
  const Tensor x = random_images(2, 42);
  for (std::int64_t cap = 0; cap <= 2; ++cap) {
    const Tensor expected = net.forward_batch(x, cap);
    const ExecutionPlan& plan = net.plan_for(x.shape(), cap);
    Workspace ws;
    ws.prepare(plan);
    Tensor out(plan.output_shape());
    xnor::detail::execute(plan, net.stages(), x.data(), ws, out.data());
    for (std::int64_t i = 0; i < out.numel(); ++i)
      ASSERT_EQ(out[i], expected[i]) << "cap " << cap << " logit " << i;
  }
}

TEST(ExecutionPlanTest, CopiedNetworkKeepsWorking) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 23);
  const XnorNetwork net = XnorNetwork::fold(model);
  const Tensor x = random_images(2, 7);
  const Tensor expected = net.forward_batch(x);  // also warms net's cache

  XnorNetwork copy = net;                  // fresh (empty) plan cache
  const Tensor from_copy = copy.forward_batch(x);  // warms the copy's cache
  const XnorNetwork moved = std::move(copy);       // move keeps the cache
  const Tensor from_moved = moved.forward_batch(x);
  for (std::int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_EQ(from_copy[i], expected[i]);
    ASSERT_EQ(from_moved[i], expected[i]);
  }
}

}  // namespace
