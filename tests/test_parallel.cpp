#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "parallel/affinity.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using bcop::parallel::parallel_for;
using bcop::parallel::parallel_for_chunked;
using bcop::parallel::ThreadPool;

TEST(ThreadPool, InlineModeRunsSubmittedWork) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int counter = 0;
  pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter, 1);
}

TEST(ThreadPool, WorkersDrainQueue) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait_idle();
  pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

class ParallelForEachPoolSize : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelForEachPoolSize, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 0, 257, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ParallelForEachPoolSize, ChunksPartitionTheRange) {
  ThreadPool pool(GetParam());
  std::mutex m;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallel_for_chunked(pool, 10, 110, [&](std::int64_t lo, std::int64_t hi) {
    std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 10);
  EXPECT_EQ(chunks.back().second, 110);
  for (std::size_t i = 1; i < chunks.size(); ++i)
    EXPECT_EQ(chunks[i - 1].second, chunks[i].first);  // contiguous, disjoint
}

TEST_P(ParallelForEachPoolSize, SumMatchesSerial) {
  ThreadPool pool(GetParam());
  std::atomic<std::int64_t> sum{0};
  parallel_for(pool, 1, 1001, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 500500);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelForEachPoolSize,
                         ::testing::Values(0u, 1u, 2u, 4u, 7u));

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::int64_t) { ++calls; });
  parallel_for(pool, 5, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [&](std::int64_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Pool must remain usable afterwards.
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 10, [&](std::int64_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, SingleIndexRange) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  parallel_for(pool, 41, 42, [&](std::int64_t i) {
    EXPECT_EQ(i, 41);
    ++counter;
  });
  EXPECT_EQ(counter.load(), 1);
}

TEST(GlobalPool, IsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(Affinity, AvailableCpusIsPositiveAndMatchesIds) {
  const int n = bcop::parallel::available_cpus();
  EXPECT_GE(n, 1);
  const std::vector<int> ids = bcop::parallel::cpu_ids();
  if (!ids.empty()) {
    EXPECT_EQ(static_cast<int>(ids.size()), n);
    for (std::size_t i = 1; i < ids.size(); ++i)
      EXPECT_LT(ids[i - 1], ids[i]) << "ids must be ascending and unique";
  }
}

// The round-robin deal: disjoint sets, every CPU covered exactly once,
// sizes differing by at most one.
TEST(Affinity, PartitionCpusIsDisjointAndComplete) {
  const std::vector<int> ids = bcop::parallel::cpu_ids();
  if (ids.empty()) GTEST_SKIP() << "no readable affinity mask on this host";
  const unsigned groups =
      static_cast<unsigned>(std::min<std::size_t>(ids.size(), 3));
  std::set<int> seen;
  std::size_t smallest = ids.size(), largest = 0;
  for (unsigned g = 0; g < groups; ++g) {
    const std::vector<int> mine = bcop::parallel::partition_cpus(g, groups);
    EXPECT_FALSE(mine.empty()) << "group " << g;
    smallest = std::min(smallest, mine.size());
    largest = std::max(largest, mine.size());
    for (const int cpu : mine)
      EXPECT_TRUE(seen.insert(cpu).second)
          << "cpu " << cpu << " dealt twice (groups must be disjoint)";
  }
  EXPECT_EQ(seen.size(), ids.size()) << "every CPU must be dealt";
  EXPECT_LE(largest - smallest, 1u) << "round-robin deal is balanced";
}

// Oversubscription (more replicas than CPUs) aliases instead of handing
// out empty sets: every group still gets at least one CPU.
TEST(Affinity, PartitionCpusOversubscribedAliasesNotEmpty) {
  const std::vector<int> ids = bcop::parallel::cpu_ids();
  if (ids.empty()) GTEST_SKIP() << "no readable affinity mask on this host";
  const unsigned groups = static_cast<unsigned>(ids.size()) + 3;
  for (unsigned g = 0; g < groups; ++g) {
    const std::vector<int> mine = bcop::parallel::partition_cpus(g, groups);
    ASSERT_EQ(mine.size(), 1u) << "group " << g;
    EXPECT_EQ(mine[0], ids[g % ids.size()]);
  }
}

// Pinning is a hint that soft-fails: empty and nonsense sets report
// false, a genuine CPU reports success on Linux (and the thread can be
// re-pinned to the full mask afterwards -- the test must not leak a
// narrowed mask).
TEST(Affinity, PinCurrentThreadSoftFails) {
  EXPECT_FALSE(bcop::parallel::pin_current_thread({}));
  EXPECT_FALSE(bcop::parallel::pin_current_thread({-1}));
  const std::vector<int> ids = bcop::parallel::cpu_ids();
  if (ids.empty()) GTEST_SKIP() << "no readable affinity mask on this host";
  EXPECT_TRUE(bcop::parallel::pin_current_thread({ids.front()}));
  EXPECT_EQ(bcop::parallel::cpu_ids(), std::vector<int>{ids.front()});
  EXPECT_TRUE(bcop::parallel::pin_current_thread(ids));  // restore
  EXPECT_EQ(bcop::parallel::cpu_ids(), ids);
}

}  // namespace
