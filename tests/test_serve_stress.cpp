// Concurrency hammering for the BatchingServer, written to run under
// ThreadSanitizer (the `stress` ctest label; see docs/static-analysis.md).
// Client threads come from parallel::ThreadPool -- repo rule R2 keeps raw
// std::thread out of test code too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/batcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

Tensor random_image(util::Rng& rng) {
  Tensor image(Shape{32, 32, 3});
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return image;
}

// Several client threads race submissions against a smaller worker pool.
// Every future must resolve to the same label the predictor gives the same
// image directly -- responses may never be crossed between requests.
TEST(ServeStress, ConcurrentClientsGetCorrectAnswers) {
  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 41));

  const int kImages = 4;
  std::vector<Tensor> images;
  std::vector<facegen::MaskClass> expected;
  util::Rng rng(42);
  for (int i = 0; i < kImages; ++i) {
    images.push_back(random_image(rng));
    expected.push_back(
        predictor
            .classify_batch(images.back().reshaped(Shape{1, 32, 32, 3}))
            .front()
            .label);
  }

  serve::BatcherConfig cfg;
  cfg.workers = 3;
  cfg.max_batch = 8;
  cfg.queue_capacity = 16;
  cfg.max_latency = std::chrono::microseconds(1000);
  serve::BatchingServer server(predictor, cfg);

  const int kClients = 4;
  const int kPerClient = 25;
  std::atomic<int> mismatches{0};
  parallel::ThreadPool clients(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.submit([&, c] {
      util::Rng pick(static_cast<std::uint64_t>(100 + c));
      for (int i = 0; i < kPerClient; ++i) {
        const auto j =
            static_cast<std::size_t>(pick.uniform_int(0, kImages - 1));
        auto result = server.submit(images[j]).get();
        if (result.label != expected[j]) mismatches.fetch_add(1);
      }
    });
  }
  clients.wait_idle();

  EXPECT_EQ(mismatches.load(), 0);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_GE(stats.batches, (kClients * kPerClient) / cfg.max_batch);
  EXPECT_LE(stats.max_batch_seen, cfg.max_batch);
}

// A single worker with a generous coalescing window must merge a quick
// burst into one batch instead of classifying image by image.
TEST(ServeStress, CoalescingWindowMergesBurst) {
  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 43));
  util::Rng rng(44);

  serve::BatcherConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.queue_capacity = 8;
  cfg.max_latency = std::chrono::microseconds(2'000'000);
  serve::BatchingServer server(predictor, cfg);

  std::vector<std::future<core::Predictor::Result>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(random_image(rng)));
  for (auto& f : futures) f.get();  // window closes early once the batch fills

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 4);
  EXPECT_GE(stats.max_batch_seen, 2);
  EXPECT_GE(stats.coalesced, 2);
  EXPECT_LE(stats.batches, 3);
}

// Tiny bounded queue, eager (zero-latency) worker: submit() back-pressure
// must block rather than drop or deadlock, and shutdown must drain every
// accepted request.
TEST(ServeStress, BackpressureOnTinyQueue) {
  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 45));

  serve::BatcherConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 2;
  cfg.queue_capacity = 2;
  cfg.max_latency = std::chrono::microseconds(0);
  serve::BatchingServer server(predictor, cfg);

  const int kClients = 2;
  const int kPerClient = 10;
  std::atomic<int> answered{0};
  parallel::ThreadPool clients(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.submit([&, c] {
      util::Rng rng(static_cast<std::uint64_t>(200 + c));
      for (int i = 0; i < kPerClient; ++i) {
        server.submit(random_image(rng)).get();
        answered.fetch_add(1);
      }
    });
  }
  clients.wait_idle();
  EXPECT_EQ(answered.load(), kClients * kPerClient);
  EXPECT_EQ(server.stats().requests, kClients * kPerClient);
}

}  // namespace
