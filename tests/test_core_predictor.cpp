#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include <algorithm>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"

namespace {

using namespace bcop;

core::Predictor make_predictor(std::uint64_t seed) {
  return core::Predictor(core::build_bnn(core::ArchitectureId::kMicroCnv, seed));
}

util::Image test_face(std::uint64_t seed, facegen::MaskClass cls) {
  util::Rng rng(seed);
  return facegen::render_face(facegen::sample_attributes(cls, rng)).image;
}

TEST(Predictor, ClassifyReturnsValidResult) {
  const core::Predictor p = make_predictor(1);
  const auto r = p.classify(test_face(2, facegen::MaskClass::kCorrect));
  EXPECT_GE(static_cast<int>(r.label), 0);
  EXPECT_LT(static_cast<int>(r.label), 4);
  float sum = 0;
  for (const float s : r.scores) {
    EXPECT_GE(s, 0.f);
    EXPECT_LE(s, 1.f);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.f, 1e-4f);
  // The winning class carries the highest score.
  EXPECT_EQ(static_cast<std::size_t>(r.label),
            static_cast<std::size_t>(
                std::max_element(r.scores.begin(), r.scores.end()) -
                r.scores.begin()));
}

TEST(Predictor, MarginIsTopTwoSoftmaxGap) {
  const core::Predictor p = make_predictor(1);
  const auto r = p.classify(test_face(3, facegen::MaskClass::kNoseExposed));
  auto sorted = r.scores;
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  EXPECT_FLOAT_EQ(r.margin, sorted[0] - sorted[1]);
  EXPECT_GE(r.margin, 0.f);
  EXPECT_LE(r.margin, 1.f);
}

// serve_levels caps the residual depth every classify call evaluates and
// survives replicate() -- the contract serve::TieredRouter builds its
// fast tier on.
TEST(Predictor, ServeLevelsCapReplicatesAndMatchesEngineCap) {
  core::Predictor p(core::build_bnn(core::ArchitectureId::kMicroCnv, 9,
                                    /*residual_levels=*/2));
  EXPECT_EQ(p.serve_levels(), 0);
  EXPECT_DEATH(p.set_serve_levels(3), "serve_levels");
  p.set_serve_levels(1);
  core::Predictor clone = p.replicate();
  EXPECT_EQ(clone.serve_levels(), 1);

  util::Rng rng(10);
  tensor::Tensor batch(tensor::Shape{2, 32, 32, 3});
  for (std::int64_t i = 0; i < batch.numel(); ++i)
    batch[i] = static_cast<float>(rng.uniform());
  const auto capped = clone.classify_batch(batch);
  // Ground truth straight from the engine at the same cap.
  const auto logits = p.network().forward_batch(batch, /*levels=*/1);
  for (std::size_t i = 0; i < capped.size(); ++i) {
    const float* row = logits.data() + static_cast<std::int64_t>(i) * 4;
    EXPECT_EQ(static_cast<std::int64_t>(capped[i].label),
              std::max_element(row, row + 4) - row)
        << "row " << i;
  }
}

TEST(Predictor, AdmitOnlyForCorrectClass) {
  core::Predictor::Result r;
  r.label = facegen::MaskClass::kCorrect;
  EXPECT_TRUE(r.admit());
  for (const auto bad :
       {facegen::MaskClass::kNoseExposed, facegen::MaskClass::kNoseMouthExposed,
        facegen::MaskClass::kChinExposed}) {
    r.label = bad;
    EXPECT_FALSE(r.admit());
  }
}

TEST(Predictor, BatchAndSingleAgree) {
  const core::Predictor p = make_predictor(3);
  util::Rng rng(4);
  tensor::Tensor batch(tensor::Shape{4, 32, 32, 3});
  std::vector<util::Image> faces;
  for (int i = 0; i < 4; ++i) {
    faces.push_back(test_face(static_cast<std::uint64_t>(10 + i),
                              static_cast<facegen::MaskClass>(i)));
    const auto t = facegen::MaskedFaceDataset::image_to_tensor(faces.back());
    std::copy(t.data(), t.data() + t.numel(),
              batch.data() + static_cast<std::int64_t>(i) * t.numel());
  }
  const auto batched = p.classify_batch(batch);
  ASSERT_EQ(batched.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto single = p.classify(faces[static_cast<std::size_t>(i)]);
    EXPECT_EQ(single.label, batched[static_cast<std::size_t>(i)].label);
  }
}

TEST(Predictor, NonSquareImageThrows) {
  const core::Predictor p = make_predictor(5);
  EXPECT_THROW(p.classify(util::Image(32, 16)), std::invalid_argument);
}

TEST(Predictor, FromFileRoundTrips) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 6);
  const auto path =
      (std::filesystem::temp_directory_path() / "bcop_pred.bcop").string();
  model.save(path);

  const core::Predictor a(core::build_bnn(core::ArchitectureId::kMicroCnv, 6));
  const core::Predictor b = core::Predictor::from_file(path);
  const auto face = test_face(7, facegen::MaskClass::kNoseExposed);
  EXPECT_EQ(a.classify(face).label, b.classify(face).label);
  std::remove(path.c_str());
}

TEST(Predictor, ExposesModelAndNetwork) {
  const core::Predictor p = make_predictor(8);
  EXPECT_EQ(p.model().name(), "u-CNV");
  EXPECT_EQ(p.network().name(), "u-CNV");
  EXPECT_FALSE(p.network().stages().empty());
}

TEST(Predictor, RejectsFp32Model) {
  EXPECT_THROW(core::Predictor(core::build_fp32_cnv(9)), std::runtime_error);
}

}  // namespace
