#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_annotations.hpp"

namespace {

using bcop::util::Args;
using bcop::util::AsciiTable;
using bcop::util::CsvWriter;
using bcop::util::LogLevel;

TEST(Log, LevelRoundTrips) {
  const LogLevel before = bcop::util::log_level();
  bcop::util::set_log_level(LogLevel::kWarn);
  EXPECT_EQ(bcop::util::log_level(), LogLevel::kWarn);
  EXPECT_FALSE(LogLevel::kDebug >= bcop::util::log_level());
  bcop::util::set_log_level(before);
}

TEST(Log, EmitBelowAndAboveThreshold) {
  const LogLevel before = bcop::util::log_level();
  bcop::util::set_log_level(LogLevel::kError);
  // Discarded (below threshold) and emitted paths must both be safe.
  bcop::util::log_info("suppressed ", 42);
  bcop::util::log_error("emitted ", 1.5);
  bcop::util::set_log_level(before);
}

TEST(Args, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--epochs", "20", "--lr", "0.003"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("epochs", 0), 20);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0), 0.003);
  EXPECT_EQ(args.get_int("missing", 7), 7);
}

TEST(Args, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--arch=cnv"};
  Args args(2, argv);
  EXPECT_EQ(args.get("arch", ""), "cnv");
}

TEST(Args, ParsesFlags) {
  const char* argv[] = {"prog", "--verbose", "--n", "3"};
  Args args(4, argv, {"verbose"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(Args, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Args(2, argv), std::invalid_argument);
}

TEST(Args, RejectsMissingValue) {
  const char* argv[] = {"prog", "--key"};
  EXPECT_THROW(Args(2, argv), std::invalid_argument);
}

TEST(Csv, WritesHeaderAndEscapes) {
  const auto path =
      (std::filesystem::temp_directory_path() / "bcop_test.csv").string();
  {
    CsvWriter csv(path, {"name", "value"});
    csv.row({"plain", "1"});
    csv.row({"with,comma", "with\"quote"});
    csv.rowv("fps", 6400.5);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
  std::getline(in, line);
  EXPECT_EQ(line, "fps,6400.5");
  std::remove(path.c_str());
}

TEST(Csv, ArityMismatchThrows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "bcop_arity.csv").string();
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Table, RendersAlignedBox) {
  AsciiTable t({"Config", "LUT"});
  t.add_row({"CNV", "26060"});
  t.add_row({"n-CNV", "20425"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| Config |"), std::string::npos);
  EXPECT_NE(s.find("26060"), std::string::npos);
  // Numeric column right-aligned: shorter header padded on the left side.
  EXPECT_NE(s.find("| 26060 |"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"x"}), std::invalid_argument);
}

TEST(Fmt, FormatsPrecision) {
  EXPECT_EQ(bcop::util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(bcop::util::fmt(98.0, 1), "98.0");
}

TEST(Mutex, TryLockReflectsOwnership) {
  bcop::util::Mutex m;
  ASSERT_TRUE(m.try_lock());
  m.unlock();
  bcop::util::MutexLock held(m);
  // try_lock on a mutex the same thread holds is UB, so probe from another.
  bool acquired = true;
  std::thread prober([&] { acquired = m.try_lock(); });
  prober.join();
  EXPECT_FALSE(acquired);
}

TEST(Mutex, UniqueLockRelocksAndReportsOwnership) {
  bcop::util::Mutex m;
  bcop::util::UniqueLock lock(m);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Mutex, MutexLockSerializesIncrements) {
  bcop::util::Mutex m;
  int counter = 0;  // guarded by m (annotation elided: local, not a member)
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        bcop::util::MutexLock lock(m);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Mutex, NativeHandleDrivesConditionVariableWait) {
  bcop::util::Mutex m;
  std::condition_variable cv;
  bool ready = false;
  std::thread producer([&] {
    bcop::util::MutexLock lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    bcop::util::UniqueLock lock(m);
    while (!ready) cv.wait(lock.native());
  }
  producer.join();
  EXPECT_TRUE(ready);
}

}  // namespace
