#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/architecture.hpp"
#include "nn/batchnorm.hpp"
#include "nn/binary_dense.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "nn/sign_activation.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;
using bcop::testhelpers::random_tensor;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

nn::Sequential tiny_model(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential m("tiny");
  m.emplace<nn::BinaryDense>(8, 6, rng);
  m.emplace<nn::BatchNorm>(6);
  m.emplace<nn::SignActivation>();
  m.emplace<nn::BinaryDense>(6, 3, rng);
  return m;
}

TEST(Sequential, ForwardChainsLayers) {
  nn::Sequential m = tiny_model(1);
  util::Rng rng(2);
  const Tensor x = random_tensor(Shape{4, 8}, rng);
  const Tensor y = m.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{4, 3}));
}

TEST(Sequential, AddNullThrows) {
  nn::Sequential m;
  EXPECT_THROW(m.add(nullptr), std::invalid_argument);
}

TEST(Sequential, ParamsCollectsAllLayers) {
  nn::Sequential m = tiny_model(3);
  // Two BinaryDense (1 param each) + BatchNorm (2 params).
  EXPECT_EQ(m.params().size(), 4u);
  EXPECT_EQ(m.parameter_count(), 8 * 6 + 6 + 6 + 6 * 3);
}

TEST(Sequential, ForwardCollectRecordsEveryLayer) {
  nn::Sequential m = tiny_model(4);
  util::Rng rng(5);
  const Tensor x = random_tensor(Shape{2, 8}, rng);
  std::vector<Tensor> acts;
  const Tensor y = m.forward_collect(x, false, acts);
  ASSERT_EQ(acts.size(), m.size());
  EXPECT_EQ(acts[0].shape(), (Shape{2, 6}));
  EXPECT_EQ(acts.back().shape(), y.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i)
    EXPECT_FLOAT_EQ(acts.back()[i], y[i]);
}

TEST(Sequential, BackwardCollectLastEntryIsSeed) {
  nn::Sequential m = tiny_model(6);
  util::Rng rng(7);
  const Tensor x = random_tensor(Shape{2, 8}, rng);
  m.forward(x, true);
  const Tensor seed = random_tensor(Shape{2, 3}, rng);
  std::vector<Tensor> grads;
  const Tensor dx = m.backward_collect(seed, grads);
  ASSERT_EQ(grads.size(), m.size());
  for (std::int64_t i = 0; i < seed.numel(); ++i)
    EXPECT_FLOAT_EQ(grads.back()[i], seed[i]);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Sequential, SaveLoadRoundTripPreservesPredictions) {
  nn::Sequential m = tiny_model(8);
  util::Rng rng(9);
  const Tensor x = random_tensor(Shape{5, 8}, rng);
  // Give BatchNorm non-trivial running stats first.
  m.forward(x, true);
  const Tensor y_before = m.forward(x, false);

  const std::string path = temp_path("bcop_model.bcop");
  m.save(path);
  nn::Sequential loaded = nn::Sequential::load_file(path);
  EXPECT_EQ(loaded.name(), "tiny");
  EXPECT_EQ(loaded.size(), m.size());
  const Tensor y_after = loaded.forward(x, false);
  for (std::int64_t i = 0; i < y_before.numel(); ++i)
    EXPECT_FLOAT_EQ(y_after[i], y_before[i]);
  std::remove(path.c_str());
}

TEST(Sequential, FullArchitectureRoundTrips) {
  nn::Sequential m = core::build_bnn(core::ArchitectureId::kMicroCnv, 11);
  util::Rng rng(12);
  const Tensor x = random_tensor(Shape{2, 32, 32, 3}, rng);
  m.forward(x, true);  // warm BN stats
  const Tensor y_before = m.forward(x, false);

  const std::string path = temp_path("bcop_ucnv.bcop");
  m.save(path);
  nn::Sequential loaded = nn::Sequential::load_file(path);
  const Tensor y_after = loaded.forward(x, false);
  for (std::int64_t i = 0; i < y_before.numel(); ++i)
    EXPECT_FLOAT_EQ(y_after[i], y_before[i]);
  std::remove(path.c_str());
}

TEST(Sequential, LoadRejectsCorruptMagic) {
  const std::string path = temp_path("bcop_corrupt.bcop");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAMODELFILE___________";
  }
  EXPECT_THROW(nn::Sequential::load_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Sequential, LoadRejectsTruncatedFile) {
  nn::Sequential m = tiny_model(13);
  const std::string path = temp_path("bcop_trunc.bcop");
  m.save(path);
  // Truncate to half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(nn::Sequential::load_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Sequential, MissingFileThrows) {
  EXPECT_THROW(nn::Sequential::load_file("/no/such/model.bcop"),
               std::runtime_error);
}

TEST(MakeLayer, UnknownTypeThrows) {
  EXPECT_THROW(nn::make_layer("FancyAttention"), std::runtime_error);
}

TEST(MakeLayer, CreatesEveryRegisteredType) {
  for (const char* type :
       {"BatchNorm", "BinaryConv2d", "BinaryDense", "Conv2d", "Dense",
        "Flatten", "MaxPool2", "ReLU", "SignActivation"}) {
    const auto layer = nn::make_layer(type);
    ASSERT_NE(layer, nullptr);
    EXPECT_STREQ(layer->type(), type);
  }
}

}  // namespace
