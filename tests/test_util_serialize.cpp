#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/serialize.hpp"

namespace {

using bcop::util::BinaryReader;
using bcop::util::BinaryWriter;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, RoundTripAllTypes) {
  const std::string path = temp_path("bcop_ser.bin");
  {
    BinaryWriter w(path);
    w.write_tag("HEAD");
    w.write_u32(0xdeadbeef);
    w.write_u64(0x0123456789abcdefull);
    w.write_i32(-42);
    w.write_f32(3.5f);
    w.write_string("binarycop");
    w.write_f32_array({1.f, -2.f, 3.25f});
    w.write_u64_array({7ull, 8ull});
    w.write_i32_array({-1, 0, 1});
    w.close();
  }
  BinaryReader r(path);
  r.expect_tag("HEAD");
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.5f);
  EXPECT_EQ(r.read_string(), "binarycop");
  EXPECT_EQ(r.read_f32_array(), (std::vector<float>{1.f, -2.f, 3.25f}));
  EXPECT_EQ(r.read_u64_array(), (std::vector<std::uint64_t>{7ull, 8ull}));
  EXPECT_EQ(r.read_i32_array(), (std::vector<std::int32_t>{-1, 0, 1}));
  EXPECT_TRUE(r.eof());
  std::remove(path.c_str());
}

TEST(Serialize, TagMismatchThrowsWithBothTags) {
  const std::string path = temp_path("bcop_tag.bin");
  {
    BinaryWriter w(path);
    w.write_tag("AAAA");
    w.close();
  }
  BinaryReader r(path);
  try {
    r.expect_tag("BBBB");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("AAAA"), std::string::npos);
    EXPECT_NE(msg.find("BBBB"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileThrows) {
  const std::string path = temp_path("bcop_short.bin");
  {
    BinaryWriter w(path);
    w.write_u32(1);
    w.close();
  }
  BinaryReader r(path);
  EXPECT_THROW(r.read_u64(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, AbsurdArrayLengthRejected) {
  const std::string path = temp_path("bcop_huge.bin");
  {
    BinaryWriter w(path);
    w.write_u64(1ull << 40);  // claims a 2^40-element array
    w.close();
  }
  BinaryReader r(path);
  EXPECT_THROW(r.read_f32_array(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/no/such/file.bin"), std::runtime_error);
}

TEST(Serialize, UnwritablePathThrows) {
  EXPECT_THROW(BinaryWriter("/no/such/dir/file.bin"), std::runtime_error);
}

TEST(Serialize, EmptyArraysRoundTrip) {
  const std::string path = temp_path("bcop_empty.bin");
  {
    BinaryWriter w(path);
    w.write_f32_array({});
    w.write_string("");
    w.close();
  }
  BinaryReader r(path);
  EXPECT_TRUE(r.read_f32_array().empty());
  EXPECT_TRUE(r.read_string().empty());
  std::remove(path.c_str());
}

}  // namespace
