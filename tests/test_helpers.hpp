// Shared helpers for the test suite: random tensors and finite-difference
// gradient checking of Layer implementations.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace bcop::testhelpers {

inline tensor::Tensor random_tensor(const tensor::Shape& s, util::Rng& rng,
                                    double lo = -1.0, double hi = 1.0) {
  tensor::Tensor t(s);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

/// Scalar probe loss: L = sum(seed .* layer(x)). Returns L.
inline double probe_loss(nn::Layer& layer, const tensor::Tensor& x,
                         const tensor::Tensor& seed) {
  const tensor::Tensor y = layer.forward(x, /*training=*/true);
  EXPECT_EQ(y.shape(), seed.shape());
  double loss = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) loss += y[i] * seed[i];
  return loss;
}

/// Check dL/dx from backward() against central finite differences on a
/// sample of input elements. `stride` subsamples elements to keep runtime
/// bounded for larger tensors.
inline void check_input_gradient(nn::Layer& layer, const tensor::Tensor& x0,
                                 const tensor::Tensor& seed,
                                 double eps = 1e-3, double tol = 2e-2,
                                 std::int64_t stride = 1) {
  tensor::Tensor x = x0;
  probe_loss(layer, x, seed);
  for (nn::Param* p : layer.params()) {
    p->ensure_grad();
    p->grad.fill(0.f);
  }
  const tensor::Tensor dx = layer.backward(seed);
  ASSERT_EQ(dx.shape(), x.shape());

  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double lp = probe_loss(layer, x, seed);
    x[i] = orig - static_cast<float>(eps);
    const double lm = probe_loss(layer, x, seed);
    x[i] = orig;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, tol) << "input element " << i;
  }
  probe_loss(layer, x, seed);  // restore caches for the caller
}

/// Check dL/dParam for every parameter of the layer.
inline void check_param_gradients(nn::Layer& layer, const tensor::Tensor& x,
                                  const tensor::Tensor& seed,
                                  double eps = 1e-3, double tol = 2e-2,
                                  std::int64_t stride = 1) {
  probe_loss(layer, x, seed);
  for (nn::Param* p : layer.params()) {
    p->ensure_grad();
    p->grad.fill(0.f);
  }
  layer.backward(seed);

  for (nn::Param* p : layer.params()) {
    for (std::int64_t i = 0; i < p->value.numel(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(eps);
      const double lp = probe_loss(layer, x, seed);
      p->value[i] = orig - static_cast<float>(eps);
      const double lm = probe_loss(layer, x, seed);
      p->value[i] = orig;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol) << "param element " << i;
    }
    probe_loss(layer, x, seed);
  }
}

}  // namespace bcop::testhelpers
