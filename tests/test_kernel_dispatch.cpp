// Kernel dispatch tiers (tensor/kernels/): CPUID detection and clamping,
// the override/env parsing, and the differential suite -- every compiled
// SIMD tier must produce bit-identical results to the scalar reference on
// dirty buffers, odd shapes and tail-word (pad) geometry, because the
// arithmetic is integral (popcounts, compares, shifts) with no rounding.
// Runs under the sanitizer matrices via the default `unit` ctest label;
// CI additionally re-runs this binary with BCOP_KERNEL_LEVEL forced to
// scalar and to the best tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tensor/bit_span.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/kernels/avx2.hpp"
#include "tensor/kernels/avx512.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/kernels/scalar.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "xnor/engine.hpp"
#include "xnor/plan.hpp"

#include "core/architecture.hpp"

namespace {

using namespace bcop;
using namespace bcop::tensor;
namespace kn = bcop::tensor::kernels;

/// A span over a deliberately filthy buffer: every word starts ~0ull, so a
/// kernel that fails to re-establish the zero-padding invariant (or skips
/// a destination word) is caught by exact comparison.
struct DirtyBits {
  std::vector<std::uint64_t> storage;
  BitSpan span;
  DirtyBits(std::int64_t rows, std::int64_t cols)
      : storage(static_cast<std::size_t>(rows * words_for_bits(cols)), ~0ull),
        span{storage.data(), rows, cols, words_for_bits(cols)} {}
};

BitMatrix random_bits(std::int64_t rows, std::int64_t cols, util::Rng& rng) {
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      m.set_from_sign(r, c, rng.bernoulli(0.5) ? 1.f : -1.f);
  return m;
}

/// Every tier compiled into this binary AND executable on this CPU.
std::vector<kn::KernelLevel> available_levels() {
  std::vector<kn::KernelLevel> ls;
  for (int i = 0; i < kn::kKernelLevelCount; ++i) {
    const auto lvl = static_cast<kn::KernelLevel>(i);
    if (kn::level_available(lvl)) ls.push_back(lvl);
  }
  return ls;
}

void expect_same_bits(ConstBitSpan got, ConstBitSpan want, const char* tier) {
  ASSERT_EQ(got.rows, want.rows);
  ASSERT_EQ(got.wpr, want.wpr);
  for (std::int64_t r = 0; r < got.rows; ++r)
    for (std::int64_t w = 0; w < got.wpr; ++w)
      ASSERT_EQ(got.row(r)[w], want.row(r)[w])
          << tier << ": row " << r << " word " << w;
}

// --- Detection / override plumbing ----------------------------------------

TEST(KernelDispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(kn::level_available(kn::KernelLevel::kScalar));
  EXPECT_EQ(kn::scalar_table().level, kn::KernelLevel::kScalar);
  // Detection is cached; two reads must agree.
  EXPECT_EQ(kn::detected_level(), kn::detected_level());
}

TEST(KernelDispatch, TablesMatchTheirAdvertisedLevel) {
  for (const auto lvl : available_levels()) {
    const kn::KernelTable& t = kn::table_for(lvl);
    EXPECT_EQ(t.level, lvl);
    EXPECT_NE(t.gemm, nullptr);
    EXPECT_NE(t.thresh, nullptr);
    EXPECT_NE(t.im2row, nullptr);
  }
}

TEST(KernelDispatch, RequestsClampDownNeverUp) {
  // Asking for a better tier than the host has must yield the detected
  // best, not scalar and not an inexecutable table.
  const kn::KernelTable& best = kn::table_for(kn::KernelLevel::kAvx512);
  EXPECT_EQ(best.level, kn::detected_level());
  // Asking for scalar always yields scalar, even on SIMD hosts.
  EXPECT_EQ(kn::table_for(kn::KernelLevel::kScalar).level,
            kn::KernelLevel::kScalar);
}

TEST(KernelDispatch, ParseAcceptsExactTierNamesOnly) {
  kn::KernelLevel lvl{};
  EXPECT_TRUE(kn::parse_kernel_level("scalar", &lvl));
  EXPECT_EQ(lvl, kn::KernelLevel::kScalar);
  EXPECT_TRUE(kn::parse_kernel_level("avx2", &lvl));
  EXPECT_EQ(lvl, kn::KernelLevel::kAvx2);
  EXPECT_TRUE(kn::parse_kernel_level("avx512", &lvl));
  EXPECT_EQ(lvl, kn::KernelLevel::kAvx512);
  EXPECT_FALSE(kn::parse_kernel_level(nullptr, &lvl));
  EXPECT_FALSE(kn::parse_kernel_level("", &lvl));
  EXPECT_FALSE(kn::parse_kernel_level("auto", &lvl));
  EXPECT_FALSE(kn::parse_kernel_level("AVX2", &lvl));
  EXPECT_FALSE(kn::parse_kernel_level("avx1024", &lvl));
}

TEST(KernelDispatch, NamesRoundTrip) {
  for (int i = 0; i < kn::kKernelLevelCount; ++i) {
    const auto lvl = static_cast<kn::KernelLevel>(i);
    kn::KernelLevel parsed{};
    ASSERT_TRUE(kn::parse_kernel_level(kn::kernel_level_name(lvl), &parsed));
    EXPECT_EQ(parsed, lvl);
  }
}

TEST(KernelDispatch, OverrideForcesTierAndClearRestores) {
  const kn::KernelLevel before = kn::active_level();
  kn::set_level_override(kn::KernelLevel::kScalar);
  EXPECT_EQ(kn::active_level(), kn::KernelLevel::kScalar);
  EXPECT_EQ(kn::active_table().level, kn::KernelLevel::kScalar);
  kn::set_level_override(kn::KernelLevel::kAvx512);
  EXPECT_EQ(kn::active_level(), kn::detected_level());  // clamped
  kn::clear_level_override();
  EXPECT_EQ(kn::active_level(), before);
}

// --- Differential suite: every tier vs the scalar reference ---------------

// Shapes deliberately hit the tail paths: K values straddle word
// boundaries (pad() != 0 exercises the tail-word mask the GEMM must NOT
// count), N values leave SIMD lane tails (N % 8, N % 16 != 0), and row
// counts are odd so chunk boundaries never align with anything.

TEST(KernelDifferential, GemmMatchesScalarOnOddShapesAndTailWords) {
  util::Rng rng(23);
  for (const std::int64_t K : {27, 64, 100, 320}) {
    for (const std::int64_t N : {1, 7, 13, 40}) {
      const std::int64_t M = 5;
      const BitMatrix a = random_bits(M, K, rng);
      const BitMatrix b = random_bits(N, K, rng);
      std::vector<std::uint64_t> bt(
          static_cast<std::size_t>(b.rows() * b.words_per_row()));
      transpose_word_major(span_of(b), bt.data());

      std::vector<std::int32_t> want(static_cast<std::size_t>(M * N),
                                     INT32_MIN);
      kn::GemmCtx wctx{span_of(a), bt.data(), N, want.data()};
      kn::scalar_table().gemm(&wctx, 0, M);

      for (const auto lvl : available_levels()) {
        if (lvl == kn::KernelLevel::kScalar) continue;
        std::vector<std::int32_t> got(static_cast<std::size_t>(M * N),
                                      INT32_MAX);
        kn::GemmCtx gctx{span_of(a), bt.data(), N, got.data()};
        kn::table_for(lvl).gemm(&gctx, 0, M);
        for (std::size_t i = 0; i < got.size(); ++i)
          ASSERT_EQ(got[i], want[i])
              << kn::kernel_level_name(lvl) << ": K=" << K << " N=" << N
              << " flat=" << i;
      }
    }
  }
}

TEST(KernelDifferential, ThresholdMatchesScalarIncludingEqualityEdge) {
  util::Rng rng(29);
  for (const std::int64_t C : {5, 64, 100, 130}) {
    const std::int64_t rows = 7;
    std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * C));
    std::vector<std::int32_t> thr(static_cast<std::size_t>(C));
    std::vector<std::int32_t> inv(static_cast<std::size_t>(C));
    for (auto& t : thr)
      t = static_cast<std::int32_t>(rng.uniform_int(0, 8)) - 4;
    for (auto& v : inv) v = rng.bernoulli(0.5) ? 1 : 0;
    // Accumulators cluster around the thresholds so acc == thr (the >=
    // equality edge the compare instructions must preserve) occurs often.
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < C; ++c)
        acc[static_cast<std::size_t>(r * C + c)] =
            thr[static_cast<std::size_t>(c)] +
            static_cast<std::int32_t>(rng.uniform_int(0, 5)) - 2;

    DirtyBits want(rows, C);
    kn::ThreshCtx wctx{acc.data(), thr.data(), inv.data(), want.span};
    kn::scalar_table().thresh(&wctx, 0, rows);

    for (const auto lvl : available_levels()) {
      if (lvl == kn::KernelLevel::kScalar) continue;
      DirtyBits got(rows, C);
      kn::ThreshCtx gctx{acc.data(), thr.data(), inv.data(), got.span};
      kn::table_for(lvl).thresh(&gctx, 0, rows);
      expect_same_bits(got.span, want.span,
                       kn::kernel_level_name(lvl));
      // The scalar reference re-establishes zero padding in the tail word;
      // equality above proves the tier does too -- but assert it outright
      // so a future scalar regression cannot mask a tier one.
      if (C % 64 != 0) {
        for (std::int64_t r = 0; r < rows; ++r)
          ASSERT_EQ(got.span.row(r)[got.span.wpr - 1] >> (C % 64), 0u)
              << kn::kernel_level_name(lvl) << ": dirty pad bits, row " << r;
      }
    }
  }
}

TEST(KernelDifferential, Im2rowMatchesScalarAcrossChannelRegimes) {
  util::Rng rng(31);
  // c < 64 (inline-OR path), c % 64 == 0 (aligned word-copy path), and a
  // c > 64 unaligned width (append_bits path) -- all on dirty arenas.
  for (const std::int64_t c : {3, 64, 100, 128}) {
    const std::int64_t n = 2, h = 6, w = 5, k = 3;
    const std::int64_t ho = h - k + 1, wo = w - k + 1;
    const BitMatrix pixels = random_bits(n * h * w, c, rng);

    DirtyBits want(n * ho * wo, k * k * c);
    kn::Im2RowCtx wctx{span_of(pixels), want.span, h, w, c, k, ho, wo};
    kn::scalar_table().im2row(&wctx, 0, n * ho * wo);

    for (const auto lvl : available_levels()) {
      if (lvl == kn::KernelLevel::kScalar) continue;
      DirtyBits got(n * ho * wo, k * k * c);
      kn::Im2RowCtx gctx{span_of(pixels), got.span, h, w, c, k, ho, wo};
      kn::table_for(lvl).im2row(&gctx, 0, n * ho * wo);
      expect_same_bits(got.span, want.span,
                       kn::kernel_level_name(lvl));
    }
  }
}

// --- End-to-end: whole prototypes agree across tiers ----------------------

TEST(KernelDifferential, PrototypeLogitsIdenticalOnEveryTier) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 7);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  Tensor x(Shape{2, 32, 32, 3});
  util::Rng rng(41);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform());

  kn::set_level_override(kn::KernelLevel::kScalar);
  const Tensor ref = net.forward_batch(x);
  for (const auto lvl : available_levels()) {
    kn::set_level_override(lvl);
    const Tensor got = net.forward_batch(x);
    ASSERT_EQ(got.shape(), ref.shape());
    for (std::int64_t i = 0; i < got.numel(); ++i)
      ASSERT_EQ(got[i], ref[i])
          << kn::kernel_level_name(lvl) << ": logit " << i;
  }
  kn::clear_level_override();
}

TEST(KernelDispatch, PlanCacheKeysOnKernelLevel) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 11);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  const Shape in{1, 32, 32, 3};

  kn::set_level_override(kn::KernelLevel::kScalar);
  const xnor::ExecutionPlan& scalar_plan = net.plan_for(in);
  EXPECT_EQ(scalar_plan.kernel_level(), kn::KernelLevel::kScalar);
  const xnor::ExecutionPlan& scalar_again = net.plan_for(in);
  EXPECT_EQ(&scalar_plan, &scalar_again);

  const kn::KernelLevel best = kn::detected_level();
  if (best != kn::KernelLevel::kScalar) {
    kn::set_level_override(best);
    const xnor::ExecutionPlan& best_plan = net.plan_for(in);
    // A different tier must compile (and cache) a distinct plan -- stale
    // scalar pointers must never serve a SIMD-tier request.
    EXPECT_NE(&scalar_plan, &best_plan);
    EXPECT_EQ(best_plan.kernel_level(), best);
  }
  kn::clear_level_override();
}

}  // namespace
