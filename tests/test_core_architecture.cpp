// The architecture tables must match the paper's Table I exactly.
#include <gtest/gtest.h>

#include "core/architecture.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using core::ArchitectureId;
using core::LayerSpec;

TEST(TableI, CnvLayerShapes) {
  const auto specs = core::layer_specs(ArchitectureId::kCnv);
  ASSERT_EQ(specs.size(), 9u);
  const std::vector<std::pair<std::int64_t, std::int64_t>> expected{
      {3, 64},   {64, 64},   {64, 128}, {128, 128}, {128, 256},
      {256, 256}, {256, 512}, {512, 512}, {512, 4}};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].ci, expected[i].first) << specs[i].name;
    EXPECT_EQ(specs[i].co, expected[i].second) << specs[i].name;
  }
}

TEST(TableI, CnvHardwareDimensioning) {
  const auto specs = core::layer_specs(ArchitectureId::kCnv);
  const std::vector<std::int64_t> pe{16, 32, 16, 16, 4, 1, 1, 1, 4};
  const std::vector<std::int64_t> simd{3, 32, 32, 32, 32, 32, 4, 8, 1};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].pe, pe[i]) << specs[i].name;
    EXPECT_EQ(specs[i].simd, simd[i]) << specs[i].name;
  }
}

TEST(TableI, NCnvHardwareDimensioning) {
  const auto specs = core::layer_specs(ArchitectureId::kNCnv);
  ASSERT_EQ(specs.size(), 9u);
  const std::vector<std::int64_t> pe{16, 16, 16, 16, 4, 1, 1, 1, 1};
  const std::vector<std::int64_t> simd{3, 16, 16, 32, 32, 32, 4, 8, 1};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].pe, pe[i]) << specs[i].name;
    EXPECT_EQ(specs[i].simd, simd[i]) << specs[i].name;
  }
}

TEST(TableI, MicroCnvDropsConv32) {
  const auto specs = core::layer_specs(ArchitectureId::kMicroCnv);
  ASSERT_EQ(specs.size(), 7u);  // 5 convs + 2 FCs
  EXPECT_EQ(specs[4].name, "Conv3.1");
  EXPECT_EQ(specs[5].name, "FC.1");
  const std::vector<std::int64_t> pe{4, 4, 4, 4, 1, 1, 1};
  const std::vector<std::int64_t> simd{3, 16, 16, 32, 32, 16, 1};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].pe, pe[i]) << specs[i].name;
    EXPECT_EQ(specs[i].simd, simd[i]) << specs[i].name;
  }
}

TEST(TableI, ValidConvolutionSpatialDims) {
  // 32 -> 30 -> 28 -> pool 14 -> 12 -> 10 -> pool 5 -> 3 -> 1.
  const auto specs = core::layer_specs(ArchitectureId::kCnv);
  EXPECT_EQ(specs[0].out_h, 30);
  EXPECT_EQ(specs[1].out_h, 28);
  EXPECT_EQ(specs[2].in_h, 14);
  EXPECT_EQ(specs[3].out_h, 10);
  EXPECT_EQ(specs[4].in_h, 5);  // conv2_2 output is 5x5 post-pool (Sec. III-C)
  EXPECT_EQ(specs[5].out_h, 1);
}

TEST(TableI, MicroCnvHasLargerPreFcTensor) {
  // The paper: dropping Conv3.2 leaves a 3x3x64 = 576-wide FC input,
  // increasing parameters after the last conv layer.
  const auto ucnv = core::layer_specs(ArchitectureId::kMicroCnv);
  EXPECT_EQ(ucnv[5].ci, 576);
  const auto ncnv = core::layer_specs(ArchitectureId::kNCnv);
  EXPECT_EQ(ncnv[6].ci, 64);
  EXPECT_GT(ucnv[5].weight_count(), ncnv[6].weight_count());
}

TEST(TableI, OpsAndMatrixHelpers) {
  const auto specs = core::layer_specs(ArchitectureId::kNCnv);
  const LayerSpec& conv12 = specs[1];
  EXPECT_EQ(conv12.matrix_rows(), 16);
  EXPECT_EQ(conv12.matrix_cols(), 144);
  EXPECT_EQ(conv12.output_vectors(), 28 * 28);
  EXPECT_EQ(conv12.ops_per_image(), 28 * 28 * 16 * 144);
}

class BuildPerArch : public ::testing::TestWithParam<int> {};

TEST_P(BuildPerArch, ForwardProducesFourLogits) {
  const auto arch = static_cast<ArchitectureId>(GetParam());
  nn::Sequential model = core::build_bnn(arch, 7);
  bcop::util::Rng rng(8);
  const auto x =
      bcop::testhelpers::random_tensor(tensor::Shape{2, 32, 32, 3}, rng);
  const auto y = model.forward(x, false);
  EXPECT_EQ(y.shape(), (tensor::Shape{2, 4}));
  EXPECT_EQ(model.name(), core::arch_name(arch));
}

TEST_P(BuildPerArch, GradcamIndexIsSecondPoolWith5x5Output) {
  const auto arch = static_cast<ArchitectureId>(GetParam());
  nn::Sequential model = core::build_bnn(arch, 9);
  const std::size_t idx = core::gradcam_layer_index(model);
  bcop::util::Rng rng(10);
  const auto x =
      bcop::testhelpers::random_tensor(tensor::Shape{1, 32, 32, 3}, rng);
  std::vector<tensor::Tensor> acts;
  model.forward_collect(x, false, acts);
  EXPECT_EQ(acts[idx].shape()[1], 5);
  EXPECT_EQ(acts[idx].shape()[2], 5);
}

INSTANTIATE_TEST_SUITE_P(Arches, BuildPerArch, ::testing::Range(0, 3));

TEST(Build, Fp32BaselineForwardWorks) {
  nn::Sequential model = core::build_fp32_cnv(11);
  bcop::util::Rng rng(12);
  const auto x =
      bcop::testhelpers::random_tensor(tensor::Shape{1, 32, 32, 3}, rng);
  EXPECT_EQ(model.forward(x, false).shape(), (tensor::Shape{1, 4}));
  EXPECT_EQ(model.name(), "FP32-CNV");
}

TEST(Build, ParameterCountsOrdering) {
  nn::Sequential cnv = core::build_bnn(ArchitectureId::kCnv, 1);
  nn::Sequential ncnv = core::build_bnn(ArchitectureId::kNCnv, 1);
  nn::Sequential ucnv = core::build_bnn(ArchitectureId::kMicroCnv, 1);
  EXPECT_GT(cnv.parameter_count(), 5 * ncnv.parameter_count());
  // u-CNV trades layers for a bigger FC: more params than n-CNV overall.
  EXPECT_GT(ucnv.parameter_count(), ncnv.parameter_count());
}

TEST(Build, GradcamIndexThrowsWithoutPools) {
  nn::Sequential flat;
  EXPECT_THROW(core::gradcam_layer_index(flat), std::runtime_error);
}

}  // namespace
