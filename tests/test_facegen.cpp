// Generator correctness: the synthetic faces must actually carry the
// class-defining signal (mask coverage of nose/mouth/chin) and the emitted
// ground-truth regions must be consistent with the rendered pixels.
#include <gtest/gtest.h>

#include <cmath>

#include "facegen/attributes.hpp"
#include "facegen/augment.hpp"
#include "facegen/renderer.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using facegen::FaceAttributes;
using facegen::MaskClass;

TEST(Attributes, ClassNamesAreStable) {
  EXPECT_STREQ(facegen::class_name(MaskClass::kCorrect), "Correctly Masked");
  EXPECT_STREQ(facegen::class_short_name(MaskClass::kNoseMouthExposed), "N+M");
}

TEST(Attributes, SamplingIsDeterministic) {
  util::Rng a(5), b(5);
  for (int i = 0; i < 20; ++i) {
    const auto x = facegen::sample_attributes(MaskClass::kCorrect, a);
    const auto y = facegen::sample_attributes(MaskClass::kCorrect, b);
    EXPECT_FLOAT_EQ(x.skin.r, y.skin.r);
    EXPECT_FLOAT_EQ(x.center_x, y.center_x);
    EXPECT_EQ(x.sunglasses, y.sunglasses);
    EXPECT_FLOAT_EQ(x.mask_top_jitter, y.mask_top_jitter);
  }
}

TEST(Attributes, CanonicalExtentsEncodeTheClasses) {
  const auto correct = facegen::canonical_mask_extent(MaskClass::kCorrect);
  const auto nose = facegen::canonical_mask_extent(MaskClass::kNoseExposed);
  const auto nm = facegen::canonical_mask_extent(MaskClass::kNoseMouthExposed);
  const auto chin = facegen::canonical_mask_extent(MaskClass::kChinExposed);
  // Nose-exposed mask starts below the correct mask's top edge.
  EXPECT_GT(nose[0], correct[0]);
  // Nose+mouth-exposed starts even lower.
  EXPECT_GT(nm[0], nose[0]);
  // Chin-exposed shares the correct top but ends above the chin.
  EXPECT_FLOAT_EQ(chin[0], correct[0]);
  EXPECT_LT(chin[1], correct[1]);
}

TEST(Renderer, OutputIsNormalizedAndSized) {
  util::Rng rng(1);
  for (int c = 0; c < facegen::kNumClasses; ++c) {
    const auto attrs =
        facegen::sample_attributes(static_cast<MaskClass>(c), rng);
    const auto r = facegen::render_face(attrs, 32);
    EXPECT_EQ(r.image.height(), 32);
    EXPECT_EQ(r.image.width(), 32);
    for (const float v : r.image.data()) {
      EXPECT_GE(v, 0.f);
      EXPECT_LE(v, 1.f);
    }
  }
}

TEST(Renderer, SupportsOtherResolutions) {
  util::Rng rng(2);
  const auto attrs = facegen::sample_attributes(MaskClass::kCorrect, rng);
  const auto r = facegen::render_face(attrs, 64);
  EXPECT_EQ(r.image.height(), 64);
}

// Sample the mean colour inside a normalized rect of the rendered image.
facegen::Rgb mean_color(const util::Image& img, const facegen::Rect& rect) {
  double r = 0, g = 0, b = 0;
  int n = 0;
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      const float v = (static_cast<float>(y) + 0.5f) / static_cast<float>(img.height());
      const float u = (static_cast<float>(x) + 0.5f) / static_cast<float>(img.width());
      if (rect.contains(u, v)) {
        r += img.at(y, x, 0);
        g += img.at(y, x, 1);
        b += img.at(y, x, 2);
        ++n;
      }
    }
  return {static_cast<float>(r / n), static_cast<float>(g / n),
          static_cast<float>(b / n)};
}

float color_dist(const facegen::Rgb& a, const facegen::Rgb& b) {
  return std::abs(a.r - b.r) + std::abs(a.g - b.g) + std::abs(a.b - b.b);
}

// The class signal: nose/mouth/chin regions are mask-coloured when covered
// and skin-coloured when exposed. Use a neutral attribute set so eyes,
// paint, etc. do not confound the colour probes.
FaceAttributes plain_face(MaskClass cls) {
  FaceAttributes a;
  a.mask_class = cls;
  a.skin = {0.85f, 0.65f, 0.5f};
  a.mask_color = {0.1f, 0.3f, 0.9f};  // far from skin in colour space
  a.background = {0.5f, 0.5f, 0.5f};
  a.hair_style = facegen::HairStyle::kBald;
  a.sunglasses = a.face_paint = a.double_mask = a.headgear = false;
  return a;
}

class MaskCoverage : public ::testing::TestWithParam<int> {};

TEST_P(MaskCoverage, RegionsMatchClassSemantics) {
  const auto cls = static_cast<MaskClass>(GetParam());
  const auto attrs = plain_face(cls);
  const auto rendered = facegen::render_face(attrs, 64);
  const auto& reg = rendered.regions;

  const auto nose = mean_color(rendered.image, reg.nose);
  const auto mouth = mean_color(rendered.image, reg.mouth);
  const auto chin = mean_color(rendered.image, reg.chin);

  const bool nose_covered =
      cls == MaskClass::kCorrect || cls == MaskClass::kChinExposed;
  const bool mouth_covered = cls != MaskClass::kNoseMouthExposed;
  const bool chin_covered = cls != MaskClass::kChinExposed;

  auto looks_masked = [&](const facegen::Rgb& c) {
    return color_dist(c, attrs.mask_color) < color_dist(c, attrs.skin);
  };
  EXPECT_EQ(looks_masked(nose), nose_covered) << "nose region";
  EXPECT_EQ(looks_masked(mouth), mouth_covered) << "mouth region";
  EXPECT_EQ(looks_masked(chin), chin_covered) << "chin region";
}

INSTANTIATE_TEST_SUITE_P(AllClasses, MaskCoverage, ::testing::Range(0, 4));

TEST(Renderer, RegionsAreOrderedTopToBottom) {
  util::Rng rng(3);
  const auto attrs = facegen::sample_attributes(MaskClass::kCorrect, rng);
  const auto reg = facegen::compute_regions(attrs);
  EXPECT_LT(reg.eyes.v1, reg.nose.v1);
  EXPECT_LT(reg.nose.v0, reg.mouth.v0);
  EXPECT_LT(reg.mouth.v0, reg.chin.v0);
  EXPECT_GT(reg.mask.area(), 0.f);
  EXPECT_FLOAT_EQ(reg.mask.v0, reg.mask_top_v);
}

TEST(Augment, FlipIsInvolution) {
  util::Rng rng(4);
  const auto attrs = facegen::sample_attributes(MaskClass::kCorrect, rng);
  auto img = facegen::render_face(attrs).image;
  auto twice = img;
  facegen::flip_horizontal(twice);
  facegen::flip_horizontal(twice);
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_FLOAT_EQ(twice.data()[i], img.data()[i]);
}

TEST(Augment, ContrastIdentityAtFactorOne) {
  util::Rng rng(5);
  auto img = facegen::render_face(
                 facegen::sample_attributes(MaskClass::kNoseExposed, rng))
                 .image;
  auto copy = img;
  facegen::adjust_contrast(copy, 1.f);
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_NEAR(copy.data()[i], img.data()[i], 1e-6f);
}

TEST(Augment, BrightnessShiftsAndClamps) {
  util::Image img(2, 2, 0.95f);
  facegen::adjust_brightness(img, 0.2f);
  for (const float v : img.data()) EXPECT_FLOAT_EQ(v, 1.f);
  facegen::adjust_brightness(img, -0.3f);
  for (const float v : img.data()) EXPECT_FLOAT_EQ(v, 0.7f);
}

TEST(Augment, NoiseStaysInRangeAndPerturbs) {
  util::Rng rng(6);
  util::Image img(8, 8, 0.5f);
  facegen::add_gaussian_noise(img, 0.05f, rng);
  bool changed = false;
  for (const float v : img.data()) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
    if (std::abs(v - 0.5f) > 1e-6f) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Augment, RotatePreservesSizeAndRange) {
  util::Rng rng(7);
  auto img = facegen::render_face(
                 facegen::sample_attributes(MaskClass::kChinExposed, rng))
                 .image;
  facegen::rotate(img, 0.1f);
  EXPECT_EQ(img.height(), 32);
  for (const float v : img.data()) {
    EXPECT_GE(v, 0.f);
    EXPECT_LE(v, 1.f);
  }
}

TEST(Augment, RandomAugmentIsDeterministicPerSeed) {
  util::Rng r1(8), r2(8), attr_rng(9);
  auto base = facegen::render_face(
                  facegen::sample_attributes(MaskClass::kCorrect, attr_rng))
                  .image;
  auto a = base, b = base;
  facegen::random_augment(a, r1);
  facegen::random_augment(b, r2);
  for (std::size_t i = 0; i < a.data().size(); ++i)
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
}

}  // namespace
