// Differential float<->xnor harness: for 100 randomized architectures the
// three inference paths must agree --
//   (a) the float nn::Sequential graph (reference semantics),
//   (b) the single-image XNOR engine path (XnorNetwork::forward),
//   (c) the batched bit-domain path (XnorNetwork::forward_batch).
// Logits are compared bit-exactly ((b) and (c) fold to the same integer
// arithmetic as (a) on bipolar inputs), and the per-image argmax -- the
// classification the serving layer acts on -- must match for every image
// in the batch.
//
// The residual suites (M in {2, 3}) hold ReBNet-folded networks to the
// same bit-exact standard: the dyadic scale grid makes every float partial
// sum in (a) a multiple of 2^-8 far below 2^24, so float addition is exact
// in any order and the integer path A = sum_m g_m * acc_m must reproduce
// the float logits to the last bit (docs/residual-binarization.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "test_random_arch.hpp"
#include "xnor/engine.hpp"
#include "xnor/plan.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;
using testhelpers::RandomArch;
using testhelpers::make_random_arch;

std::int64_t argmax_row(const Tensor& logits, std::int64_t row) {
  std::int64_t best = 0;
  for (std::int64_t c = 1; c < logits.shape()[1]; ++c)
    if (logits.at2(row, c) > logits.at2(row, best)) best = c;
  return best;
}

class XnorVsFloat : public ::testing::TestWithParam<int> {};

void expect_all_paths_agree(std::uint64_t seed, std::int64_t levels) {
  RandomArch arch = make_random_arch(seed * 9176 + 11, levels);
  util::Rng rng(seed + 123);
  testhelpers::briefly_train(arch, rng);

  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(arch.model);
  ASSERT_EQ(net.max_levels(), levels);

  const std::int64_t kBatch = 5;
  Tensor x(Shape{kBatch, arch.input_size, arch.input_size,
                 arch.input_channels});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.bernoulli(0.5) ? 1.f : -1.f;

  const Tensor ref = arch.model.forward(x, false);
  const Tensor batched = net.forward_batch(x);
  ASSERT_EQ(batched.shape(), ref.shape());
  for (std::int64_t i = 0; i < ref.numel(); ++i)
    ASSERT_FLOAT_EQ(batched[i], ref[i])
        << arch.model.name() << " flat logit " << i;

  const std::int64_t stride = x.numel() / kBatch;
  for (std::int64_t n = 0; n < kBatch; ++n) {
    Tensor xi(Shape{1, arch.input_size, arch.input_size,
                    arch.input_channels});
    std::memcpy(xi.data(), x.data() + n * stride,
                static_cast<std::size_t>(stride) * sizeof(float));
    const Tensor single = net.forward(xi);
    ASSERT_EQ(single.shape(), (Shape{1, ref.shape()[1]}));
    for (std::int64_t c = 0; c < ref.shape()[1]; ++c)
      ASSERT_FLOAT_EQ(single.at2(0, c), batched.at2(n, c))
          << arch.model.name() << " image " << n << " logit " << c;
    EXPECT_EQ(argmax_row(batched, n), argmax_row(ref, n)) << " image " << n;
    EXPECT_EQ(argmax_row(single, 0), argmax_row(ref, n)) << " image " << n;
  }
}

TEST_P(XnorVsFloat, AllThreePathsAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  RandomArch arch = make_random_arch(seed * 9176 + 11);
  util::Rng rng(seed + 123);
  testhelpers::briefly_train(arch, rng);

  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(arch.model);

  const std::int64_t kBatch = 5;
  Tensor x(Shape{kBatch, arch.input_size, arch.input_size,
                 arch.input_channels});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.bernoulli(0.5) ? 1.f : -1.f;

  const Tensor ref = arch.model.forward(x, false);
  const Tensor batched = net.forward_batch(x);
  ASSERT_EQ(batched.shape(), ref.shape());

  // (c) vs (a): bit-exact logits for the whole batch.
  for (std::int64_t i = 0; i < ref.numel(); ++i)
    ASSERT_FLOAT_EQ(batched[i], ref[i])
        << arch.model.name() << " flat logit " << i;

  const std::int64_t stride = x.numel() / kBatch;
  for (std::int64_t n = 0; n < kBatch; ++n) {
    // (b): run image n alone through the single-image engine path.
    Tensor xi(Shape{1, arch.input_size, arch.input_size,
                    arch.input_channels});
    std::memcpy(xi.data(), x.data() + n * stride,
                static_cast<std::size_t>(stride) * sizeof(float));
    const Tensor single = net.forward(xi);
    ASSERT_EQ(single.shape(), (Shape{1, ref.shape()[1]}));
    for (std::int64_t c = 0; c < ref.shape()[1]; ++c)
      ASSERT_FLOAT_EQ(single.at2(0, c), batched.at2(n, c))
          << arch.model.name() << " image " << n << " logit " << c;

    // Argmax (the served classification) agrees across all three paths.
    const std::int64_t want = argmax_row(ref, n);
    EXPECT_EQ(argmax_row(batched, n), want) << " image " << n;
    EXPECT_EQ(argmax_row(single, 0), want) << " image " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XnorVsFloat, ::testing::Range(0, 100));

// ReBNet residual binarization, M = 2 and M = 3: the same 100-seed
// topology sweep, every activation replaced by a ResidualSign. Logits
// must still be bit-exact against the float graph.
class XnorVsFloatM2 : public ::testing::TestWithParam<int> {};
TEST_P(XnorVsFloatM2, AllThreePathsAgree) {
  expect_all_paths_agree(static_cast<std::uint64_t>(GetParam()), 2);
}
INSTANTIATE_TEST_SUITE_P(Seeds, XnorVsFloatM2, ::testing::Range(0, 100));

class XnorVsFloatM3 : public ::testing::TestWithParam<int> {};
TEST_P(XnorVsFloatM3, AllThreePathsAgree) {
  expect_all_paths_agree(static_cast<std::uint64_t>(GetParam()), 3);
}
INSTANTIATE_TEST_SUITE_P(Seeds, XnorVsFloatM3, ::testing::Range(0, 100));

// Truncated serving: an M = 3 network evaluated with a level cap of Lo
// must match, bit for bit, the network whose residual descriptors are
// hand-truncated to Lo levels (drop the deeper planes, keep the strict
// prefix of pattern banks). This is the invariant that lets one trained
// artifact serve the whole accuracy/latency frontier.
TEST(XnorVsFloatTruncated, LevelCapMatchesHandTruncatedNetwork) {
  for (int seed = 0; seed < 12; ++seed) {
    RandomArch arch = make_random_arch(static_cast<std::uint64_t>(seed) * 131 + 7, 3);
    util::Rng rng(static_cast<std::uint64_t>(seed) + 77);
    testhelpers::briefly_train(arch, rng);
    const xnor::XnorNetwork net = xnor::XnorNetwork::fold(arch.model);

    Tensor x(Shape{3, arch.input_size, arch.input_size,
                   arch.input_channels});
    for (std::int64_t i = 0; i < x.numel(); ++i)
      x[i] = rng.bernoulli(0.5) ? 1.f : -1.f;

    for (std::int64_t cap = 1; cap <= 2; ++cap) {
      std::vector<xnor::Stage> truncated = net.stages();
      for (xnor::Stage& stage : truncated) {
        auto* spec = const_cast<xnor::ResidualSpec*>(xnor::stage_residual(stage));
        if (spec == nullptr || spec->levels <= cap) continue;
        spec->levels = cap;
        spec->scale_bits.resize(static_cast<std::size_t>(cap));
        spec->extra_banks.resize(
            static_cast<std::size_t>((std::int64_t{1} << cap) - 2));
      }
      const xnor::XnorNetwork hand(net.name(), std::move(truncated));
      const Tensor capped = net.forward_batch(x, cap);
      const Tensor want = hand.forward_batch(x);
      ASSERT_EQ(capped.shape(), want.shape());
      for (std::int64_t i = 0; i < want.numel(); ++i)
        ASSERT_FLOAT_EQ(capped[i], want[i])
            << "seed " << seed << " cap " << cap << " flat logit " << i;
    }

    // A cap at or above the trained depth normalizes to the full plan.
    const Tensor full = net.forward_batch(x);
    const Tensor at3 = net.forward_batch(x, 3);
    for (std::int64_t i = 0; i < full.numel(); ++i)
      ASSERT_FLOAT_EQ(at3[i], full[i]) << "seed " << seed;
  }
}

// The allocation-free serving form must agree bit-for-bit with the
// convenience path while one Workspace and one output tensor are reused
// across networks and batch sizes (the arena is grow-only and the plan
// carries all geometry, so nothing may leak state between calls).
TEST(XnorVsFloatWorkspace, SharedWorkspaceReuseStaysBitExact) {
  xnor::Workspace ws;  // deliberately shared across everything below
  Tensor out;
  for (int seed = 0; seed < 8; ++seed) {
    RandomArch arch = make_random_arch(static_cast<std::uint64_t>(seed) * 977 + 5);
    util::Rng rng(static_cast<std::uint64_t>(seed) + 321);
    testhelpers::briefly_train(arch, rng);
    const xnor::XnorNetwork net = xnor::XnorNetwork::fold(arch.model);

    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{6}}) {
      Tensor x(Shape{batch, arch.input_size, arch.input_size,
                     arch.input_channels});
      for (std::int64_t i = 0; i < x.numel(); ++i)
        x[i] = rng.bernoulli(0.5) ? 1.f : -1.f;

      const Tensor ref = arch.model.forward(x, false);
      net.forward_batch(x, ws, out);
      ASSERT_EQ(out.shape(), ref.shape());
      for (std::int64_t i = 0; i < ref.numel(); ++i)
        ASSERT_FLOAT_EQ(out[i], ref[i])
            << arch.model.name() << " batch " << batch << " flat logit " << i;
    }
  }
}

}  // namespace
