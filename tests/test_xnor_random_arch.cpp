// Property test: folding correctness must hold for *any* supported BNN
// topology, not just the three paper prototypes. Random architectures
// (from test_random_arch.hpp) are generated, lightly trained so BN state
// is non-trivial, folded, and checked bit-exactly against the float graph
// on bipolar inputs.
#include <gtest/gtest.h>

#include "test_random_arch.hpp"
#include "xnor/engine.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;
using testhelpers::RandomArch;
using testhelpers::make_random_arch;

class RandomArchFolding : public ::testing::TestWithParam<int> {};

TEST_P(RandomArchFolding, EngineMatchesGraphBitExactly) {
  RandomArch arch = make_random_arch(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);

  // Brief training to give BN layers non-trivial state.
  testhelpers::briefly_train(arch, rng);

  xnor::XnorNetwork net = xnor::XnorNetwork::fold(arch.model);
  for (int trial = 0; trial < 3; ++trial) {
    Tensor x(Shape{2, arch.input_size, arch.input_size, arch.input_channels});
    for (std::int64_t i = 0; i < x.numel(); ++i)
      x[i] = rng.bernoulli(0.5) ? 1.f : -1.f;
    const Tensor ref = arch.model.forward(x, false);
    const Tensor got = net.forward(x);
    ASSERT_EQ(got.shape(), ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i)
      ASSERT_FLOAT_EQ(got[i], ref[i])
          << arch.model.name() << " trial " << trial << " logit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArchFolding, ::testing::Range(0, 12));

}  // namespace
