// Property test: folding correctness must hold for *any* supported BNN
// topology, not just the three paper prototypes. Random architectures
// (random channel widths, optional pools, 1-3 conv groups, 1-3 FC layers)
// are generated, lightly trained so BN state is non-trivial, folded, and
// checked bit-exactly against the float graph on bipolar inputs.
#include <gtest/gtest.h>

#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/optimizer.hpp"
#include "nn/sign_activation.hpp"
#include "nn/softmax_xent.hpp"
#include "test_helpers.hpp"
#include "xnor/engine.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

struct RandomArch {
  nn::Sequential model;
  std::int64_t input_size = 0;
  std::int64_t input_channels = 0;
};

RandomArch make_random_arch(std::uint64_t seed) {
  util::Rng rng(seed);
  RandomArch out;
  out.model.set_name("random-" + std::to_string(seed));
  out.input_size = 2 * rng.uniform_int(6, 12);  // even, 12..24
  out.input_channels = rng.uniform_int(1, 3);

  std::int64_t h = out.input_size;
  std::int64_t c = out.input_channels;
  const auto convs = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < convs; ++i) {
    if (h < 4) break;
    const std::int64_t co = 4 * rng.uniform_int(1, 6);
    out.model.emplace<nn::BinaryConv2d>(3, c, co, rng);
    out.model.emplace<nn::BatchNorm>(co);
    out.model.emplace<nn::SignActivation>();
    h -= 2;
    c = co;
    if (h >= 4 && h % 2 == 0 && rng.bernoulli(0.5)) {
      out.model.emplace<nn::MaxPool2>();
      h /= 2;
    }
  }
  out.model.emplace<nn::Flatten>();
  std::int64_t features = h * h * c;
  const auto denses = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < denses - 1; ++i) {
    const std::int64_t next = 8 * rng.uniform_int(2, 12);
    out.model.emplace<nn::BinaryDense>(features, next, rng);
    out.model.emplace<nn::BatchNorm>(next);
    out.model.emplace<nn::SignActivation>();
    features = next;
  }
  out.model.emplace<nn::BinaryDense>(features, 4, rng);
  return out;
}

class RandomArchFolding : public ::testing::TestWithParam<int> {};

TEST_P(RandomArchFolding, EngineMatchesGraphBitExactly) {
  RandomArch arch = make_random_arch(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);

  // Brief training to give BN layers non-trivial state.
  nn::Adam opt(arch.model, 1e-2f);
  nn::SoftmaxCrossEntropy head;
  for (int i = 0; i < 3; ++i) {
    const Tensor x = bcop::testhelpers::random_tensor(
        Shape{4, arch.input_size, arch.input_size, arch.input_channels}, rng);
    head.forward(arch.model.forward(x, true), {0, 1, 2, 3});
    arch.model.backward(head.backward());
    opt.step();
  }

  xnor::XnorNetwork net = xnor::XnorNetwork::fold(arch.model);
  for (int trial = 0; trial < 3; ++trial) {
    Tensor x(Shape{2, arch.input_size, arch.input_size, arch.input_channels});
    for (std::int64_t i = 0; i < x.numel(); ++i)
      x[i] = rng.bernoulli(0.5) ? 1.f : -1.f;
    const Tensor ref = arch.model.forward(x, false);
    const Tensor got = net.forward(x);
    ASSERT_EQ(got.shape(), ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i)
      ASSERT_FLOAT_EQ(got[i], ref[i])
          << arch.model.name() << " trial " << trial << " logit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomArchFolding, ::testing::Range(0, 12));

}  // namespace
