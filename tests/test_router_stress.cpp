// Concurrency hammering for the dispatcher/replica split, written for the
// ThreadSanitizer configuration (ctest -L stress): client tasks race
// try_submit against an administrator that drains and hot-swaps replicas
// mid-flight. Invariants under fire:
//
//   - every accepted future resolves with a value (drain never abandons
//     accepted work, swap never crosses responses between generations),
//   - accounting conserves: attempts == accepted + shed, and the replica
//     stats sum to exactly the accepted count (the Router never placed a
//     request onto a replica that did not record it),
//   - the fleet keeps answering while any replica is serving (zero
//     downtime across a rolling swap).
//
// Client concurrency comes from parallel::ThreadPool (repo rule R2).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

Tensor random_image(util::Rng& rng) {
  Tensor image(Shape{32, 32, 3});
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return image;
}

struct ClientTally {
  std::uint64_t attempts = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t resolved = 0;  // accepted futures that delivered a value
  std::uint64_t failed = 0;    // accepted futures that threw
};

// Rolling hot-swap under client fire: an admin task swaps each replica
// round-robin while clients hammer try_submit. Nothing may be lost and
// nothing may fail -- a drained replica resolves its queue, the Router
// routes around it, and at least one replica is serving at all times
// (swaps are sequential).
TEST(RouterStress, RollingHotSwapLosesNothing) {
  const core::Predictor p(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 50));
  const core::Predictor next(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 51));

  serve::RouterConfig cfg;
  cfg.replicas = 3;
  cfg.batcher.workers = 1;
  cfg.batcher.max_batch = 4;
  cfg.batcher.queue_capacity = 16;
  cfg.batcher.max_latency = std::chrono::microseconds(500);
  serve::Router router(p, cfg);

  const int kClients = 3;
  const int kSwapRounds = 2;
  std::vector<ClientTally> tallies(static_cast<std::size_t>(kClients));
  std::atomic<bool> swapping{true};

  parallel::ThreadPool pool(kClients + 1);
  pool.submit([&] {
    // Rolling deploy: drain+restart each replica in turn, twice. The
    // Router must keep placing on the other two the whole time.
    for (int round = 0; round < kSwapRounds; ++round)
      for (int i = 0; i < router.size(); ++i)
        router.swap_model(i, round % 2 ? p : next);
    swapping.store(false, std::memory_order_release);
  });
  for (int c = 0; c < kClients; ++c) {
    ClientTally* tally = &tallies[static_cast<std::size_t>(c)];
    pool.submit([&, tally, c] {
      util::Rng rng(static_cast<std::uint64_t>(300 + c));
      const Tensor image = random_image(rng);
      // Keep firing until the admin finishes, then a fixed coda so every
      // client records post-swap traffic too.
      int coda = 50;
      while (swapping.load(std::memory_order_acquire) || coda-- > 0) {
        ++tally->attempts;
        auto future = router.try_submit(image);
        if (!future.has_value()) {
          ++tally->shed;
          continue;
        }
        ++tally->accepted;
        try {
          future->get();
          ++tally->resolved;
        } catch (...) {
          ++tally->failed;
        }
      }
    });
  }
  pool.wait_idle();

  std::uint64_t attempts = 0, accepted = 0, shed = 0, resolved = 0,
                failed = 0;
  for (const ClientTally& t : tallies) {
    attempts += t.attempts;
    accepted += t.accepted;
    shed += t.shed;
    resolved += t.resolved;
    failed += t.failed;
  }
  EXPECT_GT(accepted, 0u) << "the fleet must keep serving across swaps";
  EXPECT_EQ(attempts, accepted + shed) << "tri-state admission conserves";
  EXPECT_EQ(resolved, accepted)
      << "every accepted future must deliver a value";
  EXPECT_EQ(failed, 0u);
  // Placement honesty: what the clients saw accepted is exactly what the
  // replicas recorded (across all generations) -- the Router never placed
  // work on a replica that was not serving it.
  EXPECT_EQ(router.stats().requests,
            static_cast<std::int64_t>(accepted));
  for (int i = 0; i < router.size(); ++i)
    EXPECT_EQ(router.replica(i).state(), serve::ReplicaState::kServing)
        << "replica " << i << " must finish the rolling swap serving";
}

// Drain races admission: clients hammer one replica while it drains.
// Every future accepted before the drain resolves, everything after is
// shed by the Router (counted), and nothing deadlocks.
TEST(RouterStress, DrainUnderFireResolvesAcceptedWork) {
  const core::Predictor p(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 52));
  serve::RouterConfig cfg;
  cfg.replicas = 1;
  cfg.batcher.workers = 1;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_latency = std::chrono::microseconds(500);
  serve::Router router(p, cfg);

  const int kClients = 3;
  std::vector<ClientTally> tallies(static_cast<std::size_t>(kClients));
  std::atomic<bool> go{false};

  parallel::ThreadPool pool(kClients + 1);
  for (int c = 0; c < kClients; ++c) {
    ClientTally* tally = &tallies[static_cast<std::size_t>(c)];
    pool.submit([&, tally, c] {
      util::Rng rng(static_cast<std::uint64_t>(400 + c));
      const Tensor image = random_image(rng);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 60; ++i) {
        ++tally->attempts;
        auto future = router.try_submit(image);
        if (!future.has_value()) {
          ++tally->shed;
          continue;
        }
        ++tally->accepted;
        try {
          future->get();
          ++tally->resolved;
        } catch (...) {
          ++tally->failed;
        }
      }
    });
  }
  pool.submit([&] {
    go.store(true, std::memory_order_release);
    router.drain(0);
  });
  pool.wait_idle();

  EXPECT_EQ(router.replica(0).state(), serve::ReplicaState::kStopped);
  std::uint64_t attempts = 0, accepted = 0, shed = 0, resolved = 0,
                failed = 0;
  for (const ClientTally& t : tallies) {
    attempts += t.attempts;
    accepted += t.accepted;
    shed += t.shed;
    resolved += t.resolved;
    failed += t.failed;
  }
  EXPECT_EQ(attempts, accepted + shed);
  EXPECT_EQ(resolved, accepted)
      << "drain must resolve every accepted future, never abandon one";
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(router.stats().requests, static_cast<std::int64_t>(accepted));
}

}  // namespace
