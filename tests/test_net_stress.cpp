// Concurrency hammering for the HTTP front-end, intended for the TSan
// configuration (ctest -L stress): many client tasks with keep-alive
// connections against a live server, asserting response-count conservation
// (every request sent is answered exactly once: 2xx + 4xx + 503 == sent)
// and that bcop_serve_rejected_total reconciles with the 503s observed on
// the wire. Client concurrency comes from parallel::ThreadPool (repo rule
// R2: no raw threads outside src/parallel/).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "net/client.hpp"
#include "net/http_server.hpp"
#include "net/loadgen.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;

constexpr std::size_t kU8Bytes = 32 * 32 * 3;

struct ClientTally {
  std::uint64_t sent = 0, ok_2xx = 0, err_4xx = 0, shed_503 = 0,
                other = 0, lost = 0;
};

/// One keep-alive client: `requests` classify POSTs (with a deterministic
/// per-client payload), tallying every response by status class.
void run_client(std::uint16_t port, int requests, std::uint64_t seed,
                ClientTally& tally) {
  util::Rng rng(seed);
  std::string payload(kU8Bytes, '\0');
  for (auto& b : payload) b = static_cast<char>(rng.uniform_int(0, 255));

  net::BlockingClient client;
  for (int i = 0; i < requests; ++i) {
    if (!client.connected() &&
        !client.connect("127.0.0.1", port, /*timeout_ms=*/10000)) {
      ++tally.lost;
      continue;
    }
    ++tally.sent;
    net::HttpResponse resp;
    if (!client.request("POST", "/v1/classify", payload, resp)) {
      ++tally.lost;
      continue;
    }
    if (resp.status < 400) ++tally.ok_2xx;
    else if (resp.status == 503) ++tally.shed_503;
    else if (resp.status < 500) ++tally.err_4xx;
    else ++tally.other;
  }
}

struct StressResult {
  ClientTally total;
  std::uint64_t rejected_delta = 0;  // bcop_serve_rejected_total over the run
  std::uint64_t net_shed_delta = 0;  // bcop_net_shed_total over the run
};

StressResult hammer(std::int64_t shed_watermark, unsigned clients,
                    int requests_per_client, std::uint64_t seed,
                    int replicas = 1) {
  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, seed));
  serve::RouterConfig rcfg;
  rcfg.replicas = replicas;
  rcfg.batcher.workers = 1;
  rcfg.batcher.max_batch = 8;
  rcfg.batcher.max_latency = std::chrono::microseconds(500);
  serve::Router router(predictor, rcfg);
  net::HttpServerConfig hcfg;
  hcfg.workers = 2;
  hcfg.shed_watermark = shed_watermark;
  net::HttpServer http(router, hcfg);

  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  obs::Counter& net_shed =
      obs::Registry::global().counter("bcop_net_shed_total");
  const std::uint64_t rejected_before = rejected.value();
  const std::uint64_t net_shed_before = net_shed.value();

  std::vector<ClientTally> tallies(clients);
  parallel::ThreadPool pool(clients);
  for (unsigned c = 0; c < clients; ++c) {
    ClientTally* slot = &tallies[c];
    const std::uint16_t port = http.port();
    const std::uint64_t client_seed = seed * 1000 + c;
    pool.submit([slot, port, requests_per_client, client_seed] {
      run_client(port, requests_per_client, client_seed, *slot);
    });
  }
  pool.wait_idle();

  StressResult result;
  for (const ClientTally& t : tallies) {
    result.total.sent += t.sent;
    result.total.ok_2xx += t.ok_2xx;
    result.total.err_4xx += t.err_4xx;
    result.total.shed_503 += t.shed_503;
    result.total.other += t.other;
    result.total.lost += t.lost;
  }
  result.rejected_delta = rejected.value() - rejected_before;
  result.net_shed_delta = net_shed.value() - net_shed_before;
  return result;
}

// Normal watermark: every request answered 200, nothing lost, nothing
// shed, and the books balance exactly.
TEST(NetStress, ConservationUnderConcurrentKeepAliveClients) {
  const StressResult r = hammer(/*shed_watermark=*/48, /*clients=*/4,
                                /*requests_per_client=*/20, /*seed=*/200);
  EXPECT_EQ(r.total.sent, 80u);
  EXPECT_EQ(r.total.lost, 0u);
  EXPECT_EQ(r.total.other, 0u);
  EXPECT_EQ(r.total.sent,
            r.total.ok_2xx + r.total.err_4xx + r.total.shed_503)
      << "every request must be answered exactly once";
  EXPECT_EQ(r.total.ok_2xx, 80u);
  EXPECT_EQ(r.net_shed_delta, 0u);
}

// Watermark zero: the engine is unreachable, every classify is shed, and
// the serve-side rejection counter reconciles 1:1 with observed 503s.
TEST(NetStress, RejectedCounterReconcilesWithObserved503s) {
  const StressResult r = hammer(/*shed_watermark=*/0, /*clients=*/4,
                                /*requests_per_client=*/15, /*seed=*/201);
  EXPECT_EQ(r.total.sent, 60u);
  EXPECT_EQ(r.total.lost, 0u);
  EXPECT_EQ(r.total.shed_503, 60u);
  EXPECT_EQ(r.total.ok_2xx, 0u);
  EXPECT_EQ(r.rejected_delta, r.total.shed_503)
      << "bcop_serve_rejected_total must count exactly the 503s";
  EXPECT_EQ(r.net_shed_delta, r.total.shed_503);
}

// Multi-replica fleet under the same hammer: the conservation identity
// and the 503 <-> rejected ledger must survive queue-aware routing (no
// double-counted rejections when the Router retries past a busy replica).
TEST(NetStress, FleetConservationAndLedgerWithTwoReplicas) {
  const StressResult r = hammer(/*shed_watermark=*/48, /*clients=*/4,
                                /*requests_per_client=*/20, /*seed=*/204,
                                /*replicas=*/2);
  EXPECT_EQ(r.total.sent, 80u);
  EXPECT_EQ(r.total.lost, 0u);
  EXPECT_EQ(r.total.other, 0u);
  EXPECT_EQ(r.total.sent,
            r.total.ok_2xx + r.total.err_4xx + r.total.shed_503);
  EXPECT_EQ(r.rejected_delta, r.total.shed_503)
      << "routing retries must never double-count a rejection";
}

// The open-loop generator against a live server: deterministic schedule,
// conservative accounting, and the conservation identity it promises.
TEST(NetStress, LoadgenAccountingConserves) {
  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 202));
  serve::RouterConfig rcfg;
  rcfg.replicas = 2;
  rcfg.batcher.workers = 1;
  rcfg.batcher.max_latency = std::chrono::microseconds(500);
  serve::Router router(predictor, rcfg);
  net::HttpServerConfig hcfg;
  hcfg.workers = 2;
  net::HttpServer http(router, hcfg);

  net::LoadGenConfig cfg;
  cfg.port = http.port();
  cfg.shape = "poisson";
  cfg.rate = 100.0;
  cfg.duration = std::chrono::milliseconds(600);
  cfg.connections = 2;
  cfg.seed = 7;
  const net::LoadGenReport report = net::run_loadgen(cfg);
  EXPECT_GT(report.sent, 0u);
  EXPECT_TRUE(report.conserved())
      << report.to_json() << " -- sent must equal the sum of outcomes";
  EXPECT_EQ(report.err_4xx, 0u) << report.to_json();
  EXPECT_GT(report.ok_2xx + report.shed_503, 0u);
}

// Same seed, same schedule: the generator's offered load is a pure
// function of its config (the open-loop determinism contract).
TEST(NetStress, LoadgenScheduleIsDeterministic) {
  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 203));
  serve::RouterConfig rcfg;
  rcfg.replicas = 1;
  rcfg.batcher.workers = 1;
  serve::Router router(predictor, rcfg);
  net::HttpServerConfig hcfg;
  hcfg.workers = 1;
  net::HttpServer http(router, hcfg);

  net::LoadGenConfig cfg;
  cfg.port = http.port();
  cfg.shape = "burst";
  cfg.rate = 80.0;
  cfg.burst_factor = 4.0;
  cfg.duration = std::chrono::milliseconds(400);
  cfg.connections = 2;
  cfg.seed = 11;
  const net::LoadGenReport a = net::run_loadgen(cfg);
  const net::LoadGenReport b = net::run_loadgen(cfg);
  EXPECT_EQ(a.sent, b.sent) << "identical seeds must offer identical load";
  EXPECT_TRUE(a.conserved());
  EXPECT_TRUE(b.conserved());
}

}  // namespace
