// Dispatcher/replica behavior: least-loaded placement with round-robin
// tie-break, never placing onto a non-serving replica, graceful drain
// (accepted futures resolve, new work turned away), zero-downtime
// hot-swap, and the exactly-once rejection ledger. Concurrency hammering
// of the same surfaces lives in test_router_stress.cpp for the TSan
// configuration.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "serve/replica.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

core::Predictor make_predictor(std::uint64_t seed) {
  return core::Predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, seed));
}

Tensor random_image(util::Rng& rng) {
  Tensor image(Shape{32, 32, 3});
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return image;
}

/// Synchronous replicas (workers == 0) make placement deterministic: the
/// queue depth is always zero, so every decision is the tie-break, and
/// stats update before try_submit returns.
serve::RouterConfig sync_config(int replicas) {
  serve::RouterConfig cfg;
  cfg.replicas = replicas;
  cfg.batcher.workers = 0;
  return cfg;
}

TEST(Router, ConstructsFleetWithAllReplicasServing) {
  const core::Predictor p = make_predictor(1);
  serve::Router router(p, sync_config(3));
  ASSERT_EQ(router.size(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.replica(i).state(), serve::ReplicaState::kServing);
    EXPECT_EQ(router.replica(i).id(), i);
    EXPECT_EQ(router.replica(i).generation(), 1);
  }
  EXPECT_EQ(router.queue_depth(), 0);
  EXPECT_EQ(router.queue_capacity(), 3 * router.config().batcher.queue_capacity);
}

TEST(Router, RejectsOutOfRangeReplicaCounts) {
  const core::Predictor p = make_predictor(2);
  serve::RouterConfig zero = sync_config(0);
  EXPECT_DEATH({ serve::Router router(p, zero); }, "replicas");
  serve::RouterConfig huge = sync_config(65);
  EXPECT_DEATH({ serve::Router router(p, huge); }, "replicas");
}

// An idle fleet has every replica at depth zero, so placement is pure
// tie-break -- which must rotate, not hammer replica 0.
TEST(Router, TieBreakSpreadsIdleFleetRoundRobin) {
  const core::Predictor p = make_predictor(3);
  serve::Router router(p, sync_config(2));
  util::Rng rng(4);
  const Tensor image = random_image(rng);
  for (int i = 0; i < 6; ++i) {
    auto future = router.try_submit(image);
    ASSERT_TRUE(future.has_value()) << i;
    future->get();
  }
  EXPECT_EQ(router.replica(0).stats().requests, 3)
      << "ties must spread evenly";
  EXPECT_EQ(router.replica(1).stats().requests, 3);
}

TEST(Router, NeverPlacesOntoDrainedReplica) {
  const core::Predictor p = make_predictor(5);
  serve::Router router(p, sync_config(2));
  router.drain(0);
  EXPECT_EQ(router.replica(0).state(), serve::ReplicaState::kStopped);
  util::Rng rng(6);
  const Tensor image = random_image(rng);
  for (int i = 0; i < 4; ++i) {
    auto future = router.try_submit(image);
    ASSERT_TRUE(future.has_value()) << i;
    future->get();
  }
  EXPECT_EQ(router.replica(0).stats().requests, 0)
      << "a stopped replica must receive nothing";
  EXPECT_EQ(router.replica(1).stats().requests, 4);
}

// Futures accepted before drain() resolve during it (the queue empties,
// nothing is abandoned), and the drained replica then turns work away.
TEST(Router, DrainResolvesInFlightFuturesThenRefuses) {
  const core::Predictor p = make_predictor(7);
  serve::RouterConfig cfg;
  cfg.replicas = 1;
  cfg.batcher.workers = 1;
  cfg.batcher.max_batch = 2;
  serve::Router router(p, cfg);
  util::Rng rng(8);
  std::vector<std::future<core::Predictor::Result>> futures;
  for (int i = 0; i < 6; ++i) {
    auto f = router.try_submit(random_image(rng));
    ASSERT_TRUE(f.has_value()) << i;
    futures.push_back(std::move(*f));
  }
  router.drain(0);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "drain must not return before in-flight work resolves";
    EXPECT_NO_THROW(f.get());
  }
  // The whole fleet is stopped now: admission reports shed and the Router
  // itself keeps the rejection ledger (exactly one count per attempt).
  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  obs::Counter& unrouted =
      obs::Registry::global().counter("bcop_serve_router_unrouted_total");
  const std::uint64_t rejected_before = rejected.value();
  const std::uint64_t unrouted_before = unrouted.value();
  EXPECT_FALSE(router.try_submit(random_image(rng)).has_value());
  EXPECT_EQ(rejected.value() - rejected_before, 1u);
  EXPECT_EQ(unrouted.value() - unrouted_before, 1u);
}

TEST(Router, SwapModelBumpsGenerationAndKeepsAnswering) {
  const core::Predictor p = make_predictor(9);
  const core::Predictor next = make_predictor(10);  // "new model version"
  serve::Router router(p, sync_config(2));
  util::Rng rng(11);
  const Tensor image = random_image(rng);
  ASSERT_TRUE(router.try_submit(image).has_value());

  router.swap_model(0, next);
  EXPECT_EQ(router.replica(0).state(), serve::ReplicaState::kServing);
  EXPECT_EQ(router.replica(0).generation(), 2);
  EXPECT_EQ(router.replica(1).generation(), 1);

  // The swapped replica serves the NEW model: route to it until it
  // answers, then compare with the new predictor's direct answer.
  const auto want =
      next.classify_batch(image.reshaped(Shape{1, 32, 32, 3})).front().label;
  const std::int64_t before = router.replica(0).stats().requests;
  while (router.replica(0).stats().requests == before) {
    auto future = router.try_submit(image);
    ASSERT_TRUE(future.has_value());
    if (router.replica(0).stats().requests > before)
      EXPECT_EQ(future->get().label, want);
    else
      future->get();
  }
}

// Stats survive the swap: generations accumulate instead of resetting.
TEST(Router, ReplicaStatsAccumulateAcrossGenerations) {
  const core::Predictor p = make_predictor(12);
  serve::RouterConfig cfg = sync_config(1);
  serve::Router router(p, cfg);
  util::Rng rng(13);
  const Tensor image = random_image(rng);
  for (int i = 0; i < 3; ++i) router.try_submit(image)->get();
  EXPECT_EQ(router.replica(0).stats().requests, 3);
  router.swap_model(0, p);
  for (int i = 0; i < 2; ++i) router.try_submit(image)->get();
  EXPECT_EQ(router.replica(0).stats().requests, 5)
      << "stats must accumulate across generations";
  EXPECT_EQ(router.stats().requests, 5);
}

// kShed is terminal and counted exactly once: a max_depth-0 watermark on
// a two-replica fleet must not retry (and double-count) on the second
// replica.
TEST(Router, ShedIsTerminalAndCountedOnce) {
  const core::Predictor p = make_predictor(14);
  serve::RouterConfig cfg;
  cfg.replicas = 2;
  cfg.batcher.workers = 1;
  serve::Router router(p, cfg);
  util::Rng rng(15);
  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  const std::uint64_t before = rejected.value();
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(router.try_submit(random_image(rng), 0).has_value());
  EXPECT_EQ(rejected.value() - before, 5u)
      << "each shed attempt must count exactly one rejection fleet-wide";
}

// Replica-level admission is tri-state: a non-serving replica answers
// kUnavailable (not kShed) and leaves the image intact for the Router to
// place elsewhere.
TEST(Router, ReplicaUnavailableLeavesImageIntact) {
  const core::Predictor p = make_predictor(16);
  serve::BatcherConfig bcfg;
  bcfg.workers = 0;
  serve::Replica replica(p, bcfg, /*id=*/0);
  replica.drain();
  util::Rng rng(17);
  Tensor image = random_image(rng);
  const float first = image[0];
  serve::Replica::Admitted result = replica.try_submit(image, -1);
  EXPECT_EQ(result.admission, serve::Replica::Admission::kUnavailable);
  EXPECT_FALSE(result.future.has_value());
  ASSERT_EQ(image.numel(), 32 * 32 * 3) << "image must not be moved-from";
  EXPECT_EQ(image[0], first);
}

// Per-replica metric families ride the same call sites as the global
// family: traffic through replica N lands in bcop_serve_replica<N>_*.
TEST(Router, PerReplicaMetricFamiliesRecord) {
  const core::Predictor p = make_predictor(18);
  serve::Router router(p, sync_config(2));
  obs::Counter& r0 = obs::Registry::global().counter(
      "bcop_serve_replica0_submitted_total");
  obs::Counter& r1 = obs::Registry::global().counter(
      "bcop_serve_replica1_submitted_total");
  obs::Counter& fleet =
      obs::Registry::global().counter("bcop_serve_submitted_total");
  const std::uint64_t r0_before = r0.value();
  const std::uint64_t r1_before = r1.value();
  const std::uint64_t fleet_before = fleet.value();
  util::Rng rng(19);
  const Tensor image = random_image(rng);
  for (int i = 0; i < 4; ++i) router.try_submit(image)->get();
  EXPECT_EQ((r0.value() - r0_before) + (r1.value() - r1_before), 4u)
      << "every submission must land in exactly one per-replica family";
  EXPECT_EQ(fleet.value() - fleet_before, 4u)
      << "and once in the fleet-wide family";
}

}  // namespace
