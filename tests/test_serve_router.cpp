// Dispatcher/replica behavior: least-loaded placement with round-robin
// tie-break, never placing onto a non-serving replica, graceful drain
// (accepted futures resolve, new work turned away), zero-downtime
// hot-swap, and the exactly-once rejection ledger. Concurrency hammering
// of the same surfaces lives in test_router_stress.cpp for the TSan
// configuration.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "serve/replica.hpp"
#include "serve/router.hpp"
#include "serve/tiered.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

core::Predictor make_predictor(std::uint64_t seed) {
  return core::Predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, seed));
}

Tensor random_image(util::Rng& rng) {
  Tensor image(Shape{32, 32, 3});
  for (std::int64_t i = 0; i < image.numel(); ++i)
    image[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return image;
}

/// Synchronous replicas (workers == 0) make placement deterministic: the
/// queue depth is always zero, so every decision is the tie-break, and
/// stats update before try_submit returns.
serve::RouterConfig sync_config(int replicas) {
  serve::RouterConfig cfg;
  cfg.replicas = replicas;
  cfg.batcher.workers = 0;
  return cfg;
}

TEST(Router, ConstructsFleetWithAllReplicasServing) {
  const core::Predictor p = make_predictor(1);
  serve::Router router(p, sync_config(3));
  ASSERT_EQ(router.size(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.replica(i).state(), serve::ReplicaState::kServing);
    EXPECT_EQ(router.replica(i).id(), i);
    EXPECT_EQ(router.replica(i).generation(), 1);
  }
  EXPECT_EQ(router.queue_depth(), 0);
  EXPECT_EQ(router.queue_capacity(), 3 * router.config().batcher.queue_capacity);
}

TEST(Router, RejectsOutOfRangeReplicaCounts) {
  const core::Predictor p = make_predictor(2);
  serve::RouterConfig zero = sync_config(0);
  EXPECT_DEATH({ serve::Router router(p, zero); }, "replicas");
  serve::RouterConfig huge = sync_config(65);
  EXPECT_DEATH({ serve::Router router(p, huge); }, "replicas");
}

// An idle fleet has every replica at depth zero, so placement is pure
// tie-break -- which must rotate, not hammer replica 0.
TEST(Router, TieBreakSpreadsIdleFleetRoundRobin) {
  const core::Predictor p = make_predictor(3);
  serve::Router router(p, sync_config(2));
  util::Rng rng(4);
  const Tensor image = random_image(rng);
  for (int i = 0; i < 6; ++i) {
    auto future = router.try_submit(image);
    ASSERT_TRUE(future.has_value()) << i;
    future->get();
  }
  EXPECT_EQ(router.replica(0).stats().requests, 3)
      << "ties must spread evenly";
  EXPECT_EQ(router.replica(1).stats().requests, 3);
}

TEST(Router, NeverPlacesOntoDrainedReplica) {
  const core::Predictor p = make_predictor(5);
  serve::Router router(p, sync_config(2));
  router.drain(0);
  EXPECT_EQ(router.replica(0).state(), serve::ReplicaState::kStopped);
  util::Rng rng(6);
  const Tensor image = random_image(rng);
  for (int i = 0; i < 4; ++i) {
    auto future = router.try_submit(image);
    ASSERT_TRUE(future.has_value()) << i;
    future->get();
  }
  EXPECT_EQ(router.replica(0).stats().requests, 0)
      << "a stopped replica must receive nothing";
  EXPECT_EQ(router.replica(1).stats().requests, 4);
}

// Futures accepted before drain() resolve during it (the queue empties,
// nothing is abandoned), and the drained replica then turns work away.
TEST(Router, DrainResolvesInFlightFuturesThenRefuses) {
  const core::Predictor p = make_predictor(7);
  serve::RouterConfig cfg;
  cfg.replicas = 1;
  cfg.batcher.workers = 1;
  cfg.batcher.max_batch = 2;
  serve::Router router(p, cfg);
  util::Rng rng(8);
  std::vector<std::future<core::Predictor::Result>> futures;
  for (int i = 0; i < 6; ++i) {
    auto f = router.try_submit(random_image(rng));
    ASSERT_TRUE(f.has_value()) << i;
    futures.push_back(std::move(*f));
  }
  router.drain(0);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "drain must not return before in-flight work resolves";
    EXPECT_NO_THROW(f.get());
  }
  // The whole fleet is stopped now: admission reports shed and the Router
  // itself keeps the rejection ledger (exactly one count per attempt).
  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  obs::Counter& unrouted =
      obs::Registry::global().counter("bcop_serve_router_unrouted_total");
  const std::uint64_t rejected_before = rejected.value();
  const std::uint64_t unrouted_before = unrouted.value();
  EXPECT_FALSE(router.try_submit(random_image(rng)).has_value());
  EXPECT_EQ(rejected.value() - rejected_before, 1u);
  EXPECT_EQ(unrouted.value() - unrouted_before, 1u);
}

TEST(Router, SwapModelBumpsGenerationAndKeepsAnswering) {
  const core::Predictor p = make_predictor(9);
  const core::Predictor next = make_predictor(10);  // "new model version"
  serve::Router router(p, sync_config(2));
  util::Rng rng(11);
  const Tensor image = random_image(rng);
  ASSERT_TRUE(router.try_submit(image).has_value());

  router.swap_model(0, next);
  EXPECT_EQ(router.replica(0).state(), serve::ReplicaState::kServing);
  EXPECT_EQ(router.replica(0).generation(), 2);
  EXPECT_EQ(router.replica(1).generation(), 1);

  // The swapped replica serves the NEW model: route to it until it
  // answers, then compare with the new predictor's direct answer.
  const auto want =
      next.classify_batch(image.reshaped(Shape{1, 32, 32, 3})).front().label;
  const std::int64_t before = router.replica(0).stats().requests;
  while (router.replica(0).stats().requests == before) {
    auto future = router.try_submit(image);
    ASSERT_TRUE(future.has_value());
    if (router.replica(0).stats().requests > before)
      EXPECT_EQ(future->get().label, want);
    else
      future->get();
  }
}

// Stats survive the swap: generations accumulate instead of resetting.
TEST(Router, ReplicaStatsAccumulateAcrossGenerations) {
  const core::Predictor p = make_predictor(12);
  serve::RouterConfig cfg = sync_config(1);
  serve::Router router(p, cfg);
  util::Rng rng(13);
  const Tensor image = random_image(rng);
  for (int i = 0; i < 3; ++i) router.try_submit(image)->get();
  EXPECT_EQ(router.replica(0).stats().requests, 3);
  router.swap_model(0, p);
  for (int i = 0; i < 2; ++i) router.try_submit(image)->get();
  EXPECT_EQ(router.replica(0).stats().requests, 5)
      << "stats must accumulate across generations";
  EXPECT_EQ(router.stats().requests, 5);
}

// kShed is terminal and counted exactly once: a max_depth-0 watermark on
// a two-replica fleet must not retry (and double-count) on the second
// replica.
TEST(Router, ShedIsTerminalAndCountedOnce) {
  const core::Predictor p = make_predictor(14);
  serve::RouterConfig cfg;
  cfg.replicas = 2;
  cfg.batcher.workers = 1;
  serve::Router router(p, cfg);
  util::Rng rng(15);
  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  const std::uint64_t before = rejected.value();
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(router.try_submit(random_image(rng), 0).has_value());
  EXPECT_EQ(rejected.value() - before, 5u)
      << "each shed attempt must count exactly one rejection fleet-wide";
}

// Replica-level admission is tri-state: a non-serving replica answers
// kUnavailable (not kShed) and leaves the image intact for the Router to
// place elsewhere.
TEST(Router, ReplicaUnavailableLeavesImageIntact) {
  const core::Predictor p = make_predictor(16);
  serve::BatcherConfig bcfg;
  bcfg.workers = 0;
  serve::Replica replica(p, bcfg, /*id=*/0);
  replica.drain();
  util::Rng rng(17);
  Tensor image = random_image(rng);
  const float first = image[0];
  serve::Replica::Admitted result = replica.try_submit(image, -1);
  EXPECT_EQ(result.admission, serve::Replica::Admission::kUnavailable);
  EXPECT_FALSE(result.future.has_value());
  ASSERT_EQ(image.numel(), 32 * 32 * 3) << "image must not be moved-from";
  EXPECT_EQ(image[0], first);
}

// Per-replica metric families ride the same call sites as the global
// family: traffic through replica N lands in bcop_serve_replica<N>_*.
TEST(Router, PerReplicaMetricFamiliesRecord) {
  const core::Predictor p = make_predictor(18);
  serve::Router router(p, sync_config(2));
  obs::Counter& r0 = obs::Registry::global().counter(
      "bcop_serve_replica0_submitted_total");
  obs::Counter& r1 = obs::Registry::global().counter(
      "bcop_serve_replica1_submitted_total");
  obs::Counter& fleet =
      obs::Registry::global().counter("bcop_serve_submitted_total");
  const std::uint64_t r0_before = r0.value();
  const std::uint64_t r1_before = r1.value();
  const std::uint64_t fleet_before = fleet.value();
  util::Rng rng(19);
  const Tensor image = random_image(rng);
  for (int i = 0; i < 4; ++i) router.try_submit(image)->get();
  EXPECT_EQ((r0.value() - r0_before) + (r1.value() - r1_before), 4u)
      << "every submission must land in exactly one per-replica family";
  EXPECT_EQ(fleet.value() - fleet_before, 4u)
      << "and once in the fleet-wide family";
}

// --- Confidence-tiered serving (serve/tiered.hpp) --------------------------
// All tiered tests run fully synchronous (workers == 0 in both tiers,
// escalation_workers == 0) so every future is ready when try_submit
// returns and every counter has settled -- escalation behavior and the
// exactly-once accounting become plain assertions.

core::Predictor make_residual_predictor(std::uint64_t seed) {
  return core::Predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, seed,
                      /*residual_levels=*/3));
}

serve::TieredConfig sync_tiered(float margin_threshold) {
  serve::TieredConfig cfg;
  cfg.low.replicas = 1;
  cfg.low.batcher.workers = 0;
  cfg.high.replicas = 1;
  cfg.high.batcher.workers = 0;
  cfg.margin_threshold = margin_threshold;
  cfg.escalation_workers = 0;
  return cfg;
}

/// Ground truth for one image at a residual level cap: a replicate()d
/// clone capped with set_serve_levels, classified directly.
core::Predictor::Result classify_at(const core::Predictor& prototype,
                                    const Tensor& image, std::int64_t cap) {
  core::Predictor capped = prototype.replicate();
  capped.set_serve_levels(cap);
  return capped.classify_batch(image.reshaped(Shape{1, 32, 32, 3})).front();
}

struct TieredCounters {
  obs::Counter& submitted;
  obs::Counter& resolved_low;
  obs::Counter& escalated;
  obs::Counter& escalation_shed;
  std::uint64_t submitted0, resolved_low0, escalated0, escalation_shed0;

  TieredCounters()
      : submitted(obs::Registry::global().counter(
            "bcop_serve_tiered_submitted_total")),
        resolved_low(obs::Registry::global().counter(
            "bcop_serve_tiered_resolved_low_total")),
        escalated(obs::Registry::global().counter(
            "bcop_serve_tiered_escalated_total")),
        escalation_shed(obs::Registry::global().counter(
            "bcop_serve_tiered_escalation_shed_total")),
        submitted0(submitted.value()),
        resolved_low0(resolved_low.value()),
        escalated0(escalated.value()),
        escalation_shed0(escalation_shed.value()) {}
};

// Wide-margin traffic must never touch the high tier: a threshold of 0
// accepts every margin, so each request costs exactly one M = 1 pass and
// the answer is bit-identical to serving the capped clone directly.
TEST(Tiered, WideMarginResolvesInLowTierOnly) {
  const core::Predictor p = make_residual_predictor(40);
  serve::TieredRouter tiered(p, sync_tiered(0.f));
  TieredCounters c;
  util::Rng rng(41);
  for (int i = 0; i < 4; ++i) {
    const Tensor image = random_image(rng);
    auto future = tiered.try_submit(image);
    ASSERT_TRUE(future.has_value()) << i;
    const auto got = future->get();
    const auto want = classify_at(p, image, 1);
    EXPECT_EQ(got.label, want.label) << i;
    for (std::size_t k = 0; k < got.scores.size(); ++k)
      EXPECT_EQ(got.scores[k], want.scores[k]) << i << " class " << k;
  }
  EXPECT_EQ(c.submitted.value() - c.submitted0, 4u);
  EXPECT_EQ(c.resolved_low.value() - c.resolved_low0, 4u);
  EXPECT_EQ(c.escalated.value() - c.escalated0, 0u);
  EXPECT_EQ(tiered.high().stats().requests, 0)
      << "no request may reach the high tier below the threshold";
  EXPECT_EQ(tiered.low().stats().requests, 4);
}

// A low-margin input is provably RE-SERVED at the higher depth: it costs
// one request in EACH tier (exactly once per tier), the escalation
// counter moves exactly once per request, and the answer is bit-identical
// to the full-depth M = 3 classification -- which differs from the M = 1
// answer, proving the two passes really ran at different depths.
TEST(Tiered, LowMarginEscalatesToFullDepthExactlyOnce) {
  const core::Predictor p = make_residual_predictor(42);
  // margin <= 1 < 2: every request is "low margin" and must escalate.
  serve::TieredRouter tiered(p, sync_tiered(2.f));
  TieredCounters c;
  util::Rng rng(43);
  bool depths_distinguished = false;
  for (int i = 0; i < 6; ++i) {
    const Tensor image = random_image(rng);
    auto future = tiered.try_submit(image);
    ASSERT_TRUE(future.has_value()) << i;
    const auto got = future->get();
    const auto deep = classify_at(p, image, 3);
    const auto shallow = classify_at(p, image, 1);
    for (std::size_t k = 0; k < got.scores.size(); ++k) {
      EXPECT_EQ(got.scores[k], deep.scores[k])
          << i << " class " << k << ": answer must be the M = 3 result";
      if (deep.scores[k] != shallow.scores[k]) depths_distinguished = true;
    }
  }
  EXPECT_TRUE(depths_distinguished)
      << "M = 1 and M = 3 scores never differed, so the test cannot tell "
         "the tiers apart";
  EXPECT_EQ(c.submitted.value() - c.submitted0, 6u);
  EXPECT_EQ(c.escalated.value() - c.escalated0, 6u)
      << "each low-margin request escalates exactly once";
  EXPECT_EQ(c.resolved_low.value() - c.resolved_low0, 0u);
  EXPECT_EQ(tiered.low().stats().requests, 6)
      << "escalation re-serves; it does not bypass the low tier";
  EXPECT_EQ(tiered.high().stats().requests, 6)
      << "each escalated request is served exactly once at depth";
}

// When the high tier sheds the escalation, the request degrades to the
// low-tier answer instead of failing: the client future still resolves,
// with the M = 1 result, and the shed is counted exactly once.
TEST(Tiered, EscalationShedDegradesToLowTierAnswer) {
  const core::Predictor p = make_residual_predictor(44);
  serve::TieredConfig cfg = sync_tiered(2.f);  // always try to escalate
  // Watermark 0 sheds every escalation -- but only a QUEUED server
  // consults the watermark (a synchronous workers == 0 server classifies
  // inline and never sheds), so the high tier runs one real worker.
  cfg.high.batcher.workers = 1;
  cfg.high_max_depth = 0;
  serve::TieredRouter tiered(p, cfg);
  TieredCounters c;
  util::Rng rng(45);
  for (int i = 0; i < 3; ++i) {
    const Tensor image = random_image(rng);
    auto future = tiered.try_submit(image);
    ASSERT_TRUE(future.has_value())
        << i << ": a shed escalation must not become a client-visible 503";
    const auto got = future->get();
    const auto want = classify_at(p, image, 1);
    for (std::size_t k = 0; k < got.scores.size(); ++k)
      EXPECT_EQ(got.scores[k], want.scores[k]) << i << " class " << k;
  }
  EXPECT_EQ(c.escalated.value() - c.escalated0, 3u);
  EXPECT_EQ(c.escalation_shed.value() - c.escalation_shed0, 3u);
  EXPECT_EQ(tiered.high().stats().requests, 0);
}

// A LOW-tier admission shed is the client-visible 503 path and keeps the
// exactly-once rejection ledger, same as a plain Router.
TEST(Tiered, LowTierShedIsClientVisibleAndCountedOnce) {
  const core::Predictor p = make_residual_predictor(46);
  serve::TieredConfig cfg = sync_tiered(2.f);
  cfg.low.batcher.workers = 1;  // async so a max_depth-0 watermark sheds
  serve::TieredRouter tiered(p, cfg);
  TieredCounters c;
  obs::Counter& rejected =
      obs::Registry::global().counter("bcop_serve_rejected_total");
  const std::uint64_t rejected0 = rejected.value();
  util::Rng rng(47);
  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(tiered.try_submit(random_image(rng), 0).has_value()) << i;
  EXPECT_EQ(rejected.value() - rejected0, 3u)
      << "each low-tier shed counts exactly one rejection";
  EXPECT_EQ(c.submitted.value() - c.submitted0, 0u)
      << "a shed request was never admitted to the tier pipeline";
}

}  // namespace
