#include <gtest/gtest.h>

#include <cmath>

#include "nn/binary_conv2d.hpp"
#include "nn/scaled_binary_conv2d.hpp"
#include "nn/sequential.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;
using bcop::testhelpers::random_tensor;

TEST(ScaledBinaryConv, AlphaIsMeanAbsolutePerChannel) {
  util::Rng rng(1);
  nn::ScaledBinaryConv2d conv(3, 2, 2, rng);
  Tensor& w = conv.params()[0]->value;
  // Channel 0: all +0.5; channel 1: alternating +-0.25.
  for (std::int64_t i = 0; i < 18; ++i) {
    w.at2(i, 0) = 0.5f;
    w.at2(i, 1) = (i % 2 == 0) ? 0.25f : -0.25f;
  }
  const auto alpha = conv.scaling_factors();
  EXPECT_NEAR(alpha[0], 0.5f, 1e-6f);
  EXPECT_NEAR(alpha[1], 0.25f, 1e-6f);
}

TEST(ScaledBinaryConv, ForwardIsAlphaTimesPlainBinaryConv) {
  util::Rng rng(2);
  nn::ScaledBinaryConv2d scaled(3, 2, 4, rng);
  util::Rng rng2(2);  // same seed: identical latents
  nn::BinaryConv2d plain(3, 2, 4, rng2);

  const Tensor x = random_tensor(Shape{1, 6, 6, 2}, rng);
  const Tensor ys = scaled.forward(x, false);
  const Tensor yp = plain.forward(x, false);
  const auto alpha = scaled.scaling_factors();
  ASSERT_EQ(ys.shape(), yp.shape());
  for (std::int64_t i = 0; i < ys.numel(); ++i) {
    const auto o = static_cast<std::size_t>(i % 4);
    EXPECT_NEAR(ys[i], yp[i] * alpha[o], 1e-4f);
  }
}

TEST(ScaledBinaryConv, BackwardShapesAndClipping) {
  util::Rng rng(3);
  nn::ScaledBinaryConv2d conv(3, 2, 4, rng);
  const Tensor x = random_tensor(Shape{2, 5, 5, 2}, rng);
  const Tensor seed = random_tensor(Shape{2, 3, 3, 4}, rng);
  conv.forward(x, true);
  for (auto* p : conv.params()) {
    p->ensure_grad();
    p->grad.fill(0.f);
  }
  const Tensor dx = conv.backward(seed);
  EXPECT_EQ(dx.shape(), x.shape());
  // Gradients must be non-trivial.
  float gnorm = 0;
  for (std::int64_t i = 0; i < conv.params()[0]->grad.numel(); ++i)
    gnorm += std::abs(conv.params()[0]->grad[i]);
  EXPECT_GT(gnorm, 0.f);

  conv.params()[0]->value[0] = 9.f;
  conv.post_update();
  EXPECT_FLOAT_EQ(conv.params()[0]->value[0], 1.f);
}

TEST(ScaledBinaryConv, InputGradientScalesWithAlpha) {
  // With uniform |latents| = a, dL/dx must be exactly a times the plain
  // binary layer's input gradient.
  util::Rng rng(4);
  nn::ScaledBinaryConv2d scaled(3, 1, 2, rng);
  util::Rng rng2(4);
  nn::BinaryConv2d plain(3, 1, 2, rng2);
  Tensor& ws = scaled.params()[0]->value;
  Tensor& wp = plain.params()[0]->value;
  for (std::int64_t i = 0; i < ws.numel(); ++i) {
    const float sign = ws[i] >= 0 ? 1.f : -1.f;
    ws[i] = 0.5f * sign;
    wp[i] = 0.5f * sign;
  }
  const Tensor x = random_tensor(Shape{1, 5, 5, 1}, rng);
  const Tensor seed = random_tensor(Shape{1, 3, 3, 2}, rng);
  scaled.forward(x, true);
  plain.forward(x, true);
  for (auto* p : scaled.params()) p->ensure_grad();
  for (auto* p : plain.params()) p->ensure_grad();
  const Tensor dxs = scaled.backward(seed);
  const Tensor dxp = plain.backward(seed);
  for (std::int64_t i = 0; i < dxs.numel(); ++i)
    EXPECT_NEAR(dxs[i], 0.5f * dxp[i], 1e-5f);
}

TEST(ScaledBinaryConv, SaveLoadRoundTrip) {
  util::Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::ScaledBinaryConv2d>(3, 2, 4, rng);
  const auto path = "/tmp/bcop_scaled.bcop";
  model.save(path);
  nn::Sequential loaded = nn::Sequential::load_file(path);
  EXPECT_STREQ(loaded.layer(0).type(), "ScaledBinaryConv2d");
  const Tensor x = random_tensor(Shape{1, 5, 5, 2}, rng);
  const Tensor a = model.forward(x, false);
  const Tensor b = loaded.forward(x, false);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(ScaledBinaryConv, Validation) {
  util::Rng rng(6);
  EXPECT_THROW(nn::ScaledBinaryConv2d(0, 1, 1, rng), std::invalid_argument);
  nn::ScaledBinaryConv2d conv(3, 2, 2, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 5, 5, 3}), false),
               std::invalid_argument);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 3, 3, 2})), std::logic_error);
}

}  // namespace
