// Measures the engine's zero-allocation steady-state contract end to end.
//
// This binary links bcop_allocmeter, replacing the global operator new
// with a counting interposer (util/allocmeter.hpp). After one warm call,
// XnorNetwork::forward_batch(input, ws, out) against a prepared Workspace
// must perform ZERO heap allocations for all three Table I prototypes --
// the plan is cached, the arena is grown, the output tensor is reused, so
// nothing in the interpreter path may touch the allocator (lint rule R6
// enforces the same property statically on src/xnor/exec.cpp).
//
// The stage profiler is explicitly ENABLED here: per-stage telemetry
// recording (obs/metrics.hpp, rule R7) must ride the interpreter without
// costing a single allocation, so the contract is measured in the
// worst-case (instrumented) configuration.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "obs/stage_profiler.hpp"
#include "tensor/kernels/dispatch.hpp"
#include "tensor/tensor.hpp"
#include "util/allocmeter.hpp"
#include "util/rng.hpp"
#include "xnor/engine.hpp"
#include "xnor/plan.hpp"

namespace {

using namespace bcop;
using core::ArchitectureId;
using tensor::Shape;
using tensor::Tensor;

Tensor random_images(std::int64_t n, std::uint64_t seed) {
  Tensor x(Shape{n, 32, 32, 3});
  util::Rng rng(seed);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform());
  return x;
}

TEST(ZeroAlloc, InterposerIsLive) {
  // Guard against a silent link regression: if the counting operator new
  // ever stops being the one in this binary, every zero-allocation
  // assertion below becomes vacuous.
  const std::uint64_t before = util::alloc_count();
  auto p = std::make_unique<std::uint64_t>(42);
  ASSERT_EQ(*p, 42u);
  EXPECT_GT(util::alloc_count(), before);
}

class ZeroAllocPrototype : public ::testing::TestWithParam<ArchitectureId> {};

TEST_P(ZeroAllocPrototype, ForwardBatchSteadyStateIsAllocationFree) {
  obs::StageProfiler::global().set_enabled(true);
  nn::Sequential model = core::build_bnn(GetParam(), 29);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);

  // The contract holds on EVERY kernel dispatch tier this host can run,
  // not just the detected best: a SIMD tier that allocates (or a scalar
  // fallback that regresses) must fail here the same way.
  namespace kn = tensor::kernels;
  for (int lvl = 0; lvl < kn::kKernelLevelCount; ++lvl) {
    const auto level = static_cast<kn::KernelLevel>(lvl);
    if (!kn::level_available(level)) continue;
    kn::set_level_override(level);
    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{4}}) {
      const Tensor x =
          random_images(batch, 1000 + static_cast<std::uint64_t>(batch));
      xnor::Workspace ws;
      Tensor out;
      net.forward_batch(x, ws, out);  // warm: compiles plan, grows arena
      const Tensor expected = out;

      const std::uint64_t mark = util::alloc_count();
      net.forward_batch(x, ws, out);
      net.forward_batch(x, ws, out);
      const std::uint64_t allocs = util::alloc_count() - mark;
      EXPECT_EQ(allocs, 0u)
          << core::arch_name(GetParam()) << " batch " << batch << " tier "
          << kn::kernel_level_name(level)
          << ": steady-state forward_batch allocated";

      for (std::int64_t i = 0; i < out.numel(); ++i)
        ASSERT_EQ(out[i], expected[i]) << "logit drift at " << i;
    }
  }
  kn::clear_level_override();
}

// The contract extends to ReBNet residual plans: multi-level GEMM passes,
// pattern-bank firing and the lexicographic pool all run out of the same
// arena (exec_residual.cpp is in the same R6 allocation-free zone), at
// the full trained depth and at every truncated level cap.
TEST_P(ZeroAllocPrototype, ResidualForwardBatchSteadyStateIsAllocationFree) {
  obs::StageProfiler::global().set_enabled(true);
  nn::Sequential model = core::build_bnn(GetParam(), 29, /*residual_levels=*/3);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);

  const Tensor x = random_images(2, 555);
  for (std::int64_t cap = 0; cap <= 3; ++cap) {
    xnor::Workspace ws;
    Tensor out;
    net.forward_batch(x, ws, out, cap);  // warm
    const Tensor expected = out;

    const std::uint64_t mark = util::alloc_count();
    net.forward_batch(x, ws, out, cap);
    net.forward_batch(x, ws, out, cap);
    EXPECT_EQ(util::alloc_count() - mark, 0u)
        << core::arch_name(GetParam()) << " level cap " << cap
        << ": steady-state residual forward_batch allocated";
    for (std::int64_t i = 0; i < out.numel(); ++i)
      ASSERT_EQ(out[i], expected[i]) << "logit drift at " << i;
  }
}

TEST_P(ZeroAllocPrototype, PredictorClassifyBatchSteadyStateIsAllocationFree) {
  obs::StageProfiler::global().set_enabled(true);
  const core::Predictor predictor(core::build_bnn(GetParam(), 31));

  const Tensor x = random_images(4, 77);
  xnor::Workspace ws;
  Tensor logits;
  std::vector<core::Predictor::Result> results;
  predictor.classify_batch(x, ws, logits, results);  // warm
  ASSERT_EQ(results.size(), 4u);

  const std::uint64_t mark = util::alloc_count();
  predictor.classify_batch(x, ws, logits, results);
  EXPECT_EQ(util::alloc_count() - mark, 0u)
      << core::arch_name(GetParam())
      << ": steady-state classify_batch allocated";
}

INSTANTIATE_TEST_SUITE_P(Prototypes, ZeroAllocPrototype,
                         ::testing::Values(ArchitectureId::kCnv,
                                           ArchitectureId::kNCnv,
                                           ArchitectureId::kMicroCnv),
                         [](const auto& info) {
                           switch (info.param) {
                             case ArchitectureId::kCnv: return "CNV";
                             case ArchitectureId::kNCnv: return "nCNV";
                             default: return "uCNV";
                           }
                         });

}  // namespace
