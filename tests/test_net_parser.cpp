// Torn-input corpus for the bounded HTTP parser (net/http_parser.hpp).
//
// The parser's contract is that it never reads past [data, data + len) and
// classifies every input as exactly one of {need-more, ok, reject}. The
// corpus below feeds it every prefix of valid requests (torn frames),
// concatenated requests (overlap), a malformed-input table, and seeded
// garbage -- all through an *exact-sized heap allocation*, so one byte of
// over-read is an ASan heap-buffer-overflow, not a silent pass. The
// generator is util::Rng with fixed seeds: the corpus is identical on
// every run (no wall clock, no live RNG in any assertion).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/http_parser.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using net::ParsedRequest;
using net::ParserLimits;
using net::ParseStatus;

/// Run the parser over a copy of `input` sized exactly input.size(): the
/// bytes live at the end of a heap block, so any over-read trips ASan.
ParseStatus parse_exact(const std::string& input, const ParserLimits& limits,
                        ParsedRequest& out) {
  const std::size_t n = input.size();
  std::unique_ptr<char[]> exact(new char[n == 0 ? 1 : n]);
  std::memcpy(exact.get(), input.data(), n);
  return net::parse_request(exact.get(), n, limits, out);
}

ParserLimits small_limits() {
  ParserLimits limits;
  limits.max_header_bytes = 512;
  limits.max_headers = 16;
  limits.max_body = 64;
  return limits;
}

const std::vector<std::string>& valid_requests() {
  static const std::vector<std::string> kRequests = {
      "GET / HTTP/1.1\r\n\r\n",
      "GET /healthz HTTP/1.0\r\nHost: a\r\n\r\n",
      "POST /v1/classify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
      "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 3"
      "\r\n\r\nabc",
      "GET /m HTTP/1.1\r\nConnection: close\r\nAccept: */*\r\n\r\n",
      "DELETE /r HTTP/1.1\r\nX-A: 1\r\nX-B:\ttabbed value\r\n\r\n",
  };
  return kRequests;
}

// Every strict prefix of a valid request is kNeedMore; the full request is
// kOk with consumed == size. No prefix may flip to a reject status --
// that would make the server 400 a slow but honest client.
TEST(NetParser, EveryPrefixOfValidRequestsIsNeedMore) {
  const ParserLimits limits = small_limits();
  for (const std::string& req : valid_requests()) {
    for (std::size_t cut = 0; cut < req.size(); ++cut) {
      ParsedRequest out;
      const ParseStatus st = parse_exact(req.substr(0, cut), limits, out);
      ASSERT_EQ(st, ParseStatus::kNeedMore)
          << "request '" << req.substr(0, 24) << "...' cut at " << cut;
    }
    ParsedRequest out;
    ASSERT_EQ(parse_exact(req, limits, out), ParseStatus::kOk) << req;
    EXPECT_EQ(out.consumed, req.size()) << req;
  }
}

TEST(NetParser, ParsedFieldsAreExact) {
  ParsedRequest out;
  const std::string req =
      "POST /v1/classify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  ASSERT_EQ(parse_exact(req, small_limits(), out), ParseStatus::kOk);
  // Views alias the exact-sized buffer inside parse_exact; compare before
  // it goes away via the returned copies of offsets only. Re-parse over
  // the original string for the view comparisons.
  ASSERT_EQ(net::parse_request(req.data(), req.size(), small_limits(), out),
            ParseStatus::kOk);
  EXPECT_EQ(out.method, "POST");
  EXPECT_EQ(out.target, "/v1/classify");
  EXPECT_EQ(out.version_minor, 1);
  EXPECT_TRUE(out.keep_alive);
  EXPECT_EQ(out.content_length, 5u);
  EXPECT_EQ(out.body, "hello");
  EXPECT_EQ(out.header_end, req.size() - 5);
}

// On kNeedMore with complete headers, the header-derived fields are
// already valid (the server emits "100 Continue" from this state).
TEST(NetParser, NeedMoreForBodyStillExposesHeaders) {
  const std::string headers =
      "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 3\r\n\r\n";
  ParsedRequest out;
  ASSERT_EQ(parse_exact(headers + "ab", small_limits(), out),
            ParseStatus::kNeedMore);
  EXPECT_EQ(out.header_end, headers.size());
  EXPECT_TRUE(out.expect_continue);
  EXPECT_EQ(out.content_length, 3u);
}

// Two concatenated requests: the first parses with consumed == its own
// size (never stealing the second's bytes), and the remainder parses too.
TEST(NetParser, PipelinedRequestsConsumeExactly) {
  const ParserLimits limits = small_limits();
  const auto& reqs = valid_requests();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    for (std::size_t j = 0; j < reqs.size(); ++j) {
      ParsedRequest out;
      const std::string wire = reqs[i] + reqs[j];
      ASSERT_EQ(parse_exact(wire, limits, out), ParseStatus::kOk)
          << i << "+" << j;
      ASSERT_EQ(out.consumed, reqs[i].size()) << i << "+" << j;
      ParsedRequest second;
      ASSERT_EQ(parse_exact(wire.substr(out.consumed), limits, second),
                ParseStatus::kOk)
          << i << "+" << j;
      EXPECT_EQ(second.consumed, reqs[j].size());
    }
  }
}

struct MalformedCase {
  const char* wire;
  ParseStatus expect;
};

TEST(NetParser, MalformedTable) {
  const MalformedCase kCases[] = {
      {"GET  / HTTP/1.1\r\n\r\n", ParseStatus::kBadRequest},  // double SP
      {" GET / HTTP/1.1\r\n\r\n", ParseStatus::kBadRequest},
      {"GET / HTTP/1.1 extra\r\n\r\n", ParseStatus::kBadRequest},
      {"GET /\r\n\r\n", ParseStatus::kBadRequest},            // no version
      {"GET / HTTP/2.0\r\n\r\n", ParseStatus::kBadRequest},
      {"GET / http/1.1\r\n\r\n", ParseStatus::kBadRequest},   // lowercase
      {"G\x01T / HTTP/1.1\r\n\r\n", ParseStatus::kBadRequest},
      {"GET relative HTTP/1.1\r\n\r\n", ParseStatus::kBadRequest},
      {"\r\nGET / HTTP/1.1\r\n\r\n", ParseStatus::kBadRequest},
      {"\nGET / HTTP/1.1\r\n\r\n", ParseStatus::kBadRequest},  // bare LF
      {"GET / HTTP/1.1\r\nName with space: v\r\n\r\n",
       ParseStatus::kBadRequest},
      {"GET / HTTP/1.1\r\n: novalue\r\n\r\n", ParseStatus::kBadRequest},
      {"GET / HTTP/1.1\r\nnocolon\r\n\r\n", ParseStatus::kBadRequest},
      {"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
       ParseStatus::kBadRequest},
      {"POST / HTTP/1.1\r\nContent-Length: 1x\r\n\r\n",
       ParseStatus::kBadRequest},
      {"POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",
       ParseStatus::kBadRequest},
      // Conflicting duplicates are request smuggling bait.
      {"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
       ParseStatus::kBadRequest},
      {"POST / HTTP/1.1\r\nExpect: tomorrow\r\n\r\n",
       ParseStatus::kBadRequest},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       ParseStatus::kUnsupported},
      // Over max_body (64 in small_limits) -> kBodyTooLarge, including a
      // value that would overflow a naive accumulator.
      {"POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n",
       ParseStatus::kBodyTooLarge},
      {"POST / HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n",
       ParseStatus::kBodyTooLarge},
  };
  const ParserLimits limits = small_limits();
  for (const MalformedCase& c : kCases) {
    ParsedRequest out;
    EXPECT_EQ(parse_exact(c.wire, limits, out), c.expect) << c.wire;
  }
}

// Identical duplicate Content-Length values are tolerated (RFC 7230 3.3.2).
TEST(NetParser, IdenticalDuplicateContentLengthIsAccepted) {
  ParsedRequest out;
  const std::string req =
      "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok";
  EXPECT_EQ(parse_exact(req, small_limits(), out), ParseStatus::kOk);
  EXPECT_EQ(out.body, "ok");
}

TEST(NetParser, HeaderLimitsAreEnforced) {
  const ParserLimits limits = small_limits();  // 512 bytes, 16 fields
  ParsedRequest out;

  std::string long_line = "GET /";
  long_line.append(600, 'a');  // request line alone exceeds the cap
  EXPECT_EQ(parse_exact(long_line, limits, out),
            ParseStatus::kHeadersTooLarge);

  std::string many = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 20; ++i)
    many += "H" + std::to_string(i) + ": v\r\n";
  many += "\r\n";
  EXPECT_EQ(parse_exact(many, limits, out), ParseStatus::kHeadersTooLarge);
}

// Seeded garbage: the parser must classify without crashing or over-
// reading, and whenever it claims kOk, consumed must be in bounds.
TEST(NetParser, SeededGarbageNeverOverReads) {
  const ParserLimits limits = small_limits();
  util::Rng rng(0xc0ffee);
  for (int round = 0; round < 500; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 96));
    std::string junk(n, '\0');
    for (auto& b : junk) b = static_cast<char>(rng.uniform_int(0, 255));
    ParsedRequest out;
    const ParseStatus st = parse_exact(junk, limits, out);
    if (st == ParseStatus::kOk) {
      EXPECT_LE(out.consumed, junk.size());
    }
  }
}

// Seeded *torn valid* frames: a valid request with random garbage spliced
// at a random offset must never parse as kOk past the splice point.
TEST(NetParser, SeededSplicedFramesStayBounded) {
  const ParserLimits limits = small_limits();
  util::Rng rng(0xbadf00d);
  const auto& reqs = valid_requests();
  for (int round = 0; round < 500; ++round) {
    const std::string& base =
        reqs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(reqs.size()) - 1))];
    const std::size_t cut =
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(base.size())));
    std::string junk(static_cast<std::size_t>(rng.uniform_int(0, 32)), '\0');
    for (auto& b : junk) b = static_cast<char>(rng.uniform_int(0, 255));
    ParsedRequest out;
    parse_exact(base.substr(0, cut) + junk, limits, out);  // must not crash
  }
}

}  // namespace
