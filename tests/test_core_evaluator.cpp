#include <gtest/gtest.h>

#include "core/architecture.hpp"
#include "core/evaluator.hpp"
#include "facegen/dataset.hpp"

namespace {

using namespace bcop;
using core::ConfusionMatrix;

TEST(ConfusionMatrix, AccuracyAndRecall) {
  ConfusionMatrix cm;
  // Class 0: 3 right, 1 confused as 2. Class 1: 2 right.
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 2);
  cm.add(1, 1);
  cm.add(1, 1);
  EXPECT_EQ(cm.total(), 6);
  EXPECT_NEAR(cm.accuracy(), 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(cm.recall(0), 0.75, 1e-12);
  EXPECT_NEAR(cm.recall(1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.recall(3), 0.0);  // empty row
}

TEST(ConfusionMatrix, EmptyMatrix) {
  const ConfusionMatrix cm;
  EXPECT_EQ(cm.total(), 0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(ConfusionMatrix, OutOfRangeThrows) {
  ConfusionMatrix cm;
  EXPECT_THROW(cm.add(4, 0), std::invalid_argument);
  EXPECT_THROW(cm.add(0, -1), std::invalid_argument);
}

TEST(ConfusionMatrix, RenderShowsCountsAndPercentages) {
  ConfusionMatrix cm;
  for (int i = 0; i < 98; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  const std::string s = cm.render();
  EXPECT_NE(s.find("Correct"), std::string::npos);
  EXPECT_NE(s.find("N+M"), std::string::npos);
  EXPECT_NE(s.find("98 (98%)"), std::string::npos);
  EXPECT_NE(s.find("2 (2%)"), std::string::npos);
}

TEST(Evaluator, ModelAndXnorAgreeOnTheSameNetwork) {
  facegen::DatasetConfig cfg;
  cfg.per_class_train = 5;
  cfg.per_class_test = 10;
  const auto ds = facegen::MaskedFaceDataset::generate(cfg);

  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 3);
  const auto cm_model = core::Evaluator::evaluate_model(model, ds.test(), 16);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  const auto cm_xnor = core::Evaluator::evaluate_xnor(net, ds.test(), 16);

  EXPECT_EQ(cm_model.total(), 40);
  EXPECT_EQ(cm_xnor.total(), 40);
  // Same network, two execution paths: accuracies must be very close
  // (first-layer quantization may flip rare borderline samples).
  EXPECT_NEAR(cm_model.accuracy(), cm_xnor.accuracy(), 0.1);
}

TEST(Evaluator, UnevenFinalBatchIsHandled) {
  facegen::DatasetConfig cfg;
  cfg.per_class_train = 5;
  cfg.per_class_test = 7;  // 28 samples, batch 16 -> 16 + 12
  const auto ds = facegen::MaskedFaceDataset::generate(cfg);
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 4);
  const auto cm = core::Evaluator::evaluate_model(model, ds.test(), 16);
  EXPECT_EQ(cm.total(), 28);
}

TEST(Evaluator, InvalidArgumentsThrow) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 5);
  EXPECT_THROW(core::Evaluator::evaluate_model(model, {}, 16),
               std::invalid_argument);
  facegen::DatasetConfig cfg;
  cfg.per_class_train = 2;
  cfg.per_class_test = 2;
  const auto ds = facegen::MaskedFaceDataset::generate(cfg);
  EXPECT_THROW(core::Evaluator::evaluate_model(model, ds.test(), 0),
               std::invalid_argument);
}

}  // namespace
