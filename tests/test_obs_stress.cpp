// Observability stress tests for the TSan configuration
// (cmake -DBCOP_SANITIZE=thread): concurrent recorders against concurrent
// snapshot readers, exactness of the final totals once writers quiesce,
// and the full serving stack recording telemetry under load. Concurrency
// is built strictly from parallel::ThreadPool (rule R2).
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/stage_profiler.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/batcher.hpp"

namespace {

using namespace bcop;

// Writers hammer a counter, gauge and histogram while the main thread
// snapshots continuously. Every snapshot must be internally consistent
// (histogram count == cumulative tail) and counts must be monotonic
// across snapshots; after wait_idle the totals must be exact.
TEST(ObsStress, ConcurrentWritersVsSnapshots) {
  auto& reg = obs::Registry::global();
  obs::Counter& counter = reg.counter("bcop_stress_events_total");
  obs::Gauge& gauge = reg.gauge("bcop_stress_level");
  obs::LatencyHistogram& hist = reg.histogram("bcop_stress_ns");
  counter.reset();
  gauge.reset();
  hist.reset();

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 50000;
  parallel::ThreadPool pool(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    pool.submit([&counter, &gauge, &hist, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        counter.add(1);
        gauge.add(w % 2 == 0 ? 1 : -1);
        hist.record(i % 4096);
      }
    });
  }

  std::uint64_t last_count = 0;
  std::uint64_t last_hist = 0;
  for (int s = 0; s < 200; ++s) {
    const obs::MetricsSnapshot snap = reg.snapshot();
    for (const auto& c : snap.counters) {
      if (c.name != "bcop_stress_events_total") continue;
      ASSERT_GE(c.value, last_count);  // counters never go backwards
      last_count = c.value;
    }
    for (const auto& h : snap.histograms) {
      if (h.name != "bcop_stress_ns") continue;
      ASSERT_GE(h.count, last_hist);
      last_hist = h.count;
      if (!h.cumulative.empty()) {
        // count is derived from the same bucket pass, so the cumulative
        // tail always equals it -- even mid-write.
        ASSERT_EQ(h.cumulative.back().second, h.count);
      }
    }
  }
  pool.wait_idle();

  EXPECT_EQ(counter.value(), kWriters * kPerWriter);
  EXPECT_EQ(gauge.value(), 0);  // +1 and -1 writers cancel exactly
  EXPECT_EQ(hist.count(), kWriters * kPerWriter);
}

// Concurrent find-or-create on the same names from many threads must
// yield one instance per name and lose no increments.
TEST(ObsStress, ConcurrentRegistrationIsIdempotent) {
  auto& reg = obs::Registry::global();
  reg.counter("bcop_stress_reg_total").reset();
  constexpr int kThreads = 8;
  parallel::ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.submit([&reg] {
      for (int i = 0; i < 1000; ++i)
        reg.counter("bcop_stress_reg_total").add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(reg.counter("bcop_stress_reg_total").value(), 8000u);
}

// The whole serving stack under load with the profiler on: workers record
// per-stage series while clients submit and the main thread snapshots.
// Totals must reconcile with the server's own stats() view.
TEST(ObsStress, ServerTelemetryUnderLoad) {
  obs::StageProfiler::global().set_enabled(true);
  auto& reg = obs::Registry::global();
  obs::Counter& submitted = reg.counter("bcop_serve_submitted_total");
  obs::Counter& batches = reg.counter("bcop_serve_batches_total");
  obs::LatencyHistogram& e2e = reg.histogram("bcop_serve_e2e_latency_ns");
  obs::LatencyHistogram& sizes = reg.histogram("bcop_serve_batch_size");
  const std::uint64_t submitted0 = submitted.value();
  const std::uint64_t batches0 = batches.value();
  const std::uint64_t sizes0 = sizes.count();

  const core::Predictor predictor(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 21));
  constexpr int kRequests = 96;
  serve::BatcherConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 8;
  cfg.max_latency = std::chrono::microseconds(500);
  std::int64_t server_batches = 0;
  {
    serve::BatchingServer server(predictor, cfg);
    std::vector<std::future<core::Predictor::Result>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(server.submit(tensor::Tensor(tensor::Shape{32, 32, 3})));
      if (i % 16 == 0) reg.snapshot();  // reader racing the recorders
    }
    for (auto& f : futures) f.get();
    server_batches = server.stats().batches;
  }  // destructor joins the workers: all recording has quiesced

  EXPECT_EQ(submitted.value(), submitted0 + kRequests);
  EXPECT_EQ(batches.value(),
            batches0 + static_cast<std::uint64_t>(server_batches));
  EXPECT_EQ(sizes.count(),
            sizes0 + static_cast<std::uint64_t>(server_batches));
  EXPECT_GE(e2e.count(), static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(reg.gauge("bcop_serve_queue_depth").value(), 0);
}

}  // namespace
