#include <gtest/gtest.h>

#include "nn/hinge_loss.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

TEST(Hinge, ZeroLossBeyondMargin) {
  nn::SquaredHingeLoss head(1.f, 1.f);
  Tensor logits(Shape{1, 3});
  logits.at2(0, 0) = 5.f;   // true class, above margin
  logits.at2(0, 1) = -5.f;  // wrong classes, below -margin
  logits.at2(0, 2) = -5.f;
  EXPECT_FLOAT_EQ(head.forward(logits, {0}), 0.f);
  const Tensor g = head.backward();
  for (std::int64_t i = 0; i < g.numel(); ++i) EXPECT_FLOAT_EQ(g[i], 0.f);
}

TEST(Hinge, LossAtZeroLogitsIsMarginSquaredPerClass) {
  nn::SquaredHingeLoss head(1.f, 1.f);
  const Tensor logits(Shape{2, 4}, 0.f);
  // Every class sits exactly margin away: 4 * 1^2 per sample.
  EXPECT_FLOAT_EQ(head.forward(logits, {0, 1}), 4.f);
}

TEST(Hinge, ScaleDividesLogits) {
  nn::SquaredHingeLoss coarse(1.f, 1.f), scaled(1.f, 10.f);
  Tensor logits(Shape{1, 2});
  logits.at2(0, 0) = 10.f;
  logits.at2(0, 1) = -10.f;
  EXPECT_FLOAT_EQ(coarse.forward(logits, {0}), 0.f);
  // Scaled by 10, the logits land exactly on the margin: loss 0 as well,
  // but at 5 they'd be inside. Verify the interior case:
  logits.at2(0, 0) = 5.f;
  logits.at2(0, 1) = -5.f;
  EXPECT_FLOAT_EQ(coarse.forward(logits, {0}), 0.f);
  EXPECT_GT(scaled.forward(logits, {0}), 0.f);
}

TEST(Hinge, GradientMatchesFiniteDifference) {
  util::Rng rng(3);
  nn::SquaredHingeLoss head(1.f, 2.f);
  Tensor logits = bcop::testhelpers::random_tensor(Shape{3, 4}, rng, -3, 3);
  const std::vector<std::int64_t> labels{0, 2, 3};
  head.forward(logits, labels);
  const Tensor g = head.backward();
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(eps);
    const double lp = head.forward(logits, labels);
    logits[i] = orig - static_cast<float>(eps);
    const double lm = head.forward(logits, labels);
    logits[i] = orig;
    EXPECT_NEAR(g[i], (lp - lm) / (2 * eps), 2e-3) << "logit " << i;
  }
}

TEST(Hinge, Validation) {
  EXPECT_THROW(nn::SquaredHingeLoss(0.f, 1.f), std::invalid_argument);
  EXPECT_THROW(nn::SquaredHingeLoss(1.f, 0.f), std::invalid_argument);
  nn::SquaredHingeLoss head;
  EXPECT_THROW(head.backward(), std::logic_error);
  const Tensor logits(Shape{2, 3});
  EXPECT_THROW(head.forward(logits, {0}), std::invalid_argument);
  EXPECT_THROW(head.forward(logits, {0, 5}), std::invalid_argument);
}

}  // namespace
