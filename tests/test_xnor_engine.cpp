// Folded XNOR engine vs. the float training graph.
//
// For {-1,+1} inputs the two must agree *bit-exactly*: every hidden value
// is an integer and the folded thresholds are exact by construction. For
// 8-bit-quantized image inputs the first layer introduces one rounding
// boundary, so we require prediction agreement instead.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/architecture.hpp"
#include "facegen/dataset.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax_xent.hpp"
#include "test_helpers.hpp"
#include "tensor/ops.hpp"
#include "xnor/engine.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;
using bcop::testhelpers::random_tensor;

// A few optimizer steps on random data give the BatchNorms non-trivial
// gamma/beta/running statistics -- fresh layers fold trivially.
void randomize_bn_state(nn::Sequential& model, std::uint64_t seed,
                        const Shape& input_shape) {
  util::Rng rng(seed);
  nn::Adam opt(model, 1e-2f);
  nn::SoftmaxCrossEntropy head;
  for (int i = 0; i < 5; ++i) {
    const Tensor x = random_tensor(input_shape, rng);
    std::vector<std::int64_t> y(static_cast<std::size_t>(input_shape[0]));
    for (auto& v : y) v = rng.uniform_int(0, 3);
    head.forward(model.forward(x, true), y);
    model.backward(head.backward());
    opt.step();
  }
}

Tensor bipolar_input(const Shape& s, util::Rng& rng) {
  Tensor x(s);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.bernoulli(0.5) ? 1.f : -1.f;
  return x;
}

class EngineExactness : public ::testing::TestWithParam<int> {};

TEST_P(EngineExactness, BitExactOnBipolarInputsMicroCnv) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv,
                                         static_cast<std::uint64_t>(GetParam()));
  randomize_bn_state(model, 50 + static_cast<std::uint64_t>(GetParam()),
                     Shape{4, 32, 32, 3});
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);

  util::Rng rng(99 + static_cast<std::uint64_t>(GetParam()));
  const Tensor x = bipolar_input(Shape{3, 32, 32, 3}, rng);
  const Tensor ref = model.forward(x, false);
  const Tensor got = net.forward(x);
  ASSERT_EQ(got.shape(), ref.shape());
  for (std::int64_t i = 0; i < ref.numel(); ++i)
    ASSERT_FLOAT_EQ(got[i], ref[i]) << "logit " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineExactness, ::testing::Range(0, 4));

TEST(Engine, PredictionAgreementOnQuantizedFaces) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 3);
  randomize_bn_state(model, 4, Shape{4, 32, 32, 3});
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);

  facegen::DatasetConfig cfg;
  cfg.per_class_train = 10;
  cfg.per_class_test = 20;
  const auto ds = facegen::MaskedFaceDataset::generate(cfg);
  std::vector<std::int64_t> indices(ds.test().size());
  std::iota(indices.begin(), indices.end(), 0);
  Tensor x;
  std::vector<std::int64_t> y;
  facegen::MaskedFaceDataset::to_batch(ds.test(), indices, 0, indices.size(),
                                       x, y);

  const auto ref = tensor::argmax_rows(model.forward(x, false));
  const auto got = net.predict(x);
  ASSERT_EQ(ref.size(), got.size());
  std::int64_t agree = 0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    if (ref[i] == got[i]) ++agree;
  // The first-layer quantization boundary may flip rare borderline bits;
  // prediction agreement must still be near-perfect.
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(ref.size()), 0.95);
}

TEST(Engine, LogitsAreIntegers) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 5);
  randomize_bn_state(model, 6, Shape{4, 32, 32, 3});
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  util::Rng rng(7);
  const Tensor logits = net.forward(bipolar_input(Shape{2, 32, 32, 3}, rng));
  for (std::int64_t i = 0; i < logits.numel(); ++i)
    EXPECT_FLOAT_EQ(logits[i], std::round(logits[i]));
}

TEST(Engine, StageSequenceMatchesArchitecture) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 8);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  std::vector<std::string> kinds;
  for (const auto& s : net.stages()) kinds.push_back(xnor::stage_kind(s));
  const std::vector<std::string> expected{
      "FirstConv", "BinConv", "Pool", "BinConv", "BinConv", "Pool",
      "BinConv",   "BinConv", "Flatten", "BinDense", "BinDense", "BinDense"};
  EXPECT_EQ(kinds, expected);
}

TEST(Engine, FoldRejectsFp32Models) {
  nn::Sequential model = core::build_fp32_cnv(1);
  EXPECT_THROW(xnor::XnorNetwork::fold(model), std::runtime_error);
}

TEST(Engine, FoldRejectsEmptyModel) {
  nn::Sequential model;
  EXPECT_THROW(xnor::XnorNetwork::fold(model), std::runtime_error);
}

TEST(Engine, WeightBitsMatchHandCount) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 9);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  // Weights: conv 27*16 + 144*16 + 144*32 + 288*32 + 288*64, FC 576*128 + 128*4.
  const std::int64_t weights = 27 * 16 + 144 * 16 + 144 * 32 + 288 * 32 +
                               288 * 64 + 576 * 128 + 128 * 4;
  // Thresholds: 24 bits per thresholded output channel (all but FC.2).
  const std::int64_t thresholds = 24 * (16 + 16 + 32 + 32 + 64 + 128);
  EXPECT_EQ(net.weight_bits(), weights + thresholds);
}

TEST(Engine, FoldedModelSmallerThanFloat32) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 10);
  const xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  const std::int64_t float_bits = model.parameter_count() * 32;
  // The paper's ~x32 compression claim (Sec. II-B), minus threshold words.
  EXPECT_LT(net.weight_bits(), float_bits / 16);
}

}  // namespace
