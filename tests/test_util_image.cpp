#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/image.hpp"
#include "util/rng.hpp"

namespace {

using bcop::util::Image;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Image, ConstructionAndAccess) {
  Image img(4, 6, 0.25f);
  EXPECT_EQ(img.height(), 4);
  EXPECT_EQ(img.width(), 6);
  EXPECT_FLOAT_EQ(img.at(3, 5, 2), 0.25f);
  img.at(1, 2, 0) = 0.75f;
  EXPECT_FLOAT_EQ(img.at(1, 2, 0), 0.75f);
}

TEST(Image, SetRgbClippedIgnoresOutOfBounds) {
  Image img(2, 2);
  img.set_rgb_clipped(-1, 0, 1, 1, 1);
  img.set_rgb_clipped(0, 5, 1, 1, 1);
  for (const float v : img.data()) EXPECT_FLOAT_EQ(v, 0.f);
  img.set_rgb_clipped(1, 1, 0.5f, 0.6f, 0.7f);
  EXPECT_FLOAT_EQ(img.at(1, 1, 1), 0.6f);
}

TEST(Image, BlendInterpolates) {
  Image img(1, 1);
  img.set_rgb(0, 0, 0.f, 0.f, 0.f);
  img.blend_rgb_clipped(0, 0, 1.f, 1.f, 1.f, 0.5f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.5f);
}

TEST(Image, Clamp01) {
  Image img(1, 2);
  img.set_rgb(0, 0, -0.5f, 1.5f, 0.5f);
  img.clamp01();
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 1), 1.f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 2), 0.5f);
}

TEST(Ppm, RoundTripQuantizesTo8Bit) {
  bcop::util::Rng rng(1);
  Image img(16, 24);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform());
  const std::string path = temp_path("bcop_roundtrip.ppm");
  bcop::util::write_ppm(path, img);
  const Image back = bcop::util::read_ppm(path);
  ASSERT_EQ(back.height(), 16);
  ASSERT_EQ(back.width(), 24);
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_NEAR(back.data()[i], img.data()[i], 1.f / 255.f + 1e-5f);
  std::remove(path.c_str());
}

TEST(Ppm, ExactRoundTripFor8BitValues) {
  Image img(2, 2);
  img.set_rgb(0, 0, 0.f, 1.f, 128.f / 255.f);
  img.set_rgb(1, 1, 17.f / 255.f, 200.f / 255.f, 255.f / 255.f);
  const std::string path = temp_path("bcop_exact.ppm");
  bcop::util::write_ppm(path, img);
  const Image back = bcop::util::read_ppm(path);
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_FLOAT_EQ(back.data()[i], img.data()[i]);
  std::remove(path.c_str());
}

TEST(Ppm, MissingFileThrows) {
  EXPECT_THROW(bcop::util::read_ppm("/nonexistent/nope.ppm"),
               std::runtime_error);
}

TEST(Ppm, MalformedMagicThrows) {
  const std::string path = temp_path("bcop_bad.ppm");
  {
    std::ofstream out(path);
    out << "P3\n2 2\n255\n";
  }
  EXPECT_THROW(bcop::util::read_ppm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Ppm, TruncatedPixelDataThrows) {
  const std::string path = temp_path("bcop_trunc.ppm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P6\n4 4\n255\n";
    out << "onlyafewbytes";
  }
  EXPECT_THROW(bcop::util::read_ppm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Pgm, WritesHeaderAndPayload) {
  const std::string path = temp_path("bcop_gray.pgm");
  bcop::util::write_pgm(path, {0.f, 0.5f, 1.f, 0.25f}, 2, 2);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

TEST(Pgm, SizeMismatchThrows) {
  EXPECT_THROW(bcop::util::write_pgm(temp_path("x.pgm"), {0.f, 1.f}, 2, 2),
               std::invalid_argument);
}

}  // namespace
