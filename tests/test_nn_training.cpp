// End-to-end learning sanity: a small BNN trained with the full recipe
// (latent weights + STE + Adam + BN->sign) must solve an easy synthetic
// classification task. This exercises the interplay of all pieces, which
// the per-layer unit tests cannot.
#include <gtest/gtest.h>

#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/sign_activation.hpp"
#include "nn/softmax_xent.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;

// Toy task: a bright 3x3 blob in one of four quadrants of an 8x8 image;
// the label is the quadrant.
void make_batch(std::int64_t n, util::Rng& rng, Tensor& x,
                std::vector<std::int64_t>& y) {
  x = Tensor(Shape{n, 8, 8, 1});
  y.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto quadrant = rng.uniform_int(0, 3);
    y[static_cast<std::size_t>(i)] = quadrant;
    const std::int64_t oy = (quadrant / 2) * 4 + rng.uniform_int(0, 1);
    const std::int64_t ox = (quadrant % 2) * 4 + rng.uniform_int(0, 1);
    for (std::int64_t py = 0; py < 8; ++py)
      for (std::int64_t px = 0; px < 8; ++px)
        x.at4(i, py, px, 0) = static_cast<float>(rng.uniform(-1.0, -0.6));
    for (std::int64_t py = 0; py < 3; ++py)
      for (std::int64_t px = 0; px < 3; ++px)
        x.at4(i, oy + py, ox + px, 0) = static_cast<float>(rng.uniform(0.6, 1.0));
  }
}

double accuracy(nn::Sequential& model, const Tensor& x,
                const std::vector<std::int64_t>& y) {
  const Tensor logits = model.forward(x, false);
  const auto pred = tensor::argmax_rows(logits);
  std::int64_t ok = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    if (pred[i] == y[i]) ++ok;
  return static_cast<double>(ok) / static_cast<double>(y.size());
}

TEST(Training, BnnLearnsQuadrantTask) {
  util::Rng rng(42);
  nn::Sequential model("toy-bnn");
  model.emplace<nn::BinaryConv2d>(3, 1, 8, rng);
  model.emplace<nn::BatchNorm>(8);
  model.emplace<nn::SignActivation>();
  model.emplace<nn::MaxPool2>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::BinaryDense>(3 * 3 * 8, 4, rng);

  nn::Adam opt(model, 5e-3f);
  nn::SoftmaxCrossEntropy head;
  util::Rng data_rng(7);
  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 120; ++step) {
    Tensor x;
    std::vector<std::int64_t> y;
    make_batch(32, data_rng, x, y);
    const Tensor logits = model.forward(x, true);
    const float loss = head.forward(logits, y);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    model.backward(head.backward());
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.5f) << "loss did not decrease";

  Tensor xt;
  std::vector<std::int64_t> yt;
  make_batch(200, data_rng, xt, yt);
  EXPECT_GT(accuracy(model, xt, yt), 0.9);
}

TEST(Training, LatentWeightsStayClipped) {
  util::Rng rng(1);
  nn::Sequential model;
  auto& dense = model.emplace<nn::BinaryDense>(64, 4, rng);
  nn::Adam opt(model, 1e-1f);  // aggressive LR to push latents hard
  nn::SoftmaxCrossEntropy head;
  util::Rng data_rng(2);
  for (int step = 0; step < 30; ++step) {
    Tensor x = bcop::testhelpers::random_tensor(Shape{16, 64}, data_rng);
    std::vector<std::int64_t> y(16);
    for (auto& v : y) v = data_rng.uniform_int(0, 3);
    head.forward(model.forward(x, true), y);
    model.backward(head.backward());
    opt.step();
    const Tensor& w = dense.latent_weights();
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      ASSERT_LE(w[i], 1.f);
      ASSERT_GE(w[i], -1.f);
    }
  }
}

TEST(Training, RunningStatsEvolveOnlyInTrainingMode) {
  util::Rng rng(3);
  nn::Sequential model;
  model.emplace<nn::BinaryDense>(8, 4, rng);
  auto& bn = model.emplace<nn::BatchNorm>(4);
  model.emplace<nn::SignActivation>();

  const Tensor x = bcop::testhelpers::random_tensor(Shape{8, 8}, rng);
  model.forward(x, true);
  const float after_train = bn.running_mean()[0];
  model.forward(x, false);
  model.forward(x, false);
  EXPECT_FLOAT_EQ(bn.running_mean()[0], after_train);
}

}  // namespace
