#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.hpp"
#include "nn/binary_dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax_xent.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;
using bcop::testhelpers::random_tensor;

nn::Sequential one_dense(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Sequential m;
  m.emplace<nn::Dense>(2, 2, rng);
  return m;
}

TEST(Sgd, SingleStepMatchesHandComputation) {
  nn::Sequential m = one_dense(1);
  auto* w = m.params()[0];
  w->value.fill(1.f);
  w->ensure_grad();
  w->grad.fill(0.5f);
  auto* b = m.params()[1];
  b->ensure_grad();

  nn::Sgd sgd(m, /*lr=*/0.1f, /*momentum=*/0.0f);
  sgd.step();
  for (std::int64_t i = 0; i < w->value.numel(); ++i)
    EXPECT_FLOAT_EQ(w->value[i], 1.f - 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  nn::Sequential m = one_dense(2);
  auto* w = m.params()[0];
  w->value.fill(0.f);
  nn::Sgd sgd(m, 0.1f, 0.9f);
  // Two identical-gradient steps: v1 = -0.1g; v2 = 0.9*v1 - 0.1g.
  w->ensure_grad();
  w->grad.fill(1.f);
  sgd.step();
  EXPECT_FLOAT_EQ(w->value[0], -0.1f);
  w->grad.fill(1.f);
  sgd.step();
  EXPECT_NEAR(w->value[0], -0.1f + (0.9f * -0.1f - 0.1f), 1e-6f);
}

TEST(Optimizer, StepZeroesGradients) {
  nn::Sequential m = one_dense(3);
  auto* w = m.params()[0];
  w->ensure_grad();
  w->grad.fill(2.f);
  nn::Sgd sgd(m, 0.01f);
  sgd.step();
  for (std::int64_t i = 0; i < w->grad.numel(); ++i)
    EXPECT_FLOAT_EQ(w->grad[i], 0.f);
}

TEST(Optimizer, StepInvokesPostUpdateClipping) {
  util::Rng rng(4);
  nn::Sequential m;
  m.emplace<nn::BinaryDense>(2, 2, rng);
  auto* w = m.params()[0];
  w->value.fill(0.999f);
  w->ensure_grad();
  w->grad.fill(-100.f);  // huge step upward
  nn::Sgd sgd(m, 1.f, 0.f);
  sgd.step();
  for (std::int64_t i = 0; i < w->value.numel(); ++i)
    EXPECT_FLOAT_EQ(w->value[i], 1.f);  // clipped by post_update
}

TEST(Adam, FirstStepHasLrMagnitude) {
  nn::Sequential m = one_dense(5);
  auto* w = m.params()[0];
  w->value.fill(0.f);
  w->ensure_grad();
  w->grad.fill(3.f);  // any positive gradient: first Adam step = -lr
  nn::Adam adam(m, 0.01f);
  adam.step();
  for (std::int64_t i = 0; i < w->value.numel(); ++i)
    EXPECT_NEAR(w->value[i], -0.01f, 1e-5f);
}

TEST(Adam, MinimizesQuadratic) {
  // Minimize L(w) = sum w^2 by feeding grad = 2w.
  nn::Sequential m = one_dense(6);
  auto* w = m.params()[0];
  auto* b = m.params()[1];
  w->value.fill(1.f);
  nn::Adam adam(m, 0.05f);
  for (int i = 0; i < 200; ++i) {
    w->ensure_grad();
    b->ensure_grad();
    for (std::int64_t j = 0; j < w->value.numel(); ++j)
      w->grad[j] = 2.f * w->value[j];
    adam.step();
  }
  for (std::int64_t j = 0; j < w->value.numel(); ++j)
    EXPECT_NEAR(w->value[j], 0.f, 1e-2f);
}

TEST(SoftmaxXent, LossOfUniformLogitsIsLogC) {
  nn::SoftmaxCrossEntropy head;
  const Tensor logits(Shape{3, 4}, 0.f);
  const float loss = head.forward(logits, {0, 1, 2});
  EXPECT_NEAR(loss, std::log(4.f), 1e-5f);
}

TEST(SoftmaxXent, GradientIsSoftmaxMinusOnehotOverN) {
  util::Rng rng(7);
  nn::SoftmaxCrossEntropy head;
  const Tensor logits = random_tensor(Shape{2, 3}, rng);
  head.forward(logits, {2, 0});
  const Tensor g = head.backward();
  const Tensor p = head.probabilities();
  EXPECT_NEAR(g.at2(0, 2), (p.at2(0, 2) - 1.f) / 2.f, 1e-6f);
  EXPECT_NEAR(g.at2(0, 0), p.at2(0, 0) / 2.f, 1e-6f);
  EXPECT_NEAR(g.at2(1, 0), (p.at2(1, 0) - 1.f) / 2.f, 1e-6f);
  // Gradient rows sum to zero.
  for (std::int64_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (std::int64_t c = 0; c < 3; ++c) sum += g.at2(r, c);
    EXPECT_NEAR(sum, 0.f, 1e-6f);
  }
}

TEST(SoftmaxXent, GradientMatchesFiniteDifference) {
  util::Rng rng(8);
  nn::SoftmaxCrossEntropy head;
  Tensor logits = random_tensor(Shape{2, 4}, rng);
  const std::vector<std::int64_t> labels{1, 3};
  head.forward(logits, labels);
  const Tensor g = head.backward();
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + static_cast<float>(eps);
    const double lp = head.forward(logits, labels);
    logits[i] = orig - static_cast<float>(eps);
    const double lm = head.forward(logits, labels);
    logits[i] = orig;
    EXPECT_NEAR(g[i], (lp - lm) / (2 * eps), 1e-3);
  }
}

TEST(SoftmaxXent, InvalidLabelsThrow) {
  nn::SoftmaxCrossEntropy head;
  const Tensor logits(Shape{2, 3});
  EXPECT_THROW(head.forward(logits, {0}), std::invalid_argument);
  EXPECT_THROW(head.forward(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW(head.forward(logits, {0, -1}), std::invalid_argument);
}

}  // namespace
