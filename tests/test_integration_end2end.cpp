// Full-system integration: dataset -> training -> folding -> deployment
// pipeline -> Grad-CAM, on a reduced scale. This is the miniature version
// of the paper's whole experimental flow and must hold together end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>

#include "core/architecture.hpp"
#include "core/evaluator.hpp"
#include "core/predictor.hpp"
#include "core/trainer.hpp"
#include "deploy/performance.hpp"
#include "deploy/pipeline.hpp"
#include "facegen/dataset.hpp"
#include "gradcam/attention.hpp"
#include "gradcam/gradcam.hpp"

namespace {

using namespace bcop;

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    facegen::DatasetConfig dcfg;
    dcfg.per_class_train = 150;
    dcfg.per_class_test = 40;
    dcfg.seed = 0xe2e;
    dataset_ = new facegen::MaskedFaceDataset(
        facegen::MaskedFaceDataset::generate(dcfg));

    model_ = new nn::Sequential(
        core::build_bnn(core::ArchitectureId::kMicroCnv, 99));
    core::TrainConfig tcfg;
    tcfg.epochs = 5;
    tcfg.batch_size = 40;
    tcfg.eval_every = 0;
    core::Trainer trainer(*model_, tcfg);
    trainer.fit(dataset_->train(), {});
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete model_;
    dataset_ = nullptr;
    model_ = nullptr;
  }

  static facegen::MaskedFaceDataset* dataset_;
  static nn::Sequential* model_;
};

facegen::MaskedFaceDataset* EndToEnd::dataset_ = nullptr;
nn::Sequential* EndToEnd::model_ = nullptr;

TEST_F(EndToEnd, TrainedModelBeatsChanceByFar) {
  const auto cm = core::Evaluator::evaluate_model(*model_, dataset_->test());
  EXPECT_GT(cm.accuracy(), 0.75) << cm.render();
}

TEST_F(EndToEnd, FoldedNetworkKeepsTheAccuracy) {
  const auto cm_model = core::Evaluator::evaluate_model(*model_, dataset_->test());
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(*model_);
  const auto cm_xnor = core::Evaluator::evaluate_xnor(net, dataset_->test());
  EXPECT_NEAR(cm_xnor.accuracy(), cm_model.accuracy(), 0.03);
}

TEST_F(EndToEnd, PipelineAgreesWithEngineOnTestImages) {
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(*model_);
  deploy::StreamingPipeline pipeline(
      net, core::layer_specs(core::ArchitectureId::kMicroCnv));
  for (int i = 0; i < 5; ++i) {
    const auto& sample = dataset_->test()[static_cast<std::size_t>(i * 7)];
    const auto x = facegen::MaskedFaceDataset::image_to_tensor(sample.image);
    const auto ref = net.forward(x);
    const auto run = pipeline.run(x);
    for (std::int64_t j = 0; j < ref.numel(); ++j)
      ASSERT_FLOAT_EQ(run.logits[j], ref[j]);
  }
}

TEST_F(EndToEnd, SaveLoadFoldPreservesPredictions) {
  const auto path =
      (std::filesystem::temp_directory_path() / "bcop_e2e.bcop").string();
  model_->save(path);
  core::Predictor loaded = core::Predictor::from_file(path);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(*model_);

  std::vector<std::int64_t> indices(20);
  std::iota(indices.begin(), indices.end(), 0);
  tensor::Tensor x;
  std::vector<std::int64_t> y;
  facegen::MaskedFaceDataset::to_batch(dataset_->test(), indices, 0, 20, x, y);
  const auto a = net.predict(x);
  const auto b = loaded.network().predict(x);
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

TEST_F(EndToEnd, GradCamFocusesOnTheFace) {
  gradcam::GradCam cam(*model_, core::gradcam_layer_index(*model_));
  double face_saliency_sum = 0;
  int n = 0;
  for (int i = 0; i < 8; ++i) {
    const auto& sample = dataset_->test()[static_cast<std::size_t>(i * 11)];
    const auto x = facegen::MaskedFaceDataset::image_to_tensor(sample.image);
    const auto result = cam.compute(x);
    const auto report =
        gradcam::score_attention(result.upsampled, 32, 32, sample.regions);
    if (report.face > 0) {
      face_saliency_sum += report.face;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  // On average the trained classifier attends to the face region at least
  // as much as to the background. For this miniature model (5 epochs,
  // 150/class) the ratio sits near 1.0 and its exact value moves with
  // floating-point codegen (-march=native FMA contraction vs the generic
  // ISA used by sanitizer builds: 1.0x vs 0.94x on the same seed), so the
  // bound leaves margin for either instruction selection.
  EXPECT_GT(face_saliency_sum / n, 0.85);
}

TEST_F(EndToEnd, ThroughputModelOrdersPrototypesAsThePaper) {
  const auto ncnv =
      deploy::analyze_performance(core::layer_specs(core::ArchitectureId::kNCnv));
  EXPECT_NEAR(ncnv.fps(), 6400, 650);
}

}  // namespace
