#include <gtest/gtest.h>

#include "core/architecture.hpp"
#include "deploy/stream_sim.hpp"

namespace {

using namespace bcop;
using deploy::StreamConfig;

deploy::PerfReport synthetic_pipeline(std::vector<std::int64_t> services) {
  deploy::PerfReport perf;
  for (std::size_t i = 0; i < services.size(); ++i) {
    deploy::LayerPerf lp;
    lp.name = "S" + std::to_string(i);
    lp.compute_cycles = services[i];
    lp.effective_cycles = services[i];
    perf.layers.push_back(lp);
    perf.initiation_interval = std::max(perf.initiation_interval, services[i]);
    perf.pipeline_latency_cycles += services[i];
  }
  perf.bottleneck = "?";
  return perf;
}

TEST(StreamSim, SingleFrameLatencyIsSumOfServices) {
  const auto perf = synthetic_pipeline({10, 20, 5});
  StreamConfig cfg;
  cfg.frames = 1;
  const auto rep = deploy::simulate_stream(perf, cfg);
  EXPECT_EQ(rep.first_frame_latency, 35);
  EXPECT_EQ(rep.makespan_cycles, 35);
}

TEST(StreamSim, SteadyStateIiMatchesBottleneck) {
  const auto perf = synthetic_pipeline({10, 50, 20});
  StreamConfig cfg;
  cfg.frames = 200;
  const auto rep = deploy::simulate_stream(perf, cfg);
  EXPECT_NEAR(rep.measured_ii, 50.0, 1e-9);
  // Makespan: fill latency + (F-1) * II.
  EXPECT_EQ(rep.makespan_cycles, 80 + 199 * 50);
}

TEST(StreamSim, BottleneckUtilizationApproachesOne) {
  const auto perf = synthetic_pipeline({10, 50, 20});
  StreamConfig cfg;
  cfg.frames = 500;
  const auto rep = deploy::simulate_stream(perf, cfg);
  EXPECT_GT(rep.stages[1].utilization, 0.98);
  EXPECT_LT(rep.stages[0].utilization, 0.25);
}

TEST(StreamSim, ShallowFifosDoNotChangeDeterministicThroughput) {
  // With deterministic service times, depth-1 FIFOs stall producers but
  // the bottleneck still fires every II cycles.
  const auto perf = synthetic_pipeline({30, 10, 50, 20});
  StreamConfig cfg;
  cfg.frames = 300;
  cfg.fifo_depth = 1;
  const auto rep1 = deploy::simulate_stream(perf, cfg);
  cfg.fifo_depth = 64;
  const auto rep64 = deploy::simulate_stream(perf, cfg);
  EXPECT_NEAR(rep1.measured_ii, 50.0, 1e-9);
  EXPECT_NEAR(rep64.measured_ii, 50.0, 1e-9);
  // Shallow FIFOs block upstream stages sooner and for longer; with depth
  // 64 the fast stage only stalls once the long backlog has built up.
  EXPECT_GT(rep1.stages[1].blocked_cycles, rep64.stages[1].blocked_cycles);
  EXPECT_GT(rep1.stages[1].blocked_cycles, 0);
}

TEST(StreamSim, BackPressureInflatesQueueLatencyNotThroughput) {
  const auto perf = synthetic_pipeline({10, 50});
  StreamConfig cfg;
  cfg.frames = 100;
  cfg.fifo_depth = 1;
  const auto rep = deploy::simulate_stream(perf, cfg);
  // Frames arrive back-to-back; the slow stage paces everything.
  EXPECT_NEAR(rep.measured_ii, 50.0, 1e-9);
  EXPECT_GT(rep.max_latency_cycles, rep.first_frame_latency);
}

TEST(StreamSim, SlowArrivalsSetTheRate) {
  const auto perf = synthetic_pipeline({10, 50, 20});
  StreamConfig cfg;
  cfg.frames = 100;
  cfg.arrival_interval = 200;  // slower than the bottleneck
  const auto rep = deploy::simulate_stream(perf, cfg);
  EXPECT_NEAR(rep.measured_ii, 200.0, 1e-9);
  // No queueing: every frame sees the empty-pipeline latency.
  EXPECT_EQ(rep.max_latency_cycles, rep.first_frame_latency);
}

TEST(StreamSim, AgreesWithAnalyticModelOnRealPrototypes) {
  for (int a = 0; a < 3; ++a) {
    const auto perf = deploy::analyze_performance(
        core::layer_specs(static_cast<core::ArchitectureId>(a)));
    StreamConfig cfg;
    cfg.frames = 200;
    cfg.fifo_depth = 2;
    const auto rep = deploy::simulate_stream(perf, cfg);
    EXPECT_NEAR(rep.measured_ii,
                static_cast<double>(perf.initiation_interval),
                perf.initiation_interval * 0.01)
        << core::arch_name(static_cast<core::ArchitectureId>(a));
    EXPECT_EQ(rep.first_frame_latency, perf.pipeline_latency_cycles);
    EXPECT_EQ(rep.makespan_cycles, perf.batch_cycles(200));
  }
}

TEST(StreamSim, Validation) {
  const auto perf = synthetic_pipeline({10});
  StreamConfig cfg;
  cfg.frames = 0;
  EXPECT_THROW(deploy::simulate_stream(perf, cfg), std::invalid_argument);
  cfg = StreamConfig{};
  cfg.fifo_depth = 0;
  EXPECT_THROW(deploy::simulate_stream(perf, cfg), std::invalid_argument);
  cfg = StreamConfig{};
  cfg.arrival_interval = -1;
  EXPECT_THROW(deploy::simulate_stream(perf, cfg), std::invalid_argument);
  EXPECT_THROW(deploy::simulate_stream(deploy::PerfReport{}, StreamConfig{}),
               std::invalid_argument);
}

}  // namespace
