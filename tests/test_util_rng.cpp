#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace {

using bcop::util::Rng;
using bcop::util::SplitMix64;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(3);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveAndCoversRange) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, NormalHasCorrectMoments) {
  Rng rng(7);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(8);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(11);
  Rng b = a.split();
  // The split stream must differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

}  // namespace
