// The streaming pipeline must agree bit-for-bit with the XNOR engine (same
// folded network, different execution strategy) and its cycle accounting
// must match the analytical performance model.
#include <gtest/gtest.h>

#include "core/architecture.hpp"
#include "deploy/performance.hpp"
#include "deploy/pipeline.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax_xent.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;

void randomize_state(nn::Sequential& model, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Adam opt(model, 1e-2f);
  nn::SoftmaxCrossEntropy head;
  for (int i = 0; i < 4; ++i) {
    const Tensor x =
        bcop::testhelpers::random_tensor(Shape{3, 32, 32, 3}, rng);
    std::vector<std::int64_t> y{0, 1, 2};
    head.forward(model.forward(x, true), y);
    model.backward(head.backward());
    opt.step();
  }
}

class PipelinePerArch : public ::testing::TestWithParam<int> {};

TEST_P(PipelinePerArch, MatchesXnorEngineBitExactly) {
  const auto arch = static_cast<core::ArchitectureId>(GetParam());
  nn::Sequential model = core::build_bnn(arch, 21);
  randomize_state(model, 22);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  deploy::StreamingPipeline pipeline(net, core::layer_specs(arch));

  util::Rng rng(23);
  for (int trial = 0; trial < 3; ++trial) {
    const auto cls = static_cast<facegen::MaskClass>(trial % 4);
    const auto rendered =
        facegen::render_face(facegen::sample_attributes(cls, rng));
    const Tensor x = facegen::MaskedFaceDataset::image_to_tensor(rendered.image);
    const Tensor ref = net.forward(x);
    const auto result = pipeline.run(x);
    ASSERT_EQ(result.logits.shape(), ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i)
      ASSERT_FLOAT_EQ(result.logits[i], ref[i])
          << core::arch_name(arch) << " trial " << trial << " logit " << i;
  }
}

TEST_P(PipelinePerArch, CycleCountsMatchPerformanceModel) {
  const auto arch = static_cast<core::ArchitectureId>(GetParam());
  nn::Sequential model = core::build_bnn(arch, 31);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  const auto specs = core::layer_specs(arch);
  deploy::StreamingPipeline pipeline(net, specs);

  util::Rng rng(32);
  const Tensor x = bcop::testhelpers::random_tensor(Shape{1, 32, 32, 3}, rng);
  const auto result = pipeline.run(x);
  const auto perf = deploy::analyze_performance(specs);

  ASSERT_EQ(result.stages.size(), perf.layers.size());
  for (std::size_t i = 0; i < perf.layers.size(); ++i) {
    EXPECT_EQ(result.stages[i].compute_cycles, perf.layers[i].compute_cycles)
        << perf.layers[i].name;
    EXPECT_EQ(result.stages[i].stream_cycles, perf.layers[i].stream_cycles)
        << perf.layers[i].name;
  }
  EXPECT_EQ(result.initiation_interval(), perf.initiation_interval);
  EXPECT_EQ(result.latency_cycles(), perf.pipeline_latency_cycles);
}

INSTANTIATE_TEST_SUITE_P(Arches, PipelinePerArch, ::testing::Range(0, 3));

TEST(Pipeline, SpecMismatchThrows) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kNCnv, 41);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  EXPECT_THROW(deploy::StreamingPipeline(
                   net, core::layer_specs(core::ArchitectureId::kCnv)),
               std::invalid_argument);
  auto too_few = core::layer_specs(core::ArchitectureId::kNCnv);
  too_few.pop_back();
  EXPECT_THROW(deploy::StreamingPipeline(net, too_few), std::invalid_argument);
}

TEST(Pipeline, DescribeListsEveryComputeStage) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 42);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  deploy::StreamingPipeline pipeline(
      net, core::layer_specs(core::ArchitectureId::kMicroCnv));
  const std::string desc = pipeline.describe();
  for (const char* name : {"Conv1.1", "Conv2.2", "Conv3.1", "FC.1", "FC.2"})
    EXPECT_NE(desc.find(name), std::string::npos) << name;
  EXPECT_NE(desc.find("boolean-OR"), std::string::npos);
}

TEST(Pipeline, RejectsBatchedInput) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 43);
  xnor::XnorNetwork net = xnor::XnorNetwork::fold(model);
  deploy::StreamingPipeline pipeline(
      net, core::layer_specs(core::ArchitectureId::kMicroCnv));
  EXPECT_THROW(pipeline.run(Tensor(Shape{2, 32, 32, 3})),
               std::invalid_argument);
}

}  // namespace
