#include <gtest/gtest.h>

#include "core/architecture.hpp"
#include "core/evaluator.hpp"
#include "core/trainer.hpp"
#include "facegen/dataset.hpp"

namespace {

using namespace bcop;

facegen::MaskedFaceDataset tiny_dataset() {
  facegen::DatasetConfig cfg;
  cfg.per_class_train = 30;
  cfg.per_class_test = 10;
  cfg.seed = 77;
  return facegen::MaskedFaceDataset::generate(cfg);
}

TEST(Trainer, ConfigValidation) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 1);
  core::TrainConfig cfg;
  cfg.epochs = 0;
  EXPECT_THROW(core::Trainer(model, cfg), std::invalid_argument);
  cfg = core::TrainConfig{};
  cfg.batch_size = 0;
  EXPECT_THROW(core::Trainer(model, cfg), std::invalid_argument);
  cfg = core::TrainConfig{};
  cfg.lr_start = -1.f;
  EXPECT_THROW(core::Trainer(model, cfg), std::invalid_argument);
}

TEST(Trainer, EmptyTrainSetThrows) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 2);
  core::Trainer trainer(model, core::TrainConfig{});
  EXPECT_THROW(trainer.fit({}, {}), std::invalid_argument);
}

TEST(Trainer, ImprovesAccuracyOnTinyDataset) {
  const auto ds = tiny_dataset();
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 3);
  const double before =
      core::Evaluator::evaluate_model(model, ds.test()).accuracy();

  core::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 24;
  cfg.eval_every = 2;
  core::Trainer trainer(model, cfg);
  const auto history = trainer.fit(ds.train(), ds.test());

  ASSERT_EQ(history.size(), 4u);
  const double after =
      core::Evaluator::evaluate_model(model, ds.test()).accuracy();
  EXPECT_GT(after, before + 0.2);  // untrained ~0.25; must clearly improve
  // Loss must trend down.
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
}

TEST(Trainer, EvalEveryControlsValidation) {
  const auto ds = tiny_dataset();
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 4);
  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.eval_every = 2;
  core::Trainer trainer(model, cfg);
  const auto history = trainer.fit(ds.train(), ds.test());
  // Epoch 0: skipped; epoch 1: (1+1)%2==0 -> evaluated; epoch 2: last.
  EXPECT_LT(history[0].val_accuracy, 0.0);
  EXPECT_GE(history[1].val_accuracy, 0.0);
  EXPECT_GE(history[2].val_accuracy, 0.0);
}

TEST(Trainer, OnEpochCallbackFires) {
  const auto ds = tiny_dataset();
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 5);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.max_batches_per_epoch = 2;
  core::Trainer trainer(model, cfg);
  int calls = 0;
  trainer.on_epoch = [&](const core::EpochStats& s) {
    EXPECT_EQ(s.epoch, calls);
    ++calls;
  };
  trainer.fit(ds.train(), {});
  EXPECT_EQ(calls, 2);
}

TEST(Trainer, MaxBatchesCapsWork) {
  const auto ds = tiny_dataset();
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 6);
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 10;
  cfg.max_batches_per_epoch = 3;
  core::Trainer trainer(model, cfg);
  const auto history = trainer.fit(ds.train(), {});
  // Stats computed over exactly 30 samples; accuracy is a valid fraction.
  EXPECT_GE(history[0].train_accuracy, 0.0);
  EXPECT_LE(history[0].train_accuracy, 1.0);
}

}  // namespace
