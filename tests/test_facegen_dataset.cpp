#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>

#include "facegen/dataset.hpp"

namespace {

using namespace bcop;
using facegen::DatasetConfig;
using facegen::MaskedFaceDataset;

DatasetConfig small_config() {
  DatasetConfig cfg;
  cfg.per_class_train = 40;
  cfg.per_class_test = 10;
  cfg.seed = 123;
  return cfg;
}

std::array<std::int64_t, 4> class_counts(const std::vector<facegen::Sample>& v) {
  std::array<std::int64_t, 4> counts{};
  for (const auto& s : v) ++counts[static_cast<std::size_t>(s.label)];
  return counts;
}

TEST(Dataset, BalancedClassCounts) {
  const auto ds = MaskedFaceDataset::generate(small_config());
  const auto train = class_counts(ds.train());
  const auto test = class_counts(ds.test());
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(train[static_cast<std::size_t>(c)], 40);
    EXPECT_EQ(test[static_cast<std::size_t>(c)], 10);
  }
}

TEST(Dataset, RawPoolReflectsPaperImbalance) {
  const auto ds = MaskedFaceDataset::generate(small_config());
  const auto& raw = ds.raw_counts();
  const double total = static_cast<double>(
      std::accumulate(raw.begin(), raw.end(), std::int64_t{0}));
  EXPECT_NEAR(raw[0] / total, 0.51, 0.02);  // CMFD
  EXPECT_NEAR(raw[1] / total, 0.39, 0.02);  // IMFD Nose
  EXPECT_NEAR(raw[2] / total, 0.05, 0.02);  // IMFD N+M
  EXPECT_NEAR(raw[3] / total, 0.05, 0.02);  // IMFD Chin
}

TEST(Dataset, AugmentationFillsBeyondNaturalFraction) {
  auto cfg = small_config();
  cfg.natural_fraction = 0.5;
  const auto ds = MaskedFaceDataset::generate(cfg);
  std::int64_t augmented = 0;
  for (const auto& s : ds.train())
    if (s.augmented) ++augmented;
  // Half of each class (20 of 40) must come from augmentation.
  EXPECT_EQ(augmented, 4 * 20);
}

TEST(Dataset, SameSeedIsReproducible) {
  const auto a = MaskedFaceDataset::generate(small_config());
  const auto b = MaskedFaceDataset::generate(small_config());
  ASSERT_EQ(a.train().size(), b.train().size());
  for (std::size_t i = 0; i < a.train().size(); ++i) {
    EXPECT_EQ(a.train()[i].label, b.train()[i].label);
    ASSERT_EQ(a.train()[i].image.data().size(), b.train()[i].image.data().size());
    for (std::size_t j = 0; j < a.train()[i].image.data().size(); ++j)
      ASSERT_FLOAT_EQ(a.train()[i].image.data()[j], b.train()[i].image.data()[j]);
  }
}

TEST(Dataset, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = MaskedFaceDataset::generate(cfg);
  cfg.seed = 999;
  const auto b = MaskedFaceDataset::generate(cfg);
  // Label sequences (after shuffling) should differ somewhere.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train().size() && !any_diff; ++i)
    if (a.train()[i].label != b.train()[i].label) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, InvalidConfigThrows) {
  DatasetConfig cfg = small_config();
  cfg.per_class_train = 0;
  EXPECT_THROW(MaskedFaceDataset::generate(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.natural_fraction = 0.0;
  EXPECT_THROW(MaskedFaceDataset::generate(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.natural_fraction = 1.5;
  EXPECT_THROW(MaskedFaceDataset::generate(cfg), std::invalid_argument);
}

TEST(Dataset, ToBatchProducesQuantizedBipolarPixels) {
  const auto ds = MaskedFaceDataset::generate(small_config());
  std::vector<std::int64_t> indices(8);
  std::iota(indices.begin(), indices.end(), 0);
  tensor::Tensor x;
  std::vector<std::int64_t> y;
  MaskedFaceDataset::to_batch(ds.train(), indices, 0, 8, x, y);
  EXPECT_EQ(x.shape(), (tensor::Shape{8, 32, 32, 3}));
  EXPECT_EQ(y.size(), 8u);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_GE(x[i], -1.f);
    EXPECT_LE(x[i], 1.f);
    // Values sit on the odd-integer/255 grid of the 8-bit first layer.
    const float k = x[i] * 255.f;
    EXPECT_NEAR(k, std::round(k), 1e-3f);
    EXPECT_EQ(std::abs(static_cast<int>(std::lround(k))) % 2, 1);
  }
  for (const auto label : y) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Dataset, ToBatchRangeValidation) {
  const auto ds = MaskedFaceDataset::generate(small_config());
  std::vector<std::int64_t> indices{0, 1};
  tensor::Tensor x;
  std::vector<std::int64_t> y;
  EXPECT_THROW(MaskedFaceDataset::to_batch(ds.train(), indices, 0, 5, x, y),
               std::invalid_argument);
  EXPECT_THROW(MaskedFaceDataset::to_batch(ds.train(), indices, 1, 1, x, y),
               std::invalid_argument);
}

TEST(Dataset, ImageToTensorMatchesToBatch) {
  const auto ds = MaskedFaceDataset::generate(small_config());
  const auto& sample = ds.test().front();
  const tensor::Tensor single = MaskedFaceDataset::image_to_tensor(sample.image);
  EXPECT_EQ(single.shape(), (tensor::Shape{1, 32, 32, 3}));

  std::vector<std::int64_t> indices{0};
  tensor::Tensor x;
  std::vector<std::int64_t> y;
  MaskedFaceDataset::to_batch(ds.test(), indices, 0, 1, x, y);
  for (std::int64_t i = 0; i < single.numel(); ++i)
    EXPECT_FLOAT_EQ(single[i], x[i]);
}

TEST(Dataset, QuantizePixelGrid) {
  EXPECT_FLOAT_EQ(MaskedFaceDataset::quantize_pixel(0.f), -1.f);
  EXPECT_FLOAT_EQ(MaskedFaceDataset::quantize_pixel(1.f), 1.f);
  EXPECT_FLOAT_EQ(MaskedFaceDataset::quantize_pixel(0.5f), 0.f + 1.f / 255.f);
}

}  // namespace
