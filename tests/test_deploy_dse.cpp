#include <gtest/gtest.h>

#include "deploy/dse.hpp"

namespace {

using namespace bcop;
using core::ArchitectureId;
using deploy::DseGoal;

TEST(Dse, MeetsReachableTarget) {
  DseGoal goal;
  goal.target_fps = 3000;
  const auto result =
      deploy::explore(core::layer_specs(ArchitectureId::kNCnv), goal);
  EXPECT_TRUE(result.met_target);
  EXPECT_GE(result.performance.fps(), 3000);
  EXPECT_TRUE(result.resources.fits(goal.part.lut, goal.part.bram18,
                                    goal.part.dsp));
  EXPECT_FALSE(result.trajectory.empty());
}

TEST(Dse, StopsAtStreamBoundOrResourceBound) {
  DseGoal goal;
  goal.target_fps = 0;  // maximize
  const auto result =
      deploy::explore(core::layer_specs(ArchitectureId::kNCnv), goal);
  // n-CNV's throughput ceiling: Conv1.1 (SIMD pinned to 3 input channels).
  EXPECT_EQ(result.performance.bottleneck, "Conv1.1");
  // The explorer must reach at least Table I's throughput with the whole
  // Z7020 budget available.
  EXPECT_GE(result.performance.fps(), 6000);
}

TEST(Dse, RespectsFirstLayerSimdCap) {
  DseGoal goal;
  goal.target_fps = 0;
  const auto result =
      deploy::explore(core::layer_specs(ArchitectureId::kNCnv), goal);
  EXPECT_LE(result.specs[0].simd, 3);
}

TEST(Dse, StaysWithinTinyBudget) {
  DseGoal goal;
  goal.target_fps = 1e9;  // unreachable: exhaust the part instead
  goal.part = deploy::z7010();
  goal.dsp_offload = true;
  const auto result =
      deploy::explore(core::layer_specs(ArchitectureId::kMicroCnv), goal);
  EXPECT_FALSE(result.met_target);
  EXPECT_TRUE(result.resources.fits(goal.part.lut, goal.part.bram18,
                                    goal.part.dsp));
}

TEST(Dse, TrajectoryIsMonotoneInFps) {
  DseGoal goal;
  goal.target_fps = 5000;
  const auto result =
      deploy::explore(core::layer_specs(ArchitectureId::kCnv), goal);
  for (std::size_t i = 1; i < result.trajectory.size(); ++i)
    EXPECT_GE(result.trajectory[i].fps_after,
              result.trajectory[i - 1].fps_after * 0.999);
}

TEST(Dse, LegalDimensionsEverywhere) {
  DseGoal goal;
  goal.target_fps = 4000;
  const auto result =
      deploy::explore(core::layer_specs(ArchitectureId::kCnv), goal);
  for (const auto& s : result.specs) {
    EXPECT_GE(s.pe, 1);
    EXPECT_LE(s.pe, s.matrix_rows());
    EXPECT_GE(s.simd, 1);
    EXPECT_LE(s.simd, s.matrix_cols());
  }
}

TEST(Dse, EmptySpecsThrow) {
  EXPECT_THROW(deploy::explore({}, DseGoal{}), std::invalid_argument);
}

}  // namespace
