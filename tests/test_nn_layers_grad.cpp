// Finite-difference gradient checks for every differentiable layer, plus
// direct verification of the straight-through estimators (which are *not*
// true gradients and therefore cannot be FD-checked).
#include <gtest/gtest.h>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "nn/sign_activation.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;
using bcop::testhelpers::check_input_gradient;
using bcop::testhelpers::check_param_gradients;
using bcop::testhelpers::random_tensor;

TEST(GradCheck, DenseInputAndParams) {
  util::Rng rng(1);
  nn::Dense dense(6, 4, rng);
  const Tensor x = random_tensor(Shape{3, 6}, rng);
  const Tensor seed = random_tensor(Shape{3, 4}, rng);
  check_input_gradient(dense, x, seed);
  check_param_gradients(dense, x, seed);
}

TEST(GradCheck, Conv2dInputAndParams) {
  util::Rng rng(2);
  nn::Conv2d conv(3, 2, 3, rng);
  const Tensor x = random_tensor(Shape{2, 5, 5, 2}, rng);
  const Tensor seed = random_tensor(Shape{2, 3, 3, 3}, rng);
  check_input_gradient(conv, x, seed, 1e-3, 2e-2, /*stride=*/3);
  check_param_gradients(conv, x, seed, 1e-3, 2e-2, /*stride=*/3);
}

TEST(GradCheck, BatchNormInputAndParams) {
  util::Rng rng(3);
  nn::BatchNorm bn(3);
  // Non-trivial gamma/beta so the test covers the scaling path.
  auto params = bn.params();
  for (std::int64_t c = 0; c < 3; ++c) {
    params[0]->value[c] = 0.5f + 0.3f * static_cast<float>(c);
    params[1]->value[c] = -0.2f * static_cast<float>(c);
  }
  const Tensor x = random_tensor(Shape{6, 3}, rng, -2.0, 2.0);
  const Tensor seed = random_tensor(Shape{6, 3}, rng);
  check_input_gradient(bn, x, seed, 1e-3, 3e-2);
  check_param_gradients(bn, x, seed, 1e-3, 3e-2);
}

TEST(GradCheck, BatchNormRank4) {
  util::Rng rng(4);
  nn::BatchNorm bn(2);
  const Tensor x = random_tensor(Shape{2, 3, 3, 2}, rng, -2.0, 2.0);
  const Tensor seed = random_tensor(Shape{2, 3, 3, 2}, rng);
  check_input_gradient(bn, x, seed, 1e-3, 3e-2, /*stride=*/2);
}

TEST(GradCheck, BatchNormFrozenMode) {
  util::Rng rng(5);
  nn::BatchNorm bn(3);
  // Give the running stats some history first.
  for (int i = 0; i < 20; ++i)
    bn.forward(random_tensor(Shape{8, 3}, rng, -1.0, 3.0), true);
  bn.set_frozen(true);
  const Tensor x = random_tensor(Shape{4, 3}, rng);
  const Tensor seed = random_tensor(Shape{4, 3}, rng);
  check_input_gradient(bn, x, seed);
}

TEST(GradCheck, ReLU) {
  util::Rng rng(6);
  nn::ReLU relu;
  // Keep inputs away from the kink at 0 where FD is ill-defined.
  Tensor x = random_tensor(Shape{4, 5}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.05f) x[i] = 0.1f;
  const Tensor seed = random_tensor(Shape{4, 5}, rng);
  check_input_gradient(relu, x, seed);
}

TEST(GradCheck, MaxPool2) {
  util::Rng rng(7);
  nn::MaxPool2 pool;
  // Perturbations must not flip the argmax: spread the values.
  Tensor x(Shape{1, 4, 4, 2});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(i) * 0.37f +
           static_cast<float>(rng.uniform(0, 0.01));
  const Tensor seed = random_tensor(Shape{1, 2, 2, 2}, rng);
  check_input_gradient(pool, x, seed);
}

TEST(Ste, SignPassesGradientInsideUnitWindow) {
  nn::SignActivation sign;
  Tensor x(Shape{5});
  x[0] = -2.f;   // outside window -> blocked
  x[1] = -0.5f;  // inside -> passed
  x[2] = 0.f;
  x[3] = 1.f;    // boundary counts as inside
  x[4] = 1.01f;  // outside
  sign.forward(x, true);
  Tensor dy(Shape{5}, 2.f);
  const Tensor dx = sign.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.f);
  EXPECT_FLOAT_EQ(dx[1], 2.f);
  EXPECT_FLOAT_EQ(dx[2], 2.f);
  EXPECT_FLOAT_EQ(dx[3], 2.f);
  EXPECT_FLOAT_EQ(dx[4], 0.f);
}

TEST(Ste, SignForwardIsBipolar) {
  nn::SignActivation sign;
  Tensor x(Shape{3});
  x[0] = -0.001f;
  x[1] = 0.f;
  x[2] = 123.f;
  const Tensor y = sign.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], -1.f);
  EXPECT_FLOAT_EQ(y[1], 1.f);  // sign(0) = +1, hardware convention
  EXPECT_FLOAT_EQ(y[2], 1.f);
}

TEST(Ste, BackwardWithoutForwardThrows) {
  nn::SignActivation sign;
  EXPECT_THROW(sign.backward(Tensor(Shape{2})), std::logic_error);
}

}  // namespace
