// Cross-module integration: the deployment artifact path must compose with
// the hardware pipeline -- fold a model, serialize the bitstream, reload it
// cold, build a StreamingPipeline on the reloaded network, and verify
// everything still agrees bit-for-bit.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/architecture.hpp"
#include "deploy/pipeline.hpp"
#include "facegen/dataset.hpp"
#include "facegen/renderer.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax_xent.hpp"
#include "test_helpers.hpp"
#include "xnor/bitstream.hpp"

namespace {

using namespace bcop;
using tensor::Shape;
using tensor::Tensor;

TEST(ArtifactIntegration, PipelineFromReloadedBitstreamIsBitExact) {
  nn::Sequential model = core::build_bnn(core::ArchitectureId::kMicroCnv, 31);
  // Light training for non-trivial BN state.
  util::Rng rng(32);
  nn::Adam opt(model, 1e-2f);
  nn::SoftmaxCrossEntropy head;
  for (int i = 0; i < 4; ++i) {
    const Tensor x =
        bcop::testhelpers::random_tensor(Shape{3, 32, 32, 3}, rng);
    head.forward(model.forward(x, true), {0, 1, 2});
    model.backward(head.backward());
    opt.step();
  }

  const xnor::XnorNetwork live = xnor::XnorNetwork::fold(model);
  const auto path =
      (std::filesystem::temp_directory_path() / "bcop_pipe.bcbs").string();
  xnor::save_bitstream(live, path);
  const xnor::XnorNetwork cold = xnor::load_bitstream(path);

  deploy::StreamingPipeline pipe_live(
      live, core::layer_specs(core::ArchitectureId::kMicroCnv));
  deploy::StreamingPipeline pipe_cold(
      cold, core::layer_specs(core::ArchitectureId::kMicroCnv));

  for (int trial = 0; trial < 4; ++trial) {
    const auto attrs = facegen::sample_attributes(
        static_cast<facegen::MaskClass>(trial), rng);
    const Tensor x = facegen::MaskedFaceDataset::image_to_tensor(
        facegen::render_face(attrs).image);
    const auto a = pipe_live.run(x);
    const auto b = pipe_cold.run(x);
    ASSERT_EQ(a.logits.shape(), b.logits.shape());
    for (std::int64_t i = 0; i < a.logits.numel(); ++i)
      ASSERT_FLOAT_EQ(a.logits[i], b.logits[i]) << "trial " << trial;
    // Cycle accounting depends only on the dimensioning, not the weights.
    ASSERT_EQ(a.initiation_interval(), b.initiation_interval());
  }
  std::remove(path.c_str());
}

TEST(ArtifactIntegration, BenchEvalSetsAreDeterministic) {
  // The bench harness regenerates its evaluation sets from fixed seeds;
  // two generations must be identical so recorded numbers are stable.
  facegen::DatasetConfig cfg;
  cfg.per_class_train = 4;
  cfg.per_class_test = 12;
  cfg.seed = 0x7e57;
  const auto a = facegen::MaskedFaceDataset::generate(cfg).test();
  const auto b = facegen::MaskedFaceDataset::generate(cfg).test();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].label, b[i].label);
    for (std::size_t j = 0; j < a[i].image.data().size(); ++j)
      ASSERT_FLOAT_EQ(a[i].image.data()[j], b[i].image.data()[j]);
  }
}

}  // namespace
