// Random BNN topology generator shared by the folding property test
// (test_xnor_random_arch) and the float<->xnor differential harness
// (test_xnor_vs_float). Architectures have random channel widths, optional
// pools, 1-3 conv groups and 1-3 FC layers -- every topology the folding
// engine claims to support.
#pragma once

#include <cstdint>
#include <string>

#include "nn/batchnorm.hpp"
#include "nn/binary_conv2d.hpp"
#include "nn/binary_dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/optimizer.hpp"
#include "nn/residual_sign.hpp"
#include "nn/sequential.hpp"
#include "nn/sign_activation.hpp"
#include "nn/softmax_xent.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bcop::testhelpers {

struct RandomArch {
  nn::Sequential model;
  std::int64_t input_size = 0;
  std::int64_t input_channels = 0;
};

/// `levels` > 1 swaps every activation for a ReBNet ResidualSign of that
/// depth (M-level residual binarization); 1 keeps the classic
/// SignActivation topology byte-identical to before the knob existed.
inline RandomArch make_random_arch(std::uint64_t seed,
                                   std::int64_t levels = 1) {
  util::Rng rng(seed);
  RandomArch out;
  out.model.set_name("random-" + std::to_string(seed) +
                     (levels > 1 ? "-m" + std::to_string(levels) : ""));
  out.input_size = 2 * rng.uniform_int(6, 12);  // even, 12..24
  out.input_channels = rng.uniform_int(1, 3);

  auto add_sign = [&] {
    if (levels > 1)
      out.model.emplace<nn::ResidualSign>(levels);
    else
      out.model.emplace<nn::SignActivation>();
  };

  std::int64_t h = out.input_size;
  std::int64_t c = out.input_channels;
  const auto convs = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < convs; ++i) {
    if (h < 4) break;
    const std::int64_t co = 4 * rng.uniform_int(1, 6);
    out.model.emplace<nn::BinaryConv2d>(3, c, co, rng);
    out.model.emplace<nn::BatchNorm>(co);
    add_sign();
    h -= 2;
    c = co;
    if (h >= 4 && h % 2 == 0 && rng.bernoulli(0.5)) {
      out.model.emplace<nn::MaxPool2>();
      h /= 2;
    }
  }
  out.model.emplace<nn::Flatten>();
  std::int64_t features = h * h * c;
  const auto denses = rng.uniform_int(1, 3);
  for (std::int64_t i = 0; i < denses - 1; ++i) {
    const std::int64_t next = 8 * rng.uniform_int(2, 12);
    out.model.emplace<nn::BinaryDense>(features, next, rng);
    out.model.emplace<nn::BatchNorm>(next);
    add_sign();
    features = next;
  }
  out.model.emplace<nn::BinaryDense>(features, 4, rng);
  return out;
}

/// A few optimizer steps on random data so BatchNorm running statistics
/// (and hence the folded thresholds) are non-trivial.
inline void briefly_train(RandomArch& arch, util::Rng& rng, int steps = 3) {
  nn::Adam opt(arch.model, 1e-2f);
  nn::SoftmaxCrossEntropy head;
  for (int i = 0; i < steps; ++i) {
    const tensor::Tensor x = random_tensor(
        tensor::Shape{4, arch.input_size, arch.input_size,
                      arch.input_channels},
        rng);
    head.forward(arch.model.forward(x, true), {0, 1, 2, 3});
    arch.model.backward(head.backward());
    opt.step();
  }
}

}  // namespace bcop::testhelpers
