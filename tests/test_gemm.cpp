// Property tests: the blocked/parallel GEMM kernels must agree with the
// naive triple-loop references over a sweep of shapes, including shapes
// that are not multiples of the block sizes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop::tensor;

std::vector<float> random_matrix(std::int64_t n, bcop::util::Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return m;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], 1e-3f) << "at index " << i;
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, NnMatchesNaive) {
  const auto [M, N, K] = GetParam();
  bcop::util::Rng rng(static_cast<std::uint64_t>(M * 7919 + N * 31 + K));
  const auto A = random_matrix(static_cast<std::int64_t>(M) * K, rng);
  const auto B = random_matrix(static_cast<std::int64_t>(K) * N, rng);
  std::vector<float> C(static_cast<std::size_t>(M) * N, 99.f);
  std::vector<float> Cref = C;
  gemm_nn(M, N, K, A.data(), B.data(), C.data());
  gemm_nn_naive(M, N, K, A.data(), B.data(), Cref.data());
  expect_close(C, Cref);
}

TEST_P(GemmShapes, NtMatchesNaive) {
  const auto [M, N, K] = GetParam();
  bcop::util::Rng rng(static_cast<std::uint64_t>(M * 131 + N * 17 + K));
  const auto A = random_matrix(static_cast<std::int64_t>(M) * K, rng);
  const auto B = random_matrix(static_cast<std::int64_t>(N) * K, rng);
  std::vector<float> C(static_cast<std::size_t>(M) * N);
  std::vector<float> Cref = C;
  gemm_nt(M, N, K, A.data(), B.data(), C.data());
  gemm_nt_naive(M, N, K, A.data(), B.data(), Cref.data());
  expect_close(C, Cref);
}

TEST_P(GemmShapes, TnMatchesNaive) {
  const auto [M, N, K] = GetParam();
  bcop::util::Rng rng(static_cast<std::uint64_t>(M * 277 + N * 59 + K));
  const auto A = random_matrix(static_cast<std::int64_t>(K) * M, rng);
  const auto B = random_matrix(static_cast<std::int64_t>(K) * N, rng);
  std::vector<float> C(static_cast<std::size_t>(M) * N);
  std::vector<float> Cref = C;
  gemm_tn(M, N, K, A.data(), B.data(), C.data());
  gemm_tn_naive(M, N, K, A.data(), B.data(), Cref.data());
  expect_close(C, Cref);
}

TEST_P(GemmShapes, AccumulateAddsOntoExisting) {
  const auto [M, N, K] = GetParam();
  bcop::util::Rng rng(static_cast<std::uint64_t>(M + N + K));
  const auto A = random_matrix(static_cast<std::int64_t>(M) * K, rng);
  const auto B = random_matrix(static_cast<std::int64_t>(K) * N, rng);
  std::vector<float> C(static_cast<std::size_t>(M) * N, 1.f);
  std::vector<float> Cref = C;
  gemm_nn(M, N, K, A.data(), B.data(), C.data(), /*accumulate=*/true);
  gemm_nn_naive(M, N, K, A.data(), B.data(), Cref.data(), /*accumulate=*/true);
  expect_close(C, Cref);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(1, 64, 300),
                      std::make_tuple(65, 3, 257),   // crosses kBlockM/kBlockK
                      std::make_tuple(128, 10, 512), // multiple blocks
                      std::make_tuple(100, 128, 27)  // conv1.1-like
                      ));

TEST(Gemm, OverwriteVsAccumulateDiffer) {
  const float A[] = {1.f, 2.f};
  const float B[] = {3.f, 4.f};
  float C1[] = {10.f};
  float C2[] = {10.f};
  gemm_nn(1, 1, 2, A, B, C1, false);
  gemm_nn(1, 1, 2, A, B, C2, true);
  EXPECT_FLOAT_EQ(C1[0], 11.f);
  EXPECT_FLOAT_EQ(C2[0], 21.f);
}

}  // namespace
