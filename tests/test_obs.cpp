// Observability-layer unit tests: primitive semantics, histogram bucket
// geometry, quantile accuracy against a sorted-sample oracle, registry
// identity/validation, exporter golden output from a hand-built snapshot,
// and the end-to-end wiring of the StageProfiler (plan interpreter) and
// the BatchingServer's metrics. Concurrency hammering lives in
// tests/test_obs_stress.cpp for the TSan configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "core/predictor.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "obs/stage_profiler.hpp"
#include "serve/batcher.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop;
using obs::LatencyHistogram;

TEST(ObsCounter, AddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddGoesNegative) {
  obs::Gauge g;
  g.set(5);
  g.add(-8);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

// Every bucket's lower bound must map back to that bucket, and bounds must
// tile the value axis: upper(i) == lower(i+1), strictly increasing.
TEST(ObsHistogram, BucketBoundsRoundTripAndTile) {
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t lo = LatencyHistogram::bucket_lower(i);
    EXPECT_EQ(LatencyHistogram::bucket_index(lo), i) << "bucket " << i;
    if (i + 1 < LatencyHistogram::kBuckets) {
      EXPECT_EQ(LatencyHistogram::bucket_upper(i),
                LatencyHistogram::bucket_lower(i + 1));
      // The value just below the boundary still belongs to bucket i.
      EXPECT_EQ(
          LatencyHistogram::bucket_index(LatencyHistogram::bucket_upper(i) - 1),
          i);
    }
  }
  // Small values are exact; beyond the table everything clamps into the
  // last bucket instead of indexing out of bounds.
  for (std::uint64_t v = 0; v < 4; ++v)
    EXPECT_EQ(LatencyHistogram::bucket_index(v), static_cast<int>(v));
  EXPECT_EQ(LatencyHistogram::bucket_index(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

// Bucket width <= 1/4 of the lower bound: the resolution guarantee the
// ~12% quantile error bound in the header comment is derived from.
TEST(ObsHistogram, BucketRelativeWidthBounded) {
  for (int i = LatencyHistogram::kSub; i + 1 < LatencyHistogram::kBuckets;
       ++i) {
    const double lo = static_cast<double>(LatencyHistogram::bucket_lower(i));
    const double hi = static_cast<double>(LatencyHistogram::bucket_upper(i));
    EXPECT_LE(hi - lo, lo / 4.0 + 1e-9) << "bucket " << i;
  }
}

TEST(ObsHistogram, CountSumAndExactSmallValueQuantiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty histogram reads as 0
  for (int i = 0; i < 10; ++i) h.record(2);
  h.record(3);
  EXPECT_EQ(h.count(), 11u);
  EXPECT_EQ(h.sum(), 23u);
  // Values below kSub live in exact unit buckets: quantiles are exact.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// Quantiles vs a sorted-sample oracle over log-uniform samples spanning
// the realistic latency range (~100ns..100ms). Bucket width is <= 1/4 of
// the value, so the midpoint estimate stays within a ~1.26x factor.
TEST(ObsHistogram, QuantilesTrackSortedOracle) {
  util::Rng rng(0xc0ffee);
  LatencyHistogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const double log_v = rng.uniform(std::log(100.0), std::log(1e8));
    const auto v = static_cast<std::uint64_t>(std::exp(log_v));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.50, 0.90, 0.99}) {
    const auto rank = static_cast<std::size_t>(std::ceil(
        q * static_cast<double>(samples.size())));
    const double exact =
        static_cast<double>(samples[std::min(rank, samples.size()) - 1]);
    const double est = h.quantile(q);
    EXPECT_GT(est, exact / 1.26) << "q=" << q;
    EXPECT_LT(est, exact * 1.26) << "q=" << q;
  }
}

TEST(ObsRegistry, FindOrCreateReturnsSameInstance) {
  auto& r = obs::Registry::global();
  obs::Counter& a = r.counter("bcop_test_identity_total");
  a.add(7);
  obs::Counter& b = r.counter("bcop_test_identity_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
  obs::LatencyHistogram& h1 = r.histogram("bcop_test_identity_ns");
  obs::LatencyHistogram& h2 = r.histogram("bcop_test_identity_ns");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, SnapshotCarriesValuesAndCumulativeBuckets) {
  auto& r = obs::Registry::global();
  r.counter("bcop_test_snap_total").add(3);
  r.gauge("bcop_test_snap_depth").set(-2);
  auto& h = r.histogram("bcop_test_snap_ns");
  h.reset();
  h.record(1);
  h.record(1);
  h.record(1000);
  const obs::MetricsSnapshot snap = r.snapshot();

  const auto counter = std::find_if(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& c) { return c.name == "bcop_test_snap_total"; });
  ASSERT_NE(counter, snap.counters.end());
  EXPECT_EQ(counter->value, 3u);

  const auto gauge = std::find_if(
      snap.gauges.begin(), snap.gauges.end(),
      [](const auto& g) { return g.name == "bcop_test_snap_depth"; });
  ASSERT_NE(gauge, snap.gauges.end());
  EXPECT_EQ(gauge->value, -2);

  const auto hist = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& hv) { return hv.name == "bcop_test_snap_ns"; });
  ASSERT_NE(hist, snap.histograms.end());
  EXPECT_EQ(hist->count, 3u);
  EXPECT_EQ(hist->sum, 1002u);
  ASSERT_EQ(hist->cumulative.size(), 2u);  // one entry per non-empty bucket
  EXPECT_EQ(hist->cumulative.front().second, 2u);   // two samples <= first
  EXPECT_EQ(hist->cumulative.back().second, 3u);    // all samples <= last
  EXPECT_LE(hist->cumulative.front().first, hist->cumulative.back().first);
}

TEST(ObsRegistry, ResetValuesKeepsRegistrationAndReferences) {
  auto& r = obs::Registry::global();
  obs::Counter& c = r.counter("bcop_test_reset_total");
  c.add(5);
  r.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&r.counter("bcop_test_reset_total"), &c);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

// Exporters are pure functions of the snapshot, so a hand-built snapshot
// pins the exact output byte-for-byte (the samples in
// docs/observability.md come from the same code path).
obs::MetricsSnapshot golden_snapshot() {
  obs::MetricsSnapshot s;
  s.counters.push_back({"bcop_demo_requests_total", 42});
  s.gauges.push_back({"bcop_demo_queue_depth", -1});
  obs::MetricsSnapshot::HistogramValue h;
  h.name = "bcop_demo_latency_ns";
  h.count = 3;
  h.sum = 1800;
  h.p50 = 512.0;
  h.p90 = 896.0;
  h.p99 = 896.0;
  h.cumulative = {{512, 1}, {896, 3}};
  s.histograms.push_back(h);
  return s;
}

TEST(ObsExport, JsonGolden) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n    \"bcop_demo_requests_total\": 42\n  },\n"
      "  \"gauges\": {\n    \"bcop_demo_queue_depth\": -1\n  },\n"
      "  \"histograms\": {\n"
      "    \"bcop_demo_latency_ns\": {\"count\": 3, \"sum\": 1800, "
      "\"p50\": 512.0, \"p90\": 896.0, \"p99\": 896.0, \"buckets\": "
      "[{\"le\": 512, \"count\": 1}, {\"le\": 896, \"count\": 3}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(obs::export_json(golden_snapshot()), expected);
}

TEST(ObsExport, PrometheusGolden) {
  const std::string expected =
      "# TYPE bcop_demo_requests_total counter\n"
      "bcop_demo_requests_total 42\n"
      "# TYPE bcop_demo_queue_depth gauge\n"
      "bcop_demo_queue_depth -1\n"
      "# TYPE bcop_demo_latency_ns histogram\n"
      "bcop_demo_latency_ns_bucket{le=\"512\"} 1\n"
      "bcop_demo_latency_ns_bucket{le=\"896\"} 3\n"
      "bcop_demo_latency_ns_bucket{le=\"+Inf\"} 3\n"
      "bcop_demo_latency_ns_sum 1800\n"
      "bcop_demo_latency_ns_count 3\n";
  EXPECT_EQ(obs::export_prometheus(golden_snapshot()), expected);
}

TEST(ObsExport, EmptySnapshot) {
  const obs::MetricsSnapshot empty;
  EXPECT_EQ(obs::export_prometheus(empty), "");
  EXPECT_EQ(obs::export_json(empty),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

// Compiling a plan registers per-stage series keyed by the plan shape, and
// replaying it fills them -- the interpreter-side wiring of the profiler.
TEST(ObsStageProfiler, ForwardBatchRecordsPerStageSeries) {
  obs::StageProfiler::global().set_enabled(true);
  const core::Predictor p(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 5));
  util::Rng rng(99);
  tensor::Tensor batch(tensor::Shape{1, 32, 32, 3});
  for (std::int64_t i = 0; i < batch.numel(); ++i)
    batch[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

  auto& reg = obs::Registry::global();
  obs::Counter& replays = reg.counter("bcop_exec_b1_in32x32x3_replays_total");
  obs::LatencyHistogram& first_conv =
      reg.histogram("bcop_exec_b1_in32x32x3_first_conv_ns");
  obs::LatencyHistogram& execute =
      reg.histogram("bcop_exec_b1_in32x32x3_execute_ns");
  const std::uint64_t replays0 = replays.value();
  const std::uint64_t conv0 = first_conv.count();

  p.network().forward_batch(batch);

  EXPECT_EQ(replays.value(), replays0 + 1);
  EXPECT_EQ(first_conv.count(), conv0 + 1);
  EXPECT_GE(execute.sum(), first_conv.sum());  // whole replay >= one step
}

TEST(ObsStageProfiler, DisableStopsRecording) {
  const core::Predictor p(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 6));
  tensor::Tensor batch(tensor::Shape{1, 32, 32, 3});
  auto& replays = obs::Registry::global().counter(
      "bcop_exec_b1_in32x32x3_replays_total");

  obs::StageProfiler::global().set_enabled(false);
  const std::uint64_t before = replays.value();
  p.network().forward_batch(batch);
  EXPECT_EQ(replays.value(), before);

  obs::StageProfiler::global().set_enabled(true);
  p.network().forward_batch(batch);
  EXPECT_EQ(replays.value(), before + 1);
}

// Synchronous server mode (workers=0) makes the serve-side metrics
// deterministic: every submit is one batch of one.
TEST(ObsServe, SynchronousServerCounts) {
  auto& reg = obs::Registry::global();
  obs::Counter& submitted = reg.counter("bcop_serve_submitted_total");
  obs::Counter& batches = reg.counter("bcop_serve_batches_total");
  obs::Counter& rejected = reg.counter("bcop_serve_rejected_total");
  obs::LatencyHistogram& batch_size = reg.histogram("bcop_serve_batch_size");
  obs::LatencyHistogram& e2e = reg.histogram("bcop_serve_e2e_latency_ns");
  const std::uint64_t submitted0 = submitted.value();
  const std::uint64_t batches0 = batches.value();
  const std::uint64_t rejected0 = rejected.value();
  const std::uint64_t sizes0 = batch_size.count();
  const std::uint64_t e2e0 = e2e.count();

  const core::Predictor p(
      core::build_bnn(core::ArchitectureId::kMicroCnv, 7));
  serve::BatcherConfig cfg;
  cfg.workers = 0;
  serve::BatchingServer server(p, cfg);
  for (int i = 0; i < 5; ++i)
    server.submit(tensor::Tensor(tensor::Shape{32, 32, 3})).get();
  EXPECT_THROW(server.submit(tensor::Tensor(tensor::Shape{16, 16, 3})),
               std::invalid_argument);

  EXPECT_EQ(submitted.value(), submitted0 + 5);
  EXPECT_EQ(batches.value(), batches0 + 5);
  EXPECT_EQ(rejected.value(), rejected0 + 1);
  EXPECT_EQ(batch_size.count(), sizes0 + 5);
  EXPECT_EQ(e2e.count(), e2e0 + 5);
  EXPECT_EQ(reg.gauge("bcop_serve_queue_depth").value(), 0);
}

}  // namespace
