// Fixture: AVX-512 kernel tier, token-free.
void gemm_chunk_avx512(void*, long lo, long hi) { (void)lo; (void)hi; }
