// Fixture: scalar kernel tier, token-free.
void gemm_chunk(void*, long lo, long hi) { (void)lo; (void)hi; }
