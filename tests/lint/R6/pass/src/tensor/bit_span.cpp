// Fixture: span-kernel entry points, token-free.
void pool2(unsigned long* dst, const unsigned long* a, const unsigned long* b,
           int n) {
  for (int i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}
