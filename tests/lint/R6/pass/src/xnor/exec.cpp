// Fixture: an interpreter body with no allocation tokens.
void replay(float* dst, const float* src, int n) {
  for (int i = 0; i < n; ++i) dst[i] = src[i] * 2.0f;
}
