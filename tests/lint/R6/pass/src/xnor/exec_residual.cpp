// Fixture: residual replay kernels with no allocation tokens.
void scale_acc(int* acc, const int* part, int g, int n) {
  for (int i = 0; i < n; ++i) acc[i] += g * part[i];
}
