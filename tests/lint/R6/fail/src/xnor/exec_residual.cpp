// Fixture: seeded violation -- heap allocation in the residual replay.
int* bank_scratch(int n) {
  int* p = new int[n];
  return p;
}
