// Fixture: seeded violation -- heap allocation in the interpreter.
int* scratch(int n) {
  int* p = new int[n];
  return p;
}
