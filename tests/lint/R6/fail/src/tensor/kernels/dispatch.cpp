// Fixture: kernel dispatch, token-free (atomics only).
#include <atomic>
std::atomic<int> g_level{-1};
