// Fixture: <thread> is legal inside src/parallel/.
#include <thread>
unsigned pool_width() { return std::thread::hardware_concurrency(); }
