// Fixture: seeded violation -- std::thread outside src/parallel/.
#include <thread>
void spawn_worker() { std::thread t([] {}); t.join(); }
