#include "foo/conv.hpp"
