int conv_stub() { return 1; }
