// Fixture: seeded violation -- no test file references the conv header,
// so src/foo/conv.cpp counts as an untested module.
int unrelated = 0;
