// Fixture: std RNG machinery is legal inside src/util/rng*.
#include <random>
unsigned rng_draw() { std::mt19937 gen(42); return gen(); }
