// Fixture: seeded violation -- ad-hoc RNG outside src/util/rng.
#include <random>
unsigned init_seed() { std::mt19937 gen(7); return gen(); }
