// Fixture: index arithmetic on data_ is legal inside src/tensor/.
float view_at(const float* data_, int r, int c, int cols_) {
  return data_[r * cols_ + c];
}
