// Fixture: plain (non-arithmetic) data_ indexing is legal anywhere.
float dense_first(const float* data_) { return data_[0]; }
