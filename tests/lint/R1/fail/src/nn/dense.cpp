// Fixture: seeded violation -- raw stride math outside src/tensor/.
float dense_at(const float* data_, int r, int c, int cols_) {
  return data_[r * cols_ + c];
}
