// Fixture: promise/future plumbing is legal inside src/serve/ -- the
// replica hands BatchingServer futures back through the Router.
#include <future>
std::future<int> replica_submit() {
  std::promise<int> p;
  p.set_value(1);
  return p.get_future();
}
