// Fixture: condition variables are legal inside src/serve/.
#include <condition_variable>
std::condition_variable& batch_cv() { static std::condition_variable cv; return cv; }
