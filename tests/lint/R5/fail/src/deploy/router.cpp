// Fixture: seeded violation -- dispatcher plumbing (promise/future)
// leaked outside the src/parallel/ + src/serve/ + src/net/ zones.
#include <future>
std::promise<int> route_one();
