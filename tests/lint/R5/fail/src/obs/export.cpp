// Fixture: seeded violation -- <future> outside parallel/ and serve/.
#include <future>
int exported() { return std::future<int>{}.valid() ? 1 : 0; }
