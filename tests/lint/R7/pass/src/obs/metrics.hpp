// Fixture: a recording header that is atomics-only.
#pragma once
#include <atomic>
struct Counter { std::atomic<long> v{0}; void add(long d) { v.fetch_add(d); } };
