// Fixture: seeded violation -- the recording header takes a lock.
#pragma once
#include <mutex>
struct Counter { long v = 0; std::mutex m; };
