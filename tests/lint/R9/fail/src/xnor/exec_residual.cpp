// Fixture: seeded violation -- the residual replay pulls in <functional>.
#include <functional>
void scale_acc(int*, const int*, int, int) {}
