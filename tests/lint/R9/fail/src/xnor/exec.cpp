// Fixture: seeded violation -- the interpreter pulls in <mutex>.
#include <mutex>
void replay(float*, const float*, int) {}
