// Fixture: seeded violation -- type-erasure machinery in the hot header.
#pragma once
#include <functional>
