// Fixture: the interpreter TU with clean direct includes.
#include <cstring>
void replay(float* dst, const float* src, int n) {
  std::memcpy(dst, src, static_cast<unsigned long>(n) * sizeof(float));
}
