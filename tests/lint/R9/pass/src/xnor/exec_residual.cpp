// Fixture: the residual replay TU with clean direct includes.
#include <cstdint>
void scale_acc(std::int32_t* acc, const std::int32_t* part, int g, int n) {
  for (int i = 0; i < n; ++i) acc[i] += g * part[i];
}
