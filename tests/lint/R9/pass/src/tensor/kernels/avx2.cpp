// Fixture: AVX2 kernel tier, token-free.
void gemm_chunk_avx2(void*, long lo, long hi) { (void)lo; (void)hi; }
