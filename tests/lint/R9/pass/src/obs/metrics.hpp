#pragma once
#include <atomic>
