// Fixture: the dispatcher/replica idiom. A data mutex guards members; a
// lifecycle mutex guards a *region* (drain/swap serialization) and so
// carries a reasoned waiver instead of a BCOP_GUARDED_BY member.
#pragma once
#include "util/thread_annotations.hpp"
class Replica {
  util::Mutex admin_mutex_ BCOP_ACQUIRED_BEFORE(mutex_);  // bcop-lint: allow(R8): serializes the drain/swap region, guards no member
  util::Mutex mutex_;
  int generation_ BCOP_GUARDED_BY(mutex_) = 0;
};
