// Fixture: an annotated mutex guarding a member.
#pragma once
#include "util/thread_annotations.hpp"
class Queue {
  util::Mutex mutex_;
  int depth_ BCOP_GUARDED_BY(mutex_) = 0;
};
