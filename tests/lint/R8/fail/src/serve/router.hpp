// Fixture: seeded violation -- a lifecycle mutex that guards no member
// and carries no waiver. Region locks must either annotate a member or
// write down why they cannot.
#pragma once
#include "util/thread_annotations.hpp"
class Replica {
  util::Mutex admin_mutex_ BCOP_ACQUIRED_BEFORE(mutex_);
  util::Mutex mutex_;
  int generation_ BCOP_GUARDED_BY(mutex_) = 0;
};
