// Fixture: seeded violation -- raw std::mutex member.
#pragma once
#include <mutex>
class Queue {
  std::mutex mutex_;
  int depth_ = 0;
};
