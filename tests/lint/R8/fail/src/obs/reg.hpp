// Fixture: seeded violation -- a util::Mutex that guards nothing, split
// across two lines to prove wrapped declarations are still seen.
#pragma once
#include "util/thread_annotations.hpp"
class Registry {
  util::Mutex
      mutex_;
  int entries_ = 0;
};
