// Fixture: seeded violation -- a raw socket outside src/net/.
#include <sys/socket.h>
int push_socket() { return ::socket(2, 1, 0); }
