// Fixture: sockets and poll are legal inside src/net/.
#include <poll.h>
#include <sys/socket.h>
int open_listener() { return ::socket(2, 1, 0); }
