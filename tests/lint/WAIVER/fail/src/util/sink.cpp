// Fixture: a reasonless waiver must itself be reported.
#include "util/thread_annotations.hpp"
namespace bcop::util {
Mutex g_sink_mutex;  // bcop-lint: allow(R8)
}
