// Fixture: a reasoned waiver must suppress the R8 finding.
#include "util/thread_annotations.hpp"
namespace bcop::util {
Mutex g_sink_mutex;  // bcop-lint: allow(R8): serializes an external stream, guards no members
}
