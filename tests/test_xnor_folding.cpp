// Threshold folding must reproduce sign(BatchNorm(x)) for *every* integer
// accumulator value, including negative-gamma and zero-gamma channels --
// this is the exactness the paper's hardware relies on (Sec. III-A).
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "nn/batchnorm.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "xnor/folding.hpp"

namespace {

using namespace bcop;
using xnor::bn_sign_predicate;
using xnor::fold_batchnorm;
using xnor::PreparedThresholds;
using xnor::ThresholdSpec;

// Build a BatchNorm with explicit gamma/beta/running stats.
nn::BatchNorm make_bn(const std::vector<float>& gamma,
                      const std::vector<float>& beta,
                      const std::vector<float>& mean,
                      const std::vector<float>& var) {
  // Running statistics have no public setter (they are training state), so
  // build the layer through its serialized form.
  util::BinaryWriter w("/tmp/bcop_test_bn.bin");
  w.write_tag("BNRM");
  w.write_u64(gamma.size());
  w.write_f32(1e-5f);
  w.write_f32(0.9f);
  w.write_f32_array(gamma);
  w.write_f32_array(beta);
  w.write_f32_array(mean);
  w.write_f32_array(var);
  w.close();
  util::BinaryReader r("/tmp/bcop_test_bn.bin");
  nn::BatchNorm out;
  out.load(r);
  return out;
}

void expect_fold_exact(const nn::BatchNorm& bn, std::int64_t acc_min,
                       std::int64_t acc_max, double scale) {
  const ThresholdSpec spec = fold_batchnorm(bn, acc_min, acc_max, scale);
  for (std::int64_t c = 0; c < bn.channels(); ++c)
    for (std::int64_t acc = acc_min; acc <= acc_max; ++acc)
      ASSERT_EQ(spec.fire(acc, c), bn_sign_predicate(bn, c, acc, scale))
          << "channel " << c << " acc " << acc;
}

TEST(Folding, PositiveGamma) {
  const auto bn = make_bn({1.5f}, {0.3f}, {2.0f}, {4.0f});
  expect_fold_exact(bn, -27, 27, 1.0);
}

TEST(Folding, NegativeGammaFlipsComparison) {
  const auto bn = make_bn({-0.8f}, {0.1f}, {-1.0f}, {2.0f});
  const ThresholdSpec spec = fold_batchnorm(bn, -27, 27, 1.0);
  EXPECT_TRUE(spec.flip[0]);
  expect_fold_exact(bn, -27, 27, 1.0);
}

TEST(Folding, ZeroGammaIsConstant) {
  const auto bn_pos = make_bn({0.f}, {0.5f}, {0.f}, {1.0f});
  const ThresholdSpec always = fold_batchnorm(bn_pos, -10, 10, 1.0);
  for (std::int64_t acc = -10; acc <= 10; ++acc)
    EXPECT_TRUE(always.fire(acc, 0));

  const auto bn_neg = make_bn({0.f}, {-0.5f}, {0.f}, {1.0f});
  const ThresholdSpec never = fold_batchnorm(bn_neg, -10, 10, 1.0);
  for (std::int64_t acc = -10; acc <= 10; ++acc)
    EXPECT_FALSE(never.fire(acc, 0));
}

TEST(Folding, ThresholdOutsideRangeSaturates) {
  // Huge positive mean: predicate never fires within the range.
  const auto bn = make_bn({1.f}, {0.f}, {1e6f}, {1.0f});
  const ThresholdSpec spec = fold_batchnorm(bn, -27, 27, 1.0);
  for (std::int64_t acc = -27; acc <= 27; ++acc)
    EXPECT_FALSE(spec.fire(acc, 0));
}

TEST(Folding, FirstLayerScaleDomain) {
  const auto bn = make_bn({0.7f, -1.2f}, {0.2f, 0.4f}, {3.0f, -2.0f},
                          {9.0f, 0.25f});
  expect_fold_exact(bn, -600, 600, 1.0 / 255.0);
}

class FoldingRandom : public ::testing::TestWithParam<int> {};

TEST_P(FoldingRandom, RandomBnParamsFoldExactly) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7717);
  const int C = 8;
  std::vector<float> gamma(C), beta(C), mean(C), var(C);
  for (int c = 0; c < C; ++c) {
    gamma[static_cast<std::size_t>(c)] =
        static_cast<float>(rng.uniform(-2.0, 2.0));
    if (rng.bernoulli(0.1)) gamma[static_cast<std::size_t>(c)] = 0.f;
    beta[static_cast<std::size_t>(c)] = static_cast<float>(rng.uniform(-1, 1));
    mean[static_cast<std::size_t>(c)] = static_cast<float>(rng.uniform(-20, 20));
    var[static_cast<std::size_t>(c)] = static_cast<float>(rng.uniform(0.01, 50));
  }
  const auto bn = make_bn(gamma, beta, mean, var);
  expect_fold_exact(bn, -144, 144, 1.0);  // conv fan-in 144 (n-CNV conv1.2)
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldingRandom, ::testing::Range(0, 10));

TEST(Folding, EmptyRangeThrows) {
  const auto bn = make_bn({1.f}, {0.f}, {0.f}, {1.f});
  EXPECT_THROW(fold_batchnorm(bn, 5, 4, 1.0), std::invalid_argument);
}

TEST(PreparedThresholdsTest, MatchesFireForRandomSpecs) {
  util::Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    ThresholdSpec spec;
    const int C = 1 + static_cast<int>(rng.uniform_int(0, 70));
    for (int c = 0; c < C; ++c) {
      spec.t.push_back(rng.uniform_int(-7000, 7000));
      spec.flip.push_back(static_cast<std::uint8_t>(rng.bernoulli(0.5)));
    }
    const PreparedThresholds prep(spec);
    for (std::int64_t c = 0; c < C; ++c) {
      for (int s = 0; s < 20; ++s) {
        const std::int64_t acc = rng.uniform_int(-6885, 6885);
        EXPECT_EQ(spec.fire(acc, c),
                  static_cast<bool>(
                      (acc >= prep.thr[static_cast<std::size_t>(c)]) ^
                      prep.inv[static_cast<std::size_t>(c)]))
            << "t=" << spec.t[static_cast<std::size_t>(c)]
            << " flip=" << int(spec.flip[static_cast<std::size_t>(c)])
            << " acc=" << acc;
      }
      // Threshold boundary and its neighbours are the interesting accs.
      for (std::int64_t d = -1; d <= 1; ++d) {
        const std::int64_t acc = spec.t[static_cast<std::size_t>(c)] + d;
        if (std::abs(acc) > PreparedThresholds::kAccBound) continue;
        EXPECT_EQ(spec.fire(acc, c),
                  static_cast<bool>(
                      (acc >= prep.thr[static_cast<std::size_t>(c)]) ^
                      prep.inv[static_cast<std::size_t>(c)]));
      }
    }
  }
}

TEST(PreparedThresholdsTest, SaturatedSentinelsKeepMeaning) {
  // fold_batchnorm encodes always-fire as INT64_MIN+1 and never-fire as
  // INT64_MAX; the clamped form must preserve both over the whole
  // accumulator range, and a flipped saturated threshold must not overflow.
  ThresholdSpec spec;
  spec.t = {std::numeric_limits<std::int64_t>::min() + 1,
            std::numeric_limits<std::int64_t>::max(),
            std::numeric_limits<std::int64_t>::max(),
            std::numeric_limits<std::int64_t>::min() + 1};
  spec.flip = {0, 0, 1, 1};
  const PreparedThresholds prep(spec);
  for (const std::int64_t acc :
       {static_cast<std::int64_t>(-PreparedThresholds::kAccBound),
        std::int64_t{-6885}, std::int64_t{0}, std::int64_t{6885},
        static_cast<std::int64_t>(PreparedThresholds::kAccBound)}) {
    for (std::int64_t c = 0; c < 4; ++c)
      EXPECT_EQ(spec.fire(acc, c),
                static_cast<bool>(
                    (acc >= prep.thr[static_cast<std::size_t>(c)]) ^
                    prep.inv[static_cast<std::size_t>(c)]))
          << "c=" << c << " acc=" << acc;
  }
}

}  // namespace
