#include <gtest/gtest.h>

#include "tensor/im2row.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop::tensor;

Tensor random_tensor(const Shape& s, bcop::util::Rng& rng) {
  Tensor t(s);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

TEST(Im2Row, OutDim) {
  EXPECT_EQ(conv_out_dim(32, 3), 30);
  EXPECT_EQ(conv_out_dim(5, 3), 3);
  EXPECT_EQ(conv_out_dim(3, 3), 1);
}

TEST(Im2Row, KnownSmallCase) {
  // 1x3x3x1 input, k=2 -> 4 patches of 4 elements each.
  Tensor in(Shape{1, 3, 3, 1});
  for (std::int64_t i = 0; i < 9; ++i) in[i] = static_cast<float>(i);
  Tensor rows;
  im2row(in, 2, rows);
  ASSERT_EQ(rows.shape(), (Shape{4, 4}));
  // Patch at (0,0): elements (0,0),(0,1),(1,0),(1,1) = 0,1,3,4.
  EXPECT_FLOAT_EQ(rows.at2(0, 0), 0.f);
  EXPECT_FLOAT_EQ(rows.at2(0, 1), 1.f);
  EXPECT_FLOAT_EQ(rows.at2(0, 2), 3.f);
  EXPECT_FLOAT_EQ(rows.at2(0, 3), 4.f);
  // Patch at (1,1): 4,5,7,8.
  EXPECT_FLOAT_EQ(rows.at2(3, 0), 4.f);
  EXPECT_FLOAT_EQ(rows.at2(3, 3), 8.f);
}

TEST(Im2Row, PatchElementOrderIsKyKxC) {
  // 2 channels: the patch must interleave (ky, kx, c).
  Tensor in(Shape{1, 2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) in[i] = static_cast<float>(i);
  Tensor rows;
  im2row(in, 2, rows);
  ASSERT_EQ(rows.shape(), (Shape{1, 8}));
  for (std::int64_t i = 0; i < 8; ++i)
    EXPECT_FLOAT_EQ(rows[i], static_cast<float>(i));  // NHWC is already kyKxC
}

TEST(Im2Row, MultiBatch) {
  bcop::util::Rng rng(3);
  const Tensor in = random_tensor(Shape{3, 6, 5, 4}, rng);
  Tensor rows;
  im2row(in, 3, rows);
  ASSERT_EQ(rows.shape(), (Shape{3 * 4 * 3, 36}));
  // Cross-check one arbitrary element: batch 2, patch (1,2), offset (ky=2,kx=0,c=3).
  const std::int64_t row = (2 * 4 + 1) * 3 + 2;
  const std::int64_t col = (2 * 3 + 0) * 4 + 3;
  EXPECT_FLOAT_EQ(rows.at2(row, col), in.at4(2, 1 + 2, 2 + 0, 3));
}

TEST(Im2Row, KernelTooLargeThrows) {
  const Tensor in(Shape{1, 2, 2, 1});
  Tensor rows;
  EXPECT_THROW(im2row(in, 3, rows), std::invalid_argument);
}

TEST(Im2Row, NonRank4Throws) {
  const Tensor in(Shape{4, 4});
  Tensor rows;
  EXPECT_THROW(im2row(in, 2, rows), std::invalid_argument);
}

TEST(Row2Im, ShapeMismatchThrows) {
  Tensor grad(Shape{1, 4, 4, 1});
  const Tensor rows(Shape{5, 9});
  EXPECT_THROW(row2im(rows, 3, grad), std::invalid_argument);
}

// Adjointness: <im2row(x), y> == <x, row2im(y)> for all x, y -- this is the
// property that makes the conv backward pass correct.
TEST(Row2Im, IsAdjointOfIm2Row) {
  bcop::util::Rng rng(11);
  const Tensor x = random_tensor(Shape{2, 7, 6, 3}, rng);
  Tensor rows;
  im2row(x, 3, rows);
  const Tensor y = random_tensor(rows.shape(), rng);

  double lhs = 0;
  for (std::int64_t i = 0; i < rows.numel(); ++i) lhs += rows[i] * y[i];

  Tensor xback(x.shape());
  row2im(y, 3, xback);
  double rhs = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * xback[i];

  EXPECT_NEAR(lhs, rhs, 1e-2);
}

// The bit-domain patch extraction must produce exactly the packed image of
// the float one. Channel counts cover the sub-word shifted path (1, 3, 16)
// and the word-aligned memcpy path (64, 70-with-tail).
TEST(BitIm2Row, MatchesFloatIm2RowForAnyChannelCount) {
  for (const std::int64_t c : {1, 3, 16, 64, 70}) {
    bcop::util::Rng rng(static_cast<std::uint64_t>(c) * 13);
    Tensor in(Shape{2, 6, 5, c});
    for (std::int64_t i = 0; i < in.numel(); ++i)
      in[i] = rng.bernoulli(0.5) ? 1.f : -1.f;

    Tensor rows;
    im2row(in, 3, rows);
    const BitMatrix want =
        pack_matrix(rows.data(), rows.shape()[0], rows.shape()[1]);

    const BitMatrix pixels = pack_matrix(in.data(), 2 * 6 * 5, c);
    BitMatrix got;
    bit_im2row(pixels, 2, 6, 5, c, 3, got);

    ASSERT_EQ(got.rows(), want.rows()) << "c=" << c;
    ASSERT_EQ(got.cols(), want.cols()) << "c=" << c;
    EXPECT_EQ(got.storage(), want.storage()) << "c=" << c;
  }
}

TEST(BitIm2Row, ShapeMismatchThrows) {
  const BitMatrix pixels(10, 3);
  BitMatrix rows;
  // Channel count disagrees with the packed width (cols 3, claimed C=4).
  EXPECT_THROW(bit_im2row(pixels, 1, 2, 5, 4, 3, rows), std::invalid_argument);
  // 3x3 kernel does not fit a 2x2 input.
  EXPECT_THROW(bit_im2row(BitMatrix(4, 3), 1, 2, 2, 3, 3, rows),
               std::invalid_argument);
}

TEST(Row2Im, AccumulatesOverlappingPatches) {
  // All-ones patch gradients: interior pixels of a 3x3-kernel conv receive
  // k*k contributions.
  Tensor grad(Shape{1, 5, 5, 1});
  Tensor rows(Shape{9, 9});
  rows.fill(1.f);
  row2im(rows, 3, grad);
  EXPECT_FLOAT_EQ(grad.at4(0, 2, 2, 0), 9.f);  // center: all 9 patches
  EXPECT_FLOAT_EQ(grad.at4(0, 0, 0, 0), 1.f);  // corner: 1 patch
  EXPECT_FLOAT_EQ(grad.at4(0, 0, 2, 0), 3.f);  // edge: 3 patches
}

}  // namespace
