// Unit tests for nn::ResidualSign, the ReBNet M-level residual
// binarization activation (docs/residual-binarization.md): construction
// limits, the dyadic scale quantizer's feasibility/dominance invariants,
// exact forward reconstruction, straight-through gradients, the
// post-update projection, and save/load.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "nn/residual_sign.hpp"
#include "nn/sequential.hpp"
#include "tensor/tensor.hpp"
#include "util/serialize.hpp"

namespace {

using namespace bcop;
using nn::ResidualSign;
using tensor::Shape;
using tensor::Tensor;

TEST(ResidualSign, RejectsOutOfRangeLevels) {
  EXPECT_THROW(ResidualSign(0), std::invalid_argument);
  EXPECT_THROW(ResidualSign(4), std::invalid_argument);
  EXPECT_NO_THROW(ResidualSign(1));
  EXPECT_NO_THROW(ResidualSign(3));
}

TEST(ResidualSign, QuantizerKeepsScalesDominantAndFeasible) {
  for (std::int64_t levels = 1; levels <= 3; ++levels) {
    ResidualSign rs(levels);
    // Push the master scales to hostile values; the quantizer must clamp
    // into the dyadic box g_0 in [16, 512], g_m in [2^(L-1-m), g_{m-1}/2].
    Tensor hostile(Shape{levels});
    for (std::int64_t m = 0; m < levels; ++m)
      hostile[m] = m % 2 ? 100.f : 1e-6f;
    rs.params()[0]->value = hostile;
    const auto g = rs.quantized_scale_bits();
    ASSERT_EQ(static_cast<std::int64_t>(g.size()), levels);
    EXPECT_GE(g[0], ResidualSign::kMinFirstBits);
    EXPECT_LE(g[0], ResidualSign::kMaxFirstBits);
    std::int32_t tail = 0;
    for (std::size_t m = g.size(); m-- > 1;) {
      EXPECT_GE(g[m], 1) << "level " << m;
      EXPECT_LE(g[m], g[m - 1] / 2) << "level " << m;
      // Strict dominance: every level outweighs the sum of all deeper
      // ones, which is what makes lexicographic pooling exact.
      EXPECT_GT(g[m - 1], tail + g[m]) << "level " << m;
      tail += g[m];
    }
  }
}

TEST(ResidualSign, ForwardIsGreedyResidualReconstruction) {
  ResidualSign rs(3);
  const auto q = rs.quantized_scales();
  Tensor x(Shape{5});
  x[0] = 0.9f;
  x[1] = -0.4f;
  x[2] = 0.05f;
  x[3] = -1.7f;
  x[4] = 0.f;  // sign(0) = +1 by convention
  const Tensor y = rs.forward(x, false);

  for (std::int64_t i = 0; i < x.numel(); ++i) {
    // Reference: greedy per-level sign/subtract in the same float order.
    float e = x[i], want = 0.f;
    for (std::size_t m = 0; m < q.size(); ++m) {
      const float b = e >= 0.f ? 1.f : -1.f;
      want += q[m] * b;
      e -= q[m] * b;
    }
    EXPECT_FLOAT_EQ(y[i], want) << "element " << i;
    // Every output is a multiple of 1/256 (dyadic grid).
    EXPECT_FLOAT_EQ(y[i] * 256.f, std::nearbyint(y[i] * 256.f));
  }
  // M = 1 degenerates to a scaled sign.
  ResidualSign one(1);
  const Tensor y1 = one.forward(x, false);
  const auto q1 = one.quantized_scales();
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(y1[i], x[i] >= 0.f ? q1[0] : -q1[0]);
}

TEST(ResidualSign, BackwardIsClippedSteWithPerLevelScaleGrads) {
  ResidualSign rs(2);
  Tensor x(Shape{4});
  x[0] = 0.5f;
  x[1] = -0.25f;
  x[2] = 2.f;  // outside the STE window
  x[3] = -1.f;
  const Tensor y = rs.forward(x, true);
  (void)y;
  Tensor g(Shape{4});
  for (std::int64_t i = 0; i < 4; ++i) g[i] = static_cast<float>(i + 1);
  const Tensor dx = rs.backward(g);

  EXPECT_FLOAT_EQ(dx[0], 1.f);
  EXPECT_FLOAT_EQ(dx[1], 2.f);
  EXPECT_FLOAT_EQ(dx[2], 0.f);  // clipped: |x| > 1
  EXPECT_FLOAT_EQ(dx[3], 4.f);

  // dL/dgamma_m = sum_i grad_i * b_m_i with b_0 = sign(x),
  // b_1 = sign(x - q_0 * b_0).
  const auto q = rs.quantized_scales();
  float want0 = 0.f, want1 = 0.f;
  for (std::int64_t i = 0; i < 4; ++i) {
    const float b0 = x[i] >= 0.f ? 1.f : -1.f;
    const float b1 = (x[i] - q[0] * b0) >= 0.f ? 1.f : -1.f;
    want0 += g[i] * b0;
    want1 += g[i] * b1;
  }
  const Tensor& sg = rs.params()[0]->grad;
  EXPECT_FLOAT_EQ(sg[0], want0);
  EXPECT_FLOAT_EQ(sg[1], want1);
}

TEST(ResidualSign, PostUpdateProjectsIntoTheFeasibleBox) {
  ResidualSign rs(3);
  Tensor& s = rs.params()[0]->value;
  s[0] = 50.f;
  s[1] = 49.f;
  s[2] = -3.f;
  rs.post_update();
  EXPECT_LE(s[0], ResidualSign::kMaxFirstBits / 256.f);
  EXPECT_LE(s[1], s[0] / 2.f);
  EXPECT_LE(s[2], s[1] / 2.f);
  EXPECT_GE(s[2], 1.f / 256.f);
}

TEST(ResidualSign, SaveLoadRoundTripsLevelsAndScales) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bcop_rsgn_test.bin").string();
  ResidualSign rs(3);
  rs.params()[0]->value[0] = 1.25f;
  rs.params()[0]->value[1] = 0.5f;
  rs.params()[0]->value[2] = 0.125f;
  {
    util::BinaryWriter w(path);
    rs.save(w);
    w.close();
  }
  ResidualSign back(1);
  util::BinaryReader r(path);
  back.load(r);
  EXPECT_EQ(back.levels(), 3);
  for (std::int64_t m = 0; m < 3; ++m)
    EXPECT_FLOAT_EQ(back.params()[0]->value[m], rs.params()[0]->value[m]);
  std::filesystem::remove(path);
}

TEST(ResidualSign, SequentialFactoryKnowsTheType) {
  // make_layer must map the "ResidualSign" tag so model checkpoints
  // containing the layer reload (levels are then restored by load()).
  nn::Sequential model;
  model.emplace<ResidualSign>(2);
  EXPECT_EQ(model.layer(0).type(), "ResidualSign");
}

}  // namespace
