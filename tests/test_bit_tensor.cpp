#include <gtest/gtest.h>

#include <vector>

#include "tensor/bit_tensor.hpp"
#include "tensor/gemm.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop::tensor;

std::vector<float> random_signs(std::int64_t n, bcop::util::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.bernoulli(0.5) ? 1.f : -1.f;
  return v;
}

TEST(BitMatrix, PackRoundTrip) {
  bcop::util::Rng rng(1);
  const std::int64_t rows = 5, cols = 131;  // non-multiple of 64
  const auto src = random_signs(rows * cols, rng);
  const BitMatrix m = pack_matrix(src.data(), rows, cols);
  EXPECT_EQ(m.rows(), rows);
  EXPECT_EQ(m.cols(), cols);
  EXPECT_EQ(m.words_per_row(), 3);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      EXPECT_EQ(m.get(r, c), src[static_cast<std::size_t>(r * cols + c)] >= 0.f);
}

TEST(BitMatrix, PaddingBitsAreZero) {
  std::vector<float> ones(70, 1.f);
  const BitMatrix m = pack_matrix(ones.data(), 1, 70);
  // Bits 70..127 of the second word must be zero.
  EXPECT_EQ(m.row(0)[1] >> 6, 0ull);
}

TEST(BitMatrix, SetFromSignTogglesBothWays) {
  BitMatrix m(1, 8);
  m.set_from_sign(0, 3, 1.f);
  EXPECT_TRUE(m.get(0, 3));
  m.set_from_sign(0, 3, -0.5f);
  EXPECT_FALSE(m.get(0, 3));
  m.set_from_sign(0, 3, 0.f);  // sign(0) = +1 convention
  EXPECT_TRUE(m.get(0, 3));
}

TEST(BitMatrix, NegativeDimensionsThrow) {
  EXPECT_THROW(BitMatrix(-1, 4), std::invalid_argument);
}

class XnorDotSizes : public ::testing::TestWithParam<int> {};

TEST_P(XnorDotSizes, MatchesFloatDotProduct) {
  const std::int64_t n = GetParam();
  bcop::util::Rng rng(static_cast<std::uint64_t>(n) * 97);
  const auto a = random_signs(n, rng);
  const auto b = random_signs(n, rng);
  const BitMatrix pa = pack_matrix(a.data(), 1, n);
  const BitMatrix pb = pack_matrix(b.data(), 1, n);

  double expected = 0;
  for (std::int64_t i = 0; i < n; ++i)
    expected += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];

  EXPECT_EQ(xnor_dot(pa.row(0), pb.row(0), n, pa.words_per_row()),
            static_cast<std::int64_t>(expected));
}

INSTANTIATE_TEST_SUITE_P(Lengths, XnorDotSizes,
                         ::testing::Values(1, 2, 63, 64, 65, 100, 127, 128,
                                           576, 1152, 2304));

TEST(XnorDot, AllMatchGivesPlusN) {
  std::vector<float> a(100, 1.f);
  const BitMatrix p = pack_matrix(a.data(), 1, 100);
  EXPECT_EQ(xnor_dot(p.row(0), p.row(0), 100, p.words_per_row()), 100);
}

TEST(XnorDot, AllMismatchGivesMinusN) {
  std::vector<float> a(100, 1.f), b(100, -1.f);
  const BitMatrix pa = pack_matrix(a.data(), 1, 100);
  const BitMatrix pb = pack_matrix(b.data(), 1, 100);
  EXPECT_EQ(xnor_dot(pa.row(0), pb.row(0), 100, pa.words_per_row()), -100);
}

TEST(BinaryGemm, MatchesFloatGemm) {
  bcop::util::Rng rng(5);
  const std::int64_t M = 13, N = 9, K = 300;
  const auto a = random_signs(M * K, rng);
  const auto b = random_signs(N * K, rng);
  const BitMatrix pa = pack_matrix(a.data(), M, K);
  const BitMatrix pb = pack_matrix(b.data(), N, K);
  std::vector<std::int32_t> c;
  binary_gemm(pa, pb, c);

  std::vector<float> cref(static_cast<std::size_t>(M * N));
  gemm_nt_naive(M, N, K, a.data(), b.data(), cref.data());
  ASSERT_EQ(c.size(), cref.size());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_EQ(c[i], static_cast<std::int32_t>(cref[i]));
}

TEST(BinaryGemm, KMismatchThrows) {
  const BitMatrix a(2, 10), b(2, 11);
  std::vector<std::int32_t> c;
  EXPECT_THROW(binary_gemm(a, b, c), std::invalid_argument);
}

TEST(AppendBits, ConcatenationMatchesDirectPack) {
  // ORing packed fields of awkward widths end to end must equal packing the
  // concatenated float vector directly -- including the zero padding bits.
  bcop::util::Rng rng(7);
  const std::vector<std::int64_t> widths = {3, 64, 70, 1, 33};
  std::int64_t total = 0;
  for (const auto w : widths) total += w;

  BitMatrix dst(1, total);
  std::vector<float> concat;
  std::int64_t off = 0;
  for (const auto w : widths) {
    const auto field = random_signs(w, rng);
    const BitMatrix src = pack_matrix(field.data(), 1, w);
    append_bits(dst.row(0), off, src.row(0), w);
    concat.insert(concat.end(), field.begin(), field.end());
    off += w;
  }

  const BitMatrix want = pack_matrix(concat.data(), 1, total);
  EXPECT_EQ(dst.storage(), want.storage());
}

TEST(AppendBits, WordAlignedOffsetsUseNoShift) {
  bcop::util::Rng rng(8);
  const auto a = random_signs(64, rng);
  const auto b = random_signs(128, rng);
  BitMatrix dst(1, 192);
  const BitMatrix pa = pack_matrix(a.data(), 1, 64);
  const BitMatrix pb = pack_matrix(b.data(), 1, 128);
  append_bits(dst.row(0), 0, pa.row(0), 64);
  append_bits(dst.row(0), 64, pb.row(0), 128);
  std::vector<float> concat(a);
  concat.insert(concat.end(), b.begin(), b.end());
  EXPECT_EQ(dst.storage(), pack_matrix(concat.data(), 1, 192).storage());
}

TEST(BinaryGemm, ResultParityMatchesK) {
  // For {-1,1} vectors of length K, every dot product has K's parity.
  bcop::util::Rng rng(6);
  const std::int64_t K = 27;
  const auto a = random_signs(4 * K, rng);
  const auto b = random_signs(3 * K, rng);
  std::vector<std::int32_t> c;
  binary_gemm(pack_matrix(a.data(), 4, K), pack_matrix(b.data(), 3, K), c);
  for (const auto v : c) EXPECT_EQ((v & 1), (K & 1));
}

}  // namespace
