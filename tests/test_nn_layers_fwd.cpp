// Forward-pass correctness of the non-binary layers.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"
#include "test_helpers.hpp"

namespace {

using namespace bcop;
using bcop::tensor::Shape;
using bcop::tensor::Tensor;
using bcop::testhelpers::random_tensor;

// Naive direct convolution for cross-checking the im2row+GEMM path.
Tensor naive_conv(const Tensor& in, const Tensor& w /*[K*K*Ci, Co]*/,
                  std::int64_t k, std::int64_t co) {
  const std::int64_t N = in.shape()[0], H = in.shape()[1], W = in.shape()[2],
                     Ci = in.shape()[3];
  const std::int64_t Ho = H - k + 1, Wo = W - k + 1;
  Tensor out(Shape{N, Ho, Wo, co});
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t y = 0; y < Ho; ++y)
      for (std::int64_t x = 0; x < Wo; ++x)
        for (std::int64_t o = 0; o < co; ++o) {
          float acc = 0;
          for (std::int64_t ky = 0; ky < k; ++ky)
            for (std::int64_t kx = 0; kx < k; ++kx)
              for (std::int64_t c = 0; c < Ci; ++c)
                acc += in.at4(n, y + ky, x + kx, c) *
                       w.at2((ky * k + kx) * Ci + c, o);
          out.at4(n, y, x, o) = acc;
        }
  return out;
}

TEST(Conv2d, MatchesNaiveConvolutionPlusBias) {
  util::Rng rng(1);
  nn::Conv2d conv(3, 2, 5, rng);
  const Tensor x = random_tensor(Shape{2, 6, 7, 2}, rng);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{2, 4, 5, 5}));

  // Bias starts at zero, so the naive conv without bias must match.
  auto params = conv.params();
  const Tensor& wt = params[0]->value;
  const Tensor ref = naive_conv(x, wt, 3, 5);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-4f);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  util::Rng rng(2);
  nn::Conv2d conv(3, 4, 8, rng);
  EXPECT_THROW(conv.forward(Tensor(Shape{1, 8, 8, 3}), false),
               std::invalid_argument);
}

TEST(Dense, ComputesAffineMap) {
  util::Rng rng(3);
  nn::Dense dense(3, 2, rng);
  auto params = dense.params();
  Tensor& w = params[0]->value;
  Tensor& b = params[1]->value;
  w.fill(0.f);
  w.at2(0, 0) = 1.f;
  w.at2(1, 0) = 2.f;
  w.at2(2, 1) = -1.f;
  b[0] = 0.5f;

  Tensor x(Shape{1, 3});
  x[0] = 1.f;
  x[1] = 2.f;
  x[2] = 3.f;
  const Tensor y = dense.forward(x, false);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1.f + 4.f + 0.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), -3.f);
}

TEST(BatchNorm, TrainingNormalizesToZeroMeanUnitVar) {
  util::Rng rng(4);
  nn::BatchNorm bn(3);
  const Tensor x = random_tensor(Shape{8, 4, 4, 3}, rng, -5.0, 3.0);
  const Tensor y = bn.forward(x, true);
  for (std::int64_t c = 0; c < 3; ++c) {
    double mean = 0, var = 0;
    const std::int64_t rows = 8 * 4 * 4;
    for (std::int64_t r = 0; r < rows; ++r) mean += y[r * 3 + c];
    mean /= static_cast<double>(rows);
    for (std::int64_t r = 0; r < rows; ++r) {
      const double d = y[r * 3 + c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(rows);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm, InferenceUsesRunningStatistics) {
  util::Rng rng(5);
  nn::BatchNorm bn(2);
  // Warm the running stats with many training batches of a fixed shift.
  for (int i = 0; i < 200; ++i) {
    Tensor x = random_tensor(Shape{16, 2}, rng);
    for (std::int64_t r = 0; r < 16; ++r) x.at2(r, 1) += 10.f;
    bn.forward(x, true);
  }
  // At inference, a value equal to the running mean maps to ~beta = 0.
  Tensor probe(Shape{1, 2});
  probe.at2(0, 0) = bn.running_mean()[0];
  probe.at2(0, 1) = bn.running_mean()[1];
  const Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y.at2(0, 0), 0.f, 1e-3f);
  EXPECT_NEAR(y.at2(0, 1), 0.f, 1e-3f);
  EXPECT_GT(bn.running_mean()[1], 5.f);
}

TEST(BatchNorm, FrozenModeUsesRunningStatsAndSkipsEma) {
  util::Rng rng(6);
  nn::BatchNorm bn(2);
  for (int i = 0; i < 50; ++i) bn.forward(random_tensor(Shape{8, 2}, rng), true);
  const float mean_before = bn.running_mean()[0];

  bn.set_frozen(true);
  const Tensor x = random_tensor(Shape{4, 2}, rng, 3.0, 9.0);
  const Tensor y_frozen = bn.forward(x, true);
  EXPECT_FLOAT_EQ(bn.running_mean()[0], mean_before);  // no EMA update

  const Tensor y_eval = bn.forward(x, false);
  for (std::int64_t i = 0; i < y_eval.numel(); ++i)
    EXPECT_NEAR(y_frozen[i], y_eval[i], 1e-5f);  // same function as inference
}

TEST(BatchNorm, ChannelMismatchThrows) {
  nn::BatchNorm bn(4);
  EXPECT_THROW(bn.forward(Tensor(Shape{2, 3}), true), std::invalid_argument);
}

TEST(BatchNorm, BackwardBeforeForwardThrows) {
  nn::BatchNorm bn(2);
  EXPECT_THROW(bn.backward(Tensor(Shape{2, 2})), std::logic_error);
}

TEST(MaxPool2, SelectsWindowMaxima) {
  Tensor x(Shape{1, 2, 4, 1});
  const float vals[] = {1, 5, 2, 0, 3, 4, 1, 7};
  for (int i = 0; i < 8; ++i) x[i] = vals[i];
  nn::MaxPool2 pool;
  const Tensor y = pool.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.f);
  EXPECT_FLOAT_EQ(y[1], 7.f);
}

TEST(MaxPool2, BackwardRoutesToArgmax) {
  Tensor x(Shape{1, 2, 2, 1});
  x[0] = 1.f;
  x[1] = 9.f;
  x[2] = 3.f;
  x[3] = 2.f;
  nn::MaxPool2 pool;
  pool.forward(x, true);
  Tensor dy(Shape{1, 1, 1, 1});
  dy[0] = 4.f;
  const Tensor dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.f);
  EXPECT_FLOAT_EQ(dx[1], 4.f);
  EXPECT_FLOAT_EQ(dx[2], 0.f);
  EXPECT_FLOAT_EQ(dx[3], 0.f);
}

TEST(MaxPool2, OddSpatialDimsThrow) {
  nn::MaxPool2 pool;
  EXPECT_THROW(pool.forward(Tensor(Shape{1, 3, 4, 1}), false),
               std::invalid_argument);
}

TEST(Flatten, RoundTripsThroughBackward) {
  util::Rng rng(7);
  nn::Flatten flat;
  const Tensor x = random_tensor(Shape{2, 3, 4, 5}, rng);
  const Tensor y = flat.forward(x, true);
  ASSERT_EQ(y.shape(), (Shape{2, 60}));
  const Tensor dx = flat.backward(y);
  ASSERT_EQ(dx.shape(), x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(dx[i], x[i]);
}

TEST(ReLU, ClampsAndGates) {
  nn::ReLU relu;
  Tensor x(Shape{3});
  x[0] = -2.f;
  x[1] = 0.f;
  x[2] = 3.f;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.f);
  EXPECT_FLOAT_EQ(y[2], 3.f);
  Tensor dy(Shape{3}, 1.f);
  const Tensor dx = relu.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.f);
  EXPECT_FLOAT_EQ(dx[1], 0.f);  // gradient at exactly 0 is gated off
  EXPECT_FLOAT_EQ(dx[2], 1.f);
}

}  // namespace
