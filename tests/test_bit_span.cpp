// Span kernels (tensor/bit_span.hpp) vs their owning BitMatrix
// counterparts. The serving hot path reuses arena rows, so every case runs
// the span kernel into a *dirty* buffer (pre-filled with 1-bits) to prove
// the kernels re-establish the zero-padding invariant themselves.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tensor/bit_span.hpp"
#include "tensor/bit_tensor.hpp"
#include "tensor/im2row.hpp"
#include "util/rng.hpp"

namespace {

using namespace bcop::tensor;

std::vector<float> random_signs(std::int64_t n, bcop::util::Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.bernoulli(0.5) ? 1.f : -1.f;
  return v;
}

/// A span over a deliberately filthy buffer: every word starts ~0ull.
struct DirtyBits {
  std::vector<std::uint64_t> storage;
  BitSpan span;
  DirtyBits(std::int64_t rows, std::int64_t cols)
      : storage(static_cast<std::size_t>(rows * words_for_bits(cols)),
                ~0ull),
        span{storage.data(), rows, cols, words_for_bits(cols)} {}
};

void expect_same_bits(ConstBitSpan got, const BitMatrix& want) {
  ASSERT_EQ(got.rows, want.rows());
  ASSERT_EQ(got.cols, want.cols());
  ASSERT_EQ(got.wpr, want.words_per_row());
  for (std::int64_t r = 0; r < got.rows; ++r)
    for (std::int64_t w = 0; w < got.wpr; ++w)
      ASSERT_EQ(got.row(r)[w], want.row(r)[w])
          << "row " << r << " word " << w;
}

TEST(BitSpan, SpanOfMatrixSharesStorageAndGeometry) {
  BitMatrix m(3, 70);
  BitSpan s = span_of(m);
  EXPECT_EQ(s.rows, 3);
  EXPECT_EQ(s.cols, 70);
  EXPECT_EQ(s.wpr, 2);
  EXPECT_EQ(s.pad(), 2 * 64 - 70);
  s.row(1)[0] = 0x5ull;
  EXPECT_TRUE(m.get(1, 0));
  EXPECT_FALSE(m.get(1, 1));
  ConstBitSpan cs = span_of(static_cast<const BitMatrix&>(m));
  EXPECT_EQ(cs.row(1)[0], 0x5ull);
}

TEST(BitSpan, PackRowsMatchesPackMatrixOnDirtyBuffer) {
  bcop::util::Rng rng(7);
  for (const std::int64_t cols : {5, 64, 131}) {
    const std::int64_t rows = 4;
    const auto src = random_signs(rows * cols, rng);
    DirtyBits dirty(rows, cols);
    pack_rows(src.data(), rows, cols, dirty.span);
    expect_same_bits(dirty.span, pack_matrix(src.data(), rows, cols));
  }
}

TEST(BitSpan, PretransposedGemmMatchesBinaryGemm) {
  bcop::util::Rng rng(11);
  // N = 300 exercises the >1-tile path of the 256-lane stack tile.
  for (const std::int64_t N : {3, 64, 300}) {
    const std::int64_t M = 17, K = 131;
    const auto a = random_signs(M * K, rng);
    const auto b = random_signs(N * K, rng);
    const BitMatrix pa = pack_matrix(a.data(), M, K);
    const BitMatrix pb = pack_matrix(b.data(), N, K);
    std::vector<std::int32_t> want;
    binary_gemm(pa, pb, want);
    std::vector<std::uint64_t> bt(
        static_cast<std::size_t>(pb.words_per_row() * N));
    transpose_word_major(span_of(pb), bt.data());
    std::vector<std::int32_t> got(static_cast<std::size_t>(M * N), -1);
    binary_gemm_pre(span_of(pa), bt.data(), N, got.data());
    EXPECT_EQ(got, want) << "N=" << N;
  }
}

TEST(BitSpan, BitIm2RowMatchesMatrixVariantOnDirtyBuffer) {
  bcop::util::Rng rng(13);
  const std::int64_t n = 2, h = 6, w = 5, k = 3;
  for (const std::int64_t c : {3, 64, 100}) {  // <64, aligned, >64 unaligned
    const auto src = random_signs(n * h * w * c, rng);
    const BitMatrix pixels = pack_matrix(src.data(), n * h * w, c);
    BitMatrix want;
    bit_im2row(pixels, n, h, w, c, k, want);
    const std::int64_t ho = conv_out_dim(h, k), wo = conv_out_dim(w, k);
    DirtyBits dirty(n * ho * wo, k * k * c);
    bit_im2row(span_of(pixels), n, h, w, c, k, dirty.span);
    expect_same_bits(dirty.span, want);
  }
}

TEST(BitSpan, Pool2IsBooleanOrOfTheWindow) {
  bcop::util::Rng rng(17);
  const std::int64_t n = 2, h = 4, w = 6;
  for (const std::int64_t c : {3, 64, 100}) {
    const auto src = random_signs(n * h * w * c, rng);
    const BitMatrix pixels = pack_matrix(src.data(), n * h * w, c);
    DirtyBits dirty(n * (h / 2) * (w / 2), c);
    pool2_bits(span_of(pixels), n, h, w, dirty.span);
    BitMatrix want(n * (h / 2) * (w / 2), c);
    for (std::int64_t nn = 0; nn < n; ++nn)
      for (std::int64_t y = 0; y < h / 2; ++y)
        for (std::int64_t x = 0; x < w / 2; ++x)
          for (std::int64_t ch = 0; ch < c; ++ch) {
            const bool on = pixels.get((nn * h + 2 * y) * w + 2 * x, ch) ||
                            pixels.get((nn * h + 2 * y) * w + 2 * x + 1, ch) ||
                            pixels.get((nn * h + 2 * y + 1) * w + 2 * x, ch) ||
                            pixels.get((nn * h + 2 * y + 1) * w + 2 * x + 1,
                                       ch);
            want.set_from_sign((nn * (h / 2) + y) * (w / 2) + x, ch,
                               on ? 1.f : -1.f);
          }
    expect_same_bits(dirty.span, want);
  }
}

TEST(BitSpan, FlattenMatchesFloatOrderOnDirtyBuffer) {
  bcop::util::Rng rng(19);
  const std::int64_t n = 3, ppi = 4;
  for (const std::int64_t c : {3, 64, 100}) {
    const auto src = random_signs(n * ppi * c, rng);
    const BitMatrix pixels = pack_matrix(src.data(), n * ppi, c);
    DirtyBits dirty(n, ppi * c);
    flatten_pixels(span_of(pixels), n, ppi, c, dirty.span);
    // The float-domain Flatten is a plain reshape, so packing the same
    // floats as [n, ppi*c] is the ground truth.
    expect_same_bits(dirty.span, pack_matrix(src.data(), n, ppi * c));
  }
}

TEST(BitSpanDeathTest, Im2rowShapeMismatchAborts) {
  // Span-kernel contracts abort via BCOP_CHECK rather than throw: a throw
  // would pull exception machinery into the allocation-free hot objects
  // (scripts/audit_hot_path.py would flag it), and a shape mismatch here
  // is a caller bug, not a recoverable condition.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  BitMatrix pixels(4, 3);
  DirtyBits bad(5, 27);  // wrong row count for 1x2x2 im2row
  EXPECT_DEATH(bit_im2row(span_of(pixels), 1, 2, 2, 3, 3, bad.span),
               "bit_im2row: kernel 3 larger than input 2x2");
}

}  // namespace
