// Analytical models vs. the paper's reported numbers (Table II, Sec. IV-B).
// Absolute tolerances are generous -- these are models, not measurements --
// but orderings and headline claims must hold.
#include <gtest/gtest.h>

#include "core/architecture.hpp"
#include "deploy/performance.hpp"
#include "deploy/power.hpp"
#include "deploy/resource.hpp"

namespace {

using namespace bcop;
using core::ArchitectureId;

TEST(Performance, NCnvHitsThePapersThroughput) {
  const auto perf =
      deploy::analyze_performance(core::layer_specs(ArchitectureId::kNCnv));
  // Paper: ~6400 classifications per second at 100 MHz.
  EXPECT_NEAR(perf.fps(), 6400.0, 6400.0 * 0.10);
}

TEST(Performance, FirstConvIsTheBottleneckForNCnv) {
  const auto perf =
      deploy::analyze_performance(core::layer_specs(ArchitectureId::kNCnv));
  EXPECT_EQ(perf.bottleneck, "Conv1.1");
}

TEST(Performance, NCnvIsTheFastestPrototype) {
  const double cnv =
      deploy::analyze_performance(core::layer_specs(ArchitectureId::kCnv)).fps();
  const double ncnv =
      deploy::analyze_performance(core::layer_specs(ArchitectureId::kNCnv)).fps();
  const double ucnv = deploy::analyze_performance(
                          core::layer_specs(ArchitectureId::kMicroCnv))
                          .fps();
  EXPECT_GT(ncnv, cnv);
  EXPECT_GT(ncnv, ucnv);
}

TEST(Performance, LatencyExceedsInitiationInterval) {
  for (int a = 0; a < 3; ++a) {
    const auto perf = deploy::analyze_performance(
        core::layer_specs(static_cast<ArchitectureId>(a)));
    EXPECT_GT(perf.pipeline_latency_cycles, perf.initiation_interval);
    EXPECT_GT(perf.initiation_interval, 0);
    // Exactly one stage saturates the pipeline.
    int saturated = 0;
    for (const auto& l : perf.layers)
      if (l.effective_cycles == perf.initiation_interval) ++saturated;
    EXPECT_GE(saturated, 1);
  }
}

TEST(Performance, UtilizationIsNormalized) {
  const auto perf =
      deploy::analyze_performance(core::layer_specs(ArchitectureId::kCnv));
  for (const auto& l : perf.layers) {
    EXPECT_GT(l.utilization, 0.0);
    EXPECT_LE(l.utilization, 1.0);
  }
}

TEST(Resources, LutEstimatesTrackTableII) {
  const auto cnv =
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kCnv), false);
  const auto ncnv =
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kNCnv), false);
  const auto ucnv = deploy::estimate_resources(
      core::layer_specs(ArchitectureId::kMicroCnv), true);
  // Paper Table II: 26060 / 20425 / 11738 LUTs. Allow 25% model error.
  EXPECT_NEAR(static_cast<double>(cnv.lut), 26060.0, 26060.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(ncnv.lut), 20425.0, 20425.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(ucnv.lut), 11738.0, 11738.0 * 0.25);
  // Ordering must be exact.
  EXPECT_GT(cnv.lut, ncnv.lut);
  EXPECT_GT(ncnv.lut, ucnv.lut);
}

TEST(Resources, BramTracksTableII) {
  const auto cnv =
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kCnv), false);
  const auto ncnv =
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kNCnv), false);
  const auto ucnv = deploy::estimate_resources(
      core::layer_specs(ArchitectureId::kMicroCnv), true);
  // Paper: 124 / 10.5 / 14. CNV dominated by its wide layers.
  EXPECT_NEAR(cnv.bram18, 124.0, 124.0 * 0.25);
  EXPECT_GT(cnv.bram18, 5 * ncnv.bram18);
  EXPECT_LT(ncnv.bram18, 20.0);
  EXPECT_LT(ucnv.bram18, 25.0);
}

TEST(Resources, DspOffloadShiftsComputeIntoDsps) {
  const auto specs = core::layer_specs(ArchitectureId::kMicroCnv);
  const auto plain = deploy::estimate_resources(specs, false);
  const auto offload = deploy::estimate_resources(specs, true);
  EXPECT_LT(offload.lut, plain.lut);
  EXPECT_GT(offload.dsp, plain.dsp);
  // Paper: u-CNV uses 27 DSPs (OrthrusPE XNOR offloading).
  EXPECT_NEAR(static_cast<double>(offload.dsp), 27.0, 5.0);
}

TEST(Resources, DspCountsTrackTableII) {
  const auto cnv =
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kCnv), false);
  const auto ncnv =
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kNCnv), false);
  // Paper: 24 / 14. The shared-accumulator model lands CNV exactly and
  // overshoots n-CNV by a few blocks (documented in EXPERIMENTS.md);
  // ordering must hold regardless.
  EXPECT_NEAR(static_cast<double>(cnv.dsp), 24.0, 4.0);
  EXPECT_NEAR(static_cast<double>(ncnv.dsp), 14.0, 6.0);
  EXPECT_GT(cnv.dsp, ncnv.dsp);
}

TEST(Resources, EveryDesignFitsItsTargetPart) {
  const auto z20 = deploy::z7020();
  const auto z10 = deploy::z7010();
  for (int a = 0; a < 3; ++a) {
    const bool offload = a == 2;
    const auto est = deploy::estimate_resources(
        core::layer_specs(static_cast<ArchitectureId>(a)), offload);
    EXPECT_TRUE(est.fits(z20.lut, z20.bram18, z20.dsp))
        << core::arch_name(static_cast<ArchitectureId>(a));
  }
  // u-CNV with DSP offload is the one design that fits the tiny Z7010.
  const auto ucnv = deploy::estimate_resources(
      core::layer_specs(ArchitectureId::kMicroCnv), true);
  EXPECT_TRUE(ucnv.fits(z10.lut, z10.bram18, z10.dsp));
  const auto cnv =
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kCnv), false);
  EXPECT_FALSE(cnv.fits(z10.lut, z10.bram18, z10.dsp));
}

TEST(Power, IdleFloorMatchesPaper) {
  const auto est =
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kNCnv), false);
  const auto p = deploy::estimate_power(est);
  EXPECT_DOUBLE_EQ(p.idle_w, 1.6);
  EXPECT_GT(p.active_w, p.idle_w);
  EXPECT_LT(p.active_w, 5.0);  // plausible Zynq envelope
}

TEST(Power, DutyCycleInterpolates) {
  const auto p = deploy::estimate_power(
      deploy::estimate_resources(core::layer_specs(ArchitectureId::kCnv), false));
  EXPECT_DOUBLE_EQ(p.average_w(0.0), p.idle_w);
  EXPECT_DOUBLE_EQ(p.average_w(1.0), p.active_w);
  EXPECT_GT(p.average_w(0.5), p.idle_w);
  EXPECT_LT(p.average_w(0.5), p.active_w);
}

TEST(Power, EnergyPerFrameIsPositiveAndSmall) {
  const auto specs = core::layer_specs(ArchitectureId::kNCnv);
  const auto p = deploy::estimate_power(deploy::estimate_resources(specs, false));
  const auto perf = deploy::analyze_performance(specs);
  const double mj = p.energy_per_frame_mj(perf.fps());
  EXPECT_GT(mj, 0.0);
  EXPECT_LT(mj, 10.0);  // well under 10 mJ per classification
}

TEST(Performance, BatchThroughputApproachesSteadyState) {
  const auto perf =
      deploy::analyze_performance(core::layer_specs(ArchitectureId::kNCnv));
  EXPECT_EQ(perf.batch_cycles(0), 0);
  EXPECT_EQ(perf.batch_cycles(1), perf.pipeline_latency_cycles);
  EXPECT_EQ(perf.batch_cycles(3),
            perf.pipeline_latency_cycles + 2 * perf.initiation_interval);
  // Single-frame rate is dominated by latency; large batches approach the
  // steady-state fps (the paper's "pipeline is full" condition).
  EXPECT_LT(perf.batch_fps(1), perf.fps());
  EXPECT_GT(perf.batch_fps(10000), 0.99 * perf.fps());
  EXPECT_LE(perf.batch_fps(10000), perf.fps());
  // Monotone in n.
  EXPECT_LT(perf.batch_fps(2), perf.batch_fps(20));
}

TEST(Models, EmptySpecsThrow) {
  EXPECT_THROW(deploy::analyze_performance({}), std::invalid_argument);
  EXPECT_THROW(deploy::estimate_resources({}, false), std::invalid_argument);
}

}  // namespace
